// Command tinyleo-synth is the offline LEO network synthesizer (§5): it
// builds the Earth-repeat texture library, synthesizes one of the paper's
// demand scenarios, runs Algorithm 1, and prints the planned sparse
// constellation (one orbit slot per line, CSV).
//
// Usage:
//
//	tinyleo-synth [-scale small|paper] [-scenario starlink|backbone|latam]
//	              [-epsilon 0.99] [-demand-units 0 (calibrate to Starlink)]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/experiments"
	"repro/internal/geo"
)

func main() {
	scaleName := flag.String("scale", "small", "small or paper")
	scenario := flag.String("scenario", "starlink", "demand scenario: starlink, backbone, latam")
	epsilon := flag.Float64("epsilon", 0, "availability target (0 = scale default)")
	demandUnits := flag.Float64("demand-units", 0, "peak demand in satellite units (0 = calibrate to a Starlink-like constellation)")
	diurnal := flag.Bool("diurnal", false, "apply the Figure-3b diurnal activity model")
	showMap := flag.Bool("map", false, "print ASCII world maps of the demand and the planned supply to stderr")
	flag.Parse()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tinyleo-synth: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	eps := *epsilon
	if eps == 0 {
		eps = scale.Epsilon
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building texture library...\n")
	lib, err := scale.BuildLibrary()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-synth: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "library: %d candidate tracks (%.1fs)\n", lib.NumTracks(), time.Since(start).Seconds())

	opt := scale.ScenarioOptions()
	if *demandUnits > 0 {
		opt.TotalSatUnits = *demandUnits
	}
	if *diurnal {
		m := demand.DefaultDiurnal
		opt.Diurnal = &m
	}
	var dem *demand.Demand
	switch *scenario {
	case "starlink":
		dem = demand.StarlinkCustomers(opt)
	case "backbone":
		dem = demand.InternetBackbone(opt)
	case "latam":
		dem = demand.LatinAmerica(opt)
	default:
		fmt.Fprintf(os.Stderr, "tinyleo-synth: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *demandUnits == 0 {
		fmt.Fprintf(os.Stderr, "calibrating demand to a Starlink-like constellation at ε=%.3f...\n", eps)
		sats := baseline.StarlinkSatellites()
		sup := baseline.Supply(baseline.SupplyConfig{
			Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
			SubSamples: scale.SubSamples,
		}, sats)
		f := dem.CalibrateToSupply(sup, eps)
		fmt.Fprintf(os.Stderr, "demand scale factor: %.3f\n", f)
	}
	fmt.Fprintf(os.Stderr, "%s\n", dem)

	res, err := core.Sparsify(core.Problem{
		Library: lib, Demand: dem.Y, Epsilon: eps,
		OnIteration: func(it core.IterationStat) {
			if it.Iteration%25 == 0 {
				fmt.Fprintf(os.Stderr, "  iter %d: %d satellites, availability %.4f\n",
					it.Iteration, it.Satellites, it.Availability)
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-synth: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "plan: %d satellites on %d tracks, availability %.4f (%.1fs total)\n",
		res.Satellites, len(res.ChosenTracks()), res.Availability, time.Since(start).Seconds())

	if *showMap {
		m := lib.Grid.NumCells()
		fmt.Fprintln(os.Stderr, "--- demand (peak slot) ---")
		fmt.Fprint(os.Stderr, geo.RenderMap(lib.Grid, func(cell int) float64 {
			return dem.At(0, cell)
		}))
		supply := lib.Supply(res.X)
		fmt.Fprintln(os.Stderr, "--- planned supply (slot 0) ---")
		fmt.Fprint(os.Stderr, geo.RenderMap(lib.Grid, func(cell int) float64 {
			return supply[cell%m]
		}))
	}

	// CSV plan to stdout: one orbital slot per line.
	fmt.Println("track,satellites,p,q,altitude_km,period_min,inclination_deg,raan_deg,phase_deg")
	for _, j := range res.ChosenTracks() {
		tr := lib.Tracks[j]
		fmt.Printf("%d,%d,%d,%d,%.1f,%.2f,%.1f,%.1f,%.1f\n",
			j, res.X[j], tr.Spec.P, tr.Spec.Q,
			tr.Elements.Altitude()/1e3, tr.Elements.Period()/60,
			tr.InclinationDeg(), tr.RAANDeg(), tr.PhaseDeg())
	}
}
