package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCmdTree fabricates a cmd/ tree with one binary using package-
// level flags and one using a named flag set.
func writeCmdTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("toy-a/main.go", `package main

import "flag"

func main() {
	addr := flag.String("addr", "127.0.0.1:1", "listen address")
	n := flag.Int("n", 3, "agent "+"count")
	_ = flag.Bool("v", false, "verbose output")
	_, _ = addr, n
}
`)
	write("toy-b/main.go", `package main

import "flag"

func sub() {
	fs := flag.NewFlagSet("toy-b sub", flag.ContinueOnError)
	_ = fs.String("out", "", "output path")
}

func main() {
	d := flag.Duration("wait", 0, "how long to wait")
	_ = d
	sub()
}
`)
	return dir
}

func TestExtractFlags(t *testing.T) {
	defs, err := extractFlags(writeCmdTree(t))
	if err != nil {
		t.Fatalf("extractFlags: %v", err)
	}
	if got := len(defs["toy-a"]); got != 3 {
		t.Fatalf("toy-a flags = %d: %+v", got, defs["toy-a"])
	}
	// Sorted by name; concatenated usage strings evaluate.
	if defs["toy-a"][1].Name != "n" || defs["toy-a"][1].Usage != "agent count" {
		t.Errorf("toy-a[1] = %+v", defs["toy-a"][1])
	}
	if defs["toy-a"][0].Default != "127.0.0.1:1" {
		t.Errorf("string default not unquoted: %+v", defs["toy-a"][0])
	}
	if got := len(defs["toy-b"]); got != 1 || defs["toy-b"][0].Name != "wait" {
		t.Fatalf("toy-b flags: %+v", defs["toy-b"])
	}
	if got := len(defs["toy-b sub"]); got != 1 || defs["toy-b sub"][0].Usage != "output path" {
		t.Fatalf("toy-b sub flags: %+v", defs["toy-b sub"])
	}
}

func TestFindFlagTablesAndCheck(t *testing.T) {
	md := `# Doc

<!-- tinyleo-docscheck: flags toy-a -->

| Flag | Default | Description |
|---|---|---|
| ` + "`-addr`" + ` | ` + "`127.0.0.1:1`" + ` | listen address |
| ` + "`-n`" + ` | ` + "`3`" + ` | agent count |
| ` + "`-v`" + ` |  | verbose output |

prose after the table
`
	tables := findFlagTables(md)
	if len(tables) != 1 || tables[0].set != "toy-a" || len(tables[0].rows) != 3 {
		t.Fatalf("tables: %+v", tables)
	}
	defs, err := extractFlags(writeCmdTree(t))
	if err != nil {
		t.Fatal(err)
	}
	if problems := checkTable("doc.md", tables[0], defs["toy-a"]); len(problems) != 0 {
		t.Errorf("clean table reported problems: %v", problems)
	}

	// Drifted description, missing flag, and a row for a ghost flag.
	bad := tables[0]
	bad.rows = map[string]string{"addr": "WRONG", "ghost": "x", "v": "verbose output"}
	problems := checkTable("doc.md", bad, defs["toy-a"])
	if len(problems) != 3 {
		t.Fatalf("want 3 problems (drift, missing -n, ghost row), got %d: %v", len(problems), problems)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"drifted", "missing from the table", "no matching flag"} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems lack %q:\n%s", want, joined)
		}
	}
}

// TestFormatTableRoundTrips: a printed table passes its own check.
func TestFormatTableRoundTrips(t *testing.T) {
	defs, err := extractFlags(writeCmdTree(t))
	if err != nil {
		t.Fatal(err)
	}
	md := formatTable("toy-a", defs["toy-a"])
	tables := findFlagTables(md)
	if len(tables) != 1 {
		t.Fatalf("printed table not found: %q", md)
	}
	if problems := checkTable("gen.md", tables[0], defs["toy-a"]); len(problems) != 0 {
		t.Errorf("generated table fails its own check: %v", problems)
	}
}

func TestFindSnippets(t *testing.T) {
	md := "intro\n\n```go\nx := 1\n```\n\n<!-- tinyleo-docscheck: skip -->\n\n```go\nnot go at all\n```\n\n```sh\nls\n```\n"
	sns := findSnippets("d.md", md)
	if len(sns) != 2 {
		t.Fatalf("snippets = %d: %+v", len(sns), sns)
	}
	if sns[0].skip || sns[0].src != "x := 1\n" || sns[0].line != 3 {
		t.Errorf("first snippet: %+v", sns[0])
	}
	if !sns[1].skip {
		t.Errorf("skip marker not honored: %+v", sns[1])
	}
}

func TestCheckSnippetFragments(t *testing.T) {
	cases := []struct {
		src string
		ok  bool
	}{
		{"x := compute()\nif x > 0 {\n\treturn\n}", true}, // statements
		{"type T struct{ N int }", true},                  // declaration
		{"func f() int { return 1 }", true},
		{"this is prose, not go", false},
		{"if { broken", false},
	}
	for _, c := range cases {
		err := checkSnippet(snippet{src: c.src + "\n"})
		if (err == nil) != c.ok {
			t.Errorf("checkSnippet(%q): err=%v want ok=%v", c.src, err, c.ok)
		}
	}
}

func TestIsCompleteFile(t *testing.T) {
	if !isCompleteFile("// a doc comment\npackage main\n") {
		t.Error("package clause after comment not detected")
	}
	if isCompleteFile("x := 1\n") {
		t.Error("fragment misdetected as complete file")
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Distributed campaign runner": "distributed-campaign-runner",
		"The `fleet` API":             "the-fleet-api",
		"What's next?":                "whats-next",
		"CI / CD":                     "ci--cd",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckLinkAndAnchors(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "TARGET.md")
	if err := os.WriteFile(target, []byte("# One\n\n## Repeat\n\n## Repeat\n\n```\n# not a heading\n```\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	from := filepath.Join(dir, "FROM.md")
	if err := os.WriteFile(from, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	anchors := map[string]map[string]bool{}
	for _, tc := range []struct {
		target string
		ok     bool
	}{
		{"TARGET.md", true},
		{"TARGET.md#one", true},
		{"TARGET.md#repeat", true},
		{"TARGET.md#repeat-1", true},
		{"TARGET.md#repeat-2", false},
		{"TARGET.md#not-a-heading", false},
		{"TARGET.md#missing", false},
		{"nope.md", false},
		{"#one", false}, // self-anchor into FROM.md, which has no headings
	} {
		err := checkLink(from, tc.target, anchors)
		if (err == nil) != tc.ok {
			t.Errorf("checkLink(%s): err=%v want ok=%v", tc.target, err, tc.ok)
		}
	}
}
