package main

// The links checker. Every relative markdown link target must exist on
// disk, and #anchor fragments into markdown files must match a heading
// in the target file under GitHub's slug rules (lowercase, punctuation
// stripped, spaces to hyphens, duplicate slugs suffixed -1, -2, ...).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	linkRE    = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	headingRE = regexp.MustCompile(`^#{1,6}\s+(.*)$`)
	slugDrop  = regexp.MustCompile(`[^a-z0-9 \-_]`)
)

func runLinks(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("links: no markdown files given")
	}
	var problems []string
	checked := 0
	anchors := map[string]map[string]bool{} // md path -> slug set (lazy)
	for _, md := range args {
		src, err := os.ReadFile(md)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				checked++
				if err := checkLink(md, target, anchors); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: link (%s): %v", md, i+1, target, err))
				}
			}
		}
	}
	if err := report("links", problems); err != nil {
		return err
	}
	fmt.Printf("links: %d relative link(s) checked\n", checked)
	return nil
}

// checkLink resolves one relative target (with optional #anchor)
// against the filesystem, from the linking file's directory.
func checkLink(from, target string, anchors map[string]map[string]bool) error {
	path, frag, _ := strings.Cut(target, "#")
	resolved := from
	if path != "" {
		resolved = filepath.Join(filepath.Dir(from), path)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Errorf("target does not exist")
		}
	}
	if frag == "" {
		return nil
	}
	if !strings.HasSuffix(resolved, ".md") {
		return fmt.Errorf("anchor into a non-markdown target")
	}
	slugs, ok := anchors[resolved]
	if !ok {
		var err error
		if slugs, err = headingSlugs(resolved); err != nil {
			return err
		}
		anchors[resolved] = slugs
	}
	if !slugs[frag] {
		return fmt.Errorf("no heading with slug %q in %s", frag, resolved)
	}
	return nil
}

// headingSlugs collects the GitHub anchor slugs of a markdown file's
// headings, skipping fenced code blocks.
func headingSlugs(path string) (map[string]bool, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	slugs := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := counts[slug]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			slugs[slug] = true
		}
		counts[slug]++
	}
	return slugs, nil
}

// slugify applies GitHub's heading-to-anchor rules.
func slugify(h string) string {
	h = strings.TrimSpace(h)
	h = strings.ReplaceAll(h, "`", "")
	h = strings.ToLower(h)
	h = slugDrop.ReplaceAllString(h, "")
	return strings.ReplaceAll(h, " ", "-")
}
