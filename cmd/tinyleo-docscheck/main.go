// Command tinyleo-docscheck keeps the prose honest: it cross-checks the
// markdown documentation against the code and fails CI when they drift.
// Three checkers:
//
//	tinyleo-docscheck flags -cmds ./cmd OPERATIONS.md [more.md...]
//	tinyleo-docscheck snippets README.md ARCHITECTURE.md [more.md...]
//	tinyleo-docscheck links README.md [more.md...]
//
// flags extracts every flag definition (name + usage string) from the
// command packages' sources and compares them against markdown tables
// annotated with a marker comment:
//
//	<!-- tinyleo-docscheck: flags tinyleo-sat -->
//	| Flag | Default | Description |
//	|---|---|---|
//	| `-controller` | `127.0.0.1:7601` | controller address |
//
// Every defined flag must have a table row and every row a defined
// flag, and the description cell must equal the flag's -help usage
// text exactly (the default column is informational). -print emits
// up-to-date tables for every discovered flag set, so regenerating a
// stale table is copy-paste. Each flag set found in the sources must be
// documented in at least one of the given files.
//
// snippets extracts fenced ```go blocks: blocks that are complete files
// (they start with a package clause) are compiled with the real
// toolchain inside the module, so imports and types are checked;
// fragments are parsed for syntax. Blocks annotated with a preceding
// <!-- tinyleo-docscheck: skip --> comment are ignored.
//
// links resolves every relative markdown link target against the
// filesystem and verifies #anchors against the target file's headings
// (GitHub slug rules).
//
// Exit status: 0 clean, 1 drift found, 2 usage errors.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "flags":
		err = runFlags(os.Args[2:])
	case "snippets":
		err = runSnippets(os.Args[2:])
	case "links":
		err = runLinks(os.Args[2:])
	case "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tinyleo-docscheck: unknown checker %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-docscheck: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tinyleo-docscheck <checker> [args]

checkers:
  flags     -cmds <dir> [-print] <md files...>   flag tables match the sources
  snippets  <md files...>                        fenced go blocks compile/parse
  links     <md files...>                        relative links and anchors resolve`)
	os.Exit(2)
}
