package main

// The snippets checker. Fenced ```go blocks in the given markdown
// files must at least parse; blocks that are complete files (leading
// package clause) are additionally compiled with the real toolchain
// inside the module, so their imports and types are checked against
// the code they document.

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// snippet is one fenced go block.
type snippet struct {
	file string
	line int // 1-based line of the opening fence
	src  string
	skip bool
}

const skipMarker = "<!-- tinyleo-docscheck: skip -->"

func runSnippets(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("snippets: no markdown files given")
	}
	var problems []string
	checked := 0
	for _, md := range args {
		src, err := os.ReadFile(md)
		if err != nil {
			return err
		}
		for _, sn := range findSnippets(md, string(src)) {
			if sn.skip {
				continue
			}
			checked++
			if err := checkSnippet(sn); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: %v", sn.file, sn.line, err))
			}
		}
	}
	if err := report("snippets", problems); err != nil {
		return err
	}
	fmt.Printf("snippets: %d go block(s) checked\n", checked)
	return nil
}

// findSnippets extracts fenced go blocks. A skip marker on the line
// directly above the fence (blank lines allowed) exempts a block.
func findSnippets(file, src string) []snippet {
	lines := strings.Split(src, "\n")
	var out []snippet
	for i := 0; i < len(lines); i++ {
		trimmed := strings.TrimSpace(lines[i])
		if trimmed != "```go" {
			continue
		}
		sn := snippet{file: file, line: i + 1}
		for k := i - 1; k >= 0; k-- {
			prev := strings.TrimSpace(lines[k])
			if prev == "" {
				continue
			}
			sn.skip = prev == skipMarker
			break
		}
		var body []string
		j := i + 1
		for ; j < len(lines) && strings.TrimSpace(lines[j]) != "```"; j++ {
			body = append(body, lines[j])
		}
		sn.src = strings.Join(body, "\n") + "\n"
		out = append(out, sn)
		i = j
	}
	return out
}

// checkSnippet validates one block. Complete files compile; fragments
// must parse either as top-level declarations or as statements.
func checkSnippet(sn snippet) error {
	if isCompleteFile(sn.src) {
		return buildSnippet(sn.src)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "snippet.go", "package p\n\n"+sn.src, 0); err == nil {
		return nil
	}
	_, err := parser.ParseFile(fset, "snippet.go", "package p\n\nfunc _() {\n"+sn.src+"\n}", 0)
	if err != nil {
		return fmt.Errorf("go fragment does not parse (as declarations or statements): %v", err)
	}
	return nil
}

// isCompleteFile reports whether the block starts with a package
// clause (ignoring comments and blank lines).
func isCompleteFile(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		return strings.HasPrefix(t, "package ")
	}
	return false
}

// buildSnippet compiles a complete-file block in a throwaway package
// directory under the module root, so `repro/...` imports resolve.
// Names starting with "." or "_" are invisible to the go tool, hence
// the plain "docsnip" prefix; the directory is removed afterwards.
func buildSnippet(src string) error {
	dir, err := os.MkdirTemp(".", "docsnip")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		return err
	}
	cmd := exec.Command("go", "vet", "./"+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go snippet does not compile:\n%s", strings.ReplaceAll(string(out), dir+"/", ""))
	}
	return nil
}
