package main

// The flags checker. Flag definitions are extracted from the command
// sources with go/ast — no binaries are built and no flag package is
// executed — then matched against annotated markdown tables. A flag
// definition is any call to flag.String/Bool/... (attributed to the
// binary named after the cmd directory) or fs.String/... where fs was
// assigned from flag.NewFlagSet("name", ...) earlier in the same
// function (attributed to that name, e.g. "tinyleo-ctl top").

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// flagDef is one flag definition discovered in the sources.
type flagDef struct {
	Set     string // flag set name: binary name or NewFlagSet literal
	Name    string // flag name without the leading dash
	Default string // rendered default expression (informational)
	Usage   string // usage string — must match the doc table exactly
}

// defMethods are the flag.FlagSet definition methods we attribute.
// The *Var variants take the name as the second argument.
var defMethods = map[string]int{
	"String": 0, "Bool": 0, "Int": 0, "Int64": 0, "Uint": 0, "Uint64": 0,
	"Float64": 0, "Duration": 0,
	"StringVar": 1, "BoolVar": 1, "IntVar": 1, "Int64Var": 1, "UintVar": 1,
	"Uint64Var": 1, "Float64Var": 1, "DurationVar": 1,
}

func runFlags(args []string) error {
	fs := flag.NewFlagSet("tinyleo-docscheck flags", flag.ExitOnError)
	cmds := fs.String("cmds", "./cmd", "directory holding the command packages")
	print := fs.Bool("print", false, "print up-to-date flag tables for every set instead of checking")
	fs.Parse(args)

	defs, err := extractFlags(*cmds)
	if err != nil {
		return err
	}
	if *print {
		printTables(defs)
		return nil
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("flags: no markdown files given")
	}

	var problems []string
	documented := map[string]bool{}
	for _, md := range fs.Args() {
		src, err := os.ReadFile(md)
		if err != nil {
			return err
		}
		for _, tbl := range findFlagTables(string(src)) {
			documented[tbl.set] = true
			problems = append(problems, checkTable(md, tbl, defs[tbl.set])...)
		}
	}
	total := 0
	for _, set := range sortedKeys(defs) {
		total += len(defs[set])
		if !documented[set] {
			problems = append(problems, fmt.Sprintf("flag set %q is not documented in any given file (run with -print to generate its table)", set))
		}
	}
	if err := report("flags", problems); err != nil {
		return err
	}
	fmt.Printf("flags: %d flag(s) across %d set(s) checked\n", total, len(defs))
	return nil
}

// extractFlags parses every non-test .go file under each cmd
// subdirectory and collects flag definitions grouped by set name.
func extractFlags(cmdsDir string) (map[string][]flagDef, error) {
	entries, err := os.ReadDir(cmdsDir)
	if err != nil {
		return nil, fmt.Errorf("flags: %w", err)
	}
	defs := map[string][]flagDef{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(cmdsDir, e.Name())
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return nil, err
		}
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			if err := extractFile(file, e.Name(), defs); err != nil {
				return nil, err
			}
		}
	}
	for set := range defs {
		sort.Slice(defs[set], func(i, j int) bool { return defs[set][i].Name < defs[set][j].Name })
	}
	return defs, nil
}

// extractFile walks one source file. Each function body is scanned in
// source order: assignments from flag.NewFlagSet bind a variable to a
// set name, and subsequent definition calls on that variable (or on the
// flag package itself, meaning the default set = the binary) record a
// flagDef.
func extractFile(path, binary string, defs map[string][]flagDef) error {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return fmt.Errorf("flags: parse %s: %w", path, err)
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		setOf := map[string]string{} // local var name -> flag set name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i >= len(node.Lhs) {
						break
					}
					name, ok := flagSetLiteral(rhs)
					if !ok {
						continue
					}
					if id, ok := node.Lhs[i].(*ast.Ident); ok {
						setOf[id.Name] = name
					}
				}
			case *ast.CallExpr:
				sel, ok := node.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				nameArg, ok := defMethods[sel.Sel.Name]
				if !ok || len(node.Args) < nameArg+3 {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				set := ""
				if recv.Name == "flag" && recv.Obj == nil {
					set = binary
				} else if s, bound := setOf[recv.Name]; bound {
					set = s
				} else {
					return true
				}
				name, ok1 := stringLit(node.Args[nameArg])
				usage, ok2 := stringLit(node.Args[nameArg+2])
				if !ok1 || !ok2 {
					return true
				}
				defs[set] = append(defs[set], flagDef{
					Set:     set,
					Name:    name,
					Default: renderExpr(fset, node.Args[nameArg+1]),
					Usage:   usage,
				})
			}
			return true
		})
	}
	return nil
}

// flagSetLiteral matches flag.NewFlagSet("name", ...) and returns name.
func flagSetLiteral(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewFlagSet" || len(call.Args) < 1 {
		return "", false
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "flag" {
		return "", false
	}
	return stringLit(call.Args[0])
}

// stringLit evaluates a string literal or a concatenation of literals.
func stringLit(e ast.Expr) (string, bool) {
	switch node := e.(type) {
	case *ast.BasicLit:
		if node.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(node.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if node.Op != token.ADD {
			return "", false
		}
		l, ok1 := stringLit(node.X)
		r, ok2 := stringLit(node.Y)
		return l + r, ok1 && ok2
	case *ast.ParenExpr:
		return stringLit(node.X)
	}
	return "", false
}

// renderExpr prints the default-value expression as source, unquoting
// plain string literals so tables read `127.0.0.1:7601`, not `"..."`.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	if s, ok := stringLit(e); ok {
		return s
	}
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// flagTable is one annotated markdown table.
type flagTable struct {
	set  string
	line int               // 1-based line of the marker comment
	rows map[string]string // flag name -> description cell
}

var markerRE = regexp.MustCompile(`<!--\s*tinyleo-docscheck:\s*flags\s+(.+?)\s*-->`)

// findFlagTables locates every marker comment and parses the table
// that follows it (blank lines allowed in between).
func findFlagTables(src string) []flagTable {
	lines := strings.Split(src, "\n")
	var tables []flagTable
	for i := 0; i < len(lines); i++ {
		m := markerRE.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		tbl := flagTable{set: m[1], line: i + 1, rows: map[string]string{}}
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		// Header + separator rows, then data rows until the table ends.
		for seen := 0; j < len(lines) && strings.HasPrefix(strings.TrimSpace(lines[j]), "|"); j++ {
			seen++
			if seen <= 2 {
				continue
			}
			cells := splitRow(lines[j])
			if len(cells) < 3 {
				continue
			}
			name := strings.TrimPrefix(strings.Trim(cells[0], "`"), "-")
			tbl.rows[name] = cells[2]
		}
		tables = append(tables, tbl)
		i = j - 1
	}
	return tables
}

// splitRow splits a markdown table row into trimmed cells.
func splitRow(row string) []string {
	row = strings.TrimSpace(row)
	row = strings.TrimPrefix(row, "|")
	row = strings.TrimSuffix(row, "|")
	parts := strings.Split(row, "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// checkTable compares one documented table against the extracted defs.
func checkTable(md string, tbl flagTable, defs []flagDef) []string {
	var problems []string
	at := fmt.Sprintf("%s:%d [%s]", md, tbl.line, tbl.set)
	if defs == nil {
		return []string{fmt.Sprintf("%s: table documents unknown flag set (not found in the sources)", at)}
	}
	byName := map[string]flagDef{}
	for _, d := range defs {
		byName[d.Name] = d
		doc, ok := tbl.rows[d.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: flag -%s is defined in the sources but missing from the table", at, d.Name))
			continue
		}
		if doc != d.Usage {
			problems = append(problems, fmt.Sprintf("%s: flag -%s description drifted:\n  code: %s\n  docs: %s", at, d.Name, d.Usage, doc))
		}
	}
	for _, name := range sortedKeys(tbl.rows) {
		if _, ok := byName[name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: table row -%s has no matching flag in the sources", at, name))
		}
	}
	return problems
}

// printTables emits a ready-to-paste annotated table per flag set.
func printTables(defs map[string][]flagDef) {
	for _, set := range sortedKeys(defs) {
		fmt.Println(formatTable(set, defs[set]))
	}
}

// sortedKeys returns a map's keys sorted, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatTable renders one annotated markdown table.
func formatTable(set string, defs []flagDef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!-- tinyleo-docscheck: flags %s -->\n", set)
	b.WriteString("| Flag | Default | Description |\n|---|---|---|\n")
	for _, d := range defs {
		def := d.Default
		if def == "" {
			def = " "
		} else {
			def = "`" + def + "`"
		}
		fmt.Fprintf(&b, "| `-%s` | %s | %s |\n", d.Name, def, d.Usage)
	}
	return b.String()
}

// report prints problems and returns an error when any exist.
func report(checker string, problems []string) error {
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if n := len(problems); n > 0 {
		return fmt.Errorf("%s: %d problem(s)", checker, n)
	}
	return nil
}
