// Command tinyleo-testground is the distributed campaign runner: it
// reads a declarative test-plan manifest (JSON or TOML), launches one
// real tinyleo-ctl controller plus N real tinyleo-sat agent processes
// over the real TCP southbound, coordinates startup through a sync
// service (HTTP barrier + parameter distribution), injects faults by
// signaling agent processes on schedule, and collects per-run artifacts
// (fleet snapshot, flight recordings, traces, process logs) into a run
// directory with a scored SLO report.
//
//	tinyleo-testground -plan plans/smoke.json -out runs/smoke
//
// Virtual-mode plans (mode = "virtual") drive the in-process chaos
// engine on a virtual clock instead of real processes: the same
// manifest and seed produce a byte-identical report.json, which is the
// determinism contract CI diffs.
//
//	tinyleo-testground -plan plans/storm.toml -out runs/storm
//
// Exit status: 0 when the run passed its SLO rules, 1 on breach or
// orchestration failure, 2 on usage errors. The scored report lands in
// <out>/report.json; -v streams orchestration progress to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/testground"
)

func main() {
	plan := flag.String("plan", "", "test-plan manifest to run (.json or .toml; required)")
	out := flag.String("out", "", "run directory for artifacts and the scored report (default testground-<name>)")
	ctlBin := flag.String("ctl-bin", "tinyleo-ctl", "tinyleo-ctl binary to launch (exec mode)")
	satBin := flag.String("sat-bin", "tinyleo-sat", "tinyleo-sat binary to launch (exec mode)")
	timeout := flag.Duration("timeout", 0, "abort the controller process after this long (0 = derived from the plan)")
	verbose := flag.Bool("v", false, "stream orchestration progress to stderr")
	flag.Parse()
	if *plan == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: tinyleo-testground -plan <manifest.{json,toml}> [-out dir] [-v]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	m, err := testground.Load(*plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-testground: %v\n", err)
		os.Exit(2)
	}
	dir := *out
	if dir == "" {
		dir = "testground-" + m.Name
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-testground: %v\n", err)
		os.Exit(1)
	}
	var log io.Writer = io.Discard
	if *verbose {
		log = os.Stderr
	}

	var rep *testground.RunReport
	switch m.Mode {
	case testground.ModeVirtual:
		rep, err = testground.RunVirtual(m, dir)
	default:
		rep, err = testground.RunExec(m, testground.ExecConfig{
			CtlBin: *ctlBin, SatBin: *satBin, Dir: dir, Log: log, CtlTimeout: *timeout,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-testground: %v\n", err)
		os.Exit(1)
	}
	path, err := rep.WriteFile(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-testground: %v\n", err)
		os.Exit(1)
	}
	printSummary(os.Stdout, m, rep, path)
	if !rep.Passed {
		os.Exit(1)
	}
}

// printSummary renders the run's verdicts and artifact inventory.
func printSummary(w io.Writer, m *testground.Manifest, rep *testground.RunReport, path string) {
	verdict := "PASS"
	if !rep.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "%s: plan %q (%s mode, seed %d): %s\n", verdict, m.Name, m.Mode, m.Seed, path)
	if rep.Err != "" {
		fmt.Fprintf(w, "  error: %s\n", rep.Err)
	}
	if f := rep.Fleet; f != nil {
		states, _ := json.Marshal(f.States)
		fmt.Fprintf(w, "  fleet: %d agents %s, %d reports, %d gaps, %d decode errors\n",
			f.Agents, states, f.Reports, f.Gaps, f.DecodeErrors)
	}
	for _, fr := range rep.Faults {
		suffix := ""
		if fr.Err != "" {
			suffix = " (" + fr.Err + ")"
		}
		fmt.Fprintf(w, "  fault +%gs: %s agent %d%s\n", fr.AtS, fr.Kind, fr.Agent, suffix)
	}
	for _, st := range rep.SLO {
		v := "ok"
		if st.Breached {
			v = "BREACH"
		}
		fmt.Fprintf(w, "  slo: %-48s value=%.4g %s\n", st.Expr(), st.Value, v)
	}
	fmt.Fprintf(w, "  artifacts: %d files in %s\n", len(rep.Artifacts), dirOf(path))
	if rep.WallElapsedMS > 0 {
		fmt.Fprintf(w, "  wall: %.1fs\n", rep.WallElapsedMS/1000)
	}
}

func dirOf(path string) string {
	if i := len(path) - len("/"+testground.ReportFile); i > 0 {
		return path[:i]
	}
	return "."
}
