package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
)

func TestRenderTop(t *testing.T) {
	v := &fleet.View{
		Agents: []fleet.AgentView{
			{ID: 1, State: fleet.StateHealthy, LastSeq: 12, Reports: 12, Bytes: 2048, SilenceMS: 300, Series: 9},
			{ID: 2, State: fleet.StateSilent, LastSeq: 4, Reports: 4, Bytes: 512, Gaps: 1, SilenceMS: 12000, Series: 9},
		},
		States:       map[string]int{"healthy": 1, "silent": 1},
		DecodeErrors: 0,
		Totals: []obs.Sample{
			{Name: "lat_s", Kind: obs.KindHistogram, Count: 10, Sum: 2.5},
			{Name: "pkts_total", Kind: obs.KindCounter, Value: 61,
				Labels: map[string]string{"dir": "rx"}},
		},
	}
	events := []flightrec.Event{
		{Seq: 3, TimeUS: 1_500_000, Component: flightrec.CompFleet, Type: "agent_silent",
			Attrs: []string{"agent", "2", "from", "lagging", "to", "silent"}},
	}
	var sb strings.Builder
	renderTop(&sb, "127.0.0.1:9100", v, events, 10)
	out := sb.String()

	for _, want := range []string{
		"2 agents",
		"1 healthy",
		"1 silent",
		"pkts_total{dir=rx}",
		"61",
		"count=10 mean=0.25",
		"agent_silent",
		"agent=2",
		"2.0K", // agent 1's byte column
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTop output missing %q:\n%s", want, out)
		}
	}
	// Agent rows appear in ID order.
	if strings.Index(out, "healthy") > strings.Index(out, "silent ") {
		t.Errorf("agent rows out of order:\n%s", out)
	}
}

func TestSeriesLabelAndSize(t *testing.T) {
	s := obs.Sample{Name: "m", Labels: map[string]string{"b": "2", "a": "1"}}
	if got := seriesLabel(&s); got != "m{a=1,b=2}" {
		t.Errorf("seriesLabel = %q", got)
	}
	for n, want := range map[uint64]string{5: "5", 2048: "2.0K", 3 << 20: "3.0M"} {
		if got := sizeOf(n); got != want {
			t.Errorf("sizeOf(%d) = %q, want %q", n, got, want)
		}
	}
}
