package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
)

// writeFleetSnapshot dumps the aggregator's /fleet view as indented JSON
// — the per-run artifact `tinyleo-ctl fleet snapshot` also produces from
// a live controller.
func writeFleetSnapshot(path string, agg *fleet.Aggregator) error {
	return agg.WriteSnapshotFile(path)
}

// fetchFleet GETs the /fleet document from a controller telemetry
// address.
func fetchFleet(addr string) (*fleet.View, error) {
	resp, err := http.Get("http://" + addr + "/fleet")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /fleet: %s", resp.Status)
	}
	var v fleet.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// fetchEventsSince tails the controller's /events ring incrementally via
// the ?since=<seq> cursor, returning only events newer than since.
func fetchEventsSince(addr string, since uint64) ([]flightrec.Event, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/events?since=%d", addr, since))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /events: %s", resp.Status)
	}
	var events []flightrec.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev flightrec.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return events, err
		}
		events = append(events, ev)
	}
	return events, sc.Err()
}

// runFleet implements `tinyleo-ctl fleet snapshot`: fetch the live /fleet
// document and write it as a per-run artifact.
func runFleet(args []string) {
	if len(args) == 0 || args[0] != "snapshot" {
		fmt.Fprintln(os.Stderr, "usage: tinyleo-ctl fleet snapshot [-addr host:port] [-o fleet.json]")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("tinyleo-ctl fleet snapshot", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9100", "controller telemetry address (the -metrics-addr of a running tinyleo-ctl)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args[1:])
	v, err := fetchFleet(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl fleet snapshot: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tinyleo-ctl fleet snapshot: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl fleet snapshot: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

// runTop implements `tinyleo-ctl top`: a live refreshing terminal view of
// per-agent health rows plus fleet aggregates, polling /fleet and tailing
// /events?since= incrementally.
func runTop(args []string) {
	fs := flag.NewFlagSet("tinyleo-ctl top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9100", "controller telemetry address (the -metrics-addr of a running tinyleo-ctl)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	maxSeries := fs.Int("max-series", 16, "fleet total series to show before eliding")
	maxEvents := fs.Int("max-events", 8, "recent fleet events to keep on screen")
	once := fs.Bool("once", false, "print a single frame and exit (no screen clearing)")
	fs.Parse(args)

	var lastEventSeq uint64
	var recent []flightrec.Event
	frame := func() error {
		v, err := fetchFleet(*addr)
		if err != nil {
			return err
		}
		// Event tailing is best-effort: /events only exists when the
		// controller runs with the flight recorder on.
		if events, err := fetchEventsSince(*addr, lastEventSeq); err == nil {
			for _, ev := range events {
				if ev.Seq > lastEventSeq {
					lastEventSeq = ev.Seq
				}
				if ev.Component == flightrec.CompFleet || ev.Component == flightrec.CompSouthbound {
					recent = append(recent, ev)
				}
			}
			if len(recent) > *maxEvents {
				recent = recent[len(recent)-*maxEvents:]
			}
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		renderTop(os.Stdout, *addr, v, recent, *maxSeries)
		return nil
	}
	if err := frame(); err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl top: %v\n", err)
		os.Exit(1)
	}
	if *once {
		return
	}
	for range time.Tick(*interval) {
		if err := frame(); err != nil {
			fmt.Fprintf(os.Stderr, "tinyleo-ctl top: %v\n", err)
		}
	}
}

// renderTop writes one `tinyleo-ctl top` frame: a fleet summary line,
// per-agent health rows, the top fleet aggregates, and recent events.
func renderTop(w io.Writer, addr string, v *fleet.View, events []flightrec.Event, maxSeries int) {
	states := make([]string, 0, len(v.States))
	for s := range v.States {
		states = append(states, s)
	}
	sort.Strings(states)
	var sb strings.Builder
	for _, s := range states {
		fmt.Fprintf(&sb, " %d %s", v.States[s], s)
	}
	fmt.Fprintf(w, "tinyleo fleet @ %s · %d agents%s · %d decode errors\n\n",
		addr, len(v.Agents), sb.String(), v.DecodeErrors)

	fmt.Fprintf(w, "%6s  %-8s %8s %8s %10s %5s %9s %7s\n",
		"AGENT", "STATE", "SEQ", "REPORTS", "BYTES", "GAPS", "SILENCE", "SERIES")
	for _, a := range v.Agents {
		fmt.Fprintf(w, "%6d  %-8s %8d %8d %10s %5d %8.1fs %7d\n",
			a.ID, a.State, a.LastSeq, a.Reports, sizeOf(a.Bytes), a.Gaps,
			float64(a.SilenceMS)/1000, a.Series)
	}

	fmt.Fprintf(w, "\nfleet totals (top %d of %d series)\n", min(maxSeries, len(v.Totals)), len(v.Totals))
	shown := 0
	for _, s := range v.Totals {
		if shown >= maxSeries {
			fmt.Fprintf(w, "  ... %d more\n", len(v.Totals)-shown)
			break
		}
		shown++
		switch s.Kind {
		case obs.KindHistogram:
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			fmt.Fprintf(w, "  %-58s count=%d mean=%.4g\n", seriesLabel(&s), s.Count, mean)
		default:
			fmt.Fprintf(w, "  %-58s %g\n", seriesLabel(&s), s.Value)
		}
	}

	if len(events) > 0 {
		fmt.Fprintf(w, "\nrecent events\n")
		for _, ev := range events {
			attrs := make([]string, 0, len(ev.Attrs)/2)
			for i := 0; i+1 < len(ev.Attrs); i += 2 {
				attrs = append(attrs, ev.Attrs[i]+"="+ev.Attrs[i+1])
			}
			fmt.Fprintf(w, "  +%9.3fs %-10s %-16s %s\n",
				float64(ev.TimeUS)/1e6, ev.Component, ev.Type, strings.Join(attrs, " "))
		}
	}
}

// seriesLabel renders name{k=v,...} for a totals row.
func seriesLabel(s *obs.Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// sizeOf renders a byte count compactly (999, 1.2K, 3.4M).
func sizeOf(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1000:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d", n)
}
