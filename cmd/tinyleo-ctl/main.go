// Command tinyleo-ctl is the terrestrial TinyLEO controller: it serves
// the southbound API over TCP, compiles a geographic intent with the
// orbital MPC every control slot, pushes ISL/ring configuration to the
// connected satellite agents, and repairs reported failures (§4.2, §5).
//
// Run one tinyleo-ctl and any number of tinyleo-sat agents against it:
//
//	tinyleo-ctl -listen 127.0.0.1:7601 -agents 8 -slots 4 -dt 300
//
// Telemetry: -metrics-addr serves live Prometheus text on /metrics —
// merging the process-wide registry (MPC compile/repair series) with the
// southbound controller's registry (per-type message counters, connected
// agents, ack RTT) — plus /metrics.json, /healthz, /trace; -trace-out
// writes the span ring as JSONL on exit.
//
//	tinyleo-ctl -listen 127.0.0.1:7601 -agents 8 -metrics-addr 127.0.0.1:9100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/mpc"
	"repro/internal/obs"
	"repro/internal/southbound"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7601", "southbound listen address")
	agents := flag.Int("agents", 4, "number of satellite agents to wait for")
	slots := flag.Int("slots", 4, "control slots to run")
	dt := flag.Float64("dt", 300, "control slot duration (seconds of orbital time)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for agents")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace on this address (empty = telemetry off)")
	traceOut := flag.String("trace-out", "", "write the span trace as JSONL to this file on exit")
	flag.Parse()

	if *metricsAddr != "" || *traceOut != "" {
		obs.Enable()
		obs.EnableTracing(0)
	}
	ctl, err := southbound.ListenController(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl: %v\n", err)
		os.Exit(1)
	}
	defer ctl.Close()
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.Default(), ctl.Metrics())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tinyleo-ctl: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}
	if *traceOut != "" {
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-ctl: trace: %v\n", err)
				return
			}
			defer f.Close()
			if err := obs.Trace().WriteJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-ctl: trace: %v\n", err)
				return
			}
			fmt.Printf("trace: wrote %s to %s\n", obs.Trace().WriteFileSummary(), *traceOut)
		}()
	}
	fmt.Printf("controller listening on %s, waiting for %d agents...\n", ctl.Addr(), *agents)
	if err := ctl.WaitForAgents(*agents, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d agents registered\n", ctl.AgentCount())

	// Demo constellation + chain intent (agents play the first N sats).
	sats := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200, Planes: 16, SatsPerPlane: 16, PhasingF: 1,
	}.Satellites()
	g := geo.MustGrid(10)
	topo := intent.NewTopology(g)
	var cells []int
	for i := 0; i < 4; i++ {
		id := g.CellOf(geom.LatLon{Lat: 5, Lon: float64(-15 + i*10)})
		topo.AddCell(id, 3)
		cells = append(cells, id)
	}
	for i := 1; i < len(cells); i++ {
		topo.Connect(cells[i-1], cells[i], 1)
	}
	compiler, err := mpc.New(mpc.Config{Topo: topo, Sats: sats})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl: %v\n", err)
		os.Exit(1)
	}

	// Failure hook: greedily re-link the reporter to the best alternative.
	ctl.OnFailure = func(report *southbound.Message) []*southbound.Message {
		fmt.Printf("failure report from sat %d (peer %d); repairing\n", report.SatID, report.Peer)
		return []*southbound.Message{
			{Type: southbound.MsgSetISL, SatID: report.SatID, Peer: report.Peer, Up: false},
		}
	}

	var prev *mpc.Snapshot
	for s := 0; s < *slots; s++ {
		t := float64(s) * *dt
		snap := compiler.Compile(t)
		added, removed := mpc.DiffLinks(prev, snap)
		prev = snap
		fmt.Printf("slot %d (t=%.0fs): %d inter-cell ISLs, %d ring ISLs, %d changes, enforcement %.2f\n",
			s, t, len(snap.InterLinks), len(snap.RingLinks), len(added)+len(removed),
			compiler.EnforcementRatio(snap))
		// Push changes to the agents that are connected (agent IDs are
		// satellite indices).
		pushed := 0
		for _, l := range added {
			for _, end := range []int{l[0], l[1]} {
				m := &southbound.Message{
					Type: southbound.MsgSetISL, SatID: uint32(end),
					Peer: uint32(l.Peer(end)), Up: true,
				}
				if err := ctl.Send(m); err == nil {
					pushed++
				}
			}
		}
		for _, l := range removed {
			for _, end := range []int{l[0], l[1]} {
				m := &southbound.Message{
					Type: southbound.MsgSetISL, SatID: uint32(end),
					Peer: uint32(l.Peer(end)), Up: false,
				}
				if err := ctl.Send(m); err == nil {
					pushed++
				}
			}
		}
		fmt.Printf("  pushed %d commands to connected agents\n", pushed)
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Printf("totals: %d southbound messages\n", ctl.TotalMessages())
}
