// Command tinyleo-ctl is the terrestrial TinyLEO controller: it serves
// the southbound API over TCP, compiles a geographic intent with the
// orbital MPC every control slot, pushes ISL/ring configuration to the
// connected satellite agents, and repairs reported failures (§4.2, §5).
//
// Slots are compiled by the horizon planner: -workers goroutines compile
// future slots ahead of enforcement (the plan is identical to sequential
// compilation, only earlier).
//
// Run one tinyleo-ctl and any number of tinyleo-sat agents against it:
//
//	tinyleo-ctl -listen 127.0.0.1:7601 -agents 8 -slots 4 -dt 300 -workers 4
//
// Telemetry: -metrics-addr serves live Prometheus text on /metrics —
// merging the process-wide registry (MPC compile/repair series) with the
// southbound controller's registry (per-type message counters, connected
// agents, ack RTT) — plus /metrics.json, /healthz, /trace; -trace-out
// writes the span ring as JSONL on exit. -record-out captures a flight
// recording (per-slot compiled topologies, typed events, SLO status) and
// -slo overrides the objective thresholds; with -metrics-addr the live
// SLO status is also served on /slo. Output files flush on
// SIGINT/SIGTERM too.
//
//	tinyleo-ctl -listen 127.0.0.1:7601 -agents 8 -metrics-addr 127.0.0.1:9100 \
//	    -record-out flight.jsonl.gz -slo 'availability>=0.95,deficit_ratio<=0.1'
//
// Postmortems: the inspect subcommand renders a recording into per-slot
// topology diffs, reconstructed failure→repair sequences, and SLO breach
// context:
//
//	tinyleo-ctl inspect -in flight.jsonl.gz
//	tinyleo-ctl inspect -in flight.jsonl.gz -events -max-links 16
//
// Distributed tracing: with -trace-out on the controller and every agent,
// the trace subcommand merges the per-process JSONL dumps into one
// timeline — correcting clock skew from the send→ack brackets — and
// renders it as a Chrome trace (chrome://tracing, Perfetto) or the
// deterministic canonical text form:
//
//	tinyleo-ctl trace -o merged.json ctl.jsonl sat3.jsonl sat4.jsonl
//	tinyleo-ctl trace -canonical ctl.jsonl sat3.jsonl sat4.jsonl
//
// Fleet telemetry: agents running with -fleet-interval push delta-encoded
// registry reports over the southbound session; the controller aggregates
// them into a rollup registry (served on /metrics and /fleet) and tracks
// per-agent staleness. The top subcommand renders the live constellation
// health view, and fleet snapshot dumps the /fleet document as a per-run
// artifact (-fleet-out does the same automatically on exit):
//
//	tinyleo-ctl top -addr 127.0.0.1:9100
//	tinyleo-ctl fleet snapshot -addr 127.0.0.1:9100 -o fleet.json
//
// -pprof additionally serves net/http/pprof profiles (CPU, heap, mutex,
// block) under /debug/pprof/ on the -metrics-addr listener.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/cli"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/mpc"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/tracemerge"
	"repro/internal/southbound"
	"repro/internal/testground"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "inspect":
			runInspect(os.Args[2:])
			return
		case "trace":
			runTraceMerge(os.Args[2:])
			return
		case "top":
			runTop(os.Args[2:])
			return
		case "fleet":
			runFleet(os.Args[2:])
			return
		}
	}
	runController()
}

// runTraceMerge implements `tinyleo-ctl trace`: merge per-process trace
// dumps (controller + agents) into one skew-corrected timeline.
func runTraceMerge(args []string) {
	fs := flag.NewFlagSet("tinyleo-ctl trace", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	canonical := fs.Bool("canonical", false, "emit the deterministic canonical text form instead of a Chrome trace")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tinyleo-ctl trace [-o merged.json] [-canonical] dump.jsonl...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	var dumps []*tracemerge.Dump
	for _, path := range fs.Args() {
		d, err := tracemerge.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tinyleo-ctl trace: %s: %v\n", path, err)
			os.Exit(1)
		}
		dumps = append(dumps, d)
	}
	m := tracemerge.Merge(dumps...)
	anchor, offsets := m.Offsets()
	fmt.Fprintf(os.Stderr, "merged %d dumps, %d spans; clock anchor %q\n", len(dumps), len(m.Spans), anchor)
	procs := make([]string, 0, len(offsets))
	for proc := range offsets {
		if proc != anchor {
			procs = append(procs, proc)
		}
	}
	sort.Strings(procs)
	for _, proc := range procs {
		fmt.Fprintf(os.Stderr, "  %s: %+.3fms skew\n", proc, float64(offsets[proc])/1000)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tinyleo-ctl trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *canonical {
		err = m.WriteCanonical(w)
	} else {
		err = m.WriteChromeTrace(w)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl trace: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

// runInspect implements `tinyleo-ctl inspect`: load a recording, print
// the postmortem report.
func runInspect(args []string) {
	fs := flag.NewFlagSet("tinyleo-ctl inspect", flag.ExitOnError)
	in := fs.String("in", "", "flight recording to inspect (required; .gz sniffed automatically)")
	events := fs.Bool("events", false, "append the full event log to the report")
	maxLinks := fs.Int("max-links", 8, "ISL diff entries to print per slot before eliding")
	ctx := fs.Int("context", 6, "events of context to print before each SLO breach")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "tinyleo-ctl inspect: -in <recording> is required")
		fs.Usage()
		os.Exit(2)
	}
	rec, err := flightrec.ReadRecordingFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl inspect: %v\n", err)
		os.Exit(1)
	}
	opt := flightrec.InspectOptions{MaxLinks: *maxLinks, Context: *ctx, Events: *events}
	if err := rec.WriteReport(os.Stdout, opt); err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-ctl inspect: %v\n", err)
		os.Exit(1)
	}
}

func runController() {
	listen := flag.String("listen", "127.0.0.1:7601", "southbound listen address")
	agents := flag.Int("agents", 4, "number of satellite agents to wait for")
	slots := flag.Int("slots", 4, "control slots to run")
	dt := flag.Float64("dt", 300, "control slot duration (seconds of orbital time)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines compiling future slots ahead of enforcement")
	delta := flag.Bool("delta", false, "compile slots incrementally (DeltaCompile) and enforce them as per-satellite slot-delta batches with full-snapshot re-sync (agents must also run -delta)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for agents")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace, /slo on this address (empty = telemetry off)")
	traceOut := flag.String("trace-out", "", "write the span trace as JSONL to this file on exit")
	recordOut := flag.String("record-out", "", "write a flight recording to this file on exit (.gz = gzip)")
	sloSpec := flag.String("slo", "", "SLO rule spec, e.g. 'availability>=0.95,repair_p99<=0.2' (empty = defaults)")
	pprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on -metrics-addr")
	fleetLag := flag.Duration("fleet-lag", fleet.DefaultLagAfter, "mark an agent lagging after this long without a fleet report")
	fleetSilent := flag.Duration("fleet-silent", fleet.DefaultSilentAfter, "mark an agent silent after this long without a fleet report")
	fleetOut := flag.String("fleet-out", "", "write the final /fleet snapshot JSON to this file on exit")
	syncURL := flag.String("sync", "", "testground sync service URL: publish the bound southbound and telemetry addresses as run parameters")
	hold := flag.Duration("hold", 0, "stay alive this long after the last slot (lets the fleet staleness ladder observe late faults)")
	planes := flag.Int("planes", 16, "Walker constellation planes")
	satsPerPlane := flag.Int("sats-per-plane", 16, "satellites per plane")
	inclination := flag.Float64("inclination", 53, "orbital inclination (degrees)")
	altitudeKm := flag.Float64("altitude-km", 1200, "orbital altitude (km)")
	phasing := flag.Int("phasing", 1, "Walker phasing factor F")
	flag.Parse()

	defer cli.Flush()
	cli.TrapSignals()

	if *metricsAddr != "" || *traceOut != "" || *recordOut != "" || *sloSpec != "" {
		// Recording implies telemetry: the SLO engine reads registry
		// metrics (enforcement ratio, repair latency, ack RTT).
		obs.Enable()
		obs.EnableTracing(0)
	}
	if *pprof {
		if *metricsAddr == "" {
			cli.Fatalf("tinyleo-ctl: -pprof needs -metrics-addr to serve on\n")
		}
		obs.EnablePprof()
	}
	ctl, err := southbound.ListenController(*listen)
	if err != nil {
		cli.Fatalf("tinyleo-ctl: %v\n", err)
	}
	defer ctl.Close()
	// The delta enforcer chains onto OnRegister/OnCommandFailed, so it is
	// installed before any agent can connect: a reconnect at any point
	// forces that agent's next push to be a full-snapshot re-sync.
	var enf *southbound.DeltaEnforcer
	if *delta {
		enf = southbound.NewDeltaEnforcer(ctl)
	}

	// Fleet aggregation is always on: agents that never push telemetry
	// cost nothing, and the /fleet view plus the rollup registry are what
	// `tinyleo-ctl top` and the SLO engine aggregate over.
	agg := fleet.NewAggregator(fleet.Options{LagAfter: *fleetLag, SilentAfter: *fleetSilent})
	ctl.OnTelemetry = func(satID uint32, payload []byte) {
		if err := agg.HandleReport(satID, payload); err != nil {
			fmt.Fprintf(os.Stderr, "tinyleo-ctl: %v\n", err)
		}
	}
	agg.RegisterHTTP()
	fleetTick := time.NewTicker(time.Second)
	defer fleetTick.Stop()
	//tinyleo:goroutine liveness ticker runs for the controller's whole process lifetime; reclaimed at exit
	go func() {
		for range fleetTick.C {
			agg.Tick()
		}
	}()
	if *fleetOut != "" {
		out := *fleetOut
		cli.AtExit(func() {
			if err := writeFleetSnapshot(out, agg); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-ctl: fleet snapshot: %v\n", err)
				return
			}
			fmt.Printf("fleet: wrote snapshot to %s\n", out)
		})
	}
	if *recordOut != "" || *sloSpec != "" {
		rules := flightrec.DefaultRules()
		if *sloSpec != "" {
			rules, err = flightrec.ParseRules(*sloSpec)
			if err != nil {
				cli.Fatalf("tinyleo-ctl: -slo: %v\n", err)
			}
		}
		opts := flightrec.Options{
			Rules:      rules,
			Registries: []flightrec.RegistrySource{obs.Default(), ctl.Metrics(), agg.Registry()},
		}
		if err := flightrec.Enable(opts); err != nil {
			cli.Fatalf("tinyleo-ctl: flight recorder: %v\n", err)
		}
		if *recordOut != "" {
			out := *recordOut
			cli.AtExit(func() {
				summary, err := flightrec.SaveRecording(out, "tinyleo-ctl")
				if err != nil {
					fmt.Fprintf(os.Stderr, "tinyleo-ctl: recording: %v\n", err)
					return
				}
				fmt.Printf("recording: wrote %s to %s\n", summary, out)
			})
		}
	}
	servedMetrics := ""
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.Default(), ctl.Metrics(), agg.Registry())
		if err != nil {
			cli.Fatalf("tinyleo-ctl: %v\n", err)
		}
		defer srv.Close()
		servedMetrics = srv.Addr()
		fmt.Printf("telemetry on http://%s/metrics\n", servedMetrics)
	}
	if *syncURL != "" {
		// Publish the actual bound addresses (both flags accept :0) so the
		// testground runner and the agents can find this controller.
		sc := testground.NewClient(*syncURL)
		if err := sc.SetParam(testground.ParamControllerAddr, ctl.Addr()); err != nil {
			cli.Fatalf("tinyleo-ctl: %v\n", err)
		}
		if servedMetrics != "" {
			if err := sc.SetParam(testground.ParamMetricsAddr, servedMetrics); err != nil {
				cli.Fatalf("tinyleo-ctl: %v\n", err)
			}
		}
		fmt.Printf("published addresses to sync service %s\n", *syncURL)
	}
	if *traceOut != "" {
		out := *traceOut
		cli.AtExit(func() {
			f, err := os.Create(out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-ctl: trace: %v\n", err)
				return
			}
			defer f.Close()
			if err := obs.Trace().WriteJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-ctl: trace: %v\n", err)
				return
			}
			fmt.Printf("trace: wrote %s to %s\n", obs.Trace().WriteFileSummary(), out)
		})
	}
	fmt.Printf("controller listening on %s, waiting for %d agents...\n", ctl.Addr(), *agents)
	if err := ctl.WaitForAgents(*agents, *wait); err != nil {
		cli.Fatalf("tinyleo-ctl: %v\n", err)
	}
	fmt.Printf("%d agents registered\n", ctl.AgentCount())

	// Demo constellation + chain intent (agents play the first N sats).
	sats := baseline.WalkerConfig{
		InclinationDeg: *inclination, AltitudeKm: *altitudeKm,
		Planes: *planes, SatsPerPlane: *satsPerPlane, PhasingF: *phasing,
	}.Satellites()
	g := geo.MustGrid(10)
	topo := intent.NewTopology(g)
	var cells []int
	for i := 0; i < 4; i++ {
		id := g.CellOf(geom.LatLon{Lat: 5, Lon: float64(-15 + i*10)})
		topo.AddCell(id, 3)
		cells = append(cells, id)
	}
	for i := 1; i < len(cells); i++ {
		topo.Connect(cells[i-1], cells[i], 1)
	}
	compiler, err := mpc.New(mpc.Config{Topo: topo, Sats: sats})
	if err != nil {
		cli.Fatalf("tinyleo-ctl: %v\n", err)
	}

	// Failure hook: greedily re-link the reporter to the best alternative.
	ctl.OnFailure = func(report *southbound.Message) []*southbound.Message {
		fmt.Printf("failure report from sat %d (peer %d); repairing\n", report.SatID, report.Peer)
		return []*southbound.Message{
			{Type: southbound.MsgSetISL, SatID: report.SatID, Peer: report.Peer, Up: false},
		}
	}

	// The horizon planner compiles future slots across a worker pool while
	// the delivery callback (this goroutine) enforces the current one, so
	// southbound pushes overlap compilation of later slots. With -delta,
	// compilation is instead a sequential DeltaCompile chain (each slot
	// warm-starts from the previous snapshot) and enforcement sends one
	// slot-delta batch per changed satellite instead of one command per
	// link endpoint.
	var prev *mpc.Snapshot
	deliver := func(s int, snap *mpc.Snapshot) {
		t := snap.Time
		added, removed := mpc.DiffLinks(prev, snap)
		prev = snap
		fmt.Printf("slot %d (t=%.0fs): %d inter-cell ISLs, %d ring ISLs, %d changes, enforcement %.2f\n",
			s, t, len(snap.InterLinks), len(snap.RingLinks), len(added)+len(removed),
			compiler.EnforcementRatio(snap))
		// Push changes to the agents that are connected (agent IDs are
		// satellite indices). Every command in this slot descends from one
		// mpc.emit root span, so the merged cross-process trace shows the
		// whole enforcement round as a single causal tree.
		emit := obs.StartSpan("mpc.emit",
			"slot", fmt.Sprint(s), "t", fmt.Sprintf("%.0f", t))
		emitted := time.Now()
		pushed := 0
		if enf != nil {
			// Group the slot's link ops into one batch per satellite,
			// pushed in ascending satellite order for determinism.
			adds, dels := map[int][]uint32{}, map[int][]uint32{}
			for _, l := range added {
				for _, end := range []int{l[0], l[1]} {
					adds[end] = append(adds[end], uint32(l.Peer(end)))
				}
			}
			for _, l := range removed {
				for _, end := range []int{l[0], l[1]} {
					dels[end] = append(dels[end], uint32(l.Peer(end)))
				}
			}
			sats := make([]int, 0, len(adds)+len(dels))
			for sat := range adds {
				sats = append(sats, sat)
			}
			for sat := range dels {
				if _, ok := adds[sat]; !ok {
					sats = append(sats, sat)
				}
			}
			sort.Ints(sats)
			for _, sat := range sats {
				if err := enf.Push(uint32(sat), adds[sat], dels[sat], emitted, emit.Context()); err == nil {
					pushed++
				}
			}
		} else {
			push := func(end int, peer uint32, up bool) {
				m := &southbound.Message{
					Type: southbound.MsgSetISL, SatID: uint32(end),
					Peer: peer, Up: up,
					Trace: emit.Context(), Emitted: emitted,
				}
				if err := ctl.Send(m); err == nil {
					pushed++
				}
			}
			for _, l := range added {
				for _, end := range []int{l[0], l[1]} {
					push(end, uint32(l.Peer(end)), true)
				}
			}
			for _, l := range removed {
				for _, end := range []int{l[0], l[1]} {
					push(end, uint32(l.Peer(end)), false)
				}
			}
		}
		emit.End()
		fmt.Printf("  pushed %d commands to connected agents\n", pushed)
		time.Sleep(200 * time.Millisecond)
	}
	if *delta {
		for s := 0; s < *slots; s++ {
			deliver(s, compiler.DeltaCompile(prev, float64(s)**dt))
		}
	} else {
		compiler.HorizonStream(0, *dt, *slots, *workers, deliver)
	}
	fmt.Printf("totals: %d southbound messages\n", ctl.TotalMessages())
	if *hold > 0 {
		// Keep the southbound and telemetry surfaces up so the staleness
		// ladder can walk killed agents to silent before the exit snapshot.
		fmt.Printf("holding for %s\n", *hold)
		time.Sleep(*hold)
	}
}
