// Command tinyleo-sat is a satellite agent: it registers with tinyleo-ctl
// over the southbound API, prints and acknowledges every topology command,
// and can inject a synthetic ISL failure report to exercise the repair
// loop (§4.2's "repairing unpredictable failures"). Commands arrive per
// control slot, in slot order — the controller's horizon planner compiles
// ahead across workers but always delivers sequentially.
//
//	tinyleo-sat -controller 127.0.0.1:7601 -id 3 -fail-peer 7 -fail-after 2s
//
// Telemetry: -metrics-addr serves live Prometheus text on /metrics (plus
// /metrics.json, /healthz, /trace, /trace.chrome) for the duration of the
// run; -trace-out writes the span ring as JSONL on exit; -record-out
// writes a flight recording (events + SLO status) for tinyleo-ctl
// inspect. All output files also flush on SIGINT/SIGTERM, so an
// interrupted run still yields a usable postmortem.
//
//	tinyleo-sat -controller 127.0.0.1:7601 -id 3 \
//	    -metrics-addr 127.0.0.1:9103 -trace-out sat3-trace.jsonl \
//	    -record-out sat3-flight.jsonl.gz
//
// Fleet telemetry: unless -fleet-interval is 0, the agent delta-encodes
// its registry once per interval and pushes the report to the controller
// over the southbound session, feeding the controller's /fleet rollup and
// `tinyleo-ctl top`.
//
// Commands carry the controller's trace context over the wire; the agent
// applies each one to a local data-plane view and records the install as
// a span continuing that trace, so `tinyleo-ctl trace` can merge the
// controller's and agents' dumps into one cross-process timeline. -pprof
// serves net/http/pprof under /debug/pprof/ on the -metrics-addr
// listener.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
	"repro/internal/southbound"
	"repro/internal/testground"
)

func main() {
	addr := flag.String("controller", "127.0.0.1:7601", "controller address")
	id := flag.Uint("id", 0, "satellite ID")
	failPeer := flag.Int("fail-peer", -1, "report an ISL failure toward this peer (-1 = never)")
	failAfter := flag.Duration("fail-after", 2*time.Second, "when to report the failure")
	runFor := flag.Duration("run-for", 10*time.Second, "how long to stay up")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace on this address (empty = telemetry off)")
	traceOut := flag.String("trace-out", "", "write the span trace as JSONL to this file on exit")
	recordOut := flag.String("record-out", "", "write a flight recording to this file on exit (.gz = gzip)")
	pprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on -metrics-addr")
	fleetInterval := flag.Duration("fleet-interval", time.Second, "push fleet telemetry reports to the controller at this interval (0 = off)")
	delta := flag.Bool("delta", false, "apply slot-delta/slot-snapshot enforcement batches to the dataplane view (pair with tinyleo-ctl -delta)")
	syncURL := flag.String("sync", "", "testground sync service URL: resolve the controller address from it and hold at the start barrier before dialing (overrides -controller)")
	flag.Parse()

	defer cli.Flush()
	cli.TrapSignals()

	if *metricsAddr != "" || *traceOut != "" || *recordOut != "" {
		obs.Enable()
		obs.EnableTracing(0)
	}
	if *fleetInterval > 0 {
		// Fleet reporting snapshots the default registry, so it must record.
		obs.Enable()
	}
	if *pprof {
		if *metricsAddr == "" {
			cli.Fatalf("tinyleo-sat: -pprof needs -metrics-addr to serve on\n")
		}
		obs.EnablePprof()
	}
	if *recordOut != "" {
		if err := flightrec.Enable(flightrec.Options{}); err != nil {
			cli.Fatalf("tinyleo-sat: flight recorder: %v\n", err)
		}
		cli.AtExit(func() {
			summary, err := flightrec.SaveRecording(*recordOut, "tinyleo-sat")
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-sat: recording: %v\n", err)
				return
			}
			fmt.Printf("recording: wrote %s to %s\n", summary, *recordOut)
		})
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			cli.Fatalf("tinyleo-sat: %v\n", err)
		}
		defer srv.Close()
		fmt.Printf("sat %d telemetry on http://%s/metrics\n", *id, srv.Addr())
	}
	if *traceOut != "" {
		cli.AtExit(func() {
			if err := writeTrace(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-sat: trace: %v\n", err)
			}
		})
	}

	if *syncURL != "" {
		// Testground coordination: learn the controller's bound address
		// (every port in a plan may be :0), then rendezvous with the rest
		// of the fleet so all agents register together.
		sc := testground.NewClient(*syncURL)
		resolved, err := sc.WaitParam(testground.ParamControllerAddr, 30*time.Second)
		if err != nil {
			cli.Fatalf("tinyleo-sat: %v\n", err)
		}
		*addr = resolved
		fmt.Printf("sat %d resolved controller %s via sync service\n", *id, *addr)
		if err := sc.Arrive(testground.BarrierAgentsReady, 0, 60*time.Second); err != nil {
			cli.Fatalf("tinyleo-sat: %v\n", err)
		}
	}

	span := obs.StartSpan("sat.session", "id", fmt.Sprint(*id))
	agent, err := southbound.DialAgent(*addr, uint32(*id), 10*time.Second)
	if err != nil {
		cli.Fatalf("tinyleo-sat: %v\n", err)
	}
	defer agent.Close()
	defer span.End()
	fmt.Printf("sat %d registered with %s\n", *id, *addr)

	if *fleetInterval > 0 {
		reporter := fleet.NewReporter(fleet.NewEncoder(obs.Default()), agent.SendTelemetry)
		reporter.Run(*fleetInterval)
		// Stop flushes one final report, so the controller's rollup catches
		// the last deltas even on SIGINT.
		cli.AtExit(reporter.Stop)
		defer reporter.Stop()
	}

	// Local data-plane view: each command actually lands somewhere (links
	// raised/lowered, ring successor set), and the install is recorded as
	// a span continuing the command's trace, so the merged timeline shows
	// emit → send → apply → install end to end.
	view := dataplane.NewNetwork()
	self := view.AddSatellite(int(*id), 0)
	// up tracks which ISL peers this agent believes are established —
	// the state a slot-snapshot reconciles against. OnCommand runs
	// serially on the agent's read loop, so no lock is needed.
	up := map[uint32]bool{}
	setISL := func(peer uint32, isUp bool) {
		if isUp {
			if view.Sats[int(peer)] == nil {
				view.AddSatellite(int(peer), 0)
			}
			view.EnsureLink(int(*id), int(peer), 0.003)
			up[peer] = true
			return
		}
		if l := view.Link(int(*id), int(peer)); l != nil {
			l.Down()
		}
		delete(up, peer)
	}
	agent.OnCommand = func(m *southbound.Message) {
		sp := obs.StartSpanCtx(m.Trace, "dataplane.install",
			"sat", fmt.Sprint(*id), "seq", fmt.Sprint(m.Seq), "type", m.Type.String())
		defer sp.End()
		switch m.Type {
		case southbound.MsgSetISL:
			state := "down"
			if m.Up {
				state = "up"
			}
			setISL(m.Peer, m.Up)
			fmt.Printf("sat %d: ISL to %d -> %s (seq %d)\n", *id, m.Peer, state, m.Seq)
		case southbound.MsgSlotDelta:
			if !*delta {
				fmt.Printf("sat %d: ignoring slot-delta (run with -delta) (seq %d)\n", *id, m.Seq)
				return
			}
			ops, err := southbound.DecodeSlotDelta(m.Payload)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-sat: slot-delta: %v\n", err)
				return
			}
			for _, op := range ops {
				setISL(op.Peer, op.Up)
			}
			fmt.Printf("sat %d: slot delta applied, %d ops (seq %d)\n", *id, len(ops), m.Seq)
		case southbound.MsgSlotSnapshot:
			if !*delta {
				fmt.Printf("sat %d: ignoring slot-snapshot (run with -delta) (seq %d)\n", *id, m.Seq)
				return
			}
			peers, err := southbound.DecodeSlotSnapshot(m.Payload)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-sat: slot-snapshot: %v\n", err)
				return
			}
			// Full re-sync: reconcile the local view against the desired
			// peer set — tear down everything absent, raise everything
			// present.
			want := make(map[uint32]bool, len(peers))
			for _, p := range peers {
				want[p] = true
			}
			for p := range up {
				if !want[p] {
					setISL(p, false)
				}
			}
			for _, p := range peers {
				setISL(p, true)
			}
			fmt.Printf("sat %d: slot snapshot applied, %d peers (seq %d)\n", *id, len(peers), m.Seq)
		case southbound.MsgSetRing:
			self.RingNext = int(m.Peer)
			fmt.Printf("sat %d: ring successor -> %d (seq %d)\n", *id, m.Peer, m.Seq)
		case southbound.MsgInstallRoute:
			fmt.Printf("sat %d: route installed, %d segments (seq %d)\n", *id, len(m.Cells), m.Seq)
		}
	}

	if *failPeer >= 0 {
		time.AfterFunc(*failAfter, func() {
			fmt.Printf("sat %d: reporting ISL failure toward %d\n", *id, *failPeer)
			if err := agent.ReportFailure(uint32(*failPeer)); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-sat: report: %v\n", err)
			}
		})
	}
	time.Sleep(*runFor)
}

func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.Trace().WriteJSONL(f); err != nil {
		return err
	}
	fmt.Printf("trace: wrote %s to %s\n", obs.Trace().WriteFileSummary(), path)
	return nil
}
