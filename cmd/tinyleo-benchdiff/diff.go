package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"

	"repro/internal/metrics"
)

// Gate configures which metrics block and how much they may move.
type Gate struct {
	// MaxRegress is the allowed fractional regression (0.2 = 20%).
	MaxRegress float64
	// HigherBetter / LowerBetter are regexps over metric names selecting
	// the gated direction. Empty matches nothing.
	HigherBetter string
	LowerBetter  string
}

// Row is one compared metric.
type Row struct {
	Name      string
	Base      float64
	Cur       float64
	Unit      string
	Delta     float64 // fractional change, (cur-base)/base
	Gated     bool
	Regressed bool
}

// Report is the outcome of a diff: every metric present in either file,
// sorted by name.
type Report struct {
	Rows []Row
	// MissingCurrent lists gated baseline metrics absent from the current
	// file — these count as regressions (a gate that silently vanishes is
	// not a pass).
	MissingCurrent []string
	// OnlyBaseline lists ungated baseline metrics the current run no
	// longer emits. They don't gate, but a vanished metric usually means
	// an experiment was renamed or dropped — warn, don't hide it.
	OnlyBaseline []string
	// OnlyCurrent lists metrics the current run emits that have no
	// baseline entry. They can't regress (nothing to regress from) but
	// the baseline should be refreshed to cover them.
	OnlyCurrent []string
}

// Regressions counts gated rows that moved beyond the allowance, plus
// gated metrics missing from the current file.
func (r *Report) Regressions() int {
	n := len(r.MissingCurrent)
	for _, row := range r.Rows {
		if row.Regressed {
			n++
		}
	}
	return n
}

// Write renders the comparison, flagging gated and regressed rows.
func (r *Report) Write(w io.Writer) {
	for _, row := range r.Rows {
		mark := " "
		if row.Gated {
			mark = "·"
		}
		if row.Regressed {
			mark = "✗"
		}
		delta := "     —"
		if !math.IsNaN(row.Delta) {
			delta = fmt.Sprintf("%+5.1f%%", row.Delta*100)
		}
		fmt.Fprintf(w, "%s %-70s %12.4g -> %12.4g  %s %s\n",
			mark, row.Name, row.Base, row.Cur, delta, row.Unit)
	}
	for _, name := range r.MissingCurrent {
		fmt.Fprintf(w, "✗ %-70s missing from current file\n", name)
	}
	for _, name := range r.OnlyBaseline {
		fmt.Fprintf(w, "! %-70s in baseline only (current run no longer emits it)\n", name)
	}
	for _, name := range r.OnlyCurrent {
		fmt.Fprintf(w, "! %-70s in current only (no baseline entry; refresh the baseline)\n", name)
	}
}

// readBench loads a -bench-json file into a name→entry map.
func readBench(path string) (map[string]metrics.BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []metrics.BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]metrics.BenchEntry, len(entries))
	for _, e := range entries {
		m[e.Name] = e
	}
	return m, nil
}

// Diff compares two benchmark maps under the gate.
func Diff(base, cur map[string]metrics.BenchEntry, g Gate) (*Report, error) {
	matchHigher, err := compileOrNil(g.HigherBetter)
	if err != nil {
		return nil, fmt.Errorf("-higher: %w", err)
	}
	matchLower, err := compileOrNil(g.LowerBetter)
	if err != nil {
		return nil, fmt.Errorf("-lower: %w", err)
	}
	names := map[string]bool{}
	for name := range base {
		names[name] = true
	}
	for name := range cur {
		names[name] = true
	}
	report := &Report{}
	for name := range names {
		b, inBase := base[name]
		c, inCur := cur[name]
		higher := matchHigher != nil && matchHigher.MatchString(name)
		lower := matchLower != nil && matchLower.MatchString(name)
		if !inCur {
			if higher || lower {
				report.MissingCurrent = append(report.MissingCurrent, name)
			} else {
				report.OnlyBaseline = append(report.OnlyBaseline, name)
			}
			continue
		}
		row := Row{Name: name, Cur: c.Value, Unit: c.Unit, Delta: math.NaN()}
		if !inBase {
			report.OnlyCurrent = append(report.OnlyCurrent, name)
		}
		if inBase {
			row.Base = b.Value
			if b.Value != 0 {
				row.Delta = (c.Value - b.Value) / b.Value
			}
			row.Gated = higher || lower
			switch {
			case higher:
				row.Regressed = c.Value < b.Value*(1-g.MaxRegress)
			case lower:
				row.Regressed = c.Value > b.Value*(1+g.MaxRegress)
			}
		}
		report.Rows = append(report.Rows, row)
	}
	sort.Slice(report.Rows, func(i, j int) bool { return report.Rows[i].Name < report.Rows[j].Name })
	sort.Strings(report.MissingCurrent)
	sort.Strings(report.OnlyBaseline)
	sort.Strings(report.OnlyCurrent)
	return report, nil
}

// DiffFiles is Diff over two -bench-json files.
func DiffFiles(basePath, curPath string, g Gate) (*Report, error) {
	base, err := readBench(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := readBench(curPath)
	if err != nil {
		return nil, err
	}
	return Diff(base, cur, g)
}

func compileOrNil(expr string) (*regexp.Regexp, error) {
	if expr == "" {
		return nil, nil
	}
	return regexp.Compile(expr)
}
