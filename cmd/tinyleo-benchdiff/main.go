// Command tinyleo-benchdiff compares two -bench-json files (the
// [{"name","value","unit"}] arrays tinyleo-bench emits) and fails when a
// gated metric regresses beyond the allowed fraction. CI runs it against
// the committed BENCH_baseline.json so performance changes to the
// horizon compile and the southbound command path are explicit in the
// diff that moves the baseline, not silent drift.
//
//	tinyleo-benchdiff -baseline BENCH_baseline.json -current BENCH.json \
//	    -higher 'cache_hit_ratio$' -lower 'overhead_x$' -max-regress 0.2
//
// Metrics are gated by direction: names matching -higher regress when
// the current value drops below baseline×(1−max-regress); names
// matching -lower regress when it rises above baseline×(1+max-regress).
// Metrics matching neither regexp (wall-clock numbers, throughputs that
// depend on the machine) are printed for the trajectory but never gate.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baseline := flag.String("baseline", "", "baseline bench-json file (required)")
	current := flag.String("current", "", "current bench-json file (required)")
	maxRegress := flag.Float64("max-regress", 0.2, "allowed fractional regression before failing")
	higher := flag.String("higher", "", "regexp of metric names where higher is better")
	lower := flag.String("lower", "", "regexp of metric names where lower is better")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "tinyleo-benchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	report, err := DiffFiles(*baseline, *current, Gate{
		MaxRegress: *maxRegress, HigherBetter: *higher, LowerBetter: *lower,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tinyleo-benchdiff: %v\n", err)
		os.Exit(1)
	}
	report.Write(os.Stdout)
	if n := len(report.OnlyBaseline) + len(report.OnlyCurrent); n > 0 {
		fmt.Fprintf(os.Stderr, "tinyleo-benchdiff: warning: %d metric(s) present in only one file\n", n)
	}
	if n := report.Regressions(); n > 0 {
		fmt.Fprintf(os.Stderr, "tinyleo-benchdiff: %d metric(s) regressed beyond %.0f%%\n",
			n, *maxRegress*100)
		os.Exit(1)
	}
}
