package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func entries(kv map[string]float64) map[string]metrics.BenchEntry {
	m := map[string]metrics.BenchEntry{}
	for name, v := range kv {
		m[name] = metrics.BenchEntry{Name: name, Value: v}
	}
	return m
}

func TestDiffGatesByDirection(t *testing.T) {
	base := entries(map[string]float64{
		"horizon/parallel/speedup_x":    2.0,
		"southbound/traced/overhead_x":  1.5,
		"southbound/traced/wall_s":      0.5, // ungated: machine-dependent
		"horizon/parallel/pruned_pairs": 100,
	})
	g := Gate{MaxRegress: 0.2, HigherBetter: `speedup_x$`, LowerBetter: `overhead_x$`}

	// Within allowance in both directions: no regression.
	cur := entries(map[string]float64{
		"horizon/parallel/speedup_x":    1.7, // −15%, allowed
		"southbound/traced/overhead_x":  1.7, // +13%, allowed
		"southbound/traced/wall_s":      5.0, // 10× worse but ungated
		"horizon/parallel/pruned_pairs": 100,
	})
	r, err := Diff(base, cur, g)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Regressions(); n != 0 {
		t.Fatalf("regressions = %d, want 0", n)
	}

	// Beyond allowance: higher-better dropping and lower-better rising
	// both gate.
	cur = entries(map[string]float64{
		"horizon/parallel/speedup_x":    1.5, // −25%
		"southbound/traced/overhead_x":  1.9, // +27%
		"southbound/traced/wall_s":      0.5,
		"horizon/parallel/pruned_pairs": 100,
	})
	r, err = Diff(base, cur, g)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Regressions(); n != 2 {
		t.Fatalf("regressions = %d, want 2", n)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "✗ horizon/parallel/speedup_x") {
		t.Errorf("report does not flag the speedup regression:\n%s", buf.String())
	}
}

func TestDiffMissingGatedMetricFails(t *testing.T) {
	base := entries(map[string]float64{
		"horizon/parallel/speedup_x": 2.0,
		"some/other/wall_s":          1.0,
	})
	cur := entries(map[string]float64{"some/other/wall_s": 1.0})
	r, err := Diff(base, cur, Gate{MaxRegress: 0.2, HigherBetter: `speedup_x$`})
	if err != nil {
		t.Fatal(err)
	}
	// The gated metric vanished: that is a failure. The ungated one
	// vanishing would not be.
	if n := r.Regressions(); n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
	if len(r.MissingCurrent) != 1 || r.MissingCurrent[0] != "horizon/parallel/speedup_x" {
		t.Fatalf("missing = %v", r.MissingCurrent)
	}
}

func TestDiffNewMetricIsInformational(t *testing.T) {
	base := entries(map[string]float64{})
	cur := entries(map[string]float64{"brand/new/speedup_x": 3.0})
	r, err := Diff(base, cur, Gate{MaxRegress: 0.2, HigherBetter: `speedup_x$`})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Regressions(); n != 0 {
		t.Fatalf("regressions = %d, want 0 (no baseline to regress from)", n)
	}
}

func TestDiffWarnsOnMetricsPresentInOnlyOneFile(t *testing.T) {
	base := entries(map[string]float64{
		"shared/run/speedup_x": 2.0,
		"dropped/run/wall_s":   0.4, // ungated, vanished from current
		"dropped/run/rows":     12,  // ungated, vanished from current
	})
	cur := entries(map[string]float64{
		"shared/run/speedup_x": 2.1,
		"added/run/wall_s":     0.3, // new in current, no baseline entry
	})
	r, err := Diff(base, cur, Gate{MaxRegress: 0.2, HigherBetter: `speedup_x$`})
	if err != nil {
		t.Fatal(err)
	}
	// Neither direction gates: warnings, not regressions.
	if n := r.Regressions(); n != 0 {
		t.Fatalf("regressions = %d, want 0 (one-sided metrics warn, not fail)", n)
	}
	if want := []string{"dropped/run/rows", "dropped/run/wall_s"}; !equalStrings(r.OnlyBaseline, want) {
		t.Fatalf("OnlyBaseline = %v, want %v", r.OnlyBaseline, want)
	}
	if want := []string{"added/run/wall_s"}; !equalStrings(r.OnlyCurrent, want) {
		t.Fatalf("OnlyCurrent = %v, want %v", r.OnlyCurrent, want)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "! dropped/run/wall_s") || !strings.Contains(out, "in baseline only") {
		t.Errorf("report does not warn about the dropped metric:\n%s", out)
	}
	if !strings.Contains(out, "! added/run/wall_s") || !strings.Contains(out, "in current only") {
		t.Errorf("report does not warn about the new metric:\n%s", out)
	}
	// A gated metric vanishing is still a regression, never a warning.
	delete(cur, "shared/run/speedup_x")
	r, err = Diff(base, cur, Gate{MaxRegress: 0.2, HigherBetter: `speedup_x$`})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Regressions(); n != 1 {
		t.Fatalf("regressions = %d, want 1 (gated metric vanished)", n)
	}
	for _, name := range r.OnlyBaseline {
		if name == "shared/run/speedup_x" {
			t.Error("gated missing metric leaked into OnlyBaseline warnings")
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDiffBadRegexp(t *testing.T) {
	if _, err := Diff(nil, nil, Gate{HigherBetter: `(`}); err == nil {
		t.Error("invalid -higher regexp accepted")
	}
}

func TestDiffFilesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "cur.json")
	write := func(path, body string) {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(base, `[{"name":"a/b/speedup_x","value":2,"unit":""}]`)
	write(cur, `[{"name":"a/b/speedup_x","value":1,"unit":""}]`)
	r, err := DiffFiles(base, cur, Gate{MaxRegress: 0.2, HigherBetter: `speedup_x$`})
	if err != nil {
		t.Fatal(err)
	}
	if r.Regressions() != 1 {
		t.Fatalf("regressions = %d, want 1", r.Regressions())
	}
	write(cur, `not json`)
	if _, err := DiffFiles(base, cur, Gate{}); err == nil {
		t.Error("malformed current file accepted")
	}
	if _, err := DiffFiles(filepath.Join(dir, "nope.json"), cur, Gate{}); err == nil {
		t.Error("missing baseline file accepted")
	}
}
