// Command tinyleo-lint runs TinyLEO's determinism and hot-path analyzers
// over the module and exits nonzero on any finding. CI runs it blocking:
//
//	go run ./cmd/tinyleo-lint ./...
//
// Flags:
//
//	-analyzers maporder,walltime   run a subset (default: all)
//	-list                          print the suite and exit
//
// Patterns use the go tool's "./..." syntax relative to the module root;
// with no patterns, ./... is assumed. Suppress individual findings with
// a "//lint:tinyleo-ignore <reason>" comment on or above the line.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/walltime"
)

var suite = []*analysis.Analyzer{
	globalrand.Analyzer,
	hotpathalloc.Analyzer,
	maporder.Analyzer,
	walltime.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("tinyleo-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	dir := fs.String("C", ".", "module root to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(stderr, "tinyleo-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir})
	if err != nil {
		fmt.Fprintln(stderr, "tinyleo-lint:", err)
		return 2
	}
	modPath := modulePathOf(pkgs)
	var selected []*analysis.Package
	for _, pkg := range pkgs {
		if analysis.Match(pkg, modPath, patterns) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "tinyleo-lint: no packages match %v\n", patterns)
		return 2
	}

	findings, err := analysis.Run(analyzers, selected)
	if err != nil {
		fmt.Fprintln(stderr, "tinyleo-lint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tinyleo-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// modulePathOf recovers the module path from the loaded packages: the
// shortest package path is the module root (Load returns them sorted).
func modulePathOf(pkgs []*analysis.Package) string {
	if len(pkgs) == 0 {
		return ""
	}
	mod := pkgs[0].Path
	for _, p := range pkgs[1:] {
		if len(p.Path) < len(mod) {
			mod = p.Path
		}
	}
	// A module with no root package still shares the first path segment
	// prefix; trim known subtrees.
	for _, seg := range []string{"/internal/", "/cmd/"} {
		if i := strings.Index(mod, seg); i >= 0 {
			mod = mod[:i]
		}
	}
	return mod
}
