// Command tinyleo-lint runs TinyLEO's determinism, hot-path, and
// concurrency-contract analyzers over the module and exits nonzero on
// any finding. CI runs it blocking:
//
//	go run ./cmd/tinyleo-lint ./...
//
// Flags:
//
//	-analyzers maporder,walltime   run a subset (default: all)
//	-list                          print the suite and exit
//	-json findings.json            also write findings as JSON
//
// Patterns use the go tool's "./..." syntax relative to the module root;
// with no patterns, ./... is assumed. Suppress individual findings with
// a "//lint:tinyleo-ignore <reason>" comment on or above the line; when
// the full suite runs, directives that suppress nothing are themselves
// reported (stale suppressions hide future findings).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/goroutinelife"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/walltime"
)

var suite = []*analysis.Analyzer{
	globalrand.Analyzer,
	goroutinelife.Analyzer,
	guardedby.Analyzer,
	hotpathalloc.Analyzer,
	lockorder.Analyzer,
	maporder.Analyzer,
	walltime.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("tinyleo-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	dir := fs.String("C", ".", "module root to analyze")
	jsonOut := fs.String("json", "", "write findings as a deterministic JSON array to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(stderr, "tinyleo-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir})
	if err != nil {
		fmt.Fprintln(stderr, "tinyleo-lint:", err)
		return 2
	}
	modPath := modulePathOf(pkgs)
	var selected []*analysis.Package
	for _, pkg := range pkgs {
		if analysis.Match(pkg, modPath, patterns) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "tinyleo-lint: no packages match %v\n", patterns)
		return 2
	}

	// Stale-suppression detection only makes sense against the full
	// suite: a subset run cannot tell a stale directive from one aimed at
	// an unselected analyzer.
	opts := analysis.RunOptions{ReportStaleIgnores: len(analyzers) == len(suite)}
	findings, err := analysis.RunWithOptions(analyzers, selected, opts)
	if err != nil {
		fmt.Fprintln(stderr, "tinyleo-lint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, findings, stdout); err != nil {
			fmt.Fprintln(stderr, "tinyleo-lint:", err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tinyleo-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding schema: stable field order,
// findings already sorted by position, so output is deterministic for a
// given tree.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders findings as an indented JSON array ("[]" when clean)
// to path, or to stdout for "-".
func writeJSON(path string, findings []analysis.Finding, stdout *os.File) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Position.Filename, Line: f.Position.Line, Col: f.Position.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// modulePathOf recovers the module path from the loaded packages: the
// shortest package path is the module root (Load returns them sorted).
func modulePathOf(pkgs []*analysis.Package) string {
	if len(pkgs) == 0 {
		return ""
	}
	mod := pkgs[0].Path
	for _, p := range pkgs[1:] {
		if len(p.Path) < len(mod) {
			mod = p.Path
		}
	}
	// A module with no root package still shares the first path segment
	// prefix; trim known subtrees.
	for _, seg := range []string{"/internal/", "/cmd/"} {
		if i := strings.Index(mod, seg); i >= 0 {
			mod = mod[:i]
		}
	}
	return mod
}
