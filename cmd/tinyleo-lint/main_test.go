package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a minimal module under a temp dir and returns its
// root. The package deliberately violates the walltime contract inside a
// deterministic package path so the full suite produces one finding.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/mpc/mpc.go": `package mpc

import "time"

func Stamp() time.Time {
	return time.Now()
}

func Clean() int {
	//lint:tinyleo-ignore nothing on the next line ever fires
	return 1
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// capture runs the CLI with stdout/stderr redirected to files and
// returns (exit code, stdout text).
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	outPath := filepath.Join(t.TempDir(), "out")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, out)
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestRunJSONFindings(t *testing.T) {
	dir := writeModule(t)
	jsonPath := filepath.Join(dir, "findings.json")
	code, out := capture(t, []string{"-C", dir, "-json", jsonPath, "./..."})
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings present); output:\n%s", code, out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	// The full suite surfaces both the walltime violation and the stale
	// suppression directive, in machine-readable form.
	if !strings.Contains(s, `"walltime"`) || !strings.Contains(s, `"ignoredirective"`) {
		t.Fatalf("JSON findings missing walltime + ignoredirective entries:\n%s", s)
	}
	if !strings.Contains(s, `"line"`) || !strings.Contains(s, `"col"`) {
		t.Fatalf("JSON findings missing position fields:\n%s", s)
	}
}

func TestRunJSONEmptyOnSubset(t *testing.T) {
	dir := writeModule(t)
	jsonPath := filepath.Join(dir, "findings.json")
	// maporder alone finds nothing here, and a subset run must not
	// report the (walltime-directed) ignore directive as stale.
	code, out := capture(t, []string{"-C", dir, "-analyzers", "maporder", "-json", jsonPath, "./..."})
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "[]" {
		t.Fatalf("clean run JSON = %q, want []", got)
	}
}

func TestListNamesSuite(t *testing.T) {
	code, out := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, a := range suite {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
	if len(suite) != 7 {
		t.Errorf("suite has %d analyzers, want 7", len(suite))
	}
}
