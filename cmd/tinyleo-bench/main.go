// Command tinyleo-bench regenerates the paper's evaluation tables and
// figures (§6). Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tinyleo-bench [-scale small|paper] [-run all|table1|fig3|fig4|fig9|fig13|
//	               fig14|fig15|fig15d|fig15e|fig16|fig17|fig17d|fig18|fig19a|
//	               fig19bcd|horizon|delta|chaos|southbound|fleet] [-horizon N]
//	               [-workers N] [-delta-slots N] [-chaos-scenario all|NAME]
//	               [-chaos-seed N] [-chaos-fleet-out f.json] [-chaos-delta]
//	               [-csv] [-bench-json out.json] [-metrics-addr host:port]
//	               [-trace-out file.jsonl] [-record-out flight.jsonl.gz]
//	               [-pprof]
//
// -run delta measures the incremental MPC compiler (mpc.DeltaCompile): a
// full Compile chain versus a warm-started delta chain over the same
// control slots at the 529-satellite scenario, verifying byte-identical
// plans and reporting the warm-slot speedup, warm-hit ratio, and the
// southbound bytes of per-satellite slot-delta batches versus per-link
// SetISL pushes; its rows feed the CI regression gate via -bench-json.
//
// -run chaos executes the seeded fault-injection campaigns (internal/chaos):
// ISL failures, loss storms, agent crashes, southbound connection drops,
// and demand surges driven through MPC repair, southbound enforcement, and
// data-plane failover, scored against the flight recorder's SLO rules.
// Same -chaos-seed → byte-identical results, including the fleet
// telemetry health view (-chaos-fleet-out dumps each scenario's final
// constellation summary as a deterministic JSON artifact); -chaos-delta
// swaps per-link SetISL enforcement for per-satellite slot-delta batches
// without breaking that determinism.
//
// -run fleet benchmarks the fleet telemetry plane itself: agents hammer
// their registries while flushing delta reports into a controller-side
// aggregator over real TCP, once with telemetry off and once on; the
// reported overhead ratio feeds the CI regression gate via -bench-json.
//
// -run southbound benchmarks the real-TCP southbound command path twice
// (tracing off, then on) and reports the tracing overhead ratio; its
// rows feed the CI regression gate via -bench-json. -pprof serves
// net/http/pprof under /debug/pprof/ on the -metrics-addr listener.
//
// Telemetry: -metrics-addr serves live Prometheus text on /metrics (plus
// /metrics.json, /healthz, /trace, /trace.chrome) while the experiments
// run — solver iterations, MPC compile latency, data-plane counters move
// in real time; -trace-out writes the span ring as JSONL when done;
// -record-out writes a flight recording for tinyleo-ctl inspect;
// -bench-json flattens every emitted table into a
// [{"name","value","unit"}] array (schema: EXPERIMENTS.md) for
// continuous-benchmarking dashboards. All output files flush on
// SIGINT/SIGTERM, so an interrupted sweep keeps its partial results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/texture"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small or paper")
	run := flag.String("run", "all", "comma-separated experiment list (all, table1, fig3, fig4, fig9, fig13, fig14, fig15, fig15d, fig15e, fig16, fig17, fig17d, fig18, fig19a, fig19bcd, horizon, delta, chaos, southbound, fleet, ablations, discussion)")
	horizonSlots := flag.Int("horizon", 0, "control slots per horizon window for -run horizon (0 = the scale's ControlSlots)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel horizon compile")
	deltaSlots := flag.Int("delta-slots", 0, "control slots for the -run delta incremental-compile sweep (0 = 12)")
	chaosScenario := flag.String("chaos-scenario", "all", "chaos scenario for -run chaos (all, baseline, isl-storm, agent-crash, conn-flap, surge, mixed)")
	chaosSeed := flag.Int64("chaos-seed", 42, "campaign seed for -run chaos (same seed => identical results)")
	chaosFleetOut := flag.String("chaos-fleet-out", "", "write each chaos scenario's final fleet telemetry summary as JSON to this file (deterministic for a given -chaos-seed)")
	chaosDelta := flag.Bool("chaos-delta", false, "enforce chaos repair diffs as per-satellite slot-delta batches instead of per-link SetISL commands")
	sbAgents := flag.Int("sb-agents", 4, "in-process agents for -run southbound")
	sbCmds := flag.Int("sb-cmds", 2000, "commands to push for -run southbound")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace on this address while experiments run (empty = telemetry off)")
	traceOut := flag.String("trace-out", "", "write the span trace as JSONL to this file when done")
	recordOut := flag.String("record-out", "", "write a flight recording to this file when done (.gz = gzip)")
	benchJSON := flag.String("bench-json", "", "write every emitted table as a flat [{name,value,unit}] JSON array to this file")
	pprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on -metrics-addr")
	flag.Parse()

	defer cli.Flush()
	cli.TrapSignals()

	if *metricsAddr != "" || *traceOut != "" || *recordOut != "" {
		obs.Enable()
		obs.EnableTracing(0)
	}
	if *pprof {
		if *metricsAddr == "" {
			cli.Fatalf("tinyleo-bench: -pprof needs -metrics-addr to serve on\n")
		}
		obs.EnablePprof()
	}
	if *recordOut != "" {
		if err := flightrec.Enable(flightrec.Options{}); err != nil {
			cli.Fatalf("tinyleo-bench: flight recorder: %v\n", err)
		}
		cli.AtExit(func() {
			summary, err := flightrec.SaveRecording(*recordOut, "tinyleo-bench")
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-bench: recording: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "recording: wrote %s to %s\n", summary, *recordOut)
		})
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			cli.Fatalf("tinyleo-bench: %v\n", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", srv.Addr())
	}
	if *traceOut != "" {
		cli.AtExit(func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-bench: trace: %v\n", err)
				return
			}
			defer f.Close()
			if err := obs.Trace().WriteJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-bench: trace: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %s to %s\n", obs.Trace().WriteFileSummary(), *traceOut)
		})
	}

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tinyleo-bench: unknown scale %q\n", *scaleName)
		cli.Exit(2)
	}
	sel := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		sel[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return sel["all"] || sel[name] }
	var emitted []*metrics.Table
	if *benchJSON != "" {
		cli.AtExit(func() {
			if err := writeBenchJSON(*benchJSON, emitted); err != nil {
				fmt.Fprintf(os.Stderr, "tinyleo-bench: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "bench-json: wrote %d tables to %s\n", len(emitted), *benchJSON)
		})
	}
	emit := func(tabs ...*metrics.Table) {
		for _, t := range tabs {
			if *csv {
				fmt.Printf("# %s\n", t.Title)
				t.RenderCSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
			fmt.Println()
			emitted = append(emitted, t)
		}
	}
	fail := func(name string, err error) {
		cli.Fatalf("tinyleo-bench: %s: %v\n", name, err)
	}

	needLib := want("table1") || want("fig9") || want("fig13") || want("fig14") ||
		want("fig15") || want("fig15d") || want("fig15e") || want("fig19a") ||
		want("ablations") || want("discussion")

	start := time.Now()
	var library *texture.Library
	if needLib {
		fmt.Fprintf(os.Stderr, "building texture library (%s scale)...\n", scale.Name)
		l, err := scale.BuildLibrary()
		if err != nil {
			fail("library", err)
		}
		library = l
		fmt.Fprintf(os.Stderr, "library: %d tracks, %d coverage entries (%.1fs)\n",
			l.NumTracks(), l.NNZ(), time.Since(start).Seconds())
	}

	if want("table1") {
		emit(experiments.Table1(library))
	}
	if want("fig3") {
		emit(experiments.Figure3(scale)...)
	}
	if want("fig4") {
		emit(experiments.Figure4(scale)...)
	}

	needOuts := want("fig9") || want("fig13") || want("fig14") || want("fig15") ||
		want("fig15e") || want("fig19a") || want("discussion")
	var outs []*experiments.SparsifyOutcome
	if needOuts {
		fmt.Fprintf(os.Stderr, "running sparsification pipeline...\n")
		o, err := experiments.RunSparsification(scale, library)
		if err != nil {
			fail("sparsification", err)
		}
		outs = o
	}
	if want("fig9") {
		tiny := experiments.RealizeConstellation(outs[0].Lib, outs[0].TinyLEO)
		side := 1
		for side*side < len(tiny) {
			side++
		}
		uniform := baseline.WalkerConfig{
			InclinationDeg: 53, AltitudeKm: 550, Planes: side, SatsPerPlane: side, PhasingF: 1,
		}.Satellites()
		emit(experiments.Figure9(scale, tiny, uniform)...)
	}
	if want("fig13") {
		emit(experiments.Figure13(outs))
	}
	if want("fig14") {
		emit(experiments.Figure14(outs))
		fmt.Println(experiments.Figure1Maps(outs))
	}
	if want("fig15") {
		emit(experiments.Figure15a(outs), experiments.Figure15b(outs), experiments.Figure15c(outs))
	}
	if want("fig15d") {
		tab, err := experiments.Figure15d(scale, library)
		if err != nil {
			fail("fig15d", err)
		}
		emit(tab)
	}
	if want("fig15e") {
		emit(experiments.Figure15e(outs)...)
	}
	if want("fig16") {
		tabs, _, err := experiments.Figure16(scale)
		if err != nil {
			fail("fig16", err)
		}
		emit(tabs...)
	}
	if want("fig17") {
		tabs, err := experiments.Figure17(scale)
		if err != nil {
			fail("fig17", err)
		}
		emit(tabs...)
	}
	if want("fig17d") {
		tab, err := experiments.Figure17d(scale, 1000)
		if err != nil {
			fail("fig17d", err)
		}
		emit(tab)
	}
	if want("fig18") {
		tab, err := experiments.Figure18(scale)
		if err != nil {
			fail("fig18", err)
		}
		emit(tab)
	}
	if want("fig19a") {
		var backbone *experiments.SparsifyOutcome
		for _, o := range outs {
			if o.Scenario == "internet-backbone" {
				backbone = o
			}
		}
		tab, err := experiments.Figure19a(scale, backbone)
		if err != nil {
			fail("fig19a", err)
		}
		emit(tab)
	}
	if want("fig19bcd") {
		tabs, err := experiments.Figure19bcd(scale)
		if err != nil {
			fail("fig19bcd", err)
		}
		emit(tabs...)
	}
	if want("horizon") {
		tab, err := experiments.HorizonThroughput(scale, *horizonSlots, *workers)
		if err != nil {
			fail("horizon", err)
		}
		emit(tab)
	}
	if want("delta") {
		tab, err := experiments.DeltaCompileSweep(*deltaSlots)
		if err != nil {
			fail("delta", err)
		}
		emit(tab)
	}
	if want("chaos") {
		tabs, fleets, err := experiments.ChaosCampaign(scale, *chaosScenario, *chaosSeed, *chaosDelta)
		if err != nil {
			fail("chaos", err)
		}
		emit(tabs...)
		if *chaosFleetOut != "" {
			if err := writeChaosFleet(*chaosFleetOut, fleets); err != nil {
				fail("chaos-fleet-out", err)
			}
			fmt.Fprintf(os.Stderr, "chaos-fleet: wrote %d scenario snapshots to %s\n",
				len(fleets), *chaosFleetOut)
		}
	}
	if want("southbound") {
		tab, err := experiments.SouthboundRoundtrip(*sbAgents, *sbCmds)
		if err != nil {
			fail("southbound", err)
		}
		emit(tab)
	}
	if want("fleet") {
		tab, err := experiments.FleetAggregation(*sbAgents, *sbCmds)
		if err != nil {
			fail("fleet", err)
		}
		emit(tab)
	}
	if want("ablations") {
		tab, err := experiments.AblationSolver(scale, library)
		if err != nil {
			fail("ablation-solver", err)
		}
		emit(tab)
		tab, err = experiments.AblationLibraryRichness(scale)
		if err != nil {
			fail("ablation-library", err)
		}
		emit(tab)
		tab, err = experiments.AblationMPCLifetime(scale)
		if err != nil {
			fail("ablation-mpc", err)
		}
		emit(tab)
	}
	if want("discussion") {
		tab, err := experiments.DiscussionFederation(scale, library)
		if err != nil {
			fail("discussion-federation", err)
		}
		emit(tab)
		tab, err = experiments.DiscussionRadioOverlap(scale, outs)
		if err != nil {
			fail("discussion-overlap", err)
		}
		emit(tab)
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
}

// writeBenchJSON flattens every emitted table into the -bench-json file.
func writeBenchJSON(path string, tables []*metrics.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteBenchJSON(f, tables)
}

// writeChaosFleet dumps the per-scenario fleet telemetry summaries as
// indented JSON (map keys sort, so the file is deterministic per seed).
func writeChaosFleet(path string, fleets map[string]*chaos.FleetSummary) error {
	b, err := json.MarshalIndent(fleets, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
