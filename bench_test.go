package tinyleo

// The benchmark harness: one testing.B benchmark per paper table/figure.
// Each benchmark regenerates its experiment at Small scale (the shapes of
// the paper's results at laptop runtimes); run cmd/tinyleo-bench
// -scale=paper for paper-sized dimensions. EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"io"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

var (
	benchLibOnce sync.Once
	benchLib     *Library
	benchLibErr  error

	benchOutsOnce sync.Once
	benchOuts     []*experiments.SparsifyOutcome
	benchOutsErr  error
)

func benchLibrary(b *testing.B) *Library {
	b.Helper()
	benchLibOnce.Do(func() { benchLib, benchLibErr = experiments.Small.BuildLibrary() })
	if benchLibErr != nil {
		b.Fatal(benchLibErr)
	}
	return benchLib
}

func benchOutcomes(b *testing.B) []*experiments.SparsifyOutcome {
	b.Helper()
	lib := benchLibrary(b)
	benchOutsOnce.Do(func() { benchOuts, benchOutsErr = experiments.RunSparsification(experiments.Small, lib) })
	if benchOutsErr != nil {
		b.Fatal(benchOutsErr)
	}
	return benchOuts
}

func discard(tabs ...*metrics.Table) {
	for _, t := range tabs {
		t.Render(io.Discard)
	}
}

// BenchmarkTable1_TextureLibrary regenerates Table 1: building the
// Earth-repeat ground-track library and its statistics.
func BenchmarkTable1_TextureLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lib, err := experiments.Small.BuildLibrary()
		if err != nil {
			b.Fatal(err)
		}
		discard(experiments.Table1(lib))
	}
}

// BenchmarkFigure3_DemandUnevenness regenerates Figure 3 (spatial long
// tail + diurnal dynamics).
func BenchmarkFigure3_DemandUnevenness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		discard(experiments.Figure3(experiments.Small)...)
	}
}

// BenchmarkFigure4_SatelliteWaste regenerates Figure 4 (uniform network
// waste under uneven demand).
func BenchmarkFigure4_SatelliteWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		discard(experiments.Figure4(experiments.Small)...)
	}
}

// BenchmarkFigure9_NetworkDynamics regenerates Figure 9 (establishable
// ISLs and path churn, non-uniform vs uniform).
func BenchmarkFigure9_NetworkDynamics(b *testing.B) {
	outs := benchOutcomes(b)
	tiny := experiments.RealizeConstellation(outs[0].Lib, outs[0].TinyLEO)
	side := 1
	for side*side < len(tiny) {
		side++
	}
	uniform := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 550, Planes: side, SatsPerPlane: side, PhasingF: 1,
	}.Satellites()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discard(experiments.Figure9(experiments.Small, tiny, uniform)...)
	}
}

// BenchmarkFigure15_Sparsification regenerates the headline Figure 15a/b/c
// pipeline (TinyLEO vs truncated ILP vs MegaReduce vs Starlink-like) over
// all three Figure 13 demand scenarios, plus Figure 14's layouts.
func BenchmarkFigure15_Sparsification(b *testing.B) {
	lib := benchLibrary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := experiments.RunSparsification(experiments.Small, lib)
		if err != nil {
			b.Fatal(err)
		}
		discard(experiments.Figure13(outs), experiments.Figure14(outs),
			experiments.Figure15a(outs), experiments.Figure15b(outs),
			experiments.Figure15c(outs))
	}
}

// BenchmarkFigure15d_DiurnalDynamics regenerates Figure 15d (satellite
// savings from diurnal-aware planning).
func BenchmarkFigure15d_DiurnalDynamics(b *testing.B) {
	lib := benchLibrary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure15d(experiments.Small, lib)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}

// BenchmarkFigure15e_OrbitalParameters regenerates Figure 15e (parameter
// importance and distributions).
func BenchmarkFigure15e_OrbitalParameters(b *testing.B) {
	outs := benchOutcomes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discard(experiments.Figure15e(outs)...)
	}
}

// BenchmarkFigure16_IntentEnforcement regenerates Figure 16 (dynamic
// enforcement of fixed geographic intents by the orbital MPC).
func BenchmarkFigure16_IntentEnforcement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, _, err := experiments.Figure16(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		discard(tabs...)
	}
}

// BenchmarkFigure17_ControlPlaneCost regenerates Figure 17a-c (signaling
// message comparison vs TS-SDN).
func BenchmarkFigure17_ControlPlaneCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Figure17(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		discard(tabs...)
	}
}

// BenchmarkFigure17d_FailureRepair regenerates Figure 17d (repair time
// decomposition under random link failures).
func BenchmarkFigure17d_FailureRepair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure17d(experiments.Small, 50)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}

// BenchmarkFigure18_RoutingPolicies regenerates Figure 18 (policy
// enforcement with guaranteed delivery).
func BenchmarkFigure18_RoutingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure18(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}

// BenchmarkFigure19a_RoutingStretch regenerates Figure 19a (routing
// stretch vs the mega-constellation).
func BenchmarkFigure19a_RoutingStretch(b *testing.B) {
	outs := benchOutcomes(b)
	var backbone *experiments.SparsifyOutcome
	for _, o := range outs {
		if o.Scenario == "internet-backbone" {
			backbone = o
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure19a(experiments.Small, backbone)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}

// BenchmarkFigure19bcd_DataPlane regenerates Figures 19b/c/d (RTT,
// utilization, and failover latency).
func BenchmarkFigure19bcd_DataPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Figure19bcd(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		discard(tabs...)
	}
}

// BenchmarkAblation_Solver regenerates the solver ablation (DESIGN.md):
// per-iteration add cap × pruning.
func BenchmarkAblation_Solver(b *testing.B) {
	lib := benchLibrary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationSolver(experiments.Small, lib)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}

// BenchmarkAblation_MPCLifetime regenerates the MPC lifetime-preference
// ablation.
func BenchmarkAblation_MPCLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationMPCLifetime(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}

// BenchmarkDiscussion_Federation regenerates the §7 multi-operator
// federation study.
func BenchmarkDiscussion_Federation(b *testing.B) {
	lib := benchLibrary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.DiscussionFederation(experiments.Small, lib)
		if err != nil {
			b.Fatal(err)
		}
		discard(tab)
	}
}
