package tinyleo

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/orbit"
)

// TestPublicAPIEndToEnd drives the whole toolkit through the facade the
// way examples/quickstart does: plan a sparse network for a demand field,
// derive an intent, compile it with the MPC, and forward a packet.
func TestPublicAPIEndToEnd(t *testing.T) {
	grid, err := NewGrid(10)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := BuildLibrary(LibraryConfig{
		Grid:            grid,
		Specs:           EnumerateRepeatSpecs(1, 500e3, 1600e3),
		InclinationsDeg: []float64{53, 85, -53},
		RAANs:           6, Phases: 3, Slots: 6, SlotSeconds: 900, SubSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dem := StarlinkCustomersDemand(ScenarioOptions{
		Grid: grid, Slots: 6, SlotSeconds: 900, TotalSatUnits: 60,
	})
	plan, err := Sparsify(SparsifyProblem{Library: lib, Demand: dem.Y, Epsilon: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Satellites == 0 {
		t.Fatal("empty plan")
	}
	if v := VerifyAvailability(lib, plan.X, dem.Y); v < 0.9 {
		t.Fatalf("availability = %v", v)
	}

	// Incremental expansion through the facade.
	extra := LatinAmericaDemand(ScenarioOptions{
		Grid: grid, Slots: 6, SlotSeconds: 900, TotalSatUnits: 30,
	})
	grown, err := Expand(SparsifyProblem{Library: lib, Demand: dem.Y, Epsilon: 0.9}, plan, extra.Y)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Satellites < plan.Satellites {
		t.Fatal("expansion shrank the plan")
	}

	// Control plane: a chain intent over a dense test constellation.
	sats := WalkerConfig{InclinationDeg: 53, AltitudeKm: 1200, Planes: 16, SatsPerPlane: 16, PhasingF: 1}.Satellites()
	topo := NewTopology(grid)
	var cells []int
	for i := 0; i < 3; i++ {
		id := grid.CellOf(LatLon{Lat: 5, Lon: float64(-10 + i*10)})
		topo.AddCell(id, 3)
		cells = append(cells, id)
	}
	topo.Connect(cells[0], cells[1], 1)
	topo.Connect(cells[1], cells[2], 1)
	ctl, err := NewController(MPCConfig{
		Topo: topo, Sats: sats,
		Coverage:        orbit.CoverageParams{MinElevation: geom.Deg2Rad(15)},
		LifetimeHorizon: 600, LifetimeStep: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := ctl.Compile(0)
	if len(snap.InterLinks) == 0 {
		t.Fatal("MPC produced no links")
	}

	// Data plane: a 2-hop anycast delivery.
	net := NewNetwork()
	net.AddSatellite(0, cells[0])
	net.AddSatellite(1, cells[1])
	net.AddSatellite(2, cells[2])
	net.Connect(0, 1, 0.004)
	net.Connect(1, 2, 0.004)
	done := false
	net.OnDeliver = func(s *Satellite, p *Packet) { done = true }
	pkt, err := NewGeoPacket(0, []int{cells[1], cells[2]}, 1, 1, []byte("quickstart"))
	if err != nil {
		t.Fatal(err)
	}
	net.Inject(0, pkt)
	net.Sim.Run(1)
	if !done {
		t.Fatal("packet not delivered through facade API")
	}
}

// TestPublicAPISouthbound exercises the TCP southbound facade.
func TestPublicAPISouthbound(t *testing.T) {
	ctl, err := ListenSouthbound("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	agent, err := DialSouthbound(ctl.Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if err := ctl.WaitForAgents(1, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := agent.ReportFailure(42); err != nil {
		t.Fatal(err)
	}
}
