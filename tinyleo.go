// Package tinyleo is the public API of this TinyLEO reproduction — a
// software-defined small-scale LEO satellite network for global-scale
// demands (SIGCOMM 2025). It re-exports the toolkit's three pillars:
//
//   - Offline network sparsification (§4.1): build an Earth-repeat
//     ground-track library (BuildLibrary), synthesize demand scenarios
//     (StarlinkCustomersDemand and friends), and run the compressed-
//     sensing matching pursuit (Sparsify) to plan a sparse constellation.
//   - Control plane (§4.2): declare geographic topology and routing
//     intents (NewTopology, policy route compilers) and compile them each
//     slot into satellite topologies with the orbital MPC (NewController).
//   - Data plane (§4.3): emulate geographic segment anycast forwarding
//     (NewNetwork, NewGeoPacket) with local failover and ring fallback,
//     or run the southbound control protocol over real TCP
//     (ListenController, DialAgent).
//
// The examples/ directory exercises this surface end to end; DESIGN.md
// maps every paper system to its implementing package; EXPERIMENTS.md
// records reproduced results for every table and figure.
package tinyleo

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/mpc"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/orbit"
	"repro/internal/southbound"
	"repro/internal/texture"
)

// ---- Runtime telemetry (internal/obs) ----

// TelemetryRegistry is a concurrency-safe registry of counters, gauges,
// and histograms.
type TelemetryRegistry = obs.Registry

// TelemetryServer is a running /metrics + /healthz + /trace HTTP endpoint.
type TelemetryServer = obs.Server

// Telemetry returns the process-wide registry that internal/mpc,
// internal/core, internal/dataplane, and the southbound agent write to.
// It is disabled (zero-cost) until EnableTelemetry.
func Telemetry() *TelemetryRegistry { return obs.Default() }

// EnableTelemetry turns on the default registry so instrumented hot paths
// start recording.
func EnableTelemetry() { obs.Enable() }

// EnableTraceSpans turns on span tracing with a ring buffer of the given
// capacity (0 = default). Spans are served on /trace and /trace.chrome.
func EnableTraceSpans(capacity int) { obs.EnableTracing(capacity) }

// ServeTelemetry serves Prometheus text, JSON snapshots, health, and span
// traces over HTTP for the given registries (e.g. Telemetry() plus a
// SouthboundController's Metrics()).
func ServeTelemetry(addr string, regs ...*TelemetryRegistry) (*TelemetryServer, error) {
	return obs.Serve(addr, regs...)
}

// ---- Flight recorder and SLOs (internal/obs/flightrec) ----

// FlightRecorderOptions configures the constellation flight recorder:
// event-log and slot-snapshot ring capacities, an optional spill file for
// evicted snapshots, SLO rules, and extra registries for SLO evaluation.
type FlightRecorderOptions = flightrec.Options

// FlightRecording is a loaded or captured recording: per-slot topology
// states, the structured event log, and final SLO status.
type FlightRecording = flightrec.Recording

// FlightEvent is one structured event (component, type, attributes).
type FlightEvent = flightrec.Event

// SLORule is one declarative service-level objective over registry
// metrics or event windows, e.g. availability ≥ 0.95.
type SLORule = flightrec.Rule

// SLOStatus is the latest evaluation of one rule.
type SLOStatus = flightrec.RuleStatus

// EnableFlightRecorder turns on the process-wide flight recorder. Once
// enabled, the MPC, southbound, data-plane, and sparsifier emit typed
// events and per-slot snapshots; obs.Serve endpoints gain /slo and
// /events routes.
func EnableFlightRecorder(o FlightRecorderOptions) error { return flightrec.Enable(o) }

// DisableFlightRecorder stops recording and closes any spill file.
func DisableFlightRecorder() error { return flightrec.Disable() }

// SaveFlightRecording writes the current recording (gzip JSONL when path
// ends in .gz) and returns a human-readable summary.
func SaveFlightRecording(path, binary string) (string, error) {
	return flightrec.SaveRecording(path, binary)
}

// ReadFlightRecording loads a recording written by SaveFlightRecording,
// sniffing gzip automatically.
func ReadFlightRecording(path string) (*FlightRecording, error) {
	return flightrec.ReadRecordingFile(path)
}

// ParseSLORules parses a comma-separated rule spec such as
// "availability>=0.95,deficit_ratio<=0.1,repair_p99<=0.2".
func ParseSLORules(spec string) ([]SLORule, error) { return flightrec.ParseRules(spec) }

// DefaultSLORules returns the paper-derived default objectives.
func DefaultSLORules() []SLORule { return flightrec.DefaultRules() }

// AddSLORegistries points the SLO engine at additional metric registries
// (e.g. a SouthboundController's Metrics()).
func AddSLORegistries(regs ...*TelemetryRegistry) { flightrec.AddSLORegistries(regs...) }

// ---- Geography ----

// LatLon is a geodetic coordinate in degrees.
type LatLon = geom.LatLon

// Grid partitions the Earth into geographic cells (default 4° ⇒ 4,050
// cells, the paper's m).
type Grid = geo.Grid

// NewGrid creates a grid with cells of cellDeg degrees (must divide 180).
func NewGrid(cellDeg float64) (*Grid, error) { return geo.NewGrid(cellDeg) }

// DefaultGrid returns the paper's 4° grid.
func DefaultGrid() *Grid { return geo.DefaultGrid() }

// ---- Orbits and the texture library (§4.1) ----

// OrbitElements describes one circular orbit slot.
type OrbitElements = orbit.Elements

// RepeatSpec is an Earth-repeat orbit family: q revolutions in p sidereal
// days (Equation 1).
type RepeatSpec = orbit.RepeatSpec

// EnumerateRepeatSpecs lists reduced (p,q) repeat families whose circular
// altitude falls in [minAlt, maxAlt] meters.
func EnumerateRepeatSpecs(maxP int, minAlt, maxAlt float64) []RepeatSpec {
	return orbit.EnumerateRepeatSpecs(maxP, minAlt, maxAlt)
}

// LibraryConfig parameterizes texture-library generation.
type LibraryConfig = texture.Config

// Library is the over-complete candidate ground-track set with
// per-(slot, cell) coverage.
type Library = texture.Library

// BuildLibrary enumerates candidates and computes coverage in parallel.
func BuildLibrary(cfg LibraryConfig) (*Library, error) { return texture.Build(cfg) }

// ---- Demand scenarios (Figure 13) ----

// Demand is a spatiotemporal demand field in satellite units.
type Demand = demand.Demand

// ScenarioOptions configures demand synthesis.
type ScenarioOptions = demand.ScenarioOptions

// DiurnalModel is the Figure-3b local-time activity model.
type DiurnalModel = demand.DiurnalModel

// StarlinkCustomersDemand synthesizes the global customer scenario (13a).
func StarlinkCustomersDemand(opt ScenarioOptions) *Demand { return demand.StarlinkCustomers(opt) }

// InternetBackboneDemand synthesizes the submarine-cable backup scenario (13b).
func InternetBackboneDemand(opt ScenarioOptions) *Demand { return demand.InternetBackbone(opt) }

// LatinAmericaDemand synthesizes the regional ISP scenario (13c).
func LatinAmericaDemand(opt ScenarioOptions) *Demand { return demand.LatinAmerica(opt) }

// ---- Sparsification (the core contribution, Algorithm 1) ----

// SparsifyProblem describes one run of the sparse spatiotemporal matching
// pursuit.
type SparsifyProblem = core.Problem

// SparsifyResult is the planned sparse constellation.
type SparsifyResult = core.Result

// Sparsify runs Algorithm 1: select Earth-repeat tracks and satellite
// counts covering the demand at availability ε with minimal satellites.
func Sparsify(p SparsifyProblem) (*SparsifyResult, error) { return core.Sparsify(p) }

// Expand continues a previous plan with additional demand (incremental
// deployment, §4.1).
func Expand(p SparsifyProblem, prev *SparsifyResult, extraDemand []float64) (*SparsifyResult, error) {
	return core.Expand(p, prev, extraDemand)
}

// VerifyAvailability recomputes the satisfied demand fraction of a plan.
func VerifyAvailability(lib *Library, x []int, demand []float64) float64 {
	return core.Verify(lib, x, demand)
}

// ---- Baseline constellations (§6.1 comparisons) ----

// WalkerConfig is a uniform Walker-delta constellation.
type WalkerConfig = baseline.WalkerConfig

// StarlinkShells approximates the 6,793-satellite multi-shell layout.
func StarlinkShells() []baseline.Shell { return baseline.StarlinkShells() }

// StarlinkSatellites expands the shells to satellites.
func StarlinkSatellites() []OrbitElements { return baseline.StarlinkSatellites() }

// ---- Control plane (§4.2) ----

// Topology is the geographic topology intent G(V, E, N).
type Topology = intent.Topology

// Route is a hop-by-hop geographic cell route.
type Route = intent.Route

// VerifyConfig bounds the intent verifier's physical checks.
type VerifyConfig = intent.VerifyConfig

// DefaultVerifyConfig matches the paper's satellite model (§6.1).
var DefaultVerifyConfig = intent.DefaultVerifyConfig

// NewTopology creates an empty intent over a grid.
func NewTopology(g *Grid) *Topology { return intent.NewTopology(g) }

// GuaranteedFromSupply converts an unfolded supply vector into per-cell
// guaranteed satellite counts n_u (the §4.2 geographic invariant).
func GuaranteedFromSupply(g *Grid, slots int, supply []float64) map[int]int {
	return intent.GuaranteedFromSupply(g, slots, supply)
}

// MeshIntent builds a mesh-grid intent over sufficiently guaranteed cells.
func MeshIntent(g *Grid, guaranteed map[int]int, minSats, islPerEdge int) *Topology {
	return intent.MeshIntent(g, guaranteed, minSats, islPerEdge)
}

// BackboneIntent builds an intent connecting named endpoints along
// great-circle corridors; returns per-endpoint anchor cells.
func BackboneIntent(g *Grid, endpoints map[string]LatLon, links [][2]string, satsPerCell, islPerEdge int) (*Topology, map[string]int) {
	return intent.BackboneIntent(g, endpoints, links, satsPerCell, islPerEdge)
}

// MPCConfig parameterizes the orbital model predictive controller.
type MPCConfig = mpc.Config

// MPCController compiles intents into satellite topologies.
type MPCController = mpc.Controller

// Snapshot is one compiled satellite topology.
type Snapshot = mpc.Snapshot

// ISL is an undirected satellite link.
type ISL = mpc.Link

// OrbitCacheStats reports the controller's propagation-cache
// effectiveness (MPCController.CacheStats).
type OrbitCacheStats = orbit.CacheStats

// NewController validates the config and creates an orbital MPC. The
// controller's HorizonCompile/HorizonStream methods compile windows of
// future slots across a worker pool with output identical to sequential
// Compile calls.
func NewController(cfg MPCConfig) (*MPCController, error) { return mpc.New(cfg) }

// ---- Data plane (§4.3) ----

// Network is the emulated satellite data plane.
type Network = dataplane.Network

// Satellite is one forwarding node.
type Satellite = dataplane.Satellite

// Packet is a data-plane packet (geo segment or legacy).
type Packet = dataplane.Packet

// NewNetwork creates an empty emulated network.
func NewNetwork() *Network { return dataplane.NewNetwork() }

// NewGeoPacket builds a geographic segment anycast packet along a cell
// route.
func NewGeoPacket(src uint32, route []int, flow, seq uint32, payload []byte) (*Packet, error) {
	return dataplane.NewGeoPacket(src, route, flow, seq, payload)
}

// ---- Southbound control protocol (§5, over real TCP) ----

// SouthboundController is the terrestrial controller endpoint.
type SouthboundController = southbound.Controller

// SouthboundAgent is the per-satellite agent endpoint.
type SouthboundAgent = southbound.Agent

// SouthboundMessage is one protocol message.
type SouthboundMessage = southbound.Message

// ListenSouthbound starts a controller on addr.
func ListenSouthbound(addr string) (*SouthboundController, error) {
	return southbound.ListenController(addr)
}

// DialSouthbound connects and registers an agent.
func DialSouthbound(addr string, satID uint32, timeout time.Duration) (*SouthboundAgent, error) {
	return southbound.DialAgent(addr, satID, timeout)
}

// SouthboundAgentOptions tunes an agent's reliability behaviour:
// automatic reconnect with exponential backoff and jitter, and the
// duplicate-command suppression window.
type SouthboundAgentOptions = southbound.AgentOptions

// DialSouthboundReliable connects and registers an agent with explicit
// reliability options. With Reconnect set the session survives transport
// loss: the agent re-dials with backoff, the controller resends pending
// commands on the new connection, and the dedup window keeps redelivered
// commands idempotent.
func DialSouthboundReliable(addr string, satID uint32, timeout time.Duration, opts SouthboundAgentOptions) (*SouthboundAgent, error) {
	return southbound.DialAgentOptions(addr, satID, timeout, opts)
}
