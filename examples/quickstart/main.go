// Quickstart: plan a sparse LEO network for an uneven demand field with
// Algorithm 1, inspect the chosen orbits, and push a packet through a
// geographic-segment-anycast data plane.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tinyleo "repro"
)

func main() {
	// 1. A coarse grid (10° cells) and a small Earth-repeat track library.
	grid, err := tinyleo.NewGrid(10)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := tinyleo.BuildLibrary(tinyleo.LibraryConfig{
		Grid:            grid,
		Specs:           tinyleo.EnumerateRepeatSpecs(1, 500e3, 1600e3),
		InclinationsDeg: []float64{30, 53, 85, -53},
		RAANs:           8,
		Phases:          3,
		Slots:           12,
		SlotSeconds:     900,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("texture library: %d candidate Earth-repeat orbital slots\n", lib.NumTracks())

	// 2. The paper's headline demand: global customers concentrated on a
	// few hotspots (Figure 13a shape), 50 satellite-capacities at peak.
	// Note the gap between demand and the resulting plan size below: a
	// LEO satellite spends most of its orbit over oceans, which is the
	// paper's waste insight and exactly what the sparsifier minimizes.
	dem := tinyleo.StarlinkCustomersDemand(tinyleo.ScenarioOptions{
		Grid: grid, Slots: 12, SlotSeconds: 900, TotalSatUnits: 50,
	})
	fmt.Printf("demand: %s\n", dem)
	fmt.Printf("70%% of demand sits on %.1f%% of the Earth's surface\n",
		100*dem.SpatialConcentration(0.7))

	// 3. Sparsify: the compressed-sensing matching pursuit of §4.1.
	plan, err := tinyleo.Sparsify(tinyleo.SparsifyProblem{
		Library: lib, Demand: dem.Y, Epsilon: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d satellites on %d of %d candidate slots (availability %.3f)\n",
		plan.Satellites, len(plan.ChosenTracks()), lib.NumTracks(), plan.Availability)
	fmt.Println("first chosen orbits:")
	for i, j := range plan.ChosenTracks() {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		tr := lib.Tracks[j]
		fmt.Printf("  %d sat(s) @ %.0f km, i=%.0f°, Ω=%.0f° (repeat %d/%d)\n",
			plan.X[j], tr.Elements.Altitude()/1e3, tr.InclinationDeg(), tr.RAANDeg(),
			tr.Spec.P, tr.Spec.Q)
	}

	// 4. Data plane: geographic segment anycast across three cells.
	cellA := grid.CellOf(tinyleo.LatLon{Lat: 40, Lon: -74}) // New York
	cellB := grid.CellOf(tinyleo.LatLon{Lat: 45, Lon: -40}) // mid-Atlantic
	cellC := grid.CellOf(tinyleo.LatLon{Lat: 50, Lon: 0})   // London
	net := tinyleo.NewNetwork()
	net.AddSatellite(0, cellA)
	net.AddSatellite(1, cellB)
	net.AddSatellite(2, cellC)
	net.Connect(0, 1, 0.009) // ~2,700 km of laser light
	net.Connect(1, 2, 0.009)
	net.OnDeliver = func(s *tinyleo.Satellite, p *tinyleo.Packet) {
		fmt.Printf("delivered at satellite %d over cell %d after %.1f ms (hops: %v)\n",
			s.ID, s.Cell, 1e3*(net.Sim.Now()-p.SentAt), p.HopTrace)
	}
	pkt, err := tinyleo.NewGeoPacket(0, []int{cellB, cellC}, 1, 1, []byte("hello from NYC"))
	if err != nil {
		log.Fatal(err)
	}
	net.Inject(0, pkt)
	net.Sim.Run(1)
}
