// Regional ISP: a small operator builds an affordable LEO network for
// Latin America only (the paper's Figure 13c scenario and §7 deployment
// story), then grows it incrementally when demand expands — Algorithm 1's
// step-by-step launch plan (§4.1 "Incremental LEO network expansion").
//
//	go run ./examples/regional-isp
package main

import (
	"fmt"
	"log"

	tinyleo "repro"
)

func main() {
	grid, err := tinyleo.NewGrid(10)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := tinyleo.BuildLibrary(tinyleo.LibraryConfig{
		Grid:            grid,
		Specs:           tinyleo.EnumerateRepeatSpecs(1, 500e3, 1873e3),
		InclinationsDeg: []float64{30, 53, -30, -53},
		RAANs:           10, Phases: 3, Slots: 10, SlotSeconds: 900,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: serve today's regional customers.
	initial := tinyleo.LatinAmericaDemand(tinyleo.ScenarioOptions{
		Grid: grid, Slots: 10, SlotSeconds: 900, TotalSatUnits: 400,
	})
	fmt.Printf("phase 1 demand: %s\n", initial)
	problem := tinyleo.SparsifyProblem{Library: lib, Demand: initial.Y, Epsilon: 0.95}
	plan, err := tinyleo.Sparsify(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 constellation: %d satellites on %d orbits (availability %.3f)\n",
		plan.Satellites, len(plan.ChosenTracks()), plan.Availability)

	// The trace doubles as the launch schedule: satellites in the order
	// the matching pursuit selected them, i.e. highest marginal coverage
	// first.
	fmt.Println("launch schedule (first 5 steps):")
	for i, step := range plan.Trace {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		tr := lib.Tracks[step.Track]
		fmt.Printf("  step %d: +%d sat(s) @ i=%.0f° Ω=%.0f° -> availability %.3f\n",
			step.Iteration, step.Added, tr.InclinationDeg(), tr.RAANDeg(), step.Availability)
	}

	// Phase 2: the ISP lands a contract doubling demand. Expand the
	// existing constellation without touching launched satellites.
	extra := initial.Clone().Scale(1.0) // same field again = double demand
	grown, err := tinyleo.Expand(problem, plan, extra.Y)
	if err != nil {
		log.Fatal(err)
	}
	added := grown.Satellites - plan.Satellites
	fmt.Printf("phase 2 expansion: +%d satellites (total %d), availability %.3f\n",
		added, grown.Satellites, grown.Availability)
	for j := range plan.X {
		if grown.X[j] < plan.X[j] {
			log.Fatalf("incremental expansion must not remove satellites (track %d)", j)
		}
	}
	fmt.Println("no launched satellite was moved or retired during expansion")

	// Compare with planning from scratch for the doubled demand.
	combined := initial.Clone().Scale(2)
	fresh, err := tinyleo.Sparsify(tinyleo.SparsifyProblem{
		Library: lib, Demand: combined.Y, Epsilon: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from-scratch plan for the same total demand: %d satellites "+
		"(incremental cost of keeping history: %+d)\n",
		fresh.Satellites, grown.Satellites-fresh.Satellites)
}
