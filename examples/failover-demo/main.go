// Failover demo: shows the two recovery paths of §4.3 side by side on an
// emulated network, then exercises the orbital MPC and the real
// southbound TCP repair loop.
//
//  1. TinyLEO's data plane reroutes locally (anycast + gateway ring) in
//     milliseconds when an ISL dies mid-flow.
//
//  2. A legacy routing-table plane must buffer and wait ~84 ms for the
//     remote control plane (Figure 17d/19d).
//
//  3. The orbital MPC compiles a chain intent over a Walker
//     constellation and repairs a synthetic ISL failure (§4.2).
//
//  4. The reliable southbound session rides out trouble: a slow agent
//     forces at-least-once retransmission (applied once thanks to the
//     agent's dedup window), and a severed transport heals through the
//     agent's exponential-backoff reconnect.
//
//  5. The same failure report travels over a real TCP southbound session
//     to a controller that answers with repair commands.
//
//     go run ./examples/failover-demo
//
// With -metrics-addr every stage is recorded on the runtime telemetry
// registry and served as Prometheus text — non-zero MPC compile-latency,
// southbound message, and data-plane failover series on one /metrics
// endpoint — for -hold after the stages finish:
//
//	go run ./examples/failover-demo -metrics-addr 127.0.0.1:9100 -hold 1m
//
// With -record-out the whole run is captured by the constellation flight
// recorder — per-slot compiled topologies, typed failure/repair events,
// SLO status — and written as a recording that `tinyleo-ctl inspect`
// renders into a postmortem; -slo overrides the objective thresholds
// (live status on /slo when -metrics-addr is set too):
//
//	go run ./examples/failover-demo -record-out flight.jsonl.gz \
//	    -slo 'availability>=0.99,deficit_ratio<=0.01'
//	go run ./cmd/tinyleo-ctl inspect -in flight.jsonl.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	tinyleo "repro"

	"repro/internal/mpc"
	"repro/internal/southbound"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /healthz, /trace, /slo on this address (empty = telemetry off)")
	hold := flag.Duration("hold", 5*time.Second,
		"keep the telemetry endpoint up this long after the demo stages finish")
	recordOut := flag.String("record-out", "",
		"write a flight recording to this file when done (.gz = gzip)")
	sloSpec := flag.String("slo", "",
		"SLO rule spec, e.g. 'availability>=0.95,repair_p99<=0.2' (empty = defaults)")
	flag.Parse()

	if *metricsAddr != "" || *recordOut != "" || *sloSpec != "" {
		// The flight recorder's SLO engine reads registry metrics
		// (enforcement ratio, repair latency), so recording implies
		// telemetry.
		tinyleo.EnableTelemetry()
		tinyleo.EnableTraceSpans(0)
	}
	if *recordOut != "" || *sloSpec != "" {
		rules := tinyleo.DefaultSLORules()
		if *sloSpec != "" {
			var err error
			rules, err = tinyleo.ParseSLORules(*sloSpec)
			if err != nil {
				log.Fatalf("-slo: %v", err)
			}
		}
		if err := tinyleo.EnableFlightRecorder(tinyleo.FlightRecorderOptions{
			Rules:      rules,
			Registries: []*tinyleo.TelemetryRegistry{tinyleo.Telemetry()},
		}); err != nil {
			log.Fatal(err)
		}
	}
	emulatedFailover()
	mpcCompileRepair()
	southboundReliability()
	ctlMetrics := southboundRepair()
	tinyleo.AddSLORegistries(ctlMetrics)
	if *recordOut != "" {
		summary, err := tinyleo.SaveFlightRecording(*recordOut, "failover-demo")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== flight recording ==\nwrote %s to %s\ninspect with: go run ./cmd/tinyleo-ctl inspect -in %s\n",
			summary, *recordOut, *recordOut)
	}
	if *metricsAddr != "" {
		srv, err := tinyleo.ServeTelemetry(*metricsAddr, tinyleo.Telemetry(), ctlMetrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("== telemetry ==\nserving http://%s/metrics (SLO status on /slo) for %v\n", srv.Addr(), *hold)
		time.Sleep(*hold)
	}
}

// mpcCompileRepair compiles a 4-cell chain intent over a Walker
// constellation for two control slots and repairs a synthetic ISL failure,
// so the MPC's compile/repair telemetry series move.
func mpcCompileRepair() {
	fmt.Println("== orbital MPC compile + repair ==")
	sats := tinyleo.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200, Planes: 16, SatsPerPlane: 16, PhasingF: 1,
	}.Satellites()
	g, err := tinyleo.NewGrid(10)
	if err != nil {
		log.Fatal(err)
	}
	topo := tinyleo.NewTopology(g)
	var cells []int
	for i := 0; i < 4; i++ {
		id := g.CellOf(tinyleo.LatLon{Lat: 5, Lon: float64(-15 + i*10)})
		topo.AddCell(id, 3)
		cells = append(cells, id)
	}
	for i := 1; i < len(cells); i++ {
		topo.Connect(cells[i-1], cells[i], 1)
	}
	ctrl, err := tinyleo.NewController(tinyleo.MPCConfig{Topo: topo, Sats: sats})
	if err != nil {
		log.Fatal(err)
	}
	// Horizon planner: both slots compile across a worker pool, delivered
	// in order (output identical to sequential Compile calls).
	var prev *tinyleo.Snapshot
	ctrl.HorizonStream(0, 300, 2, 2, func(slot int, snap *tinyleo.Snapshot) {
		added, removed := mpc.DiffLinks(prev, snap)
		prev = snap
		fmt.Printf("slot %d: %d inter-cell ISLs, %d ring ISLs, %d changes, enforcement %.2f\n",
			slot, len(snap.InterLinks), len(snap.RingLinks), len(added)+len(removed),
			ctrl.EnforcementRatio(snap))
	})
	if len(prev.InterLinks) > 0 {
		repaired, stats := ctrl.Repair(prev, prev.InterLinks[:1], nil, 83800*time.Microsecond)
		fmt.Printf("repair: %d new ISLs, %d messages, %v end-to-end (enforcement %.2f)\n",
			len(stats.NewLinks), stats.Messages, stats.Total().Round(time.Millisecond),
			ctrl.EnforcementRatio(repaired))
	}
}

// emulatedFailover builds a 3-cell chain with two gateways per cell and
// kills the primary ISL mid-flow.
func emulatedFailover() {
	fmt.Println("== emulated data-plane failover ==")
	build := func() *tinyleo.Network {
		n := tinyleo.NewNetwork()
		// cells: 10 (sats 0,1) -> 20 (sats 2,3) -> 30 (sats 4,5)
		for id, cell := range []int{10, 10, 20, 20, 30, 30} {
			n.AddSatellite(id, cell)
		}
		n.Connect(0, 2, 0.005)
		n.Connect(1, 3, 0.005)
		n.Connect(2, 4, 0.005)
		n.Connect(3, 5, 0.005)
		n.Connect(0, 1, 0.001)
		n.Connect(2, 3, 0.001)
		n.Connect(4, 5, 0.001)
		n.SetRing([]int{0, 1})
		n.SetRing([]int{2, 3})
		n.SetRing([]int{4, 5})
		return n
	}

	run := func(name string, legacy bool) {
		n := build()
		if legacy {
			n.Sats[0].RoutingTable = map[uint32]int{4: 2}
			n.Sats[2].RoutingTable = map[uint32]int{4: 4}
		}
		var deliveries []float64
		n.OnDeliver = func(s *tinyleo.Satellite, p *tinyleo.Packet) {
			deliveries = append(deliveries, n.Sim.Now())
		}
		// Primary ISL 0-2 dies at t=50 ms.
		n.Sim.Schedule(0.050, func() { n.Link(0, 2).Down() })
		if legacy {
			// Remote control plane repairs after the paper's 83.8 ms.
			n.Sim.Schedule(0.050+0.0838, func() {
				n.Sats[0].RoutingTable[4] = 1
				n.Sats[1].RoutingTable = map[uint32]int{4: 3}
				n.Sats[3].RoutingTable = map[uint32]int{4: 5}
				n.Sats[5].RoutingTable = map[uint32]int{4: 4}
				n.FlushBuffers()
			})
		}
		// 10 ms cadence flow for 200 ms.
		for i := 0; i < 20; i++ {
			i := i
			n.Sim.Schedule(float64(i)*0.010, func() {
				if legacy {
					p := &tinyleo.Packet{}
					p.Base.Ver = 1
					p.Base.HopLimit = 32
					p.Base.FlowID = 4
					p.SentAt = n.Sim.Now()
					n.Inject(0, p)
					return
				}
				p, err := tinyleo.NewGeoPacket(0, []int{20, 30}, 1, uint32(i), nil)
				if err != nil {
					log.Fatal(err)
				}
				n.Inject(0, p)
			})
		}
		n.Sim.Run(1)
		gap := 0.0
		for i := 1; i < len(deliveries); i++ {
			if d := deliveries[i] - deliveries[i-1]; d > gap {
				gap = d
			}
		}
		fmt.Printf("%-28s delivered %2d/20, max delivery gap %5.1f ms, failovers=%d\n",
			name, len(deliveries), gap*1e3, n.Sats[0].Failovers)
	}
	run("TinyLEO geo anycast:", false)
	run("legacy routing tables:", true)
}

// southboundReliability exercises the reliable southbound session: a slow
// agent forces at-least-once retransmission (with duplicate suppression on
// the agent side), and a severed transport heals through the agent's
// backoff reconnect with the command flow resuming afterwards.
func southboundReliability() {
	fmt.Println("== reliable southbound session ==")
	ctl, err := tinyleo.ListenSouthbound("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	ctl.RetransmitInterval = 25 * time.Millisecond
	acked := make(chan uint32, 8)
	ctl.OnAck = func(m *tinyleo.SouthboundMessage) { acked <- m.Seq }

	var applied atomic.Int64
	agent, err := tinyleo.DialSouthboundReliable(ctl.Addr(), 9, 2*time.Second,
		tinyleo.SouthboundAgentOptions{
			Reconnect:   true,
			BackoffBase: 10 * time.Millisecond,
			BackoffMax:  200 * time.Millisecond,
		})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	agent.OnCommand = func(m *tinyleo.SouthboundMessage) {
		if applied.Add(1) == 1 {
			// The first command applies slowly, so its ack misses several
			// retransmit deadlines: the controller resends, the agent's
			// dedup window re-acks the copies without re-applying.
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Duplicate commands are re-acked by the agent, so acks for an older
	// sequence number can trail in; wait for the one we sent.
	waitAck := func(stage string, want uint32) {
		deadline := time.After(2 * time.Second)
		for {
			select {
			case seq := <-acked:
				if seq == want {
					return
				}
			case <-deadline:
				log.Fatalf("%s: command never acked", stage)
			case <-time.After(5 * time.Millisecond):
				ctl.SweepPending() // drive retransmission while waiting
			}
		}
	}

	up := &tinyleo.SouthboundMessage{Type: southbound.MsgSetISL, SatID: 9, Peer: 17, Up: true}
	if err := ctl.Send(up); err != nil {
		log.Fatal(err)
	}
	waitAck("slow apply", up.Seq)
	rtx := ctl.Metrics().Counter(southbound.MetricRetransmits).Value()
	fmt.Printf("slow agent: command acked after %d retransmissions, applied %d time(s)\n",
		rtx, applied.Load())

	// Sever the transport; the agent re-dials with exponential backoff and
	// re-registers, after which commands flow again.
	regs := ctl.Registrations(9)
	agent.DropConn()
	deadline := time.Now().Add(2 * time.Second)
	for ctl.Registrations(9) == regs {
		if time.Now().After(deadline) {
			log.Fatal("agent never re-registered after DropConn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	down := &tinyleo.SouthboundMessage{Type: southbound.MsgSetISL, SatID: 9, Peer: 17, Up: false}
	if err := ctl.Send(down); err != nil {
		log.Fatal(err)
	}
	waitAck("post-reconnect", down.Seq)
	fmt.Printf("transport drop: healed after %d reconnect(s), post-reconnect command acked (applied %d total)\n",
		agent.Reconnects(), applied.Load())
}

// southboundRepair runs the failure-report → repair-command loop over a
// real localhost TCP session. It returns the controller's telemetry
// registry so main can serve its message counters after the session ends.
func southboundRepair() *tinyleo.TelemetryRegistry {
	fmt.Println("== southbound TCP repair loop ==")
	ctl, err := tinyleo.ListenSouthbound("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	ctl.OnFailure = func(report *tinyleo.SouthboundMessage) []*tinyleo.SouthboundMessage {
		// Repair policy: tear down the dead ISL, bring up a spare.
		return []*tinyleo.SouthboundMessage{
			{Type: southbound.MsgSetISL, SatID: report.SatID, Peer: report.Peer, Up: false},
			{Type: southbound.MsgSetISL, SatID: report.SatID, Peer: report.Peer + 1, Up: true},
		}
	}
	agent, err := tinyleo.DialSouthbound(ctl.Addr(), 7, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	repaired := make(chan *tinyleo.SouthboundMessage, 2)
	agent.OnCommand = func(m *tinyleo.SouthboundMessage) { repaired <- m }

	start := time.Now()
	if err := agent.ReportFailure(42); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case m := <-repaired:
			state := "down"
			if m.Up {
				state = "up"
			}
			fmt.Printf("repair command %d: ISL to %d -> %s (after %v)\n",
				i+1, m.Peer, state, time.Since(start).Round(time.Microsecond))
		case <-time.After(2 * time.Second):
			log.Fatal("controller never repaired")
		}
	}
	return ctl.Metrics()
}
