// Backbone backup: use a small LEO network as a standby for the
// international Internet backbone (the paper's Figure 13b scenario).
// Plans a sparse constellation for the inter-regional capacity matrix,
// declares a backbone topology intent, compiles it with the orbital MPC,
// and routes traffic with the cross-oceanic offloading policy.
//
//	go run ./examples/backbone-backup
package main

import (
	"fmt"
	"log"

	tinyleo "repro"

	"repro/internal/geom"
	"repro/internal/orbit"
)

func main() {
	grid, err := tinyleo.NewGrid(10)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Backbone demand: inter-regional O-D capacities routed along great
	// circles onto cells (satellite units per cell).
	dem := tinyleo.InternetBackboneDemand(tinyleo.ScenarioOptions{
		Grid: grid, Slots: 8, SlotSeconds: 900,
	})
	fmt.Printf("backbone demand: %s\n", dem)

	// 2. Sparsify against an Earth-repeat library.
	lib, err := tinyleo.BuildLibrary(tinyleo.LibraryConfig{
		Grid:            grid,
		Specs:           tinyleo.EnumerateRepeatSpecs(1, 500e3, 1873e3),
		InclinationsDeg: []float64{30, 53, 70, -53},
		RAANs:           8, Phases: 3, Slots: 8, SlotSeconds: 900,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := tinyleo.Sparsify(tinyleo.SparsifyProblem{
		Library: lib, Demand: dem.Y, Epsilon: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse backup constellation: %d satellites (availability %.3f)\n",
		plan.Satellites, plan.Availability)

	// 3. A trans-Atlantic backbone intent: NY ↔ London ↔ Frankfurt.
	endpoints := map[string]tinyleo.LatLon{
		"new-york":  {Lat: 40.7, Lon: -74},
		"london":    {Lat: 51.5, Lon: 0},
		"frankfurt": {Lat: 50.1, Lon: 8.7},
	}
	topo, anchors := tinyleo.BackboneIntent(grid, endpoints,
		[][2]string{{"new-york", "london"}, {"london", "frankfurt"}}, 3, 1)
	if errs := topo.Verify(tinyleo.DefaultVerifyConfig); len(errs) > 0 {
		log.Fatalf("intent rejected: %v", errs)
	}
	fmt.Printf("backbone intent: %d cells, %d edges, connected=%v\n",
		len(topo.Cells()), len(topo.Edges), topo.Connected())

	// 4. Compile the intent over a dense operator constellation with the
	// orbital MPC, at three control slots: the intent stays fixed while the
	// satellite topology evolves.
	sats := tinyleo.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200, Planes: 20, SatsPerPlane: 20, PhasingF: 1,
	}.Satellites()
	ctl, err := tinyleo.NewController(tinyleo.MPCConfig{
		Topo: topo, Sats: sats,
		Coverage: orbit.CoverageParams{MinElevation: geom.Deg2Rad(15)},
	})
	if err != nil {
		log.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ {
		t := float64(slot) * 300
		snap := ctl.Compile(t)
		fmt.Printf("t=%4.0fs: %2d inter-cell ISLs, %2d ring ISLs, enforcement %.2f\n",
			t, len(snap.InterLinks), len(snap.RingLinks), ctl.EnforcementRatio(snap))
	}

	// 5. Route policies over the stable intent.
	shortest, err := topo.ShortestPathRoute(anchors["new-york"], anchors["frankfurt"])
	if err != nil {
		log.Fatal(err)
	}
	offload, err := topo.OceanicOffloadRoute(anchors["new-york"], anchors["frankfurt"], 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest-path route: %d cells, %.0f km, %.1f ms one-way propagation\n",
		len(shortest.Cells), topo.Length(shortest)/1e3, 1e3*topo.PropagationDelay(shortest))
	fmt.Printf("oceanic-offload route: %d cells, %.0f km\n",
		len(offload.Cells), topo.Length(offload)/1e3)
}
