// Package cli holds shared plumbing for the tinyleo command-line
// binaries: exit-time flush hooks (trace and flight-recording writers)
// that also run on SIGINT/SIGTERM, so -trace-out and -record-out files
// survive an interrupted run instead of being skipped with the deferred
// writers.
package cli

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

var (
	mu       sync.Mutex
	cleanups []func()
	flushed  bool
	trapOnce sync.Once
)

// AtExit registers fn to run exactly once at process end: on Flush
// (normal return), on Exit, or on SIGINT/SIGTERM after TrapSignals.
// Functions run in reverse registration order, defer-style.
func AtExit(fn func()) {
	mu.Lock()
	cleanups = append(cleanups, fn)
	mu.Unlock()
}

// Flush runs every registered cleanup once; later calls are no-ops.
// Binaries `defer cli.Flush()` at the top of main.
func Flush() {
	mu.Lock()
	if flushed {
		mu.Unlock()
		return
	}
	flushed = true
	fns := cleanups
	cleanups = nil
	mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// Exit flushes the cleanups and terminates with code.
func Exit(code int) {
	Flush()
	os.Exit(code)
}

// Fatalf prints to stderr and Exits(1), so error paths still flush
// partial traces/recordings.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format, args...)
	Exit(1)
}

// TrapSignals installs a SIGINT/SIGTERM handler that flushes the
// registered cleanups and exits with the conventional 128+signal code.
// Safe to call more than once.
func TrapSignals() {
	trapOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		//tinyleo:goroutine signal watcher lives for the process lifetime by design; it exits the process itself
		go func() {
			sig := <-ch
			fmt.Fprintf(os.Stderr, "\ninterrupted (%v); flushing telemetry...\n", sig)
			code := 130 // SIGINT
			if sig == syscall.SIGTERM {
				code = 143
			}
			Exit(code)
		}()
	})
}
