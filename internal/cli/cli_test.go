package cli

import "testing"

// Note: Flush is once-per-process, so the ordering and idempotence
// checks share one TestMain-free test to keep the package state simple.
func TestFlushRunsCleanupsInReverseOrderOnce(t *testing.T) {
	var order []int
	AtExit(func() { order = append(order, 1) })
	AtExit(func() { order = append(order, 2) })
	AtExit(func() { order = append(order, 3) })
	Flush()
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("cleanup order = %v, want [3 2 1]", order)
	}
	// Second Flush is a no-op, and cleanups registered after a flush
	// never fire (the process is exiting).
	AtExit(func() { order = append(order, 4) })
	Flush()
	if len(order) != 3 {
		t.Fatalf("post-flush cleanups ran: %v", order)
	}
}
