// Package util provides an extra-package callee for the goroutinelife
// testdata: its body is out of the analyzed package's sight.
package util

// Spin loops forever; the launching package cannot see that.
func Spin() {
	for {
	}
}
