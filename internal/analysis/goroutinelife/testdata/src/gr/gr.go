// Package gr exercises the goroutinelife analyzer: accounted launches
// (WaitGroup, ctx, done channels, annotations) and leaks.
package gr

import (
	"context"
	"sync"

	"repro/util"
)

// Server mimics the repo's loop-owning types.
type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
	out  chan int
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case s.out <- 1:
		}
	}
}

// drain has no termination signal of its own.
func (s *Server) drain() {
	for v := range s.out {
		_ = v
	}
}

func (s *Server) watch(ctx context.Context) {
	<-ctx.Done()
}

func (s *Server) Start(ctx context.Context) {
	s.wg.Add(1)
	go s.acceptLoop() // accounted: body registers wg.Done

	go s.drain() // want `goroutine has no visible termination path`

	go s.watch(ctx) // accounted: context parameter

	go func() {
		defer s.wg.Done()
		<-s.stop
	}()

	go func() { // want `goroutine has no visible termination path`
		for range s.out {
		}
	}()

	//tinyleo:goroutine exits when s.out is closed by the producer
	go s.drain()

	//tinyleo:goroutine // want `missing its mandatory reason`
	go s.drain() // want `goroutine has no visible termination path`

	go util.Spin() // want `goroutine has no visible termination path`

	//tinyleo:goroutine test fixture: runs until process exit by design
	go util.Spin()

	f := s.drain
	go f() // want `goroutine has no visible termination path`

	go func() {
		<-quitCh()
	}()
}

// quitCh names its result like a shutdown channel; the receive above is
// matched by the callee name.
func quitCh() chan struct{} { return make(chan struct{}) }
