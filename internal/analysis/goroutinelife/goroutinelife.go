// Package goroutinelife flags fire-and-forget goroutines: every `go`
// statement in non-test code must have a visible termination path, or an
// annotation explaining why it may not need one.
//
// A goroutine launch is accounted when any of the following holds:
//
//   - The launched function (a literal, or a function/method declared in
//     the same package) registers with a lifecycle primitive: its body
//     calls a method named Done — covering both sync.WaitGroup
//     registration (defer wg.Done()) and context watching (<-ctx.Done()).
//   - The launched function takes a context.Context parameter: its
//     caller owns cancellation.
//   - Its body receives from (or selects on) a channel whose name says
//     shutdown: done, stop, quit, exit, close(d), or ctx.
//   - The `go` statement carries a "//tinyleo:goroutine <reason>"
//     annotation on its line or the line above, stating why the goroutine
//     is allowed to outlive these signals (e.g. it exits when a listener
//     or connection it consumes is closed). The reason is mandatory; a
//     bare annotation is itself a finding.
//
// Launches whose body the analyzer cannot see (extra-package callees,
// method values, function-typed variables) must carry the annotation:
// an invisible termination path is indistinguishable from a leak.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Marker is the goroutine-lifecycle annotation prefix; the rest of the
// comment is the mandatory reason.
const Marker = "//tinyleo:goroutine"

// Analyzer is the goroutinelife check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "flags go statements with no visible termination path (ctx/done/WaitGroup) and no //tinyleo:goroutine annotation",
	Run:  run,
}

// doneNames are substrings of channel identifiers that signal shutdown.
var doneNames = []string{"done", "stop", "quit", "exit", "close", "ctx"}

func run(pass *analysis.Pass) error {
	ann := collectAnnotations(pass)
	idx := pass.FuncIndex()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if ann.covers(pass.Fset.Position(g.Pos())) {
				return true
			}
			if accounted(pass, idx, g.Call) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine has no visible termination path: pass a context, register "+
					"with a WaitGroup, select on a done channel, or annotate the launch "+
					"with %q and the reason it cannot leak", Marker+" <reason>")
			return true
		})
	}
	return nil
}

// accounted reports whether the launched call's lifecycle is visible:
// the function body shows a termination signal, or the callee takes a
// context.
func accounted(pass *analysis.Pass, idx map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return hasContextParam(pass, lit.Type) || hasLifecycleSignal(lit.Body)
	}
	if decl := pass.CalleeDecl(call, idx); decl != nil {
		return hasContextParam(pass, decl.Type) ||
			(decl.Body != nil && hasLifecycleSignal(decl.Body))
	}
	// Any context.Context argument at the call site counts: the callee is
	// out of sight, but its caller visibly owns cancellation.
	for _, arg := range call.Args {
		if isContextExpr(pass, arg) {
			return true
		}
	}
	return false
}

// hasContextParam reports whether the signature takes a context.Context.
func hasContextParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		if isContextType(pass, p.Type) {
			return true
		}
	}
	return false
}

// isContextType matches the type syntax context.Context (the context
// package is stubbed by the loader, so this is an AST check).
func isContextType(pass *analysis.Pass, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	path, ok := pass.PkgNameOf(base)
	return ok && path == "context"
}

// isContextExpr reports whether an argument expression is named like a
// context ("ctx" or a selector ending in Ctx/ctx).
func isContextExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return strings.EqualFold(x.Name, "ctx")
	case *ast.SelectorExpr:
		return strings.EqualFold(x.Sel.Name, "ctx")
	case *ast.CallExpr:
		if pkg, _, ok := pass.CalleePkgFunc(x); ok && pkg == "context" {
			return true
		}
	}
	return false
}

// hasLifecycleSignal scans a function body for evidence of a termination
// path: a call to a method named Done (WaitGroup registration or
// ctx.Done watching), or a receive from a shutdown-named channel.
func hasLifecycleSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isDoneChannel(x.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isDoneChannel(x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isDoneChannel matches channel expressions whose name says shutdown,
// including the result of a shutdown-named accessor (<-s.stopCh()).
func isDoneChannel(e ast.Expr) bool {
	var last string
	switch x := e.(type) {
	case *ast.Ident:
		last = x.Name
	case *ast.SelectorExpr:
		last = x.Sel.Name
	case *ast.CallExpr:
		return isDoneChannel(x.Fun)
	default:
		return false
	}
	last = strings.ToLower(last)
	for _, n := range doneNames {
		if strings.Contains(last, n) {
			return true
		}
	}
	return false
}

// annotations records the lines covered by //tinyleo:goroutine markers.
type annotations struct {
	lines map[string]map[int]bool
}

// covers reports whether a go statement at pos carries an annotation.
func (a *annotations) covers(pos token.Position) bool {
	return a.lines[pos.Filename][pos.Line]
}

// collectAnnotations scans comments for goroutine markers; a marker
// covers its own line and the next (annotation-above form). Reasonless
// markers are reported immediately.
func collectAnnotations(pass *analysis.Pass) *annotations {
	a := &annotations{lines: map[string]map[int]bool{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), Marker)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // a longer marker, e.g. //tinyleo:goroutinepool
				}
				pos := pass.Fset.Position(c.Pos())
				// A nested comment is not a reason.
				rest, _, _ = strings.Cut(rest, "//")
				if strings.TrimSpace(rest) == "" {
					pass.Reportf(c.Pos(),
						"tinyleo:goroutine annotation is missing its mandatory reason")
					continue
				}
				m := a.lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					a.lines[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return a
}
