package goroutinelife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinelife"
)

func TestGoroutinelife(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinelife.Analyzer, "gr")
}
