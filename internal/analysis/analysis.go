// Package analysis is TinyLEO's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a module-aware package loader
// and a driver with a narrow suppression directive.
//
// Why not x/tools itself? The repo's build policy is stdlib-only (see
// ARCHITECTURE.md "Determinism contract"), and everything the four
// tinyleo analyzers need — parsed ASTs, type-checked identifier uses for
// our own packages, and package-name resolution for stdlib imports —
// go/ast and go/types provide directly. The API shapes deliberately
// mirror x/tools so an analyzer written here ports to a multichecker
// there by changing one import.
//
// The contract the suite enforces is the paper's reproducibility claim
// (TSSDN-style centralized control): every slot compile, repair, and
// chaos campaign must be a pure function of its inputs. Analyzers:
//
//   - maporder:     map iteration order escaping into ordered output
//   - walltime:     wall-clock reads inside deterministic packages
//   - globalrand:   global math/rand sources inside deterministic packages
//   - hotpathalloc: unguarded telemetry on //tinyleo:hotpath functions
//
// Suppression: a comment "//lint:tinyleo-ignore <reason>" on the flagged
// line (or the line above) silences diagnostics there. The reason is
// mandatory; a bare directive is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package via the Pass and reports diagnostics.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	// Analyzer is the check being run (diagnostics are attributed to it).
	Analyzer *Analyzer
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (may contain errors for imports
	// outside the module; see the loader's stub importer).
	Pkg *types.Package
	// PkgPath is the package's import path within the module.
	PkgPath string
	// TypesInfo records identifier uses, definitions, and expression
	// types. External (stdlib) packages resolve to stub packages, so
	// package-name resolution (PkgName) works everywhere while member
	// lookups only resolve for intra-module packages.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding (the driver renders file:line:col).
	Pos token.Pos
	// Message states the contract violation and the expected fix.
	Message string
	// Analyzer is filled by the driver.
	Analyzer string
}

// Finding is a rendered diagnostic with its resolved position.
type Finding struct {
	// Position locates the finding in the source tree.
	Position token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message is the diagnostic text.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// PkgNameOf resolves the package an identifier refers to when it is the
// base of a qualified reference (e.g. the "time" in time.Now). Returns
// the imported package's path and true, or "" and false when id is not a
// package name. Works for stdlib imports even though the loader stubs
// them: PkgName objects carry the import path regardless.
func (p *Pass) PkgNameOf(id *ast.Ident) (string, bool) {
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
	}
	return "", false
}

// CalleePkgFunc resolves a call of the form pkg.Func(...) to its package
// path and function name. ok is false for method calls, locals, and
// unresolvable callees.
func (p *Pass) CalleePkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	base, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path, isPkg := p.PkgNameOf(base)
	if !isPkg {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}
