package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's source directory on disk.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Fset is shared by every package of one Load.
	Fset *token.FileSet
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checking fact table for Files.
	Info *types.Info

	imports []string
}

// LoadConfig configures a Load.
type LoadConfig struct {
	// Dir is the module root (the directory holding go.mod, or any
	// directory to treat as the root when ModulePath is set explicitly).
	Dir string
	// ModulePath overrides the module path read from Dir/go.mod. The
	// analysistest harness uses this to give testdata packages real
	// module-qualified import paths without a go.mod file.
	ModulePath string
}

// Load parses and type-checks every package under the module root.
// Test files (_test.go) are skipped: the determinism contract governs
// production code, and tests legitimately use wall clocks and ad-hoc
// ordering. Directories named testdata, vendor, or starting with "." or
// "_" are skipped, matching the go tool's rules.
//
// Stdlib and other extra-module imports are satisfied by empty stub
// packages: package-name resolution (the "time" in time.Now) still
// works, member lookups silently fail, and the resulting type errors
// are discarded. Intra-module imports are type-checked for real, in
// dependency order, so cross-package member resolution (e.g. a call to
// obs.Registry.Counter from southbound) is exact.
func Load(cfg LoadConfig) ([]*Package, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	modPath := cfg.ModulePath
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	byPath := map[string]*Package{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if pkg == nil {
			return nil // no buildable Go files here
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		if rel == "." {
			pkg.Path = modPath
		} else {
			pkg.Path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg.Dir = path
		byPath[pkg.Path] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	// Type-check in dependency order so intra-module imports resolve to
	// fully-checked packages.
	imp := &moduleImporter{module: byPath, stubs: map[string]*types.Package{}}
	checked := map[string]bool{}
	var checkErr error
	var check func(path string)
	check = func(path string) {
		if checked[path] || checkErr != nil {
			return
		}
		checked[path] = true
		pkg := byPath[path]
		for _, dep := range pkg.imports {
			if _, ok := byPath[dep]; ok {
				check(dep)
			}
		}
		if err := typeCheck(fset, pkg, imp); err != nil {
			checkErr = fmt.Errorf("type-checking %s: %w", path, err)
		}
	}
	for _, p := range paths {
		check(p)
	}
	if checkErr != nil {
		return nil, checkErr
	}

	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, byPath[p])
	}
	return out, nil
}

// Match reports whether the package path matches any pattern, using the
// go tool's "...": "./..." matches everything, "./a/..." matches a and
// its subpackages, "./a" matches exactly. Paths are module-relative.
func Match(pkg *Package, modulePath string, patterns []string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modulePath), "/")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			continue
		}
		if rel == pat || (pat == "" && rel == "") {
			return true
		}
	}
	return false
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: cannot determine module path: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// parseDir parses the non-test Go files of one directory into a Package
// (nil if the directory has none). Mixed package names are an error.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	importSet := map[string]bool{}
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.File(files[i].Pos()).Name() < fset.File(files[j].Pos()).Name()
	})
	pkg := &Package{Files: files, Fset: fset}
	for imp := range importSet {
		pkg.imports = append(pkg.imports, imp)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// typeCheck runs go/types over one package, discarding errors caused by
// stubbed extra-module imports (the analyzers only need facts the
// checker can establish from module sources).
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		// Stubbed imports make undefined-member errors routine; collect
		// nothing and keep checking.
		Error: func(error) {},
	}
	tpkg, _ := conf.Check(pkg.Path, fset, pkg.Files, info)
	if tpkg == nil {
		return fmt.Errorf("checker produced no package")
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves intra-module imports to their checked packages
// and everything else to cached, empty stubs whose package name is the
// final path element (correct for the entire stdlib).
type moduleImporter struct {
	module map[string]*Package
	stubs  map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok && pkg.Types != nil {
		return pkg.Types, nil
	}
	if stub, ok := m.stubs[path]; ok {
		return stub, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	stub := types.NewPackage(path, name)
	stub.MarkComplete()
	m.stubs[path] = stub
	return stub, nil
}
