// Package sb exercises the guardedby analyzer: annotated fields, both
// lock modes, the *Locked convention, closures, and malformed
// annotations.
package sb

import "sync"

// Controller mimics the southbound controller's guarded state.
type Controller struct {
	mu  sync.Mutex
	rmu sync.RWMutex

	// pending is the seq→command table.
	//tinyleo:guardedby mu
	pending map[uint32]int
	//tinyleo:guardedby mu
	seq uint32
	//tinyleo:guardedby rmu
	view []int

	//tinyleo:guardedby nosuch // want `not a sync.Mutex/sync.RWMutex field`
	stray int
	//tinyleo:guardedby // want `missing its mutex name`
	orphan int

	free int // unannotated: never checked
}

func (c *Controller) good(seq uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending[seq] = 1
	c.seq++
	return c.pending[seq] + c.free
}

func (c *Controller) inlineUnlock() {
	c.mu.Lock()
	delete(c.pending, 1)
	c.mu.Unlock()
	c.seq++ // want `Controller.seq is guarded by mu and written`
}

func (c *Controller) reads() uint32 {
	return c.seq // want `Controller.seq is guarded by mu and read`
}

func (c *Controller) rlockModes() int {
	c.rmu.RLock()
	n := len(c.view)
	c.view = nil // want `written while holding only rmu.RLock`
	c.rmu.RUnlock()
	c.rmu.Lock()
	c.view = append(c.view, n)
	c.rmu.Unlock()
	return n
}

// sweepLocked follows the *Locked convention: entered with c.mu held.
func (c *Controller) sweepLocked() {
	c.seq++
	delete(c.pending, c.seq)
}

func (c *Controller) branches(ok bool) {
	c.mu.Lock()
	if ok {
		c.mu.Unlock()
		return
	}
	c.seq++ // still held on the fall-through path
	c.mu.Unlock()
}

func (c *Controller) closures() {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() {
		c.seq++ // want `Controller.seq is guarded by mu and written`
	}
	g := func() {
		c.mu.Lock()
		c.seq++
		c.mu.Unlock()
	}
	f()
	g()
}

func (c *Controller) suppressed() uint32 {
	//lint:tinyleo-ignore read-only snapshot for logging; torn reads acceptable
	return c.seq
}

// otherInstance accesses a different value's fields: out of scope for
// the receiver-rooted checker.
func (c *Controller) otherInstance(d *Controller) uint32 {
	return d.seq
}
