package guardedby_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guardedby"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "sb")
}
