// Package guardedby enforces the //tinyleo:guardedby field annotation:
// a struct field bound to a named sibling mutex may only be accessed
// while that mutex is held.
//
// Annotation grammar (doc or line comment on the field):
//
//	mu sync.Mutex
//	//tinyleo:guardedby mu
//	pending map[uint32]*pendingCmd
//
// The checker is flow-based within methods of the owning type: it walks
// each method body in statement order tracking Lock/RLock/Unlock/RUnlock
// calls and defer'd unlocks on the receiver's mutexes (see
// analysis.WalkHeld for the exact model), then requires every receiver
// field access to hold the guard — any mode for reads, write mode for
// writes (an RLock hold does not license a write). Methods named *Locked
// (or *RLocked) are assumed entered with the receiver's mutexes held,
// matching the repo's naming convention for helpers called under the
// lock. Function literals are separate scopes: a closure must take the
// lock itself, because nothing ties its execution to the enclosing
// critical section.
//
// Out of scope, deliberately: accesses through a variable other than the
// method receiver (a second instance's fields are that instance's locks'
// business), accesses outside methods of the owning type (constructors
// initialize fields before the value escapes), and lock aliasing through
// pointers. Accesses that are safe for reasons the checker cannot see
// (single-goroutine confinement, pre-publication setup) carry a
// //lint:tinyleo-ignore directive with the reason.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "flags //tinyleo:guardedby field accesses made without holding the named mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	gs := analysis.CollectGuards(pass)
	for _, d := range gs.Malformed {
		pass.Report(analysis.Diagnostic{Pos: d.Pos, Message: d.Message})
	}
	if len(gs.ByField) == 0 {
		return nil
	}
	for _, fn := range pass.FuncDecls() {
		recv := pass.ReceiverVar(fn)
		if recv == nil || fn.Body == nil {
			continue
		}
		writes := writePositions(fn)
		analysis.WalkHeld(pass, gs, fn, func(n ast.Node, held analysis.Held) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fv := pass.FieldOf(sel)
			if fv == nil {
				return
			}
			guard, ok := gs.ByField[fv]
			if !ok {
				return
			}
			base := baseObject(pass, sel.X)
			if base == nil || base != types.Object(recv) {
				return
			}
			mu := guard.Mutex
			write := writes[sel]
			mode := analysis.ModeRead
			if write {
				mode = analysis.ModeWrite
			}
			if held.Holds(base, mu.Var, mode) {
				return
			}
			verb := "read"
			if write {
				verb = "written"
			}
			if write && held.Holds(base, mu.Var, analysis.ModeRead) {
				pass.Reportf(sel.Sel.Pos(),
					"%s.%s is guarded by %s and %s while holding only %s.RLock(): "+
						"writes require %s.Lock()",
					mu.Struct, fv.Name(), mu.Name, verb, mu.Name, mu.Name)
				return
			}
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %s and %s in %s without holding %s: "+
					"lock %s.%s (or hold it via a *Locked helper)",
				mu.Struct, fv.Name(), mu.Name, verb, fn.Name.Name, mu.Name,
				recvName(fn), mu.Name)
		})
	}
	return nil
}

// baseObject resolves the root identifier of a selector base expression
// to its object (unwrapping parens and pointer derefs).
func baseObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e]
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// writePositions classifies which selector expressions in the function
// are written: assignment left-hand sides (including through index and
// dereference chains, so m[k] = v is a write of the map field), ++/--,
// delete's map argument, and address-taking (conservatively a write: the
// escaping pointer can be stored through).
func writePositions(fn *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		if sel := rootSelector(e); sel != nil {
			writes[sel] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				mark(st.Key)
				mark(st.Value)
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				mark(st.X)
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) == 2 {
				mark(st.Args[0])
			}
		}
		return true
	})
	return writes
}

// rootSelector unwraps an lvalue expression (index, slice, deref, paren
// chains) to the selector it is rooted at, nil when rooted elsewhere.
func rootSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// recvName returns the receiver identifier for diagnostics ("c" in
// func (c *Controller)).
func recvName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		return fn.Recv.List[0].Names[0].Name
	}
	return "recv"
}
