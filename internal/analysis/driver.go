package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// IgnoreDirective is the suppression escape hatch: a comment of the form
//
//	//lint:tinyleo-ignore <reason>
//
// on the flagged line, or alone on the line above it, silences every
// analyzer diagnostic anchored there. The reason is mandatory and should
// say why the contract does not apply (e.g. "wall-clock telemetry only,
// excluded from canonical output"); a reasonless directive is reported
// by the pseudo-analyzer "ignoredirective".
const IgnoreDirective = "lint:tinyleo-ignore"

// RunOptions tunes a driver Run.
type RunOptions struct {
	// ReportStaleIgnores adds an "ignoredirective" finding for every
	// suppression directive that suppressed zero diagnostics during the
	// run — a directive that earns its keep silences something; one that
	// does not is dead weight hiding future findings. Enable only when
	// the full analyzer suite runs: under an -analyzers subset a
	// directive aimed at an unselected analyzer would be called stale.
	ReportStaleIgnores bool
}

// Run executes every analyzer over every package and returns the
// surviving findings sorted by position. Suppressed diagnostics are
// dropped; malformed (reasonless) directives are themselves findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	return RunWithOptions(analyzers, pkgs, RunOptions{})
}

// RunWithOptions is Run with explicit driver options.
func RunWithOptions(analyzers []*Analyzer, pkgs []*Package, opts RunOptions) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ig.suppressed(pos.Filename, pos.Line) {
					return
				}
				findings = append(findings, Finding{
					Position: pos, Analyzer: a.Name, Message: d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		findings = append(findings, ig.malformed...)
		if opts.ReportStaleIgnores {
			findings = append(findings, ig.stale()...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// directive is one well-formed ignore directive and how often it fired.
type directive struct {
	position token.Position
	used     int
}

// ignores records, per file, the lines on which diagnostics are
// suppressed (pointing back to the suppressing directive so stale ones
// can be detected), plus findings for directives missing their reason.
type ignores struct {
	lines      map[string]map[int]*directive
	directives []*directive
	malformed  []Finding
}

func (ig *ignores) suppressed(file string, line int) bool {
	d := ig.lines[file][line]
	if d == nil {
		return false
	}
	d.used++
	return true
}

// stale returns a finding for every directive that suppressed nothing.
func (ig *ignores) stale() []Finding {
	var out []Finding
	for _, d := range ig.directives {
		if d.used == 0 {
			out = append(out, Finding{
				Position: d.position,
				Analyzer: "ignoredirective",
				Message:  "tinyleo-ignore directive suppressed no findings in this run; remove it (stale suppressions hide future findings)",
			})
		}
	}
	return out
}

// collectIgnores scans a package's comments for ignore directives. A
// directive suppresses its own line and the line below it, covering both
// the end-of-line form and the annotation-above-the-statement form.
func collectIgnores(pkg *Package) *ignores {
	ig := &ignores{lines: map[string]map[int]*directive{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, IgnoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				// A nested comment ("//lint:tinyleo-ignore // note") is
				// not a reason.
				reason, _, _ := strings.Cut(rest, "//")
				reason = strings.TrimSpace(reason)
				if reason == "" {
					ig.malformed = append(ig.malformed, Finding{
						Position: pos,
						Analyzer: "ignoredirective",
						Message:  "tinyleo-ignore directive is missing its mandatory reason",
					})
					continue
				}
				m := ig.lines[pos.Filename]
				if m == nil {
					m = map[int]*directive{}
					ig.lines[pos.Filename] = m
				}
				d := &directive{position: pos}
				ig.directives = append(ig.directives, d)
				m[pos.Line] = d
				m[pos.Line+1] = d
			}
		}
	}
	return ig
}

// Inspect walks every top-level declaration of every file in the pass,
// calling fn for each node; fn returning false prunes the subtree. A
// minimal stand-in for x/tools' inspect pass.
func Inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
