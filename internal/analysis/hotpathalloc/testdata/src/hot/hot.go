// Package hot is hotpathalloc analyzer testdata.
package hot

import (
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

type node struct {
	reg *obs.Registry
}

// process handles one packet.
//
//tinyleo:hotpath
func (n *node) process(reason string) {
	n.reg.Counter("drops", "reason", reason).Inc() // want `Registry.Counter lookup on hot path process`
	flightrec.Emit("dataplane", "drop")            // want `flightrec.Emit on hot path process`
	if n.reg.Enabled() {
		n.reg.Counter("drops", "reason", reason).Inc() // guarded: allowed
	}
	if flightrec.Enabled() {
		flightrec.Emit("dataplane", "drop") // guarded: allowed
	}
}

// trace opens a span per call: attributes allocate before any check.
//
//tinyleo:hotpath
func (n *node) trace() {
	span := obs.StartSpan("hot.trace") // want `obs.StartSpan on hot path trace`
	span.End()
}

// traceCtx continues a propagated context per message: same per-call
// attribute allocation, same rule — package-level and method form.
//
//tinyleo:hotpath
func (n *node) traceCtx(sc obs.SpanContext) {
	span := obs.StartSpanCtx(sc, "hot.apply") // want `obs.StartSpanCtx on hot path traceCtx`
	span.End()
	tr := obs.Trace()
	span = tr.StartSpanCtx(sc, "hot.apply") // want `Tracer.StartSpanCtx on hot path traceCtx`
	span.End()
	if tr.Enabled() {
		s := tr.StartSpanCtx(sc, "hot.apply") // guarded: allowed
		s.End()
		s = tr.StartSpan("hot.apply") // guarded: allowed
		s.End()
	}
}

// cold is not marked, so unguarded lookups are fine here.
func (n *node) cold(reason string) {
	n.reg.Counter("drops", "reason", reason).Inc()
}

// ignored demonstrates the suppression escape hatch.
//
//tinyleo:hotpath
func (n *node) ignored() {
	//lint:tinyleo-ignore boot-time counter resolved once despite the marker
	n.reg.Counter("boot").Inc()
}
