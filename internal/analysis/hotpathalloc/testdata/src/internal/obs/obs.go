// Package obs is a test stub mirroring the real telemetry registry's
// call surface for analyzer golden tests.
package obs

// Registry is the stub metrics registry.
type Registry struct{}

// Default returns the process-wide registry.
func Default() *Registry { return &Registry{} }

// Enabled reports whether the registry records.
func (r *Registry) Enabled() bool { return false }

// Counter returns a labeled counter.
func (r *Registry) Counter(name string, kvs ...string) *Counter { return &Counter{} }

// Gauge returns a labeled gauge.
func (r *Registry) Gauge(name string, kvs ...string) *Gauge { return &Gauge{} }

// Histogram returns a labeled histogram.
func (r *Registry) Histogram(name string, kvs ...string) *Histogram { return &Histogram{} }

// Counter is a stub counter.
type Counter struct{}

// Inc adds one.
func (c *Counter) Inc() {}

// Gauge is a stub gauge.
type Gauge struct{}

// Set sets the value.
func (g *Gauge) Set(v float64) {}

// Histogram is a stub histogram.
type Histogram struct{}

// Observe records v.
func (h *Histogram) Observe(v float64) {}

// Span is a stub trace span.
type Span struct{}

// SpanContext is a stub propagated trace identity.
type SpanContext struct{}

// StartSpan opens a span.
func StartSpan(name string, attrs ...string) *Span { return &Span{} }

// StartSpanCtx opens a span continuing a propagated context.
func StartSpanCtx(parent SpanContext, name string, attrs ...string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}

// Tracer is the stub span recorder.
type Tracer struct{}

// Trace returns the process-wide tracer.
func Trace() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records.
func (t *Tracer) Enabled() bool { return false }

// StartSpan opens a span on this tracer.
func (t *Tracer) StartSpan(name string, attrs ...string) *Span { return &Span{} }

// StartSpanCtx opens a span on this tracer continuing a propagated
// context.
func (t *Tracer) StartSpanCtx(parent SpanContext, name string, attrs ...string) *Span {
	return &Span{}
}
