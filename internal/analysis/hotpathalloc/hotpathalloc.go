// Package hotpathalloc polices telemetry cost on per-packet code.
//
// Functions marked with a "//tinyleo:hotpath" doc-comment line run per
// packet or per message. The obs instruments themselves no-op when a
// registry is disabled, but *looking one up* — Registry.Counter / Gauge /
// Histogram — takes the registry mutex and allocates the label-pair
// slice on every call, and flightrec.Emit and the span starts
// (obs.StartSpan / obs.StartSpanCtx, package-level or Tracer methods)
// allocate their variadic attributes at the call site before any enabled
// check runs.
// On a hot path that cost is paid per packet whether or not telemetry is
// on.
//
// The sanctioned idiom keeps the lookup behind the cheap atomic enabled
// check:
//
//	if flightrec.Enabled() {
//		flightrec.Emit(...)
//	}
//	if s.reg.Enabled() {
//		s.reg.Counter("tinyleo_x_total", "reason", r).Inc()
//	}
//
// The analyzer flags registry lookups, flightrec emissions, and span
// starts inside hotpath functions unless the call sits inside an if
// whose condition calls something named Enabled. Pre-resolved
// instruments (fields captured at construction time) cost nothing and
// are not flagged — resolving instruments up front is the preferred fix.
package hotpathalloc

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Marker is the doc-comment line that declares a function hot.
const Marker = "//tinyleo:hotpath"

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags unguarded telemetry lookups inside //tinyleo:hotpath functions",
	Run:  run,
}

// registryLookups allocate label pairs regardless of the enabled flag.
var registryLookups = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

// flightrecEmits serialize an event (or at least build its attributes).
var flightrecEmits = map[string]bool{
	"Emit": true, "RecordSlot": true,
}

// spanStarts allocate their variadic attribute slice at the call site
// before the tracer's disabled check runs — package-level obs.StartSpan /
// obs.StartSpanCtx and the Tracer methods of the same names.
var spanStarts = map[string]bool{
	"StartSpan": true, "StartSpanCtx": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				return true
			}
			scan(pass, fn.Body, false, func(call *ast.CallExpr, guarded bool) {
				if !guarded {
					checkCall(pass, fn, call)
				}
			})
			return true
		})
	}
	return nil
}

// isHotpath reports whether the function carries the hotpath marker.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == Marker {
			return true
		}
	}
	return false
}

// scan walks n tracking guardedness: entering the body of an if whose
// condition calls something named Enabled marks the subtree guarded.
// Else branches and init/cond expressions keep the enclosing state.
func scan(pass *analysis.Pass, n ast.Node, guarded bool, visit func(*ast.CallExpr, bool)) {
	if n == nil {
		return
	}
	if ifs, ok := n.(*ast.IfStmt); ok {
		scan(pass, ifs.Init, guarded, visit)
		scan(pass, ifs.Cond, guarded, visit)
		scan(pass, ifs.Body, guarded || condHasEnabled(ifs.Cond), visit)
		scan(pass, ifs.Else, guarded, visit)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if _, ok := m.(*ast.IfStmt); ok {
			scan(pass, m, guarded, visit)
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			visit(call, guarded)
		}
		return true
	})
}

// condHasEnabled reports whether the condition contains a call to a
// function or method named Enabled (flightrec.Enabled, reg.Enabled, …).
func condHasEnabled(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Enabled" {
				found = true
			}
		case *ast.Ident:
			if fun.Name == "Enabled" {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Package-level telemetry: flightrec.Emit/RecordSlot, obs.StartSpan.
	if pkg, name, ok := pass.CalleePkgFunc(call); ok {
		switch {
		case strings.HasSuffix(pkg, "internal/obs/flightrec") && flightrecEmits[name]:
			pass.Reportf(call.Pos(),
				"flightrec.%s on hot path %s without an Enabled() guard: "+
					"wrap in `if flightrec.Enabled() { ... }`",
				name, fn.Name.Name)
		case strings.HasSuffix(pkg, "internal/obs") && spanStarts[name]:
			pass.Reportf(call.Pos(),
				"obs.%s on hot path %s without an Enabled() guard: "+
					"span attributes allocate before the disabled check",
				name, fn.Name.Name)
		}
		return
	}
	// Method telemetry: Registry.Counter/Gauge/Histogram lookups and
	// Tracer.StartSpan/StartSpanCtx.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (!registryLookups[sel.Sel.Name] && !spanStarts[sel.Sel.Name]) {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Obj() == nil || selection.Obj().Pkg() == nil {
		return
	}
	if !strings.HasSuffix(selection.Obj().Pkg().Path(), "internal/obs") {
		return
	}
	if spanStarts[sel.Sel.Name] {
		pass.Reportf(call.Pos(),
			"Tracer.%s on hot path %s without an Enabled() guard: "+
				"span attributes allocate before the disabled check",
			sel.Sel.Name, fn.Name.Name)
		return
	}
	pass.Reportf(call.Pos(),
		"Registry.%s lookup on hot path %s without an Enabled() guard: "+
			"the lookup locks and allocates label pairs even when telemetry is off; "+
			"pre-resolve the instrument or guard with Enabled()",
		sel.Sel.Name, fn.Name.Name)
}
