package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hot")
}
