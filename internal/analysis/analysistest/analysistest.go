// Package analysistest runs an analyzer over golden testdata packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout: <testdata>/src/<path>/... holds ordinary Go packages, rooted
// at module path "repro" — so a package under src/internal/mpc has
// import path repro/internal/mpc, letting analyzers that key on package
// paths (walltime, globalrand, hotpathalloc) see realistic paths, and
// letting testdata provide stub repro/internal/obs packages for sink
// resolution.
//
// Expectations: a comment "// want \"re1\" \"re2\"" (standalone or at
// end of line) declares that the line produces one diagnostic matching
// each regexp. Every diagnostic must be wanted and every want matched.
// Ignore-directive suppression runs before matching, so a line carrying
// //lint:tinyleo-ignore <reason> needs no want — that IS the golden
// ignore-directive case.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestdataModule is the module path testdata packages are rooted at.
const TestdataModule = "repro"

// Run loads <testdata>/src, analyzes the packages named by patterns
// (module-relative, e.g. "internal/mpc"), and reports every mismatch
// between produced diagnostics and // want expectations on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{
		Dir:        filepath.Join(testdata, "src"),
		ModulePath: TestdataModule,
	})
	if err != nil {
		t.Fatalf("loading %s: %v", testdata, err)
	}
	var selected []*analysis.Package
	for _, pkg := range pkgs {
		if analysis.Match(pkg, TestdataModule, patterns) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		t.Fatalf("no testdata packages match %v (loaded %d)", patterns, len(pkgs))
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, selected)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, selected)
	for _, f := range findings {
		key := lineKey{f.Position.Filename, f.Position.Line}
		if !wants.match(key, f.Message) {
			t.Errorf("unexpected diagnostic:\n  %s", f)
		}
	}
	for key, ws := range wants.byLine {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	byLine map[lineKey][]*want
}

// match consumes the first unmatched want on the line whose regexp
// matches the message; false means the diagnostic was not expected.
func (ws *wantSet) match(key lineKey, message string) bool {
	for _, w := range ws.byLine[key] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses // want comments out of the selected packages.
func collectWants(t *testing.T, pkgs []*analysis.Package) *wantSet {
	t.Helper()
	ws := &wantSet{byLine: map[lineKey][]*want{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					spec, ok := wantSpec(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, lit := range splitQuoted(t, pos.Filename, pos.Line, spec) {
						re, err := regexp.Compile(lit)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
						}
						key := lineKey{pos.Filename, pos.Line}
						ws.byLine[key] = append(ws.byLine[key], &want{re: re})
					}
				}
			}
		}
	}
	return ws
}

// wantSpec extracts the quoted-regexp list from a comment that is, or
// ends with, a want expectation.
func wantSpec(comment string) (string, bool) {
	if rest, ok := strings.CutPrefix(comment, "// want "); ok {
		return rest, true
	}
	if i := strings.LastIndex(comment, " // want "); i >= 0 {
		return comment[i+len(" // want "):], true
	}
	return "", false
}

// splitQuoted parses a space-separated list of Go string literals.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: want list must hold quoted regexps, got %q", file, line, s)
		}
		end := strings.IndexByte(s[1:], quote)
		for quote == '"' && end >= 0 && s[end] == '\\' {
			next := strings.IndexByte(s[end+2:], quote)
			if next < 0 {
				end = -1
				break
			}
			end += next + 1
		}
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want regexp in %q", file, line, s)
		}
		lit := s[:end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %s: %v", file, line, lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: empty want list", file, line)
	}
	return out
}

// Fprint renders findings one per line (used by driver tests and the
// multichecker's own tests).
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f.String())
	}
	return b.String()
}
