package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a")
}
