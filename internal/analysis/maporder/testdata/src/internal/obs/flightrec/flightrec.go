// Package flightrec is a test stub mirroring the real flight recorder's
// call surface for analyzer golden tests.
package flightrec

// Emit records one event.
func Emit(args ...any) {}

// RecordSlot records one slot snapshot.
func RecordSlot(args ...any) {}

// Enabled reports whether recording is on.
func Enabled() bool { return false }
