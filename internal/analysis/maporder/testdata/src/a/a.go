// Package a is maporder analyzer testdata.
package a

import (
	"sort"

	"repro/internal/obs/flightrec"
)

type registry struct{}

func (r *registry) AddNode(id, cell int) {}

type sender struct{}

func (s *sender) Send(v int) {}

func unsortedAppend(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to "out" inside map range`
	}
	return out
}

func sortedAppend(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func perKeyBucket(m map[int][]int) map[int][]int {
	out := map[int][]int{}
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

func countOnly(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func emit(m map[int]int) {
	for k, v := range m {
		flightrec.Emit("comp", "ev", k, v) // want `flightrec.Emit called with map-iteration data`
	}
}

func sinkMethod(s *sender, m map[int]int) {
	for _, v := range m {
		s.Send(v) // want `s.Send called with map-iteration data`
	}
}

func mutate(r *registry, m map[int]int) {
	for id, cell := range m {
		r.AddNode(id, cell) // want `r.AddNode mutates state outside the map range`
	}
}

func ignored(m map[int]int) []int {
	var out []int
	for k := range m {
		//lint:tinyleo-ignore order is re-established by the caller
		out = append(out, k)
	}
	return out
}

func malformed(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) //lint:tinyleo-ignore // want `append to "out"` `missing its mandatory reason`
	}
	return out
}
