// Package maporder flags `for … range` over a map whose iteration
// result escapes into ordered output — the exact bug class behind PR 4's
// mpc.Repair nondeterminism, where map-order iteration over intent edges
// let the runtime's randomized order decide which edge won a scarce
// replacement satellite.
//
// Go randomizes map iteration order on purpose; any of the following
// inside a map-range body therefore makes output differ run-to-run on
// identical inputs:
//
//  1. append to a slice declared outside the loop, without a later
//     sort of that slice in the same function (per-key buckets like
//     out[k] = append(out[k], …) are exempt: key-indexed writes are
//     order-independent);
//  2. a serialization / emission sink (flightrec.Emit, Write, Encode,
//     fmt.Fprint*, Send, …) whose arguments derive from the iteration;
//  3. an ordered mutation of outer state (Add*/Set*/Push*/Insert*/
//     Register*/Enqueue*/Connect* methods on an object declared outside
//     the loop) with arguments derived from the iteration — first-wins
//     and last-wins registrations depend on encounter order.
//
// Fix by sorting: collect the keys, sort them, then iterate the sorted
// slice. Where order provably cannot matter, annotate the line with
// //lint:tinyleo-ignore <reason>.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration order escaping into appends, sinks, or ordered mutations",
	Run:  run,
}

// sinkFuncs are package-level emission functions: package path → names.
var sinkFuncs = map[string]map[string]bool{
	"repro/internal/obs/flightrec": {"Emit": true, "RecordSlot": true},
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true},
}

// sinkMethods are method names whose call serializes or transmits data
// in call order.
var sinkMethods = map[string]bool{
	"Emit": true, "Write": true, "WriteString": true, "WriteByte": true,
	"Encode": true, "Send": true, "Inject": true,
}

// mutationPrefixes mark methods that register state on an outer object;
// called from a map range with iteration-derived arguments, first-wins /
// last-wins behavior depends on encounter order.
var mutationPrefixes = []string{
	"Add", "Set", "Push", "Insert", "Register", "Enqueue", "Connect",
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapRange(pass, rng) || !hasNamedVar(rng) {
			return true
		}
		checkMapRange(pass, fn, rng)
		return true
	})
}

// isMapRange reports whether the range expression is a map.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// hasNamedVar reports whether the range binds a non-blank key or value:
// `for range m` bodies cannot observe iteration order.
func hasNamedVar(rng *ast.RangeStmt) bool {
	named := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name != "_"
	}
	return (rng.Key != nil && named(rng.Key)) || (rng.Value != nil && named(rng.Value))
}

func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	rangeLine := pass.Fset.Position(rng.Pos()).Line
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 1: append to an outer slice.
		if isBuiltinAppend(pass, call) && len(call.Args) > 0 {
			target := call.Args[0]
			root := rootIdent(target)
			if root == nil || !declaredOutside(pass, root, rng) {
				return true
			}
			if indexedByLoopVar(pass, target, rng) {
				return true // per-key bucket: order-independent
			}
			if sortedLater(pass, fn, rng, root) {
				return true
			}
			pass.Reportf(call.Pos(),
				"append to %q inside map range (line %d) without a later sort: "+
					"iteration order escapes into the slice; sort the keys first or sort %q afterwards",
				exprString(target), rangeLine, root.Name)
			return true
		}
		// Rules 2 and 3 need a callee and loop-derived arguments.
		if !argsDeriveFromLoop(pass, call, rng) {
			return true
		}
		if pkg, name, ok := pass.CalleePkgFunc(call); ok {
			if names, isSink := sinkFuncs[pkg]; isSink && names[name] {
				pass.Reportf(call.Pos(),
					"%s.%s called with map-iteration data (range at line %d): "+
						"emission order is nondeterministic; iterate sorted keys instead",
					pathBase(pkg), name, rangeLine)
			}
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := rootIdent(sel.X)
		if recv == nil || !declaredOutside(pass, recv, rng) {
			return true
		}
		name := sel.Sel.Name
		if sinkMethods[name] {
			pass.Reportf(call.Pos(),
				"%s.%s called with map-iteration data (range at line %d): "+
					"call order is nondeterministic; iterate sorted keys instead",
				recv.Name, name, rangeLine)
			return true
		}
		for _, prefix := range mutationPrefixes {
			if strings.HasPrefix(name, prefix) {
				pass.Reportf(call.Pos(),
					"%s.%s mutates state outside the map range (line %d) in iteration order: "+
						"first/last-wins registration is nondeterministic; iterate sorted keys instead",
					recv.Name, name, rangeLine)
				return true
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true // unresolved: assume the builtin
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// rootIdent peels selectors, indexes, parens, derefs, and call chains to
// the base identifier of an expression (nil when there is none, e.g. a
// composite literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier through either the use or def tables.
func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// declaredOutside reports whether id's object is declared outside the
// range statement (package-level, parameter, or an enclosing scope).
// Unresolvable identifiers count as outside (conservative: report).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := objectOf(pass, id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// loopObjects returns the objects bound by the range statement's key and
// value, when named.
func loopObjects(pass *analysis.Pass, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objectOf(pass, id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// derivesFromLoop reports whether the expression mentions the range's
// key/value variables or anything declared inside the range body (a
// cheap syntactic taint: locals computed from the iteration).
func derivesFromLoop(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	loopVars := loopObjects(pass, rng)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objectOf(pass, id)
		if obj == nil {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv {
				found = true
				return false
			}
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// argsDeriveFromLoop reports whether any call argument derives from the
// iteration.
func argsDeriveFromLoop(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	for _, arg := range call.Args {
		if derivesFromLoop(pass, arg, rng) {
			return true
		}
	}
	return false
}

// indexedByLoopVar reports whether the append target contains an index
// expression whose index derives from the loop — the per-key-bucket
// pattern out[k] = append(out[k], v), which iteration order cannot
// affect.
func indexedByLoopVar(pass *analysis.Pass, target ast.Expr, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(target, func(n ast.Node) bool {
		if idx, ok := n.(*ast.IndexExpr); ok && derivesFromLoop(pass, idx.Index, rng) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// sortedLater reports whether, after the range statement, the enclosing
// function sorts something rooted at the same object: a sort.* or
// slices.* call (or a .Sort() method) with an argument (or receiver)
// based on root.
func sortedLater(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, root *ast.Ident) bool {
	rootObj := objectOf(pass, root)
	sameRoot := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		if rootObj != nil {
			return objectOf(pass, id) == rootObj
		}
		return id.Name == root.Name
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if isSortCall(pass, call) {
			for _, arg := range call.Args {
				if sameRoot(arg) {
					found = true
					return false
				}
			}
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sort" && sameRoot(sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortCall recognizes sorting calls: the sort and slices packages, and
// local helpers whose name starts with "sort" (sortInt32, sortInts, …).
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if pkg, _, ok := pass.CalleePkgFunc(call); ok {
		return pkg == "sort" || pkg == "slices"
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return strings.HasPrefix(id.Name, "sort") || strings.HasPrefix(id.Name, "Sort")
	}
	return false
}

func exprString(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "slice"
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
