package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// loadModule lays files (path -> source) out under a temp dir and loads
// them as module "tmpmod".
func loadModule(t *testing.T, files map[string]string) []*analysis.Package {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir, ModulePath: "tmpmod"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkgs
}

// flagCalls reports every call to a function literally named "flagged" —
// a minimal analyzer for exercising the driver's suppression machinery.
var flagCalls = &analysis.Analyzer{
	Name: "flagcalls",
	Doc:  "reports every call to a function named flagged",
	Run: func(pass *analysis.Pass) error {
		analysis.Inspect(pass, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagged" {
					pass.Reportf(call.Pos(), "call to flagged")
				}
			}
			return true
		})
		return nil
	},
}

const staleSrc = `package p

func flagged() {}

func use() {
	flagged()
	flagged() //lint:tinyleo-ignore covered by the startup contract
	//lint:tinyleo-ignore nothing on the next line ever fires
	_ = 1
}
`

func TestRunReportsStaleIgnores(t *testing.T) {
	pkgs := loadModule(t, map[string]string{"p/p.go": staleSrc})
	findings, err := analysis.RunWithOptions(
		[]*analysis.Analyzer{flagCalls}, pkgs, analysis.RunOptions{ReportStaleIgnores: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (1 real, 1 stale directive), got %d:\n%s",
			len(findings), analysistest.Fprint(findings))
	}
	if f := findings[0]; f.Analyzer != "flagcalls" || f.Position.Line != 6 {
		t.Errorf("finding 0: want flagcalls at line 6, got %s", f)
	}
	if f := findings[1]; f.Analyzer != "ignoredirective" || f.Position.Line != 8 ||
		!strings.Contains(f.Message, "suppressed no findings") {
		t.Errorf("finding 1: want stale ignoredirective at line 8, got %s", f)
	}
}

func TestRunStaleIgnoresOffByDefault(t *testing.T) {
	pkgs := loadModule(t, map[string]string{"p/p.go": staleSrc})
	findings, err := analysis.Run([]*analysis.Analyzer{flagCalls}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "flagcalls" {
		t.Fatalf("want only the unsuppressed flagcalls finding, got:\n%s",
			analysistest.Fprint(findings))
	}
}

// resolveSrc exercises PkgNameOf/CalleePkgFunc edges: aliased imports,
// method calls and method values, calls through function variables, and
// a local variable shadowing a package name. Each call carries a unique
// string-literal argument used as its test key.
const resolveSrc = `package q

import (
	stdfmt "fmt"
	"strings"
)

type replacer struct{}

func (replacer) Replace(s string) string { return s }

func calls() {
	stdfmt.Println("aliased")
	var b strings.Builder
	b.WriteString("method call")
	f := b.WriteString
	f("method value")
	g := stdfmt.Println
	g("pkg func value")
	{
		strings := replacer{}
		strings.Replace("shadowed")
	}
	_ = strings.TrimSpace("still pkg")
}
`

func TestCalleePkgFuncEdges(t *testing.T) {
	pkgs := loadModule(t, map[string]string{"q/q.go": resolveSrc})
	var pkg *analysis.Package
	for _, p := range pkgs {
		if p.Path == "tmpmod/q" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("package tmpmod/q not loaded")
	}
	pass := &analysis.Pass{
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types,
		PkgPath: pkg.Path, TypesInfo: pkg.Info,
	}

	expect := map[string]struct {
		pkg, name string
		ok        bool
	}{
		"aliased":        {"fmt", "Println", true},
		"method call":    {"", "", false},
		"method value":   {"", "", false},
		"pkg func value": {"", "", false},
		"shadowed":       {"", "", false},
		"still pkg":      {"strings", "TrimSpace", true},
	}
	seen := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, ok := litArg(call)
			if !ok {
				return true
			}
			want, known := expect[key]
			if !known {
				return true
			}
			seen[key] = true
			pkgPath, name, resolved := pass.CalleePkgFunc(call)
			if pkgPath != want.pkg || name != want.name || resolved != want.ok {
				t.Errorf("%s: CalleePkgFunc = (%q, %q, %v), want (%q, %q, %v)",
					key, pkgPath, name, resolved, want.pkg, want.name, want.ok)
			}
			return true
		})
	}
	for key := range expect {
		if !seen[key] {
			t.Errorf("call keyed %q not found in testdata", key)
		}
	}
}

// litArg returns a call's single string-literal argument, unquoted.
func litArg(call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
