package globalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer, "...")
}
