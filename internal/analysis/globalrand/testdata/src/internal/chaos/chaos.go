// Package chaos is globalrand analyzer testdata standing in for the
// deterministic chaos engine.
package chaos

import "math/rand"

func draw() int {
	return rand.Intn(6) // want `rand.Intn draws from the global math/rand source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are allowed
	return r.Intn(6)                    // draws on an explicit source are allowed
}

func shuffle(xs []int) {
	//lint:tinyleo-ignore demonstration of the suppression escape hatch
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
