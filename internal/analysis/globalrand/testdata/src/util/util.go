// Package util is globalrand testdata outside the determinism contract:
// the global source is fine here.
package util

import "math/rand"

// Jitter draws from the global source.
func Jitter() int { return rand.Intn(10) }
