// Package globalrand flags draws from math/rand's global source inside
// deterministic packages.
//
// The global source is seeded per-process and shared across goroutines,
// so rand.Intn in a compile or chaos campaign makes results irreproducible
// and racy. Deterministic packages must draw from an explicit
// *rand.Rand constructed from a caller-supplied seed
// (rand.New(rand.NewSource(seed))) — constructors are therefore allowed;
// every package-level draw function is not.
package globalrand

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the globalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flags global math/rand source draws inside deterministic packages",
	Run:  run,
}

// constructors build explicit sources/generators and are the sanctioned
// route to randomness in deterministic code.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministicPkg(pass.PkgPath) {
		return nil
	}
	analysis.Inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.CalleePkgFunc(call)
		if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") || constructors[name] {
			return true
		}
		pass.Reportf(call.Pos(),
			"rand.%s draws from the global math/rand source in deterministic package %s: "+
				"use an explicit *rand.Rand built from a caller-supplied seed",
			name, pass.PkgPath)
		return true
	})
	return nil
}
