package analysis

import (
	"go/ast"
	"go/types"
)

// FuncDecls returns every function and method declaration in the pass's
// files, in file order. The concurrency analyzers iterate this instead of
// re-walking each file: their unit of analysis is the function body.
func (p *Pass) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, fn)
			}
		}
	}
	return out
}

// FuncObjOf resolves a function declaration to its type-checker object,
// keying the per-package call graph the lockorder and goroutinelife
// analyzers build. Returns nil for unresolvable declarations.
func (p *Pass) FuncObjOf(fn *ast.FuncDecl) *types.Func {
	if obj, ok := p.TypesInfo.Defs[fn.Name]; ok {
		if f, ok := obj.(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncIndex maps every function object of the package back to its
// declaration, so call sites resolved through TypesInfo (plain calls via
// Uses, method calls via Selections) can be followed into their bodies.
func (p *Pass) FuncIndex() map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, fn := range p.FuncDecls() {
		if obj := p.FuncObjOf(fn); obj != nil {
			idx[obj] = fn
		}
	}
	return idx
}

// ReceiverVar returns the declared receiver variable of a method (nil for
// plain functions and anonymous receivers). The guardedby analyzer only
// trusts field accesses rooted at this variable: an access through a
// second instance of the same type is a different lock's data.
func (p *Pass) ReceiverVar(fn *ast.FuncDecl) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	name := fn.Recv.List[0].Names[0]
	if obj, ok := p.TypesInfo.Defs[name]; ok {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

// CalleeDecl resolves a call expression to a function declared in this
// package: plain identifier calls through Uses, method calls through
// Selections. Returns nil for locals, builtins, and extra-package callees
// (whose bodies the per-package analyzers cannot see).
func (p *Pass) CalleeDecl(call *ast.CallExpr, idx map[*types.Func]*ast.FuncDecl) *ast.FuncDecl {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := p.TypesInfo.Uses[fun]; ok {
			if f, ok := obj.(*types.Func); ok {
				return idx[f]
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return idx[f]
			}
		}
		// pkg.Func calls resolve through Uses on the Sel, not Selections.
		if obj, ok := p.TypesInfo.Uses[fun.Sel]; ok {
			if f, ok := obj.(*types.Func); ok {
				return idx[f]
			}
		}
	}
	return nil
}

// FieldOf resolves a selector expression to the struct field it selects
// (nil when the selector is a method, a package member, or unresolved).
// This is the Selections-based receiver-field resolver the guardedby
// analyzer keys on: the returned *types.Var is the identity of the field
// across every access site in the package.
func (p *Pass) FieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok {
		return v
	}
	return nil
}
