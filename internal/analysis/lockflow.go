package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardMarker is the field annotation binding struct state to a mutex:
//
//	mu sync.Mutex
//	// pending is the seq→command table.
//	//tinyleo:guardedby mu
//	pending map[uint32]*pendingCmd
//
// The named guard must be a sibling sync.Mutex or sync.RWMutex field of
// the same struct. The guardedby analyzer then requires every access to
// the annotated field inside methods of the owning type to hold the
// guard: any lock mode for reads, write mode (Lock, not RLock) for
// writes.
const GuardMarker = "//tinyleo:guardedby"

// LockMode distinguishes how a mutex is held at a program point.
type LockMode int

// Lock modes, ordered so that higher covers lower: a write lock satisfies
// a read requirement.
const (
	// ModeRead is an RLock hold: shared, reads only.
	ModeRead LockMode = iota + 1
	// ModeWrite is a Lock hold: exclusive, reads and writes.
	ModeWrite
)

// String renders the mode as the method that establishes it.
func (m LockMode) String() string {
	if m == ModeRead {
		return "RLock"
	}
	return "Lock"
}

// MutexField describes one sync.Mutex / sync.RWMutex struct field found
// in the package.
type MutexField struct {
	// Var is the field's type-checker object (identity across the package).
	Var *types.Var
	// Struct is the declared name of the owning struct type.
	Struct string
	// Name is the field name.
	Name string
	// RW reports a sync.RWMutex (RLock/RUnlock available).
	RW bool
}

// Guard binds one annotated field to its mutex.
type Guard struct {
	// Field is the annotated field's object.
	Field *types.Var
	// Mutex is the sibling mutex field guarding it.
	Mutex *MutexField
}

// GuardSet is the package's parsed concurrency annotations: every mutex
// field, every //tinyleo:guardedby binding, and the malformed annotations
// (missing guard name, unknown sibling, guard that is not a mutex) for
// the guardedby analyzer to report.
type GuardSet struct {
	// Mutexes indexes every sync mutex field by its object.
	Mutexes map[*types.Var]*MutexField
	// ByField maps an annotated field's object to its guard.
	ByField map[*types.Var]*Guard
	// Malformed are annotation errors, ready to report.
	Malformed []Diagnostic
	// structMutexes lists each struct's mutex fields by struct type name,
	// for the *Locked-suffix entry-state convention.
	structMutexes map[string][]*MutexField
}

// CollectGuards parses every struct declaration in the pass for mutex
// fields and //tinyleo:guardedby annotations. Mutex-ness is decided from
// the field's type syntax (sync.Mutex / sync.RWMutex, optionally
// pointer): the loader stubs the sync package, so go/types cannot name
// the type, but the import alias resolves through PkgNameOf regardless.
func CollectGuards(pass *Pass) *GuardSet {
	gs := &GuardSet{
		Mutexes:       map[*types.Var]*MutexField{},
		ByField:       map[*types.Var]*Guard{},
		structMutexes: map[string][]*MutexField{},
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs.collectStruct(pass, ts.Name.Name, st)
			return true
		})
	}
	return gs
}

// collectStruct scans one struct's fields: first the mutexes, then the
// guardedby annotations that must name them.
func (gs *GuardSet) collectStruct(pass *Pass, structName string, st *ast.StructType) {
	byName := map[string]*MutexField{}
	for _, field := range st.Fields.List {
		rw, isMutex := mutexType(pass, field.Type)
		if !isMutex {
			continue
		}
		for _, name := range field.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			mf := &MutexField{Var: v, Struct: structName, Name: name.Name, RW: rw}
			gs.Mutexes[v] = mf
			byName[name.Name] = mf
			gs.structMutexes[structName] = append(gs.structMutexes[structName], mf)
		}
	}
	for _, field := range st.Fields.List {
		guardName, pos, ok := guardAnnotation(field)
		if !ok {
			continue
		}
		if guardName == "" {
			gs.Malformed = append(gs.Malformed, Diagnostic{Pos: pos,
				Message: "tinyleo:guardedby annotation is missing its mutex name"})
			continue
		}
		mf, ok := byName[guardName]
		if !ok {
			gs.Malformed = append(gs.Malformed, Diagnostic{Pos: pos,
				Message: "tinyleo:guardedby names " + guardName +
					", which is not a sync.Mutex/sync.RWMutex field of " + structName})
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				gs.ByField[v] = &Guard{Field: v, Mutex: mf}
			}
		}
	}
}

// StructMutexes returns the mutex fields of the named struct type (the
// *Locked-suffix convention assumes all of them held on entry).
func (gs *GuardSet) StructMutexes(structName string) []*MutexField {
	return gs.structMutexes[structName]
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment; ok is false when the field carries no annotation at all.
func guardAnnotation(field *ast.Field) (name string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(strings.TrimSpace(c.Text), GuardMarker)
			if !found {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //tinyleo:guardedbyX — a different marker
			}
			// The guard is the first token; anything after it (or after a
			// nested "//") is commentary.
			rest, _, _ = strings.Cut(rest, "//")
			if fields := strings.Fields(rest); len(fields) > 0 {
				return fields[0], c.Pos(), true
			}
			return "", c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// mutexType reports whether a field type is sync.Mutex or sync.RWMutex
// (directly or behind one pointer); rw distinguishes the RWMutex.
func mutexType(pass *Pass, expr ast.Expr) (rw, ok bool) {
	if star, isStar := expr.(*ast.StarExpr); isStar {
		expr = star.X
	}
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return false, false
	}
	base, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return false, false
	}
	if path, isPkg := pass.PkgNameOf(base); !isPkg || path != "sync" {
		return false, false
	}
	switch sel.Sel.Name {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// HeldKey identifies one held lock: the mutex field plus the object the
// receiver expression resolves to, so locking other.mu does not count as
// holding this.mu.
type HeldKey struct {
	// Base is the variable the mutex was selected from (receiver or
	// local), or nil when the lock call's base was not a plain identifier.
	Base types.Object
	// Mutex is the mutex field.
	Mutex *types.Var
}

// Held is the set of locks held at a program point.
type Held map[HeldKey]LockMode

// clone copies the held set for branch-local tracking.
func (h Held) clone() Held {
	out := make(Held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// Holds reports whether base's mutex is held at least in the given mode
// (a write hold satisfies a read requirement).
func (h Held) Holds(base types.Object, mu *types.Var, mode LockMode) bool {
	return h[HeldKey{base, mu}] >= mode
}

// Sorted returns the held keys ordered by mutex then base declaration
// position, so consumers that emit per-held-lock output stay
// deterministic.
func (h Held) Sorted() []HeldKey {
	keys := make([]HeldKey, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Mutex.Pos() != keys[j].Mutex.Pos() {
			return keys[i].Mutex.Pos() < keys[j].Mutex.Pos()
		}
		var pi, pj token.Pos
		if keys[i].Base != nil {
			pi = keys[i].Base.Pos()
		}
		if keys[j].Base != nil {
			pj = keys[j].Base.Pos()
		}
		return pi < pj
	})
	return keys
}

// LockOp is one resolved mutex method call (x.mu.Lock() and friends).
type LockOp struct {
	// Key identifies the mutex instance being operated on.
	Key HeldKey
	// Mutex is the mutex field (same as Key.Mutex, for convenience).
	Mutex *MutexField
	// Acquire is true for Lock/RLock, false for Unlock/RUnlock.
	Acquire bool
	// Mode is ModeRead for RLock/RUnlock, ModeWrite for Lock/Unlock.
	Mode LockMode
}

// LockOpOf resolves a call expression to a mutex operation against one of
// the package's known mutex fields. The inner selector (x.mu) resolves
// through Selections; the method name is matched syntactically because
// the stubbed sync package gives the mutex an unresolvable type.
func LockOpOf(pass *Pass, gs *GuardSet, call *ast.CallExpr) (LockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	var acquire bool
	var mode LockMode
	switch sel.Sel.Name {
	case "Lock":
		acquire, mode = true, ModeWrite
	case "RLock":
		acquire, mode = true, ModeRead
	case "Unlock":
		acquire, mode = false, ModeWrite
	case "RUnlock":
		acquire, mode = false, ModeRead
	default:
		return LockOp{}, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	fv := pass.FieldOf(inner)
	if fv == nil {
		return LockOp{}, false
	}
	mf, ok := gs.Mutexes[fv]
	if !ok {
		return LockOp{}, false
	}
	var base types.Object
	if id, ok := baseIdent(inner.X); ok {
		base = pass.TypesInfo.Uses[id]
	}
	return LockOp{Key: HeldKey{base, fv}, Mutex: mf, Acquire: acquire, Mode: mode}, true
}

// baseIdent unwraps parens and one pointer dereference to the identifier
// a selector chain is rooted at.
func baseIdent(expr ast.Expr) (*ast.Ident, bool) {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e, true
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, false
		}
	}
}

// LockedSuffix marks methods called with their receiver's locks already
// held (the repo-wide "…Locked" naming convention); RLockedSuffix is the
// read-mode variant.
const (
	LockedSuffix  = "Locked"
	RLockedSuffix = "RLocked"
)

// EntryHeld returns the lock set a function body starts with: empty for
// ordinary functions, every receiver mutex (write mode, or read mode for
// the RLocked suffix) for methods following the *Locked convention.
func EntryHeld(pass *Pass, gs *GuardSet, fn *ast.FuncDecl) Held {
	held := Held{}
	if fn.Recv == nil {
		return held
	}
	mode := LockMode(0)
	switch {
	case strings.HasSuffix(fn.Name.Name, RLockedSuffix):
		mode = ModeRead
	case strings.HasSuffix(fn.Name.Name, LockedSuffix):
		mode = ModeWrite
	default:
		return held
	}
	recv := pass.ReceiverVar(fn)
	if recv == nil {
		return held
	}
	for _, mf := range gs.StructMutexes(receiverTypeName(fn)) {
		held[HeldKey{recv, mf.Var}] = mode
	}
	return held
}

// receiverTypeName extracts the declared type name from a method receiver
// ("" when unresolvable).
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// WalkHeld walks a function body in statement order, tracking the set of
// locks held at each node and invoking visit for every expression node
// with that set. The tracking is deliberately simple and conservative —
// the flow model the concurrency analyzers share:
//
//   - x.mu.Lock()/RLock() as a statement adds the lock from the next
//     statement on; Unlock/RUnlock removes it.
//   - defer x.mu.Unlock() keeps the lock held to the end of the scope.
//   - Branch bodies (if/else, for, switch/select cases, nested blocks)
//     inherit the current set but their internal changes do not leak out:
//     a conditional Lock does not make later code "maybe locked", and an
//     early-return branch that unlocks does not clear the fall-through
//     path's hold.
//   - Function literals are separate scopes starting empty: a closure may
//     run on another goroutine, so it must take locks itself. Deferred
//     closures likewise.
//   - Methods named *Locked / *RLocked start with every receiver mutex
//     held (EntryHeld).
//
// visit also receives lock-op calls themselves (with the set held before
// the op takes effect), which is what the lockorder analyzer keys on.
func WalkHeld(pass *Pass, gs *GuardSet, fn *ast.FuncDecl, visit func(n ast.Node, held Held)) {
	if fn.Body == nil {
		return
	}
	w := &heldWalker{pass: pass, gs: gs, visit: visit}
	w.stmts(fn.Body.List, EntryHeld(pass, gs, fn))
}

type heldWalker struct {
	pass  *Pass
	gs    *GuardSet
	visit func(n ast.Node, held Held)
}

// stmts walks one statement list, threading the held set through it.
func (w *heldWalker) stmts(list []ast.Stmt, held Held) Held {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// stmt walks one statement and returns the held set after it.
func (w *heldWalker) stmt(s ast.Stmt, held Held) Held {
	switch st := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		w.expr(st.X, held)
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, ok := LockOpOf(w.pass, w.gs, call); ok {
				held = held.clone()
				if op.Acquire {
					held[op.Key] = op.Mode
				} else {
					delete(held, op.Key)
				}
			}
		}
		return held
	case *ast.DeferStmt:
		// A deferred unlock runs at return: the lock stays held for the
		// rest of this scope, so no state change. A deferred closure is a
		// fresh scope.
		w.expr(st.Call, held)
		return held
	case *ast.BlockStmt:
		w.stmts(st.List, held.clone())
		return held
	case *ast.IfStmt:
		inner := held
		if st.Init != nil {
			inner = w.stmt(st.Init, inner.clone())
		}
		w.expr(st.Cond, inner)
		w.stmts(st.Body.List, inner.clone())
		if st.Else != nil {
			w.stmt(st.Else, inner.clone())
		}
		return held
	case *ast.ForStmt:
		inner := held
		if st.Init != nil {
			inner = w.stmt(st.Init, inner.clone())
		}
		if st.Cond != nil {
			w.expr(st.Cond, inner)
		}
		body := w.stmts(st.Body.List, inner.clone())
		if st.Post != nil {
			w.stmt(st.Post, body)
		}
		return held
	case *ast.RangeStmt:
		if st.Key != nil {
			w.expr(st.Key, held)
		}
		if st.Value != nil {
			w.expr(st.Value, held)
		}
		w.expr(st.X, held)
		w.stmts(st.Body.List, held.clone())
		return held
	case *ast.SwitchStmt:
		inner := held
		if st.Init != nil {
			inner = w.stmt(st.Init, inner.clone())
		}
		if st.Tag != nil {
			w.expr(st.Tag, inner)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, inner)
				}
				w.stmts(cc.Body, inner.clone())
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		inner := held
		if st.Init != nil {
			inner = w.stmt(st.Init, inner.clone())
		}
		w.stmt(st.Assign, inner)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, inner.clone())
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					inner = w.stmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
		return held
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.GoStmt:
		w.expr(st.Call, held)
		return held
	default:
		// Assignments, returns, sends, inc/dec, declarations, branches:
		// no lock-state effect; visit every contained expression.
		ast.Inspect(s, func(n ast.Node) bool {
			if n == nil || n == s {
				return true
			}
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			if inner, ok := n.(ast.Stmt); ok { // e.g. a body hiding in a bad cast
				w.stmt(inner, held)
				return false
			}
			return true
		})
		return held
	}
}

// expr visits one expression subtree with the current held set, treating
// any function literal as a fresh scope.
func (w *heldWalker) expr(e ast.Expr, held Held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			w.visit(fl, held)
			w.stmts(fl.Body.List, Held{})
			return false
		}
		w.visit(n, held)
		return true
	})
}
