package analysis

import "strings"

// deterministicPkgs are the internal packages covered by the determinism
// contract: given identical inputs (snapshot, seed, config) they must
// produce byte-identical outputs, so wall clocks and ambient randomness
// are forbidden. The list mirrors ARCHITECTURE.md's "Determinism
// contract" section.
var deterministicPkgs = []string{
	"mpc", "orbit", "sparse", "stablematch", "chaos", "netem",
	"routing", "experiments",
}

// IsDeterministicPkg reports whether the import path names a package
// (or subpackage) bound by the determinism contract. Matching is on the
// "internal/<name>" path segment so it holds for the real module and for
// analyzer testdata alike.
func IsDeterministicPkg(path string) bool {
	for _, name := range deterministicPkgs {
		seg := "internal/" + name
		i := strings.Index(path, seg)
		if i < 0 {
			continue
		}
		if i > 0 && path[i-1] != '/' {
			continue
		}
		rest := path[i+len(seg):]
		if rest == "" || rest[0] == '/' {
			return true
		}
	}
	return false
}
