// Package lk exercises the lockorder analyzer: a direct AB/BA cycle, an
// indirect cycle through a helper call, and recursive re-acquisition.
package lk

import "sync"

// Engine holds two locks that are taken in both orders below.
type Engine struct {
	mu    sync.Mutex
	wmu   sync.Mutex
	state int
}

func (e *Engine) abPath() {
	e.mu.Lock()
	e.wmu.Lock() // want `lock-order cycle Engine.mu -> Engine.wmu -> Engine.mu`
	e.state++
	e.wmu.Unlock()
	e.mu.Unlock()
}

func (e *Engine) baPath() {
	e.wmu.Lock()
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	e.wmu.Unlock()
}

// Pair's cycle closes only through an intra-package call.
type Pair struct {
	a     sync.Mutex
	b     sync.Mutex
	count int
}

func (p *Pair) lockB() {
	p.b.Lock()
	p.count++
	p.b.Unlock()
}

func (p *Pair) aThenB() {
	p.a.Lock()
	p.lockB() // want `lock-order cycle Pair.a -> Pair.b -> Pair.a`
	p.a.Unlock()
}

func (p *Pair) bThenA() {
	p.b.Lock()
	p.a.Lock()
	p.count++
	p.a.Unlock()
	p.b.Unlock()
}

// Rec re-locks its own mutex: guaranteed self-deadlock.
type Rec struct {
	mu sync.Mutex
	n  int
}

func (r *Rec) double() {
	r.mu.Lock()
	r.mu.Lock() // want `recursive acquisition of Rec.mu`
	r.n++
	r.mu.Unlock()
	r.mu.Unlock()
}

// Ordered locks two instances of the same type; the type-level self-edge
// is suppressed here with the repo's ignore directive.
type Ordered struct {
	mu sync.Mutex
	v  int
}

func (o *Ordered) merge(other *Ordered) {
	o.mu.Lock()
	//lint:tinyleo-ignore instances are ordered by caller so AB/BA cannot interleave
	other.mu.Lock()
	o.v += other.v
	other.mu.Unlock()
	o.mu.Unlock()
}

// Solo takes its locks in one consistent order everywhere: no cycle.
type Solo struct {
	first  sync.Mutex
	second sync.Mutex
	n      int
}

func (s *Solo) one() {
	s.first.Lock()
	s.second.Lock()
	s.n++
	s.second.Unlock()
	s.first.Unlock()
}

func (s *Solo) two() {
	s.first.Lock()
	s.second.Lock()
	s.n--
	s.second.Unlock()
	s.first.Unlock()
}
