// Package lockorder detects potential deadlocks from inconsistent mutex
// acquisition order within a package.
//
// The analyzer builds the package's lock-acquisition graph: nodes are
// the sync.Mutex / sync.RWMutex struct fields declared in the package
// (annotation-free — every mutex field participates), and an edge A → B
// records a site that acquires B while A is held. "While held" comes
// from the same statement-flow model the guardedby analyzer uses
// (analysis.WalkHeld); acquisitions are either direct (x.b.Lock() under
// a.mu) or propagated through intra-package calls — each function's
// may-acquire summary is computed to a fixpoint over the package call
// graph, so `a.mu.Lock(); x.helper()` adds an edge for every mutex the
// helper (transitively) locks. Goroutine bodies are excluded from
// summaries: a `go` statement's acquisitions are not made synchronously
// by the caller.
//
// Reported findings:
//
//   - A cycle A → B → … → A means two call paths can interleave into a
//     deadlock; the finding lists every edge with its acquisition site.
//   - A direct re-acquisition (x.mu.Lock() while x.mu is held through
//     the same receiver) is a guaranteed self-deadlock: Go mutexes are
//     not reentrant.
//
// Lock identity is the field, not the instance: locking two different
// values of the same type in both orders is reported as a cycle, which
// is the correct call unless the code orders instances some other way
// (annotate such sites with //lint:tinyleo-ignore and the ordering
// argument).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "builds the package lock-acquisition graph and flags cycles (potential deadlocks)",
	Run:  run,
}

// edge is one observed "B acquired while A held" site.
type edge struct {
	from, to *analysis.MutexField
	pos      token.Pos
	// via names the called function when the acquisition is indirect.
	via string
}

func run(pass *analysis.Pass) error {
	gs := analysis.CollectGuards(pass)
	if len(gs.Mutexes) == 0 {
		return nil
	}
	idx := pass.FuncIndex()
	summaries := acquireSummaries(pass, gs, idx)

	var edges []edge
	for _, fn := range pass.FuncDecls() {
		analysis.WalkHeld(pass, gs, fn, func(n ast.Node, held analysis.Held) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(held) == 0 {
				return
			}
			if op, ok := analysis.LockOpOf(pass, gs, call); ok {
				if !op.Acquire {
					return
				}
				for _, key := range held.Sorted() {
					from := gs.Mutexes[key.Mutex]
					if from == nil {
						continue
					}
					if key.Mutex == op.Key.Mutex {
						if key.Base != nil && key.Base == op.Key.Base {
							pass.Reportf(call.Pos(),
								"recursive acquisition of %s.%s: already held here, and Go mutexes are not reentrant",
								op.Mutex.Struct, op.Mutex.Name)
						} else {
							edges = append(edges, edge{from: from, to: op.Mutex, pos: call.Pos()})
						}
						continue
					}
					edges = append(edges, edge{from: from, to: op.Mutex, pos: call.Pos()})
				}
				return
			}
			callee := pass.CalleeDecl(call, idx)
			if callee == nil {
				return
			}
			acq := summaries[callee]
			if len(acq) == 0 {
				return
			}
			for _, mv := range sortedVars(acq) {
				to := gs.Mutexes[mv]
				if to == nil {
					continue
				}
				for _, key := range held.Sorted() {
					from := gs.Mutexes[key.Mutex]
					if from == nil {
						continue
					}
					edges = append(edges, edge{from: from, to: to, pos: call.Pos(), via: callee.Name.Name})
				}
			}
		})
	}
	reportCycles(pass, edges)
	return nil
}

// acquireSummaries computes, for every function in the package, the set
// of mutex fields it may acquire — directly or through intra-package
// calls — iterated to a fixpoint. Acquisitions inside `go` statements
// are excluded (they happen on another goroutine).
func acquireSummaries(pass *analysis.Pass, gs *analysis.GuardSet,
	idx map[*types.Func]*ast.FuncDecl) map[*ast.FuncDecl]map[*types.Var]bool {

	decls := pass.FuncDecls()
	acquires := make(map[*ast.FuncDecl]map[*types.Var]bool, len(decls))
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl, len(decls))
	for _, fn := range decls {
		if fn.Body == nil {
			continue
		}
		set := map[*types.Var]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := analysis.LockOpOf(pass, gs, call); ok && op.Acquire {
				set[op.Key.Mutex] = true
				return true
			}
			if callee := pass.CalleeDecl(call, idx); callee != nil {
				callees[fn] = append(callees[fn], callee)
			}
			return true
		})
		acquires[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range decls {
			set := acquires[fn]
			for _, callee := range callees[fn] {
				for mv := range acquires[callee] {
					if !set[mv] {
						set[mv] = true
						changed = true
					}
				}
			}
		}
	}
	return acquires
}

// reportCycles condenses the edge list into a graph, finds its cycles,
// and reports each once, deterministically anchored at the smallest
// acquisition position in the cycle.
func reportCycles(pass *analysis.Pass, edges []edge) {
	// One representative edge per (from, to) pair: the lexically first.
	rep := map[pairKey]edge{}
	adj := map[*analysis.MutexField][]*analysis.MutexField{}
	for _, e := range edges {
		p := pairKey{e.from, e.to}
		if old, ok := rep[p]; !ok || e.pos < old.pos {
			if !ok {
				adj[e.from] = append(adj[e.from], e.to)
			}
			rep[p] = e
		}
	}
	nodes := make([]*analysis.MutexField, 0, len(adj))
	seen := map[*analysis.MutexField]bool{}
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		sort.Slice(tos, func(i, j int) bool { return name(tos[i]) < name(tos[j]) })
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return name(nodes[i]) < name(nodes[j]) })

	// DFS from each node in name order; a back edge to a node on the
	// current stack closes a cycle. Each cycle is reported once, keyed by
	// its canonical node set.
	reported := map[string]bool{}
	var stack []*analysis.MutexField
	onStack := map[*analysis.MutexField]int{}
	var dfs func(n *analysis.MutexField)
	dfs = func(n *analysis.MutexField) {
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, to := range adj[n] {
			if i, ok := onStack[to]; ok {
				cycle := append([]*analysis.MutexField{}, stack[i:]...)
				reportCycle(pass, rep, cycle, reported)
				continue
			}
			dfs(to)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
}

// reportCycle emits one finding for a cycle unless an equivalent one
// (same node set) was already reported.
func reportCycle(pass *analysis.Pass, rep map[pairKey]edge, cycle []*analysis.MutexField, reported map[string]bool) {
	names := make([]string, len(cycle))
	for i, n := range cycle {
		names[i] = name(n)
	}
	sorted := append([]string{}, names...)
	sort.Strings(sorted)
	key := strings.Join(sorted, ",")
	if reported[key] {
		return
	}
	reported[key] = true

	var sites []string
	minPos := token.Pos(0)
	for i, n := range cycle {
		next := cycle[(i+1)%len(cycle)]
		e := rep[pairKey{n, next}]
		if minPos == 0 || e.pos < minPos {
			minPos = e.pos
		}
		site := pass.Fset.Position(e.pos)
		desc := fmt.Sprintf("%s locked at %s:%d while holding %s",
			name(next), shortFile(site.Filename), site.Line, name(n))
		if e.via != "" {
			desc += " (via " + e.via + ")"
		}
		sites = append(sites, desc)
	}
	pass.Reportf(minPos, "lock-order cycle %s -> %s: %s",
		strings.Join(names, " -> "), names[0], strings.Join(sites, "; "))
}

// pairKey mirrors reportCycles' pair type for reportCycle's lookups.
type pairKey struct{ from, to *analysis.MutexField }

func name(m *analysis.MutexField) string { return m.Struct + "." + m.Name }

// sortedVars orders a may-acquire set by declaration position for
// deterministic edge emission.
func sortedVars(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// shortFile trims the path to its base for compact cycle descriptions.
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
