// Package mpc is walltime analyzer testdata standing in for the
// deterministic controller package.
package mpc

import "time"

func compile() float64 {
	start := time.Now() // want `time.Now in deterministic package`
	_ = start
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic package`
	d := 3 * time.Second         // pure arithmetic on explicit durations: allowed
	return d.Seconds()
}

func telemetry() time.Duration {
	//lint:tinyleo-ignore wall latency telemetry only, never part of outputs
	start := time.Now()
	//lint:tinyleo-ignore wall latency telemetry only, never part of outputs
	return time.Since(start)
}
