// Package clock is walltime testdata outside the determinism contract:
// wall-clock reads here are fine.
package clock

import "time"

// Stamp reads the wall clock.
func Stamp() time.Time { return time.Now() }
