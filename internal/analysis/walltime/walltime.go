// Package walltime flags wall-clock reads inside deterministic packages.
//
// The control plane's guarantee — same snapshot, same seed, same output —
// dies the moment a compile or campaign consults the machine clock:
// time.Now threads the host's scheduling jitter into results, and
// time.Sleep makes outcomes load-dependent. Deterministic packages must
// take times as inputs (slot numbers, configured durations) and leave
// measurement to the caller.
//
// Telemetry that genuinely wants wall time (e.g. recording how long a
// compile took, without the duration feeding back into outputs) is
// annotated //lint:tinyleo-ignore with a reason saying so.
package walltime

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/Since/Sleep and friends inside deterministic packages",
	Run:  run,
}

// clockFuncs are the time package's ambient-clock entry points. Pure
// constructors (time.Duration arithmetic, time.Unix, time.Date) are fine:
// they compute from explicit inputs.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministicPkg(pass.PkgPath) {
		return nil
	}
	analysis.Inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.CalleePkgFunc(call)
		if !ok || pkg != "time" || !clockFuncs[name] {
			return true
		}
		pass.Reportf(call.Pos(),
			"time.%s in deterministic package %s: outputs must be a pure function "+
				"of inputs; take times as parameters or move the measurement to the caller",
			name, pass.PkgPath)
		return true
	})
	return nil
}
