package chaos

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/tracemerge"
)

// A traced campaign is reproducible end to end: same seed + scenario →
// byte-identical canonical merged trace, even though agent goroutines
// record spans concurrently. The canonical form renumbers span IDs in
// sorted order precisely because raw ID allocation order is racy; the
// underlying timestamps/attrs come from the virtual clock and the seeded
// command stream, so they are pure functions of the campaign.
func TestCampaignTraceDeterministic(t *testing.T) {
	runOnce := func() string {
		tr := &obs.Tracer{}
		c := testCampaign(detScenario, 42)
		c.Tracer = tr
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		var jsonl bytes.Buffer
		if err := tr.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		d, err := tracemerge.ReadJSONL(&jsonl)
		if err != nil {
			t.Fatal(err)
		}
		var canon bytes.Buffer
		if err := tracemerge.Merge(d).WriteCanonical(&canon); err != nil {
			t.Fatal(err)
		}
		return canon.String()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same campaign produced different canonical traces:\n--- run 0 ---\n%s\n--- run 1 ---\n%s", a, b)
	}
	// The trace actually covers the southbound: emit roots, sends, applies,
	// acks, and (detScenario wedges an agent) at least one retransmit.
	for _, want := range []string{"mpc.emit", "sb.send", "agent.apply", "sb.ack", "sb.retransmit"} {
		if !strings.Contains(a, want) {
			t.Errorf("canonical trace has no %s span:\n%s", want, a)
		}
	}
	// Every apply hangs off a send: no orphaned cross-boundary spans.
	for _, line := range strings.Split(a, "\n") {
		if strings.Contains(line, "agent.apply") && strings.Contains(line, "parent=-") {
			t.Errorf("agent.apply without a causal parent: %s", line)
		}
	}
}
