package chaos

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataplane"
)

// networkFingerprint renders the structural state of an emulated network
// — home cells, ring successors, and ISL peers per satellite — in a
// canonical order.
func networkFingerprint(n *dataplane.Network) string {
	ids := make([]int, 0, len(n.Sats))
	for id := range n.Sats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		s := n.Sats[id]
		fmt.Fprintf(&b, "sat %d cell %d ring %d peers %v\n", id, s.Cell, s.RingNext, s.Peers())
	}
	return b.String()
}

// Regression for testbed construction depending on map iteration order:
// buildNetwork used to assign each gateway satellite's home cell from
// whichever snapshot.Gateways key came up first, so two testbeds built
// from the same config could disagree on homes — and with them ring
// membership and the whole emulated topology.
func TestTestbedBuildIsDeterministic(t *testing.T) {
	build := func() string {
		tb, err := NewTestbed(testTestbed)
		if err != nil {
			t.Fatal(err)
		}
		return networkFingerprint(tb.Net)
	}
	first := build()
	for run := 1; run < 3; run++ {
		if got := build(); got != first {
			t.Fatalf("run %d built a different network:\n--- first\n%s--- run %d\n%s", run, first, run, got)
		}
	}
}
