package chaos

import (
	"bytes"
	"testing"
)

// testTestbed is sized for test speed: big enough for a multi-cell intent
// region with redundant gateways, small enough to compile in well under a
// second.
var testTestbed = TestbedConfig{Sats: 144, Slots: 4}

func testCampaign(s Scenario, seed int64) Campaign {
	return Campaign{
		Scenario:         s,
		Seed:             seed,
		Testbed:          testTestbed,
		Flows:            3,
		PacketsPerWindow: 8,
		WindowSec:        1,
	}
}

// detScenario exercises every fault path that matters for determinism:
// topology failure, southbound connection loss, a wedged agent (the
// retransmit → abandon → unreachable pipeline), and a demand surge.
var detScenario = Scenario{
	Name:        "det",
	Rounds:      3,
	Faults:      []FaultKind{FaultISLDown, FaultConnDrop, FaultBlackhole, FaultDemandSurge},
	SurgeFactor: 4,
}

func TestCampaignDeterministic(t *testing.T) {
	var canon [][]byte
	for i := 0; i < 2; i++ {
		rep, err := Run(testCampaign(detScenario, 42))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonical json: %v", err)
		}
		canon = append(canon, b)
	}
	if !bytes.Equal(canon[0], canon[1]) {
		t.Fatalf("same seed produced different canonical reports:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
			canon[0], canon[1])
	}
}

// Delta enforcement changes only the wire framing (batched slot-delta
// messages instead of per-link SetISL), so a delta campaign must stay
// byte-deterministic and land the same topology-driven outcomes as the
// SetISL campaign for the same seed.
func TestCampaignDeltaDeterministic(t *testing.T) {
	delta := testCampaign(detScenario, 42)
	delta.Delta = true
	var canon [][]byte
	var reps []*Report
	for i := 0; i < 2; i++ {
		rep, err := Run(delta)
		if err != nil {
			t.Fatalf("delta run %d: %v", i, err)
		}
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonical json: %v", err)
		}
		canon = append(canon, b)
		reps = append(reps, rep)
	}
	if !bytes.Equal(canon[0], canon[1]) {
		t.Fatalf("same seed produced different delta reports:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
			canon[0], canon[1])
	}
	plain, err := Run(testCampaign(detScenario, 42))
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].DeliveryRatio != plain.DeliveryRatio || reps[0].Unrecovered != plain.Unrecovered {
		t.Fatalf("delta campaign diverged from SetISL campaign: delivery %.3f vs %.3f, unrecovered %d vs %d",
			reps[0].DeliveryRatio, plain.DeliveryRatio, reps[0].Unrecovered, plain.Unrecovered)
	}
	sent := func(r *Report) int {
		n := 0
		for _, rr := range r.Rounds {
			n += rr.CommandsSent
		}
		return n
	}
	if ds, ps := sent(reps[0]), sent(plain); ps > 0 && ds >= ps {
		t.Fatalf("delta campaign sent %d messages, SetISL %d — batching should send fewer",
			ds, ps)
	}
}

func TestBaselineScenarioHealthy(t *testing.T) {
	s, err := ScenarioByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(testCampaign(s, 7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsSent == 0 {
		t.Fatal("baseline campaign sent no packets")
	}
	if rep.DeliveryRatio < 0.95 {
		t.Fatalf("baseline delivery ratio %.3f, want >= 0.95", rep.DeliveryRatio)
	}
	if rep.EnforcementRatio != 1 {
		t.Fatalf("baseline enforcement ratio %.3f, want 1.0 (no faults, no commands)", rep.EnforcementRatio)
	}
	if len(rep.SLO) == 0 {
		t.Fatal("campaign not scored against any SLO rule")
	}
	if rep.SLOBreached != 0 {
		t.Fatalf("baseline campaign breached %d SLOs: %+v", rep.SLOBreached, rep.SLO)
	}
	if rep.AckTimeouts != 0 || rep.Retransmits != 0 {
		t.Fatalf("baseline campaign saw ack timeouts %d / retransmits %d, want none",
			rep.AckTimeouts, rep.Retransmits)
	}
}

func TestISLStormRecoversAndRepairs(t *testing.T) {
	s, err := ScenarioByName("isl-storm")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(testCampaign(s, 11))
	if err != nil {
		t.Fatal(err)
	}
	faulted := 0
	for _, rr := range rep.Rounds {
		faulted += len(rr.Faults)
	}
	if faulted == 0 {
		t.Fatal("isl-storm campaign injected no faults")
	}
	recoveries := 0
	for _, rr := range rep.Rounds {
		recoveries += len(rr.RecoveryMs)
	}
	if recoveries == 0 && rep.Unrecovered == 0 {
		t.Fatal("no recovery measurements on a faulted campaign")
	}
	if rep.DeliveryRatio <= 0 {
		t.Fatal("no packets delivered under isl-storm")
	}
	// Hard link failures must drive the repair loop southbound.
	cmds := 0
	for _, rr := range rep.Rounds {
		cmds += rr.CommandsSent
	}
	if cmds == 0 {
		t.Fatal("isl-storm campaign pushed no southbound commands")
	}
}

func TestBlackholeMarksUnreachableAndRetransmits(t *testing.T) {
	s := Scenario{
		Name:   "wedge",
		Rounds: 2,
		// ISL failure makes the MPC produce commands; the blackhole wedges
		// an agent so some of them must be retransmitted and abandoned.
		Faults: []FaultKind{FaultISLDown, FaultISLDown, FaultBlackhole},
	}
	rep, err := Run(testCampaign(s, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The blackhole targets the addressed endpoint of a failed link, so the
	// repair command toward it must go through the full retransmit →
	// ack-timeout → unreachable pipeline.
	abandoned := 0
	for _, rr := range rep.Rounds {
		abandoned += rr.CommandsAbandoned
	}
	if abandoned == 0 {
		t.Fatal("wedged agent never had a command abandoned")
	}
	if rep.Retransmits == 0 {
		t.Fatal("commands abandoned without any retransmission attempts")
	}
	if rep.AckTimeouts == 0 {
		t.Fatal("commands abandoned but ack-timeout counter is zero")
	}
	found := false
	for _, ev := range rep.Events {
		if ev.Type == "unreachable" {
			found = true
		}
	}
	if !found {
		t.Fatal("abandoned commands but no unreachable event logged")
	}
	if rep.EnforcementRatio <= 0 {
		t.Fatal("enforcement ratio collapsed to zero")
	}
}

func TestConnDropReconnects(t *testing.T) {
	s := Scenario{Name: "flap", Rounds: 2, Faults: []FaultKind{FaultConnDrop}}
	rep, err := Run(testCampaign(s, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reconnects < 2 {
		t.Fatalf("expected >= 2 agent reconnections (one per round), got %d", rep.Reconnects)
	}
	if rep.AckTimeouts != 0 {
		t.Fatalf("conn drops with empty pending tables should not abandon commands, got %d", rep.AckTimeouts)
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no built-in scenarios")
	}
	all := Scenarios()
	if len(all) != len(names) {
		t.Fatalf("ScenarioNames lists %d scenarios, Scenarios holds %d", len(names), len(all))
	}
	for _, n := range names {
		s, err := ScenarioByName(n)
		if err != nil {
			t.Fatalf("built-in scenario %q: %v", n, err)
		}
		if s.Rounds <= 0 {
			t.Fatalf("scenario %q has %d rounds", n, s.Rounds)
		}
	}
	if _, err := ScenarioByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario resolved without error")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(vals, 50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(vals, 99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v, want 0", got)
	}
	if got := percentile([]float64{3}, 99); got != 3 {
		t.Fatalf("p99 of singleton = %v, want 3", got)
	}
}
