package chaos

import (
	"sync"
	"time"
)

// VClock is the campaign's virtual wall clock for the southbound
// reliability layer: the engine injects VClock.Now as the controller's
// Clock and advances it explicitly, so retransmission and ack-timeout
// behaviour is a pure function of the campaign script rather than of
// real scheduling latency.
type VClock struct {
	mu sync.Mutex
	//tinyleo:guardedby mu
	t time.Time
}

// NewVClock starts a virtual clock at a fixed epoch.
func NewVClock() *VClock {
	return &VClock{t: time.Unix(1_700_000_000, 0)}
}

// Now returns the current virtual time (inject as Controller.Clock).
func (v *VClock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

// Advance moves the clock forward by d.
func (v *VClock) Advance(d time.Duration) {
	v.mu.Lock()
	v.t = v.t.Add(d)
	v.mu.Unlock()
}
