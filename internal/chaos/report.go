package chaos

import (
	"encoding/json"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// RoundReport is one fault→measure→repair→measure cycle's accounting.
// Every field is a logical or sim-time quantity (no wall clock).
type RoundReport struct {
	Round  int      `json:"round"`
	Faults []string `json:"faults,omitempty"` // "kind target" descriptions

	PacketsSent      int `json:"packets_sent"`
	PacketsDelivered int `json:"packets_delivered"`
	PacketsDropped   int `json:"packets_dropped"`

	CommandsSent      int `json:"commands_sent"` // tracked enforcement commands
	CommandsAcked     int `json:"commands_acked"`
	CommandsUnknown   int `json:"commands_unknown"`   // target agent gone (crash)
	CommandsAbandoned int `json:"commands_abandoned"` // ack timeout → unreachable

	LinksAdded   int `json:"links_added"`
	LinksRemoved int `json:"links_removed"`
	Unrepaired   int `json:"unrepaired"`

	// RecoveryMs is the per-flow recovery time for this round's faults
	// (sim ms from fault injection to first post-fault delivery), sorted;
	// Unrecovered counts flows with no delivery by round end.
	RecoveryMs  []float64 `json:"recovery_ms,omitempty"`
	Unrecovered int       `json:"unrecovered"`
}

// FleetSummary is the campaign's final constellation health view,
// derived from the fleet telemetry plane (internal/obs/fleet): every
// agent pushes delta-encoded registry reports over the southbound
// session, and a virtual-clock aggregator merges them. All fields are
// functions of (seed, scenario), so the summary is part of
// CanonicalJSON.
type FleetSummary struct {
	// Agents counts agents that reported at least once (an agent crashed
	// before its first round-end flush never appears).
	Agents int `json:"agents"`
	// Reports / Bytes / Gaps are fleet-wide report accounting sums.
	Reports uint64 `json:"reports"`
	Bytes   uint64 `json:"bytes"`
	Gaps    uint64 `json:"gaps"`
	// States counts agents per health state at campaign end.
	States map[string]int `json:"states"`
	// Silent lists the agent IDs silent at campaign end, ascending.
	Silent []int `json:"silent,omitempty"`
	// DecodeErrors counts reports dropped as malformed (always 0 for a
	// healthy wire implementation).
	DecodeErrors int64 `json:"decode_errors"`
	// AppliedTotal is the fleet-wide MetricAgentApplied sum read from the
	// agents' own registries — the ground truth the telemetry rollup is
	// compared against.
	AppliedTotal int64 `json:"applied_total"`
	// Totals are the rollup registry's fleet-wide aggregates (agent label
	// stripped), sorted by series identity.
	Totals []obs.Sample `json:"totals"`
}

// Report is a campaign's full outcome. CanonicalJSON excludes the
// wall-clock section, so two runs with the same seed produce identical
// canonical bytes.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Rounds   []RoundReport
	Events   []Event `json:"events"`

	// Aggregates.
	PacketsSent      int     `json:"packets_sent"`
	PacketsDelivered int     `json:"packets_delivered"`
	PacketsDropped   int     `json:"packets_dropped"`
	DeliveryRatio    float64 `json:"delivery_ratio"`
	EnforcementRatio float64 `json:"enforcement_ratio"`

	RecoveryMsP50 float64 `json:"recovery_ms_p50"`
	RecoveryMsP99 float64 `json:"recovery_ms_p99"`
	RecoveryMsMax float64 `json:"recovery_ms_max"`
	Unrecovered   int     `json:"unrecovered"`

	Retransmits int64 `json:"retransmits"`
	AckTimeouts int64 `json:"ack_timeouts"`
	Reconnects  int64 `json:"reconnects"`

	// Channel-level loss accounting (the netem counters the bugfixes
	// separated: queue/down drops vs in-flight loss vs stochastic storms).
	LinkDrops        int64 `json:"link_drops"`
	LostInFlight     int64 `json:"lost_in_flight"`
	ImpairmentLosses int64 `json:"impairment_losses"`

	// Fleet is the constellation health view aggregated from the fleet
	// telemetry plane at campaign end.
	Fleet *FleetSummary `json:"fleet,omitempty"`

	// SLO is the flight-recorder rule evaluation over the campaign's
	// private registry (EvalUS zeroed for reproducibility).
	SLO         []flightrec.RuleStatus `json:"slo"`
	SLOBreached int                    `json:"slo_breached"`

	// Wall-clock measurements: excluded from CanonicalJSON.
	WallRepairMs  []float64 `json:"wall_repair_ms,omitempty"`
	WallElapsedMs float64   `json:"wall_elapsed_ms,omitempty"`
}

// CanonicalJSON renders the deterministic portion of the report: same
// seed and scenario → byte-identical output.
func (r *Report) CanonicalJSON() ([]byte, error) {
	shadow := *r
	shadow.WallRepairMs = nil
	shadow.WallElapsedMs = 0
	return json.MarshalIndent(&shadow, "", "  ")
}

// percentile returns the nearest-rank percentile of sorted (ascending)
// values, or 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// score evaluates the scenario's SLO spec with the flight recorder's
// engine over a private registry fed only engine-computed campaign
// values, so the verdicts are deterministic for a given seed.
func (r *Report) score(spec string) error {
	if spec == "" {
		spec = DefaultSLO
	}
	rules, err := flightrec.ParseRules(spec)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry(true)
	// The built-in SLO kinds read the standard series names; feed them the
	// campaign aggregates.
	reg.Gauge("tinyleo_mpc_enforcement_ratio").Set(r.EnforcementRatio)
	reg.Counter("tinyleo_dataplane_delivered_total").Add(int64(r.PacketsDelivered))
	reg.Counter("tinyleo_dataplane_dropped_total").Add(int64(r.PacketsDropped))
	reg.Counter("tinyleo_dataplane_forwarded_total").Add(int64(r.PacketsSent))
	// Chaos-specific indicators, referenced via the raw-metric rule kind.
	reg.Gauge("tinyleo_chaos_delivery_ratio").Set(r.DeliveryRatio)
	reg.Gauge("tinyleo_chaos_recovery_p50_ms").Set(r.RecoveryMsP50)
	reg.Gauge("tinyleo_chaos_recovery_p99_ms").Set(r.RecoveryMsP99)
	reg.Gauge("tinyleo_chaos_unrecovered").Set(float64(r.Unrecovered))
	reg.Counter("tinyleo_southbound_retransmits_total").Add(r.Retransmits)
	reg.Counter("tinyleo_southbound_ack_timeouts_total").Add(r.AckTimeouts)
	// Fleet telemetry health, scoreable via the raw-metric rule kind
	// (e.g. "tinyleo_fleet_agents_silent<=0").
	if r.Fleet != nil {
		reg.Gauge("tinyleo_fleet_agents").Set(float64(r.Fleet.Agents))
		reg.Gauge("tinyleo_fleet_agents_silent").Set(float64(len(r.Fleet.Silent)))
		reg.Counter("tinyleo_fleet_reports_total").Add(int64(r.Fleet.Reports))
		reg.Counter("tinyleo_fleet_decode_errors_total").Add(r.Fleet.DecodeErrors)
	}

	eng := flightrec.NewEngine(nil, rules...)
	eng.SetRegistries(reg)
	status := eng.Eval()
	r.SLOBreached = 0
	for i := range status {
		status[i].EvalUS = 0 // wall-clock: excluded from the canonical form
		if status[i].Breached {
			r.SLOBreached++
		}
	}
	r.SLO = status
	return nil
}

// aggregate fills the report's campaign-level fields from its rounds.
func (r *Report) aggregate() {
	var rec []float64
	for _, rd := range r.Rounds {
		r.PacketsSent += rd.PacketsSent
		r.PacketsDelivered += rd.PacketsDelivered
		r.PacketsDropped += rd.PacketsDropped
		r.Unrecovered += rd.Unrecovered
		rec = append(rec, rd.RecoveryMs...)
	}
	if r.PacketsSent > 0 {
		r.DeliveryRatio = float64(r.PacketsDelivered) / float64(r.PacketsSent)
	}
	sort.Float64s(rec)
	r.RecoveryMsP50 = percentile(rec, 50)
	r.RecoveryMsP99 = percentile(rec, 99)
	if len(rec) > 0 {
		r.RecoveryMsMax = rec[len(rec)-1]
	}
}
