package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/dataplane"
	"repro/internal/mpc"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
	"repro/internal/southbound"
)

// MetricAgentApplied is the per-agent counter campaigns publish over the
// fleet telemetry plane: southbound commands the agent's OnCommand
// callback applied (duplicates suppressed by the dedup window). It is
// the series the campaign's rollup totals are checked against.
const MetricAgentApplied = "tinyleo_chaos_agent_applied_total"

// Campaign configures one seeded chaos run.
type Campaign struct {
	Scenario Scenario
	// Seed drives every random choice (fault targets, storm loss, agent
	// backoff jitter). Same seed + same scenario → byte-identical
	// CanonicalJSON.
	Seed int64
	// Testbed sizes the system under test (zero values take defaults).
	Testbed TestbedConfig
	// Flows is how many measured cell-to-cell flows to carry (default 4).
	Flows int
	// PacketsPerWindow is the per-flow offered load per measurement window
	// (default 16).
	PacketsPerWindow int
	// WindowSec is the sim-time length of each measurement window
	// (default 2 s).
	WindowSec float64
	// Delta enforces each round's repair diff as per-satellite slot-delta
	// batches (one MsgSlotDelta carrying every op addressed to that
	// satellite) instead of one SetISL per link. The applied topology is
	// identical; only the wire framing changes, so a delta campaign's
	// report stays byte-comparable across runs with the same seed.
	Delta bool
	// Tracer, when non-nil, records the campaign's causal spans (mpc.emit
	// roots, southbound send/retransmit/ack, agent applies). The engine
	// re-enables it on the campaign's virtual clock and seeds its span IDs
	// from Seed, so two runs of the same campaign produce identical span
	// timestamps and a byte-identical canonical merged trace
	// (tracemerge.WriteCanonical).
	Tracer *obs.Tracer
}

func (c *Campaign) fillDefaults() {
	if c.Flows <= 0 {
		c.Flows = 4
	}
	if c.PacketsPerWindow <= 0 {
		c.PacketsPerWindow = 16
	}
	if c.WindowSec <= 0 {
		c.WindowSec = 2
	}
}

// Southbound reliability tuning for campaigns: virtual-clock times (the
// engine advances them explicitly) and a fast real-time reconnect backoff
// so conn-drop rounds settle quickly.
const (
	campaignAckTimeout   = 5 * time.Second
	campaignRetransmit   = time.Second
	campaignMaxRetrans   = 2
	campaignBackoffBase  = 2 * time.Millisecond
	campaignBackoffMax   = 20 * time.Millisecond
	campaignRepairRTT    = 50 * time.Millisecond
	campaignPayloadBytes = 1024
	settleTimeout        = 10 * time.Second

	// Fleet telemetry cadence: each round ends with one coalesced report
	// per live agent, then the virtual clock advances one round tick and
	// the aggregator sweeps staleness. A flushed agent is therefore always
	// exactly one tick old at the sweep (healthy), while a crashed agent
	// accumulates ticks and drifts healthy → lagging → silent over the
	// following rounds.
	campaignRoundTick   = 10 * time.Second
	campaignFleetLag    = 15 * time.Second
	campaignFleetSilent = 25 * time.Second
)

// flow is one measured src→dst cell pair with its installed geo route and
// injection gateway.
type flow struct {
	src, dst int
	route    []int // cell route, destination last
	gw       int   // injection gateway satellite
}

// islAction is the topology change an acknowledged SetISL command applies.
type islAction struct {
	link mpc.Link
	up   bool
}

type runner struct {
	c   Campaign
	tb  *Testbed
	ctl *southbound.Controller
	vc  *VClock
	rng *rand.Rand

	// mu guards everything the southbound callbacks (controller and agent
	// goroutines) share with the engine goroutine.
	mu sync.Mutex
	//tinyleo:guardedby mu
	agents map[int]*southbound.Agent
	//tinyleo:guardedby mu
	gates map[int]chan struct{} // blackholed agents (OnCommand blocks)
	//tinyleo:guardedby mu
	wedgedEntered map[int]bool // gated agents that reached their blocking callback
	//tinyleo:guardedby mu
	acked map[uint32]bool // SetISL/probe seqs acknowledged
	//tinyleo:guardedby mu
	actions map[uint32][]islAction // this round's seq → topology changes (one per SetISL, a batch per slot-delta)
	//tinyleo:guardedby mu
	abandonedRound int // OnCommandFailed count this round
	//tinyleo:guardedby mu
	reconnects int64 // successful agent reconnections

	// Fleet telemetry plane: one always-enabled private registry +
	// reporter per agent feeding a virtual-clock aggregator, so the
	// campaign's constellation health view is part of the deterministic
	// report. fleetApplied/fleetReps are written once in start() and
	// read-only afterwards.
	agg          *fleet.Aggregator
	fleetApplied map[int]*obs.Counter
	fleetReps    map[int]*fleet.Reporter

	flows   []flow
	snap    *mpc.Snapshot
	impair  map[*netem.Link]*netem.Impairment
	crashed map[int]bool
	// prevUnreachable feeds last round's abandoned-command satellites into
	// this round's Repair as failed (graceful degradation: the controller
	// routes around them instead of erroring).
	prevUnreachable []int

	report *Report
	round  int
	curRR  *RoundReport
	// faultTime and firstDelivery measure per-flow recovery (sim seconds).
	faultTime     float64
	firstDelivery map[int]float64
	surged        map[int]bool
	pktSeq        uint32
}

// Run executes one seeded campaign and returns its report.
func Run(c Campaign) (*Report, error) {
	c.fillDefaults()
	if c.Scenario.Rounds <= 0 {
		return nil, fmt.Errorf("chaos: scenario %q has no rounds", c.Scenario.Name)
	}
	tb, err := NewTestbed(c.Testbed)
	if err != nil {
		return nil, err
	}
	r := &runner{
		c: c, tb: tb,
		vc:            NewVClock(),
		rng:           rand.New(rand.NewSource(c.Seed)),
		agents:        map[int]*southbound.Agent{},
		gates:         map[int]chan struct{}{},
		wedgedEntered: map[int]bool{},
		acked:         map[uint32]bool{},
		fleetApplied:  map[int]*obs.Counter{},
		fleetReps:     map[int]*fleet.Reporter{},
		impair:        map[*netem.Link]*netem.Impairment{},
		crashed:       map[int]bool{},
		snap:          tb.Snap,
		report:        &Report{Scenario: c.Scenario.Name, Seed: c.Seed},
	}
	defer r.shutdown()
	if err := r.start(); err != nil {
		return nil, err
	}
	if err := r.pickFlows(); err != nil {
		return nil, err
	}
	r.installHooks()
	//lint:tinyleo-ignore WallElapsedMs is wall telemetry excluded from the canonical (seed-keyed) report fields
	wallStart := time.Now()
	for round := 0; round < c.Scenario.Rounds; round++ {
		if err := r.runRound(round); err != nil {
			return nil, err
		}
	}
	if err := r.finish(wallStart); err != nil {
		return nil, err
	}
	return r.report, nil
}

// start brings up the southbound plane: a controller on a virtual clock
// and one reconnecting agent per network satellite.
func (r *runner) start() error {
	ctl, err := southbound.ListenController("127.0.0.1:0")
	if err != nil {
		return err
	}
	r.ctl = ctl
	ctl.Clock = r.vc.Now
	if r.c.Tracer != nil {
		// Rebase the tracer onto the campaign's virtual clock and seed its
		// span IDs before any span starts: timestamps and ID streams become
		// pure functions of (seed, scenario).
		r.c.Tracer.SetClock(r.vc.Now)
		r.c.Tracer.SeedIDs(uint64(r.c.Seed))
		r.c.Tracer.SetProcess("chaos")
		r.c.Tracer.Enable(0)
		ctl.Tracer = r.c.Tracer
	}
	ctl.AckTimeout = campaignAckTimeout
	ctl.RetransmitInterval = campaignRetransmit
	ctl.MaxRetransmits = campaignMaxRetrans
	ctl.OnAck = func(m *southbound.Message) {
		r.mu.Lock()
		r.acked[m.Seq] = true
		r.mu.Unlock()
	}
	ctl.OnCommandFailed = func(m *southbound.Message) {
		r.mu.Lock()
		r.abandonedRound++
		r.mu.Unlock()
	}

	// The fleet aggregator runs on the campaign's virtual clock with a
	// private (disabled) flight-recorder log: health transitions surface
	// only through OnTransition → r.event, so they land in the
	// deterministic report exactly once. Tick runs on the engine
	// goroutine (flushFleet), which makes r.event safe to call here.
	r.agg = fleet.NewAggregator(fleet.Options{
		Clock:       r.vc.Now,
		LagAfter:    campaignFleetLag,
		SilentAfter: campaignFleetSilent,
		Log:         new(flightrec.Log),
		OnTransition: func(agent uint32, from, to fleet.State) {
			typ := "agent_" + string(to)
			if to == fleet.StateHealthy {
				typ = "agent_recovered"
			}
			r.event(typ, "sat", fmt.Sprint(agent), "from", string(from), "to", string(to))
		},
	})
	ctl.OnTelemetry = func(sat uint32, payload []byte) {
		// Malformed reports are counted by the aggregator; a campaign
		// never produces one, so the error is not surfaced further.
		_ = r.agg.HandleReport(sat, payload)
	}

	ids := make([]int, 0, len(r.tb.Net.Sats))
	for id := range r.tb.Net.Sats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		id := id
		reg := obs.NewRegistry(true)
		applied := reg.Counter(MetricAgentApplied)
		a, err := southbound.DialAgentOptions(ctl.Addr(), uint32(id), 2*time.Second,
			southbound.AgentOptions{
				Reconnect:   true,
				BackoffBase: campaignBackoffBase,
				BackoffMax:  campaignBackoffMax,
				Seed:        r.c.Seed + int64(id) + 1,
				Tracer:      r.c.Tracer,
				OnReconnect: func(int) {
					r.mu.Lock()
					r.reconnects++
					r.mu.Unlock()
				},
			})
		if err != nil {
			return fmt.Errorf("chaos: dial agent %d: %w", id, err)
		}
		a.OnCommand = func(m *southbound.Message) {
			r.mu.Lock()
			gate := r.gates[id]
			if gate != nil {
				r.wedgedEntered[id] = true
			}
			r.mu.Unlock()
			if gate != nil {
				<-gate // blackholed: wedge until the round releases it
			}
			applied.Inc()
		}
		r.mu.Lock()
		r.agents[id] = a
		r.mu.Unlock()
		r.fleetApplied[id] = applied
		r.fleetReps[id] = fleet.NewReporter(fleet.NewEncoder(reg), a.SendTelemetry)
	}
	return nil
}

// pickFlows selects the campaign's measured flows: sorted cell pairs with
// a ≥3-cell intent route whose probe packet actually delivers.
func (r *runner) pickFlows() error {
	for _, src := range r.tb.Cells {
		for _, dst := range r.tb.Cells {
			if len(r.flows) >= r.c.Flows {
				return nil
			}
			if src >= dst {
				continue
			}
			route, err := r.tb.Topo.ShortestPathRoute(src, dst)
			if err != nil || len(route.Cells) < 3 {
				continue
			}
			gw, ok := gatewayOf(r.tb.Topo, r.snap, src)
			if !ok {
				continue
			}
			if !r.probeDelivers(gw, route.Cells) {
				continue
			}
			r.flows = append(r.flows, flow{src: src, dst: dst, route: route.Cells, gw: gw})
		}
	}
	if len(r.flows) == 0 {
		return fmt.Errorf("chaos: no deliverable flows in testbed")
	}
	return nil
}

// probeDelivers checks a sentinel packet traverses the route end to end
// (run before the measurement hooks are installed; the sentinel flow ID
// keeps any late-buffered probe out of the round accounting).
func (r *runner) probeDelivers(gw int, route []int) bool {
	delivered := false
	r.tb.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) { delivered = true }
	p, err := dataplane.NewGeoPacket(uint32(gw), route, ^uint32(0), 0, nil)
	if err != nil {
		r.tb.Net.OnDeliver = nil
		return false
	}
	r.tb.Net.Inject(gw, p)
	r.tb.Net.Sim.Run(r.tb.Net.Sim.Now() + 5)
	r.tb.Net.OnDeliver = nil
	return delivered
}

// installHooks attaches the round accounting to the data plane. Both hooks
// run on the engine goroutine (inside Sim.Run), so they touch round state
// without locks.
func (r *runner) installHooks() {
	r.tb.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) {
		fi := int(p.Base.FlowID)
		if fi < 0 || fi >= len(r.flows) {
			return // probe or stale sentinel
		}
		r.curRR.PacketsDelivered++
		if _, ok := r.firstDelivery[fi]; !ok {
			r.firstDelivery[fi] = r.tb.Net.Sim.Now()
		}
	}
	r.tb.Net.OnDrop = func(s *dataplane.Satellite, p *dataplane.Packet, reason string) {
		fi := int(p.Base.FlowID)
		if fi < 0 || fi >= len(r.flows) {
			return
		}
		r.curRR.PacketsDropped++
	}
}

// event appends to the campaign's deterministic event log (and mirrors it
// into the flight recorder when one is recording).
func (r *runner) event(typ string, attrs ...string) {
	r.report.Events = append(r.report.Events, Event{
		Round: r.round, SimTime: r.tb.Net.Sim.Now(), Type: typ, Attrs: attrs,
	})
	if flightrec.Enabled() {
		flightrec.Emit(flightrec.CompChaos, typ,
			append([]string{"round", fmt.Sprint(r.round)}, attrs...)...)
	}
}

// runRound executes one fault→measure→repair→measure cycle.
func (r *runner) runRound(round int) error {
	r.round = round
	rr := RoundReport{Round: round}
	r.curRR = &rr
	r.firstDelivery = map[int]float64{}
	r.surged = map[int]bool{}
	r.mu.Lock()
	r.actions = map[uint32][]islAction{}
	r.abandonedRound = 0
	r.mu.Unlock()

	// Phase 1: inject this round's faults.
	failedLinks, crashedNow, err := r.injectFaults(&rr)
	if err != nil {
		return err
	}
	r.faultTime = r.tb.Net.Sim.Now()
	faulted := len(rr.Faults) > 0

	// Phase 2: offered load under failure — local failover (§4.3) carries
	// what it can before the control plane reacts.
	r.injectWindow(&rr)

	// Phase 3: MPC repair (§4.2). Unreachable satellites from the previous
	// round are handed to the controller as failed instead of erroring.
	failedSats := append(append([]int{}, crashedNow...), r.prevUnreachable...)
	sort.Ints(failedSats)
	//lint:tinyleo-ignore WallRepairMs is wall telemetry excluded from the canonical (seed-keyed) report fields
	wall := time.Now()
	newSnap, rstats := r.tb.Ctl.Repair(r.snap, failedLinks, failedSats, campaignRepairRTT)
	//lint:tinyleo-ignore WallRepairMs is wall telemetry excluded from the canonical (seed-keyed) report fields
	r.report.WallRepairMs = append(r.report.WallRepairMs, float64(time.Since(wall).Microseconds())/1000)
	added, removed := mpc.DiffLinks(r.snap, newSnap)
	rr.LinksAdded, rr.LinksRemoved, rr.Unrepaired = len(added), len(removed), rstats.Unrepaired
	r.event("repair",
		"failed_links", fmt.Sprint(len(failedLinks)),
		"failed_sats", fmt.Sprint(len(failedSats)),
		"added", fmt.Sprint(len(added)),
		"removed", fmt.Sprint(len(removed)),
		"unrepaired", fmt.Sprint(rstats.Unrepaired))

	// Phase 4: southbound enforcement with at-least-once delivery.
	if err := r.enforce(&rr, added, removed); err != nil {
		return err
	}
	r.snap = newSnap

	// Phase 5: apply acknowledged changes to the live network, rebuild the
	// gateway rings, and flush §4.3's repair buffers.
	r.applyTopology(newSnap)
	r.tb.Net.FlushBuffers()

	// Phase 6: offered load after repair.
	r.injectWindow(&rr)

	// Phase 7: fleet telemetry — every live agent flushes one coalesced
	// report, then the virtual clock ticks and the aggregator sweeps
	// staleness (crashed agents drift toward silent; transitions land in
	// the deterministic event log via OnTransition).
	if err := r.flushFleet(); err != nil {
		return err
	}

	if faulted {
		for fi := range r.flows {
			if t, ok := r.firstDelivery[fi]; ok {
				rr.RecoveryMs = append(rr.RecoveryMs, (t-r.faultTime)*1000)
			} else {
				rr.Unrecovered++
			}
		}
		sort.Float64s(rr.RecoveryMs)
	}
	r.report.Rounds = append(r.report.Rounds, rr)
	r.curRR = nil
	return nil
}

// flushFleet ends a round's telemetry window: every live agent pushes
// one coalesced report, the engine waits for the aggregator to absorb
// them all (so report timestamps are the pre-advance virtual time), then
// advances the virtual clock one round tick and runs the staleness
// sweep. All aggregator reads below happen after this settles, so the
// health view is a pure function of (seed, scenario).
func (r *runner) flushFleet() error {
	r.mu.Lock()
	ids := make([]int, 0, len(r.agents))
	for id := range r.agents {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Ints(ids)
	type flushed struct {
		id  int
		seq uint64
	}
	var pend []flushed
	for _, id := range ids {
		seq, err := r.fleetReps[id].Flush()
		if err != nil {
			// Connection died mid-flush: the reporter reset its session, so
			// the next successful flush re-ships absolutes. Nothing to wait
			// for this round.
			continue
		}
		pend = append(pend, flushed{id: id, seq: seq})
	}
	if err := r.waitCond(func() bool {
		for _, p := range pend {
			if r.agg.AgentSeq(uint32(p.id)) < p.seq {
				return false
			}
		}
		return true
	}, "fleet reports"); err != nil {
		return err
	}
	r.vc.Advance(campaignRoundTick)
	r.agg.Tick()
	return nil
}

// upInterLinks lists the compiled inter-cell ISLs currently up in the
// network, in deterministic order: the isl_down / flap_storm target pool.
func (r *runner) upInterLinks() []mpc.Link {
	var out []mpc.Link
	for _, l := range r.snap.InterLinks {
		if nl := r.tb.Net.Link(l[0], l[1]); nl != nil && nl.IsUp() {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// liveAgentIDs lists connected, non-blackholed agents in ascending order:
// the crash / conn-drop / blackhole target pool. Caller must not hold r.mu.
func (r *runner) liveAgentIDs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.agents))
	for id := range r.agents {
		if r.gates[id] == nil {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// injectFaults draws this round's faults from the scenario pool and
// applies them. Returns the hard link failures and satellites crashed now
// (both feed the MPC repair).
func (r *runner) injectFaults(rr *RoundReport) ([]mpc.Link, []int, error) {
	var failedLinks []mpc.Link
	var crashedNow []int
	for _, kind := range r.c.Scenario.Faults {
		switch kind {
		case FaultISLDown:
			cands := r.upInterLinks()
			if len(cands) == 0 {
				continue
			}
			l := cands[r.rng.Intn(len(cands))]
			r.tb.Net.Link(l[0], l[1]).Down()
			failedLinks = append(failedLinks, l)
			rr.Faults = append(rr.Faults, fmt.Sprintf("isl_down %d-%d", l[0], l[1]))
			r.event(string(FaultISLDown), "a", fmt.Sprint(l[0]), "b", fmt.Sprint(l[1]))

		case FaultFlapStorm:
			cands := r.upInterLinks()
			if len(cands) == 0 {
				continue
			}
			l := cands[r.rng.Intn(len(cands))]
			nl := r.tb.Net.Link(l[0], l[1])
			im := r.impair[nl]
			if im == nil {
				im = netem.NewImpairment(r.rng.Int63(), 0.35)
				im.LossUntil = r.tb.Net.Sim.Now() + r.c.WindowSec
				im.Attach(r.tb.Net.Sim, nl, 0)
				r.impair[nl] = im
			} else {
				im.LossUntil = r.tb.Net.Sim.Now() + r.c.WindowSec
			}
			rr.Faults = append(rr.Faults, fmt.Sprintf("flap_storm %d-%d", l[0], l[1]))
			r.event(string(FaultFlapStorm), "a", fmt.Sprint(l[0]), "b", fmt.Sprint(l[1]))

		case FaultSatCrash:
			var cands []int
			for _, id := range r.liveAgentIDs() {
				if s := r.tb.Net.Sats[id]; s != nil && len(s.Peers()) > 0 {
					cands = append(cands, id)
				}
			}
			if len(cands) == 0 {
				continue
			}
			id := cands[r.rng.Intn(len(cands))]
			r.mu.Lock()
			a := r.agents[id]
			delete(r.agents, id)
			r.mu.Unlock()
			a.Close()
			for _, peer := range r.tb.Net.Sats[id].Peers() {
				if nl := r.tb.Net.Link(id, peer); nl != nil && nl.IsUp() {
					nl.Down()
					failedLinks = append(failedLinks, mpc.MakeLink(id, peer))
				}
			}
			r.crashed[id] = true
			crashedNow = append(crashedNow, id)
			if err := r.waitCond(func() bool {
				return r.ctl.AgentCount() == r.agentCount()
			}, "crash deregistration"); err != nil {
				return nil, nil, err
			}
			rr.Faults = append(rr.Faults, fmt.Sprintf("sat_crash %d", id))
			r.event(string(FaultSatCrash), "sat", fmt.Sprint(id))

		case FaultConnDrop:
			cands := r.liveAgentIDs()
			if len(cands) == 0 {
				continue
			}
			id := cands[r.rng.Intn(len(cands))]
			r.mu.Lock()
			a := r.agents[id]
			r.mu.Unlock()
			before := r.ctl.Registrations(uint32(id))
			a.DropConn()
			if err := r.waitCond(func() bool {
				return r.ctl.Registrations(uint32(id)) > before
			}, "agent reconnect"); err != nil {
				return nil, nil, err
			}
			rr.Faults = append(rr.Faults, fmt.Sprintf("conn_drop %d", id))
			r.event(string(FaultConnDrop), "sat", fmt.Sprint(id))

		case FaultBlackhole:
			// Prefer wedging an agent the repair loop is about to command:
			// the addressed endpoint of a link already failed this round
			// (commandTarget prefers the lower endpoint). Falling back to
			// any live agent keeps the fault meaningful in fault pools
			// without a topology failure.
			var cands []int
			live := map[int]bool{}
			for _, id := range r.liveAgentIDs() {
				live[id] = true
			}
			seen := map[int]bool{}
			for _, l := range failedLinks {
				for _, end := range []int{l[0], l[1]} {
					if live[end] && !seen[end] {
						seen[end] = true
						cands = append(cands, end)
						break // only the endpoint commandTarget would pick
					}
				}
			}
			if len(cands) == 0 {
				cands = r.liveAgentIDs()
			}
			if len(cands) == 0 {
				continue
			}
			id := cands[r.rng.Intn(len(cands))]
			r.mu.Lock()
			r.gates[id] = make(chan struct{})
			r.mu.Unlock()
			rr.Faults = append(rr.Faults, fmt.Sprintf("blackhole %d", id))
			r.event(string(FaultBlackhole), "sat", fmt.Sprint(id))

		case FaultDemandSurge:
			n := len(r.flows) / 3
			if n < 1 {
				n = 1
			}
			var cands []int
			for fi := range r.flows {
				if !r.surged[fi] {
					cands = append(cands, fi)
				}
			}
			for i := 0; i < n && len(cands) > 0; i++ {
				j := r.rng.Intn(len(cands))
				fi := cands[j]
				cands = append(cands[:j], cands[j+1:]...)
				r.surged[fi] = true
				rr.Faults = append(rr.Faults, fmt.Sprintf("demand_surge flow%d", fi))
				r.event(string(FaultDemandSurge), "flow", fmt.Sprint(fi))
			}
		}
	}
	return failedLinks, crashedNow, nil
}

func (r *runner) agentCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.agents)
}

// injectWindow offers one window of load on every flow and runs the sim
// through it. Surged flows inject their multiplied load as a burst at the
// window start (a demand spike), normal flows pace evenly.
func (r *runner) injectWindow(rr *RoundReport) {
	sim := r.tb.Net.Sim
	start := sim.Now()
	payload := make([]byte, campaignPayloadBytes)
	for fi := range r.flows {
		count := r.c.PacketsPerWindow
		burst := false
		if r.surged[fi] {
			factor := r.c.Scenario.SurgeFactor
			if factor < 2 {
				factor = 2
			}
			count *= factor
			burst = true
		}
		for i := 0; i < count; i++ {
			off := r.c.WindowSec * float64(i) / float64(count)
			if burst {
				off = 0
			}
			fi := fi
			r.pktSeq++
			seq := r.pktSeq
			sim.Schedule(off, func() {
				f := r.flows[fi]
				p, err := dataplane.NewGeoPacket(uint32(f.gw), f.route, uint32(fi), seq, payload)
				if err != nil {
					return
				}
				r.tb.Net.Inject(f.gw, p)
			})
			rr.PacketsSent++
		}
	}
	sim.Run(start + r.c.WindowSec)
}

// enforce pushes the repair diff southbound and settles it: healthy agents
// ack over TCP; blackholed agents are driven through retransmission and
// ack-timeout abandonment on the virtual clock; the unreachable set is
// drained before gates release so late acknowledgements cannot leak into
// the next round's failure input.
func (r *runner) enforce(rr *RoundReport, added, removed []mpc.Link) error {
	type cmd struct {
		l  mpc.Link
		up bool
	}
	var cmds []cmd
	for _, l := range added {
		cmds = append(cmds, cmd{l, true})
	}
	for _, l := range removed {
		cmds = append(cmds, cmd{l, false})
	}
	// One mpc.emit root per round: every enforced command's causal tree
	// (send → retransmits → apply → ack) hangs off it in the merged trace.
	var emit obs.Span
	if r.c.Tracer != nil && r.c.Tracer.Enabled() {
		emit = r.c.Tracer.StartSpanCtx(obs.SpanContext{}, "mpc.emit",
			"round", fmt.Sprint(r.round),
			"commands", fmt.Sprint(len(cmds)))
	}
	defer emit.End()
	gatedSends := 0
	gatedTargets := map[int]bool{}
	send := func(m *southbound.Message, acts []islAction) bool {
		if err := r.ctl.Send(m); err != nil {
			rr.CommandsUnknown++
			return false
		}
		rr.CommandsSent++
		r.mu.Lock()
		r.actions[m.Seq] = acts
		gated := r.gates[int(m.SatID)] != nil
		r.mu.Unlock()
		if gated {
			gatedSends++
			gatedTargets[int(m.SatID)] = true
		}
		return true
	}
	if r.c.Delta {
		// Delta enforcement: one slot-delta batch per target satellite,
		// ops in command order, targets in ascending order — the same
		// per-command target choice as the SetISL path, so fault handling
		// (gates, abandonment, unreachable sets) behaves identically.
		batchOps := map[int][]southbound.SlotDeltaOp{}
		batchActs := map[int][]islAction{}
		var targets []int
		for _, c := range cmds {
			target, other, ok := r.commandTarget(c.l)
			if !ok {
				rr.CommandsUnknown++
				continue
			}
			if _, seen := batchOps[target]; !seen {
				targets = append(targets, target)
			}
			batchOps[target] = append(batchOps[target], southbound.SlotDeltaOp{Peer: uint32(other), Up: c.up})
			batchActs[target] = append(batchActs[target], islAction{link: c.l, up: c.up})
		}
		sort.Ints(targets)
		for _, target := range targets {
			send(&southbound.Message{
				Type: southbound.MsgSlotDelta, SatID: uint32(target),
				Payload: southbound.EncodeSlotDelta(batchOps[target]),
				Trace:   emit.Context(), Emitted: r.vc.Now(),
			}, batchActs[target])
		}
	} else {
		for _, c := range cmds {
			target, other, ok := r.commandTarget(c.l)
			if !ok {
				rr.CommandsUnknown++
				continue
			}
			send(&southbound.Message{
				Type: southbound.MsgSetISL, SatID: uint32(target), Peer: uint32(other), Up: c.up,
				Trace: emit.Context(), Emitted: r.vc.Now(),
			}, []islAction{{link: c.l, up: c.up}})
		}
	}

	// Healthy agents ack promptly over real TCP.
	if err := r.waitCond(func() bool {
		return r.ctl.PendingAcks() <= gatedSends
	}, "command acks"); err != nil {
		return err
	}
	// Wedged agents must have reached their blocking callback before the
	// virtual clock moves: their apply span starts (and the trace's
	// determinism) depend on the command being read at this round's time,
	// not mid-retransmit-sweep.
	if len(gatedTargets) > 0 {
		if err := r.waitCond(func() bool {
			r.mu.Lock()
			defer r.mu.Unlock()
			for id := range gatedTargets {
				if !r.wedgedEntered[id] {
					return false
				}
			}
			return true
		}, "wedged agents entering apply"); err != nil {
			return err
		}
	}
	// Anything still pending targets a wedged agent: retransmit on the
	// virtual clock up to the cap, then abandon past AckTimeout.
	if r.ctl.PendingAcks() > 0 {
		for i := 0; i <= campaignMaxRetrans; i++ {
			r.vc.Advance(campaignRetransmit)
			r.ctl.SweepPending()
			//lint:tinyleo-ignore real-IO settling pause; logical outcomes are gated on waitCond, not on this sleep
			time.Sleep(2 * time.Millisecond) // let retransmission writes land
		}
		r.vc.Advance(campaignAckTimeout)
		r.ctl.SweepPending()
	}
	unreachable := r.ctl.TakeUnreachable()
	r.prevUnreachable = r.prevUnreachable[:0]
	for _, id := range unreachable {
		r.prevUnreachable = append(r.prevUnreachable, int(id))
		r.event("unreachable", "sat", fmt.Sprint(id))
	}
	r.mu.Lock()
	rr.CommandsAbandoned = r.abandonedRound
	released := make([]int, 0, len(r.gates))
	for id, gate := range r.gates {
		close(gate)
		released = append(released, id)
	}
	r.gates = map[int]chan struct{}{}
	r.wedgedEntered = map[int]bool{}
	r.mu.Unlock()
	sort.Ints(released)

	// Flush barrier: one inert probe per released agent. Its ack arriving
	// implies every buffered retransmission before it was processed (the
	// connection is FIFO and the controller serves it serially), so the
	// acked set is settled before we read it.
	for _, id := range released {
		probe := &southbound.Message{Type: southbound.MsgSetRing, SatID: uint32(id), Peer: uint32(id)}
		if err := r.ctl.Send(probe); err != nil {
			continue // agent died mid-round; nothing buffered to flush
		}
	}
	if err := r.waitCond(func() bool {
		return r.ctl.PendingAcks() == 0
	}, "flush barrier"); err != nil {
		return err
	}
	r.mu.Lock()
	for seq := range r.actions {
		if r.acked[seq] {
			rr.CommandsAcked++
		}
	}
	r.mu.Unlock()
	return nil
}

// commandTarget picks the agent a SetISL for l is addressed to: the lower
// endpoint's live agent, else the other endpoint's. ok is false when
// neither endpoint is reachable (the change is unenforceable this round).
func (r *runner) commandTarget(l mpc.Link) (target, other int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.agents[l[0]] != nil {
		return l[0], l[1], true
	}
	if r.agents[l[1]] != nil {
		return l[1], l[0], true
	}
	return 0, 0, false
}

// applyTopology applies the round's acknowledged SetISL actions to the
// emulated network and rebuilds the gateway rings from the new snapshot.
func (r *runner) applyTopology(snap *mpc.Snapshot) {
	r.mu.Lock()
	seqs := make([]int, 0, len(r.actions))
	for seq := range r.actions {
		seqs = append(seqs, int(seq))
	}
	sort.Ints(seqs)
	acts := make([]islAction, 0, len(seqs))
	for _, seq := range seqs {
		if r.acked[uint32(seq)] {
			acts = append(acts, r.actions[uint32(seq)]...)
		}
	}
	r.mu.Unlock()
	for _, a := range acts {
		if a.up {
			if r.ensureSat(snap, a.link[0]) && r.ensureSat(snap, a.link[1]) {
				r.tb.Net.EnsureLink(a.link[0], a.link[1], r.tb.linkDelay(a.link, snap.Time))
			}
		} else if nl := r.tb.Net.Link(a.link[0], a.link[1]); nl != nil && nl.IsUp() {
			nl.Down()
		}
	}
	for _, cell := range snapshotCells(snap) {
		if ring := ringOrder(r.tb.Net, snap, cell); len(ring) >= 2 {
			r.tb.Net.SetRing(ring)
		}
	}
}

// ensureSat makes sure a repair-introduced gateway satellite exists in the
// network, homed to its snapshot cell.
func (r *runner) ensureSat(snap *mpc.Snapshot, id int) bool {
	if r.tb.Net.Sats[id] != nil {
		return true
	}
	cells := make([]int, 0, len(snap.CellSats))
	for c := range snap.CellSats {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		for _, s := range snap.CellSats[c] {
			if s == id {
				r.tb.Net.AddSatellite(id, c)
				return true
			}
		}
	}
	return false
}

// finish aggregates counters and scores the campaign's SLOs.
func (r *runner) finish(wallStart time.Time) error {
	rep := r.report
	reg := r.ctl.Metrics()
	rep.Retransmits = reg.Counter(southbound.MetricRetransmits).Value()
	rep.AckTimeouts = reg.Counter(southbound.MetricAckTimeouts).Value()
	r.mu.Lock()
	rep.Reconnects = r.reconnects
	r.mu.Unlock()
	for _, l := range r.tb.Net.Links() {
		rep.LinkDrops += l.Drops
		rep.LostInFlight += l.LostInFlight
	}
	for _, im := range r.impair {
		rep.ImpairmentLosses += im.Losses
	}
	sent, acked := 0, 0
	for _, rr := range rep.Rounds {
		sent += rr.CommandsSent
		acked += rr.CommandsAcked
	}
	if sent > 0 {
		rep.EnforcementRatio = float64(acked) / float64(sent)
	} else {
		rep.EnforcementRatio = 1
	}
	rep.Fleet = r.fleetSummary()
	rep.aggregate()
	if err := rep.score(r.c.Scenario.SLO); err != nil {
		return err
	}
	//lint:tinyleo-ignore WallElapsedMs is wall telemetry excluded from the canonical (seed-keyed) report fields
	rep.WallElapsedMs = float64(time.Since(wallStart).Microseconds()) / 1000
	return nil
}

// fleetSummary reads the campaign's final constellation health view out
// of the aggregator. Everything here is derived from virtual-clock state
// settled by the last flushFleet, so the summary is deterministic and
// belongs in CanonicalJSON.
func (r *runner) fleetSummary() *FleetSummary {
	v := r.agg.View()
	fs := &FleetSummary{
		Agents:       len(v.Agents),
		States:       v.States,
		DecodeErrors: v.DecodeErrors,
		Totals:       v.Totals,
	}
	for _, ag := range v.Agents {
		fs.Reports += ag.Reports
		fs.Bytes += ag.Bytes
		fs.Gaps += ag.Gaps
		if ag.State == fleet.StateSilent {
			fs.Silent = append(fs.Silent, int(ag.ID))
		}
	}
	ids := make([]int, 0, len(r.fleetApplied))
	for id := range r.fleetApplied {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fs.AppliedTotal += r.fleetApplied[id].Value()
	}
	return fs
}

// waitCond polls cond (real time) until it holds or the settle timeout
// expires. Only logical state is read inside cond, so the poll cadence
// never leaks into the report.
func (r *runner) waitCond(cond func() bool, what string) error {
	//lint:tinyleo-ignore real-time settle poll over real sockets; cond reads logical state only, so cadence cannot leak into the report
	deadline := time.Now().Add(settleTimeout)
	//lint:tinyleo-ignore real-time settle poll over real sockets; cond reads logical state only, so cadence cannot leak into the report
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		//lint:tinyleo-ignore real-time settle poll over real sockets; cond reads logical state only, so cadence cannot leak into the report
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("chaos: timed out waiting for %s", what)
}

// shutdown releases any held gates (a wedged agent cannot close while its
// OnCommand is blocked) and tears the southbound plane down.
func (r *runner) shutdown() {
	r.mu.Lock()
	for _, gate := range r.gates {
		close(gate)
	}
	r.gates = map[int]chan struct{}{}
	ids := make([]int, 0, len(r.agents))
	for id := range r.agents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	agents := make([]*southbound.Agent, 0, len(ids))
	for _, id := range ids {
		agents = append(agents, r.agents[id])
	}
	r.mu.Unlock()
	for _, a := range agents {
		a.Close()
	}
	if r.ctl != nil {
		r.ctl.Close()
	}
}
