package chaos

import "fmt"

// FaultKind enumerates the injectable failure modes.
type FaultKind string

const (
	// FaultISLDown fails a compiled inter-cell ISL (hard failure the MPC
	// must repair).
	FaultISLDown FaultKind = "isl_down"
	// FaultFlapStorm attaches a stochastic loss storm to an ISL for one
	// measurement window (the paper's solar-storm motivation, §4.3).
	FaultFlapStorm FaultKind = "flap_storm"
	// FaultSatCrash crashes a satellite: all its ISLs go down and its
	// southbound agent terminates (commands toward it fail fast).
	FaultSatCrash FaultKind = "sat_crash"
	// FaultConnDrop severs a southbound agent's TCP session; the agent
	// reconnects with backoff and pending commands are resent.
	FaultConnDrop FaultKind = "conn_drop"
	// FaultBlackhole wedges an agent: it stays connected but stops
	// processing commands for a round, exercising retransmission, ack
	// timeout, and the unreachable→failed-satellite degradation path.
	FaultBlackhole FaultKind = "blackhole"
	// FaultDemandSurge multiplies the round's offered load on a subset of
	// flows (regional surge), stressing queues rather than topology.
	FaultDemandSurge FaultKind = "demand_surge"
)

// Scenario is one named fault composition.
type Scenario struct {
	// Name identifies the scenario in reports and -chaos-scenario.
	Name string
	// Rounds is the number of fault→measure→repair→measure cycles.
	Rounds int
	// Faults is the pool the engine draws from each round (one fault per
	// entry per round, candidates permitting).
	Faults []FaultKind
	// SurgeFactor multiplies per-flow load during a demand surge (≥2).
	SurgeFactor int
	// SLO is the flight-recorder rule spec the campaign is scored with
	// (see flightrec.ParseRules); empty uses DefaultSLO.
	SLO string
}

// DefaultSLO is the campaign scoring spec: enforcement availability,
// end-to-end delivery, and p99 recovery (ms, over the engine-computed
// gauge) under fault load.
const DefaultSLO = "availability>=0.60,tinyleo_chaos_delivery_ratio>=0.50,tinyleo_chaos_recovery_p99_ms<=2000"

// Scenarios returns the built-in scenario table, keyed by name.
func Scenarios() map[string]Scenario {
	list := []Scenario{
		{
			Name:   "baseline",
			Rounds: 3,
			Faults: nil, // no faults: the control sanity run
			SLO:    "availability>=0.95,tinyleo_chaos_delivery_ratio>=0.95",
		},
		{
			Name:   "isl-storm",
			Rounds: 4,
			Faults: []FaultKind{FaultISLDown, FaultFlapStorm},
		},
		{
			Name:   "agent-crash",
			Rounds: 4,
			Faults: []FaultKind{FaultSatCrash, FaultBlackhole},
		},
		{
			Name:   "conn-flap",
			Rounds: 4,
			Faults: []FaultKind{FaultConnDrop, FaultConnDrop},
		},
		{
			Name:        "surge",
			Rounds:      3,
			Faults:      []FaultKind{FaultDemandSurge},
			SurgeFactor: 8,
		},
		{
			Name:        "mixed",
			Rounds:      5,
			Faults:      []FaultKind{FaultISLDown, FaultConnDrop, FaultBlackhole, FaultDemandSurge},
			SurgeFactor: 4,
		},
	}
	out := make(map[string]Scenario, len(list))
	for _, s := range list {
		out[s.Name] = s
	}
	return out
}

// ScenarioByName resolves a built-in scenario.
func ScenarioByName(name string) (Scenario, error) {
	if s, ok := Scenarios()[name]; ok {
		return s, nil
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q", name)
}

// ScenarioNames lists the built-in scenarios in a fixed order.
func ScenarioNames() []string {
	return []string{"baseline", "isl-storm", "agent-crash", "conn-flap", "surge", "mixed"}
}

// Event is one entry in the campaign's deterministic event log. Times are
// netem sim seconds; there is no wall-clock anywhere in an Event.
type Event struct {
	Round   int      `json:"round"`
	SimTime float64  `json:"sim_t"`
	Type    string   `json:"type"`
	Attrs   []string `json:"attrs,omitempty"` // flat key/value pairs, emission order
}

// Attr returns the value of the named attribute, or "".
func (e *Event) Attr(key string) string {
	for i := 0; i+1 < len(e.Attrs); i += 2 {
		if e.Attrs[i] == key {
			return e.Attrs[i+1]
		}
	}
	return ""
}
