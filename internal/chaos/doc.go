// Package chaos is TinyLEO's seeded fault-injection campaign engine: it
// composes failure scenarios — ISL loss and flap storms, satellite/agent
// crashes, southbound connection drops, regional demand surges — and
// drives them through the full control loop (MPC repair §4.2 → southbound
// enforcement §5 → data-plane failover §4.3), scoring each campaign with
// the flight recorder's SLO engine.
//
// Failure is the default test mode here: every scenario injects faults
// and asserts the system degrades gracefully (recovery time, delivery
// ratio, enforcement ratio) instead of asserting the happy path.
//
// Determinism contract: a campaign is seeded and runs in lockstep —
// faults are drawn from a single seeded RNG over sorted candidate lists,
// packet timing lives entirely on the netem virtual clock, and the
// southbound reliability layer is driven through an injected clock. The
// canonical report (Report.CanonicalJSON) therefore contains only
// sim-time and logical counters: same seed → same bytes. Wall-clock
// measurements (repair latency) are reported separately and excluded
// from the canonical form.
//
// # Surfaces
//
// Scenarios / ScenarioByName / ScenarioNames enumerate the built-in
// fault compositions; Campaign configures one seeded run (scenario,
// seed, testbed size, offered load, optional virtual-clock Tracer) and
// Run executes it, returning a Report whose CanonicalJSON is
// byte-reproducible for a given (seed, scenario). VClock is the
// injectable virtual clock the southbound reliability layer and the
// fleet aggregator run on during a campaign.
//
// The engine is driven by `tinyleo-bench -run chaos` and by
// `tinyleo-testground` virtual-mode plans (internal/testground), which
// map a declarative manifest onto a Campaign.
package chaos
