package chaos

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/baseline"
	"repro/internal/dataplane"
	"repro/internal/geo"
	"repro/internal/intent"
	"repro/internal/mpc"
	"repro/internal/orbit"
)

// TestbedConfig sizes the campaign testbed. Zero values take defaults
// chosen so a campaign runs in a few seconds.
type TestbedConfig struct {
	// Sats is the Walker constellation size (rounded down to a square).
	Sats int
	// CellDeg is the geographic cell size in degrees.
	CellDeg float64
	// Slots / SlotSeconds bound the supply horizon deriving the intent.
	Slots       int
	SlotSeconds float64
	// ISLRateBps / QueueLimit size the emulated links. The defaults are
	// deliberately narrow (2 Mbps, 128-packet queues) so demand surges
	// congest queues instead of disappearing into the paper's 200 Gbps.
	ISLRateBps float64
	QueueLimit int
}

func (c *TestbedConfig) fillDefaults() {
	if c.Sats <= 0 {
		c.Sats = 256
	}
	if c.CellDeg <= 0 {
		c.CellDeg = 10
	}
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.SlotSeconds <= 0 {
		c.SlotSeconds = 300
	}
	if c.ISLRateBps <= 0 {
		c.ISLRateBps = 2e6
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 128
	}
}

// Testbed is the campaign's system under test: a constellation, its mesh
// intent, the orbital MPC, one compiled snapshot, and the emulated data
// plane built from it.
type Testbed struct {
	Cfg  TestbedConfig
	Sats []orbit.Elements
	Topo *intent.Topology
	Ctl  *mpc.Controller
	Snap *mpc.Snapshot
	Net  *dataplane.Network
	// Cells are the intent cells with at least one homed satellite,
	// ascending.
	Cells []int
}

// NewTestbed builds the system under test: a Walker constellation, the
// mesh intent its coverage guarantees (§4.2's geographic invariant), a
// compiled slot-0 topology, and the emulated network.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	cfg.fillDefaults()
	side := int(math.Sqrt(float64(cfg.Sats)))
	if side < 2 {
		side = 2
	}
	sats := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200,
		Planes: side, SatsPerPlane: side, PhasingF: 1,
	}.Satellites()

	g := geo.MustGrid(cfg.CellDeg)
	cov := orbit.CoverageParams{MinElevation: orbit.DefaultCoverageParams.MinElevation / 2}
	supply := baseline.Supply(baseline.SupplyConfig{
		Grid: g, Slots: cfg.Slots, SlotSeconds: cfg.SlotSeconds, SubSamples: 1,
		Coverage: cov, CountSatellites: true,
	}, sats)
	guaranteed := intent.GuaranteedFromSupply(g, cfg.Slots, supply)

	// Grow a connected intent region from the best-guaranteed cell, capped
	// so gateway demand stays within the constellation's terminal budget.
	qualified := map[int]int{}
	seed, bestG := -1, 0
	for u := 0; u < g.NumCells(); u++ {
		if n := guaranteed[u]; n >= 3 {
			qualified[u] = n
			if n > bestG {
				seed, bestG = u, n
			}
		}
	}
	if seed < 0 {
		return nil, fmt.Errorf("chaos: no cells qualify for the testbed intent")
	}
	maxCells := len(sats) / 32
	if maxCells < 6 {
		maxCells = 6
	}
	region := map[int]int{seed: qualified[seed]}
	frontier := []int{seed}
	for len(frontier) > 0 && len(region) < maxCells {
		u := frontier[0]
		frontier = frontier[1:]
		for _, v := range g.Neighbors4(u) {
			if _, ok := region[v]; ok {
				continue
			}
			if n, ok := qualified[v]; ok {
				region[v] = n
				frontier = append(frontier, v)
				if len(region) >= maxCells {
					break
				}
			}
		}
	}
	topo := intent.MeshIntent(g, region, 1, 1)
	if len(topo.Cells()) < 2 || len(topo.Edges) == 0 {
		return nil, fmt.Errorf("chaos: testbed intent region degenerate (%d cells)", len(topo.Cells()))
	}

	ctl, err := mpc.New(mpc.Config{
		Topo: topo, Sats: sats, Coverage: cov,
		LifetimeHorizon: 2 * cfg.SlotSeconds, LifetimeStep: cfg.SlotSeconds / 5,
	})
	if err != nil {
		return nil, err
	}
	snap := ctl.Compile(0)

	tb := &Testbed{Cfg: cfg, Sats: sats, Topo: topo, Ctl: ctl, Snap: snap}
	tb.Net = tb.buildNetwork(snap)
	for cell, members := range snap.CellSats {
		if len(members) > 0 {
			tb.Cells = append(tb.Cells, cell)
		}
	}
	sort.Ints(tb.Cells)
	if len(tb.Cells) < 2 {
		return nil, fmt.Errorf("chaos: testbed has %d populated cells", len(tb.Cells))
	}
	return tb, nil
}

// buildNetwork materializes a snapshot as an emulated data plane:
// gateway satellites homed to their duty cells, ISLs with physical
// propagation delays, and the per-cell gateway rings.
func (tb *Testbed) buildNetwork(snap *mpc.Snapshot) *dataplane.Network {
	n := dataplane.NewNetwork()
	n.ISLRateBps = tb.Cfg.ISLRateBps
	n.QueueLimit = tb.Cfg.QueueLimit
	// Gateway keys sorted: a satellite can hold duty under more than one
	// edge key (repair can double-book), and the first key seen decides
	// its home cell — iterating the map here made the emulated network
	// differ run to run.
	gwKeys := make([][2]int, 0, len(snap.Gateways))
	for key := range snap.Gateways {
		gwKeys = append(gwKeys, key)
	}
	sort.Slice(gwKeys, func(i, j int) bool {
		if gwKeys[i][0] != gwKeys[j][0] {
			return gwKeys[i][0] < gwKeys[j][0]
		}
		return gwKeys[i][1] < gwKeys[j][1]
	})
	for _, key := range gwKeys {
		for _, s := range snap.Gateways[key] {
			if n.Sats[s] == nil {
				n.AddSatellite(s, key[0])
			}
		}
	}
	for _, l := range snap.Links() {
		if n.Sats[l[0]] == nil || n.Sats[l[1]] == nil || n.Link(l[0], l[1]) != nil {
			continue
		}
		n.Connect(l[0], l[1], tb.linkDelay(l, snap.Time))
	}
	for _, cell := range snapshotCells(snap) {
		if ring := ringOrder(n, snap, cell); len(ring) >= 2 {
			n.SetRing(ring)
		}
	}
	return n
}

// linkDelay is the speed-of-light one-way delay of a candidate ISL at t.
func (tb *Testbed) linkDelay(l mpc.Link, t float64) float64 {
	return orbit.PropagationDelay(
		tb.Sats[l[0]].PositionECI(t), tb.Sats[l[1]].PositionECI(t))
}

// snapshotCells returns the snapshot's gateway home cells, ascending.
func snapshotCells(snap *mpc.Snapshot) []int {
	seen := map[int]bool{}
	for key := range snap.Gateways {
		seen[key[0]] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ringOrder reconstructs the cyclic order of a cell's gateway ring from
// the snapshot's ring links, using the network's home-cell assignment for
// membership.
func ringOrder(n *dataplane.Network, snap *mpc.Snapshot, cell int) []int {
	inCell := map[int]bool{}
	for id, s := range n.Sats {
		if s.Cell == cell {
			inCell[id] = true
		}
	}
	adj := map[int][]int{}
	for _, l := range snap.RingLinks {
		if inCell[l[0]] && inCell[l[1]] {
			adj[l[0]] = append(adj[l[0]], l[1])
			adj[l[1]] = append(adj[l[1]], l[0])
		}
	}
	if len(adj) < 2 {
		return nil
	}
	start := -1
	for s := range adj {
		if start == -1 || s < start {
			start = s
		}
	}
	order := []int{start}
	prev, cur := -1, start
	for {
		next := -1
		for _, nb := range adj[cur] {
			if nb != prev {
				next = nb
				break
			}
		}
		if next == -1 || next == start {
			break
		}
		order = append(order, next)
		prev, cur = cur, next
		if len(order) > len(adj) {
			break // safety against malformed rings
		}
	}
	return order
}

// gatewayOf returns an injection satellite for a cell under snap: one of
// its gateway ring members (only gateways hold ISLs).
func gatewayOf(topo *intent.Topology, snap *mpc.Snapshot, cell int) (int, bool) {
	for _, v := range topo.Neighbors(cell) {
		if g := snap.Gateways[[2]int{cell, v}]; len(g) > 0 {
			return g[0], true
		}
	}
	return -1, false
}
