package chaos

// Coverage for the campaign fleet telemetry plane: the deterministic
// constellation health summary, the crash → lagging → silent drift on
// the virtual clock, and the rollup-vs-ground-truth equality.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// fleetCrashScenario crashes one satellite per round: the round-0 victim
// never reports (it dies before the first flush), the round-1 victim
// reports once and then drifts healthy → lagging → silent over the
// remaining round ticks.
var fleetCrashScenario = Scenario{
	Name:   "fleet-crash",
	Rounds: 3,
	Faults: []FaultKind{FaultISLDown, FaultSatCrash},
}

func TestCampaignFleetSummary(t *testing.T) {
	rep, err := Run(testCampaign(detScenario, 42))
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Fleet
	if fs == nil {
		t.Fatal("campaign report has no fleet summary")
	}
	if fs.Agents == 0 {
		t.Fatal("no agents reported over the fleet telemetry plane")
	}
	// One report per agent per round (no crashes in detScenario).
	if want := uint64(fs.Agents * detScenario.Rounds); fs.Reports != want {
		t.Fatalf("fleet reports = %d, want %d (%d agents x %d rounds)",
			fs.Reports, want, fs.Agents, detScenario.Rounds)
	}
	if fs.Bytes == 0 {
		t.Fatal("fleet summary counted reports but no bytes")
	}
	if fs.Gaps != 0 || fs.DecodeErrors != 0 {
		t.Fatalf("lossless local transport saw gaps=%d decode_errors=%d", fs.Gaps, fs.DecodeErrors)
	}
	if fs.AppliedTotal == 0 {
		t.Fatal("faulted campaign applied no southbound commands")
	}
	// The telemetry rollup must agree exactly with the agents' own
	// registries: the applied total aggregated over the wire equals the
	// ground-truth sum.
	var rolled *obs.Sample
	for i := range fs.Totals {
		if fs.Totals[i].Name == MetricAgentApplied {
			rolled = &fs.Totals[i]
		}
	}
	if rolled == nil {
		t.Fatalf("fleet totals missing %s: %+v", MetricAgentApplied, fs.Totals)
	}
	if rolled.Value != float64(fs.AppliedTotal) {
		t.Fatalf("rollup %s = %v, ground truth %d", MetricAgentApplied, rolled.Value, fs.AppliedTotal)
	}
	if fs.States["healthy"] != fs.Agents {
		t.Fatalf("crash-free campaign ended with states %v, want all %d healthy", fs.States, fs.Agents)
	}
}

func TestCampaignCrashDrivesAgentSilent(t *testing.T) {
	rep, err := Run(testCampaign(fleetCrashScenario, 9))
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Fleet
	if fs == nil {
		t.Fatal("campaign report has no fleet summary")
	}
	if len(fs.Silent) == 0 {
		t.Fatalf("no agent went silent after per-round crashes: states %v", fs.States)
	}
	// The round-1 victim must walk the full staleness ladder, and each
	// transition must be a deterministic campaign event.
	silent := fs.Silent[0]
	lagged, silenced := false, false
	for _, ev := range rep.Events {
		if ev.Attr("sat") != fmt.Sprint(silent) {
			continue
		}
		switch ev.Type {
		case "agent_lagging":
			lagged = true
		case "agent_silent":
			if !lagged {
				t.Fatalf("agent %d went silent without lagging first", silent)
			}
			silenced = true
		}
	}
	if !lagged || !silenced {
		t.Fatalf("silent agent %d missing staleness events (lagging=%v silent=%v):\n%+v",
			silent, lagged, silenced, rep.Events)
	}
	if fs.States["silent"] != len(fs.Silent) {
		t.Fatalf("states map %v disagrees with silent list %v", fs.States, fs.Silent)
	}
}

// Same seed → byte-identical canonical report, fleet section included:
// the health view is aggregated over real TCP but timestamped purely by
// the virtual clock.
func TestCampaignFleetDeterministic(t *testing.T) {
	var canon [][]byte
	for i := 0; i < 2; i++ {
		rep, err := Run(testCampaign(fleetCrashScenario, 9))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if rep.Fleet == nil || len(rep.Fleet.Totals) == 0 {
			t.Fatalf("run %d: empty fleet summary", i)
		}
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		canon = append(canon, b)
	}
	if !bytes.Equal(canon[0], canon[1]) {
		t.Fatalf("same seed produced different fleet-bearing canonical reports:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
			canon[0], canon[1])
	}
}
