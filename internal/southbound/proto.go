// Package southbound implements TinyLEO's southbound control protocol
// (paper §5: a per-satellite agent exchanges control commands and runtime
// ISL/satellite status with the MPC controller; the paper uses gRPC, this
// implementation uses a length-prefixed binary protocol over TCP with the
// same message vocabulary). The controller pushes ISL/ring/route
// configuration; agents report failures and acknowledge commands.
package southbound

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// MsgType enumerates protocol messages.
type MsgType uint8

const (
	// MsgHello registers an agent (SatID) with the controller.
	MsgHello MsgType = iota + 1
	// MsgHelloAck confirms registration.
	MsgHelloAck
	// MsgSetISL instructs a satellite to (dis)establish an ISL to Peer.
	MsgSetISL
	// MsgSetRing instructs a satellite that its intra-cell ring successor
	// is Peer.
	MsgSetRing
	// MsgInstallRoute installs a geographic segment route (Cells) at a
	// source satellite.
	MsgInstallRoute
	// MsgFailureReport notifies the controller that the link to Peer (or
	// the satellite itself, Peer == 0xFFFFFFFF) failed.
	MsgFailureReport
	// MsgAck acknowledges a command by Seq.
	MsgAck
	// MsgTelemetry carries an opaque fleet-telemetry report (see
	// internal/obs/fleet) from agent to controller in the Payload trailer.
	MsgTelemetry
	// MsgSlotDelta carries one satellite's batch of ISL add/remove ops for
	// a control slot (the delta enforcement path). The ops ride the
	// Payload trailer (EncodeSlotDelta), so the frame layout is identical
	// to every other message and pre-delta readers skip it cleanly.
	MsgSlotDelta
	// MsgSlotSnapshot carries one satellite's full desired ISL peer set —
	// the re-sync fallback when an agent reconnected or its ack state was
	// declared unreachable and per-op deltas can no longer be trusted to
	// compose. Peers ride the Payload trailer (EncodeSlotSnapshot).
	MsgSlotSnapshot
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgSetISL:
		return "set-isl"
	case MsgSetRing:
		return "set-ring"
	case MsgInstallRoute:
		return "install-route"
	case MsgFailureReport:
		return "failure-report"
	case MsgAck:
		return "ack"
	case MsgTelemetry:
		return "telemetry"
	case MsgSlotDelta:
		return "slot-delta"
	case MsgSlotSnapshot:
		return "slot-snapshot"
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is the protocol unit.
type Message struct {
	Type  MsgType
	SatID uint32 // subject satellite
	Seq   uint32 // command sequence / ack correlation
	Peer  uint32 // peer satellite for ISL/ring messages
	Up    bool   // ISL establish (true) or teardown (false)
	Cells []uint16

	// Trace is the causal context of the span that produced this message.
	// It rides the wire in an optional trailer (see WriteMessage): a zero
	// context adds no bytes, and readers predating the trailer ignore it,
	// so tracing is wire-compatible in both directions.
	Trace obs.SpanContext

	// Payload is an opaque byte blob (fleet telemetry reports). Like the
	// trace context it rides an optional marker-tagged trailer, so old
	// readers skip it and a nil payload adds no bytes.
	Payload []byte

	// Emitted is the in-process time the command left the planning layer
	// (MPC emit), carried through the reliability layer so the controller
	// can record emit-to-applied latency at ack time. Never serialized.
	Emitted time.Time
}

const (
	headerLen = 4 + 1 + 4 + 4 + 4 + 1 + 2 // length prefix + fields + cell count
	// MaxCells bounds route length on the wire.
	MaxCells = 1024
	// traceMarker tags the optional trace-context trailer after the cell
	// list. Old readers treat the trailer as ignorable padding; new readers
	// require the marker so untagged padding is not misread as a context.
	traceMarker = 0x54 // 'T'
	// traceTrailerLen is marker + binary SpanContext.
	traceTrailerLen = 1 + obs.SpanContextWireSize
	// payloadMarker tags the optional opaque-payload trailer, written
	// after the trace trailer (when present). Same compatibility story as
	// traceMarker: old readers treat it as ignorable padding.
	payloadMarker = 0x50 // 'P'
	// MaxTelemetryPayload bounds the opaque payload trailer: large enough
	// for a worst-case baseline fleet report, small enough that a corrupt
	// length cannot balloon controller memory.
	MaxTelemetryPayload = 1 << 18
	// payloadHeaderLen is marker + uint32 payload length.
	payloadHeaderLen = 1 + 4
	// maxFrame guards against hostile/corrupt length prefixes.
	maxFrame = headerLen + 2*MaxCells + traceTrailerLen + payloadHeaderLen + MaxTelemetryPayload
)

// ErrFrameTooLarge reports a length prefix beyond protocol limits.
var ErrFrameTooLarge = errors.New("southbound: frame too large")

// WireSize returns the message's framed size in bytes (length prefix
// included), used for signaling-byte accounting.
func (m *Message) WireSize() int {
	n := headerLen + 2*len(m.Cells)
	if !m.Trace.IsZero() {
		n += traceTrailerLen
	}
	if len(m.Payload) > 0 {
		n += payloadHeaderLen + len(m.Payload)
	}
	return n
}

// WriteMessage writes one framed message. A non-zero Trace context is
// appended as a marker-tagged trailer after the cell list; pre-trailer
// readers skip it (they only parse the declared cell count).
func WriteMessage(w io.Writer, m *Message) error {
	if len(m.Cells) > MaxCells {
		return fmt.Errorf("southbound: %d cells exceed max %d", len(m.Cells), MaxCells)
	}
	if len(m.Payload) > MaxTelemetryPayload {
		return fmt.Errorf("southbound: %d payload bytes exceed max %d", len(m.Payload), MaxTelemetryPayload)
	}
	n := headerLen - 4 + 2*len(m.Cells)
	if !m.Trace.IsZero() {
		n += traceTrailerLen
	}
	if len(m.Payload) > 0 {
		n += payloadHeaderLen + len(m.Payload)
	}
	buf := make([]byte, 4, 4+n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	buf = buf[:4+headerLen-4+2*len(m.Cells)]
	buf[4] = byte(m.Type)
	binary.BigEndian.PutUint32(buf[5:], m.SatID)
	binary.BigEndian.PutUint32(buf[9:], m.Seq)
	binary.BigEndian.PutUint32(buf[13:], m.Peer)
	if m.Up {
		buf[17] = 1
	}
	binary.BigEndian.PutUint16(buf[18:], uint16(len(m.Cells)))
	for i, c := range m.Cells {
		binary.BigEndian.PutUint16(buf[20+2*i:], c)
	}
	if !m.Trace.IsZero() {
		buf = append(buf, traceMarker)
		buf = m.Trace.AppendWire(buf)
	}
	if len(m.Payload) > 0 {
		buf = append(buf, payloadMarker)
		var plen [4]byte
		binary.BigEndian.PutUint32(plen[:], uint32(len(m.Payload)))
		buf = append(buf, plen[:]...)
		buf = append(buf, m.Payload...)
	}
	_, err := w.Write(buf)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n < headerLen-4 {
		return nil, fmt.Errorf("southbound: short frame %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	m := &Message{
		Type:  MsgType(buf[0]),
		SatID: binary.BigEndian.Uint32(buf[1:]),
		Seq:   binary.BigEndian.Uint32(buf[5:]),
		Peer:  binary.BigEndian.Uint32(buf[9:]),
		Up:    buf[13] == 1,
	}
	count := int(binary.BigEndian.Uint16(buf[14:]))
	if len(buf) < 16+2*count {
		return nil, fmt.Errorf("southbound: cell list truncated (%d cells, %d bytes)", count, len(buf))
	}
	if count > 0 {
		m.Cells = make([]uint16, count)
		for i := range m.Cells {
			m.Cells[i] = binary.BigEndian.Uint16(buf[16+2*i:])
		}
	}
	off := 16 + 2*count
	if len(buf) >= off+traceTrailerLen && buf[off] == traceMarker {
		m.Trace, _ = obs.SpanContextFromWire(buf[off+1:])
		off += traceTrailerLen
	}
	if len(buf) >= off+payloadHeaderLen && buf[off] == payloadMarker {
		plen := int(binary.BigEndian.Uint32(buf[off+1:]))
		off += payloadHeaderLen
		if plen > MaxTelemetryPayload || len(buf) < off+plen {
			return nil, fmt.Errorf("southbound: payload trailer truncated (%d bytes declared, %d present)", plen, len(buf)-off)
		}
		if plen > 0 {
			m.Payload = append([]byte(nil), buf[off:off+plen]...)
		}
	}
	return m, nil
}
