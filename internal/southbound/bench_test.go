package southbound

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

func benchRoundTrip(b *testing.B, m *Message) {
	b.Helper()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Serialization cost of a typical command without trace context — the
// pre-tracing wire format.
func BenchmarkMessageRoundTrip(b *testing.B) {
	benchRoundTrip(b, &Message{Type: MsgSetISL, SatID: 7, Seq: 42, Peer: 9, Up: true})
}

// The same command carrying the 25-byte trace trailer: the regression
// gate watches the ratio of these two.
func BenchmarkMessageRoundTripTraced(b *testing.B) {
	benchRoundTrip(b, &Message{Type: MsgSetISL, SatID: 7, Seq: 42, Peer: 9, Up: true,
		Trace: obs.SpanContext{TraceID: obs.TraceID{1, 2}, SpanID: obs.SpanID{3, 4}}})
}
