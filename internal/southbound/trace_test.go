package southbound

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestTracer builds an enabled, seeded tracer on a private clock — one
// per emulated process, so cross-"process" causality comes only from wire
// propagation, never from sharing a tracer.
func newTestTracer(seed uint64) *obs.Tracer {
	tr := &obs.Tracer{}
	tr.SeedIDs(seed)
	tr.Enable(256)
	return tr
}

// eventsByName indexes a tracer ring by span name.
func eventsByName(tr *obs.Tracer) map[string][]obs.Event {
	out := map[string][]obs.Event{}
	for _, ev := range tr.Events() {
		out[ev.Name] = append(out[ev.Name], ev)
	}
	return out
}

func TestMessageTraceRoundTrip(t *testing.T) {
	tr := newTestTracer(7)
	sc := tr.StartSpan("x").Context()

	m := &Message{Type: MsgInstallRoute, SatID: 4, Seq: 9, Cells: []uint16{1, 2, 3}, Trace: sc}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != m.WireSize() {
		t.Fatalf("frame = %d bytes, WireSize = %d", got, m.WireSize())
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != sc {
		t.Errorf("trace context: got %+v, want %+v", got.Trace, sc)
	}
	if len(got.Cells) != 3 || got.Cells[2] != 3 {
		t.Errorf("cells corrupted by trailer: %v", got.Cells)
	}

	// No context → no trailer bytes.
	bare := &Message{Type: MsgInstallRoute, SatID: 4, Seq: 9, Cells: []uint16{1, 2, 3}}
	if d := m.WireSize() - bare.WireSize(); d != traceTrailerLen {
		t.Errorf("trailer adds %d bytes, want %d", d, traceTrailerLen)
	}
	var bbuf bytes.Buffer
	if err := WriteMessage(&bbuf, bare); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadMessage(&bbuf)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Trace.IsZero() {
		t.Errorf("bare message decoded trace %+v", rb.Trace)
	}
}

// A frame whose trailing bytes lack the trace marker (e.g. future protocol
// extensions) must not be misread as a span context.
func TestTraceTrailerRequiresMarker(t *testing.T) {
	m := &Message{Type: MsgSetISL, SatID: 1, Seq: 2, Peer: 3, Up: true,
		Trace: obs.SpanContext{TraceID: obs.TraceID{1}, SpanID: obs.SpanID{2}}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[4+headerLen-4] ^= 0xFF // corrupt the marker byte (first trailer byte)
	got, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Trace.IsZero() {
		t.Errorf("unmarked trailer decoded as trace %+v", got.Trace)
	}
}

// One command, one causal tree across two tracers: the producer's root is
// continued by the controller's sb.send, the wire context is rewritten to
// the send span, the agent's apply parents to it, and the ack closes the
// loop — with emit-to-applied latency recorded.
func TestCommandTraceCausalTree(t *testing.T) {
	ctlTr := newTestTracer(1)
	agentTr := newTestTracer(2)

	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Tracer = ctlTr

	applied := make(chan obs.SpanContext, 1)
	a, err := DialAgentOptions(c.Addr(), 5, time.Second, AgentOptions{Tracer: agentTr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) { applied <- m.Trace }

	root := ctlTr.StartSpan("mpc.emit")
	m := &Message{Type: MsgSetISL, SatID: 5, Peer: 6, Up: true,
		Trace: root.Context(), Emitted: time.Now()}
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	var applyCtx obs.SpanContext
	select {
	case applyCtx = <-applied:
	case <-time.After(2 * time.Second):
		t.Fatal("command never applied")
	}
	waitUntil(t, 2*time.Second, func() bool { return c.PendingAcks() == 0 },
		"command never acked")
	root.End()

	ctlEvents := eventsByName(ctlTr)
	sends := ctlEvents["sb.send"]
	if len(sends) != 1 {
		t.Fatalf("sb.send spans = %d, want 1", len(sends))
	}
	send := sends[0]
	if send.Trace != root.Context().TraceID.String() {
		t.Errorf("sb.send trace = %s, want producer trace %s", send.Trace, root.Context().TraceID)
	}
	if send.Parent != root.Context().SpanID.String() {
		t.Errorf("sb.send parent = %s, want mpc.emit span %s", send.Parent, root.Context().SpanID)
	}
	if send.Attrs["sat"] != "5" || send.Attrs["type"] != "set-isl" || send.Attrs["seq"] == "" {
		t.Errorf("sb.send attrs = %v", send.Attrs)
	}

	// Wire context seen by the agent callback is the apply span (rewritten
	// from the send context), same trace.
	if applyCtx.TraceID != root.Context().TraceID {
		t.Errorf("callback trace = %s, want %s", applyCtx.TraceID, root.Context().TraceID)
	}
	applies := eventsByName(agentTr)["agent.apply"]
	if len(applies) != 1 {
		t.Fatalf("agent.apply spans = %d, want 1", len(applies))
	}
	if applies[0].Trace != send.Trace || applies[0].Parent != send.Span {
		t.Errorf("agent.apply trace/parent = %s/%s, want %s/%s",
			applies[0].Trace, applies[0].Parent, send.Trace, send.Span)
	}
	if applies[0].Span != applyCtx.SpanID.String() {
		t.Errorf("callback saw span %s, apply recorded %s", applyCtx.SpanID, applies[0].Span)
	}

	acks := ctlEvents["sb.ack"]
	if len(acks) != 1 {
		t.Fatalf("sb.ack spans = %d, want 1", len(acks))
	}
	if acks[0].Trace != send.Trace || acks[0].Parent != send.Span {
		t.Errorf("sb.ack trace/parent = %s/%s, want child of sb.send %s/%s",
			acks[0].Trace, acks[0].Parent, send.Trace, send.Span)
	}
	if acks[0].Attrs["attempts"] != "1" {
		t.Errorf("sb.ack attempts = %q, want 1", acks[0].Attrs["attempts"])
	}

	if n := c.reg.Histogram(MetricCmdE2E, obs.DefBuckets).Count(); n != 1 {
		t.Errorf("cmd e2e observations = %d, want 1", n)
	}
}

// Retransmissions of an unacked command produce sb.retransmit spans
// parented to the ORIGINAL sb.send — and the agent's dedup means exactly
// one agent.apply child regardless of how many copies arrived.
func TestRetransmitTraceNoDuplicateChildren(t *testing.T) {
	ctlTr := newTestTracer(3)
	agentTr := newTestTracer(4)

	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Tracer = ctlTr
	vc := newVclock()
	c.Clock = vc.Now

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	a, err := DialAgentOptions(c.Addr(), 5, time.Second, AgentOptions{Tracer: agentTr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) {
		entered <- struct{}{}
		<-release
	}

	root := ctlTr.StartSpan("mpc.emit")
	if err := c.Send(&Message{Type: MsgSetRing, SatID: 5, Cells: []uint16{4, 5}, Trace: root.Context()}); err != nil {
		t.Fatal(err)
	}
	root.End()
	<-entered // agent holds the command unacked

	for i := 0; i < c.maxRetransmits()+1; i++ {
		vc.Advance(c.retransmitInterval())
		c.SweepPending()
	}
	waitUntil(t, 2*time.Second, func() bool {
		return c.reg.Counter(MetricRetransmits).Value() == int64(c.maxRetransmits())
	}, "retransmit count never reached cap")
	close(release)
	waitUntil(t, 2*time.Second, func() bool { return c.PendingAcks() == 0 },
		"pending command never acked")

	ctlEvents := eventsByName(ctlTr)
	sends := ctlEvents["sb.send"]
	if len(sends) != 1 {
		t.Fatalf("sb.send spans = %d, want 1 (retransmits must not re-send-span)", len(sends))
	}
	retrans := ctlEvents["sb.retransmit"]
	if len(retrans) != c.maxRetransmits() {
		t.Fatalf("sb.retransmit spans = %d, want %d", len(retrans), c.maxRetransmits())
	}
	for _, r := range retrans {
		if r.Trace != sends[0].Trace || r.Parent != sends[0].Span {
			t.Errorf("retransmit span %s/%s not a child of the original send %s/%s",
				r.Trace, r.Parent, sends[0].Trace, sends[0].Span)
		}
	}
	// The agent saw 1 + maxRetransmits copies but applied (and traced) once.
	applies := eventsByName(agentTr)["agent.apply"]
	if len(applies) != 1 {
		t.Fatalf("agent.apply spans = %d, want 1 (dedup must not duplicate children)", len(applies))
	}
	if applies[0].Parent != sends[0].Span {
		t.Errorf("apply parent = %s, want %s", applies[0].Parent, sends[0].Span)
	}
}

// A resend triggered by agent re-registration (connection drop) links to
// the original command's trace: the new apply on the fresh session is a
// child of the original sb.send.
func TestReconnectResendLinksOriginalTrace(t *testing.T) {
	ctlTr := newTestTracer(5)
	agentTr := newTestTracer(6)

	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Tracer = ctlTr

	// First session: a raw socket registers sat 9, receives the command,
	// and dies without acking — the command stays pending.
	conn, err := net.DialTimeout("tcp", c.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, &Message{Type: MsgHello, SatID: 9, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil { // hello-ack
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, func() bool { return c.AgentCount() == 1 },
		"raw agent never registered")

	root := ctlTr.StartSpan("mpc.emit")
	if err := c.Send(&Message{Type: MsgSetISL, SatID: 9, Peer: 10, Up: true, Trace: root.Context()}); err != nil {
		t.Fatal(err)
	}
	root.End()
	delivered, err := ReadMessage(conn) // first copy, never acked
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Second session: a real traced agent re-registers sat 9; the
	// controller resends the pending command on the fresh connection and
	// this time it is applied and acked.
	a, err := DialAgentOptions(c.Addr(), 9, time.Second, AgentOptions{Tracer: agentTr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitUntil(t, 5*time.Second, func() bool { return c.Registrations(9) >= 2 },
		"agent never re-registered")
	waitUntil(t, 5*time.Second, func() bool { return c.PendingAcks() == 0 },
		"pending command never acked after reconnect")

	ctlEvents := eventsByName(ctlTr)
	sends := ctlEvents["sb.send"]
	if len(sends) != 1 {
		t.Fatalf("sb.send spans = %d, want 1", len(sends))
	}
	// The resend-on-reregistration is traced as a retransmit child of the
	// original send.
	retrans := ctlEvents["sb.retransmit"]
	if len(retrans) != 1 {
		t.Fatalf("sb.retransmit spans = %d, want 1 (reconnect resend)", len(retrans))
	}
	if retrans[0].Parent != sends[0].Span {
		t.Errorf("reconnect resend parent = %s, want original sb.send %s",
			retrans[0].Parent, sends[0].Span)
	}
	applies := eventsByName(agentTr)["agent.apply"]
	if len(applies) != 1 {
		t.Fatalf("agent.apply spans = %d, want 1", len(applies))
	}
	if applies[0].Trace != sends[0].Trace || applies[0].Trace != delivered.Trace.TraceID.String() {
		t.Errorf("apply after reconnect on trace %s, original command trace %s (wire %s)",
			applies[0].Trace, sends[0].Trace, delivered.Trace.TraceID)
	}
	if applies[0].Parent != sends[0].Span {
		t.Errorf("apply after reconnect parent = %s, want original sb.send %s",
			applies[0].Parent, sends[0].Span)
	}
}
