package southbound

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestTelemetryPayloadRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgTelemetry, SatID: 3, Payload: []byte{1, 0, 1, 0}},
		{Type: MsgTelemetry, SatID: 4, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		// Payload combined with cells exercises trailer offsets.
		{Type: MsgInstallRoute, SatID: 5, Seq: 9, Cells: []uint16{1, 2, 3}, Payload: []byte{7, 7}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("roundtrip: %+v != %+v", got, want)
		}
	}
}

func TestTelemetryPayloadLimits(t *testing.T) {
	var buf bytes.Buffer
	big := &Message{Type: MsgTelemetry, Payload: make([]byte, MaxTelemetryPayload+1)}
	if err := WriteMessage(&buf, big); err == nil {
		t.Error("oversized payload accepted")
	}
	// Truncated payload trailer: declared length beyond frame end.
	buf.Reset()
	if err := WriteMessage(&buf, &Message{Type: MsgTelemetry, SatID: 1, Payload: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-5] = 0xEE // corrupt the declared payload length
	if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Error("truncated payload trailer accepted")
	}
}

func TestTelemetryWireSize(t *testing.T) {
	m := &Message{Type: MsgTelemetry, SatID: 1, Payload: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	if got := m.WireSize(); got != buf.Len() {
		t.Errorf("WireSize = %d, frame is %d bytes", got, buf.Len())
	}
}

// Old readers (pre-payload-trailer) must still parse a frame carrying a
// payload trailer: they read the declared cell count and ignore trailing
// bytes. We simulate by checking the frame parses when the payload
// trailer marker is unknown to the reader — i.e. a frame whose trailer
// byte is not payloadMarker decodes to the same message minus payload.
func TestTelemetryTrailerIgnoredWithoutMarker(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgTelemetry, SatID: 2, Payload: []byte{9, 9}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Clobber the marker: the trailer becomes unrecognized padding.
	b[headerLen] = 0x00
	got, err := ReadMessage(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil || got.SatID != 2 {
		t.Errorf("unmarked trailer not ignored: %+v", got)
	}
}

func TestAgentSendTelemetryReachesController(t *testing.T) {
	c := startController(t)
	type report struct {
		satID   uint32
		payload []byte
	}
	got := make(chan report, 4)
	c.OnTelemetry = func(satID uint32, payload []byte) {
		got <- report{satID, payload}
	}
	a, err := DialAgent(c.Addr(), 42, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	want := []byte{1, 0, 5, 2, 1, 3}
	if err := a.SendTelemetry(want); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.satID != 42 || !bytes.Equal(r.payload, want) {
			t.Errorf("OnTelemetry(%d, %v), want (42, %v)", r.satID, r.payload, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("telemetry never delivered")
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Count("rx-telemetry") != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := c.Count("rx-telemetry"); n != 1 {
		t.Errorf("rx-telemetry = %d, want 1", n)
	}
}
