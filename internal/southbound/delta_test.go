package southbound

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSeenRingStableMemory is the regression test for the dedup-window
// leak: the old implementation re-sliced its FIFO from the front
// (seenQ = seenQ[1:]), so the backing array grew without bound over a
// long session. The ring buffer must keep one fixed allocation while
// still deduplicating within the window and evicting beyond it.
func TestSeenRingStableMemory(t *testing.T) {
	const window = 64
	a := &Agent{seen: map[uint32]struct{}{}, opts: AgentOptions{DedupWindow: window}}
	// Warm the ring to capacity, then remember its backing array.
	for seq := uint32(1); seq <= window; seq++ {
		if a.isDuplicate(seq) {
			t.Fatalf("fresh seq %d reported duplicate", seq)
		}
	}
	base := &a.seenRing[0]
	for seq := uint32(window + 1); seq <= 10_000; seq++ {
		if a.isDuplicate(seq) {
			t.Fatalf("fresh seq %d reported duplicate", seq)
		}
	}
	if &a.seenRing[0] != base {
		t.Error("ring backing array was reallocated")
	}
	if cap(a.seenRing) != window || len(a.seenRing) != window {
		t.Errorf("ring len/cap = %d/%d, want %d/%d", len(a.seenRing), cap(a.seenRing), window, window)
	}
	if len(a.seen) != window {
		t.Errorf("seen set holds %d entries, want %d", len(a.seen), window)
	}
	// The newest window of sequence numbers still deduplicates...
	for seq := uint32(10_000 - window + 1); seq <= 10_000; seq++ {
		if !a.isDuplicate(seq) {
			t.Fatalf("in-window seq %d not deduplicated", seq)
		}
	}
	// ...and an evicted one does not (it was forgotten, as designed).
	if a.isDuplicate(1) {
		t.Error("evicted seq 1 still remembered")
	}
}

// TestSlotDeltaCodecRoundTrip covers the delta/snapshot payload codecs,
// including empty batches and corrupt inputs.
func TestSlotDeltaCodecRoundTrip(t *testing.T) {
	ops := []SlotDeltaOp{{Peer: 9, Up: true}, {Peer: 0xFFFFFFFF, Up: false}, {Peer: 0, Up: true}}
	got, err := DecodeSlotDelta(EncodeSlotDelta(ops))
	if err != nil || !reflect.DeepEqual(got, ops) {
		t.Errorf("delta roundtrip = %v, %v; want %v", got, err, ops)
	}
	if got, err := DecodeSlotDelta(EncodeSlotDelta(nil)); err != nil || got != nil {
		t.Errorf("empty delta roundtrip = %v, %v", got, err)
	}
	peers := []uint32{3, 1, 4, 1<<31 + 5}
	if got, err := DecodeSlotSnapshot(EncodeSlotSnapshot(peers)); err != nil || !reflect.DeepEqual(got, peers) {
		t.Errorf("snapshot roundtrip = %v, %v; want %v", got, err, peers)
	}
	if got, err := DecodeSlotSnapshot(EncodeSlotSnapshot(nil)); err != nil || got != nil {
		t.Errorf("empty snapshot roundtrip = %v, %v", got, err)
	}
	for _, corrupt := range [][]byte{nil, {1, 2}, {0, 0, 0, 5, 1}, {0xFF, 0xFF, 0xFF, 0xFF}} {
		if _, err := DecodeSlotDelta(corrupt); err == nil {
			t.Errorf("DecodeSlotDelta(%v) accepted corrupt payload", corrupt)
		}
		if _, err := DecodeSlotSnapshot(corrupt); err == nil {
			t.Errorf("DecodeSlotSnapshot(%v) accepted corrupt payload", corrupt)
		}
	}
	// The payloads ride the standard message frame unchanged.
	var buf bytes.Buffer
	want := &Message{Type: MsgSlotDelta, SatID: 7, Seq: 3, Payload: EncodeSlotDelta(ops)}
	if err := WriteMessage(&buf, want); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil || !reflect.DeepEqual(m, want) {
		t.Errorf("framed delta roundtrip = %+v, %v", m, err)
	}
}

// satView is a test stand-in for an agent's ISL dataplane view, applying
// slot-delta / slot-snapshot commands the way tinyleo-sat does.
type satView struct {
	mu    sync.Mutex
	peers map[uint32]bool
}

func newSatView() *satView { return &satView{peers: map[uint32]bool{}} }

func (v *satView) apply(t *testing.T, m *Message) {
	v.mu.Lock()
	defer v.mu.Unlock()
	switch m.Type {
	case MsgSlotDelta:
		ops, err := DecodeSlotDelta(m.Payload)
		if err != nil {
			t.Errorf("decode delta: %v", err)
			return
		}
		for _, op := range ops {
			if op.Up {
				v.peers[op.Peer] = true
			} else {
				delete(v.peers, op.Peer)
			}
		}
	case MsgSlotSnapshot:
		peers, err := DecodeSlotSnapshot(m.Payload)
		if err != nil {
			t.Errorf("decode snapshot: %v", err)
			return
		}
		v.peers = map[uint32]bool{}
		for _, p := range peers {
			v.peers[p] = true
		}
	}
}

func (v *satView) snapshot() map[uint32]bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[uint32]bool, len(v.peers))
	for p := range v.peers {
		out[p] = true
	}
	return out
}

func (v *satView) waitFor(t *testing.T, peer uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		v.mu.Lock()
		ok := v.peers[peer]
		v.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("peer %d never appeared in view", peer)
}

// TestDeltaEnforcerPush exercises the basic enforcement contract: the
// first push to a satellite is a full snapshot (never-synced), later
// pushes are per-op deltas, and a no-change push to a synced satellite
// sends nothing at all.
func TestDeltaEnforcerPush(t *testing.T) {
	c := startController(t)
	e := NewDeltaEnforcer(c)
	view := newSatView()
	a, err := DialAgent(c.Addr(), 42, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) { view.apply(t, m) }

	if err := e.Push(42, []uint32{7, 3}, nil, time.Time{}, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	view.waitFor(t, 7)
	if got := view.snapshot(); !reflect.DeepEqual(got, map[uint32]bool{3: true, 7: true}) {
		t.Errorf("view after bootstrap = %v", got)
	}
	if n := c.Count("tx-slot-snapshot"); n != 1 {
		t.Errorf("bootstrap sent %d snapshots, want 1", n)
	}

	if err := e.Push(42, []uint32{9}, []uint32{3}, time.Time{}, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	view.waitFor(t, 9)
	if got := view.snapshot(); !reflect.DeepEqual(got, map[uint32]bool{7: true, 9: true}) {
		t.Errorf("view after delta = %v", got)
	}
	if n := c.Count("tx-slot-delta"); n != 1 {
		t.Errorf("sent %d deltas, want 1", n)
	}

	// A no-change push to a synced satellite is silent.
	before := c.Count("tx-slot-delta") + c.Count("tx-slot-snapshot")
	if err := e.Push(42, []uint32{9}, []uint32{3}, time.Time{}, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	if after := c.Count("tx-slot-delta") + c.Count("tx-slot-snapshot"); after != before {
		t.Errorf("no-op push sent %d messages", after-before)
	}
	if got := e.Desired(42); !reflect.DeepEqual(got, []uint32{7, 9}) {
		t.Errorf("Desired = %v", got)
	}
}

// TestDeltaResyncOnReconnect is the convergence half of the delta
// property test: a delta-enforced agent that restarts mid-horizon (fresh
// process, empty dataplane view — the worst case for composing per-op
// deltas) must converge to exactly the view a snapshot-only push
// sequence produces, because re-registration forces a full-snapshot
// re-sync before deltas resume.
func TestDeltaResyncOnReconnect(t *testing.T) {
	c := startController(t)
	e := NewDeltaEnforcer(c)

	const deltaSat, snapSat = 42, 43
	deltaView, snapView := newSatView(), newSatView()
	dial := func(sat uint32, view *satView) *Agent {
		t.Helper()
		a, err := DialAgent(c.Addr(), sat, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		a.OnCommand = func(m *Message) { view.apply(t, m) }
		return a
	}
	deltaAgent := dial(deltaSat, deltaView)
	snapAgent := dial(snapSat, snapView)
	defer func() { deltaAgent.Close(); snapAgent.Close() }()

	// waitAcked blocks until every delta/snapshot push so far has been
	// acknowledged, so a restart cannot race pending-command resends
	// against the fresh agent's OnCommand installation.
	waitAcked := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			sent := c.Count("tx-slot-delta") + c.Count("tx-slot-snapshot")
			if c.Count("rx-ack") >= sent {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatal("pushes never fully acknowledged")
	}

	rng := rand.New(rand.NewSource(3))
	expected := map[uint32]bool{}
	for slot := 0; slot < 10; slot++ {
		if slot == 5 {
			// Mid-horizon restart: the agent process dies and comes back
			// with an empty view, having missed whatever was applied
			// before. OnRegister must force the enforcer to re-sync.
			waitAcked()
			deltaAgent.Close()
			deltaView = newSatView()
			deltaAgent = dial(deltaSat, deltaView)
		}
		var add, del []uint32
		for p := range expected {
			if rng.Intn(3) == 0 {
				del = append(del, p)
			}
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			add = append(add, uint32(100+rng.Intn(20)))
		}
		for _, p := range del {
			delete(expected, p)
		}
		for _, p := range add {
			expected[p] = true
		}
		if err := e.Push(deltaSat, add, del, time.Time{}, obs.SpanContext{}); err != nil {
			t.Fatalf("slot %d: delta push: %v", slot, err)
		}
		// The reference chain receives the same batches but is forced to
		// a full snapshot every slot.
		e.MarkUnsynced(snapSat)
		if err := e.Push(snapSat, add, del, time.Time{}, obs.SpanContext{}); err != nil {
			t.Fatalf("slot %d: snapshot push: %v", slot, err)
		}
	}
	// Sentinel push: commands to one satellite are delivered in order, so
	// once the sentinel peer is visible every earlier batch has applied.
	const sentinel = 999
	if err := e.Push(deltaSat, []uint32{sentinel}, nil, time.Time{}, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	e.MarkUnsynced(snapSat)
	if err := e.Push(snapSat, []uint32{sentinel}, nil, time.Time{}, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	deltaView.waitFor(t, sentinel)
	snapView.waitFor(t, sentinel)
	expected[sentinel] = true

	dv, sv := deltaView.snapshot(), snapView.snapshot()
	if !reflect.DeepEqual(dv, sv) {
		t.Errorf("delta view %v != snapshot view %v", dv, sv)
	}
	if !reflect.DeepEqual(dv, expected) {
		t.Errorf("delta view %v != expected %v", dv, expected)
	}
	// The restart actually exercised the re-sync path: at least two
	// snapshots went to the delta satellite (bootstrap + post-restart),
	// and deltas were still used when synced.
	if n := c.Metrics().Counter(MetricDeltaResyncs).Value(); n < 12 {
		t.Errorf("resyncs = %d, want >= 12 (10 forced + bootstrap + restart)", n)
	}
	if n := c.Metrics().Counter(MetricDeltaMessages, "kind", "delta").Value(); n == 0 {
		t.Error("no slot-delta messages were ever sent")
	}
}
