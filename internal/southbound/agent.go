package southbound

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Agent-side telemetry on the process-wide default registry (disabled —
// and therefore free — unless obs.Enable() was called, e.g. by the
// tinyleo-sat -metrics-addr flag). Counters are cached per message type so
// the read loop never takes the registry lock.
var agentMetrics = struct {
	rx, tx [MsgAck + 1]*obs.Counter
}{}

func init() {
	for t := MsgHello; t <= MsgAck; t++ {
		agentMetrics.rx[t] = obs.Default().Counter(
			"tinyleo_southbound_agent_messages_total", "dir", "rx", "type", t.String())
		agentMetrics.tx[t] = obs.Default().Counter(
			"tinyleo_southbound_agent_messages_total", "dir", "tx", "type", t.String())
	}
}

// Agent is the per-satellite southbound endpoint: it registers with the
// controller, receives topology commands, acknowledges them, and reports
// failures (§5's "gRPC-based southbound API agent per satellite").
type Agent struct {
	SatID uint32

	conn net.Conn
	mu   sync.Mutex
	wg   sync.WaitGroup

	// OnCommand is invoked for every controller command (SetISL, SetRing,
	// InstallRoute). The agent auto-acks after the callback returns.
	OnCommand func(m *Message)

	helloAck chan struct{}
	closed   bool
}

// DialAgent connects and registers an agent.
func DialAgent(addr string, satID uint32, timeout time.Duration) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	a := &Agent{SatID: satID, conn: conn, helloAck: make(chan struct{})}
	a.wg.Add(1)
	go a.readLoop()
	if err := a.write(&Message{Type: MsgHello, SatID: satID, Seq: 1}); err != nil {
		conn.Close()
		return nil, err
	}
	select {
	case <-a.helloAck:
	case <-time.After(timeout):
		conn.Close()
		return nil, fmt.Errorf("southbound: hello ack timeout for sat %d", satID)
	}
	return a, nil
}

func (a *Agent) readLoop() {
	defer a.wg.Done()
	acked := false
	for {
		m, err := ReadMessage(a.conn)
		if err != nil {
			return
		}
		if int(m.Type) < len(agentMetrics.rx) && agentMetrics.rx[m.Type] != nil {
			agentMetrics.rx[m.Type].Inc()
		}
		switch m.Type {
		case MsgHelloAck:
			if !acked {
				acked = true
				close(a.helloAck)
			}
		case MsgSetISL, MsgSetRing, MsgInstallRoute:
			if a.OnCommand != nil {
				a.OnCommand(m)
			}
			_ = a.write(&Message{Type: MsgAck, SatID: a.SatID, Seq: m.Seq})
		}
	}
}

func (a *Agent) write(m *Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return net.ErrClosed
	}
	if err := WriteMessage(a.conn, m); err != nil {
		return err
	}
	if int(m.Type) < len(agentMetrics.tx) && agentMetrics.tx[m.Type] != nil {
		agentMetrics.tx[m.Type].Inc()
	}
	return nil
}

// ReportFailure notifies the controller that the ISL toward peer failed.
func (a *Agent) ReportFailure(peer uint32) error {
	return a.write(&Message{Type: MsgFailureReport, SatID: a.SatID, Peer: peer})
}

// Close disconnects the agent.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	err := a.conn.Close()
	a.wg.Wait()
	return err
}
