package southbound

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// Agent-side telemetry on the process-wide default registry (disabled —
// and therefore free — unless obs.Enable() was called, e.g. by the
// tinyleo-sat -metrics-addr flag). Counters are cached per message type so
// the read loop never takes the registry lock.
//
// MsgTelemetry is deliberately NOT metered here: a fleet report that
// bumped a counter in the very registry it just snapshotted would keep
// the registry permanently dirty — every flush would beget the next,
// and a quiesced agent's rollup could never exactly equal its local
// registry. The controller meters telemetry traffic on its side instead.
var agentMetrics = struct {
	rx, tx     [MsgSlotSnapshot + 1]*obs.Counter
	reconnects *obs.Counter
	duplicates *obs.Counter
}{}

func init() {
	for t := MsgHello; t <= MsgSlotSnapshot; t++ {
		if t == MsgTelemetry {
			continue
		}
		agentMetrics.rx[t] = obs.Default().Counter(
			"tinyleo_southbound_agent_messages_total", "dir", "rx", "type", t.String())
		agentMetrics.tx[t] = obs.Default().Counter(
			"tinyleo_southbound_agent_messages_total", "dir", "tx", "type", t.String())
	}
	agentMetrics.reconnects = obs.Default().Counter("tinyleo_southbound_agent_reconnects_total")
	agentMetrics.duplicates = obs.Default().Counter("tinyleo_southbound_agent_duplicates_total")
}

// Dedup and backoff defaults for AgentOptions zero values.
const (
	// DefaultDedupWindow is how many recent command sequence numbers an
	// agent remembers for duplicate suppression.
	DefaultDedupWindow = 4096
	// DefaultBackoffBase / DefaultBackoffMax bound the reconnect backoff.
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// AgentOptions tunes the agent's reliability behaviour.
type AgentOptions struct {
	// Reconnect enables automatic re-dial (with exponential backoff and
	// jitter) when the controller connection drops. Off by default: a
	// plain DialAgent session ends when its connection does.
	Reconnect bool
	// BackoffBase and BackoffMax bound the reconnect backoff (zero = the
	// Default* constants). The delay before attempt n is
	// min(BackoffBase·2ⁿ, BackoffMax) · (1 + Jitter·U[0,1)).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter is the uniform random fraction added on top of the backoff
	// (default 0.5; negative disables).
	Jitter float64
	// Seed seeds the jitter RNG (0 = a fixed default, keeping campaigns
	// deterministic).
	Seed int64
	// DedupWindow sizes the duplicate-suppression ring (0 = the default).
	DedupWindow int
	// OnReconnect observes successful reconnections (attempt = dials
	// needed, starting at 1).
	OnReconnect func(attempt int)
	// Tracer records agent.apply spans continuing the trace context
	// carried by incoming commands (nil = the process-wide obs.Trace()).
	// Duplicate (retransmitted, already-applied) commands get no span:
	// the causal tree has exactly one apply per command.
	Tracer *obs.Tracer
}

// Agent is the per-satellite southbound endpoint: it registers with the
// controller, receives topology commands, acknowledges them, and reports
// failures (§5's "gRPC-based southbound API agent per satellite").
//
// Duplicate commands (the controller retransmits until acked) are
// acknowledged but not re-applied: OnCommand runs at most once per
// sequence number within the dedup window.
type Agent struct {
	SatID uint32

	addr    string
	timeout time.Duration
	opts    AgentOptions

	//tinyleo:guardedby mu
	conn net.Conn
	mu   sync.Mutex
	wg   sync.WaitGroup
	stop chan struct{}

	// rng drives backoff jitter; only the read loop touches it.
	rng *rand.Rand
	// seen / seenRing / seenHead implement the bounded dedup window; only
	// the read loop touches them. seenRing is a fixed-size ring buffer —
	// a slice that is appended to and re-sliced from the front grows its
	// backing array without bound over a long session.
	seen     map[uint32]struct{}
	seenRing []uint32
	seenHead int

	// OnCommand is invoked for every controller command (SetISL, SetRing,
	// InstallRoute). The agent auto-acks after the callback returns.
	OnCommand func(m *Message)

	helloAck chan struct{}
	acked    bool // helloAck already closed (read loop only)
	//tinyleo:guardedby mu
	closed bool

	//tinyleo:guardedby mu
	reconnects int64 // successful reconnections
}

// DialAgent connects and registers an agent with default options (no
// automatic reconnect).
func DialAgent(addr string, satID uint32, timeout time.Duration) (*Agent, error) {
	return DialAgentOptions(addr, satID, timeout, AgentOptions{})
}

// DialAgentOptions connects and registers an agent with explicit
// reliability options.
func DialAgentOptions(addr string, satID uint32, timeout time.Duration, opts AgentOptions) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = int64(satID) + 1
	}
	a := &Agent{
		SatID: satID, addr: addr, timeout: timeout, opts: opts,
		conn: conn, stop: make(chan struct{}),
		rng:  rand.New(rand.NewSource(seed)),
		seen: map[uint32]struct{}{},

		helloAck: make(chan struct{}),
	}
	a.wg.Add(1)
	go a.readLoop()
	if err := a.write(&Message{Type: MsgHello, SatID: satID, Seq: 1}); err != nil {
		a.Close()
		return nil, err
	}
	select {
	case <-a.helloAck:
	case <-time.After(timeout):
		a.Close()
		return nil, fmt.Errorf("southbound: hello ack timeout for sat %d", satID)
	}
	return a, nil
}

func (a *Agent) tracer() *obs.Tracer {
	if a.opts.Tracer != nil {
		return a.opts.Tracer
	}
	return obs.Trace()
}

func (a *Agent) dedupWindow() int {
	if a.opts.DedupWindow > 0 {
		return a.opts.DedupWindow
	}
	return DefaultDedupWindow
}

// isDuplicate records seq in the dedup window and reports whether it was
// already there. Read loop only. The window is a fixed ring buffer
// allocated once: when full, the oldest remembered sequence number is
// evicted in place, so memory stays constant no matter how many commands
// a session sees.
func (a *Agent) isDuplicate(seq uint32) bool {
	if _, ok := a.seen[seq]; ok {
		return true
	}
	a.seen[seq] = struct{}{}
	if a.seenRing == nil {
		a.seenRing = make([]uint32, 0, a.dedupWindow())
	}
	if len(a.seenRing) < cap(a.seenRing) {
		a.seenRing = append(a.seenRing, seq)
		return false
	}
	delete(a.seen, a.seenRing[a.seenHead])
	a.seenRing[a.seenHead] = seq
	a.seenHead = (a.seenHead + 1) % len(a.seenRing)
	return false
}

// readLoop is the agent's per-command receive loop.
//
//tinyleo:hotpath
func (a *Agent) readLoop() {
	defer a.wg.Done()
	for {
		a.mu.Lock()
		conn := a.conn
		a.mu.Unlock()
		m, err := ReadMessage(conn)
		if err != nil {
			if !a.reconnect() {
				return
			}
			continue
		}
		if int(m.Type) < len(agentMetrics.rx) && agentMetrics.rx[m.Type] != nil {
			agentMetrics.rx[m.Type].Inc()
		}
		switch m.Type {
		case MsgHelloAck:
			if !a.acked {
				a.acked = true
				close(a.helloAck)
			}
		case MsgSetISL, MsgSetRing, MsgInstallRoute, MsgSlotDelta, MsgSlotSnapshot:
			if a.isDuplicate(m.Seq) {
				// Retransmission of a command already applied: re-ack so
				// the controller stops resending, but do not re-apply.
				agentMetrics.duplicates.Inc()
				if flightrec.Enabled() {
					flightrec.Emit(flightrec.CompSouthbound, "duplicate_command",
						"sat", strconv.FormatUint(uint64(a.SatID), 10),
						"seq", strconv.FormatUint(uint64(m.Seq), 10))
				}
				_ = a.write(&Message{Type: MsgAck, SatID: a.SatID, Seq: m.Seq})
				continue
			}
			// The apply span continues the controller's sb.send trace and
			// covers the OnCommand callback; m.Trace is rewritten to it so
			// callback-side work (dataplane install) parents to the apply.
			if tr := a.tracer(); tr.Enabled() && !m.Trace.IsZero() {
				sp := tr.StartSpanCtx(m.Trace, "agent.apply",
					"sat", strconv.FormatUint(uint64(a.SatID), 10),
					"seq", strconv.FormatUint(uint64(m.Seq), 10),
					"type", m.Type.String())
				m.Trace = sp.Context()
				if a.OnCommand != nil {
					a.OnCommand(m)
				}
				sp.End()
			} else if a.OnCommand != nil {
				a.OnCommand(m)
			}
			_ = a.write(&Message{Type: MsgAck, SatID: a.SatID, Seq: m.Seq})
		}
	}
}

// reconnect re-dials the controller with exponential backoff and jitter
// until it succeeds or the agent is closed. Returns false when the read
// loop should exit (reconnect disabled or agent closed).
func (a *Agent) reconnect() bool {
	if !a.opts.Reconnect {
		return false
	}
	base := a.opts.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := a.opts.BackoffMax
	if max <= 0 {
		max = DefaultBackoffMax
	}
	jitter := a.opts.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	for attempt := 0; ; attempt++ {
		delay := base << uint(attempt)
		if delay > max || delay <= 0 {
			delay = max
		}
		if jitter > 0 {
			delay = time.Duration(float64(delay) * (1 + jitter*a.rng.Float64()))
		}
		select {
		case <-a.stop:
			return false
		case <-time.After(delay):
		}
		conn, err := net.DialTimeout("tcp", a.addr, a.timeout)
		if err != nil {
			continue
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return false
		}
		a.conn = conn
		a.reconnects++
		a.mu.Unlock()
		if err := a.write(&Message{Type: MsgHello, SatID: a.SatID, Seq: 1}); err != nil {
			continue
		}
		agentMetrics.reconnects.Inc()
		if flightrec.Enabled() {
			flightrec.Emit(flightrec.CompSouthbound, "agent_reconnect",
				"sat", strconv.FormatUint(uint64(a.SatID), 10),
				"attempt", strconv.Itoa(attempt+1))
		}
		if a.opts.OnReconnect != nil {
			a.opts.OnReconnect(attempt + 1)
		}
		return true
	}
}

// Reconnects returns how many times the agent re-established its
// controller session.
func (a *Agent) Reconnects() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconnects
}

func (a *Agent) write(m *Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return net.ErrClosed
	}
	if err := WriteMessage(a.conn, m); err != nil {
		return err
	}
	if int(m.Type) < len(agentMetrics.tx) && agentMetrics.tx[m.Type] != nil {
		agentMetrics.tx[m.Type].Inc()
	}
	return nil
}

// SendTelemetry pushes one opaque fleet-telemetry report (an
// internal/obs/fleet wire payload) to the controller. Telemetry rides
// the same session as control traffic but is fire-and-forget: no ack,
// no retransmit — a lost report is healed by the encoder's next
// baseline. See the agentMetrics doc for why it is not self-metered.
func (a *Agent) SendTelemetry(payload []byte) error {
	return a.write(&Message{Type: MsgTelemetry, SatID: a.SatID, Payload: payload})
}

// ReportFailure notifies the controller that the ISL toward peer failed.
func (a *Agent) ReportFailure(peer uint32) error {
	return a.write(&Message{Type: MsgFailureReport, SatID: a.SatID, Peer: peer})
}

// DropConn severs the agent's transport without closing the agent — a
// chaos/test hook for southbound connection failures. With Reconnect
// enabled the agent re-dials with backoff; without it the read loop ends.
func (a *Agent) DropConn() {
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	conn.Close()
}

// Close disconnects the agent.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	close(a.stop)
	conn := a.conn
	a.mu.Unlock()
	err := conn.Close()
	a.wg.Wait()
	return err
}
