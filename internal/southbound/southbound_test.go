package southbound

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgHello, SatID: 7, Seq: 1},
		{Type: MsgSetISL, SatID: 7, Seq: 2, Peer: 9, Up: true},
		{Type: MsgSetISL, SatID: 7, Seq: 3, Peer: 9, Up: false},
		{Type: MsgSetRing, SatID: 7, Seq: 4, Peer: 11},
		{Type: MsgInstallRoute, SatID: 7, Seq: 5, Cells: []uint16{10, 20, 30, 4049}},
		{Type: MsgFailureReport, SatID: 7, Peer: 0xFFFFFFFF},
		{Type: MsgAck, SatID: 7, Seq: 5},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("roundtrip: %+v != %+v", got, want)
		}
	}
}

func TestMessageLimits(t *testing.T) {
	big := &Message{Type: MsgInstallRoute, Cells: make([]uint16, MaxCells+1)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, big); err == nil {
		t.Error("oversized route accepted")
	}
	// Hostile length prefix.
	var hostile bytes.Buffer
	hostile.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&hostile); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("hostile frame: %v", err)
	}
	// Truncated stream.
	var trunc bytes.Buffer
	WriteMessage(&trunc, &Message{Type: MsgHello, SatID: 1})
	b := trunc.Bytes()[:trunc.Len()-3]
	if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgSetISL.String() != "set-isl" || MsgType(200).String() == "" {
		t.Error("String broken")
	}
}

func startController(t *testing.T) *Controller {
	t.Helper()
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestAgentRegistration(t *testing.T) {
	c := startController(t)
	var agents []*Agent
	for i := uint32(1); i <= 3; i++ {
		a, err := DialAgent(c.Addr(), i, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	if err := c.WaitForAgents(3, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Count("rx-hello") != 3 || c.Count("tx-hello-ack") != 3 {
		t.Errorf("counters: rx-hello=%d", c.Count("rx-hello"))
	}
}

func TestCommandDeliveryAndAck(t *testing.T) {
	c := startController(t)
	var mu sync.Mutex
	var received []*Message
	a, err := DialAgent(c.Addr(), 42, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) {
		mu.Lock()
		received = append(received, m)
		mu.Unlock()
	}
	acked := make(chan uint32, 8)
	c.OnAck = func(m *Message) { acked <- m.Seq }

	cmd := &Message{Type: MsgSetISL, SatID: 42, Peer: 7, Up: true}
	if err := c.Send(cmd); err != nil {
		t.Fatal(err)
	}
	select {
	case seq := <-acked:
		if seq != cmd.Seq {
			t.Errorf("ack seq %d, want %d", seq, cmd.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no ack")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 1 || received[0].Peer != 7 || !received[0].Up {
		t.Errorf("received = %+v", received)
	}
}

func TestSendToUnknownAgent(t *testing.T) {
	c := startController(t)
	err := c.Send(&Message{Type: MsgSetISL, SatID: 999})
	if !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("err = %v", err)
	}
}

func TestFailureReportTriggersRepair(t *testing.T) {
	// The Figure 17d loop over real sockets: agent reports a failure, the
	// controller's repair hook pushes replacement commands, the agent
	// receives them; the round trip completes in network + compute time.
	c := startController(t)
	repaired := make(chan *Message, 4)
	c.OnFailure = func(report *Message) []*Message {
		// Repair: tell the reporting satellite to re-link to peer+1.
		return []*Message{{
			Type: MsgSetISL, SatID: report.SatID, Peer: report.Peer + 1, Up: true,
		}}
	}
	a, err := DialAgent(c.Addr(), 5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) { repaired <- m }

	start := time.Now()
	if err := a.ReportFailure(77); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-repaired:
		if m.Type != MsgSetISL || m.Peer != 78 || !m.Up {
			t.Errorf("repair = %+v", m)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("repair took %v", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no repair command")
	}
	if c.Count("rx-failure-report") != 1 {
		t.Errorf("counters: rx-hello=%d", c.Count("rx-hello"))
	}
}

func TestInstallRouteCarriesCells(t *testing.T) {
	c := startController(t)
	got := make(chan *Message, 1)
	a, err := DialAgent(c.Addr(), 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) { got <- m }
	route := []uint16{100, 200, 300}
	if err := c.Send(&Message{Type: MsgInstallRoute, SatID: 2, Cells: route}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if !reflect.DeepEqual(m.Cells, route) {
			t.Errorf("cells = %v", m.Cells)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("route not delivered")
	}
}

func TestAgentDisconnectDeregisters(t *testing.T) {
	c := startController(t)
	a, err := DialAgent(c.Addr(), 9, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, time.Second); err != nil {
		t.Fatal(err)
	}
	a.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && c.AgentCount() != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if c.AgentCount() != 0 {
		t.Error("agent not deregistered after close")
	}
}

func TestControllerCloseIdempotent(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
