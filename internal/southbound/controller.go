package southbound

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// Telemetry series names exported by a Controller's registry.
const (
	// MetricMessages counts southbound messages by {dir, type} labels.
	MetricMessages = "tinyleo_southbound_messages_total"
	// MetricBytes counts wire bytes by {dir} label.
	MetricBytes = "tinyleo_southbound_bytes_total"
	// MetricConnectedAgents gauges currently registered agents.
	MetricConnectedAgents = "tinyleo_southbound_connected_agents"
	// MetricAckRTT is the command→ack round-trip histogram (seconds).
	MetricAckRTT = "tinyleo_southbound_ack_rtt_seconds"
	// MetricAckTimeouts counts commands unacknowledged past ackTimeout.
	MetricAckTimeouts = "tinyleo_southbound_ack_timeouts_total"
)

// maxPendingAcks bounds the seq→send-time map used for ack RTT
// measurement; beyond it new sends are simply not RTT-tracked.
const maxPendingAcks = 4096

// ackTimeout is how long a command may sit unacknowledged before the
// controller flags it: an ack_timeout flight-recorder event plus the
// tinyleo_southbound_ack_timeouts_total counter. Pending entries are
// swept lazily on Send.
const ackTimeout = 5 * time.Second

// Controller is the terrestrial MPC endpoint of the southbound API: it
// accepts agent registrations and pushes topology commands.
type Controller struct {
	ln net.Listener

	mu        sync.Mutex
	agents    map[uint32]net.Conn
	seq       uint32
	closed    bool
	pending   map[uint32]time.Time // command seq → send time (ack RTT)
	lastSweep time.Time            // last ack-timeout sweep

	// OnFailure, if set, is invoked when an agent reports a failure and
	// returns the repair commands to push (addressed by Message.SatID).
	OnFailure func(report *Message) []*Message
	// OnAck observes acknowledgements.
	OnAck func(m *Message)

	// reg is the controller's always-enabled telemetry registry (the
	// Figure 17 signaling accounting, plus wire bytes, the connected-agent
	// gauge, and the ack RTT histogram). Read it via Count/TotalMessages/
	// Metrics; serve it via obs.Serve.
	reg         *obs.Registry
	rx, tx      [MsgAck + 1]*obs.Counter // indexed by MsgType
	rxBytes     *obs.Counter
	txBytes     *obs.Counter
	connected   *obs.Gauge
	ackRTT      *obs.Histogram
	ackTimeouts *obs.Counter

	wg sync.WaitGroup
}

// ListenController starts a controller on addr ("127.0.0.1:0" for tests).
func ListenController(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry(true)
	c := &Controller{
		ln:          ln,
		agents:      map[uint32]net.Conn{},
		pending:     map[uint32]time.Time{},
		reg:         reg,
		rxBytes:     reg.Counter(MetricBytes, "dir", "rx"),
		txBytes:     reg.Counter(MetricBytes, "dir", "tx"),
		connected:   reg.Gauge(MetricConnectedAgents),
		ackRTT:      reg.Histogram(MetricAckRTT, obs.DefBuckets),
		ackTimeouts: reg.Counter(MetricAckTimeouts),
	}
	for t := MsgHello; t <= MsgAck; t++ {
		c.rx[t] = reg.Counter(MetricMessages, "dir", "rx", "type", t.String())
		c.tx[t] = reg.Counter(MetricMessages, "dir", "tx", "type", t.String())
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Metrics returns the controller's telemetry registry, suitable for
// merging into an obs.Serve endpoint.
func (c *Controller) Metrics() *obs.Registry { return c.reg }

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Controller) serve(conn net.Conn) {
	defer c.wg.Done()
	var satID uint32
	registered := false
	defer func() {
		conn.Close()
		if registered {
			c.mu.Lock()
			if c.agents[satID] == conn {
				delete(c.agents, satID)
				c.connected.Set(float64(len(c.agents)))
				if flightrec.Enabled() {
					flightrec.Emit(flightrec.CompSouthbound, "agent_disconnect",
						"sat", strconv.FormatUint(uint64(satID), 10))
				}
			}
			c.mu.Unlock()
		}
	}()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return
		}
		c.countRx(m)
		switch m.Type {
		case MsgHello:
			satID = m.SatID
			c.mu.Lock()
			c.agents[satID] = conn
			c.connected.Set(float64(len(c.agents)))
			c.mu.Unlock()
			registered = true
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "agent_connect",
					"sat", strconv.FormatUint(uint64(satID), 10),
					"addr", conn.RemoteAddr().String())
			}
			ack := &Message{Type: MsgHelloAck, SatID: satID, Seq: m.Seq}
			if err := WriteMessage(conn, ack); err != nil {
				return
			}
			c.countTx(ack)
		case MsgFailureReport:
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "failure_report",
					"sat", strconv.FormatUint(uint64(m.SatID), 10),
					"peer", strconv.FormatUint(uint64(m.Peer), 10))
			}
			var cmds []*Message
			if c.OnFailure != nil {
				cmds = c.OnFailure(m)
			}
			for _, cmd := range cmds {
				if err := c.Send(cmd); err != nil {
					continue
				}
			}
		case MsgAck:
			c.mu.Lock()
			if sentAt, ok := c.pending[m.Seq]; ok {
				delete(c.pending, m.Seq)
				c.ackRTT.ObserveDuration(time.Since(sentAt))
			}
			c.mu.Unlock()
			if c.OnAck != nil {
				c.OnAck(m)
			}
		}
	}
}

func (c *Controller) countRx(m *Message) {
	if int(m.Type) < len(c.rx) && c.rx[m.Type] != nil {
		c.rx[m.Type].Inc()
	} else {
		c.reg.Counter(MetricMessages, "dir", "rx", "type", m.Type.String()).Inc()
	}
	c.rxBytes.Add(int64(m.WireSize()))
}

func (c *Controller) countTx(m *Message) {
	if int(m.Type) < len(c.tx) && c.tx[m.Type] != nil {
		c.tx[m.Type].Inc()
	} else {
		c.reg.Counter(MetricMessages, "dir", "tx", "type", m.Type.String()).Inc()
	}
	c.txBytes.Add(int64(m.WireSize()))
}

// Count returns the number of messages recorded under key: "rx-" or "tx-"
// followed by the message type name (e.g. "rx-failure-report",
// "tx-set-isl"), matching the telemetry series' {dir, type} labels.
func (c *Controller) Count(key string) int64 {
	dir, typ, ok := strings.Cut(key, "-")
	if !ok {
		return 0
	}
	return c.reg.Counter(MetricMessages, "dir", dir, "type", typ).Value()
}

// TotalMessages returns the total southbound messages sent and received.
func (c *Controller) TotalMessages() int64 {
	return obs.SumCounters(MetricMessages, c.reg)
}

// ErrUnknownAgent reports a command addressed to an unregistered satellite.
var ErrUnknownAgent = errors.New("southbound: unknown agent")

// Send pushes a command to the agent identified by m.SatID, assigning a
// sequence number if unset.
func (c *Controller) Send(m *Message) error {
	c.mu.Lock()
	c.sweepAckTimeoutsLocked(time.Now())
	conn, ok := c.agents[m.SatID]
	if ok {
		if m.Seq == 0 {
			c.seq++
			m.Seq = c.seq
		}
		if len(c.pending) < maxPendingAcks {
			c.pending[m.Seq] = time.Now()
		}
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownAgent, m.SatID)
	}
	if err := WriteMessage(conn, m); err != nil {
		return err
	}
	c.countTx(m)
	return nil
}

// sweepAckTimeoutsLocked drops pending-ack entries older than ackTimeout,
// counting each as a lost command. Called with c.mu held; rate-limited to
// one scan per ackTimeout/2 so Send stays O(1) amortized.
func (c *Controller) sweepAckTimeoutsLocked(now time.Time) {
	if len(c.pending) == 0 || now.Sub(c.lastSweep) < ackTimeout/2 {
		return
	}
	c.lastSweep = now
	for seq, sentAt := range c.pending {
		if age := now.Sub(sentAt); age > ackTimeout {
			delete(c.pending, seq)
			c.ackTimeouts.Inc()
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "ack_timeout",
					"seq", strconv.FormatUint(uint64(seq), 10),
					"age_ms", strconv.FormatInt(age.Milliseconds(), 10))
			}
		}
	}
}

// AgentCount returns the number of registered agents.
func (c *Controller) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// WaitForAgents blocks until n agents registered or the timeout elapsed.
func (c *Controller) WaitForAgents(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.AgentCount() >= n {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("southbound: only %d/%d agents after %v", c.AgentCount(), n, timeout)
}

// Close stops the controller and disconnects all agents.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.agents))
	for _, conn := range c.agents {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return err
}
