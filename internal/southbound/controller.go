package southbound

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// Telemetry series names exported by a Controller's registry.
const (
	// MetricMessages counts southbound messages by {dir, type} labels.
	MetricMessages = "tinyleo_southbound_messages_total"
	// MetricBytes counts wire bytes by {dir} label.
	MetricBytes = "tinyleo_southbound_bytes_total"
	// MetricConnectedAgents gauges currently registered agents.
	MetricConnectedAgents = "tinyleo_southbound_connected_agents"
	// MetricAckRTT is the command→ack round-trip histogram (seconds).
	MetricAckRTT = "tinyleo_southbound_ack_rtt_seconds"
	// MetricAckTimeouts counts commands abandoned unacknowledged after
	// AckTimeout (retransmissions included).
	MetricAckTimeouts = "tinyleo_southbound_ack_timeouts_total"
	// MetricRetransmits counts command retransmissions.
	MetricRetransmits = "tinyleo_southbound_retransmits_total"
	// MetricUntracked counts commands sent while the pending-ack table was
	// full: they are written to the wire but get no timeout, retransmit,
	// or RTT accounting.
	MetricUntracked = "tinyleo_southbound_untracked_total"
	// MetricCmdE2E is the emit-to-applied latency histogram (seconds):
	// from Message.Emitted (set by the planning layer when the command was
	// produced) to the acknowledgement that confirms the agent applied it.
	// Unlike MetricAckRTT this includes queueing, retransmissions, and
	// reconnect resends — the latency the paper's reconfiguration deadline
	// actually cares about.
	MetricCmdE2E = "tinyleo_southbound_cmd_e2e_seconds"
)

// maxPendingAcks bounds the seq→pending-command map used for ack RTT
// measurement and retransmission; beyond it new sends are written but not
// tracked (counted by MetricUntracked and an untracked_command event).
const maxPendingAcks = 4096

// Reliability defaults, used when the corresponding Controller field is
// zero.
const (
	// DefaultAckTimeout is how long a command may sit unacknowledged
	// (across retransmissions) before the controller abandons it and marks
	// the satellite unreachable.
	DefaultAckTimeout = 5 * time.Second
	// DefaultRetransmitInterval is the at-least-once resend cadence for
	// unacknowledged commands.
	DefaultRetransmitInterval = time.Second
	// DefaultMaxRetransmits bounds resends per command (beyond the
	// original transmission).
	DefaultMaxRetransmits = 3
)

// pendingCmd tracks one unacknowledged command for RTT measurement and
// at-least-once retransmission.
type pendingCmd struct {
	msg       *Message
	firstSent time.Time // original transmission (ack RTT epoch)
	lastSent  time.Time // latest (re)transmission
	attempts  int       // transmissions so far (1 = original send)
	// sc is the sb.send span of the original transmission: retransmit and
	// ack spans parent to it so a command's whole reliability history is
	// one causal subtree, however many resends it took.
	sc obs.SpanContext
}

// resend is a retransmission decided under c.mu, written after unlock.
type resend struct {
	conn net.Conn
	msg  *Message
	sc   obs.SpanContext // original send span (retransmit span parent)
}

// Controller is the terrestrial MPC endpoint of the southbound API: it
// accepts agent registrations and pushes topology commands.
//
// Reliability: commands are tracked until acknowledged. Unacked commands
// are retransmitted every RetransmitInterval up to MaxRetransmits times
// (the agent deduplicates by Seq, so delivery is at-least-once with
// idempotent application), then abandoned after AckTimeout with the
// satellite marked unreachable (TakeUnreachable / OnCommandFailed) so the
// control loop can keep compiling and route around it instead of erroring.
// Pending commands for a satellite are also resent immediately when it
// re-registers after a connection drop.
type Controller struct {
	ln net.Listener

	// AckTimeout, RetransmitInterval, and MaxRetransmits tune the
	// reliability layer (zero = the Default* constants). Set before the
	// first Send.
	AckTimeout         time.Duration
	RetransmitInterval time.Duration
	MaxRetransmits     int
	// Clock, when non-nil, replaces time.Now for all pending-ack
	// accounting (tests and the chaos engine drive retransmission
	// deterministically through it). Set before any agent connects.
	Clock func() time.Time
	// Tracer records sb.send/sb.retransmit/sb.ack spans for each tracked
	// command (nil = the process-wide obs.Trace()). The sb.send span's
	// context replaces Message.Trace on the wire, so agent-side apply
	// spans parent to the controller's send — one causal tree per command
	// across both processes. Set before the first Send.
	Tracer *obs.Tracer

	mu sync.Mutex
	//tinyleo:guardedby mu
	agents map[uint32]net.Conn
	//tinyleo:guardedby mu
	hellos map[uint32]uint64 // satID → registration count
	//tinyleo:guardedby mu
	unreachable map[uint32]bool // satIDs with abandoned commands
	//tinyleo:guardedby mu
	seq uint32
	//tinyleo:guardedby mu
	closed bool
	//tinyleo:guardedby mu
	pending map[uint32]*pendingCmd // command seq → pending state
	//tinyleo:guardedby mu
	lastSweep time.Time // last ack-timeout sweep

	// wmu serializes frame writes so a retransmission and a Send to the
	// same agent cannot interleave bytes on the connection.
	wmu sync.Mutex

	// OnFailure, if set, is invoked when an agent reports a failure and
	// returns the repair commands to push (addressed by Message.SatID).
	OnFailure func(report *Message) []*Message
	// OnAck observes acknowledgements.
	OnAck func(m *Message)
	// OnCommandFailed observes commands abandoned after AckTimeout (called
	// without internal locks held).
	OnCommandFailed func(m *Message)
	// OnTelemetry receives fleet telemetry payloads pushed by agents
	// (typically (*fleet.Aggregator).HandleReport). Called from the
	// connection's read loop without internal locks held; nil drops the
	// reports. Set before agents connect.
	OnTelemetry func(satID uint32, payload []byte)
	// OnRegister observes agent registrations (every MsgHello, including
	// reconnects). The delta enforcer uses it to force a full-snapshot
	// re-sync for a reconnected agent, whose dataplane view may have
	// missed deltas. Called from the connection's read loop without
	// internal locks held; set before agents connect.
	OnRegister func(satID uint32)

	// reg is the controller's always-enabled telemetry registry (the
	// Figure 17 signaling accounting, plus wire bytes, the connected-agent
	// gauge, and the ack RTT histogram). Read it via Count/TotalMessages/
	// Metrics; serve it via obs.Serve.
	reg         *obs.Registry
	rx, tx      [MsgSlotSnapshot + 1]*obs.Counter // indexed by MsgType
	rxBytes     *obs.Counter
	txBytes     *obs.Counter
	connected   *obs.Gauge
	ackRTT      *obs.Histogram
	cmdE2E      *obs.Histogram
	ackTimeouts *obs.Counter
	retransmits *obs.Counter
	untracked   *obs.Counter

	wg sync.WaitGroup
}

// ListenController starts a controller on addr ("127.0.0.1:0" for tests).
func ListenController(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry(true)
	c := &Controller{
		ln:          ln,
		agents:      map[uint32]net.Conn{},
		hellos:      map[uint32]uint64{},
		unreachable: map[uint32]bool{},
		pending:     map[uint32]*pendingCmd{},
		reg:         reg,
		rxBytes:     reg.Counter(MetricBytes, "dir", "rx"),
		txBytes:     reg.Counter(MetricBytes, "dir", "tx"),
		connected:   reg.Gauge(MetricConnectedAgents),
		ackRTT:      reg.Histogram(MetricAckRTT, obs.DefBuckets),
		cmdE2E:      reg.Histogram(MetricCmdE2E, obs.DefBuckets),
		ackTimeouts: reg.Counter(MetricAckTimeouts),
		retransmits: reg.Counter(MetricRetransmits),
		untracked:   reg.Counter(MetricUntracked),
	}
	for t := MsgHello; t <= MsgSlotSnapshot; t++ {
		c.rx[t] = reg.Counter(MetricMessages, "dir", "rx", "type", t.String())
		c.tx[t] = reg.Counter(MetricMessages, "dir", "tx", "type", t.String())
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Metrics returns the controller's telemetry registry, suitable for
// merging into an obs.Serve endpoint.
func (c *Controller) Metrics() *obs.Registry { return c.reg }

func (c *Controller) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

func (c *Controller) tracer() *obs.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return obs.Trace()
}

func (c *Controller) ackTimeout() time.Duration {
	if c.AckTimeout > 0 {
		return c.AckTimeout
	}
	return DefaultAckTimeout
}

func (c *Controller) retransmitInterval() time.Duration {
	if c.RetransmitInterval > 0 {
		return c.RetransmitInterval
	}
	return DefaultRetransmitInterval
}

func (c *Controller) maxRetransmits() int {
	if c.MaxRetransmits > 0 {
		return c.MaxRetransmits
	}
	return DefaultMaxRetransmits
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serve(conn)
	}
}

// serve is the per-connection message loop.
//
//tinyleo:hotpath
func (c *Controller) serve(conn net.Conn) {
	defer c.wg.Done()
	var satID uint32
	registered := false
	defer func() {
		conn.Close()
		if registered {
			c.mu.Lock()
			if c.agents[satID] == conn {
				delete(c.agents, satID)
				c.connected.Set(float64(len(c.agents)))
				if flightrec.Enabled() {
					flightrec.Emit(flightrec.CompSouthbound, "agent_disconnect",
						"sat", strconv.FormatUint(uint64(satID), 10))
				}
			}
			c.mu.Unlock()
		}
	}()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return
		}
		c.countRx(m)
		switch m.Type {
		case MsgHello:
			satID = m.SatID
			c.mu.Lock()
			c.agents[satID] = conn
			c.hellos[satID]++
			delete(c.unreachable, satID)
			c.connected.Set(float64(len(c.agents)))
			// At-least-once across reconnects: everything still pending
			// for this satellite goes out again on the fresh connection.
			var resends []resend
			now := c.now()
			// Sorted by seq: the agent sees retransmits in send order.
			for _, seq := range c.pendingSeqsLocked() {
				p := c.pending[seq]
				if p.msg.SatID != satID {
					continue
				}
				p.attempts++
				p.lastSent = now
				c.retransmits.Inc()
				resends = append(resends, resend{conn, p.msg, p.sc})
			}
			c.mu.Unlock()
			registered = true
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "agent_connect",
					"sat", strconv.FormatUint(uint64(satID), 10),
					"addr", conn.RemoteAddr().String())
			}
			ack := &Message{Type: MsgHelloAck, SatID: satID, Seq: m.Seq}
			if err := c.writeTo(conn, ack); err != nil {
				return
			}
			c.countTx(ack)
			c.deliverResends(resends)
			if c.OnRegister != nil {
				c.OnRegister(satID)
			}
		case MsgFailureReport:
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "failure_report",
					"sat", strconv.FormatUint(uint64(m.SatID), 10),
					"peer", strconv.FormatUint(uint64(m.Peer), 10))
			}
			var cmds []*Message
			if c.OnFailure != nil {
				cmds = c.OnFailure(m)
			}
			for _, cmd := range cmds {
				if err := c.Send(cmd); err != nil {
					continue
				}
			}
		case MsgAck:
			now := c.now()
			c.mu.Lock()
			p, tracked := c.pending[m.Seq]
			if tracked {
				delete(c.pending, m.Seq)
				c.ackRTT.ObserveDuration(now.Sub(p.firstSent))
				if !p.msg.Emitted.IsZero() {
					c.cmdE2E.ObserveDuration(now.Sub(p.msg.Emitted))
				}
			}
			delete(c.unreachable, m.SatID)
			c.mu.Unlock()
			if tracked {
				if tr := c.tracer(); tr.Enabled() && !p.sc.IsZero() {
					sp := tr.StartSpanCtx(p.sc, "sb.ack",
						"sat", strconv.FormatUint(uint64(m.SatID), 10),
						"seq", strconv.FormatUint(uint64(m.Seq), 10),
						"attempts", strconv.Itoa(p.attempts))
					sp.End()
				}
				if flightrec.Enabled() {
					attrs := []string{
						"sat", strconv.FormatUint(uint64(m.SatID), 10),
						"seq", strconv.FormatUint(uint64(m.Seq), 10),
						"attempts", strconv.Itoa(p.attempts),
						"rtt_us", strconv.FormatInt(now.Sub(p.firstSent).Microseconds(), 10),
					}
					if !p.msg.Emitted.IsZero() {
						attrs = append(attrs, "e2e_us", strconv.FormatInt(now.Sub(p.msg.Emitted).Microseconds(), 10))
					}
					flightrec.Emit(flightrec.CompSouthbound, "command_applied", attrs...)
				}
			}
			if c.OnAck != nil {
				c.OnAck(m)
			}
		case MsgTelemetry:
			if c.OnTelemetry != nil {
				c.OnTelemetry(m.SatID, m.Payload)
			}
		}
	}
}

// writeTo writes one frame under the controller-wide write lock, so
// concurrent Sends and retransmissions never interleave bytes.
func (c *Controller) writeTo(conn net.Conn, m *Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteMessage(conn, m)
}

// deliverResends writes retransmissions decided during a sweep (or a
// re-registration) and counts them as tx traffic. Write errors are
// ignored: the pending entry stays tracked and either a later sweep or
// the agent's next reconnect retries it, or AckTimeout abandons it.
//
//tinyleo:hotpath
func (c *Controller) deliverResends(resends []resend) {
	for _, r := range resends {
		if err := c.writeTo(r.conn, r.msg); err != nil {
			continue
		}
		c.countTx(r.msg)
		if tr := c.tracer(); tr.Enabled() && !r.sc.IsZero() {
			sp := tr.StartSpanCtx(r.sc, "sb.retransmit",
				"sat", strconv.FormatUint(uint64(r.msg.SatID), 10),
				"seq", strconv.FormatUint(uint64(r.msg.Seq), 10))
			sp.End()
		}
		if flightrec.Enabled() {
			flightrec.Emit(flightrec.CompSouthbound, "retransmit",
				"sat", strconv.FormatUint(uint64(r.msg.SatID), 10),
				"seq", strconv.FormatUint(uint64(r.msg.Seq), 10))
		}
	}
}

// notifyFailed reports abandoned commands to OnCommandFailed outside any
// lock.
func (c *Controller) notifyFailed(failed []*Message) {
	if c.OnCommandFailed == nil {
		return
	}
	for _, m := range failed {
		c.OnCommandFailed(m)
	}
}

// countRx accounts one received message on the pre-resolved per-type
// counters; unknown types fall back to a label lookup.
//
//tinyleo:hotpath
func (c *Controller) countRx(m *Message) {
	if int(m.Type) < len(c.rx) && c.rx[m.Type] != nil {
		c.rx[m.Type].Inc()
	} else {
		//lint:tinyleo-ignore fallback for unknown types only; every current MsgType hits the pre-resolved array above
		c.reg.Counter(MetricMessages, "dir", "rx", "type", m.Type.String()).Inc()
	}
	c.rxBytes.Add(int64(m.WireSize()))
}

// countTx accounts one transmitted message; see countRx.
//
//tinyleo:hotpath
func (c *Controller) countTx(m *Message) {
	if int(m.Type) < len(c.tx) && c.tx[m.Type] != nil {
		c.tx[m.Type].Inc()
	} else {
		//lint:tinyleo-ignore fallback for unknown types only; every current MsgType hits the pre-resolved array above
		c.reg.Counter(MetricMessages, "dir", "tx", "type", m.Type.String()).Inc()
	}
	c.txBytes.Add(int64(m.WireSize()))
}

// Count returns the number of messages recorded under key: "rx-" or "tx-"
// followed by the message type name (e.g. "rx-failure-report",
// "tx-set-isl"), matching the telemetry series' {dir, type} labels.
func (c *Controller) Count(key string) int64 {
	dir, typ, ok := strings.Cut(key, "-")
	if !ok {
		return 0
	}
	return c.reg.Counter(MetricMessages, "dir", dir, "type", typ).Value()
}

// TotalMessages returns the total southbound messages sent and received.
func (c *Controller) TotalMessages() int64 {
	return obs.SumCounters(MetricMessages, c.reg)
}

// ErrUnknownAgent reports a command addressed to an unregistered satellite.
var ErrUnknownAgent = errors.New("southbound: unknown agent")

// Send pushes a command to the agent identified by m.SatID, assigning a
// sequence number if unset. The command is tracked for acknowledgement:
// if no ack arrives it is retransmitted (see the Controller doc) and
// eventually abandoned. A synchronous write error is returned once and
// the command is NOT left in the pending table (it would otherwise be
// double-reported as an ack timeout later).
//
//tinyleo:hotpath
func (c *Controller) Send(m *Message) error {
	now := c.now()
	// The send span continues the producer's trace (m.Trace, e.g. an
	// mpc.emit root) and replaces it on the wire, so the agent's apply
	// span parents to this send. With tracing disabled the message keeps
	// whatever context the producer set.
	var sendSpan obs.Span
	if tr := c.tracer(); tr.Enabled() {
		sendSpan = tr.StartSpanCtx(m.Trace, "sb.send")
		if sc := sendSpan.Context(); !sc.IsZero() {
			m.Trace = sc
		}
	}
	c.mu.Lock()
	resends, failed := c.sweepAckTimeoutsLocked(now)
	conn, ok := c.agents[m.SatID]
	tracked := false
	if ok {
		if m.Seq == 0 {
			c.seq++
			m.Seq = c.seq
		}
		if len(c.pending) < maxPendingAcks {
			c.pending[m.Seq] = &pendingCmd{msg: m, firstSent: now, lastSent: now, attempts: 1, sc: m.Trace}
			tracked = true
		} else {
			c.untracked.Inc()
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "untracked_command",
					"sat", strconv.FormatUint(uint64(m.SatID), 10),
					"seq", strconv.FormatUint(uint64(m.Seq), 10),
					"pending", strconv.Itoa(maxPendingAcks))
			}
		}
	}
	c.mu.Unlock()
	if !sendSpan.Context().IsZero() {
		sendSpan.Attr("sat", strconv.FormatUint(uint64(m.SatID), 10))
		sendSpan.Attr("seq", strconv.FormatUint(uint64(m.Seq), 10))
		sendSpan.Attr("type", m.Type.String())
	}
	c.deliverResends(resends)
	c.notifyFailed(failed)
	if !ok {
		sendSpan.Attr("err", "unknown-agent")
		sendSpan.End()
		return fmt.Errorf("%w: %d", ErrUnknownAgent, m.SatID)
	}
	if err := c.writeTo(conn, m); err != nil {
		if tracked {
			c.mu.Lock()
			delete(c.pending, m.Seq)
			c.mu.Unlock()
		}
		sendSpan.Attr("err", "write")
		sendSpan.End()
		return err
	}
	c.countTx(m)
	sendSpan.End()
	return nil
}

// SweepPending runs one pending-ack sweep immediately (subject to the
// rate limit): retransmitting overdue commands and abandoning those past
// AckTimeout. Send sweeps lazily; callers with long idle gaps (or a
// virtual clock) use this to drive the reliability layer explicitly.
func (c *Controller) SweepPending() {
	now := c.now()
	c.mu.Lock()
	resends, failed := c.sweepAckTimeoutsLocked(now)
	c.mu.Unlock()
	c.deliverResends(resends)
	c.notifyFailed(failed)
}

// sweepAckTimeoutsLocked scans the pending table: commands unacked past
// RetransmitInterval are scheduled for retransmission (returned for the
// caller to write after unlock), and commands older than AckTimeout are
// abandoned — counted as ack timeouts, flagged in the unreachable set,
// and returned for OnCommandFailed. Called with c.mu held; rate-limited
// to one scan per RetransmitInterval/2 so Send stays O(1) amortized.
//
//tinyleo:hotpath
func (c *Controller) sweepAckTimeoutsLocked(now time.Time) ([]resend, []*Message) {
	if len(c.pending) == 0 || now.Sub(c.lastSweep) < c.retransmitInterval()/2 {
		return nil, nil
	}
	c.lastSweep = now
	var resends []resend
	var failed []*Message
	// Sorted by seq so retransmit order, failure order, and the emitted
	// ack_timeout events are reproducible run-to-run.
	for _, seq := range c.pendingSeqsLocked() {
		p := c.pending[seq]
		if age := now.Sub(p.firstSent); age > c.ackTimeout() {
			delete(c.pending, seq)
			c.ackTimeouts.Inc()
			c.unreachable[p.msg.SatID] = true
			failed = append(failed, p.msg)
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompSouthbound, "ack_timeout",
					"sat", strconv.FormatUint(uint64(p.msg.SatID), 10),
					"seq", strconv.FormatUint(uint64(seq), 10),
					"attempts", strconv.Itoa(p.attempts),
					"age_ms", strconv.FormatInt(age.Milliseconds(), 10))
			}
			continue
		}
		if now.Sub(p.lastSent) < c.retransmitInterval() || p.attempts > c.maxRetransmits() {
			continue
		}
		conn, ok := c.agents[p.msg.SatID]
		if !ok {
			continue // disconnected; re-registration resends
		}
		p.attempts++
		p.lastSent = now
		c.retransmits.Inc()
		resends = append(resends, resend{conn, p.msg, p.sc})
	}
	return resends, failed
}

// pendingSeqsLocked returns the pending command sequence numbers in
// ascending order. Retransmit paths iterate this instead of the pending
// map directly: resend order is wire-visible, so map iteration order
// would leak into agent-observed behavior. Called with c.mu held.
func (c *Controller) pendingSeqsLocked() []uint32 {
	seqs := make([]uint32, 0, len(c.pending))
	for seq := range c.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// PendingAcks returns the number of commands awaiting acknowledgement.
func (c *Controller) PendingAcks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Registrations returns how many times satID has registered (hello
// count), distinguishing a reconnect from the original session.
func (c *Controller) Registrations(satID uint32) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hellos[satID]
}

// TakeUnreachable drains and returns (sorted) the satellites whose
// commands were abandoned since the last call and that have not
// re-registered or acked since: the set the control loop should mark as
// failed toward the MPC instead of erroring.
func (c *Controller) TakeUnreachable() []uint32 {
	c.mu.Lock()
	out := make([]uint32, 0, len(c.unreachable))
	for id := range c.unreachable {
		out = append(out, id)
	}
	c.unreachable = map[uint32]bool{}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AgentCount returns the number of registered agents.
func (c *Controller) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// WaitForAgents blocks until n agents registered or the timeout elapsed.
func (c *Controller) WaitForAgents(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.AgentCount() >= n {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("southbound: only %d/%d agents after %v", c.AgentCount(), n, timeout)
}

// Close stops the controller and disconnects all agents.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.agents))
	for _, conn := range c.agents {
		//lint:tinyleo-ignore every connection is closed unconditionally; close order is not observable
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return err
}
