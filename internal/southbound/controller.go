package southbound

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Controller is the terrestrial MPC endpoint of the southbound API: it
// accepts agent registrations and pushes topology commands.
type Controller struct {
	ln net.Listener

	mu     sync.Mutex
	agents map[uint32]net.Conn
	seq    uint32
	closed bool

	// OnFailure, if set, is invoked when an agent reports a failure and
	// returns the repair commands to push (addressed by Message.SatID).
	OnFailure func(report *Message) []*Message
	// OnAck observes acknowledgements.
	OnAck func(m *Message)

	// counters tracks sent/received message counts by type (the Figure 17
	// signaling accounting); read it via Count/TotalMessages.
	counters *metrics.Counter

	wg sync.WaitGroup
}

// ListenController starts a controller on addr ("127.0.0.1:0" for tests).
func ListenController(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		ln:       ln,
		agents:   map[uint32]net.Conn{},
		counters: metrics.NewCounter(),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Controller) serve(conn net.Conn) {
	defer c.wg.Done()
	var satID uint32
	registered := false
	defer func() {
		conn.Close()
		if registered {
			c.mu.Lock()
			if c.agents[satID] == conn {
				delete(c.agents, satID)
			}
			c.mu.Unlock()
		}
	}()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return
		}
		c.count("rx-" + m.Type.String())
		switch m.Type {
		case MsgHello:
			satID = m.SatID
			c.mu.Lock()
			c.agents[satID] = conn
			c.mu.Unlock()
			registered = true
			ack := &Message{Type: MsgHelloAck, SatID: satID, Seq: m.Seq}
			if err := WriteMessage(conn, ack); err != nil {
				return
			}
			c.count("tx-" + ack.Type.String())
		case MsgFailureReport:
			var cmds []*Message
			if c.OnFailure != nil {
				cmds = c.OnFailure(m)
			}
			for _, cmd := range cmds {
				if err := c.Send(cmd); err != nil {
					continue
				}
			}
		case MsgAck:
			if c.OnAck != nil {
				c.OnAck(m)
			}
		}
	}
}

func (c *Controller) count(key string) {
	c.mu.Lock()
	c.counters.Add(key, 1)
	c.mu.Unlock()
}

// Count returns the number of messages recorded under key (e.g.
// "rx-failure-report", "tx-set-isl").
func (c *Controller) Count(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters.Get(key)
}

// TotalMessages returns the total southbound messages sent and received.
func (c *Controller) TotalMessages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters.Total()
}

// ErrUnknownAgent reports a command addressed to an unregistered satellite.
var ErrUnknownAgent = errors.New("southbound: unknown agent")

// Send pushes a command to the agent identified by m.SatID, assigning a
// sequence number if unset.
func (c *Controller) Send(m *Message) error {
	c.mu.Lock()
	conn, ok := c.agents[m.SatID]
	if ok && m.Seq == 0 {
		c.seq++
		m.Seq = c.seq
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownAgent, m.SatID)
	}
	if err := WriteMessage(conn, m); err != nil {
		return err
	}
	c.count("tx-" + m.Type.String())
	return nil
}

// AgentCount returns the number of registered agents.
func (c *Controller) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// WaitForAgents blocks until n agents registered or the timeout elapsed.
func (c *Controller) WaitForAgents(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.AgentCount() >= n {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("southbound: only %d/%d agents after %v", c.AgentCount(), n, timeout)
}

// Close stops the controller and disconnects all agents.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.agents))
	for _, conn := range c.agents {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return err
}
