package southbound

import (
	"net"
	"sync"
	"testing"
	"time"
)

// vclock is an injectable wall clock for deterministic reliability tests.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock { return &vclock{t: time.Unix(1000, 0)} }

func (v *vclock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

func (v *vclock) Advance(d time.Duration) {
	v.mu.Lock()
	v.t = v.t.Add(d)
	v.mu.Unlock()
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// Regression for the double-report bug: a command whose synchronous write
// fails used to stay in the pending-ack table and be re-reported as an
// ack timeout later. The write error must clear the entry.
func TestSendWriteErrorClearsPending(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now

	// Register a fake agent whose connection is already closed so the
	// write fails synchronously.
	client, server := net.Pipe()
	client.Close()
	server.Close()
	c.mu.Lock()
	c.agents[7] = server
	c.mu.Unlock()

	if err := c.Send(&Message{Type: MsgSetISL, SatID: 7, Peer: 8, Up: true}); err == nil {
		t.Fatal("Send on closed conn succeeded")
	}
	if n := c.PendingAcks(); n != 0 {
		t.Fatalf("pending after failed write = %d, want 0", n)
	}
	// The failed command must not resurface as an ack timeout.
	var failed []*Message
	c.OnCommandFailed = func(m *Message) { failed = append(failed, m) }
	vc.Advance(c.ackTimeout() + time.Second)
	c.SweepPending()
	if len(failed) != 0 {
		t.Fatalf("failed write double-reported as ack timeout: %v", failed)
	}
	if v := c.reg.Counter(MetricAckTimeouts).Value(); v != 0 {
		t.Fatalf("ack_timeouts = %d, want 0", v)
	}
}

// Regression for the silent-untracked bug: commands sent while the
// pending table is full are written but get no ack accounting; that loss
// of tracking must be counted and no longer silent.
func TestUntrackedCommandCounted(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now

	applied := make(chan *Message, 1)
	a, err := DialAgent(c.Addr(), 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) { applied <- m }

	// Fill the pending table to its cap (white-box).
	c.mu.Lock()
	for i := 0; i < maxPendingAcks; i++ {
		seq := uint32(1_000_000 + i)
		c.pending[seq] = &pendingCmd{
			msg:       &Message{Type: MsgSetISL, SatID: 99, Seq: seq},
			firstSent: vc.Now(), lastSent: vc.Now(), attempts: 1,
		}
	}
	c.mu.Unlock()

	if err := c.Send(&Message{Type: MsgInstallRoute, SatID: 3, Cells: []uint16{1}}); err != nil {
		t.Fatal(err)
	}
	if v := c.reg.Counter(MetricUntracked).Value(); v != 1 {
		t.Fatalf("untracked = %d, want 1", v)
	}
	// The command itself is still delivered.
	select {
	case <-applied:
	case <-time.After(2 * time.Second):
		t.Fatal("untracked command never delivered")
	}
	if n := c.PendingAcks(); n != maxPendingAcks {
		t.Fatalf("pending = %d, want %d (untracked command must not be tracked)", n, maxPendingAcks)
	}
}

// At-least-once delivery: unacked commands are retransmitted up to
// MaxRetransmits, the agent deduplicates by Seq, and the command is
// applied exactly once.
func TestRetransmitAndAgentDedup(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var mu sync.Mutex
	appliedCount := 0
	a, err := DialAgent(c.Addr(), 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) {
		mu.Lock()
		appliedCount++
		mu.Unlock()
		entered <- struct{}{}
		<-release
	}

	if err := c.Send(&Message{Type: MsgSetRing, SatID: 5, Cells: []uint16{4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	<-entered // agent is holding the command unacked

	// Three sweeps, one retransmit interval apart → MaxRetransmits
	// resends; the fourth sweep must not resend (cap reached).
	for i := 0; i < c.maxRetransmits()+1; i++ {
		vc.Advance(c.retransmitInterval())
		c.SweepPending()
	}
	waitUntil(t, 2*time.Second, func() bool {
		return c.reg.Counter(MetricRetransmits).Value() == int64(c.maxRetransmits())
	}, "retransmit count never reached cap")
	close(release) // agent acks the original, then dedup-acks the copies

	waitUntil(t, 2*time.Second, func() bool { return c.PendingAcks() == 0 },
		"pending command never acked")
	mu.Lock()
	defer mu.Unlock()
	if appliedCount != 1 {
		t.Fatalf("command applied %d times, want 1 (dedup)", appliedCount)
	}
}

// Agent reconnect with backoff plus resend-on-reregistration: a command
// in flight across a connection drop is retransmitted on the new session
// and still applied exactly once.
func TestAgentReconnectResendsPending(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var mu sync.Mutex
	appliedCount := 0
	a, err := DialAgentOptions(c.Addr(), 9, time.Second, AgentOptions{
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.OnCommand = func(m *Message) {
		mu.Lock()
		appliedCount++
		mu.Unlock()
		entered <- struct{}{}
		<-release
	}

	if err := c.Send(&Message{Type: MsgSetISL, SatID: 9, Peer: 10, Up: true}); err != nil {
		t.Fatal(err)
	}
	<-entered
	a.DropConn() // sever the session while the command is unacked
	close(release)

	waitUntil(t, 5*time.Second, func() bool { return c.Registrations(9) >= 2 },
		"agent never re-registered")
	waitUntil(t, 5*time.Second, func() bool { return c.PendingAcks() == 0 },
		"pending command never acked after reconnect")
	if a.Reconnects() < 1 {
		t.Fatalf("agent reconnects = %d, want ≥1", a.Reconnects())
	}
	mu.Lock()
	defer mu.Unlock()
	if appliedCount != 1 {
		t.Fatalf("command applied %d times across reconnect, want 1", appliedCount)
	}
}

// Graceful degradation: a command abandoned after AckTimeout marks the
// satellite unreachable (for the control loop to hand to MPC repair as a
// failed node) and fires OnCommandFailed, instead of erroring forever.
func TestAckTimeoutMarksUnreachable(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now
	var mu sync.Mutex
	var failed []*Message
	c.OnCommandFailed = func(m *Message) {
		mu.Lock()
		failed = append(failed, m)
		mu.Unlock()
	}

	// A raw agent that registers but never acks commands.
	conn, err := net.DialTimeout("tcp", c.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Message{Type: MsgHello, SatID: 11, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil { // hello-ack
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, func() bool { return c.AgentCount() == 1 },
		"agent never registered")

	if err := c.Send(&Message{Type: MsgInstallRoute, SatID: 11, Cells: []uint16{2}}); err != nil {
		t.Fatal(err)
	}
	vc.Advance(c.ackTimeout() + time.Second)
	c.SweepPending()

	mu.Lock()
	nFailed := len(failed)
	mu.Unlock()
	if nFailed != 1 {
		t.Fatalf("OnCommandFailed fired %d times, want 1", nFailed)
	}
	if v := c.reg.Counter(MetricAckTimeouts).Value(); v != 1 {
		t.Fatalf("ack_timeouts = %d, want 1", v)
	}
	if got := c.TakeUnreachable(); len(got) != 1 || got[0] != 11 {
		t.Fatalf("TakeUnreachable = %v, want [11]", got)
	}
	if got := c.TakeUnreachable(); len(got) != 0 {
		t.Fatalf("TakeUnreachable not drained: %v", got)
	}
	if n := c.PendingAcks(); n != 0 {
		t.Fatalf("pending after abandon = %d, want 0", n)
	}
}

// The pending-ack sweep is rate-limited to one scan per
// RetransmitInterval/2, and lastSweep only advances when a scan runs.
func TestSweepRateLimit(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now

	// One pending entry for a disconnected sat: scans run but never
	// retransmit, so lastSweep is the only observable.
	c.mu.Lock()
	c.pending[99] = &pendingCmd{
		msg:       &Message{Type: MsgSetISL, SatID: 1, Seq: 99},
		firstSent: vc.Now(), lastSent: vc.Now(), attempts: 1,
	}
	c.mu.Unlock()
	lastSweep := func() time.Time {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.lastSweep
	}

	c.SweepPending()
	t0 := lastSweep()
	if !t0.Equal(vc.Now()) {
		t.Fatalf("first sweep did not run: lastSweep=%v", t0)
	}

	half := c.retransmitInterval() / 2
	vc.Advance(half - time.Millisecond)
	c.SweepPending()
	if got := lastSweep(); !got.Equal(t0) {
		t.Fatalf("sweep ran inside the rate-limit window: lastSweep advanced to %v", got)
	}

	vc.Advance(time.Millisecond) // exactly interval/2 since t0
	c.SweepPending()
	if got := lastSweep(); !got.Equal(vc.Now()) {
		t.Fatalf("sweep did not run at interval/2: lastSweep=%v now=%v", got, vc.Now())
	}

	// An empty pending table short-circuits without touching lastSweep.
	c.mu.Lock()
	delete(c.pending, 99)
	c.mu.Unlock()
	t1 := lastSweep()
	vc.Advance(10 * c.retransmitInterval())
	c.SweepPending()
	if got := lastSweep(); !got.Equal(t1) {
		t.Fatalf("empty sweep advanced lastSweep to %v", got)
	}
}
