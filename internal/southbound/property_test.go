package southbound

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestPropertyMessageRoundTrip: any well-formed message survives the wire.
func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, sat, seq, peer uint32, up bool, nCells uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{
			Type:  MsgType(typ%7 + 1),
			SatID: sat, Seq: seq, Peer: peer, Up: up,
		}
		n := int(nCells) % 64
		if n > 0 {
			m.Cells = make([]uint16, n)
			for i := range m.Cells {
				m.Cells[i] = uint16(rng.Intn(1 << 16))
			}
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReaderNeverPanics: arbitrary bytes must never panic the
// frame reader (it may error).
func TestPropertyReaderNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ReadMessage(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFrameStreamResync: consecutive messages on one stream decode
// in order with nothing left over.
func TestPropertyFrameStreamResync(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%10 + 1
		var buf bytes.Buffer
		var msgs []*Message
		for i := 0; i < n; i++ {
			m := &Message{
				Type:  MsgType(rng.Intn(7) + 1),
				SatID: rng.Uint32(), Seq: rng.Uint32(), Peer: rng.Uint32(),
				Up: rng.Intn(2) == 0,
			}
			if rng.Intn(3) == 0 {
				m.Cells = []uint16{uint16(rng.Intn(4050))}
			}
			msgs = append(msgs, m)
			if err := WriteMessage(&buf, m); err != nil {
				return false
			}
		}
		for _, want := range msgs {
			got, err := ReadMessage(&buf)
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return buf.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
