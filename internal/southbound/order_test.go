package southbound

import (
	"net"
	"testing"
	"time"
)

// Regression for retransmission order following pending-map iteration
// order: sweeps and re-registration resends are wire-visible, so they
// must walk pending commands in ascending seq order on every run.
func TestSweepRetransmitsInSeqOrder(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now

	// A connected-but-silent agent: commands go out, acks never come back.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	c.mu.Lock()
	c.agents[9] = server
	now := vc.Now()
	const n = 16
	for seq := uint32(1); seq <= n; seq++ {
		c.pending[seq] = &pendingCmd{
			msg:       &Message{Type: MsgSetISL, SatID: 9, Seq: seq},
			firstSent: now, lastSent: now, attempts: 1,
		}
	}
	c.mu.Unlock()

	for run := 0; run < 5; run++ {
		vc.Advance(c.retransmitInterval() + time.Millisecond)
		c.mu.Lock()
		resends, failed := c.sweepAckTimeoutsLocked(vc.Now())
		// Undo attempt and age accounting so every run retransmits the
		// full set instead of aging out past AckTimeout.
		for _, p := range c.pending {
			p.attempts = 1
			p.firstSent = vc.Now()
		}
		c.mu.Unlock()
		if len(failed) != 0 {
			t.Fatalf("run %d: unexpected failures %v", run, failed)
		}
		if len(resends) != n {
			t.Fatalf("run %d: %d resends, want %d", run, len(resends), n)
		}
		for i, r := range resends {
			if r.msg.Seq != uint32(i+1) {
				t.Fatalf("run %d: resend %d has seq %d, want %d", run, i, r.msg.Seq, i+1)
			}
		}
	}
}

// Abandoned commands must also surface in seq order: OnCommandFailed
// callbacks and ack_timeout flight events are part of observable output.
func TestAckTimeoutFailuresInSeqOrder(t *testing.T) {
	c, err := ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vc := newVclock()
	c.Clock = vc.Now

	c.mu.Lock()
	now := vc.Now()
	const n = 16
	for seq := uint32(1); seq <= n; seq++ {
		c.pending[seq] = &pendingCmd{
			msg:       &Message{Type: MsgSetISL, SatID: 9, Seq: seq},
			firstSent: now, lastSent: now, attempts: 1,
		}
	}
	c.mu.Unlock()

	vc.Advance(c.ackTimeout() + time.Millisecond)
	c.mu.Lock()
	resends, failed := c.sweepAckTimeoutsLocked(vc.Now())
	c.mu.Unlock()
	if len(resends) != 0 {
		t.Fatalf("unexpected resends %v", resends)
	}
	if len(failed) != n {
		t.Fatalf("%d failures, want %d", len(failed), n)
	}
	for i, m := range failed {
		if m.Seq != uint32(i+1) {
			t.Fatalf("failure %d has seq %d, want %d", i, m.Seq, i+1)
		}
	}
}
