package southbound

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// The connected-agent gauge must track registration, disconnect, and
// reconnect, and the per-type message counters must record the protocol
// traffic of each phase.
func TestObsGaugeTracksDisconnectReconnect(t *testing.T) {
	c := startController(t)
	reg := c.Metrics()
	gauge := reg.Gauge(MetricConnectedAgents)

	a, err := DialAgent(c.Addr(), 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := gauge.Value(); got != 1 {
		t.Errorf("gauge after register = %v, want 1", got)
	}

	// Disconnect: gauge falls back to 0.
	a.Close()
	waitFor(t, "deregistration", func() bool { return gauge.Value() == 0 })

	// Reconnect with the same satellite ID: gauge returns to 1 and the
	// hello/hello-ack counters record both handshakes.
	a2, err := DialAgent(c.Addr(), 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	waitFor(t, "re-registration", func() bool { return gauge.Value() == 1 })

	rxHello := reg.Counter(MetricMessages, "dir", "rx", "type", "hello").Value()
	txAck := reg.Counter(MetricMessages, "dir", "tx", "type", "hello-ack").Value()
	if rxHello != 2 || txAck != 2 {
		t.Errorf("handshake counters: rx-hello=%d tx-hello-ack=%d, want 2/2", rxHello, txAck)
	}
	if bytes := reg.Counter(MetricBytes, "dir", "rx").Value(); bytes <= 0 {
		t.Errorf("rx bytes = %d, want > 0", bytes)
	}
}

// A command/ack round trip must move the tx/rx counters and feed the ack
// RTT histogram.
func TestObsCountersAndAckRTT(t *testing.T) {
	c := startController(t)
	reg := c.Metrics()
	a, err := DialAgent(c.Addr(), 8, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	acked := make(chan struct{}, 4)
	c.OnAck = func(*Message) { acked <- struct{}{} }

	const sends = 3
	for i := 0; i < sends; i++ {
		if err := c.Send(&Message{Type: MsgSetISL, SatID: 8, Peer: uint32(i), Up: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		select {
		case <-acked:
		case <-time.After(2 * time.Second):
			t.Fatal("no ack")
		}
	}

	if got := reg.Counter(MetricMessages, "dir", "tx", "type", "set-isl").Value(); got != sends {
		t.Errorf("tx set-isl = %d, want %d", got, sends)
	}
	if got := reg.Counter(MetricMessages, "dir", "rx", "type", "ack").Value(); got != sends {
		t.Errorf("rx ack = %d, want %d", got, sends)
	}
	rtt := reg.Histogram(MetricAckRTT, obs.DefBuckets)
	if rtt.Count() != sends {
		t.Errorf("ack RTT observations = %d, want %d", rtt.Count(), sends)
	}
	if rtt.Sum() <= 0 {
		t.Errorf("ack RTT sum = %v, want > 0", rtt.Sum())
	}

	// The legacy string-keyed accessors stay consistent with the registry.
	if c.Count("tx-set-isl") != sends {
		t.Errorf("Count(tx-set-isl) = %d", c.Count("tx-set-isl"))
	}
	if c.TotalMessages() != obs.SumCounters(MetricMessages, reg) {
		t.Error("TotalMessages diverges from registry sum")
	}

	// And the controller registry exports as Prometheus text.
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tinyleo_southbound_messages_total{dir="tx",type="set-isl"} 3`,
		`tinyleo_southbound_connected_agents 1`,
		`tinyleo_southbound_ack_rtt_seconds_count 3`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, sb.String())
		}
	}
}

// The agent-side counters live on the process-wide default registry; a
// handshake from a dialed agent must move them even while other tests run
// (counters only grow, so assert the delta).
func TestObsAgentSideCounters(t *testing.T) {
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)

	txHello := reg.Counter("tinyleo_southbound_agent_messages_total", "dir", "tx", "type", "hello")
	rxAck := reg.Counter("tinyleo_southbound_agent_messages_total", "dir", "rx", "type", "hello-ack")
	txBefore, rxBefore := txHello.Value(), rxAck.Value()

	c := startController(t)
	a, err := DialAgent(c.Addr(), 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "agent hello counters", func() bool {
		return txHello.Value() == txBefore+1 && rxAck.Value() == rxBefore+1
	})
}
