package southbound

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Telemetry series names exported by a DeltaEnforcer on its controller's
// registry.
const (
	// MetricDeltaMessages counts delta-enforcement pushes by {kind} label:
	// "delta" (per-op batch) or "snapshot" (full re-sync).
	MetricDeltaMessages = "tinyleo_southbound_delta_messages_total"
	// MetricDeltaOps counts individual link add/remove operations carried
	// in slot-delta batches.
	MetricDeltaOps = "tinyleo_southbound_delta_ops_total"
	// MetricDeltaBytes counts payload bytes of slot-delta and
	// slot-snapshot messages (the per-slot signaling volume the delta path
	// exists to shrink).
	MetricDeltaBytes = "tinyleo_southbound_delta_bytes_total"
	// MetricDeltaResyncs counts full-snapshot re-syncs forced by agent
	// reconnects, abandoned commands, or first contact.
	MetricDeltaResyncs = "tinyleo_southbound_delta_resyncs_total"
)

// SlotDeltaOp is one ISL change within a slot-delta batch: establish
// (Up) or tear down the link toward Peer.
type SlotDeltaOp struct {
	Peer uint32
	Up   bool
}

// slotDeltaOpLen is the encoded size of one op: up/down byte + peer.
const slotDeltaOpLen = 1 + 4

// EncodeSlotDelta serializes a slot-delta op batch for the Payload
// trailer of a MsgSlotDelta message: a uint32 op count followed by one
// up/down byte and a uint32 peer per op, in batch order.
func EncodeSlotDelta(ops []SlotDeltaOp) []byte {
	buf := make([]byte, 4, 4+slotDeltaOpLen*len(ops))
	binary.BigEndian.PutUint32(buf, uint32(len(ops)))
	for _, op := range ops {
		b := byte(0)
		if op.Up {
			b = 1
		}
		var peer [4]byte
		binary.BigEndian.PutUint32(peer[:], op.Peer)
		buf = append(buf, b)
		buf = append(buf, peer[:]...)
	}
	return buf
}

// DecodeSlotDelta parses a MsgSlotDelta payload (see EncodeSlotDelta).
func DecodeSlotDelta(p []byte) ([]SlotDeltaOp, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("southbound: slot-delta payload too short (%d bytes)", len(p))
	}
	count := int(binary.BigEndian.Uint32(p))
	if len(p) != 4+slotDeltaOpLen*count {
		return nil, fmt.Errorf("southbound: slot-delta payload declares %d ops, has %d bytes", count, len(p))
	}
	if count == 0 {
		return nil, nil
	}
	ops := make([]SlotDeltaOp, count)
	for i := range ops {
		off := 4 + slotDeltaOpLen*i
		ops[i] = SlotDeltaOp{Up: p[off] == 1, Peer: binary.BigEndian.Uint32(p[off+1:])}
	}
	return ops, nil
}

// EncodeSlotSnapshot serializes a satellite's full desired ISL peer set
// for the Payload trailer of a MsgSlotSnapshot message: a uint32 count
// followed by the peers in the given order.
func EncodeSlotSnapshot(peers []uint32) []byte {
	buf := make([]byte, 4, 4+4*len(peers))
	binary.BigEndian.PutUint32(buf, uint32(len(peers)))
	for _, peer := range peers {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], peer)
		buf = append(buf, b[:]...)
	}
	return buf
}

// DecodeSlotSnapshot parses a MsgSlotSnapshot payload (see
// EncodeSlotSnapshot).
func DecodeSlotSnapshot(p []byte) ([]uint32, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("southbound: slot-snapshot payload too short (%d bytes)", len(p))
	}
	count := int(binary.BigEndian.Uint32(p))
	if len(p) != 4+4*count {
		return nil, fmt.Errorf("southbound: slot-snapshot payload declares %d peers, has %d bytes", count, len(p))
	}
	if count == 0 {
		return nil, nil
	}
	peers := make([]uint32, count)
	for i := range peers {
		peers[i] = binary.BigEndian.Uint32(p[4+4*i:])
	}
	return peers, nil
}

// DeltaEnforcer pushes per-satellite slot deltas over a Controller's
// reliable session instead of one command per link endpoint. It tracks
// the desired ISL peer set of every satellite it has pushed to and a
// per-satellite synced flag; while synced, a Push sends one MsgSlotDelta
// carrying only the batch's add/remove ops. When delta composition can
// no longer be trusted — the agent re-registered (its dataplane may have
// missed deltas applied while it was away... or it restarted entirely),
// a command to it was abandoned after AckTimeout, or the satellite has
// never been pushed to — the next Push falls back to one MsgSlotSnapshot
// carrying the full desired peer set, which re-syncs the agent and
// restores delta eligibility.
//
// Construct with NewDeltaEnforcer before agents connect: it chains onto
// the controller's OnRegister and OnCommandFailed hooks (preserving any
// already installed).
type DeltaEnforcer struct {
	c *Controller

	mu sync.Mutex
	//tinyleo:guardedby mu
	desired map[uint32]map[uint32]struct{} // sat → desired ISL peer set
	//tinyleo:guardedby mu
	synced map[uint32]bool // sat may receive per-op deltas

	deltaMsgs *obs.Counter
	snapMsgs  *obs.Counter
	opsSent   *obs.Counter
	bytesSent *obs.Counter
	resyncs   *obs.Counter
}

// NewDeltaEnforcer wires a DeltaEnforcer to c, chaining its re-sync
// triggers onto c.OnRegister and c.OnCommandFailed.
func NewDeltaEnforcer(c *Controller) *DeltaEnforcer {
	e := &DeltaEnforcer{
		c:         c,
		desired:   map[uint32]map[uint32]struct{}{},
		synced:    map[uint32]bool{},
		deltaMsgs: c.reg.Counter(MetricDeltaMessages, "kind", "delta"),
		snapMsgs:  c.reg.Counter(MetricDeltaMessages, "kind", "snapshot"),
		opsSent:   c.reg.Counter(MetricDeltaOps),
		bytesSent: c.reg.Counter(MetricDeltaBytes),
		resyncs:   c.reg.Counter(MetricDeltaResyncs),
	}
	prevRegister := c.OnRegister
	c.OnRegister = func(satID uint32) {
		e.MarkUnsynced(satID)
		if prevRegister != nil {
			prevRegister(satID)
		}
	}
	prevFailed := c.OnCommandFailed
	c.OnCommandFailed = func(m *Message) {
		e.MarkUnsynced(m.SatID)
		if prevFailed != nil {
			prevFailed(m)
		}
	}
	return e
}

// MarkUnsynced forces the next Push to sat to be a full-snapshot
// re-sync. Called automatically on agent (re-)registration and on
// abandoned commands; callers may also invoke it directly (e.g. a chaos
// fault that is known to wipe an agent's dataplane).
func (e *DeltaEnforcer) MarkUnsynced(sat uint32) {
	e.mu.Lock()
	delete(e.synced, sat)
	e.mu.Unlock()
}

// Desired returns sat's tracked desired ISL peer set in ascending
// order (nil when the satellite has never been pushed to).
func (e *DeltaEnforcer) Desired(sat uint32) []uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.desired[sat] == nil {
		return nil
	}
	return sortedPeers(e.desired[sat])
}

// Push applies one slot's link changes for sat — peers in del torn
// down, then peers in add established — to the tracked desired set and
// sends the result over the controller's reliable session: a
// MsgSlotDelta op batch while sat is synced, or a MsgSlotSnapshot of
// the full post-change desired set when it is not. A no-op push to a
// synced satellite sends nothing. emitted and trace carry the planning
// layer's emit time and causal context onto the wire (zero values are
// fine). On a send error the satellite is marked unsynced so the next
// push re-syncs it.
func (e *DeltaEnforcer) Push(sat uint32, add, del []uint32, emitted time.Time, trace obs.SpanContext) error {
	e.mu.Lock()
	d := e.desired[sat]
	if d == nil {
		d = map[uint32]struct{}{}
		e.desired[sat] = d
	}
	ops := make([]SlotDeltaOp, 0, len(add)+len(del))
	for _, p := range del {
		if _, ok := d[p]; ok {
			delete(d, p)
			ops = append(ops, SlotDeltaOp{Peer: p, Up: false})
		}
	}
	for _, p := range add {
		if _, ok := d[p]; !ok {
			d[p] = struct{}{}
			ops = append(ops, SlotDeltaOp{Peer: p, Up: true})
		}
	}
	synced := e.synced[sat]
	if synced && len(ops) == 0 {
		e.mu.Unlock()
		return nil
	}
	m := &Message{SatID: sat, Emitted: emitted, Trace: trace}
	if synced {
		m.Type = MsgSlotDelta
		m.Payload = EncodeSlotDelta(ops)
		e.deltaMsgs.Inc()
		e.opsSent.Add(int64(len(ops)))
	} else {
		m.Type = MsgSlotSnapshot
		m.Payload = EncodeSlotSnapshot(sortedPeers(d))
		e.snapMsgs.Inc()
		e.resyncs.Inc()
		e.synced[sat] = true
	}
	e.bytesSent.Add(int64(len(m.Payload)))
	e.mu.Unlock()
	if err := e.c.Send(m); err != nil {
		e.MarkUnsynced(sat)
		return err
	}
	return nil
}

// sortedPeers flattens a peer set in ascending order.
func sortedPeers(d map[uint32]struct{}) []uint32 {
	peers := make([]uint32, 0, len(d))
	for p := range d {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}
