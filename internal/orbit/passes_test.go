package orbit

import (
	"testing"

	"repro/internal/geom"
)

func TestPredictPassesBasics(t *testing.T) {
	// A satellite on an Earth-repeat track over a point its track crosses.
	e := (RepeatSpec{1, 15}).Elements(geom.Deg2Rad(53), 0, 0)
	target := e.SubSatellitePoint(600)
	cp := DefaultCoverageParams
	horizon := 2 * geom.SiderealDay / 15 // two orbits
	passes := PredictPasses(e, target, cp, 0, horizon, 10)
	if len(passes) == 0 {
		t.Fatal("no passes over a point on the ground track")
	}
	for i, p := range passes {
		if p.End <= p.Start {
			t.Errorf("pass %d: inverted window %v..%v", i, p.Start, p.End)
		}
		// §2.3: coverage lasts minutes, not hours.
		if d := p.Duration(); d < 30 || d > 600 {
			t.Errorf("pass %d: duration %v s outside the minutes regime", i, d)
		}
		if p.MaxElevation < cp.MinElevation-0.05 {
			t.Errorf("pass %d: max elevation %v below the service threshold", i, p.MaxElevation)
		}
		// Mid-pass must actually be visible.
		mid := (p.Start + p.End) / 2
		if !cp.Covers(e, mid, target) {
			t.Errorf("pass %d: not visible at its midpoint", i)
		}
		if i > 0 && p.Start < passes[i-1].End {
			t.Errorf("passes overlap: %v before %v", p.Start, passes[i-1].End)
		}
	}
	// Just outside a pass the satellite must be invisible.
	p0 := passes[0]
	if cp.Covers(e, p0.Start-30, target) {
		t.Error("visible well before the refined pass start")
	}
	if cp.Covers(e, p0.End+30, target) {
		t.Error("visible well after the refined pass end")
	}
}

func TestPredictPassesOutOfReach(t *testing.T) {
	// A 53° orbit never covers the pole.
	e := (RepeatSpec{1, 15}).Elements(geom.Deg2Rad(53), 0, 0)
	passes := PredictPasses(e, geom.LatLon{Lat: 88, Lon: 0}, DefaultCoverageParams, 0, 6000, 10)
	if len(passes) != 0 {
		t.Errorf("polar point got %d passes from a 53° orbit", len(passes))
	}
}

func TestPredictPassesDegenerate(t *testing.T) {
	e := (RepeatSpec{1, 15}).Elements(geom.Deg2Rad(53), 0, 0)
	if PredictPasses(e, geom.LatLon{}, DefaultCoverageParams, 0, 0, 10) != nil {
		t.Error("zero horizon should yield nil")
	}
	if PredictPasses(e, geom.LatLon{}, DefaultCoverageParams, 0, 100, 0) != nil {
		t.Error("zero dt should yield nil")
	}
}

func TestRevisitGap(t *testing.T) {
	passes := []Pass{{Start: 100, End: 200}, {Start: 500, End: 600}}
	maxGap, meanGap := RevisitGap(passes, 0, 1000)
	// Gaps: 100 (lead-in), 300 (between), 400 (tail).
	if maxGap != 400 {
		t.Errorf("max gap = %v", maxGap)
	}
	if meanGap != (100+300+400)/3.0 {
		t.Errorf("mean gap = %v", meanGap)
	}
	mg, mn := RevisitGap(nil, 0, 1000)
	if mg != 1000 || mn != 1000 {
		t.Errorf("empty passes: %v %v", mg, mn)
	}
}

func TestEarthRepeatPassesRepeat(t *testing.T) {
	// The defining Earth-repeat property at pass granularity: the pass
	// schedule in day 2 mirrors day 1 shifted by the repeat cycle.
	s := RepeatSpec{1, 14}
	e := s.Elements(geom.Deg2Rad(53), geom.Deg2Rad(40), geom.Deg2Rad(10))
	target := e.SubSatellitePoint(2000)
	cp := DefaultCoverageParams
	cycle := s.RepeatCycle()
	day1 := PredictPasses(e, target, cp, 0, cycle, 20)
	day2 := PredictPasses(e, target, cp, cycle, cycle, 20)
	if len(day1) == 0 || len(day1) != len(day2) {
		t.Fatalf("pass counts differ across repeat cycles: %d vs %d", len(day1), len(day2))
	}
	for i := range day1 {
		if diff := (day2[i].Start - cycle) - day1[i].Start; diff > 60 || diff < -60 {
			t.Errorf("pass %d shifted by %v s across the repeat cycle", i, diff)
		}
	}
}
