package orbit

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

// cacheTestConstellation builds a small Walker-like shell directly from
// Elements (the baseline package depends on orbit, so tests here cannot
// use its generator).
func cacheTestConstellation(planes, perPlane int) []Elements {
	sats := make([]Elements, 0, planes*perPlane)
	for p := 0; p < planes; p++ {
		for s := 0; s < perPlane; s++ {
			sats = append(sats, Elements{
				SemiMajor:   geom.EarthRadius + 1200e3,
				Inclination: geom.Deg2Rad(53),
				RAAN:        2 * math.Pi * float64(p) / float64(planes),
				Phase:       2*math.Pi*float64(s)/float64(perPlane) + math.Pi*float64(p)/float64(planes*perPlane),
			})
		}
	}
	return sats
}

func newTestCache(planes, perPlane int) *PropCache {
	return NewPropCache(cacheTestConstellation(planes, perPlane), DefaultISLParams, 1800, 60)
}

// TestPropCachePositionsMatchDirect is the cache's core contract: a
// memoized position matches direct propagation within 1e-9 m (in fact
// bit-exactly, since keys quantize time to its float64 bit pattern).
func TestPropCachePositionsMatchDirect(t *testing.T) {
	pc := newTestCache(6, 6)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		i := rng.Intn(pc.NumSats())
		tt := rng.Float64() * 86400
		got := pc.PositionECI(i, tt)
		want := pc.sats[i].PositionECI(tt)
		if math.Abs(got.X-want.X) > 1e-9 || math.Abs(got.Y-want.Y) > 1e-9 || math.Abs(got.Z-want.Z) > 1e-9 {
			t.Fatalf("sat %d t=%v: cached %v != direct %v", i, tt, got, want)
		}
		// Second lookup must come from the memo and stay identical.
		if again := pc.PositionECI(i, tt); again != got {
			t.Fatalf("sat %d t=%v: repeat lookup changed: %v != %v", i, tt, again, got)
		}
	}
	st := pc.Stats()
	if st.PosHits == 0 || st.PosMisses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
}

// TestPropCacheLifetimeMatchesDirect: the memoized pair lifetime equals
// ISLLifetime bit for bit (same stepping loop, memoized positions).
func TestPropCacheLifetimeMatchesDirect(t *testing.T) {
	pc := newTestCache(5, 5)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		i, j := rng.Intn(pc.NumSats()), rng.Intn(pc.NumSats())
		if i == j {
			continue
		}
		t0 := float64(rng.Intn(20)) * 150
		got := pc.Lifetime(i, j, t0)
		want := ISLLifetime(pc.sats[i], pc.sats[j], t0, pc.horizon, pc.step, pc.isl)
		if got != want {
			t.Fatalf("pair (%d,%d) t0=%v: cached %v != direct %v", i, j, t0, got, want)
		}
		if sym := pc.Lifetime(j, i, t0); sym != got {
			t.Fatalf("pair (%d,%d): asymmetric lifetimes %v vs %v", i, j, got, sym)
		}
	}
	if st := pc.Stats(); st.LifeHits == 0 {
		t.Errorf("symmetric re-lookups should hit, got %+v", st)
	}
}

// TestSlotGeomMatchesDirect: slot geometry reproduces the direct
// per-satellite propagation and ground-track math exactly.
func TestSlotGeomMatchesDirect(t *testing.T) {
	pc := newTestCache(4, 4)
	for _, tt := range []float64{0, 97, 300, 5400.5} {
		sg := pc.Slot(tt)
		if sg.Time != tt {
			t.Fatalf("slot time %v != %v", sg.Time, tt)
		}
		for i := range pc.sats {
			if got, want := sg.Position(i), pc.sats[i].PositionECI(tt); got != want {
				t.Fatalf("t=%v sat %d: position %v != %v", tt, i, got, want)
			}
			if got, want := sg.SubPoint(i), pc.sats[i].SubSatellitePoint(tt); got != want {
				t.Fatalf("t=%v sat %d: subpoint %v != %v", tt, i, got, want)
			}
		}
		if again := pc.Slot(tt); again != sg {
			t.Fatalf("t=%v: slot geometry not memoized", tt)
		}
	}
}

// TestSlotGeomInRangeConservative: the spatial grid may only reject
// pairs that are truly out of ISL range — a visible pair must never be
// pruned, and every rejected pair must have zero lifetime.
func TestSlotGeomInRangeConservative(t *testing.T) {
	pc := newTestCache(6, 6)
	sg := pc.Slot(0)
	pruned, kept := 0, 0
	for i := 0; i < pc.NumSats(); i++ {
		for j := i + 1; j < pc.NumSats(); j++ {
			in := sg.InRange(i, j)
			vis := pc.isl.Visible(sg.Position(i), sg.Position(j))
			if vis && !in {
				t.Fatalf("pair (%d,%d) visible but pruned", i, j)
			}
			if !in {
				pruned++
				if tau := pc.Lifetime(i, j, 0); tau != 0 {
					t.Fatalf("pruned pair (%d,%d) has lifetime %v", i, j, tau)
				}
			} else {
				kept++
			}
		}
	}
	if pruned == 0 {
		t.Error("grid pruned nothing on a full shell; expected out-of-range pairs")
	}
	if kept == 0 {
		t.Error("grid kept nothing; expected in-range pairs")
	}
	if st := pc.Stats(); st.PrunedPairs != uint64(pruned) {
		t.Errorf("pruned counter %d != observed %d", st.PrunedPairs, pruned)
	}
}

// TestSlotGeomUnlimitedRange: with MaxRange 0 the grid must keep every
// pair (no basis to prune).
func TestSlotGeomUnlimitedRange(t *testing.T) {
	sats := cacheTestConstellation(3, 3)
	pc := NewPropCache(sats, ISLParams{GrazingMargin: 80e3}, 1800, 60)
	sg := pc.Slot(0)
	for i := range sats {
		for j := range sats {
			if !sg.InRange(i, j) {
				t.Fatalf("pair (%d,%d) pruned under unlimited range", i, j)
			}
		}
	}
}

// TestPropCacheConcurrent hammers the cache from many goroutines (run
// under -race in CI) and checks every answer against direct propagation.
func TestPropCacheConcurrent(t *testing.T) {
	pc := newTestCache(5, 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 300; trial++ {
				i, j := rng.Intn(pc.NumSats()), rng.Intn(pc.NumSats())
				tt := float64(rng.Intn(10)) * 97
				if got, want := pc.PositionECI(i, tt), pc.sats[i].PositionECI(tt); got != want {
					t.Errorf("concurrent position mismatch sat %d t=%v", i, tt)
					return
				}
				if i != j {
					want := ISLLifetime(pc.sats[i], pc.sats[j], tt, pc.horizon, pc.step, pc.isl)
					if got := pc.Lifetime(i, j, tt); got != want {
						t.Errorf("concurrent lifetime mismatch (%d,%d) t=%v", i, j, tt)
						return
					}
				}
				sg := pc.Slot(tt)
				if sg.SubPoint(i) != pc.sats[i].SubSatellitePoint(tt) {
					t.Errorf("concurrent subpoint mismatch sat %d t=%v", i, tt)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestDropSlotsBefore evicts old slot geometries and keeps newer ones.
func TestDropSlotsBefore(t *testing.T) {
	pc := newTestCache(3, 3)
	old := pc.Slot(0)
	kept := pc.Slot(600)
	pc.DropSlotsBefore(300)
	if pc.Slot(600) != kept {
		t.Error("slot at t=600 should have survived eviction")
	}
	if pc.Slot(0) == old {
		t.Error("slot at t=0 should have been evicted and rebuilt")
	}
}

// TestCacheStatsHitRatio covers the ratio arithmetic and its zero guard.
func TestCacheStatsHitRatio(t *testing.T) {
	if r := (CacheStats{}).HitRatio(); r != 0 {
		t.Errorf("empty stats ratio = %v", r)
	}
	s := CacheStats{PosHits: 3, PosMisses: 1, LifeHits: 2, LifeMisses: 2}
	if r := s.HitRatio(); math.Abs(r-5.0/8.0) > 1e-15 {
		t.Errorf("ratio = %v, want 0.625", r)
	}
}

// TestPropCacheShardReset: overflowing a shard resets it without
// corrupting results (memoization is transparent).
func TestPropCacheShardReset(t *testing.T) {
	pc := newTestCache(2, 2)
	// Far more distinct times than maxShardEntries across 64 shards.
	n := maxShardEntries/8 + 1024
	for k := 0; k < n; k++ {
		tt := float64(k) * 0.5
		if got, want := pc.PositionECI(0, tt), pc.sats[0].PositionECI(tt); got != want {
			t.Fatalf("t=%v: mismatch after heavy fill", tt)
		}
	}
}
