package orbit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Property tests on orbital invariants, driven by testing/quick.

// randomElements maps arbitrary quick-generated floats into a valid
// circular LEO orbit.
func randomElements(altSeed, incSeed, raanSeed, phaseSeed float64) Elements {
	frac := func(x float64) float64 { // stable mapping into [0,1)
		f := math.Abs(math.Mod(x, 1))
		if math.IsNaN(f) {
			return 0.5
		}
		return f
	}
	return Elements{
		SemiMajor:   geom.EarthRadius + 400e3 + frac(altSeed)*1400e3,
		Inclination: frac(incSeed) * math.Pi,
		RAAN:        frac(raanSeed)*2*math.Pi - math.Pi,
		Phase:       frac(phaseSeed) * 2 * math.Pi,
	}
}

// TestPropertyRadiusConstant: circular orbits keep a constant geocentric
// radius at any time.
func TestPropertyRadiusConstant(t *testing.T) {
	f := func(a, i, r, p, tSeed float64) bool {
		e := randomElements(a, i, r, p)
		tt := math.Abs(math.Mod(tSeed, 1)) * 7200
		return math.Abs(e.PositionECI(tt).Norm()-e.SemiMajor) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLatitudeBounded: a ground track never exceeds the
// inclination-implied maximum latitude.
func TestPropertyLatitudeBounded(t *testing.T) {
	f := func(a, i, r, p, tSeed float64) bool {
		e := randomElements(a, i, r, p)
		tt := math.Abs(math.Mod(tSeed, 1)) * 2 * e.Period()
		lat := math.Abs(e.SubSatellitePoint(tt).Lat)
		return lat <= e.MaxLatitude()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAngularMomentumConserved: r × v stays fixed in direction and
// magnitude for the two-body circular orbit.
func TestPropertyAngularMomentumConserved(t *testing.T) {
	f := func(a, i, r, p, t1Seed, t2Seed float64) bool {
		e := randomElements(a, i, r, p)
		t1 := math.Abs(math.Mod(t1Seed, 1)) * 7200
		t2 := math.Abs(math.Mod(t2Seed, 1)) * 7200
		h1 := e.PositionECI(t1).Cross(e.VelocityECI(t1))
		h2 := e.PositionECI(t2).Cross(e.VelocityECI(t2))
		return h1.Dist(h2)/h1.Norm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRepeatTracksClose: for any reduced (p,q) in the LEO band,
// the ground track closes after the repeat cycle.
func TestPropertyRepeatTracksClose(t *testing.T) {
	specs := EnumerateRepeatSpecs(3, 423e3, 1873e3)
	f := func(specSeed, i, r, p, tSeed uint32) bool {
		s := specs[int(specSeed)%len(specs)]
		e := s.Elements(
			float64(i%180)*math.Pi/180,
			float64(r%360)*math.Pi/180-math.Pi,
			float64(p%360)*math.Pi/180,
		)
		t0 := float64(tSeed % 86400) // arbitrary epoch offset
		a := e.SubSatellitePoint(t0)
		b := e.SubSatellitePoint(t0 + s.RepeatCycle())
		return geom.GreatCircleDist(a, b) < 2e3 // within 2 km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyISLSymmetry: visibility and lifetime are symmetric in the
// pair.
func TestPropertyISLSymmetry(t *testing.T) {
	f := func(a1, i1, r1, p1, a2, i2, r2, p2 float64) bool {
		ea := randomElements(a1, i1, r1, p1)
		eb := randomElements(a2, i2, r2, p2)
		pa, pb := ea.PositionECI(0), eb.PositionECI(0)
		if DefaultISLParams.Visible(pa, pb) != DefaultISLParams.Visible(pb, pa) {
			return false
		}
		la := ISLLifetime(ea, eb, 0, 600, 60, DefaultISLParams)
		lb := ISLLifetime(eb, ea, 0, 600, 60, DefaultISLParams)
		return la == lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
