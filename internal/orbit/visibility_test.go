package orbit

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestISLVisibility(t *testing.T) {
	p := DefaultISLParams
	a := geom.LatLon{Lat: 0, Lon: 0}.ToECEF(550e3)
	near := geom.LatLon{Lat: 0, Lon: 10}.ToECEF(550e3)
	far := geom.LatLon{Lat: 0, Lon: 170}.ToECEF(550e3)
	if !p.Visible(a, near) {
		t.Error("1,100 km apart should be linkable")
	}
	if p.Visible(a, far) {
		t.Error("cross-Earth pair should not be linkable")
	}
	// Range limit binds before occlusion at ~45°≈5,000km arc.
	mid := geom.LatLon{Lat: 0, Lon: 60}.ToECEF(550e3)
	if p.Visible(a, mid) {
		t.Error("6,900-km chord exceeds 5,000-km laser range")
	}
	// At 550 km the horizon limit is 2·acos((Re+margin)/(Re+h)) ≈ 43° of
	// central angle: 40° apart is geometrically visible (range permitting),
	// 60° apart is Earth-blocked even with unlimited range.
	unlimited := ISLParams{MaxRange: 0, GrazingMargin: 80e3}
	at40 := geom.LatLon{Lat: 0, Lon: 40}.ToECEF(550e3)
	if !unlimited.Visible(a, at40) {
		t.Error("40° apart at 550 km should clear the Earth")
	}
	if unlimited.Visible(a, mid) {
		t.Error("60° apart at 550 km must be occluded by the Earth")
	}
}

func TestISLLifetimeCoOrbital(t *testing.T) {
	// Two satellites in the same orbit separated by a small phase keep
	// their ISL for the whole horizon (classic intra-orbit ISL stability).
	s := RepeatSpec{1, 15}
	a := s.Elements(geom.Deg2Rad(53), 0, 0)
	b := s.Elements(geom.Deg2Rad(53), 0, geom.Deg2Rad(16))
	horizon := 2 * a.Period()
	life := ISLLifetime(a, b, 0, horizon, 10, DefaultISLParams)
	if life != horizon {
		t.Errorf("co-orbital ISL lifetime = %v, want full horizon %v", life, horizon)
	}
}

func TestISLLifetimeCrossOrbit(t *testing.T) {
	// Satellites in counter-rotating planes have short-lived links.
	s := RepeatSpec{1, 15}
	a := s.Elements(geom.Deg2Rad(53), 0, 0)
	b := s.Elements(geom.Deg2Rad(-53), geom.Deg2Rad(5), geom.Deg2Rad(2))
	horizon := 2 * a.Period()
	life := ISLLifetime(a, b, 0, horizon, 10, DefaultISLParams)
	if life == 0 || life == horizon {
		t.Skipf("geometry gave trivial lifetime %v; acceptable", life)
	}
	if life >= horizon/2 {
		t.Errorf("counter-rotating ISL lifetime %v suspiciously long", life)
	}
}

func TestISLLifetimeZeroWhenInvisible(t *testing.T) {
	s := RepeatSpec{1, 15}
	a := s.Elements(geom.Deg2Rad(53), 0, 0)
	b := s.Elements(geom.Deg2Rad(53), geom.Deg2Rad(180), 0)
	if life := ISLLifetime(a, b, 0, 600, 10, DefaultISLParams); life != 0 {
		t.Errorf("invisible pair lifetime = %v", life)
	}
}

func TestCoversNadirAndEdge(t *testing.T) {
	cp := DefaultCoverageParams
	e := circular(550, 53, 0, 0)
	sub := e.SubSatellitePoint(0)
	if !cp.Covers(e, 0, sub) {
		t.Error("satellite must cover its sub-satellite point")
	}
	lam := cp.FootprintRadius(e.Altitude())
	inside := geom.Intermediate(sub, geom.LatLon{Lat: sub.Lat, Lon: sub.Lon + 30}, geom.Rad2Deg(lam)*0.9/30)
	outside := geom.Intermediate(sub, geom.LatLon{Lat: sub.Lat, Lon: sub.Lon + 30}, geom.Rad2Deg(lam)*1.2/30)
	if !cp.Covers(e, 0, inside) {
		t.Error("point inside footprint not covered")
	}
	if cp.Covers(e, 0, outside) {
		t.Error("point outside footprint covered")
	}
}

func TestCoverageDurationAbout3Minutes(t *testing.T) {
	// §2.3: each Starlink satellite's coverage of an area lasts up to ~3
	// minutes (at 25° elevation, 550 km). Check the pass duration over a
	// point directly on the track.
	cp := DefaultCoverageParams
	e := circular(550, 53, 0, 0)
	target := e.SubSatellitePoint(300) // a point the track crosses
	dur := 0.0
	for tt := 0.0; tt < e.Period(); tt += 1 {
		if cp.Covers(e, tt, target) {
			dur++
		}
	}
	if dur < 100 || dur > 300 {
		t.Errorf("pass duration = %v s, expected 100-300 s", dur)
	}
}

func TestPropagationDelay(t *testing.T) {
	a := geom.Vec3{X: geom.EarthRadius + 550e3}
	b := geom.Vec3{X: geom.EarthRadius + 550e3, Y: 1000e3}
	d := PropagationDelay(a, b)
	if math.Abs(d-1000e3/geom.C) > 1e-12 {
		t.Errorf("delay = %v", d)
	}
}

func TestFootprintRadiusMonotonicity(t *testing.T) {
	cp := CoverageParams{MinElevation: geom.Deg2Rad(25)}
	if cp.FootprintRadius(550e3) >= cp.FootprintRadius(1200e3) {
		t.Error("footprint should grow with altitude")
	}
}
