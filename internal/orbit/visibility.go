package orbit

import (
	"math"

	"repro/internal/geom"
)

// ISLParams captures the physical constraints on laser inter-satellite
// links. The defaults mirror Starlink's public numbers used in the paper's
// evaluation (§6.1): 200 Gbps per ISL, 3 ISL terminals per satellite.
type ISLParams struct {
	// MaxRange is the maximum laser link distance in meters (0 = unlimited).
	MaxRange float64
	// GrazingMargin is the minimum clearance of the beam above the Earth's
	// surface, meters, to avoid atmospheric attenuation.
	GrazingMargin float64
}

// DefaultISLParams is a Starlink-like configuration: ~5,000 km max range,
// 80 km atmospheric grazing margin.
var DefaultISLParams = ISLParams{MaxRange: 5000e3, GrazingMargin: 80e3}

// Visible reports whether two satellites at ECI positions a and b can
// establish an ISL under p.
func (p ISLParams) Visible(a, b geom.Vec3) bool {
	if p.MaxRange > 0 && a.Dist(b) > p.MaxRange {
		return false
	}
	return geom.LineOfSight(a, b, p.GrazingMargin)
}

// ISLLifetime estimates how long (seconds) an ISL between satellites on
// orbits ea and eb, starting at time t0, will remain established under p.
// It advances in steps of dt until visibility is lost or horizon elapses.
// This is the paper's τ_{s,s'} used by the MPC's stable matching (§4.2).
func ISLLifetime(ea, eb Elements, t0, horizon, dt float64, p ISLParams) float64 {
	if !p.Visible(ea.PositionECI(t0), eb.PositionECI(t0)) {
		return 0
	}
	for t := dt; t <= horizon; t += dt {
		if !p.Visible(ea.PositionECI(t0+t), eb.PositionECI(t0+t)) {
			return t
		}
	}
	return horizon
}

// CoverageParams captures a satellite's user-facing radio footprint.
type CoverageParams struct {
	// MinElevation is the minimum elevation angle (radians) at which a
	// ground terminal can use the satellite. Starlink operates at 25°.
	MinElevation float64
}

// DefaultCoverageParams uses the 25° minimum elevation of operational
// Starlink service.
var DefaultCoverageParams = CoverageParams{MinElevation: geom.Deg2Rad(25)}

// Covers reports whether a satellite on orbit e covers ground point g at
// time t.
func (cp CoverageParams) Covers(e Elements, t float64, g geom.LatLon) bool {
	lam := geom.CoverageAngularRadius(e.Altitude(), cp.MinElevation)
	sub := e.SubSatellitePoint(t)
	return geom.CentralAngle(sub, g) <= lam
}

// FootprintRadius returns the Earth-central angular radius (radians) of the
// footprint of a satellite at altitude alt under cp.
func (cp CoverageParams) FootprintRadius(alt float64) float64 {
	return geom.CoverageAngularRadius(alt, cp.MinElevation)
}

// PropagationDelay returns the one-way speed-of-light delay between two
// positions, in seconds.
func PropagationDelay(a, b geom.Vec3) float64 {
	return a.Dist(b) / geom.C
}

// RevisitPeriod returns how often (seconds) a satellite on a repeat orbit
// revisits the same geographic area: the full repeat cycle p·T⊕ for a
// single pass, by construction of Earth-repeat orbits.
func RevisitPeriod(r RepeatSpec) float64 { return r.RepeatCycle() }

// OrbitalVelocity returns the circular orbital speed (m/s) at altitude alt.
func OrbitalVelocity(alt float64) float64 {
	return math.Sqrt(geom.EarthMu / (geom.EarthRadius + alt))
}
