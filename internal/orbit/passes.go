package orbit

import (
	"repro/internal/geom"
)

// Pass is one visibility window of a satellite over a ground point —
// the building block of §2.3's observation that a LEO satellite covers
// any area for only minutes at a time, and of ground-station scheduling.
type Pass struct {
	// Start and End bound the window (seconds since epoch); the satellite
	// is above the minimum elevation throughout [Start, End).
	Start, End float64
	// MaxElevation is the pass's peak elevation in radians.
	MaxElevation float64
}

// Duration returns the pass length in seconds.
func (p Pass) Duration() float64 { return p.End - p.Start }

// PredictPasses scans [t0, t0+horizon) in steps of dt and returns every
// visibility window of the satellite over ground point g at the given
// coverage geometry. Window edges are refined by bisection to ~dt/64
// accuracy.
func PredictPasses(e Elements, g geom.LatLon, cp CoverageParams, t0, horizon, dt float64) []Pass {
	if dt <= 0 || horizon <= 0 {
		return nil
	}
	visible := func(t float64) bool { return cp.Covers(e, t, g) }
	elevation := func(t float64) float64 {
		return geom.ElevationAngle(g, e.PositionECEF(t))
	}
	// Bisect a visibility transition inside (lo, hi).
	refine := func(lo, hi float64, want bool) float64 {
		for i := 0; i < 6; i++ {
			mid := (lo + hi) / 2
			if visible(mid) == want {
				hi = mid
			} else {
				lo = mid
			}
		}
		return (lo + hi) / 2
	}
	var passes []Pass
	inPass := false
	var cur Pass
	prevT := t0
	prevVis := visible(t0)
	if prevVis {
		inPass = true
		cur = Pass{Start: t0, MaxElevation: elevation(t0)}
	}
	for t := t0 + dt; t <= t0+horizon; t += dt {
		vis := visible(t)
		switch {
		case vis && !inPass:
			inPass = true
			cur = Pass{Start: refine(prevT, t, true), MaxElevation: elevation(t)}
		case vis && inPass:
			if el := elevation(t); el > cur.MaxElevation {
				cur.MaxElevation = el
			}
		case !vis && inPass:
			cur.End = refine(prevT, t, false)
			passes = append(passes, cur)
			inPass = false
		}
		prevT, prevVis = t, vis
	}
	if inPass {
		cur.End = t0 + horizon
		passes = append(passes, cur)
	}
	_ = prevVis
	return passes
}

// RevisitGap returns the longest gap (seconds) between consecutive passes,
// and the mean gap; zero passes yield (horizon, horizon).
func RevisitGap(passes []Pass, t0, horizon float64) (maxGap, meanGap float64) {
	if len(passes) == 0 {
		return horizon, horizon
	}
	gaps := make([]float64, 0, len(passes)+1)
	gaps = append(gaps, passes[0].Start-t0)
	for i := 1; i < len(passes); i++ {
		gaps = append(gaps, passes[i].Start-passes[i-1].End)
	}
	gaps = append(gaps, t0+horizon-passes[len(passes)-1].End)
	sum := 0.0
	for _, g := range gaps {
		if g > maxGap {
			maxGap = g
		}
		sum += g
	}
	return maxGap, sum / float64(len(gaps))
}
