// Package orbit implements the orbital-mechanics substrate TinyLEO builds
// on: circular two-body propagation, Earth-repeat orbit enumeration
// (Equation 1 of the paper, T/T⊕ = p/q), satellite ground tracks, footprint
// coverage, and inter-satellite link visibility.
//
// Model: spherical Earth, circular Keplerian orbits, no J2 or drag. The
// paper treats orbit maintenance (station-keeping back onto the repeat
// track) as an operational task orthogonal to network design (§4.1
// "Long-term stability"), so the repeat tracks here are exact.
package orbit

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Elements describes a circular LEO orbit slot for one satellite.
type Elements struct {
	// SemiMajor is the orbital semi-major axis in meters (circular orbits:
	// the constant geocentric radius).
	SemiMajor float64
	// Inclination is the orbital inclination in radians, in [0, π].
	Inclination float64
	// RAAN is the right ascension of the ascending node in radians.
	RAAN float64
	// Phase is the argument of latitude at epoch t=0 (angle from the
	// ascending node along the orbit), in radians.
	Phase float64
}

// Altitude returns the orbit's altitude above the spherical Earth, meters.
func (e Elements) Altitude() float64 { return e.SemiMajor - geom.EarthRadius }

// Period returns the Keplerian orbital period in seconds.
func (e Elements) Period() float64 {
	return 2 * math.Pi * math.Sqrt(e.SemiMajor*e.SemiMajor*e.SemiMajor/geom.EarthMu)
}

// MeanMotion returns the mean motion n = 2π/T in rad/s.
func (e Elements) MeanMotion() float64 { return 2 * math.Pi / e.Period() }

// SemiMajorForPeriod returns the semi-major axis (m) of a circular orbit
// with period T seconds.
func SemiMajorForPeriod(T float64) float64 {
	return math.Cbrt(geom.EarthMu * (T / (2 * math.Pi)) * (T / (2 * math.Pi)))
}

// PositionECI returns the satellite's ECI position at time t seconds after
// epoch. The orbit plane is obtained by rotating the equatorial circle by
// the inclination about +X, then by the RAAN about +Z.
func (e Elements) PositionECI(t float64) geom.Vec3 {
	u := e.Phase + e.MeanMotion()*t
	s, c := math.Sincos(u)
	p := geom.Vec3{X: e.SemiMajor * c, Y: e.SemiMajor * s}
	return p.RotX(e.Inclination).RotZ(e.RAAN)
}

// VelocityECI returns the satellite's ECI velocity (m/s) at time t.
func (e Elements) VelocityECI(t float64) geom.Vec3 {
	u := e.Phase + e.MeanMotion()*t
	v := e.SemiMajor * e.MeanMotion() // circular speed
	s, c := math.Sincos(u)
	p := geom.Vec3{X: -v * s, Y: v * c}
	return p.RotX(e.Inclination).RotZ(e.RAAN)
}

// GMST returns the Greenwich mean sidereal angle (radians) at time t seconds
// after epoch, taking the angle to be zero at epoch. Only the rotation rate
// matters for TinyLEO's relative geometry.
func GMST(t float64) float64 {
	return geom.NormalizeAngle(2 * math.Pi * t / geom.SiderealDay)
}

// PositionECEF returns the satellite's Earth-fixed position at time t.
func (e Elements) PositionECEF(t float64) geom.Vec3 {
	return e.PositionECI(t).RotZ(-GMST(t))
}

// SubSatellitePoint returns the geodetic point directly under the satellite
// at time t (the ground-track sample).
func (e Elements) SubSatellitePoint(t float64) geom.LatLon {
	return geom.FromUnit(e.PositionECEF(t))
}

// GroundTrack samples the sub-satellite point every dt seconds over [0, dur].
func (e Elements) GroundTrack(dur, dt float64) []geom.LatLon {
	n := int(dur/dt) + 1
	pts := make([]geom.LatLon, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, e.SubSatellitePoint(float64(i)*dt))
	}
	return pts
}

// MaxLatitude returns the highest geodetic latitude (degrees) the
// satellite's ground track reaches: min(i, π−i) for inclination i.
func (e Elements) MaxLatitude() float64 {
	i := e.Inclination
	if i > math.Pi/2 {
		i = math.Pi - i
	}
	return geom.Rad2Deg(i)
}

// String implements fmt.Stringer with the paper's (α, β, T) notation.
func (e Elements) String() string {
	return fmt.Sprintf("orbit{h=%.0fkm α=%.1f° β=%.1f° T=%.1fmin u0=%.1f°}",
		e.Altitude()/1e3, geom.Rad2Deg(e.RAAN), geom.Rad2Deg(e.Inclination),
		e.Period()/60, geom.Rad2Deg(e.Phase))
}
