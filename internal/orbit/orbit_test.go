package orbit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func circular(altKm, incDeg, raanDeg, phaseDeg float64) Elements {
	return Elements{
		SemiMajor:   geom.EarthRadius + altKm*1e3,
		Inclination: geom.Deg2Rad(incDeg),
		RAAN:        geom.Deg2Rad(raanDeg),
		Phase:       geom.Deg2Rad(phaseDeg),
	}
}

func TestPeriodMatchesPaperAltitudes(t *testing.T) {
	// Table 1: 423 km ↔ 92.8 min, 1,873 km ↔ 124.2 min (±1% for our
	// spherical constants).
	cases := []struct {
		altKm, periodMin float64
	}{
		{423, 92.8}, {573, 95.9}, {1141, 108}, {1335, 112.2}, {1873, 124.2},
	}
	for _, c := range cases {
		e := circular(c.altKm, 53, 0, 0)
		got := e.Period() / 60
		if math.Abs(got-c.periodMin)/c.periodMin > 0.01 {
			t.Errorf("altitude %.0f km: period %.2f min, paper says %.1f", c.altKm, got, c.periodMin)
		}
	}
}

func TestSemiMajorForPeriodInverse(t *testing.T) {
	for _, alt := range []float64{400e3, 550e3, 1200e3, 1873e3} {
		e := Elements{SemiMajor: geom.EarthRadius + alt}
		a := SemiMajorForPeriod(e.Period())
		if math.Abs(a-e.SemiMajor) > 1 {
			t.Errorf("inverse semi-major drifted: %v vs %v", a, e.SemiMajor)
		}
	}
}

func TestPositionECIOnSphere(t *testing.T) {
	e := circular(550, 53, 40, 10)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		tt := rng.Float64() * 86400
		r := e.PositionECI(tt).Norm()
		if math.Abs(r-e.SemiMajor) > 1e-3 {
			t.Fatalf("radius drift at t=%v: %v", tt, r-e.SemiMajor)
		}
	}
}

func TestPositionPeriodicity(t *testing.T) {
	e := circular(550, 53, 40, 10)
	p0 := e.PositionECI(0)
	p1 := e.PositionECI(e.Period())
	if p0.Dist(p1) > 1 {
		t.Errorf("position not periodic: drift %v m", p0.Dist(p1))
	}
}

func TestVelocityOrthogonalToPosition(t *testing.T) {
	e := circular(550, 97.6, -60, 200)
	for _, tt := range []float64{0, 100, 1234, 5555} {
		p := e.PositionECI(tt)
		v := e.VelocityECI(tt)
		if math.Abs(p.Unit().Dot(v.Unit())) > 1e-9 {
			t.Errorf("velocity not tangential at t=%v", tt)
		}
		want := OrbitalVelocity(e.Altitude())
		if math.Abs(v.Norm()-want)/want > 1e-9 {
			t.Errorf("speed %v, want %v", v.Norm(), want)
		}
	}
}

func TestOrbitalVelocityIsAbout7kms(t *testing.T) {
	// §2.3: LEO satellites move at about 7 km/s.
	v := OrbitalVelocity(550e3)
	if v < 7.4e3 || v > 7.8e3 {
		t.Errorf("v at 550km = %v m/s", v)
	}
}

func TestMaxLatitude(t *testing.T) {
	e := circular(550, 53, 0, 0)
	maxLat := -100.0
	for _, p := range e.GroundTrack(2*e.Period(), 10) {
		if p.Lat > maxLat {
			maxLat = p.Lat
		}
	}
	if math.Abs(maxLat-e.MaxLatitude()) > 0.5 {
		t.Errorf("observed max lat %v, want %v", maxLat, e.MaxLatitude())
	}
	// Retrograde orbit: max latitude is the supplement.
	e2 := circular(550, 97.6, 0, 0)
	if got := e2.MaxLatitude(); math.Abs(got-82.4) > 1e-9 {
		t.Errorf("retrograde max lat = %v", got)
	}
}

func TestEquatorialOrbitStaysOnEquator(t *testing.T) {
	e := circular(550, 0, 0, 0)
	for _, p := range e.GroundTrack(e.Period(), 60) {
		if math.Abs(p.Lat) > 1e-6 {
			t.Fatalf("equatorial orbit left equator: %v", p)
		}
	}
}

func TestGroundTrackDriftsWestward(t *testing.T) {
	// A prograde LEO's ascending-node longitude shifts westward each orbit
	// because the Earth rotates under it.
	e := circular(550, 53, 0, 0)
	l0 := e.SubSatellitePoint(0).Lon
	l1 := e.SubSatellitePoint(e.Period()).Lon
	shift := geom.NormalizeLon(l1 - l0)
	wantShift := -360 * e.Period() / geom.SiderealDay
	if math.Abs(shift-wantShift) > 0.01 {
		t.Errorf("per-orbit drift = %v°, want %v°", shift, wantShift)
	}
}
