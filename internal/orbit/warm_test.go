package orbit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestWarmLifetimeBitIdentical is the warm path's core contract: with
// visibility-run reuse enabled, every Lifetime result is bit-identical
// to a cold cache's, across slot-aligned chains (where reuse actually
// fires) and arbitrary random times (where the bitwise sample guard
// must reject reuse rather than corrupt a result).
func TestWarmLifetimeBitIdentical(t *testing.T) {
	warm := newTestCache(6, 6)
	warm.EnableWarmLifetimes()
	cold := newTestCache(6, 6)
	rng := rand.New(rand.NewSource(7))
	n := warm.NumSats()
	// Slot-aligned chain: consecutive establishment times one step
	// apart, the delta compiler's access pattern.
	for slot := 0; slot < 8; slot++ {
		t0 := float64(slot) * 60
		for trial := 0; trial < 200; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			got := warm.Lifetime(i, j, t0)
			want := cold.Lifetime(i, j, t0)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("pair (%d,%d) t0=%v: warm %v != cold %v", i, j, t0, got, want)
			}
		}
	}
	// Misaligned times: reuse cannot fire bit-exactly, results must
	// still match.
	for trial := 0; trial < 500; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		t0 := rng.Float64() * 3600
		got := warm.Lifetime(i, j, t0)
		want := cold.Lifetime(i, j, t0)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("pair (%d,%d) t0=%v: warm %v != cold %v", i, j, t0, got, want)
		}
	}
	st := warm.Stats()
	if st.WarmSamples == 0 {
		t.Fatal("warm path evaluated no samples")
	}
	if st.WarmSkips == 0 {
		t.Error("slot-aligned chain skipped no samples; warm reuse never fired")
	}
	if r := st.WarmHitRatio(); r < 0 || r > 1 {
		t.Errorf("WarmHitRatio out of range: %v", r)
	}
	if cs := cold.Stats(); cs.WarmSamples != 0 || cs.WarmSkips != 0 {
		t.Errorf("cold cache reported warm work: %+v", cs)
	}
}

// TestCoverageMatchesDirect checks SlotGeom.Coverage against the
// straightforward per-satellite central-angle test it replaces.
func TestCoverageMatchesDirect(t *testing.T) {
	pc := newTestCache(6, 6)
	centers := []geom.LatLon{
		{Lat: 0, Lon: 0},
		{Lat: geom.Deg2Rad(20), Lon: geom.Deg2Rad(-40)},
		{Lat: geom.Deg2Rad(-35), Lon: geom.Deg2Rad(120)},
	}
	radius := make([]float64, pc.NumSats())
	for i, e := range pc.sats {
		radius[i] = DefaultCoverageParams.FootprintRadius(e.Altitude())
	}
	for _, tt := range []float64{0, 300, 3600} {
		g := pc.Slot(tt)
		cover := g.Coverage(centers, radius)
		for ci, c := range centers {
			var want []int
			for si := 0; si < pc.NumSats(); si++ {
				if geom.CentralAngle(g.SubPoint(si), c) <= radius[si] {
					want = append(want, si)
				}
			}
			if !intsEqual(cover[ci], want) {
				t.Errorf("t=%v cell %d: Coverage %v != direct %v", tt, ci, cover[ci], want)
			}
		}
	}
}

// TestChangedCells covers the diff used for changed-cell telemetry.
func TestChangedCells(t *testing.T) {
	prev := [][]int{{1, 2}, {3}, nil, {7}}
	cur := [][]int{{1, 2}, {3, 4}, nil, nil, {9}}
	got := ChangedCells(prev, cur)
	want := []int{1, 3, 4}
	if !intsEqual(got, want) {
		t.Errorf("ChangedCells = %v, want %v", got, want)
	}
	if ch := ChangedCells(nil, [][]int{nil, {1}}); !intsEqual(ch, []int{1}) {
		t.Errorf("nil prev: %v", ch)
	}
	if ch := ChangedCells(cur, cur); ch != nil {
		t.Errorf("identical coverage reported changes: %v", ch)
	}
}
