package orbit

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestRepeatSpecPeriodAndAltitude(t *testing.T) {
	// q=15, p=1: ~95.7 min, ~560 km (the paper's 573 km/95.9 min row with
	// their slightly different day constant).
	s := RepeatSpec{P: 1, Q: 15}
	if min := s.Period() / 60; math.Abs(min-95.7) > 0.5 {
		t.Errorf("1/15 period = %v min", min)
	}
	if alt := s.Altitude() / 1e3; alt < 540 || alt > 590 {
		t.Errorf("1/15 altitude = %v km", alt)
	}
}

func TestRepeatSpecValid(t *testing.T) {
	cases := []struct {
		s    RepeatSpec
		want bool
	}{
		{RepeatSpec{1, 15}, true},
		{RepeatSpec{2, 31}, true},
		{RepeatSpec{2, 30}, false}, // not reduced
		{RepeatSpec{0, 15}, false},
		{RepeatSpec{1, 0}, false},
		{RepeatSpec{3, 44}, true},
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v", c.s, got)
		}
	}
}

func TestEnumerateRepeatSpecsPaperBand(t *testing.T) {
	// The paper's Table 1 band: 423–1,873 km, 92.8–124.2 min.
	specs := EnumerateRepeatSpecs(4, 423e3, 1873e3)
	if len(specs) == 0 {
		t.Fatal("no specs enumerated")
	}
	seen := map[RepeatSpec]bool{}
	for _, s := range specs {
		if !s.Valid() {
			t.Errorf("invalid spec %v", s)
		}
		if seen[s] {
			t.Errorf("duplicate spec %v", s)
		}
		seen[s] = true
		alt := s.Altitude()
		if alt < 423e3-1 || alt > 1873e3+1 {
			t.Errorf("spec %v altitude %v km out of band", s, alt/1e3)
		}
		if min := s.Period() / 60; min < 92 || min > 125 {
			t.Errorf("spec %v period %v min out of band", s, min)
		}
	}
	// p=1 must include the classic integer rev/day orbits q=12..15.
	for q := 12; q <= 15; q++ {
		if !seen[RepeatSpec{1, q}] {
			t.Errorf("missing 1/%d repeat orbit", q)
		}
	}
}

func TestGroundTrackRepeats(t *testing.T) {
	// The defining property: after p sidereal days (q revolutions) the
	// sub-satellite point returns to where it started.
	for _, s := range []RepeatSpec{{1, 14}, {1, 15}, {2, 29}, {3, 44}} {
		e := s.Elements(geom.Deg2Rad(53), geom.Deg2Rad(30), geom.Deg2Rad(77))
		p0 := e.SubSatellitePoint(0)
		p1 := e.SubSatellitePoint(s.RepeatCycle())
		if d := geom.GreatCircleDist(p0, p1); d > 1e3 {
			t.Errorf("spec %v: track did not repeat, drift %v km", s, d/1e3)
		}
		// And at a half cycle it generally is somewhere else (non-trivial).
		pm := e.SubSatellitePoint(s.RepeatCycle() / 7)
		if geom.GreatCircleDist(p0, pm) < 1e3 {
			t.Errorf("spec %v: track suspiciously static", s)
		}
	}
}

func TestNonRepeatOrbitDoesNotRepeat(t *testing.T) {
	// An orbit with an irrational rev/day ratio must not return to its
	// starting ground point after one sidereal day.
	e := Elements{SemiMajor: geom.EarthRadius + 550.1234e3, Inclination: geom.Deg2Rad(53)}
	p0 := e.SubSatellitePoint(0)
	p1 := e.SubSatellitePoint(geom.SiderealDay)
	if geom.GreatCircleDist(p0, p1) < 50e3 {
		t.Error("non-repeat orbit repeated unexpectedly")
	}
}

func TestRepeatElementsRoundTrip(t *testing.T) {
	s := RepeatSpec{P: 1, Q: 15}
	e := s.Elements(1.1, -0.5, 2.2)
	if math.Abs(e.Period()-s.Period()) > 1e-6 {
		t.Errorf("period mismatch")
	}
	if e.Inclination != 1.1 || e.RAAN != -0.5 || e.Phase != 2.2 {
		t.Errorf("elements not preserved: %+v", e)
	}
}
