package orbit

import (
	"math"

	"repro/internal/geom"
)

// RepeatSpec identifies an Earth-repeat orbit family per Equation 1 of the
// paper: the satellite completes q orbital revolutions in exactly p Earth
// rotations (sidereal days), so its ground track repeats with period
// p·T⊕ = q·T.
type RepeatSpec struct {
	P int // Earth rotations per repeat cycle
	Q int // orbital revolutions per repeat cycle
}

// Period returns the orbital period T = p·T⊕/q in seconds.
func (r RepeatSpec) Period() float64 {
	return float64(r.P) * geom.SiderealDay / float64(r.Q)
}

// RepeatCycle returns the ground-track repeat period p·T⊕ in seconds.
func (r RepeatSpec) RepeatCycle() float64 {
	return float64(r.P) * geom.SiderealDay
}

// Altitude returns the circular-orbit altitude (m) implied by the repeat
// period.
func (r RepeatSpec) Altitude() float64 {
	return SemiMajorForPeriod(r.Period()) - geom.EarthRadius
}

// Valid reports whether the spec is a reduced positive fraction (the paper
// requires p, q ∈ N+ and distinct tracks, i.e. gcd(p,q)=1).
func (r RepeatSpec) Valid() bool {
	return r.P > 0 && r.Q > 0 && gcd(r.P, r.Q) == 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// EnumerateRepeatSpecs returns all reduced (p,q) pairs with p ≤ maxP whose
// circular-orbit altitude lies within [minAlt, maxAlt] meters. With maxP=4
// and the paper's 423–1,873 km band this yields the track families of
// Table 1 (92.8–124.2 min periods) and their near-repeat relatives.
func EnumerateRepeatSpecs(maxP int, minAlt, maxAlt float64) []RepeatSpec {
	var specs []RepeatSpec
	for p := 1; p <= maxP; p++ {
		// q/p is revolutions per sidereal day; LEO is roughly 11–16 rev/day.
		qLo := int(math.Floor(float64(p) * geom.SiderealDay / periodForAltitude(maxAlt)))
		qHi := int(math.Ceil(float64(p) * geom.SiderealDay / periodForAltitude(minAlt)))
		for q := qLo; q <= qHi; q++ {
			s := RepeatSpec{P: p, Q: q}
			if !s.Valid() {
				continue
			}
			if alt := s.Altitude(); alt >= minAlt && alt <= maxAlt {
				specs = append(specs, s)
			}
		}
	}
	return specs
}

func periodForAltitude(alt float64) float64 {
	a := geom.EarthRadius + alt
	return 2 * math.Pi * math.Sqrt(a*a*a/geom.EarthMu)
}

// RepeatElements builds the concrete orbit slot for a repeat spec with the
// given inclination, RAAN, and initial phase (all radians).
func (r RepeatSpec) Elements(inclination, raan, phase float64) Elements {
	return Elements{
		SemiMajor:   SemiMajorForPeriod(r.Period()),
		Inclination: inclination,
		RAAN:        raan,
		Phase:       phase,
	}
}
