package orbit

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// This file implements the propagation cache behind TinyLEO's horizon
// compile (paper §4.2: the MPC "precomputes each satellite's serving
// cells" offline and only assembles topologies online). Orbit propagation
// and pairwise ISL-lifetime prediction dominate the compile cost; both
// are pure functions of (satellite, time), so a constellation-wide
// memo — shared by every control slot of a planning horizon and by
// incremental Repair — removes the redundant geometry work without
// changing a single output bit.

// cacheShards spreads the memo maps over independently locked shards so
// the horizon planner's worker pool does not serialize on one mutex.
const cacheShards = 64

// maxShardEntries bounds each shard; a shard that grows past the bound is
// reset wholesale (memoization is a pure cache, so dropping entries only
// costs recomputation).
const maxShardEntries = 1 << 14

// posKey identifies a memoized propagation: satellite index and the exact
// time quantized to its float64 bit pattern. Keying on the bit pattern
// makes cached positions bit-identical to direct propagation — equal
// times share an entry, near-equal times do not alias.
type posKey struct {
	sat   int32
	tbits uint64
}

// pairKey identifies a memoized ISL lifetime: a normalized satellite pair
// (a < b) and the establishment time's bit pattern.
type pairKey struct {
	a, b  int32
	tbits uint64
}

type posShard struct {
	mu sync.RWMutex
	//tinyleo:guardedby mu
	m map[posKey]geom.Vec3
}

type lifeShard struct {
	mu sync.RWMutex
	//tinyleo:guardedby mu
	m map[pairKey]float64
}

// visRun records the outcome of one lifetime evaluation for a satellite
// pair: which visibility samples the stepping loop observed and what they
// were. A later evaluation of the same pair at a nearby establishment
// time re-derives most of its samples from the record instead of calling
// Visible — soundly, because a sample is only reused when its absolute
// time is bit-identical to one the recorded run actually evaluated, and
// visibility is a pure function of (pair, time).
type visRun struct {
	base    float64 // establishment time of the recorded run
	lastVis float64 // latest sample time known visible (valid if visAny)
	end     float64 // first sample time known invisible (valid if !capped)
	visAny  bool    // at least one visible sample was observed
	capped  bool    // the run reached the horizon without going invisible
}

type runShard struct {
	mu sync.Mutex
	//tinyleo:guardedby mu
	m map[[2]int32]visRun
}

// PropCache memoizes orbit propagation for a fixed satellite set: ECI
// positions keyed by (satellite, quantized time), predicted ISL lifetimes
// keyed by (pair, quantized time), and per-slot geometry (sub-satellite
// points plus a spatial pruning grid) keyed by slot time.
//
// The ISL parameters and the lifetime prediction window (horizon, step)
// are fixed at construction, matching their lifecycle in mpc.Config; a
// controller that changes them needs a new cache.
//
// All methods are safe for concurrent use; cached values are
// bit-identical to calling the underlying Elements/ISLParams methods
// directly, so a cached compile path produces byte-identical topologies.
type PropCache struct {
	sats    []Elements
	isl     ISLParams
	horizon float64 // lifetime prediction horizon (s)
	step    float64 // lifetime prediction step (s)

	pos  [cacheShards]posShard
	life [cacheShards]lifeShard

	// warm gates the per-pair visibility-run reuse in computeLifetime;
	// offs precomputes the stepping loop's accumulated sample offsets so
	// a recorded sample's absolute time can be reproduced bit-exactly.
	warm atomic.Bool
	offs []float64
	runs [cacheShards]runShard

	slotMu sync.Mutex
	//tinyleo:guardedby slotMu
	slots map[uint64]*slotEntry

	posHits     atomic.Uint64
	posMisses   atomic.Uint64
	lifeHits    atomic.Uint64
	lifeMisses  atomic.Uint64
	pruned      atomic.Uint64
	warmSamples atomic.Uint64
	warmSkips   atomic.Uint64
}

type slotEntry struct {
	once sync.Once
	g    *SlotGeom
}

// NewPropCache creates a propagation cache over sats with the given ISL
// visibility constraints and lifetime prediction window (horizon and step
// in seconds, as in mpc.Config).
func NewPropCache(sats []Elements, isl ISLParams, lifetimeHorizon, lifetimeStep float64) *PropCache {
	pc := &PropCache{
		sats:    sats,
		isl:     isl,
		horizon: lifetimeHorizon,
		step:    lifetimeStep,
		slots:   map[uint64]*slotEntry{},
	}
	for i := range pc.pos {
		pc.pos[i].m = map[posKey]geom.Vec3{}
	}
	for i := range pc.life {
		pc.life[i].m = map[pairKey]float64{}
	}
	for i := range pc.runs {
		pc.runs[i].m = map[[2]int32]visRun{}
	}
	// Mirror computeLifetime's accumulation (t += step) exactly so
	// offs[m] reproduces the m-th sample offset bit for bit.
	pc.offs = append(pc.offs, 0)
	for t := pc.step; t <= pc.horizon; t += pc.step {
		pc.offs = append(pc.offs, t)
	}
	return pc
}

// EnableWarmLifetimes turns on per-pair visibility-run reuse: lifetime
// evaluations record which samples they observed, and later evaluations
// of the same pair skip samples whose absolute time is bit-identical to
// a recorded observation. Outputs stay bit-identical to the cold path —
// only redundant Visible calls are elided. Safe to call at any time;
// once on, it stays on for the cache's lifetime.
func (pc *PropCache) EnableWarmLifetimes() { pc.warm.Store(true) }

// NumSats returns the size of the cached satellite set.
func (pc *PropCache) NumSats() int { return len(pc.sats) }

// shardIndex mixes a key into a shard slot (Fibonacci hashing on the
// time bits, offset by the satellite index so same-time lookups of
// different satellites spread too).
func shardIndex(a, b int32, tbits uint64) int {
	h := tbits*0x9e3779b97f4a7c15 + uint64(a)*0x85ebca6b + uint64(b)*0xc2b2ae35
	return int((h >> 32) % cacheShards)
}

// PositionECI returns satellite i's ECI position at time t, memoized.
// The value is bit-identical to pc's Elements[i].PositionECI(t).
func (pc *PropCache) PositionECI(i int, t float64) geom.Vec3 {
	k := posKey{sat: int32(i), tbits: math.Float64bits(t)}
	sh := &pc.pos[shardIndex(k.sat, 0, k.tbits)]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		pc.posHits.Add(1)
		return v
	}
	pc.posMisses.Add(1)
	v = pc.sats[i].PositionECI(t)
	sh.mu.Lock()
	if len(sh.m) >= maxShardEntries {
		sh.m = make(map[posKey]geom.Vec3, maxShardEntries/4)
	}
	sh.m[k] = v
	sh.mu.Unlock()
	return v
}

// Lifetime returns the predicted ISL lifetime τ between satellites i and
// j established at time t0, memoized per (pair, time). It equals
// ISLLifetime(sats[i], sats[j], t0, horizon, step, isl) bit for bit: the
// stepping loop below mirrors ISLLifetime's accumulation exactly, only
// sourcing positions from the memo.
func (pc *PropCache) Lifetime(i, j int, t0 float64) float64 {
	if i > j {
		i, j = j, i
	}
	k := pairKey{a: int32(i), b: int32(j), tbits: math.Float64bits(t0)}
	sh := &pc.life[shardIndex(k.a, k.b, k.tbits)]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		pc.lifeHits.Add(1)
		return v
	}
	pc.lifeMisses.Add(1)
	v = pc.computeLifetime(i, j, t0)
	sh.mu.Lock()
	if len(sh.m) >= maxShardEntries {
		sh.m = make(map[pairKey]float64, maxShardEntries/4)
	}
	sh.m[k] = v
	sh.mu.Unlock()
	return v
}

// computeLifetime is ISLLifetime with memoized propagation. The loop
// structure (t += dt accumulation, <= horizon bound) must stay identical
// to ISLLifetime so both paths evaluate the same float64 times.
func (pc *PropCache) computeLifetime(i, j int, t0 float64) float64 {
	if pc.warm.Load() {
		return pc.warmLifetime(i, j, t0)
	}
	if !pc.isl.Visible(pc.PositionECI(i, t0), pc.PositionECI(j, t0)) {
		return 0
	}
	for t := pc.step; t <= pc.horizon; t += pc.step {
		if !pc.isl.Visible(pc.PositionECI(i, t0+t), pc.PositionECI(j, t0+t)) {
			return t
		}
	}
	return pc.horizon
}

// warmLifetime is computeLifetime with per-pair visibility-run reuse: it
// walks the identical sample sequence, but resolves any sample whose
// absolute time bit-matches one the pair's previous run observed from
// the record instead of calling Visible. Because visibility is a pure
// function of (pair, time) and reuse requires bitwise time identity, the
// returned τ is bit-identical to the cold path.
func (pc *PropCache) warmLifetime(i, j int, t0 float64) float64 {
	key := [2]int32{int32(i), int32(j)}
	sh := &pc.runs[shardIndex(key[0], key[1], 0)]
	sh.mu.Lock()
	r, hasRun := sh.m[key]
	sh.mu.Unlock()
	// The run's sample grid and ours share the step, so the candidate
	// record index of sample idx is idx plus a constant base shift —
	// computed once here instead of a Round+divide per sample. lookup's
	// bitwise time check still validates every candidate, so a wrong
	// guess degrades to a real Visible call, never a wrong answer.
	shift := 0
	if hasRun {
		shift = int(math.Round((t0 - r.base) / pc.step))
	}
	var samples, skips uint64
	offs := pc.offs
	// visible resolves one sample, preferring the recorded run. The fast
	// path is inlined (no lookup call) because a warm delta compile walks
	// it for nearly every sample of every pair evaluation.
	visible := func(idx int, s float64) bool {
		samples++
		if hasRun {
			if m := idx + shift; m >= 0 && m < len(offs) && r.base+offs[m] == s {
				if r.visAny && s <= r.lastVis {
					skips++
					return true
				}
				if !r.capped && s == r.end {
					skips++
					return false
				}
			}
		}
		return pc.isl.Visible(pc.PositionECI(i, s), pc.PositionECI(j, s))
	}
	nr := visRun{base: t0}
	tau := pc.horizon
	if !visible(0, t0) {
		tau = 0
		nr.end = t0
	} else {
		nr.visAny, nr.lastVis, nr.capped = true, t0, true
		idx := 1
		for t := pc.step; t <= pc.horizon; t += pc.step {
			s := t0 + t
			if !visible(idx, s) {
				tau = t
				nr.end, nr.capped = s, false
				break
			}
			nr.lastVis = s
			idx++
		}
	}
	sh.mu.Lock()
	if len(sh.m) >= maxShardEntries {
		sh.m = make(map[[2]int32]visRun, maxShardEntries/4)
	}
	sh.m[key] = nr
	sh.mu.Unlock()
	pc.warmSamples.Add(samples)
	pc.warmSkips.Add(skips)
	return tau
}

// Slot returns the memoized per-slot geometry at time t, building it on
// first use. Concurrent callers for the same t share one build.
func (pc *PropCache) Slot(t float64) *SlotGeom {
	key := math.Float64bits(t)
	pc.slotMu.Lock()
	e, ok := pc.slots[key]
	if !ok {
		e = &slotEntry{}
		pc.slots[key] = e
	}
	pc.slotMu.Unlock()
	e.once.Do(func() { e.g = pc.buildSlot(t) })
	return e.g
}

// DropSlotsBefore evicts slot geometries older than t (long-running
// controllers compile an unbounded slot sequence; position/lifetime memos
// are already bounded by per-shard resets).
func (pc *PropCache) DropSlotsBefore(t float64) {
	pc.slotMu.Lock()
	defer pc.slotMu.Unlock()
	for key, e := range pc.slots {
		if math.Float64frombits(key) < t && e.g != nil {
			delete(pc.slots, key)
		}
	}
}

func (pc *PropCache) buildSlot(t float64) *SlotGeom {
	g := &SlotGeom{
		cache:    pc,
		Time:     t,
		pos:      make([]geom.Vec3, len(pc.sats)),
		sub:      make([]geom.LatLon, len(pc.sats)),
		maxRange: pc.isl.MaxRange,
	}
	rot := -GMST(t)
	g.subU = make([]geom.Vec3, len(pc.sats))
	for i := range pc.sats {
		p := pc.PositionECI(i, t)
		g.pos[i] = p
		// Identical to Elements.SubSatellitePoint: ECEF = ECI·RotZ(−GMST).
		g.sub[i] = geom.FromUnit(p.RotZ(rot))
		// Memoize the sub-point's unit vector (ToUnit is pure, so this is
		// the exact vector CentralAngle would derive) for Coverage.
		g.subU[i] = g.sub[i].ToUnit()
	}
	if g.maxRange > 0 {
		g.bucket = make([][3]int32, len(pc.sats))
		inv := 1 / g.maxRange
		for i, p := range g.pos {
			g.bucket[i] = [3]int32{
				int32(math.Floor(p.X * inv)),
				int32(math.Floor(p.Y * inv)),
				int32(math.Floor(p.Z * inv)),
			}
		}
	}
	return g
}

// Stats returns cumulative cache counters (monotonic since construction).
func (pc *PropCache) Stats() CacheStats {
	return CacheStats{
		PosHits:     pc.posHits.Load(),
		PosMisses:   pc.posMisses.Load(),
		LifeHits:    pc.lifeHits.Load(),
		LifeMisses:  pc.lifeMisses.Load(),
		PrunedPairs: pc.pruned.Load(),
		WarmSamples: pc.warmSamples.Load(),
		WarmSkips:   pc.warmSkips.Load(),
	}
}

// CacheStats reports PropCache effectiveness: memo hits and misses for
// positions and pair lifetimes, candidate pairs the spatial grid pruned
// without any propagation, and — when warm lifetimes are enabled — how
// many visibility samples were evaluated and how many of those were
// resolved from a prior run's record without calling Visible.
type CacheStats struct {
	PosHits, PosMisses     uint64
	LifeHits, LifeMisses   uint64
	PrunedPairs            uint64
	WarmSamples, WarmSkips uint64
}

// WarmHitRatio returns the fraction of visibility samples resolved from
// recorded runs instead of fresh geometry, in [0, 1]; zero samples yield
// 0. This is the honest "warm hit" figure for delta compiles: it counts
// only work actually skipped.
func (s CacheStats) WarmHitRatio() float64 {
	if s.WarmSamples == 0 {
		return 0
	}
	return float64(s.WarmSkips) / float64(s.WarmSamples)
}

// HitRatio returns the fraction of all memo lookups served from cache,
// in [0, 1]; zero lookups yield 0.
func (s CacheStats) HitRatio() float64 {
	hits := s.PosHits + s.LifeHits
	total := hits + s.PosMisses + s.LifeMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// SlotGeom is the geometry of one control slot: every satellite's ECI
// position and sub-satellite point at the slot time, plus a uniform
// spatial grid (cell edge = ISL max range) that prunes out-of-range ISL
// candidate pairs before any lifetime prediction runs. Instances are
// built by PropCache.Slot and are immutable afterwards, so they are safe
// to share across goroutines.
type SlotGeom struct {
	cache *PropCache
	// Time is the slot time (seconds since epoch) the geometry was
	// propagated at.
	Time     float64
	pos      []geom.Vec3
	sub      []geom.LatLon
	subU     []geom.Vec3 // sub[i].ToUnit(), memoized for Coverage
	bucket   [][3]int32
	maxRange float64
}

// Position returns satellite i's ECI position at the slot time.
func (g *SlotGeom) Position(i int) geom.Vec3 { return g.pos[i] }

// SubPoint returns satellite i's sub-satellite point at the slot time,
// bit-identical to Elements.SubSatellitePoint.
func (g *SlotGeom) SubPoint(i int) geom.LatLon { return g.sub[i] }

// Coverage computes the slot's satellite→cell coverage: cover[ci] lists,
// in ascending satellite order, every satellite whose footprint (angular
// radius radius[s]) covers centers[ci]. This is the MPC's stage-0 query;
// exposing it here lets the delta compiler diff consecutive slots'
// coverage (ChangedCells) without re-deriving sub-satellite points.
func (g *SlotGeom) Coverage(centers []geom.LatLon, radius []float64) [][]int {
	cover := make([][]int, len(centers))
	// CentralAngle(sub, c) is AngleTo over the two ToUnit vectors; both
	// conversions are pure, so hoisting them out of the pair loop keeps
	// every comparison bit-identical while doing the trig once per point
	// instead of once per (satellite, cell) pair.
	cu := make([]geom.Vec3, len(centers))
	for ci, c := range centers {
		cu[ci] = c.ToUnit()
	}
	for si := range g.sub {
		su := g.subU[si]
		lam := radius[si]
		for ci := range centers {
			if su.AngleTo(cu[ci]) <= lam {
				cover[ci] = append(cover[ci], si)
			}
		}
	}
	return cover
}

// ChangedCells returns the indices whose coverage list differs between
// two Coverage results (aligned by index). A nil prev marks every
// non-empty cur cell changed.
func ChangedCells(prev, cur [][]int) []int {
	n := len(cur)
	if len(prev) > n {
		n = len(prev)
	}
	var changed []int
	for ci := 0; ci < n; ci++ {
		var p, c []int
		if ci < len(prev) {
			p = prev[ci]
		}
		if ci < len(cur) {
			c = cur[ci]
		}
		if !intsEqual(p, c) {
			changed = append(changed, ci)
		}
	}
	return changed
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InRange reports whether satellites i and j are within ISL range at the
// slot time. A false result is exact — the pair's distance exceeds
// MaxRange, so its ISL lifetime at this time is exactly 0 and the
// matching stage can skip it without changing any output. With an
// unlimited-range ISL configuration every pair is in range.
//
// The check is grid-first: any pair within MaxRange occupies the same or
// adjacent grid cells on every axis, so differing by two or more cells
// rejects without computing a distance.
func (g *SlotGeom) InRange(i, j int) bool {
	if g.maxRange <= 0 {
		return true
	}
	bi, bj := g.bucket[i], g.bucket[j]
	if bi[0]-bj[0] > 1 || bj[0]-bi[0] > 1 ||
		bi[1]-bj[1] > 1 || bj[1]-bi[1] > 1 ||
		bi[2]-bj[2] > 1 || bj[2]-bi[2] > 1 {
		g.cache.pruned.Add(1)
		return false
	}
	if g.pos[i].DistSq(g.pos[j]) > g.maxRange*g.maxRange {
		g.cache.pruned.Add(1)
		return false
	}
	return true
}
