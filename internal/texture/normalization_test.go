package texture

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/orbit"
)

// TestCoverageCapacityNormalized pins the supply model of §4.1: A_t(i,j)
// is the fraction of satellite j's radio capacity over cell i, so each
// track's coverage sums to exactly 1 in every slot where it covers
// anything — a wide footprint spreads capacity, it does not multiply it.
func TestCoverageCapacityNormalized(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := lib.Grid.NumCells()
	for j := 0; j < lib.NumTracks(); j++ {
		perSlot := make([]float64, lib.Slots)
		lib.TrackRow(j, func(idx int, frac float64) {
			perSlot[idx/m] += frac
		})
		for s, sum := range perSlot {
			if sum == 0 {
				continue // footprint missed every cell center this slot
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("track %d slot %d capacity sums to %v, want 1", j, s, sum)
			}
		}
	}
}

// TestHighAltitudeDoesNotMultiplyCapacity compares a low and a high track:
// the high one covers more cells but the same total capacity.
func TestHighAltitudeDoesNotMultiplyCapacity(t *testing.T) {
	cfg := Config{
		Grid:            geo.MustGrid(10),
		Specs:           []orbit.RepeatSpec{{P: 1, Q: 15}, {P: 1, Q: 12}}, // ~560 km vs ~1,670 km
		InclinationsDeg: []float64{53},
		RAANs:           1, Phases: 1, Slots: 6, SlotSeconds: 900, SubSamples: 2,
	}
	lib, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lib.NumTracks() != 2 {
		t.Fatalf("tracks = %d", lib.NumTracks())
	}
	var lo, hi int
	if lib.Tracks[0].Elements.Altitude() < lib.Tracks[1].Elements.Altitude() {
		lo, hi = 0, 1
	} else {
		lo, hi = 1, 0
	}
	if lib.TrackNNZ(hi) <= lib.TrackNNZ(lo) {
		t.Errorf("high track covers %d entries, low covers %d; expected more cells at altitude",
			lib.TrackNNZ(hi), lib.TrackNNZ(lo))
	}
	sum := func(j int) float64 {
		s := 0.0
		lib.TrackRow(j, func(_ int, v float64) { s += v })
		return s
	}
	// Total capacity over the horizon differs by at most the number of
	// empty slots, never by the footprint ratio.
	if sum(hi) > sum(lo)*1.5+1e-9 {
		t.Errorf("altitude multiplied capacity: %v vs %v", sum(hi), sum(lo))
	}
}
