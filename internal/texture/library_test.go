package texture

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/orbit"
)

// smallConfig is a fast library for unit tests: coarse grid, few candidates,
// short horizon.
func smallConfig() Config {
	return Config{
		Grid:            geo.MustGrid(10),
		Specs:           []orbit.RepeatSpec{{P: 1, Q: 15}, {P: 1, Q: 13}},
		InclinationsDeg: []float64{53, 85},
		RAANs:           4,
		Phases:          2,
		Slots:           8,
		SlotSeconds:     900,
		SubSamples:      2,
	}
}

func TestBuildEnumeratesExpectedCount(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 4 * 2 // specs × inclinations × RAANs × phases
	if lib.NumTracks() != want {
		t.Errorf("tracks = %d, want %d", lib.NumTracks(), want)
	}
	if lib.UnfoldedLen() != 8*lib.Grid.NumCells() {
		t.Errorf("unfolded len = %d", lib.UnfoldedLen())
	}
}

func TestBuildOccupiedFilter(t *testing.T) {
	cfg := smallConfig()
	cfg.Occupied = func(spec orbit.RepeatSpec, incDeg, raanDeg float64) bool {
		return spec.Q == 15 // exclude the whole q=15 family
	}
	lib, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range lib.Tracks {
		if tr.Spec.Q == 15 {
			t.Fatal("occupied track not filtered")
		}
	}
	cfg.Occupied = func(orbit.RepeatSpec, float64, float64) bool { return true }
	if _, err := Build(cfg); err == nil {
		t.Error("all-filtered library should error")
	}
}

func TestCoverageValuesAreFractions(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < lib.NumTracks(); j++ {
		lib.TrackRow(j, func(idx int, frac float64) {
			if frac <= 0 || frac > 1+1e-12 {
				t.Fatalf("track %d idx %d frac %v", j, idx, frac)
			}
		})
	}
}

func TestCoverageMatchesGeometry(t *testing.T) {
	// Every full-coverage entry (frac == 1) must indeed be covered at the
	// slot's sampled instants per the orbit geometry.
	cfg := smallConfig()
	cfg.SubSamples = 1 // entries are then exactly instantaneous coverage
	lib, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := 3
	el := lib.Tracks[j].Elements
	cov := lib.Coverage
	n := 0
	lib.TrackCoverage(j, func(slot, cell int, frac float64) {
		n++
		tt := float64(slot) * cfg.SlotSeconds
		if !cov.Covers(el, tt, lib.Grid.Center(cell)) {
			t.Fatalf("slot %d cell %d claimed covered but geometry disagrees", slot, cell)
		}
	})
	if n == 0 {
		t.Fatal("track has empty coverage")
	}
}

func TestEveryTrackCoversSomething(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < lib.NumTracks(); j++ {
		if lib.TrackNNZ(j) == 0 {
			t.Errorf("track %d covers nothing", j)
		}
	}
}

func TestSupplyLinearInX(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]int, lib.NumTracks())
	x1[0] = 1
	x3 := make([]int, lib.NumTracks())
	x3[0] = 3
	s1 := lib.Supply(x1)
	s3 := lib.Supply(x3)
	for k := range s1 {
		if math.Abs(s3[k]-3*s1[k]) > 1e-12 {
			t.Fatalf("supply not linear at %d: %v vs %v", k, s3[k], s1[k])
		}
	}
}

func TestSupplyAdditive(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	xa := make([]int, lib.NumTracks())
	xb := make([]int, lib.NumTracks())
	xa[1], xb[5] = 2, 1
	sa, sb := lib.Supply(xa), lib.Supply(xb)
	xc := make([]int, lib.NumTracks())
	xc[1], xc[5] = 2, 1
	sc := lib.Supply(xc)
	for k := range sc {
		if math.Abs(sc[k]-sa[k]-sb[k]) > 1e-12 {
			t.Fatalf("supply not additive at %d", k)
		}
	}
}

func TestStats(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := lib.Stats()
	if s.NumTracks != lib.NumTracks() || s.NumSpecs != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MinAltKm < 400 || s.MaxAltKm > 1900 || s.MinAltKm > s.MaxAltKm {
		t.Errorf("altitudes = %v..%v", s.MinAltKm, s.MaxAltKm)
	}
	if s.MinPeriodMin < 90 || s.MaxPeriodMin > 130 {
		t.Errorf("periods = %v..%v", s.MinPeriodMin, s.MaxPeriodMin)
	}
	if s.CoverageEntriesTotal != lib.NNZ() {
		t.Error("nnz mismatch")
	}
}

func TestDefaultsApplied(t *testing.T) {
	// A zero config (plus a coarse grid for speed) must fill defaults and
	// produce the paper's altitude band.
	lib, err := Build(Config{Grid: geo.MustGrid(20), RAANs: 2, Phases: 1, Slots: 2, SubSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lib.SlotSeconds != 900 {
		t.Errorf("default slot seconds = %v", lib.SlotSeconds)
	}
	st := lib.Stats()
	if st.MinAltKm < 420 || st.MaxAltKm > 1880 {
		t.Errorf("default band = %v..%v km", st.MinAltKm, st.MaxAltKm)
	}
}

func TestTrackParamAccessors(t *testing.T) {
	lib, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := lib.Tracks[0]
	if tr.InclinationDeg() != 53 {
		t.Errorf("inc = %v", tr.InclinationDeg())
	}
	if tr.RAANDeg() < -180 || tr.RAANDeg() >= 180 {
		t.Errorf("raan = %v", tr.RAANDeg())
	}
	if tr.PhaseDeg() < 0 || tr.PhaseDeg() >= 360 {
		t.Errorf("phase = %v", tr.PhaseDeg())
	}
}
