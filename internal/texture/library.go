// Package texture builds TinyLEO's Earth-repeat ground-track ("texture")
// library (paper §4.1, Table 1): an over-complete set of candidate orbital
// slots, each with its spatiotemporal coverage over the geographic cell
// grid, stored track-major in CSR form so the synthesizer's matching
// pursuit can scan candidate columns in parallel.
package texture

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/orbit"
	"repro/internal/sparse"
)

// Track is one candidate orbital slot: an Earth-repeat family plus a
// concrete inclination, RAAN, and initial phase. Placing x satellites on a
// Track multiplies its coverage column by x (the paper's linear supply
// model A_t·x).
type Track struct {
	Spec     orbit.RepeatSpec
	Elements orbit.Elements
}

// InclinationDeg returns the track's inclination β in degrees.
func (t Track) InclinationDeg() float64 { return geom.Rad2Deg(t.Elements.Inclination) }

// RAANDeg returns the track's right ascension α in degrees.
func (t Track) RAANDeg() float64 { return geom.Rad2Deg(t.Elements.RAAN) }

// PhaseDeg returns the track's initial argument of latitude in degrees.
func (t Track) PhaseDeg() float64 { return geom.Rad2Deg(t.Elements.Phase) }

// Config parameterizes library generation.
type Config struct {
	Grid *geo.Grid
	// Specs are the Earth-repeat (p,q) families to include. If empty,
	// orbit.EnumerateRepeatSpecs(2, 423 km, 1,873 km) — the paper's Table 1
	// altitude band — is used.
	Specs []orbit.RepeatSpec
	// InclinationsDeg is the β grid. If empty a default ±{30,53,70,85}°
	// prograde/retrograde mix is used.
	InclinationsDeg []float64
	// RAANs is the number of evenly spaced right ascensions α in [-180,180).
	RAANs int
	// Phases is the number of evenly spaced initial phases per orbit.
	Phases int
	// Slots and SlotSeconds define the planning horizon (temporal
	// unfolding). The paper samples demand at 15-minute intervals.
	Slots       int
	SlotSeconds float64
	// SubSamples is the number of instants sampled inside each slot;
	// A(i,j) is the fraction of sampled instants at which track j covers
	// cell i, realizing the paper's fractional coverage A_t(i,j) ∈ [0,1].
	SubSamples int
	// Coverage sets the radio footprint geometry.
	Coverage orbit.CoverageParams
	// Occupied, if non-nil, filters out orbits already occupied or
	// allocated per the space-track/ITU databases the paper consults
	// (§5); return true to exclude the candidate.
	Occupied func(spec orbit.RepeatSpec, incDeg, raanDeg float64) bool
	// Parallelism bounds the number of worker goroutines (0 = NumCPU).
	Parallelism int
}

func (c *Config) fillDefaults() {
	if c.Grid == nil {
		c.Grid = geo.DefaultGrid()
	}
	if len(c.Specs) == 0 {
		c.Specs = orbit.EnumerateRepeatSpecs(2, 423e3, 1873e3)
	}
	if len(c.InclinationsDeg) == 0 {
		c.InclinationsDeg = []float64{30, 53, 70, 85, 97.6, -30, -53, -70}
	}
	if c.RAANs <= 0 {
		c.RAANs = 12
	}
	if c.Phases <= 0 {
		c.Phases = 4
	}
	if c.Slots <= 0 {
		c.Slots = 96
	}
	if c.SlotSeconds <= 0 {
		c.SlotSeconds = 900
	}
	if c.SubSamples <= 0 {
		c.SubSamples = 3
	}
	if c.Coverage.MinElevation == 0 {
		c.Coverage = orbit.DefaultCoverageParams
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// Library is the assembled texture library: candidate tracks plus their
// coverage over the unfolded (slot × cell) space.
type Library struct {
	Grid        *geo.Grid
	Tracks      []Track
	Slots       int
	SlotSeconds float64
	Coverage    orbit.CoverageParams

	// mat is track-major: mat[j] is track j's coverage row over the
	// unfolded index space slot*m + cell (i.e. Ãᵀ of the paper).
	mat *sparse.Matrix
}

// Build enumerates candidates and computes their coverage in parallel.
func Build(cfg Config) (*Library, error) {
	cfg.fillDefaults()
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("texture: no repeat specs in configuration")
	}
	var tracks []Track
	for _, spec := range cfg.Specs {
		for _, incDeg := range cfg.InclinationsDeg {
			for a := 0; a < cfg.RAANs; a++ {
				raanDeg := -180 + 360*float64(a)/float64(cfg.RAANs)
				if cfg.Occupied != nil && cfg.Occupied(spec, incDeg, raanDeg) {
					continue
				}
				for ph := 0; ph < cfg.Phases; ph++ {
					phase := 2 * 3.141592653589793 * float64(ph) / float64(cfg.Phases)
					el := spec.Elements(geom.Deg2Rad(incDeg), geom.Deg2Rad(raanDeg), phase)
					tracks = append(tracks, Track{Spec: spec, Elements: el})
				}
			}
		}
	}
	if len(tracks) == 0 {
		return nil, fmt.Errorf("texture: all candidates filtered out")
	}
	lib := &Library{
		Grid:        cfg.Grid,
		Tracks:      tracks,
		Slots:       cfg.Slots,
		SlotSeconds: cfg.SlotSeconds,
		Coverage:    cfg.Coverage,
	}

	m := cfg.Grid.NumCells()
	rows := make([][]int32, len(tracks))
	vals := make([][]float64, len(tracks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for j := range tracks {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int) {
			defer wg.Done()
			defer func() { <-sem }()
			rows[j], vals[j] = coverageRow(cfg, tracks[j].Elements, m)
		}(j)
	}
	wg.Wait()

	// Assemble CSR directly; rows are already sorted by construction.
	lib.mat = sparse.FromRows(len(tracks), cfg.Slots*m, rows, vals)
	return lib, nil
}

// coverageRow computes one track's unfolded coverage: sorted column indices
// slot*m+cell with fractional values. Per the paper's supply model, A_t(i,j)
// is the fraction of satellite j's radio-link capacity over cell i, so each
// satellite's coverage sums to 1 per slot (its capacity is one satellite
// unit regardless of footprint size): a wide footprint spreads capacity
// thinner, it does not multiply it.
func coverageRow(cfg Config, el orbit.Elements, m int) ([]int32, []float64) {
	lam := cfg.Coverage.FootprintRadius(el.Altitude())
	var cols []int32
	var vals []float64
	counts := map[int]int{}
	for s := 0; s < cfg.Slots; s++ {
		for k := range counts {
			delete(counts, k)
		}
		total := 0
		for ss := 0; ss < cfg.SubSamples; ss++ {
			t := (float64(s) + float64(ss)/float64(cfg.SubSamples)) * cfg.SlotSeconds
			sub := el.SubSatellitePoint(t)
			for _, cell := range cfg.Grid.CellsWithin(sub, lam) {
				counts[cell]++
				total++
			}
		}
		if total == 0 {
			continue
		}
		// Emit this slot's cells in ascending order, capacity-normalized.
		base := s * m
		cells := make([]int, 0, len(counts))
		for c := range counts {
			cells = append(cells, c)
		}
		sortInts(cells)
		for _, c := range cells {
			cols = append(cols, int32(base+c))
			vals = append(vals, float64(counts[c])/float64(total))
		}
	}
	return cols, vals
}

func sortInts(a []int) {
	// insertion sort: footprints are tiny (≈10–40 cells).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// NumTracks returns the number of candidate tracks.
func (l *Library) NumTracks() int { return len(l.Tracks) }

// UnfoldedLen returns slots × cells, the length of demand/residual vectors.
func (l *Library) UnfoldedLen() int { return l.Slots * l.Grid.NumCells() }

// TrackCoverage iterates track j's stored coverage entries as
// (slot, cell, fraction) triples.
func (l *Library) TrackCoverage(j int, f func(slot, cell int, frac float64)) {
	m := l.Grid.NumCells()
	l.mat.Row(j, func(k int, v float64) { f(k/m, k%m, v) })
}

// TrackRow iterates track j's coverage over the flattened slot*m+cell space.
func (l *Library) TrackRow(j int, f func(idx int, frac float64)) {
	l.mat.Row(j, f)
}

// TrackNNZ returns the number of (slot, cell) pairs track j covers.
func (l *Library) TrackNNZ(j int) int { return l.mat.RowNNZ(j) }

// Supply accumulates the unfolded network supply Ã·x for integer satellite
// counts x (len NumTracks) into a dense vector of length UnfoldedLen.
func (l *Library) Supply(x []int) []float64 {
	if len(x) != len(l.Tracks) {
		panic("texture: Supply dimension mismatch")
	}
	out := make([]float64, l.UnfoldedLen())
	for j, n := range x {
		if n == 0 {
			continue
		}
		fn := float64(n)
		l.mat.Row(j, func(k int, v float64) { out[k] += fn * v })
	}
	return out
}

// NNZ returns the total stored coverage entries across all tracks.
func (l *Library) NNZ() int { return l.mat.NNZ() }

// Stats summarizes the library the way the paper's Table 1 does.
type Stats struct {
	NumTracks            int
	MinAltKm, MaxAltKm   float64
	MinPeriodMin         float64
	MaxPeriodMin         float64
	NumSpecs             int
	CoverageEntriesTotal int
}

// Stats computes Table 1-style statistics.
func (l *Library) Stats() Stats {
	s := Stats{NumTracks: len(l.Tracks), MinAltKm: 1e18, MinPeriodMin: 1e18}
	specs := map[orbit.RepeatSpec]bool{}
	for _, t := range l.Tracks {
		specs[t.Spec] = true
		alt := t.Elements.Altitude() / 1e3
		per := t.Elements.Period() / 60
		if alt < s.MinAltKm {
			s.MinAltKm = alt
		}
		if alt > s.MaxAltKm {
			s.MaxAltKm = alt
		}
		if per < s.MinPeriodMin {
			s.MinPeriodMin = per
		}
		if per > s.MaxPeriodMin {
			s.MaxPeriodMin = per
		}
	}
	s.NumSpecs = len(specs)
	s.CoverageEntriesTotal = l.NNZ()
	return s
}
