// Package baseline implements the constellations TinyLEO is evaluated
// against in §6.1: uniform Walker constellations, a Starlink-like
// multi-shell mega-constellation, the MegaReduce iterative shrinker, and a
// truncated exact branch-and-bound solver standing in for the paper's
// 2-month-truncated Gurobi runs.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/orbit"
)

// WalkerConfig describes a Walker-delta constellation i:T/P/F — the
// homogeneous layout used by operational mega-constellations (§2.3).
type WalkerConfig struct {
	InclinationDeg float64
	AltitudeKm     float64
	Planes         int // P
	SatsPerPlane   int // S = T/P
	PhasingF       int // relative phasing between adjacent planes
}

// NumSatellites returns P × S.
func (w WalkerConfig) NumSatellites() int { return w.Planes * w.SatsPerPlane }

// Satellites generates the orbital elements of every satellite in the
// Walker constellation: planes evenly spaced in RAAN over 360°, satellites
// evenly spaced in phase within each plane, with inter-plane phase offset
// F·360°/(P·S).
func (w WalkerConfig) Satellites() []orbit.Elements {
	total := w.NumSatellites()
	out := make([]orbit.Elements, 0, total)
	a := geom.EarthRadius + w.AltitudeKm*1e3
	inc := geom.Deg2Rad(w.InclinationDeg)
	for p := 0; p < w.Planes; p++ {
		raan := 2 * math.Pi * float64(p) / float64(w.Planes)
		for s := 0; s < w.SatsPerPlane; s++ {
			phase := 2*math.Pi*float64(s)/float64(w.SatsPerPlane) +
				2*math.Pi*float64(w.PhasingF)*float64(p)/float64(total)
			out = append(out, orbit.Elements{
				SemiMajor:   a,
				Inclination: inc,
				RAAN:        geom.NormalizeAngle(raan),
				Phase:       geom.NormalizeAngle(phase),
			})
		}
	}
	return out
}

func (w WalkerConfig) String() string {
	return fmt.Sprintf("walker{%.1f°:%d/%d/%d @%.0fkm}",
		w.InclinationDeg, w.NumSatellites(), w.Planes, w.PhasingF, w.AltitudeKm)
}

// Shell is one orbital shell of a multi-shell constellation.
type Shell struct {
	Name   string
	Config WalkerConfig
}

// StarlinkShells approximates Starlink's deployed constellation as of
// 2025-01 (the paper's reference: 6,793 satellites in 5 shells, mostly at
// 53–53.2° with a 97.6° polar complement, Figure 2). Plane/satellite counts
// follow the public FCC filings, with the v2 43° shell sized so the total
// matches the paper's 6,793 exactly.
func StarlinkShells() []Shell {
	return []Shell{
		{"shell1-53.0", WalkerConfig{53.0, 550, 72, 22, 17}},
		{"shell2-53.2", WalkerConfig{53.2, 540, 72, 22, 17}},
		{"shell3-70.0", WalkerConfig{70.0, 570, 36, 20, 11}},
		{"shell4-97.6a", WalkerConfig{97.6, 560, 6, 58, 1}},
		{"shell5-97.6b", WalkerConfig{97.6, 560, 4, 43, 1}},
		{"shell6-43.0", WalkerConfig{43.0, 530, 45, 53, 13}},
	}
}

// ShellSatellites expands a list of shells to concrete satellites.
func ShellSatellites(shells []Shell) []orbit.Elements {
	var out []orbit.Elements
	for _, sh := range shells {
		out = append(out, sh.Config.Satellites()...)
	}
	return out
}

// StarlinkSatellites returns the full approximated Starlink constellation.
func StarlinkSatellites() []orbit.Elements { return ShellSatellites(StarlinkShells()) }
