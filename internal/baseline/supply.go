package baseline

import (
	"runtime"
	"sync"

	"repro/internal/geo"
	"repro/internal/orbit"
)

// SupplyConfig parameterizes supply evaluation of a concrete constellation
// over the unfolded (slot × cell) space, mirroring the texture library's
// coverage semantics so constellations and sparsifier outputs are directly
// comparable.
type SupplyConfig struct {
	Grid        *geo.Grid
	Slots       int
	SlotSeconds float64
	SubSamples  int
	Coverage    orbit.CoverageParams
	Parallelism int
	// CountSatellites switches the supply semantics: false (default)
	// yields capacity supply — each satellite's coverage sums to 1 per
	// slot, the paper's A_t(i,j) "fraction of satellite j's radio link
	// coverage over cell i" — used by the sparsifier's demand accounting.
	// True yields visibility counts (1 per covered cell), the §4.2
	// geographic invariant ("number of available satellites over a cell")
	// used by the control plane.
	CountSatellites bool
}

func (c *SupplyConfig) fillDefaults() {
	if c.Grid == nil {
		c.Grid = geo.DefaultGrid()
	}
	if c.Slots <= 0 {
		c.Slots = 96
	}
	if c.SlotSeconds <= 0 {
		c.SlotSeconds = 900
	}
	if c.SubSamples <= 0 {
		c.SubSamples = 3
	}
	if c.Coverage.MinElevation == 0 {
		c.Coverage = orbit.DefaultCoverageParams
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// Supply computes the unfolded supply vector (length slots × cells) of a
// concrete satellite list: entry [t·m+i] is the number of satellites
// (fractionally weighted by sub-slot presence) covering cell i at slot t.
func Supply(cfg SupplyConfig, sats []orbit.Elements) []float64 {
	cfg.fillDefaults()
	m := cfg.Grid.NumCells()
	out := make([]float64, cfg.Slots*m)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for _, el := range sats {
		wg.Add(1)
		sem <- struct{}{}
		go func(el orbit.Elements) {
			defer wg.Done()
			defer func() { <-sem }()
			local := map[int]float64{}
			lam := cfg.Coverage.FootprintRadius(el.Altitude())
			inc := 1.0 / float64(cfg.SubSamples)
			for s := 0; s < cfg.Slots; s++ {
				slotCells := map[int]int{}
				total := 0
				for ss := 0; ss < cfg.SubSamples; ss++ {
					t := (float64(s) + float64(ss)*inc) * cfg.SlotSeconds
					sub := el.SubSatellitePoint(t)
					for _, cell := range cfg.Grid.CellsWithin(sub, lam) {
						slotCells[cell]++
						total++
					}
				}
				if total == 0 {
					continue
				}
				for cell, n := range slotCells {
					if cfg.CountSatellites {
						local[s*m+cell] += float64(n) * inc
					} else {
						local[s*m+cell] += float64(n) / float64(total)
					}
				}
			}
			mu.Lock()
			for k, v := range local {
				out[k] += v
			}
			mu.Unlock()
		}(el)
	}
	wg.Wait()
	return out
}

// Availability returns the fraction of demand satisfied by supply
// (Σ min(supply, demand) / Σ demand); both vectors are unfolded.
func Availability(supply, demand []float64) float64 {
	if len(supply) != len(demand) {
		panic("baseline: availability dimension mismatch")
	}
	tot, sat := 0.0, 0.0
	for k, y := range demand {
		tot += y
		if s := supply[k]; s < y {
			sat += s
		} else {
			sat += y
		}
	}
	if tot == 0 {
		return 1
	}
	return sat / tot
}

// WasteRatio returns the paper's Figure 4 statistic per satellite-slot:
// (supply − satisfied demand) / satisfied demand aggregated over the whole
// horizon, i.e. how much of the deployed capacity is wasted relative to
// what serves users.
func WasteRatio(supply, demand []float64) float64 {
	totSup, totSat := 0.0, 0.0
	for k, s := range supply {
		totSup += s
		y := demand[k]
		if s < y {
			totSat += s
		} else {
			totSat += y
		}
	}
	if totSat == 0 {
		if totSup == 0 {
			return 0
		}
		return 1e9 // all supply wasted
	}
	return (totSup - totSat) / totSat
}
