package baseline

import (
	"errors"
	"math"
	"time"

	"repro/internal/texture"
)

// ILPConfig drives the exact branch-and-bound solver for the covering
// integer program of Equations 2–4 (min ‖x‖₁ s.t. Ã·x ≥ ỹ). It is the
// stand-in for the paper's Gurobi runs, which were *truncated after two
// months* without completing; this solver is likewise exact given unbounded
// time and returns its best incumbent at the deadline.
type ILPConfig struct {
	Library *texture.Library
	Demand  []float64
	Epsilon float64
	// Budget is the wall-clock truncation budget (0 = 2 s).
	Budget time.Duration
	// MaxNodes caps explored branch-and-bound nodes (0 = 1e6).
	MaxNodes int
}

// ILPResult is the incumbent at termination.
type ILPResult struct {
	X            []int
	Satellites   int
	Availability float64
	Nodes        int
	Truncated    bool // deadline or node cap hit before the search space was exhausted
}

// SolveILP runs best-incumbent depth-first branch and bound. Branching
// picks the track with maximum satisfiable residual demand and tries
// satellite counts from the greedy value down to zero, so the first leaf
// reached is the greedy solution and pruning tightens from there.
func SolveILP(cfg ILPConfig) (*ILPResult, error) {
	if cfg.Library == nil {
		return nil, errors.New("baseline: nil library")
	}
	if len(cfg.Demand) != cfg.Library.UnfoldedLen() {
		return nil, errors.New("baseline: ILP demand length mismatch")
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon > 1 {
		return nil, errors.New("baseline: ILP epsilon outside (0,1]")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2 * time.Second
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 1_000_000
	}
	s := &ilpSolver{
		cfg:      cfg,
		deadline: time.Now().Add(cfg.Budget),
		residual: append([]float64(nil), cfg.Demand...),
		fixed:    make([]bool, cfg.Library.NumTracks()),
		x:        make([]int, cfg.Library.NumTracks()),
		bestX:    nil,
		bestSats: math.MaxInt32,
	}
	for _, v := range cfg.Demand {
		s.total += v
	}
	s.remain = s.total
	s.target = (1 - cfg.Epsilon) * s.total
	// Per-satellite satisfiable upper bound per track against the *full*
	// demand: admissible for the lower bound at any node.
	s.maxSat = 0
	for j := 0; j < cfg.Library.NumTracks(); j++ {
		sat := 0.0
		cfg.Library.TrackRow(j, func(k int, frac float64) {
			y := cfg.Demand[k]
			if frac < y {
				sat += frac
			} else {
				sat += y
			}
		})
		if sat > s.maxSat {
			s.maxSat = sat
		}
	}
	s.dfs(0)
	res := &ILPResult{Nodes: s.nodes, Truncated: s.truncated}
	if s.bestX == nil {
		// No feasible leaf found (budget too small or demand uncoverable):
		// report the empty incumbent.
		res.X = make([]int, cfg.Library.NumTracks())
		res.Availability = 0
		if s.total == 0 {
			res.Availability = 1
		}
		return res, nil
	}
	res.X = s.bestX
	for _, v := range s.bestX {
		res.Satellites += v
	}
	res.Availability = s.bestAvail
	return res, nil
}

type ilpSolver struct {
	cfg       ILPConfig
	deadline  time.Time
	residual  []float64
	fixed     []bool
	x         []int
	sats      int
	total     float64
	remain    float64
	target    float64
	maxSat    float64
	nodes     int
	truncated bool
	bestX     []int
	bestSats  int
	bestAvail float64
}

func (s *ilpSolver) availability() float64 {
	if s.total == 0 {
		return 1
	}
	return 1 - s.remain/s.total
}

// apply places (or removes, for negative add) satellites on track j,
// updating the clamped residual, and returns the residual delta for undo.
func (s *ilpSolver) apply(j, add int) []undoEntry {
	var undo []undoEntry
	fx := float64(add)
	s.cfg.Library.TrackRow(j, func(k int, frac float64) {
		r := s.residual[k]
		if r <= 0 {
			return
		}
		dec := fx * frac
		if dec > r {
			dec = r
		}
		if dec != 0 {
			undo = append(undo, undoEntry{k, dec})
			s.residual[k] = r - dec
			s.remain -= dec
		}
	})
	return undo
}

type undoEntry struct {
	k   int
	dec float64
}

func (s *ilpSolver) revert(undo []undoEntry) {
	for _, u := range undo {
		s.residual[u.k] += u.dec
		s.remain += u.dec
	}
}

func (s *ilpSolver) dfs(depth int) {
	s.nodes++
	if s.nodes >= s.cfg.MaxNodes || time.Now().After(s.deadline) {
		s.truncated = true
		return
	}
	if s.remain <= s.target+1e-9 {
		if s.sats < s.bestSats {
			s.bestSats = s.sats
			s.bestX = append([]int(nil), s.x...)
			s.bestAvail = s.availability()
		}
		return
	}
	// Lower bound: satellites needed even if every further satellite
	// satisfied the global per-satellite maximum.
	lb := s.sats + int(math.Ceil((s.remain-s.target)/s.maxSat))
	if lb >= s.bestSats {
		return
	}
	// Pick the unfixed track with max satisfiable residual.
	bestJ, bestSatis, bestDot, bestNorm := -1, 0.0, 0.0, 0.0
	for j := 0; j < s.cfg.Library.NumTracks(); j++ {
		if s.fixed[j] {
			continue
		}
		satis, dot, norm := 0.0, 0.0, 0.0
		s.cfg.Library.TrackRow(j, func(k int, frac float64) {
			r := s.residual[k]
			if r <= 0 {
				return
			}
			if frac < r {
				satis += frac
			} else {
				satis += r
			}
			dot += frac * r
			norm += frac * frac
		})
		if satis > bestSatis {
			bestJ, bestSatis, bestDot, bestNorm = j, satis, dot, norm
		}
	}
	if bestJ < 0 {
		return // residual uncoverable on this branch
	}
	// Try counts from the greedy value down to zero.
	greedy := int(math.Ceil(bestDot / bestNorm))
	if greedy < 1 {
		greedy = 1
	}
	if cap := int(math.Ceil((s.remain - s.target) / bestSatis)); greedy > cap {
		greedy = cap
	}
	s.fixed[bestJ] = true
	for v := greedy; v >= 0 && !s.truncated; v-- {
		if s.sats+v >= s.bestSats {
			continue
		}
		var undo []undoEntry
		if v > 0 {
			undo = s.apply(bestJ, v)
		}
		s.x[bestJ] = v
		s.sats += v
		s.dfs(depth + 1)
		s.sats -= v
		s.x[bestJ] = 0
		if v > 0 {
			s.revert(undo)
		}
	}
	s.fixed[bestJ] = false
}
