package baseline

import (
	"errors"
	"fmt"
)

// MegaReduceConfig drives the MegaReduce baseline [66, 67]: iteratively
// fine-tune a *uniform* constellation (it stays a Walker layout throughout,
// which is the method's defining constraint and why TinyLEO beats it on
// uneven demands) until no shrink move keeps the availability target.
type MegaReduceConfig struct {
	Supply SupplyConfig
	// Demand is the unfolded demand vector.
	Demand []float64
	// Epsilon is the availability target.
	Epsilon float64
	// Start is the initial (feasible) configuration. If it is already
	// infeasible, Reduce returns an error.
	Start WalkerConfig
	// Inclinations optionally lets the shrinker also try re-inclining the
	// shell (MegaReduce's "fine-tuning" dimension).
	Inclinations []float64
	// MaxIterations caps the shrink loop (0 = 10,000).
	MaxIterations int
	// OnStep observes accepted shrink moves.
	OnStep func(cfg WalkerConfig, availability float64)
}

// MegaReduceResult is the final shrunk uniform constellation.
type MegaReduceResult struct {
	Config       WalkerConfig
	Satellites   int
	Availability float64
	Steps        int
}

// ErrInfeasibleStart reports that the starting configuration misses the
// availability target.
var ErrInfeasibleStart = errors.New("baseline: starting constellation misses availability target")

// MegaReduce runs the iterative shrinker.
func MegaReduce(cfg MegaReduceConfig) (*MegaReduceResult, error) {
	if cfg.Epsilon <= 0 || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("baseline: epsilon %v outside (0,1]", cfg.Epsilon)
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 10000
	}
	eval := func(w WalkerConfig) float64 {
		return Availability(Supply(cfg.Supply, w.Satellites()), cfg.Demand)
	}
	cur := cfg.Start
	avail := eval(cur)
	if avail < cfg.Epsilon {
		return nil, fmt.Errorf("%w: availability %.4f < %.4f", ErrInfeasibleStart, avail, cfg.Epsilon)
	}
	res := &MegaReduceResult{Config: cur, Satellites: cur.NumSatellites(), Availability: avail}
	for res.Steps < maxIter {
		// Candidate shrink moves, best (largest saving) first.
		var moves []WalkerConfig
		if cur.Planes > 1 {
			m := cur
			m.Planes--
			moves = append(moves, m)
		}
		if cur.SatsPerPlane > 1 {
			m := cur
			m.SatsPerPlane--
			moves = append(moves, m)
		}
		// Re-inclination at the shrunk sizes.
		for _, inc := range cfg.Inclinations {
			if inc == cur.InclinationDeg {
				continue
			}
			if cur.Planes > 1 {
				m := cur
				m.Planes--
				m.InclinationDeg = inc
				moves = append(moves, m)
			}
			if cur.SatsPerPlane > 1 {
				m := cur
				m.SatsPerPlane--
				m.InclinationDeg = inc
				moves = append(moves, m)
			}
		}
		accepted := false
		bestAvail := 0.0
		var best WalkerConfig
		for _, m := range moves {
			if a := eval(m); a >= cfg.Epsilon && a > bestAvail {
				bestAvail, best, accepted = a, m, true
			}
		}
		if !accepted {
			break
		}
		cur, avail = best, bestAvail
		res.Steps++
		res.Config, res.Satellites, res.Availability = cur, cur.NumSatellites(), avail
		if cfg.OnStep != nil {
			cfg.OnStep(cur, avail)
		}
	}
	return res, nil
}
