package baseline

import (
	"errors"
	"fmt"

	"repro/internal/orbit"
)

// ShellReduceConfig drives the multi-shell MegaReduce variant used in the
// Figure 15 pipeline: starting from a mega-constellation's shells, it
// iteratively removes whole orbital planes (then individual satellites)
// while the availability target holds. The layout stays uniform at plane
// granularity — MegaReduce's defining constraint — which is why it cannot
// approach TinyLEO's savings on longitudinally uneven demand.
type ShellReduceConfig struct {
	Supply  SupplyConfig
	Demand  []float64
	Epsilon float64
	Shells  []Shell
	// MaxSteps caps accepted shrink moves (0 = 100,000).
	MaxSteps int
	// OnStep observes accepted moves.
	OnStep func(removedSats int, availability float64)
}

// ShellReduceResult is the shrunk constellation.
type ShellReduceResult struct {
	Satellites   int
	Removed      int
	Availability float64
	Steps        int
	// Remaining holds the surviving satellites.
	Remaining []orbit.Elements
	// PerShell counts survivors per input shell.
	PerShell []int
}

// ErrShellStartInfeasible reports that the starting shells miss the target.
var ErrShellStartInfeasible = errors.New("baseline: starting shells miss availability target")

// MegaReduceShells runs the shrinker. It caches each satellite's coverage
// row so every candidate move is evaluated as a sparse delta rather than a
// full constellation re-simulation.
func MegaReduceShells(cfg ShellReduceConfig) (*ShellReduceResult, error) {
	if cfg.Epsilon <= 0 || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("baseline: epsilon %v outside (0,1]", cfg.Epsilon)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	sup := cfg.Supply
	sup.fillDefaults()

	// Expand shells, remembering (shell, plane) of every satellite.
	type satMeta struct{ shell, plane int }
	var sats []orbit.Elements
	var meta []satMeta
	for si, sh := range cfg.Shells {
		w := sh.Config
		els := w.Satellites()
		for k, e := range els {
			sats = append(sats, e)
			meta = append(meta, satMeta{shell: si, plane: k / w.SatsPerPlane})
		}
	}
	if len(sats) == 0 {
		return nil, errors.New("baseline: empty shell set")
	}

	// Per-satellite coverage rows.
	rows := perSatSupplyRows(sup, sats)

	// Dense running supply and demand bookkeeping.
	supply := make([]float64, len(cfg.Demand))
	for _, r := range rows {
		for i, idx := range r.idx {
			supply[idx] += r.val[i]
		}
	}
	totalDemand := 0.0
	for _, y := range cfg.Demand {
		totalDemand += y
	}
	satisfied := func() float64 {
		s := 0.0
		for k, y := range cfg.Demand {
			if v := supply[k]; v < y {
				s += v
			} else {
				s += y
			}
		}
		return s
	}
	avail := func(sat float64) float64 {
		if totalDemand == 0 {
			return 1
		}
		return sat / totalDemand
	}
	curSat := satisfied()
	if avail(curSat) < cfg.Epsilon {
		return nil, fmt.Errorf("%w: availability %.4f < %.4f", ErrShellStartInfeasible, avail(curSat), cfg.Epsilon)
	}

	alive := make([]bool, len(sats))
	for i := range alive {
		alive[i] = true
	}
	aliveCount := len(sats)

	// satisfiedAfterRemoval computes the satisfied demand if `group` were
	// removed, without mutating state.
	satisfiedAfterRemoval := func(group []int) float64 {
		// Aggregate the group's removal per index first (group members can
		// overlap in coverage).
		delta := map[int]float64{}
		for _, s := range group {
			r := rows[s]
			for i, idx := range r.idx {
				delta[int(idx)] += r.val[i]
			}
		}
		sat := curSat
		for idx, d := range delta {
			y := cfg.Demand[idx]
			before := supply[idx]
			after := before - d
			ob, oa := before, after
			if ob > y {
				ob = y
			}
			if oa > y {
				oa = y
			}
			sat += oa - ob
		}
		return sat
	}
	remove := func(group []int) {
		for _, s := range group {
			if !alive[s] {
				continue
			}
			alive[s] = false
			aliveCount--
			r := rows[s]
			for i, idx := range r.idx {
				supply[idx] -= r.val[i]
			}
		}
		curSat = satisfied()
	}
	planeMembers := func(shell, plane int) []int {
		var g []int
		for s, m := range meta {
			if alive[s] && m.shell == shell && m.plane == plane {
				g = append(g, s)
			}
		}
		return g
	}

	res := &ShellReduceResult{}
	// Phase 1: remove whole planes while feasible.
	for res.Steps < maxSteps {
		bestSat, bestSize := -1.0, 0
		var bestGroup []int
		for si, sh := range cfg.Shells {
			for p := 0; p < sh.Config.Planes; p++ {
				g := planeMembers(si, p)
				if len(g) == 0 {
					continue
				}
				if s := satisfiedAfterRemoval(g); avail(s) >= cfg.Epsilon {
					// Prefer the biggest removable plane; tie-break by the
					// least availability damage.
					if len(g) > bestSize || (len(g) == bestSize && s > bestSat) {
						bestSat, bestSize, bestGroup = s, len(g), g
					}
				}
			}
		}
		if bestGroup == nil {
			break
		}
		remove(bestGroup)
		res.Steps++
		if cfg.OnStep != nil {
			cfg.OnStep(len(bestGroup), avail(curSat))
		}
	}
	// Phase 2: thin whole shells one satellite-per-plane at a time (remove
	// the last slot of every remaining plane of a shell), which keeps the
	// layout uniform — MegaReduce's defining constraint. Finer-grained
	// single-satellite removal would produce a *non-uniform* constellation
	// and is exactly what MegaReduce cannot do.
	for res.Steps < maxSteps {
		bestSat, bestShell := -1.0, -1
		var bestGroup []int
		for si, sh := range cfg.Shells {
			// One satellite from every remaining plane: the highest alive
			// in-plane slot index of each plane of shell si.
			var group []int
			for p := 0; p < sh.Config.Planes; p++ {
				gm := planeMembers(si, p)
				if len(gm) > 1 { // keep at least one satellite per plane
					group = append(group, gm[len(gm)-1])
				}
			}
			if len(group) == 0 {
				continue
			}
			if sv := satisfiedAfterRemoval(group); avail(sv) >= cfg.Epsilon && sv > bestSat {
				bestSat, bestShell, bestGroup = sv, si, group
			}
		}
		if bestShell < 0 {
			break
		}
		remove(bestGroup)
		res.Steps++
		if cfg.OnStep != nil {
			cfg.OnStep(len(bestGroup), avail(curSat))
		}
	}

	res.Satellites = aliveCount
	res.Removed = len(sats) - aliveCount
	res.Availability = avail(curSat)
	res.PerShell = make([]int, len(cfg.Shells))
	for s, m := range meta {
		if alive[s] {
			res.PerShell[m.shell]++
			res.Remaining = append(res.Remaining, sats[s])
		}
	}
	return res, nil
}

// satRow is one satellite's sparse coverage over the unfolded space.
type satRow struct {
	idx []int32
	val []float64
}

// perSatSupplyRows computes each satellite's coverage contribution.
func perSatSupplyRows(cfg SupplyConfig, sats []orbit.Elements) []satRow {
	rows := make([]satRow, len(sats))
	m := cfg.Grid.NumCells()
	inc := 1.0 / float64(cfg.SubSamples)
	for si, el := range sats {
		lam := cfg.Coverage.FootprintRadius(el.Altitude())
		acc := map[int]float64{}
		for s := 0; s < cfg.Slots; s++ {
			slotCells := map[int]int{}
			total := 0
			for ss := 0; ss < cfg.SubSamples; ss++ {
				t := (float64(s) + float64(ss)*inc) * cfg.SlotSeconds
				sub := el.SubSatellitePoint(t)
				for _, cell := range cfg.Grid.CellsWithin(sub, lam) {
					slotCells[cell]++
					total++
				}
			}
			if total == 0 {
				continue
			}
			for cell, n := range slotCells {
				if cfg.CountSatellites {
					acc[s*m+cell] += float64(n) * inc
				} else {
					acc[s*m+cell] += float64(n) / float64(total)
				}
			}
		}
		r := satRow{idx: make([]int32, 0, len(acc)), val: make([]float64, 0, len(acc))}
		for k := range acc {
			r.idx = append(r.idx, int32(k))
		}
		sortInt32(r.idx)
		for _, k := range r.idx {
			r.val = append(r.val, acc[int(k)])
		}
		rows[si] = r
	}
	return rows
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
