package baseline

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/orbit"
	"repro/internal/texture"
)

func TestWalkerGeneratesExpectedCount(t *testing.T) {
	w := WalkerConfig{53, 550, 6, 4, 1}
	sats := w.Satellites()
	if len(sats) != 24 || w.NumSatellites() != 24 {
		t.Fatalf("count = %d", len(sats))
	}
	raans := map[float64]int{}
	for _, s := range sats {
		if math.Abs(s.Altitude()-550e3) > 1 {
			t.Errorf("altitude %v", s.Altitude())
		}
		if math.Abs(geom.Rad2Deg(s.Inclination)-53) > 1e-9 {
			t.Errorf("inclination %v", s.Inclination)
		}
		raans[math.Round(geom.Rad2Deg(s.RAAN))]++
	}
	if len(raans) != 6 {
		t.Errorf("expected 6 planes, got %d distinct RAANs", len(raans))
	}
	for r, n := range raans {
		if n != 4 {
			t.Errorf("plane at RAAN %v has %d sats", r, n)
		}
	}
}

func TestWalkerPhasesDistinct(t *testing.T) {
	w := WalkerConfig{53, 550, 3, 5, 1}
	sats := w.Satellites()
	// Within a plane, no two satellites share a phase.
	seen := map[[2]float64]bool{}
	for _, s := range sats {
		key := [2]float64{math.Round(geom.Rad2Deg(s.RAAN)), math.Round(geom.Rad2Deg(s.Phase))}
		if seen[key] {
			t.Fatalf("duplicate slot %v", key)
		}
		seen[key] = true
	}
}

func TestStarlinkShellsMatchPaperTotal(t *testing.T) {
	total := 0
	for _, sh := range StarlinkShells() {
		total += sh.Config.NumSatellites()
	}
	if total != 6793 {
		t.Errorf("Starlink approximation has %d satellites, paper says 6,793", total)
	}
	if len(StarlinkSatellites()) != total {
		t.Error("ShellSatellites expansion mismatch")
	}
	// Majority of satellites at 53-ish inclination, per Figure 2.
	low := 0
	for _, s := range StarlinkSatellites() {
		if inc := geom.Rad2Deg(s.Inclination); inc < 55 {
			low++
		}
	}
	if float64(low)/float64(total) < 0.6 {
		t.Errorf("only %d/%d satellites below 55° inclination", low, total)
	}
}

func supplyCfg() SupplyConfig {
	return SupplyConfig{Grid: geo.MustGrid(10), Slots: 4, SlotSeconds: 900, SubSamples: 1}
}

func TestSupplyNonNegativeAndPlausible(t *testing.T) {
	w := WalkerConfig{53, 550, 8, 8, 1}
	sup := Supply(supplyCfg(), w.Satellites())
	total := 0.0
	for _, v := range sup {
		if v < 0 {
			t.Fatal("negative supply")
		}
		total += v
	}
	if total == 0 {
		t.Fatal("no coverage at all")
	}
	// Capacity supply: each satellite contributes at most 1 unit per slot
	// (and exactly 1 whenever its footprint touches any cell center).
	if total > float64(64*4)+1e-6 {
		t.Errorf("total capacity supply %v exceeds satellites × slots", total)
	}
	if total < float64(64*4)*0.5 {
		t.Errorf("total capacity supply %v suspiciously small", total)
	}
	// Count mode tallies every covered cell instead.
	cfg := supplyCfg()
	cfg.CountSatellites = true
	countTotal := 0.0
	for _, v := range Supply(cfg, w.Satellites()) {
		countTotal += v
	}
	if countTotal < total {
		t.Errorf("count supply %v below capacity supply %v", countTotal, total)
	}
}

func TestSupplyUniformConstellationFavorsNoLongitude(t *testing.T) {
	// A Walker constellation's time-averaged supply should be roughly
	// longitude-independent (it is latitude-dependent).
	g := geo.MustGrid(10)
	cfg := SupplyConfig{Grid: g, Slots: 12, SlotSeconds: 900, SubSamples: 2}
	w := WalkerConfig{53, 550, 12, 12, 1}
	sup := Supply(cfg, w.Satellites())
	m := g.NumCells()
	// Average per longitude column on the equatorial row.
	row := g.LatRows() / 2
	var per []float64
	for col := 0; col < g.LonCols(); col++ {
		id := g.CellID(row, col)
		s := 0.0
		for t := 0; t < cfg.Slots; t++ {
			s += sup[t*m+id]
		}
		per = append(per, s)
	}
	mean, maxDev := 0.0, 0.0
	for _, v := range per {
		mean += v
	}
	mean /= float64(len(per))
	for _, v := range per {
		if d := math.Abs(v - mean); d > maxDev {
			maxDev = d
		}
	}
	if mean == 0 {
		t.Fatal("no equatorial coverage")
	}
	if maxDev/mean > 0.8 {
		t.Errorf("uniform constellation has %.0f%% longitudinal deviation", 100*maxDev/mean)
	}
}

func TestAvailabilityAndWaste(t *testing.T) {
	sup := []float64{2, 0, 1}
	dem := []float64{1, 1, 1}
	if a := Availability(sup, dem); math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("availability = %v", a)
	}
	// satisfied = 2, supplied = 3 ⇒ waste = 0.5.
	if w := WasteRatio(sup, dem); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("waste = %v", w)
	}
	if a := Availability([]float64{0}, []float64{0}); a != 1 {
		t.Errorf("zero-demand availability = %v", a)
	}
	if w := WasteRatio([]float64{5}, []float64{0}); w < 1e8 {
		t.Errorf("all-waste ratio = %v", w)
	}
}

func TestMegaReduceShrinks(t *testing.T) {
	cfg := supplyCfg()
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: cfg.Grid, Slots: cfg.Slots, SlotSeconds: cfg.SlotSeconds,
		TotalSatUnits: 20,
	})
	start := WalkerConfig{53, 550, 10, 10, 1}
	res, err := MegaReduce(MegaReduceConfig{
		Supply: cfg, Demand: d.Y, Epsilon: 0.45, Start: start,
		Inclinations: []float64{53, 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satellites >= start.NumSatellites() {
		t.Errorf("MegaReduce did not shrink: %d", res.Satellites)
	}
	if res.Availability < 0.45 {
		t.Errorf("availability %v below target", res.Availability)
	}
	// Result must remain a uniform Walker layout.
	if res.Config.Planes < 1 || res.Config.SatsPerPlane < 1 {
		t.Errorf("degenerate config %+v", res.Config)
	}
}

func TestMegaReduceInfeasibleStart(t *testing.T) {
	cfg := supplyCfg()
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: cfg.Grid, Slots: cfg.Slots, SlotSeconds: cfg.SlotSeconds,
		TotalSatUnits: 1e6,
	})
	_, err := MegaReduce(MegaReduceConfig{
		Supply: cfg, Demand: d.Y, Epsilon: 0.99,
		Start: WalkerConfig{53, 550, 2, 2, 1},
	})
	if err == nil {
		t.Error("infeasible start accepted")
	}
}

func tinyLibrary(t *testing.T) *texture.Library {
	t.Helper()
	lib, err := texture.Build(texture.Config{
		Grid:            geo.MustGrid(20),
		Specs:           []orbit.RepeatSpec{{P: 1, Q: 15}},
		InclinationsDeg: []float64{53},
		RAANs:           3,
		Phases:          2,
		Slots:           3,
		SlotSeconds:     900,
		SubSamples:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestILPMatchesOrBeatsGreedy(t *testing.T) {
	lib := tinyLibrary(t)
	// Build a demand the library can certainly cover: 90% of the supply of
	// a known 3-satellite placement. The optimum is therefore ≤ 3.
	seed := make([]int, lib.NumTracks())
	seed[0], seed[2] = 2, 1
	d := lib.Supply(seed)
	for k := range d {
		d[k] *= 0.9
	}
	greedy, err := core.Sparsify(core.Problem{Library: lib, Demand: d, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	ilp, err := SolveILP(ILPConfig{
		Library: lib, Demand: d, Epsilon: 1, Budget: 3 * time.Second, MaxNodes: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ilp.Satellites == 0 {
		t.Fatal("ILP placed nothing")
	}
	if !ilp.Truncated {
		if ilp.Satellites > greedy.Satellites {
			t.Errorf("complete ILP (%d sats) worse than greedy (%d)", ilp.Satellites, greedy.Satellites)
		}
		if ilp.Satellites > 3 {
			t.Errorf("ILP used %d sats; a 3-satellite solution exists", ilp.Satellites)
		}
	}
	if v := core.Verify(lib, ilp.X, d); v < 1-1e-9 {
		t.Errorf("ILP availability %v below target", v)
	}
}

func TestILPTruncationFlag(t *testing.T) {
	lib := tinyLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 40,
	})
	res, err := SolveILP(ILPConfig{
		Library: lib, Demand: d.Y, Epsilon: 0.6, Budget: time.Hour, MaxNodes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("3-node budget should truncate")
	}
}

func TestILPZeroDemand(t *testing.T) {
	lib := tinyLibrary(t)
	res, err := SolveILP(ILPConfig{
		Library: lib, Demand: make([]float64, lib.UnfoldedLen()), Epsilon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satellites != 0 || res.Availability != 1 {
		t.Errorf("zero demand: %d sats avail %v", res.Satellites, res.Availability)
	}
}

func TestILPValidation(t *testing.T) {
	lib := tinyLibrary(t)
	if _, err := SolveILP(ILPConfig{}); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := SolveILP(ILPConfig{Library: lib, Demand: []float64{1}, Epsilon: 1}); err == nil {
		t.Error("bad demand accepted")
	}
	if _, err := SolveILP(ILPConfig{Library: lib, Demand: make([]float64, lib.UnfoldedLen()), Epsilon: 2}); err == nil {
		t.Error("bad epsilon accepted")
	}
}

func TestMegaReduceShellsShrinksWithSlack(t *testing.T) {
	cfg := SupplyConfig{Grid: geo.MustGrid(10), Slots: 4, SlotSeconds: 900, SubSamples: 1}
	cfg.fillDefaults()
	shells := []Shell{
		{"a", WalkerConfig{53, 550, 6, 6, 1}},
		{"b", WalkerConfig{85, 560, 3, 4, 1}},
	}
	dem := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: cfg.Grid, Slots: cfg.Slots, SlotSeconds: cfg.SlotSeconds, TotalSatUnits: 10,
	})
	// Calibrate demand to the shells, then leave generous slack.
	sup := Supply(cfg, ShellSatellites(shells))
	dem.CalibrateToSupply(sup, 0.8)
	dem.Scale(0.5)
	res, err := MegaReduceShells(ShellReduceConfig{
		Supply: cfg, Demand: dem.Y, Epsilon: 0.8, Shells: shells,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := 6*6 + 3*4
	if res.Satellites >= start {
		t.Errorf("no shrink: %d of %d", res.Satellites, start)
	}
	if res.Satellites != len(res.Remaining) {
		t.Errorf("remaining inconsistent: %d vs %d", res.Satellites, len(res.Remaining))
	}
	if res.Availability < 0.8 {
		t.Errorf("availability %v below target", res.Availability)
	}
	sum := 0
	for _, n := range res.PerShell {
		sum += n
	}
	if sum != res.Satellites {
		t.Errorf("per-shell sum %d != %d", sum, res.Satellites)
	}
	// Independent availability check of the surviving constellation.
	if a := Availability(Supply(cfg, res.Remaining), dem.Y); a < 0.8-1e-9 {
		t.Errorf("independent availability %v below target", a)
	}
}

func TestMegaReduceShellsInfeasibleStart(t *testing.T) {
	cfg := SupplyConfig{Grid: geo.MustGrid(20), Slots: 2, SlotSeconds: 900, SubSamples: 1}
	cfg.fillDefaults()
	dem := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: cfg.Grid, Slots: cfg.Slots, SlotSeconds: cfg.SlotSeconds, TotalSatUnits: 1e5,
	})
	_, err := MegaReduceShells(ShellReduceConfig{
		Supply: cfg, Demand: dem.Y, Epsilon: 0.99,
		Shells: []Shell{{"a", WalkerConfig{53, 550, 2, 2, 1}}},
	})
	if err == nil {
		t.Error("infeasible start accepted")
	}
}
