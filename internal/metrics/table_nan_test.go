package metrics

import (
	"math"
	"strings"
	"testing"
)

// Undefined statistics (empty-sample percentiles, CDF quantiles) are NaN;
// they must render as "-" in tables and CSV, never as "NaN".
func TestTableNaNRendersPlaceholder(t *testing.T) {
	tab := NewTable("Fig", "name", "p50", "p99")
	tab.AddRow("empty", Percentile(nil, 50), NewCDF(nil).Quantile(0.99))
	tab.AddRow("inf", math.Inf(1), math.Inf(-1))

	var txt, csv strings.Builder
	tab.Render(&txt)
	tab.RenderCSV(&csv)
	for _, out := range []string{txt.String(), csv.String()} {
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("NaN/Inf leaked into output:\n%s", out)
		}
		if !strings.Contains(out, "-") {
			t.Errorf("placeholder missing:\n%s", out)
		}
	}
	if got := csv.String(); !strings.Contains(got, "empty,-,-") {
		t.Errorf("csv row = %q, want empty,-,-", got)
	}
}
