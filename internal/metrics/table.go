package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders experiment results as an aligned text table, the output
// format of cmd/tinyleo-bench (one table per paper table/figure).
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		// Undefined statistics (e.g. a percentile of an empty sample)
		// render as a placeholder, not "NaN", in tables and CSV.
		return "-"
	case math.IsInf(v, 0):
		return "-"
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// RenderCSV writes the table as CSV (headers first) to w.
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	line(t.Headers)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
