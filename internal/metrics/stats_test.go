package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary")
	}
}

func TestPercentileKnown(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Errorf("p50 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.N() != 4 {
		t.Fatalf("n = %d", c.N())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(3); got != 1 {
		t.Errorf("At(3) = %v", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Q(0.5) = %v", got)
	}
	if got := c.Quantile(1.0); got != 3 {
		t.Errorf("Q(1) = %v", got)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := c.Quantile(q)
		if c.At(v) < q {
			t.Errorf("At(Quantile(%v)) = %v < %v", q, c.At(v), q)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 5 {
		t.Errorf("range wrong: %v %v", pts[0], pts[10])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i][1] < pts[j][1] }) {
		// Non-strict check: CDF values must be non-decreasing.
		for i := 1; i < len(pts); i++ {
			if pts[i][1] < pts[i-1][1] {
				t.Fatal("CDF not monotone")
			}
		}
	}
	if pts[10][1] != 1 {
		t.Errorf("final CDF value = %v", pts[10][1])
	}
}

func TestMeanSum(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("sum")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Fig X", "name", "sats", "ratio")
	tab.AddRow("TinyLEO", 1763, 3.85)
	tab.AddRow("Starlink", 6793, 1.0)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== Fig X ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "TinyLEO") || !strings.Contains(out, "6793") {
		t.Errorf("missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Error("NumRows")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", 1)
	var sb strings.Builder
	tab.RenderCSV(&sb)
	want := "a,b\n\"x,y\",1\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}
