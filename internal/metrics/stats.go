// Package metrics provides the statistics helpers the experiment harness
// uses to report paper-style results: percentiles, CDFs, time series, and
// aligned table / CSV printers.
package metrics

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
	P50, P90, P99       float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(xs)))
	s.P50 = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	s.P99 = Percentile(xs, 99)
	return s
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds an empirical CDF over xs.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{xs: sorted}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.xs) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q, q∈(0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(c.xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Points returns n evenly spaced (x, F(x)) pairs spanning the sample range,
// suitable for plotting a figure's CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.xs) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = [2]float64{x, c.At(x)}
	}
	return out
}
