package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// BenchEntry is one flat benchmark datapoint, the interchange schema of
// tinyleo-bench's -bench-json output (see EXPERIMENTS.md). The format is
// compatible with continuous-benchmarking tooling that consumes
// `[{"name","value","unit"}]` arrays.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

var slugNonWord = regexp.MustCompile(`[^a-z0-9]+`)

// slug collapses a table title or row label to a stable metric-name
// segment: lower-case, runs of non-alphanumerics become single
// underscores.
func slug(s string) string {
	s = slugNonWord.ReplaceAllString(strings.ToLower(s), "_")
	return strings.Trim(s, "_")
}

// unitOf extracts a trailing parenthesized unit from a column header:
// "repair RTT (ms)" → "ms". Headers without one yield "".
func unitOf(header string) string {
	open := strings.LastIndexByte(header, '(')
	if open < 0 || !strings.HasSuffix(header, ")") {
		return ""
	}
	return strings.TrimSpace(header[open+1 : len(header)-1])
}

// BenchEntries flattens the table's numeric cells into benchmark
// datapoints named "<title>/<row label>/<column header>" (each segment
// slugged). The first column is treated as the row label; non-numeric
// cells are skipped. Units come from "(unit)" suffixes on headers.
func (t *Table) BenchEntries() []BenchEntry {
	if len(t.Headers) < 2 {
		return nil
	}
	title := slug(t.Title)
	var out []BenchEntry
	for _, row := range t.rows {
		if len(row) == 0 {
			continue
		}
		label := slug(row[0])
		for i := 1; i < len(row) && i < len(t.Headers); i++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "%"), 64)
			if err != nil {
				continue
			}
			header := t.Headers[i]
			unit := unitOf(header)
			if unit == "" && strings.HasSuffix(row[i], "%") {
				unit = "percent"
			}
			name := title + "/" + label + "/" + slug(header)
			out = append(out, BenchEntry{Name: name, Value: v, Unit: unit})
		}
	}
	return out
}

// WriteBenchJSON writes the entries of all tables as one indented JSON
// array, the -bench-json file format.
func WriteBenchJSON(w io.Writer, tables []*Table) error {
	entries := []BenchEntry{}
	for _, t := range tables {
		entries = append(entries, t.BenchEntries()...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	return nil
}
