package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// Undefined statistics (empty-sample percentiles, CDF quantiles) are NaN;
// they must render as "-" in tables and CSV, never as "NaN".
func TestTableNaNRendersPlaceholder(t *testing.T) {
	tab := NewTable("Fig", "name", "p50", "p99")
	tab.AddRow("empty", Percentile(nil, 50), NewCDF(nil).Quantile(0.99))
	tab.AddRow("inf", math.Inf(1), math.Inf(-1))

	var txt, csv strings.Builder
	tab.Render(&txt)
	tab.RenderCSV(&csv)
	for _, out := range []string{txt.String(), csv.String()} {
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("NaN/Inf leaked into output:\n%s", out)
		}
		if !strings.Contains(out, "-") {
			t.Errorf("placeholder missing:\n%s", out)
		}
	}
	if got := csv.String(); !strings.Contains(got, "empty,-,-") {
		t.Errorf("csv row = %q, want empty,-,-", got)
	}
}

// Counter must be safe for concurrent Add/Get/Total/Keys/String (run with
// -race to prove it).
func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w%4)
			for i := 0; i < perWorker; i++ {
				c.Add(key, 1)
				if i%100 == 0 {
					c.Get(key)
					c.Total()
					c.Keys()
					_ = c.String()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != workers*perWorker {
		t.Errorf("Total = %d, want %d", got, workers*perWorker)
	}
	if got := len(c.Keys()); got != 4 {
		t.Errorf("Keys = %d, want 4", got)
	}
}
