package geo

import (
	"math"
	"strings"
)

// RenderMap draws an equirectangular ASCII map of a per-cell scalar field:
// one character per cell, north at the top. Cells with zero value render
// as '·' on land and ' ' on ocean so coastlines stay visible; positive
// values use a density ramp normalized to the field's maximum. This is the
// toolkit's textual stand-in for the paper's Figure 1/13/14 world maps.
func RenderMap(g *Grid, value func(cell int) float64) string {
	const ramp = ".:-=+*#%@"
	maxV := 0.0
	for id := 0; id < g.NumCells(); id++ {
		if v := value(id); v > maxV {
			maxV = v
		}
	}
	mask := NewLandMask(g)
	var sb strings.Builder
	sb.Grow((g.LonCols() + 1) * g.LatRows())
	for row := g.LatRows() - 1; row >= 0; row-- {
		for col := 0; col < g.LonCols(); col++ {
			id := g.CellID(row, col)
			v := value(id)
			switch {
			case v <= 0 && mask.LandFraction(id) > 0.5:
				sb.WriteByte('\xc2') // '·' in UTF-8
				sb.WriteByte('\xb7')
			case v <= 0:
				sb.WriteByte(' ')
			default:
				idx := 0
				if maxV > 0 {
					idx = int(math.Sqrt(v/maxV) * float64(len(ramp)))
				}
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
				sb.WriteByte(ramp[idx])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
