package geo

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestIsLandKnownPlaces(t *testing.T) {
	land := map[string]geom.LatLon{
		"kansas":        {Lat: 38, Lon: -98},
		"amazon":        {Lat: -5, Lon: -63},
		"sahara":        {Lat: 23, Lon: 10},
		"siberia":       {Lat: 60, Lon: 100},
		"india":         {Lat: 22, Lon: 78},
		"china-east":    {Lat: 32, Lon: 114},
		"outback":       {Lat: -25, Lon: 134},
		"europe-center": {Lat: 50, Lon: 15},
		"greenland":     {Lat: 72, Lon: -40},
		"antarctica":    {Lat: -80, Lon: 45},
		"uk":            {Lat: 53, Lon: -2},
		"japan-honshu":  {Lat: 36, Lon: 138},
		"madagascar":    {Lat: -19, Lon: 47},
	}
	for name, p := range land {
		if !IsLand(p) {
			t.Errorf("%s (%v) should be land", name, p)
		}
	}
	ocean := map[string]geom.LatLon{
		"mid-pacific":    {Lat: 0, Lon: -150},
		"mid-atlantic":   {Lat: 20, Lon: -40},
		"indian-ocean":   {Lat: -30, Lon: 80},
		"southern-ocean": {Lat: -55, Lon: 0},
		"north-pacific":  {Lat: 40, Lon: -170},
		"arctic-ocean":   {Lat: 87, Lon: 0},
		"tasman-sea":     {Lat: -38, Lon: 160},
	}
	for name, p := range ocean {
		if IsLand(p) {
			t.Errorf("%s (%v) should be ocean (got %q)", name, p, ContinentOf(p))
		}
	}
}

func TestOceanFractionNearPaperValue(t *testing.T) {
	// The paper quotes 70.8% ocean; our coarse outlines should land within
	// a few points of that.
	m := NewLandMask(DefaultGrid())
	f := m.OceanFraction()
	if f < 0.64 || f < 0 || f > 0.78 {
		t.Errorf("ocean fraction = %.3f, expected ≈0.708", f)
	}
}

func TestLandMaskCellClassification(t *testing.T) {
	g := DefaultGrid()
	m := NewLandMask(g)
	if !m.IsLandCell(g.CellOf(geom.LatLon{Lat: 38, Lon: -98})) {
		t.Error("Kansas cell should be land")
	}
	if m.IsLandCell(g.CellOf(geom.LatLon{Lat: 0, Lon: -150})) {
		t.Error("mid-Pacific cell should be ocean")
	}
	for id := 0; id < g.NumCells(); id++ {
		f := m.LandFraction(id)
		if f < 0 || f > 1 {
			t.Fatalf("cell %d land fraction %v out of [0,1]", id, f)
		}
	}
}

func TestLandMaskCached(t *testing.T) {
	g := DefaultGrid()
	a := NewLandMask(g)
	b := NewLandMask(g)
	if a != b {
		t.Error("mask should be cached per cell size")
	}
}

func TestContinentOf(t *testing.T) {
	if c := ContinentOf(geom.LatLon{Lat: 38, Lon: -98}); c != "north-america" {
		t.Errorf("Kansas in %q", c)
	}
	if c := ContinentOf(geom.LatLon{Lat: 0, Lon: -150}); c != "" {
		t.Errorf("mid-Pacific in %q", c)
	}
}

func TestRenderMap(t *testing.T) {
	g := MustGrid(10)
	// A field with one hotspot.
	hot := g.CellOf(geom.LatLon{Lat: 40, Lon: -74})
	out := RenderMap(g, func(cell int) float64 {
		if cell == hot {
			return 5
		}
		return 0
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != g.LatRows() {
		t.Fatalf("map has %d rows, want %d", len(lines), g.LatRows())
	}
	if !strings.Contains(out, "@") {
		t.Error("hotspot not rendered at max ramp")
	}
	if !strings.Contains(out, "·") {
		t.Error("land outline missing")
	}
	if !strings.Contains(out, " ") {
		t.Error("ocean missing")
	}
	// Zero field still renders coastlines.
	flat := RenderMap(g, func(int) float64 { return 0 })
	if !strings.Contains(flat, "·") {
		t.Error("zero field lost the land mask")
	}
}
