package geo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestDefaultGridMatchesPaper(t *testing.T) {
	g := DefaultGrid()
	if g.NumCells() != 4050 {
		t.Errorf("default grid has %d cells, paper uses 4,050", g.NumCells())
	}
	if g.LatRows() != 45 || g.LonCols() != 90 {
		t.Errorf("dims %dx%d", g.LatRows(), g.LonCols())
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0); err == nil {
		t.Error("0 size should fail")
	}
	if _, err := NewGrid(-4); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := NewGrid(7); err == nil {
		t.Error("7° does not divide 180°")
	}
	if _, err := NewGrid(10); err != nil {
		t.Errorf("10° should work: %v", err)
	}
}

func TestCellOfCenterRoundTrip(t *testing.T) {
	g := DefaultGrid()
	for id := 0; id < g.NumCells(); id += 7 {
		c := g.Center(id)
		if got := g.CellOf(c); got != id {
			t.Fatalf("CellOf(Center(%d)) = %d", id, got)
		}
	}
}

func TestCellOfEdgeCases(t *testing.T) {
	g := DefaultGrid()
	// Poles and antimeridian must map to valid cells.
	for _, p := range []geom.LatLon{
		{Lat: 90, Lon: 0}, {Lat: -90, Lon: 0}, {Lat: 0, Lon: -180},
		{Lat: 0, Lon: 180}, {Lat: 89.999, Lon: 179.999},
	} {
		id := g.CellOf(p)
		if id < 0 || id >= g.NumCells() {
			t.Errorf("CellOf(%v) = %d out of range", p, id)
		}
	}
	// North pole lands in the top row.
	row, _ := g.RowCol(g.CellOf(geom.LatLon{Lat: 90, Lon: 0}))
	if row != g.LatRows()-1 {
		t.Errorf("north pole row = %d", row)
	}
}

func TestBoundsContainCenter(t *testing.T) {
	g := MustGrid(10)
	for id := 0; id < g.NumCells(); id++ {
		minLat, minLon, maxLat, maxLon := g.Bounds(id)
		c := g.Center(id)
		if c.Lat <= minLat || c.Lat >= maxLat {
			t.Fatalf("cell %d center lat %v outside [%v,%v]", id, c.Lat, minLat, maxLat)
		}
		cl := geom.NormalizeLon(c.Lon)
		if mid := geom.NormalizeLon((minLon + maxLon) / 2); math.Abs(cl-mid) > 1e-9 {
			t.Fatalf("cell %d center lon %v vs bounds mid %v", id, cl, mid)
		}
	}
}

func TestAreaFractionsSumToOne(t *testing.T) {
	for _, deg := range []float64{4.0, 10.0, 20.0} {
		g := MustGrid(deg)
		sum := 0.0
		for id := 0; id < g.NumCells(); id++ {
			sum += g.AreaFraction(id)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("grid %v°: area fractions sum to %v", deg, sum)
		}
	}
}

func TestAreaShrinksTowardPoles(t *testing.T) {
	g := DefaultGrid()
	equator := g.CellOf(geom.LatLon{Lat: 2, Lon: 0})
	polar := g.CellOf(geom.LatLon{Lat: 86, Lon: 0})
	if g.AreaFraction(polar) >= g.AreaFraction(equator) {
		t.Error("polar cell should be smaller than equatorial cell")
	}
}

func TestNeighbors4(t *testing.T) {
	g := DefaultGrid()
	mid := g.CellOf(geom.LatLon{Lat: 10, Lon: 10})
	nb := g.Neighbors4(mid)
	if len(nb) != 4 {
		t.Fatalf("interior cell has %d neighbors", len(nb))
	}
	for _, n := range nb {
		if g.CenterDistance(mid, n) > 700e3 {
			t.Errorf("neighbor %d too far: %v km", n, g.CenterDistance(mid, n)/1e3)
		}
	}
	// Polar rows lose one neighbor.
	top := g.CellID(g.LatRows()-1, 0)
	if len(g.Neighbors4(top)) != 3 {
		t.Errorf("top-row cell has %d neighbors", len(g.Neighbors4(top)))
	}
	// Antimeridian wrap: the west neighbor of col 0 is col max.
	west := g.Neighbors4(g.CellID(20, 0))[0]
	if _, col := g.RowCol(west); col != g.LonCols()-1 {
		t.Errorf("wrap neighbor col = %d", col)
	}
}

func TestCellsWithinMatchesBruteForce(t *testing.T) {
	g := MustGrid(4)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		p := geom.LatLon{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		radius := geom.Deg2Rad(2 + rng.Float64()*15)
		got := map[int]bool{}
		for _, id := range g.CellsWithin(p, radius) {
			if got[id] {
				t.Fatalf("duplicate cell %d", id)
			}
			got[id] = true
		}
		for id := 0; id < g.NumCells(); id++ {
			want := geom.CentralAngle(p, g.Center(id)) <= radius
			if got[id] != want {
				t.Fatalf("trial %d cell %d: got %v want %v (p=%v r=%v°)",
					trial, id, got[id], want, p, geom.Rad2Deg(radius))
			}
		}
	}
}

func TestCellsWithinPolar(t *testing.T) {
	g := MustGrid(4)
	// A footprint over the pole must include cells at every longitude.
	ids := g.CellsWithin(geom.LatLon{Lat: 89, Lon: 0}, geom.Deg2Rad(8))
	cols := map[int]bool{}
	for _, id := range ids {
		_, c := g.RowCol(id)
		cols[c] = true
	}
	if len(cols) != g.LonCols() {
		t.Errorf("polar footprint covers %d/%d columns", len(cols), g.LonCols())
	}
}

func TestCellsWithinZeroRadius(t *testing.T) {
	g := MustGrid(10)
	p := g.Center(100)
	ids := g.CellsWithin(p, 0)
	if len(ids) != 1 || ids[0] != 100 {
		t.Errorf("zero radius at a center = %v", ids)
	}
	// Zero radius off-center hits nothing.
	off := geom.LatLon{Lat: p.Lat + 1, Lon: p.Lon + 1}
	if ids := g.CellsWithin(off, 0); len(ids) != 0 {
		t.Errorf("zero radius off-center = %v", ids)
	}
}

func TestCellsWithinGlobalRadius(t *testing.T) {
	g := MustGrid(20)
	ids := g.CellsWithin(geom.LatLon{Lat: 0, Lon: 0}, math.Pi)
	if len(ids) != g.NumCells() {
		t.Errorf("π radius covered %d of %d cells", len(ids), g.NumCells())
	}
}
