package geo

import (
	"sync"

	"repro/internal/geom"
)

// Continent outlines, deliberately coarse (±2–4° of coastline error). They
// exist to reproduce the paper's macro facts — oceans cover ~70.8% of the
// Earth and demand concentrates on a small land fraction — not to be a GIS
// dataset. Vertices are {lat, lon} pairs; polygons that cross the
// antimeridian use longitudes beyond ±180.
var continentData = map[string][][2]float64{
	"north-america": {
		{66, -168}, {71, -156}, {72, -128}, {73, -95}, {66, -62}, {52, -56},
		{45, -65}, {43, -70}, {35, -76}, {30, -81}, {25, -80}, {29, -85},
		{29, -95}, {26, -97}, {18, -95}, {15, -93}, {8, -81}, {8, -84},
		{16, -99}, {20, -106}, {24, -111}, {29, -116}, {34, -120}, {40, -124},
		{48, -125}, {55, -132}, {60, -140}, {59, -152}, {55, -162}, {60, -166},
	},
	"south-america": {
		{11, -75}, {10, -61}, {5, -52}, {-1, -50}, {-8, -35}, {-18, -39},
		{-25, -48}, {-35, -54}, {-40, -62}, {-50, -68}, {-54, -71}, {-50, -74},
		{-40, -73}, {-30, -71}, {-18, -70}, {-5, -81}, {2, -78}, {8, -77},
	},
	"africa": {
		{35, -6}, {37, 10}, {33, 12}, {31, 20}, {31, 32}, {27, 34},
		{15, 39}, {12, 43}, {11, 51}, {0, 42}, {-15, 40}, {-26, 33},
		{-34, 20}, {-34, 18}, {-23, 14}, {-8, 13}, {4, 9}, {6, -4},
		{4, -8}, {14, -17}, {21, -17}, {28, -12},
	},
	"eurasia": {
		{36, -6}, {38, 0}, {43, 4}, {41, 16}, {36, 22}, {36, 28},
		{36, 36}, {31, 34}, {30, 33}, {27, 35}, {13, 43}, {13, 45},
		{17, 55}, {24, 58}, {25, 61}, {24, 67}, {20, 73}, {8, 77},
		{10, 80}, {16, 82}, {22, 89}, {16, 94}, {14, 98}, {1, 103},
		{3, 101}, {13, 100}, {10, 107}, {20, 106}, {22, 114}, {28, 121},
		{37, 122}, {40, 118}, {39, 124}, {35, 126}, {38, 128}, {43, 132},
		{53, 141}, {60, 156}, {62, 164}, {65, 179}, {68, 178}, {70, 160},
		{73, 140}, {77, 105}, {73, 80}, {68, 70}, {68, 45}, {70, 30},
		{70, 22}, {62, 5}, {58, 8}, {54, 8}, {53, 5}, {51, 3},
		{49, 0}, {49, -2}, {48, -5}, {44, -2}, {43, -9},
	},
	"australia": {
		{-11, 132}, {-12, 136}, {-17, 140}, {-11, 142}, {-19, 147},
		{-28, 153}, {-38, 150}, {-39, 146}, {-38, 140}, {-32, 134},
		{-35, 118}, {-31, 115}, {-22, 114}, {-18, 122}, {-14, 126},
	},
	"greenland": {
		{83, -33}, {81, -12}, {70, -22}, {60, -43}, {65, -53}, {76, -68}, {80, -60},
	},
	"antarctica": {
		{-65, -180}, {-65, 180}, {-90, 180}, {-90, -180},
	},
	// Major islands as coarse quads; small errors are immaterial at 4° cells.
	"britain-ireland": {{50, -10}, {50, 2}, {59, 2}, {59, -10}},
	"iceland":         {{63, -24}, {63, -13}, {66, -13}, {66, -24}},
	"japan":           {{31, 129}, {34, 137}, {42, 146}, {45, 142}, {40, 137}, {34, 129}},
	"sumatra":         {{6, 95}, {-6, 106}, {-4, 100}, {3, 94}},
	"java":            {{-9, 105}, {-9, 115}, {-6, 115}, {-6, 105}},
	"borneo":          {{-4, 109}, {-4, 119}, {7, 119}, {7, 109}},
	"sulawesi":        {{-6, 119}, {-6, 125}, {2, 125}, {2, 119}},
	"new-guinea":      {{-10, 131}, {-10, 151}, {0, 151}, {0, 131}},
	"philippines":     {{5, 117}, {5, 127}, {19, 127}, {19, 117}},
	"madagascar":      {{-26, 43}, {-26, 51}, {-12, 51}, {-12, 43}},
	"new-zealand":     {{-47, 166}, {-47, 179}, {-34, 179}, {-34, 166}},
	"cuba-hispaniola": {{17, -85}, {17, -68}, {23, -68}, {23, -85}},
	"sri-lanka":       {{6, 79}, {6, 82}, {10, 82}, {10, 79}},
}

// continents holds the outlines converted to geom.Polygon form.
var continents = func() map[string]geom.Polygon {
	out := make(map[string]geom.Polygon, len(continentData))
	for name, pts := range continentData {
		poly := make(geom.Polygon, len(pts))
		for i, p := range pts {
			poly[i] = geom.LatLon{Lat: p[0], Lon: p[1]}
		}
		out[name] = poly
	}
	return out
}()

// IsLand reports whether p falls inside any continent or island outline.
func IsLand(p geom.LatLon) bool {
	for _, poly := range continents {
		if poly.Contains(p) {
			return true
		}
	}
	return false
}

// ContinentOf returns the name of the outline containing p, or "" for ocean.
func ContinentOf(p geom.LatLon) string {
	for name, poly := range continents {
		if poly.Contains(p) {
			return name
		}
	}
	return ""
}

// LandMask caches the per-cell land fraction for a grid.
type LandMask struct {
	grid *Grid
	frac []float64
}

var (
	maskMu    sync.Mutex
	maskCache = map[float64]*LandMask{}
)

// NewLandMask builds (or returns a cached) land mask for g by sampling a
// 3×3 lattice of points inside each cell.
func NewLandMask(g *Grid) *LandMask {
	maskMu.Lock()
	defer maskMu.Unlock()
	if m, ok := maskCache[g.cellDeg]; ok {
		return m
	}
	m := &LandMask{grid: g, frac: make([]float64, g.NumCells())}
	const k = 3
	for id := 0; id < g.NumCells(); id++ {
		minLat, minLon, maxLat, maxLon := g.Bounds(id)
		hits := 0
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				p := geom.LatLon{
					Lat: minLat + (maxLat-minLat)*(float64(a)+0.5)/k,
					Lon: geom.NormalizeLon(minLon + (maxLon-minLon)*(float64(b)+0.5)/k),
				}
				if IsLand(p) {
					hits++
				}
			}
		}
		m.frac[id] = float64(hits) / (k * k)
	}
	maskCache[g.cellDeg] = m
	return m
}

// LandFraction returns the sampled land fraction of cell id in [0,1].
func (m *LandMask) LandFraction(id int) float64 { return m.frac[id] }

// IsLandCell reports whether the majority of cell id is land.
func (m *LandMask) IsLandCell(id int) bool { return m.frac[id] > 0.5 }

// OceanFraction returns the area-weighted fraction of the Earth's surface
// that the mask classifies as ocean (the paper quotes 70.8%).
func (m *LandMask) OceanFraction() float64 {
	ocean := 0.0
	for id := range m.frac {
		ocean += m.grid.AreaFraction(id) * (1 - m.frac[id])
	}
	return ocean
}
