// Package geo partitions the Earth's surface into the geographic cells that
// TinyLEO uses everywhere: demand cells for the sparsifier (§4.1), intent
// nodes for the control plane (§4.2), and anycast segments for the data
// plane (§4.3). It also provides a coarse land mask built from embedded
// continent polygons.
//
// The default 4°×4° grid yields 45×90 = 4,050 cells, the paper's m.
package geo

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid is an equirectangular lat/lon cell grid. Cell IDs are dense ints in
// [0, NumCells()), row-major from the south pole westmost cell.
type Grid struct {
	cellDeg    float64
	nLat, nLon int
}

// DefaultCellSizeDeg reproduces the paper's 4,050-cell partition.
const DefaultCellSizeDeg = 4.0

// NewGrid creates a grid with square cells of cellDeg degrees. cellDeg must
// divide 180 evenly.
func NewGrid(cellDeg float64) (*Grid, error) {
	if cellDeg <= 0 {
		return nil, fmt.Errorf("geo: non-positive cell size %v", cellDeg)
	}
	nLat := 180 / cellDeg
	if nLat != math.Trunc(nLat) {
		return nil, fmt.Errorf("geo: cell size %v° does not divide 180°", cellDeg)
	}
	return &Grid{cellDeg: cellDeg, nLat: int(nLat), nLon: int(2 * nLat)}, nil
}

// MustGrid is NewGrid that panics on error; for tests and fixed configs.
func MustGrid(cellDeg float64) *Grid {
	g, err := NewGrid(cellDeg)
	if err != nil {
		panic(err)
	}
	return g
}

// DefaultGrid returns the paper's 4° grid (4,050 cells).
func DefaultGrid() *Grid { return MustGrid(DefaultCellSizeDeg) }

// CellSizeDeg returns the cell edge length in degrees.
func (g *Grid) CellSizeDeg() float64 { return g.cellDeg }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.nLat * g.nLon }

// LatRows and LonCols return the grid dimensions.
func (g *Grid) LatRows() int { return g.nLat }

// LonCols returns the number of longitude columns.
func (g *Grid) LonCols() int { return g.nLon }

// CellOf returns the ID of the cell containing p.
func (g *Grid) CellOf(p geom.LatLon) int {
	row := int((p.Lat + 90) / g.cellDeg)
	if row >= g.nLat {
		row = g.nLat - 1 // lat == +90
	}
	if row < 0 {
		row = 0
	}
	col := int((geom.NormalizeLon(p.Lon) + 180) / g.cellDeg)
	if col >= g.nLon {
		col = g.nLon - 1
	}
	return row*g.nLon + col
}

// RowCol returns the (row, col) of cell id.
func (g *Grid) RowCol(id int) (row, col int) { return id / g.nLon, id % g.nLon }

// CellID returns the ID at (row, col), wrapping col around the antimeridian.
func (g *Grid) CellID(row, col int) int {
	col = ((col % g.nLon) + g.nLon) % g.nLon
	return row*g.nLon + col
}

// Center returns the center point of cell id.
func (g *Grid) Center(id int) geom.LatLon {
	row, col := g.RowCol(id)
	return geom.LatLon{
		Lat: -90 + (float64(row)+0.5)*g.cellDeg,
		Lon: geom.NormalizeLon(-180 + (float64(col)+0.5)*g.cellDeg),
	}
}

// Bounds returns the cell's (minLat, minLon, maxLat, maxLon) in degrees.
func (g *Grid) Bounds(id int) (minLat, minLon, maxLat, maxLon float64) {
	row, col := g.RowCol(id)
	minLat = -90 + float64(row)*g.cellDeg
	minLon = -180 + float64(col)*g.cellDeg
	return minLat, minLon, minLat + g.cellDeg, minLon + g.cellDeg
}

// AreaFraction returns the fraction of the sphere's area covered by cell
// id: cells shrink toward the poles by the cosine of latitude.
func (g *Grid) AreaFraction(id int) float64 {
	minLat, _, maxLat, _ := g.Bounds(id)
	band := math.Sin(geom.Deg2Rad(maxLat)) - math.Sin(geom.Deg2Rad(minLat))
	return band / 2 / float64(g.nLon)
}

// Neighbors4 returns the IDs of the 4-neighborhood of cell id: east and
// west neighbors wrap around the antimeridian; north/south neighbors are
// omitted at the polar rows.
func (g *Grid) Neighbors4(id int) []int {
	row, col := g.RowCol(id)
	out := make([]int, 0, 4)
	out = append(out, g.CellID(row, col-1), g.CellID(row, col+1))
	if row > 0 {
		out = append(out, g.CellID(row-1, col))
	}
	if row < g.nLat-1 {
		out = append(out, g.CellID(row+1, col))
	}
	return out
}

// CellsWithin returns the IDs of every cell whose center lies within the
// great-circle angular radius (radians) of p. This is the footprint rasterizer
// used to build coverage matrices, so it avoids scanning the whole grid:
// only latitude rows within the radius are visited, and within each row
// only the longitude span that can possibly be in range.
func (g *Grid) CellsWithin(p geom.LatLon, radius float64) []int {
	radDeg := geom.Rad2Deg(radius)
	out := []int{}
	rowLo := int((p.Lat - radDeg + 90) / g.cellDeg)
	rowHi := int((p.Lat + radDeg + 90) / g.cellDeg)
	if rowLo < 0 {
		rowLo = 0
	}
	if rowHi >= g.nLat {
		rowHi = g.nLat - 1
	}
	pu := p.ToUnit()
	cosR := math.Cos(radius)
	for row := rowLo; row <= rowHi; row++ {
		lat := -90 + (float64(row)+0.5)*g.cellDeg
		// Longitude half-span at this latitude band (degrees). The
		// sin(radius)/cos(lat) bound only holds for radius ≤ π/2; larger
		// radii (hemisphere-plus) scan the full circle. Guard the cos for
		// near-polar rows where every longitude is in range.
		cosLat := math.Cos(geom.Deg2Rad(lat))
		spanDeg := 180.0
		if radius < math.Pi/2 && cosLat > 1e-6 {
			s := math.Sin(radius) / cosLat
			if s < 1 {
				// A slightly inflated span to be safe; exact check below.
				spanDeg = geom.Rad2Deg(math.Asin(s)) + g.cellDeg
			}
		}
		colC := int((geom.NormalizeLon(p.Lon) + 180) / g.cellDeg)
		halfCols := int(spanDeg/g.cellDeg) + 1
		if halfCols*2 >= g.nLon {
			for col := 0; col < g.nLon; col++ {
				id := g.CellID(row, col)
				if g.Center(id).ToUnit().Dot(pu) >= cosR {
					out = append(out, id)
				}
			}
			continue
		}
		for dc := -halfCols; dc <= halfCols; dc++ {
			id := g.CellID(row, colC+dc)
			if g.Center(id).ToUnit().Dot(pu) >= cosR {
				out = append(out, id)
			}
		}
	}
	return out
}

// CenterDistance returns the great-circle distance (m) between the centers
// of cells a and b.
func (g *Grid) CenterDistance(a, b int) float64 {
	return geom.GreatCircleDist(g.Center(a), g.Center(b))
}
