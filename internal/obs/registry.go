// Package obs is TinyLEO's runtime telemetry subsystem: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms), lightweight
// span tracing into a ring buffer, and exposition in Prometheus text,
// JSON-snapshot, Chrome trace_event, and expvar formats.
//
// Design goals, in order:
//
//  1. Hot-path safety: instrument operations are lock-free (sync/atomic)
//     and, against a disabled registry, cost a single atomic load — a few
//     nanoseconds — so instrumentation can live unconditionally in the MPC
//     compile loop, the southbound read loop, and the per-packet forwarder
//     (see bench_test.go).
//  2. Zero dependencies: exposition speaks the Prometheus text format and
//     the Chrome trace_event JSON format directly, with only the stdlib.
//  3. One registry per scope: a process-wide Default() registry (disabled
//     until Enable()) for package-level instrumentation, plus per-component
//     registries (e.g. one per southbound Controller) that are always
//     enabled and merged at exposition time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates instrument types in snapshots.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// DefBuckets is the default histogram bucketing for durations in seconds:
// 100 µs … 10 s, roughly logarithmic (the paper's control-loop timescales:
// sub-ms data-plane failover up to multi-second solver iterations).
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// HopBuckets buckets small integer path lengths (data-plane hop counts).
var HopBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// Registry holds named instruments. All methods are safe for concurrent
// use. Instruments created from a disabled registry are retained but drop
// all writes until the registry is enabled.
type Registry struct {
	enabled atomic.Bool

	mu sync.Mutex
	//tinyleo:guardedby mu
	index map[string]*series
	//tinyleo:guardedby mu
	order []*series
}

type series struct {
	name   string
	labels []labelPair // sorted by key
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type labelPair struct{ k, v string }

// NewRegistry creates a registry; enabled selects whether instrument
// writes are recorded from the start.
func NewRegistry(enabled bool) *Registry {
	r := &Registry{index: map[string]*series{}}
	r.enabled.Store(enabled)
	return r
}

var defaultRegistry = NewRegistry(false)

// Default returns the process-wide registry used by package-level
// instrumentation across internal/mpc, internal/dataplane, internal/core,
// and the southbound agent. It starts disabled: instrumented code costs
// ~1 ns/op until Enable is called.
func Default() *Registry { return defaultRegistry }

// Enable turns on the default registry (and is the switch behind the
// -metrics-addr CLI flags).
func Enable() { defaultRegistry.SetEnabled(true) }

// Enabled reports whether writes are recorded.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetEnabled toggles recording. Already-registered instruments observe the
// change immediately (they share the registry's flag).
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// seriesKey renders the canonical map key; labels must already be sorted.
func seriesKey(name string, labels []labelPair) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, lp := range labels {
		b.WriteByte(0)
		b.WriteString(lp.k)
		b.WriteByte(0)
		b.WriteString(lp.v)
	}
	return b.String()
}

func parseLabels(name string, kvs []string) []labelPair {
	if len(kvs)%2 != 0 {
		panic(fmt.Sprintf("obs: %s: odd label list %q", name, kvs))
	}
	if len(kvs) == 0 {
		return nil
	}
	out := make([]labelPair, 0, len(kvs)/2)
	for i := 0; i < len(kvs); i += 2 {
		out = append(out, labelPair{k: kvs[i], v: kvs[i+1]})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].k < out[b].k })
	return out
}

// lookup returns the series for (name, labels, kind), creating it with
// mk() on first use. Re-registering the same name with a different kind
// panics: it would corrupt exposition.
func (r *Registry) lookup(name string, kvs []string, kind Kind, mk func() *series) *series {
	labels := parseLabels(name, kvs)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.index[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	for _, s := range r.order {
		if s.name == name && s.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, s.kind))
		}
	}
	s := mk()
	s.name, s.labels, s.kind = name, labels, kind
	r.index[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter returns (registering on first use) the counter for name and the
// given key/value label pairs, e.g.
//
//	r.Counter("southbound_messages_total", "dir", "rx", "type", "hello")
func (r *Registry) Counter(name string, kvs ...string) *Counter {
	s := r.lookup(name, kvs, KindCounter, func() *series {
		return &series{c: &Counter{on: &r.enabled}}
	})
	return s.c
}

// Gauge returns (registering on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, kvs ...string) *Gauge {
	s := r.lookup(name, kvs, KindGauge, func() *series {
		return &series{g: &Gauge{on: &r.enabled}}
	})
	return s.g
}

// Histogram returns (registering on first use) the fixed-bucket histogram
// for name and labels. bounds are inclusive upper bucket bounds in
// ascending order; a +Inf bucket is implicit. bounds are only consulted on
// first registration.
func (r *Registry) Histogram(name string, bounds []float64, kvs ...string) *Histogram {
	s := r.lookup(name, kvs, KindHistogram, func() *series {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: %s: histogram bounds not sorted", name))
		}
		return &series{h: &Histogram{
			on:      &r.enabled,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}}
	})
	return s.h
}

// ---- Instruments ----

// Counter is a monotonically increasing int64. The zero-cost disabled path
// is a single atomic bool load.
type Counter struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n (n < 0 is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n <= 0 || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
	on   *atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	if !g.on.Load() {
		return
	}
	addFloatBits(&g.bits, delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (Prometheus-style
// cumulative exposition; raw per-bucket counts in JSON snapshots).
type Histogram struct {
	on      *atomic.Bool
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if !h.on.Load() {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the histogram's bucket bounds (shared slice; do not
// mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Merge folds pre-aggregated observations into the histogram: count and
// sum deltas plus raw per-bucket count deltas (len(bounds)+1 entries, the
// last being +Inf). It is the primitive fleet aggregation is built on —
// an agent ships its histogram state as deltas and the rollup registry
// merges them here. Returns false (merging nothing) when the bucket
// layout does not match.
func (h *Histogram) Merge(count int64, sum float64, buckets []int64) bool {
	if !h.on.Load() {
		return true
	}
	if len(buckets) != len(h.buckets) {
		return false
	}
	for i, d := range buckets {
		if d > 0 {
			h.buckets[i].Add(d)
		}
	}
	if count > 0 {
		h.count.Add(count)
	}
	addFloatBits(&h.sumBits, sum)
	return true
}

func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
