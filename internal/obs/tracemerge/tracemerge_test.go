package tracemerge

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/southbound"
)

// procTracer emulates one process: its own tracer, name, and (skewed)
// clock.
func procTracer(name string, skew time.Duration) *obs.Tracer {
	tr := &obs.Tracer{}
	tr.SetProcess(name)
	tr.SetClock(func() time.Time { return time.Now().Add(skew) })
	tr.Enable(1024)
	return tr
}

func dumpOf(t *testing.T, tr *obs.Tracer) *Dump {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// End-to-end over real TCP: one controller, two agents with deliberately
// skewed clocks (+10s and −7s), one command each, one retransmit. The
// merged timeline must put every command in a single causal tree spanning
// both processes, with apply timestamps pulled back inside the controller's
// send→ack bracket by the skew correction.
func TestMergeControllerTwoAgents(t *testing.T) {
	ctlTr := procTracer("ctl", 0)
	aTr := procTracer("sat-5", 10*time.Second)
	bTr := procTracer("sat-6", -7*time.Second)

	c, err := southbound.ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Tracer = ctlTr
	c.RetransmitInterval = 20 * time.Millisecond

	var wg sync.WaitGroup
	block := make(chan struct{})
	a, err := southbound.DialAgentOptions(c.Addr(), 5, time.Second, southbound.AgentOptions{Tracer: aTr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	wg.Add(1)
	a.OnCommand = func(m *southbound.Message) {
		defer wg.Done()
		<-block // hold the first command unacked long enough to retransmit
	}
	b, err := southbound.DialAgentOptions(c.Addr(), 6, time.Second, southbound.AgentOptions{Tracer: bTr})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	emit := ctlTr.StartSpan("mpc.emit", "round", "0")
	if err := c.Send(&southbound.Message{Type: southbound.MsgSetISL, SatID: 5, Peer: 6, Up: true,
		Trace: emit.Context(), Emitted: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&southbound.Message{Type: southbound.MsgSetISL, SatID: 6, Peer: 5, Up: true,
		Trace: emit.Context(), Emitted: time.Now()}); err != nil {
		t.Fatal(err)
	}
	emit.End()

	// Force at least one retransmit of sat 5's command while it is held.
	deadline := time.Now().Add(2 * time.Second)
	for c.Metrics().Counter(southbound.MetricRetransmits).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no retransmit observed")
		}
		time.Sleep(25 * time.Millisecond)
		c.SweepPending()
	}
	close(block)
	wg.Wait()
	for deadline := time.Now().Add(2 * time.Second); c.PendingAcks() > 0; {
		if time.Now().After(deadline) {
			t.Fatal("commands never acked")
		}
		time.Sleep(2 * time.Millisecond)
	}

	m := Merge(dumpOf(t, ctlTr), dumpOf(t, aTr), dumpOf(t, bTr))
	anchor, offsets := m.Offsets()
	if anchor != "ctl" {
		t.Fatalf("anchor = %q, want ctl", anchor)
	}
	// Corrections should recover the injected skews to within real network
	// and scheduling noise (well under a second here).
	if off := offsets["sat-5"]; off < 9_500_000 || off > 10_500_000 {
		t.Errorf("sat-5 offset = %dµs, want ≈ +10s", off)
	}
	if off := offsets["sat-6"]; off < -7_500_000 || off > -6_500_000 {
		t.Errorf("sat-6 offset = %dµs, want ≈ −7s", off)
	}

	// Index merged spans.
	bySpan := map[string]Span{}
	perCmd := map[string][]Span{} // trace/seq → spans
	for _, s := range m.Spans {
		if s.Span != "" {
			bySpan[s.Span] = s
		}
		if seq := s.Attrs["seq"]; seq != "" && s.Trace != "" {
			perCmd[s.Trace+"/"+seq] = append(perCmd[s.Trace+"/"+seq], s)
		}
	}
	if len(perCmd) != 2 {
		t.Fatalf("merged commands = %d, want 2", len(perCmd))
	}
	sawRetransmit := false
	for key, spans := range perCmd {
		var send, apply, ack *Span
		procs := map[string]bool{}
		for i := range spans {
			s := &spans[i]
			procs[s.Proc] = true
			switch s.Name {
			case "sb.send":
				send = s
			case "agent.apply":
				apply = s
			case "sb.ack":
				ack = s
			case "sb.retransmit":
				sawRetransmit = true
			}
		}
		if send == nil || apply == nil || ack == nil {
			t.Fatalf("command %s incomplete: %+v", key, spans)
		}
		if len(procs) < 2 {
			t.Errorf("command %s spans only %v, want 2 processes", key, procs)
		}
		// One causal tree: apply and ack are children of the send; the send
		// is a child of the mpc.emit root.
		if apply.Parent != send.Span || ack.Parent != send.Span {
			t.Errorf("command %s: apply/ack parents %s/%s, want send %s",
				key, apply.Parent, ack.Parent, send.Span)
		}
		root, ok := bySpan[send.Parent]
		if !ok || root.Name != "mpc.emit" {
			t.Errorf("command %s: send parent %q is not the mpc.emit root", key, send.Parent)
		}
		// Skew-corrected causality: the agent's apply sits inside the
		// controller's send→ack bracket (±5ms slack for the half-RTT the
		// NTP estimate cannot see).
		slack := int64(5_000)
		if apply.StartUS < send.StartUS-slack || apply.StartUS+apply.DurUS > ack.StartUS+ack.DurUS+slack {
			t.Errorf("command %s: corrected apply [%d,%d] outside send→ack [%d,%d]",
				key, apply.StartUS, apply.StartUS+apply.DurUS, send.StartUS, ack.StartUS+ack.DurUS)
		}
	}
	if !sawRetransmit {
		t.Error("merged trace has no sb.retransmit span")
	}

	// Chrome rendering: three named processes, flow arrows crossing the
	// boundary, valid JSON.
	var chrome bytes.Buffer
	if err := m.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &arr); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	names, flows := 0, 0
	for _, ev := range arr {
		switch ev["ph"] {
		case "M":
			names++
		case "s":
			flows++
		}
	}
	if names != 3 {
		t.Errorf("process_name records = %d, want 3", names)
	}
	if flows == 0 {
		t.Error("no flow arrows in chrome trace")
	}

	// Canonical form is a pure function of the merged dumps.
	var c1, c2 bytes.Buffer
	if err := m.WriteCanonical(&c1); err != nil {
		t.Fatal(err)
	}
	if err := Merge(dumpOf(t, ctlTr), dumpOf(t, aTr), dumpOf(t, bTr)).WriteCanonical(&c2); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Error("canonical form differs across identical merges")
	}
	if !strings.Contains(c1.String(), "agent.apply") || !strings.Contains(c1.String(), "parent=") {
		t.Errorf("canonical form missing expected content:\n%s", c1.String())
	}
}

// Four processes over real TCP: one controller and three agents whose
// clocks are skewed asymmetrically (far ahead, far behind, slightly
// ahead). Multiple commands per agent give the NTP-style estimator
// several samples to take the median of. The merge must recover every
// skew independently, keep each command's causal tree intact, and order
// the skew-corrected applies consistently with the real send order even
// though the raw agent clocks disagree by over a minute.
func TestMergeFourProcessesAsymmetricSkew(t *testing.T) {
	ctlTr := procTracer("ctl", 0)
	skews := map[uint32]time.Duration{
		7: 25 * time.Second,  // far ahead
		8: -40 * time.Second, // far behind
		9: 3 * time.Second,   // slightly ahead
	}
	trs := map[uint32]*obs.Tracer{}

	c, err := southbound.ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Tracer = ctlTr

	for _, id := range []uint32{7, 8, 9} {
		tr := procTracer("sat-"+string(rune('0'+id)), skews[id])
		trs[id] = tr
		a, err := southbound.DialAgentOptions(c.Addr(), id, time.Second, southbound.AgentOptions{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		a.OnCommand = func(m *southbound.Message) {}
	}

	// Three commands per agent, interleaved round-robin so every agent's
	// offset comes from samples spread across the run.
	emit := ctlTr.StartSpan("mpc.emit", "round", "0")
	for i := 0; i < 3; i++ {
		for _, id := range []uint32{7, 8, 9} {
			if err := c.Send(&southbound.Message{Type: southbound.MsgSetISL, SatID: id,
				Peer: id + 1, Up: true, Trace: emit.Context(), Emitted: time.Now()}); err != nil {
				t.Fatal(err)
			}
		}
	}
	emit.End()
	for deadline := time.Now().Add(5 * time.Second); c.PendingAcks() > 0; {
		if time.Now().After(deadline) {
			t.Fatal("commands never acked")
		}
		time.Sleep(2 * time.Millisecond)
	}

	dumps := []*Dump{dumpOf(t, ctlTr)}
	for _, id := range []uint32{7, 8, 9} {
		dumps = append(dumps, dumpOf(t, trs[id]))
	}
	m := Merge(dumps...)
	anchor, offsets := m.Offsets()
	if anchor != "ctl" {
		t.Fatalf("anchor = %q, want ctl", anchor)
	}
	if len(offsets) != 4 {
		t.Fatalf("offsets for %d processes, want 4: %v", len(offsets), offsets)
	}
	// Each skew recovered independently, within network/scheduling noise.
	wantUS := map[string]int64{"sat-7": 25_000_000, "sat-8": -40_000_000, "sat-9": 3_000_000}
	for proc, want := range wantUS {
		got := offsets[proc]
		if got < want-500_000 || got > want+500_000 {
			t.Errorf("%s offset = %dµs, want ≈ %dµs", proc, got, want)
		}
	}

	// Every command forms a complete cross-process tree, and the corrected
	// apply lies inside the controller's send→ack bracket.
	perCmd := map[string][]Span{}
	for _, s := range m.Spans {
		if seq := s.Attrs["seq"]; seq != "" && s.Trace != "" {
			perCmd[s.Trace+"/"+seq] = append(perCmd[s.Trace+"/"+seq], s)
		}
	}
	if len(perCmd) != 9 {
		t.Fatalf("merged commands = %d, want 9", len(perCmd))
	}
	applyByProc := map[string][]int64{}
	slack := int64(5_000)
	for key, spans := range perCmd {
		var send, apply, ack *Span
		for i := range spans {
			s := &spans[i]
			switch s.Name {
			case "sb.send":
				send = s
			case "agent.apply":
				apply = s
			case "sb.ack":
				ack = s
			}
		}
		if send == nil || apply == nil || ack == nil {
			t.Fatalf("command %s incomplete: %+v", key, spans)
		}
		if apply.Proc == send.Proc {
			t.Errorf("command %s: apply did not cross a process boundary", key)
		}
		if apply.Parent != send.Span {
			t.Errorf("command %s: apply parent %s, want send %s", key, apply.Parent, send.Span)
		}
		if apply.StartUS < send.StartUS-slack || apply.StartUS+apply.DurUS > ack.StartUS+ack.DurUS+slack {
			t.Errorf("command %s: corrected apply [%d,%d] outside send→ack [%d,%d]",
				key, apply.StartUS, apply.StartUS+apply.DurUS, send.StartUS, ack.StartUS+ack.DurUS)
		}
		applyByProc[apply.Proc] = append(applyByProc[apply.Proc], apply.StartUS)
	}
	// Raw clocks disagree by up to 65s, but after correction every agent's
	// applies land within the controller's sub-second command window — the
	// whole point of merging on one timeline.
	var lo, hi int64
	first := true
	for proc, starts := range applyByProc {
		if len(starts) != 3 {
			t.Fatalf("%s applied %d commands, want 3", proc, len(starts))
		}
		for _, s := range starts {
			if first || s < lo {
				lo = s
			}
			if first || s > hi {
				hi = s
			}
			first = false
		}
	}
	if hi-lo > 2_000_000 {
		t.Errorf("corrected applies span %dµs across agents, want < 2s", hi-lo)
	}

	// Canonical form is stable across re-merges of the same dumps.
	var c1, c2 bytes.Buffer
	if err := m.WriteCanonical(&c1); err != nil {
		t.Fatal(err)
	}
	if err := Merge(dumps...).WriteCanonical(&c2); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Error("canonical form differs across identical merges")
	}
}

func TestReadJSONLMetaAndErrors(t *testing.T) {
	in := `{"name":"` + obs.MetaEventName + `","attrs":{"proc":"p1","epoch_unix_us":"123"}}
{"name":"x","start_us":5,"dur_us":2}
`
	d, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Proc != "p1" || d.EpochUS != 123 || len(d.Events) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed JSONL accepted")
	}
}
