package tracemerge

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Dump is one process's trace ring: the meta record's identity plus its
// span events, timestamps still relative to the dump's own epoch.
type Dump struct {
	Proc    string // process name from the meta record ("" if unnamed)
	EpochUS int64  // tracer epoch in Unix microseconds
	Events  []obs.Event
}

// ReadJSONL parses one /trace dump. The MetaEventName record (first in
// well-formed dumps, but accepted anywhere) supplies Proc and EpochUS;
// dumps without one merge at epoch 0 with an empty name.
func ReadJSONL(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("tracemerge: line %d: %w", line, err)
		}
		if ev.Name == obs.MetaEventName {
			d.Proc = ev.Attrs["proc"]
			d.EpochUS, _ = strconv.ParseInt(ev.Attrs["epoch_unix_us"], 10, 64)
			continue
		}
		d.Events = append(d.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadFile reads a JSONL dump from disk. A dump with an empty Proc is
// named after its file basename, so merged views stay distinguishable.
func ReadFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Proc == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		d.Proc = strings.TrimSuffix(base, ".jsonl")
	}
	return d, nil
}

// Span is one event on the merged timeline: absolute, skew-corrected
// microsecond timestamps.
type Span struct {
	Proc    string
	Name    string
	StartUS int64 // absolute Unix µs, after skew correction
	DurUS   int64
	Trace   string
	Span    string
	Parent  string
	Attrs   map[string]string
}

// Merged is the cross-process timeline produced by Merge.
type Merged struct {
	Spans   []Span
	offsets map[string]int64 // proc → applied correction (µs)
	anchor  string
}

// Offsets reports the per-process clock corrections (µs subtracted from
// each process's absolute timestamps) and the anchor process they are
// relative to.
func (m *Merged) Offsets() (anchor string, offsets map[string]int64) {
	return m.anchor, m.offsets
}

// Merge places every dump on one absolute timeline and corrects
// per-process clock skew. The anchor is the dump with the most sb.send
// spans (the controller); for every other process, each command traced
// across the boundary yields an NTP-style offset sample
//
//	offset = ((apply.start − send.start) + (apply.end − ack.end)) / 2
//
// (positive = that process's clock runs ahead of the anchor's), and the
// median sample is subtracted from all of its timestamps. Processes that
// share no command with the anchor are left uncorrected.
func Merge(dumps ...*Dump) *Merged {
	m := &Merged{offsets: map[string]int64{}}
	// Anchor = most sb.send spans; ties break on name for determinism.
	bestSends := -1
	for _, d := range dumps {
		sends := 0
		for _, ev := range d.Events {
			if ev.Name == "sb.send" {
				sends++
			}
		}
		if sends > bestSends || (sends == bestSends && d.Proc < m.anchor) {
			bestSends, m.anchor = sends, d.Proc
		}
	}
	// Index the anchor's send/ack spans per command. One mpc.emit root can
	// fan out to many commands on the same trace id, so the key is
	// trace+seq, not trace alone.
	type bracket struct{ sendStart, ackEnd int64 } // absolute µs, anchor clock
	brackets := map[string]*bracket{}
	cmdKey := func(ev obs.Event) string { return ev.Trace + "/" + ev.Attrs["seq"] }
	for _, d := range dumps {
		if d.Proc != m.anchor {
			continue
		}
		for _, ev := range d.Events {
			abs := d.EpochUS + ev.StartUS
			switch ev.Name {
			case "sb.send":
				b := brackets[cmdKey(ev)]
				if b == nil {
					brackets[cmdKey(ev)] = &bracket{sendStart: abs, ackEnd: -1}
				} else {
					b.sendStart = abs
				}
			case "sb.ack":
				b := brackets[cmdKey(ev)]
				if b == nil {
					brackets[cmdKey(ev)] = &bracket{sendStart: -1, ackEnd: abs + ev.DurUS}
				} else {
					b.ackEnd = abs + ev.DurUS
				}
			}
		}
	}
	for _, d := range dumps {
		offset := int64(0)
		if d.Proc != m.anchor {
			var samples []int64
			for _, ev := range d.Events {
				if ev.Name != "agent.apply" {
					continue
				}
				b := brackets[cmdKey(ev)]
				if b == nil || b.sendStart < 0 || b.ackEnd < 0 {
					continue
				}
				start := d.EpochUS + ev.StartUS
				end := start + ev.DurUS
				samples = append(samples, ((start-b.sendStart)+(end-b.ackEnd))/2)
			}
			if len(samples) > 0 {
				sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
				offset = samples[len(samples)/2]
			}
		}
		m.offsets[d.Proc] = offset
		for _, ev := range d.Events {
			m.Spans = append(m.Spans, Span{
				Proc:    d.Proc,
				Name:    ev.Name,
				StartUS: d.EpochUS + ev.StartUS - offset,
				DurUS:   ev.DurUS,
				Trace:   ev.Trace,
				Span:    ev.Span,
				Parent:  ev.Parent,
				Attrs:   ev.Attrs,
			})
		}
	}
	sort.SliceStable(m.Spans, func(i, j int) bool {
		a, b := m.Spans[i], m.Spans[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return attrKey(a.Attrs) < attrKey(b.Attrs)
	})
	return m
}

func attrKey(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(attrs[k])
		sb.WriteByte(' ')
	}
	return strings.TrimRight(sb.String(), " ")
}

// chromeEvent mirrors the trace_event JSON schema (complete spans plus
// flow s/f pairs and process_name metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the merged timeline for chrome://tracing /
// Perfetto: one pid per process (named via process_name metadata),
// timestamps rebased to the earliest span, and a flow arrow for every
// parent→child edge that crosses a process boundary (controller send →
// agent apply).
func (m *Merged) WriteChromeTrace(w io.Writer) error {
	procs := make([]string, 0, len(m.offsets))
	for p := range m.offsets {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	pid := map[string]int{}
	var out []chromeEvent
	for i, p := range procs {
		pid[p] = i + 1
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1, TID: 0,
			Args: map[string]any{"name": p},
		})
	}
	var t0 int64
	for i, s := range m.Spans {
		if i == 0 || s.StartUS < t0 {
			t0 = s.StartUS
		}
	}
	// Where does each span live? Needed to detect cross-process edges.
	spanProc := map[string]string{}
	spanEnd := map[string]int64{}
	for _, s := range m.Spans {
		if s.Span != "" {
			spanProc[s.Span] = s.Proc
			spanEnd[s.Span] = s.StartUS + s.DurUS
		}
	}
	for _, s := range m.Spans {
		args := map[string]any{}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Trace != "" {
			args["trace"], args["span"] = s.Trace, s.Span
			if s.Parent != "" {
				args["parent"] = s.Parent
			}
		}
		if len(args) == 0 {
			args = nil
		}
		out = append(out, chromeEvent{
			Name: s.Name, Ph: "X", PID: pid[s.Proc], TID: 1,
			TS: s.StartUS - t0, Dur: s.DurUS, Args: args,
		})
		if s.Parent != "" && spanProc[s.Parent] != "" && spanProc[s.Parent] != s.Proc {
			// Flow arrow: parent's end → this span's start.
			out = append(out, chromeEvent{
				Name: "causal", Ph: "s", Cat: "sb", ID: s.Span,
				PID: pid[spanProc[s.Parent]], TID: 1,
				TS: min64(spanEnd[s.Parent]-t0, s.StartUS-t0),
			})
			out = append(out, chromeEvent{
				Name: "causal", Ph: "f", BP: "e", Cat: "sb", ID: s.Span,
				PID: pid[s.Proc], TID: 1, TS: s.StartUS - t0,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteCanonical renders the merged timeline in a deterministic text form
// for run-twice comparisons: traces and spans are renumbered in sorted
// order (raw span IDs depend on concurrent allocation order even under a
// seeded tracer, so they are not printed), and every line carries the
// process, timing, and attributes. Two campaigns with the same seed and
// virtual clock produce byte-identical canonical dumps.
func (m *Merged) WriteCanonical(w io.Writer) error {
	// Group spans by trace; untraced spans form a pseudo-group keyed "".
	byTrace := map[string][]Span{}
	for _, s := range m.Spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	type group struct {
		key   string // sort key: first span's start/name/attrs
		trace string
		spans []Span
	}
	groups := make([]group, 0, len(byTrace))
	for tr, spans := range byTrace {
		// m.Spans is globally sorted, so spans within a group are too.
		first := spans[0]
		key := fmt.Sprintf("%016d %s %s", first.StartUS, first.Name, attrKey(first.Attrs))
		groups = append(groups, group{key: key, trace: tr, spans: spans})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].key != groups[j].key {
			return groups[i].key < groups[j].key
		}
		return groups[i].trace < groups[j].trace
	})
	bw := bufio.NewWriter(w)
	for gi, g := range groups {
		canon := map[string]string{} // raw span id → t<gi>.s<n>
		for si, s := range g.spans {
			if s.Span != "" {
				canon[s.Span] = fmt.Sprintf("t%d.s%d", gi, si)
			}
		}
		fmt.Fprintf(bw, "trace t%d spans=%d\n", gi, len(g.spans))
		for si, s := range g.spans {
			parent := "-"
			if s.Parent != "" {
				if c, ok := canon[s.Parent]; ok {
					parent = c
				} else {
					parent = "?" // parent span not in any dump (ring-evicted)
				}
			}
			fmt.Fprintf(bw, "  s%d %s proc=%s parent=%s start=%d dur=%d %s\n",
				si, s.Name, s.Proc, parent, s.StartUS, s.DurUS, attrKey(s.Attrs))
		}
	}
	return bw.Flush()
}
