// Package tracemerge assembles per-process span dumps (the /trace JSONL
// endpoint or -trace-out files) into one cross-process timeline. Each
// dump carries its own tracer epoch and clock; tracemerge aligns them
// with an NTP-style skew correction derived from the southbound command
// spans themselves (sb.send/sb.ack on the controller bracket agent.apply
// on the agent), then renders a single Chrome trace_event file —
// per-command causal trees spanning processes, with flow arrows across
// the boundary — or a canonical text form stable enough to diff
// run-to-run.
//
// # Surfaces
//
// ReadFile / Read parse one process's JSONL dump into a Dump. Merge
// aligns any number of dumps into a Merged timeline; Merged.Offsets
// reports the chosen clock anchor and the per-process skew estimates.
// Merged.WriteChromeTrace emits the chrome://tracing / Perfetto form;
// Merged.WriteCanonical emits the deterministic text form (chaos
// campaigns with a seeded virtual-clock tracer produce byte-identical
// canonical merges run-to-run).
//
// `tinyleo-ctl trace` is the CLI over exactly this API.
package tracemerge
