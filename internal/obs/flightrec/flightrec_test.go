package flightrec

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// newTestRegistry returns an enabled, test-private registry so SLO
// indicator tests don't share series with the process-wide default.
func newTestRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	return obs.NewRegistry(true)
}

func TestLogRingKeepsNewestAndCountsDrops(t *testing.T) {
	var l Log
	l.Enable(4)
	for i := 0; i < 10; i++ {
		l.Emit(CompMPC, "tick", "i", string(rune('0'+i)))
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// Newest-wins: the survivors are seq 7..10, in order.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	if s := l.Summary(); !strings.Contains(s, "4 events") || !strings.Contains(s, "6 overwritten") {
		t.Fatalf("Summary() = %q", s)
	}
}

func TestLogDisabledEmitIsNoop(t *testing.T) {
	var l Log
	l.Emit(CompMPC, "tick")
	if n := len(l.Events()); n != 0 {
		t.Fatalf("disabled log recorded %d events", n)
	}
	l.Enable(8)
	l.Disable()
	l.Emit(CompMPC, "tick")
	if n := len(l.Events()); n != 0 {
		t.Fatalf("re-disabled log recorded %d events", n)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Seq: 7, TimeUS: 1234, Component: CompDataplane, Type: "drop",
		Attrs: []string{"sat", "3", "reason", "hop limit"}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Attrs render as an object, not a flat array.
	if !strings.Contains(string(b), `"attrs":{`) {
		t.Fatalf("marshal = %s", b)
	}
	var out Event
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.TimeUS != in.TimeUS || out.Component != in.Component || out.Type != in.Type {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if out.Attr("reason") != "hop limit" || out.Attr("sat") != "3" {
		t.Fatalf("attrs lost: %+v", out.Attrs)
	}
	if out.Attr("missing") != "" {
		t.Fatal("Attr(missing) should be empty")
	}
}

func TestSnapshotterRingAndGzipSpill(t *testing.T) {
	spill := filepath.Join(t.TempDir(), "slots.jsonl.gz")
	var s Snapshotter
	if err := s.enable(3, spill); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.RecordSlot(SlotState{Time: float64(i) * 100, Kind: "compile",
			InterLinks: [][2]int{{i, i + 1}}})
	}
	slots := s.Slots()
	if len(slots) != 3 {
		t.Fatalf("ring kept %d slots, want 3", len(slots))
	}
	// RecordSlot assigns monotonic slot numbers; ring keeps 2,3,4.
	for i, st := range slots {
		if want := 2 + i; st.Slot != want {
			t.Fatalf("slot %d numbered %d, want %d", i, st.Slot, want)
		}
	}
	if got := s.Recorded(); got != 5 {
		t.Fatalf("Recorded() = %d, want 5", got)
	}
	if err := s.disable(); err != nil {
		t.Fatal(err)
	}
	if err := s.SpillErr(); err != nil {
		t.Fatal(err)
	}
	// The spill file holds ALL 5 slots, gzip-compressed, one JSON per line.
	f, err := os.Open(spill)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(gz)
	n := 0
	for dec.More() {
		var st SlotState
		if err := dec.Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Slot != n {
			t.Fatalf("spilled slot %d numbered %d", n, st.Slot)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("spill holds %d slots, want 5", n)
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	u, v, ok := ParseEdgeKey(EdgeKey(12, 345))
	if !ok || u != 12 || v != 345 {
		t.Fatalf("ParseEdgeKey(EdgeKey(12,345)) = %d,%d,%v", u, v, ok)
	}
	if _, _, ok := ParseEdgeKey("nonsense"); ok {
		t.Fatal("ParseEdgeKey accepted garbage")
	}
}

func sampleRecording() *Recording {
	return &Recording{
		Meta: Meta{Version: RecordingVersion, Binary: "test"},
		Slots: []SlotState{
			{Slot: 0, Time: 0, Kind: "compile",
				InterLinks: [][2]int{{1, 2}, {3, 4}}, RingLinks: [][2]int{{1, 3}},
				CellSats: map[int][]int{10: {1, 2}, 20: {3, 4}},
				Deficits: map[string]int{EdgeKey(10, 20): 1}},
			{Slot: 1, Time: 300, Kind: "repair",
				InterLinks: [][2]int{{1, 2}, {5, 6}}, RingLinks: [][2]int{{1, 3}},
				CellSats: map[int][]int{10: {1}, 20: {3, 4}}},
		},
		Events: []Event{
			{Seq: 1, TimeUS: 10, Component: CompMPC, Type: "slot_compiled", Attrs: []string{"t", "0"}},
			{Seq: 2, TimeUS: 20, Component: CompMPC, Type: "isl_fail", Attrs: []string{"a", "3", "b", "4"}},
			{Seq: 3, TimeUS: 30, Component: CompSLO, Type: "slo_breach",
				Attrs: []string{"rule", "availability", "expr", "availability>=0.99", "value", "0.5"}},
			{Seq: 4, TimeUS: 40, Component: CompMPC, Type: "repair", Attrs: []string{"new_links", "1"}},
			{Seq: 5, TimeUS: 50, Component: CompMPC, Type: "recovered", Attrs: []string{"inter", "2"}},
		},
		SLO: []RuleStatus{{
			Rule:  Rule{Name: "availability", Kind: SLOAvailability, Op: ">=", Threshold: 0.99},
			Value: 0.5, Breached: true, Breaches: 1,
		}},
	}
}

func TestRecordingRoundTripPlainAndGzip(t *testing.T) {
	rec := sampleRecording()
	var plain bytes.Buffer
	if err := rec.Write(&plain); err != nil {
		t.Fatal(err)
	}
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	if err := rec.Write(gz); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"plain": &plain, "gzip": &gzBuf} {
		got, err := ReadRecording(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Slots) != 2 || len(got.Events) != 5 || len(got.SLO) != 1 {
			t.Fatalf("%s: read %d slots, %d events, %d slo", name,
				len(got.Slots), len(got.Events), len(got.SLO))
		}
		if got.Slots[1].Kind != "repair" || got.Events[1].Attr("a") != "3" {
			t.Fatalf("%s: payload mangled: %+v", name, got.Slots[1])
		}
		if !got.SLO[0].Breached || got.SLO[0].Value != 0.5 {
			t.Fatalf("%s: SLO status mangled: %+v", name, got.SLO[0])
		}
	}
}

func TestRuleStatusJSONNaNValue(t *testing.T) {
	st := RuleStatus{Rule: Rule{Name: "repair_p99", Kind: SLORepairP99, Op: "<=", Threshold: 0.2},
		Value: math.NaN()}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"value":null`) {
		t.Fatalf("NaN should serialize as null: %s", b)
	}
	var back RuleStatus
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Value) {
		t.Fatalf("null should come back as NaN, got %v", back.Value)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("availability>=0.99, deficit_ratio<=0.05,repair_p99<=0.1,tinyleo_mpc_compile_total>=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Kind != SLOAvailability || rules[0].Op != ">=" || rules[0].Threshold != 0.99 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Kind != SLODeficitRatio || rules[1].Threshold != 0.05 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	// Unknown names fall back to raw-metric rules.
	if rules[3].Kind != SLOMetric || rules[3].Metric != "tinyleo_mpc_compile_total" {
		t.Fatalf("rule 3 = %+v", rules[3])
	}
	if rules[3].Expr() != "tinyleo_mpc_compile_total>=3" {
		t.Fatalf("Expr() = %q", rules[3].Expr())
	}
	for _, bad := range []string{"availability=0.9", "repair_p99<=abc"} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) should fail", bad)
		}
	}
	if rules, err := ParseRules(" , "); err != nil || len(rules) != 0 {
		t.Fatalf("blank spec: %v, %v", rules, err)
	}
}

func TestEngineBreachAndRecoveryTransitions(t *testing.T) {
	reg := newTestRegistry(t)
	avail := reg.Gauge("tinyleo_mpc_enforcement_ratio")
	var log Log
	log.Enable(64)
	eng := NewEngine(&log, Rule{Name: "availability", Kind: SLOAvailability, Op: ">=", Threshold: 0.95})
	eng.SetRegistries(reg)

	avail.Set(0.80)
	st := eng.Eval()
	if !st[0].Breached || st[0].Breaches != 1 {
		t.Fatalf("below threshold should breach: %+v", st[0])
	}
	// Staying breached is not a new transition.
	avail.Set(0.70)
	if st = eng.Eval(); st[0].Breaches != 1 {
		t.Fatalf("re-breach counted twice: %+v", st[0])
	}
	avail.Set(0.99)
	if st = eng.Eval(); st[0].Breached {
		t.Fatalf("above threshold still breached: %+v", st[0])
	}
	var types []string
	for _, ev := range log.Events() {
		if ev.Component == CompSLO {
			types = append(types, ev.Type)
		}
	}
	if len(types) != 2 || types[0] != "slo_breach" || types[1] != "slo_recovered" {
		t.Fatalf("SLO events = %v, want [slo_breach slo_recovered]", types)
	}
}

func TestEngineHistogramQuantileIndicator(t *testing.T) {
	reg := newTestRegistry(t)
	h := reg.Histogram("tinyleo_mpc_repair_stage_seconds", nil, "stage", "total")
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all repairs at 50 ms
	}
	eng := NewEngine(nil, Rule{Name: "repair_p99", Kind: SLORepairP99, Op: "<=", Threshold: 0.2})
	eng.SetRegistries(reg)
	st := eng.Eval()
	if st[0].Breached {
		t.Fatalf("50 ms p99 breaches 200 ms threshold: %+v", st[0])
	}
	if math.IsNaN(st[0].Value) || st[0].Value <= 0 || st[0].Value > 0.2 {
		t.Fatalf("p99 = %v, want in (0, 0.2]", st[0].Value)
	}
	// Tighten below the observed latency: must breach.
	eng2 := NewEngine(nil, Rule{Name: "repair_p99", Kind: SLORepairP99, Op: "<=", Threshold: 0.001})
	eng2.SetRegistries(reg)
	if st := eng2.Eval(); !st[0].Breached {
		t.Fatalf("50 ms p99 should breach 1 ms threshold: %+v", st[0])
	}
}

func TestEngineUnknownIndicatorIsNaNNotBreach(t *testing.T) {
	reg := newTestRegistry(t)
	eng := NewEngine(nil, Rule{Name: "ghost", Kind: SLOMetric, Metric: "no_such_series", Op: ">=", Threshold: 1})
	eng.SetRegistries(reg)
	st := eng.Eval()
	if !math.IsNaN(st[0].Value) || st[0].Breached {
		t.Fatalf("missing series should be NaN and healthy: %+v", st[0])
	}
}

func TestFailureSequences(t *testing.T) {
	rec := sampleRecording()
	seqs := rec.FailureSequences()
	if len(seqs) != 1 {
		t.Fatalf("got %d sequences, want 1", len(seqs))
	}
	s := seqs[0]
	if len(s.Failures) != 1 || s.Failures[0].Type != "isl_fail" {
		t.Fatalf("failures = %+v", s.Failures)
	}
	if s.Repair == nil || s.Outcome == nil || s.Outcome.Type != "recovered" {
		t.Fatalf("sequence incomplete: repair=%v outcome=%v", s.Repair, s.Outcome)
	}
}

func TestDiffSlots(t *testing.T) {
	rec := sampleRecording()
	d := DiffSlots(&rec.Slots[0], &rec.Slots[1])
	if len(d.Inter.Added) != 1 || d.Inter.Added[0] != [2]int{5, 6} {
		t.Fatalf("Inter.Added = %v", d.Inter.Added)
	}
	if len(d.Inter.Removed) != 1 || d.Inter.Removed[0] != [2]int{3, 4} {
		t.Fatalf("Inter.Removed = %v", d.Inter.Removed)
	}
	if d.Ring.Size() != 0 {
		t.Fatalf("ring churn = %v", d.Ring)
	}
	if got := d.CellsShrunk[10]; got != -1 {
		t.Fatalf("cell 10 shrink = %d, want -1", got)
	}
	if d.DeficitDelta != -1 {
		t.Fatalf("DeficitDelta = %d, want -1", d.DeficitDelta)
	}
	if d.Churn() != 2 {
		t.Fatalf("Churn() = %d, want 2", d.Churn())
	}
}

func TestWriteReportSections(t *testing.T) {
	rec := sampleRecording()
	var buf bytes.Buffer
	if err := rec.WriteReport(&buf, InspectOptions{Events: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== recording ==",
		"== per-slot topology ==",
		"slot 1 (t=300s, repair)",
		"== failure sequences ==",
		"mpc/isl_fail",
		"== SLO breaches ==",
		"availability>=0.99",
		"== final SLO status ==",
		"BREACHED",
		"== event log ==",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSaveAndReadRecordingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl.gz")
	if err := Enable(Options{EventCapacity: 64, SlotCapacity: 8}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := Disable(); err != nil {
			t.Fatal(err)
		}
	}()
	Emit(CompMPC, "slot_compiled", "t", "0")
	RecordSlot(SlotState{Time: 0, Kind: "compile", InterLinks: [][2]int{{1, 2}}})
	summary, err := SaveRecording(path, "flightrec-test")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "1 slots") {
		t.Fatalf("summary = %q", summary)
	}
	rec, err := ReadRecordingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta.Binary != "flightrec-test" || rec.Meta.Version != RecordingVersion {
		t.Fatalf("meta = %+v", rec.Meta)
	}
	if len(rec.Slots) != 1 || rec.Slots[0].InterLinks[0] != [2]int{1, 2} {
		t.Fatalf("slots = %+v", rec.Slots)
	}
	// Default rules ran against an empty registry: present, none breached
	// (NaN indicators never breach).
	if len(rec.SLO) == 0 {
		t.Fatal("recording lost SLO status")
	}
	for _, st := range rec.SLO {
		if st.Breached {
			t.Fatalf("empty-registry indicator breached: %+v", st)
		}
	}
}
