package flightrec

// Disabled-path benchmarks: the acceptance bar for leaving flight-
// recorder hooks in the MPC compile loop, the per-packet forwarder, and
// the southbound read loop is ≤ 2 ns/op and zero allocations while the
// recorder is off. The guarded-emit benchmarks model the real call-site
// idiom (Enabled() check BEFORE attribute formatting); the unguarded
// ones show why the guard matters.
//
//	go test -bench . -benchmem ./internal/obs/flightrec

import (
	"strconv"
	"testing"
)

func BenchmarkEnabledCheckDisabled(b *testing.B) {
	var l Log
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.Enabled() {
			b.Fatal("log should be disabled")
		}
	}
}

// BenchmarkGuardedEmitDisabled is the hot-path contract: call sites
// check Enabled() before building attributes, so the disabled cost is
// one atomic load and zero allocations.
func BenchmarkGuardedEmitDisabled(b *testing.B) {
	var l Log
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.Enabled() {
			l.Emit(CompDataplane, "drop", "sat", strconv.Itoa(i), "reason", "bench")
		}
	}
}

func BenchmarkGuardedEmitDisabledParallel(b *testing.B) {
	var l Log
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if l.Enabled() {
				l.Emit(CompDataplane, "drop", "reason", "bench")
			}
		}
	})
}

// BenchmarkDefaultEnabledCheckDisabled measures the package-level
// Enabled() the instrumented subsystems actually call.
func BenchmarkDefaultEnabledCheckDisabled(b *testing.B) {
	if Enabled() {
		b.Skip("process-wide recorder enabled by another test")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Enabled() {
			Emit(CompMPC, "slot_compiled")
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	var l Log
	l.Enable(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(CompDataplane, "drop", "reason", "bench")
	}
}

func BenchmarkEmitEnabledWithFormatting(b *testing.B) {
	var l Log
	l.Enable(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(CompDataplane, "drop", "sat", strconv.Itoa(i), "reason", "bench")
	}
}

func BenchmarkRecordSlotEnabled(b *testing.B) {
	var s Snapshotter
	if err := s.enable(256, ""); err != nil {
		b.Fatal(err)
	}
	st := SlotState{Time: 1, Kind: "compile",
		InterLinks: [][2]int{{1, 2}, {3, 4}, {5, 6}},
		RingLinks:  [][2]int{{1, 3}},
		CellSats:   map[int][]int{10: {1, 2}, 20: {3, 4}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordSlot(st)
	}
}
