package flightrec

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SlotDelta is the link-level change between two slot link sets — the
// reusable diff core shared by the postmortem inspector and the
// southbound delta-enforcement path (which turns a SlotDelta into
// per-satellite add/remove op batches instead of re-pushing every
// endpoint). Added and Removed are in canonical ascending link order,
// so identical inputs always produce identical deltas.
type SlotDelta struct {
	Added, Removed [][2]int
}

// Size returns the number of link operations the delta carries.
func (d SlotDelta) Size() int { return len(d.Added) + len(d.Removed) }

// DiffLinkSets computes the SlotDelta from prev to cur.
func DiffLinkSets(prev, cur [][2]int) SlotDelta {
	var d SlotDelta
	d.Added, d.Removed = diffLinks(prev, cur)
	return d
}

// SlotDiff is the change between two consecutive recorded slots: the
// postmortem unit the inspector prints.
type SlotDiff struct {
	Prev, Cur *SlotState
	// Inter and Ring are the ISL churn, split by link class.
	Inter, Ring SlotDelta
	// CellsLost lists cells that had coverage before and none now;
	// CellsGained the reverse; CellsShrunk cells whose satellite count
	// dropped (cell → before-after delta).
	CellsLost, CellsGained []int
	CellsShrunk            map[int]int
	// DeficitDelta is cur.DeficitTotal() - prev.DeficitTotal().
	DeficitDelta int
}

// Churn returns the total number of link changes in the diff.
func (d *SlotDiff) Churn() int {
	return d.Inter.Size() + d.Ring.Size()
}

// DiffSlots computes the change from prev to cur.
func DiffSlots(prev, cur *SlotState) *SlotDiff {
	d := &SlotDiff{Prev: prev, Cur: cur, CellsShrunk: map[int]int{}}
	d.Inter = DiffLinkSets(prev.InterLinks, cur.InterLinks)
	d.Ring = DiffLinkSets(prev.RingLinks, cur.RingLinks)
	cells := map[int]bool{}
	for u := range prev.CellSats {
		cells[u] = true
	}
	for u := range cur.CellSats {
		cells[u] = true
	}
	for u := range cells {
		before, after := len(prev.CellSats[u]), len(cur.CellSats[u])
		switch {
		case before > 0 && after == 0:
			d.CellsLost = append(d.CellsLost, u)
		case before == 0 && after > 0:
			d.CellsGained = append(d.CellsGained, u)
		case after < before:
			d.CellsShrunk[u] = after - before
		}
	}
	sort.Ints(d.CellsLost)
	sort.Ints(d.CellsGained)
	d.DeficitDelta = cur.DeficitTotal() - prev.DeficitTotal()
	return d
}

func diffLinks(prev, cur [][2]int) (added, removed [][2]int) {
	ps := make(map[[2]int]bool, len(prev))
	for _, l := range prev {
		ps[l] = true
	}
	cs := make(map[[2]int]bool, len(cur))
	for _, l := range cur {
		cs[l] = true
		if !ps[l] {
			added = append(added, l)
		}
	}
	for _, l := range prev {
		if !cs[l] {
			removed = append(removed, l)
		}
	}
	sortLinks(added)
	sortLinks(removed)
	return
}

func sortLinks(ls [][2]int) {
	sort.Slice(ls, func(a, b int) bool {
		if ls[a][0] != ls[b][0] {
			return ls[a][0] < ls[b][0]
		}
		return ls[a][1] < ls[b][1]
	})
}

// FailureSequence is one reconstructed injected-failure timeline: the
// failure events, the repair that answered them, and the recovery (or
// degradation) outcome.
type FailureSequence struct {
	Failures []Event // isl_fail / sat_fail / failure_report
	Repair   *Event  // mpc repair event, if any
	Outcome  *Event  // recovered / degraded, if any
}

// FailureSequences groups the recording's failure-related events into
// ordered timelines: a run of failure events, then the next repair, then
// its outcome.
func (rec *Recording) FailureSequences() []FailureSequence {
	var out []FailureSequence
	var cur *FailureSequence
	for i := range rec.Events {
		ev := &rec.Events[i]
		switch ev.Type {
		case "isl_fail", "sat_fail", "failure_report":
			if cur == nil || cur.Repair != nil || cur.Outcome != nil {
				out = append(out, FailureSequence{})
				cur = &out[len(out)-1]
			}
			cur.Failures = append(cur.Failures, *ev)
		case "repair":
			if cur != nil && cur.Repair == nil {
				cur.Repair = ev
			}
		case "recovered", "degraded":
			if cur != nil && cur.Outcome == nil {
				cur.Outcome = ev
			}
		}
	}
	return out
}

// InspectOptions bounds report verbosity.
type InspectOptions struct {
	// MaxLinks caps how many individual links each diff section lists
	// (0 = 8); counts are always exact.
	MaxLinks int
	// Context is how many events to print before each SLO breach (0 = 6).
	Context int
	// Events additionally dumps the full event log.
	Events bool
}

// WriteReport renders the postmortem report: recording header, per-slot
// topology diffs, failure sequences, SLO breaches with preceding
// context, and the final SLO status.
func (rec *Recording) WriteReport(w io.Writer, opt InspectOptions) error {
	if opt.MaxLinks <= 0 {
		opt.MaxLinks = 8
	}
	if opt.Context <= 0 {
		opt.Context = 6
	}
	bw := &reportWriter{w: w}

	bw.section("recording")
	created := time.UnixMilli(rec.Meta.CreatedUnixMS).UTC().Format(time.RFC3339)
	bw.printf("version %d, created %s, binary %q\n", rec.Meta.Version, created, rec.Meta.Binary)
	bw.printf("%d slot snapshots, %d events", len(rec.Slots), len(rec.Events))
	if rec.Meta.EventsDropped > 0 {
		bw.printf(" (%d older events overwritten)", rec.Meta.EventsDropped)
	}
	if rec.Meta.SlotsRecorded > len(rec.Slots) {
		bw.printf(" (%d older slots overwritten)", rec.Meta.SlotsRecorded-len(rec.Slots))
	}
	bw.printf("\n")
	if n := len(rec.Events); n > 0 {
		bw.printf("event span: t=%.3fs .. t=%.3fs\n",
			float64(rec.Events[0].TimeUS)/1e6, float64(rec.Events[n-1].TimeUS)/1e6)
	}
	bw.eventHistogram(rec.Events)

	bw.section("per-slot topology")
	for i := range rec.Slots {
		cur := &rec.Slots[i]
		kind := cur.Kind
		if kind == "" {
			kind = "compile"
		}
		bw.printf("slot %d (t=%.0fs, %s): %d inter, %d ring, %d cells covered, deficit %d",
			cur.Slot, cur.Time, kind, len(cur.InterLinks), len(cur.RingLinks),
			coveredCells(cur), cur.DeficitTotal())
		if cur.Enforcement > 0 {
			bw.printf(", enforcement %.2f", cur.Enforcement)
		}
		bw.printf("\n")
		if i == 0 {
			continue
		}
		d := DiffSlots(&rec.Slots[i-1], cur)
		if d.Churn() == 0 && len(d.CellsLost) == 0 && len(d.CellsGained) == 0 &&
			len(d.CellsShrunk) == 0 && d.DeficitDelta == 0 {
			bw.printf("  no change from slot %d\n", rec.Slots[i-1].Slot)
			continue
		}
		bw.linkDiff("  inter", d.Inter, opt.MaxLinks)
		bw.linkDiff("  ring ", d.Ring, opt.MaxLinks)
		if len(d.CellsLost) > 0 {
			bw.printf("  cells lost ALL coverage: %v\n", d.CellsLost)
		}
		if len(d.CellsGained) > 0 {
			bw.printf("  cells gained coverage: %v\n", d.CellsGained)
		}
		if len(d.CellsShrunk) > 0 {
			bw.printf("  cells with fewer satellites: %s\n", shrunkString(d.CellsShrunk))
		}
		if d.DeficitDelta != 0 {
			bw.printf("  gateway deficit %+d (now %d)\n", d.DeficitDelta, d.Cur.DeficitTotal())
		}
	}
	if len(rec.Slots) == 0 {
		bw.printf("(no slot snapshots recorded)\n")
	}

	seqs := rec.FailureSequences()
	bw.section("failure sequences")
	if len(seqs) == 0 {
		bw.printf("(no failures recorded)\n")
	}
	for i, s := range seqs {
		bw.printf("sequence %d:\n", i+1)
		for _, f := range s.Failures {
			bw.event("  ", &f)
		}
		if s.Repair != nil {
			bw.event("  ", s.Repair)
		} else {
			bw.printf("  (no repair recorded)\n")
		}
		if s.Outcome != nil {
			bw.event("  ", s.Outcome)
		}
	}

	bw.section("SLO breaches")
	breaches := 0
	for i := range rec.Events {
		ev := &rec.Events[i]
		if ev.Type != "slo_breach" {
			continue
		}
		breaches++
		bw.printf("breach %d: rule %s (%s) value %s at t=%.3fs\n",
			breaches, ev.Attr("rule"), ev.Attr("expr"), ev.Attr("value"),
			float64(ev.TimeUS)/1e6)
		lo := i - opt.Context
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			bw.event("  ↳ preceded by ", &rec.Events[j])
		}
	}
	if breaches == 0 {
		bw.printf("(none)\n")
	}

	if len(rec.SLO) > 0 {
		bw.section("final SLO status")
		for _, st := range rec.SLO {
			state := "ok"
			if st.Breached {
				state = "BREACHED"
			}
			bw.printf("%-24s %-10s value=%s (breaches: %d)\n",
				st.Rule.Expr(), state, formatValue(st.Value), st.Breaches)
		}
	}

	if opt.Events {
		bw.section("event log")
		for i := range rec.Events {
			bw.event("", &rec.Events[i])
		}
	}
	return bw.err
}

func coveredCells(s *SlotState) int {
	n := 0
	for _, sats := range s.CellSats {
		if len(sats) > 0 {
			n++
		}
	}
	return n
}

func shrunkString(m map[int]int) string {
	cells := make([]int, 0, len(m))
	for u := range m {
		cells = append(cells, u)
	}
	sort.Ints(cells)
	parts := make([]string, len(cells))
	for i, u := range cells {
		parts[i] = fmt.Sprintf("%d(%d)", u, m[u])
	}
	return strings.Join(parts, " ")
}

func formatValue(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%g", v)
}

// reportWriter accumulates the first write error so report code stays
// linear.
type reportWriter struct {
	w   io.Writer
	err error
}

func (b *reportWriter) printf(format string, args ...any) {
	if b.err == nil {
		_, b.err = fmt.Fprintf(b.w, format, args...)
	}
}

func (b *reportWriter) section(title string) {
	b.printf("== %s ==\n", title)
}

// eventHistogram prints a component/type count summary of the log.
func (b *reportWriter) eventHistogram(events []Event) {
	if len(events) == 0 {
		return
	}
	counts := map[string]int{}
	for i := range events {
		counts[events[i].Component+"/"+events[i].Type]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.printf("events by type:")
	for _, k := range keys {
		b.printf(" %s×%d", k, counts[k])
	}
	b.printf("\n")
}

func (b *reportWriter) event(prefix string, ev *Event) {
	b.printf("%st=%8.3fs  %s/%s", prefix, float64(ev.TimeUS)/1e6, ev.Component, ev.Type)
	for i := 0; i+1 < len(ev.Attrs); i += 2 {
		b.printf(" %s=%s", ev.Attrs[i], ev.Attrs[i+1])
	}
	b.printf("\n")
}

func (b *reportWriter) linkDiff(label string, d SlotDelta, maxLinks int) {
	if d.Size() == 0 {
		return
	}
	b.printf("%s +%d -%d", label, len(d.Added), len(d.Removed))
	if len(d.Added) > 0 {
		b.printf("  added %s", linksString(d.Added, maxLinks))
	}
	if len(d.Removed) > 0 {
		b.printf("  removed %s", linksString(d.Removed, maxLinks))
	}
	b.printf("\n")
}

func linksString(ls [][2]int, maxLinks int) string {
	var b strings.Builder
	for i, l := range ls {
		if i == maxLinks {
			fmt.Fprintf(&b, " …+%d", len(ls)-maxLinks)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", l[0], l[1])
	}
	return b.String()
}
