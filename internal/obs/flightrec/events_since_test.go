package flightrec

// Coverage for the /events?since=<seq> incremental cursor and the
// EventsSince primitive behind it.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/obs"
)

func TestEventsSince(t *testing.T) {
	var l Log
	l.Enable(8)
	for i := 1; i <= 5; i++ {
		l.Emit(CompChaos, "e"+strconv.Itoa(i))
	}
	cases := []struct {
		since     uint64
		wantFirst uint64
		wantLen   int
	}{
		{0, 1, 5},
		{2, 3, 3},
		{4, 5, 1},
		{5, 0, 0},
		{99, 0, 0},
	}
	for _, c := range cases {
		got := l.EventsSince(c.since)
		if len(got) != c.wantLen {
			t.Errorf("EventsSince(%d) = %d events, want %d", c.since, len(got), c.wantLen)
			continue
		}
		if c.wantLen > 0 && got[0].Seq != c.wantFirst {
			t.Errorf("EventsSince(%d)[0].Seq = %d, want %d", c.since, got[0].Seq, c.wantFirst)
		}
	}
}

func TestEventsSinceAfterWrap(t *testing.T) {
	var l Log
	l.Enable(4)
	for i := 1; i <= 10; i++ { // ring keeps seqs 7..10
		l.Emit(CompChaos, "e"+strconv.Itoa(i))
	}
	got := l.EventsSince(5)
	if len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("EventsSince(5) after wrap = %d events (first seq %d), want 4 from seq 7",
			len(got), got[0].Seq)
	}
	if got := l.EventsSince(8); len(got) != 2 || got[0].Seq != 9 {
		t.Fatalf("EventsSince(8) after wrap = %+v, want seqs 9,10", got)
	}
}

func readEventSeqs(t *testing.T, url string) []uint64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var seqs []uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line: %v", err)
		}
		seqs = append(seqs, ev.Seq)
	}
	return seqs
}

func TestEventsEndpointSinceCursor(t *testing.T) {
	if err := Enable(Options{EventCapacity: 64}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := Disable(); err != nil {
			t.Fatal(err)
		}
	}()
	for i := 1; i <= 6; i++ {
		Emit(CompFleet, "tick", "i", strconv.Itoa(i))
	}
	srv := httptest.NewServer(obs.NewHandler(obs.NewRegistry(false)))
	defer srv.Close()

	all := readEventSeqs(t, srv.URL+"/events")
	if len(all) != 6 {
		t.Fatalf("/events returned %d events, want 6", len(all))
	}
	// Incremental poll from the middle.
	tail := readEventSeqs(t, srv.URL+"/events?since="+strconv.FormatUint(all[3], 10))
	if len(tail) != 2 || tail[0] != all[4] {
		t.Fatalf("/events?since=%d = %v, want %v", all[3], tail, all[4:])
	}
	// Cursor at the newest event: empty body, still 200.
	if got := readEventSeqs(t, srv.URL+"/events?since="+strconv.FormatUint(all[5], 10)); len(got) != 0 {
		t.Fatalf("/events at head returned %v, want none", got)
	}
	// Malformed cursor: 400.
	resp, err := http.Get(srv.URL + "/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d, want 400", resp.StatusCode)
	}
}
