package flightrec

// Concurrency coverage for the flight recorder's telemetry endpoints:
// /slo evaluates the SLO engine and /events streams the ring while the
// recorder is being written from multiple goroutines — part of the
// `go test -race ./internal/obs/...` tier.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestSLOAndEventsEndpointsUnderConcurrentWrites(t *testing.T) {
	reg := obs.NewRegistry(true)
	avail := reg.Gauge("tinyleo_mpc_enforcement_ratio")
	avail.Set(1)
	if err := Enable(Options{
		EventCapacity: 256,
		SlotCapacity:  32,
		Rules: []Rule{
			{Name: "availability", Kind: SLOAvailability, Op: ">=", Threshold: 0.95},
			{Name: "failure_events", Kind: SLOFailureEvents, Op: "<=", Threshold: 1e9},
		},
		Registries: []RegistrySource{reg},
	}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := Disable(); err != nil {
			t.Fatal(err)
		}
	}()
	srv := httptest.NewServer(obs.NewHandler(reg))
	defer srv.Close()

	const writers, readers, iters = 4, 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Emit(CompDataplane, "drop", "sat", strconv.Itoa(w), "reason", "race")
				Emit(CompMPC, "isl_fail", "a", strconv.Itoa(i), "b", strconv.Itoa(i+1))
				avail.Set(float64(i % 2)) // toggle across the threshold
				RecordSlot(SlotState{Time: float64(i), Kind: "compile",
					InterLinks: [][2]int{{w, i}}})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/5; i++ {
				resp, err := http.Get(srv.URL + "/slo")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/slo status = %d", resp.StatusCode)
					return
				}
				var doc struct {
					Breached int          `json:"breached"`
					Rules    []RuleStatus `json:"rules"`
				}
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Errorf("/slo body: %v", err)
					return
				}
				if len(doc.Rules) != 2 {
					t.Errorf("/slo rules = %d, want 2", len(doc.Rules))
					return
				}
				resp, err = http.Get(srv.URL + "/events")
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

func TestSLOEndpointDisabledRecorder(t *testing.T) {
	registerHTTP() // normally done by Enable
	engineMu.Lock()
	saved := defaultEngine
	defaultEngine = nil
	engineMu.Unlock()
	defer func() {
		engineMu.Lock()
		defaultEngine = saved
		engineMu.Unlock()
	}()
	srv := httptest.NewServer(obs.NewHandler(obs.NewRegistry(false)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/slo with no engine: status %d, want 503", resp.StatusCode)
	}
}
