// Package flightrec is TinyLEO's constellation flight recorder: a
// structured, typed event log, a per-slot topology state snapshotter, and
// a declarative SLO engine, all ring-buffered in memory and serializable
// as one JSONL "recording" that the postmortem inspector
// (tinyleo-ctl inspect) renders into per-slot diffs and failure
// timelines.
//
// The recorder complements the numeric registry in internal/obs: where
// counters answer "how many deficits", the event log answers *which*
// slot, *which* cell, and *what happened just before* — the per-snapshot
// reasoning the paper's own evaluation uses (§4.2 topology compilation,
// §4.3 failover, §6 repair timelines).
//
// Hot-path contract: everything is disabled by default. Instrumented
// code guards emission with
//
//	if flightrec.Enabled() {
//	    flightrec.Emit("dataplane", "drop", "sat", id, "reason", reason)
//	}
//
// so the disabled path costs a single atomic load and zero allocations
// (see bench_test.go); attribute formatting only happens once the
// recorder is on. Snapshotting allocates O(snapshot) per control slot,
// never per packet.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Component names used by the built-in instrumentation.
const (
	CompMPC        = "mpc"
	CompSouthbound = "southbound"
	CompDataplane  = "dataplane"
	CompCore       = "core"
	CompSLO        = "slo"
	CompChaos      = "chaos"
	CompFleet      = "fleet"
)

// Event is one typed entry in the flight-recorder log.
type Event struct {
	// Seq is a monotonically increasing sequence number (survives ring
	// wrap-around, so gaps reveal overwritten history).
	Seq uint64
	// TimeUS is microseconds since the recorder was enabled.
	TimeUS int64
	// Component is the emitting subsystem (mpc, southbound, dataplane,
	// core, slo).
	Component string
	// Type is the event type within the component (slot_compiled,
	// isl_fail, repair, agent_connect, slo_breach, ...).
	Type string
	// Attrs are key/value pairs (flat, in emission order).
	Attrs []string
}

// Attr returns the value of the named attribute, or "".
func (e *Event) Attr(key string) string {
	for i := 0; i+1 < len(e.Attrs); i += 2 {
		if e.Attrs[i] == key {
			return e.Attrs[i+1]
		}
	}
	return ""
}

// eventJSON is the wire form of Event (attrs as an object).
type eventJSON struct {
	Seq       uint64            `json:"seq"`
	TimeUS    int64             `json:"t_us"`
	Component string            `json:"component"`
	Type      string            `json:"type"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON renders attrs as a JSON object.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{Seq: e.Seq, TimeUS: e.TimeUS, Component: e.Component, Type: e.Type}
	if len(e.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(e.Attrs)/2)
		for i := 0; i+1 < len(e.Attrs); i += 2 {
			out.Attrs[e.Attrs[i]] = e.Attrs[i+1]
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON; attrs come back sorted by
// key (object order is not preserved by JSON).
func (e *Event) UnmarshalJSON(b []byte) error {
	var in eventJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*e = Event{Seq: in.Seq, TimeUS: in.TimeUS, Component: in.Component, Type: in.Type}
	if len(in.Attrs) > 0 {
		keys := make([]string, 0, len(in.Attrs))
		for k := range in.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Attrs = make([]string, 0, 2*len(keys))
		for _, k := range keys {
			e.Attrs = append(e.Attrs, k, in.Attrs[k])
		}
	}
	return nil
}

// DefaultEventCapacity is the event ring size used by Enable when
// Options.EventCapacity is zero.
const DefaultEventCapacity = 8192

// Log is a fixed-capacity ring of typed events: the newest events win, so
// a long emulation keeps the recent history leading up to a failure
// without unbounded memory. A disabled log drops emissions at the cost of
// one atomic load.
type Log struct {
	on atomic.Bool

	mu sync.Mutex
	//tinyleo:guardedby mu
	buf []Event
	//tinyleo:guardedby mu
	next int
	//tinyleo:guardedby mu
	wrapped bool
	//tinyleo:guardedby mu
	dropped uint64
	//tinyleo:guardedby mu
	seq uint64
	//tinyleo:guardedby mu
	epoch time.Time
}

// Enable (re)enables the log with the given ring capacity
// (0 = DefaultEventCapacity). Re-enabling resets the ring and epoch.
func (l *Log) Enable(capacity int) {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	l.mu.Lock()
	l.buf = make([]Event, capacity)
	l.next, l.wrapped, l.dropped, l.seq = 0, false, 0, 0
	l.epoch = time.Now()
	l.mu.Unlock()
	l.on.Store(true)
}

// Enabled reports whether emissions are recorded.
func (l *Log) Enabled() bool { return l.on.Load() }

// Disable stops recording; the ring stays readable.
func (l *Log) Disable() { l.on.Store(false) }

// Emit appends one event; attrs are key/value pairs. No-op when disabled.
func (l *Log) Emit(component, typ string, attrs ...string) {
	if !l.on.Load() {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 {
		return
	}
	if l.wrapped {
		l.dropped++
	}
	l.seq++
	l.buf[l.next] = Event{
		Seq:       l.seq,
		TimeUS:    now.Sub(l.epoch).Microseconds(),
		Component: component,
		Type:      typ,
		Attrs:     attrs,
	}
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.wrapped = true
	}
}

// Events returns the ring contents oldest-first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]Event(nil), l.buf[:l.next]...)
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// EventsSince returns the ring contents with Seq > since, oldest-first.
// Sequence numbers are monotonic, so a poller passing its last-seen Seq
// tails the log incrementally; events already overwritten by ring
// wrap-around are gone regardless of the cursor.
func (l *Log) EventsSince(since uint64) []Event {
	events := l.Events()
	// Seqs ascend oldest→newest; binary search the first one past the
	// cursor.
	lo, hi := 0, len(events)
	for lo < hi {
		mid := (lo + hi) / 2
		if events[mid].Seq <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return events[lo:]
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// WriteJSONL writes one JSON object per event, oldest-first (the /events
// endpoint body).
func (l *Log) WriteJSONL(w io.Writer) error {
	return l.WriteJSONLSince(w, 0)
}

// WriteJSONLSince writes the events with Seq > since as JSONL — the
// /events?since=<seq> incremental poll body.
func (l *Log) WriteJSONLSince(w io.Writer, since uint64) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.EventsSince(since) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a short human-readable ring description, used by the
// CLI when flushing -record-out.
func (l *Log) Summary() string {
	l.mu.Lock()
	n := l.next
	if l.wrapped {
		n = len(l.buf)
	}
	dropped := l.dropped
	l.mu.Unlock()
	return fmt.Sprintf("%d events (%d overwritten)", n, dropped)
}

// ---- Process-wide default recorder ----

var (
	defaultLog         Log
	defaultSnapshotter Snapshotter

	engineMu      sync.RWMutex
	defaultEngine *Engine
)

// DefaultLog returns the process-wide event log (disabled until Enable).
func DefaultLog() *Log { return &defaultLog }

// DefaultSnapshotter returns the process-wide slot snapshotter.
func DefaultSnapshotter() *Snapshotter { return &defaultSnapshotter }

// Enabled reports whether the process-wide recorder is on. Hot paths
// guard attribute formatting behind it; the disabled cost is one atomic
// load.
func Enabled() bool { return defaultLog.on.Load() }

// Emit appends one event to the process-wide log (no-op while disabled).
func Emit(component, typ string, attrs ...string) {
	defaultLog.Emit(component, typ, attrs...)
}

// Options parameterizes Enable.
type Options struct {
	// EventCapacity sizes the event ring (0 = DefaultEventCapacity).
	EventCapacity int
	// SlotCapacity sizes the slot-snapshot ring (0 = DefaultSlotCapacity).
	SlotCapacity int
	// SpillPath, when non-empty, appends every recorded slot snapshot to
	// this file as JSONL (gzip-compressed when the name ends in .gz), so
	// runs longer than the ring keep full history on disk.
	SpillPath string
	// Rules are the SLO rules to evaluate each recorded slot (and on
	// /slo requests). See ParseRules for the spec syntax.
	Rules []Rule
	// Registries are the metric registries the SLO engine reads
	// (default: obs.Default() alone).
	Registries []RegistrySource
}

// Enable turns on the process-wide flight recorder: event log, slot
// snapshotter, and SLO engine, and registers the /slo and /events
// telemetry endpoints. It is the switch behind the -record-out CLI
// flags.
func Enable(o Options) error {
	defaultLog.Enable(o.EventCapacity)
	if err := defaultSnapshotter.enable(o.SlotCapacity, o.SpillPath); err != nil {
		return err
	}
	eng := NewEngine(&defaultLog, o.Rules...)
	eng.SetRegistries(o.Registries...)
	engineMu.Lock()
	defaultEngine = eng
	engineMu.Unlock()
	registerHTTP()
	return nil
}

// Disable stops the process-wide recorder (rings stay readable) and
// closes any snapshot spill file.
func Disable() error {
	defaultLog.Disable()
	return defaultSnapshotter.disable()
}

// DefaultSLOEngine returns the process-wide SLO engine installed by the
// last Enable, or nil.
func DefaultSLOEngine() *Engine {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return defaultEngine
}

// AddSLORegistries appends metric registries for the default SLO engine
// to read (e.g. a southbound controller's private registry).
func AddSLORegistries(regs ...RegistrySource) {
	engineMu.RLock()
	eng := defaultEngine
	engineMu.RUnlock()
	if eng != nil {
		eng.AddRegistries(regs...)
	}
}

// RecordSlot appends one slot state to the process-wide snapshotter and
// evaluates the SLO rules against the post-slot metric state (no-op
// while disabled).
func RecordSlot(st SlotState) {
	if !Enabled() {
		return
	}
	defaultSnapshotter.RecordSlot(st)
	engineMu.RLock()
	eng := defaultEngine
	engineMu.RUnlock()
	if eng != nil {
		eng.Eval()
	}
}
