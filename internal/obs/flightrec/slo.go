package flightrec

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// RegistrySource is a metric registry the SLO engine reads.
type RegistrySource = *obs.Registry

// Rule kinds: the built-in service-level indicators (the paper's headline
// SLOs) plus a generic raw-metric selector.
const (
	// SLOAvailability is the intent enforcement ratio
	// (tinyleo_mpc_enforcement_ratio), the paper's availability SLO.
	SLOAvailability = "availability"
	// SLODeficitSlots is the current gateway-deficit slot count.
	SLODeficitSlots = "deficit_slots"
	// SLODeficitRatio is deficit / (deficit + compiled inter-cell ISLs):
	// the paper's deficit-slot ratio.
	SLODeficitRatio = "deficit_ratio"
	// SLORepairP99 / SLOCompileP99 / SLOAckRTTP99 are p99 latencies (s)
	// from the matching histograms.
	SLORepairP99  = "repair_p99"
	SLOCompileP99 = "compile_p99"
	SLOAckRTTP99  = "ack_rtt_p99"
	// SLODropRatio is dropped / (forwarded + delivered) packets.
	SLODropRatio = "drop_ratio"
	// SLOFailureEvents counts isl_fail/sat_fail/failure_report events in
	// the rolling window (default 60 s).
	SLOFailureEvents = "failure_events"
	// SLOMetric compares a raw series by name (counters summed across
	// label sets, gauges read directly).
	SLOMetric = "metric"
)

// Rule is one declarative SLO threshold.
type Rule struct {
	// Name identifies the rule ("availability", or a custom name).
	Name string `json:"name"`
	// Kind selects the indicator (one of the SLO* constants).
	Kind string `json:"kind"`
	// Metric names the raw series for Kind == SLOMetric.
	Metric string `json:"metric,omitempty"`
	// Op is "<=" or ">=".
	Op string `json:"op"`
	// Threshold is the SLO boundary.
	Threshold float64 `json:"threshold"`
	// WindowSeconds bounds event-window indicators (0 = 60 s).
	WindowSeconds float64 `json:"window_s,omitempty"`
}

// Expr renders the rule as its spec string.
func (r Rule) Expr() string {
	name := r.Name
	if r.Kind == SLOMetric && r.Metric != "" {
		name = r.Metric
	}
	return fmt.Sprintf("%s%s%g", name, r.Op, r.Threshold)
}

// RuleStatus is one rule's latest evaluation.
type RuleStatus struct {
	Rule
	// Value is the indicator's current value (NaN when not yet
	// observable, e.g. a quantile of an empty histogram; never a breach).
	Value float64 `json:"value"`
	// Breached reports whether the current value violates the threshold.
	Breached bool `json:"breached"`
	// Breaches counts healthy→breached transitions since engine start.
	Breaches int64 `json:"breaches_total"`
	// EvalUS is the recorder-relative evaluation time (µs).
	EvalUS int64 `json:"eval_us"`
}

// MarshalJSON flattens the embedded rule and renders NaN values as null
// (JSON has no NaN).
func (s RuleStatus) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name     string   `json:"name"`
		Expr     string   `json:"expr"`
		Kind     string   `json:"kind"`
		Metric   string   `json:"metric,omitempty"`
		Op       string   `json:"op"`
		Thresh   float64  `json:"threshold"`
		Value    *float64 `json:"value"`
		Breached bool     `json:"breached"`
		Breaches int64    `json:"breaches_total"`
		EvalUS   int64    `json:"eval_us"`
	}
	a := alias{
		Name: s.Name, Expr: s.Rule.Expr(), Kind: s.Kind, Metric: s.Metric,
		Op: s.Op, Thresh: s.Threshold,
		Breached: s.Breached, Breaches: s.Breaches, EvalUS: s.EvalUS,
	}
	if !math.IsNaN(s.Value) {
		v := s.Value
		a.Value = &v
	}
	return json.Marshal(a)
}

// UnmarshalJSON is the inverse of MarshalJSON (nil value → NaN).
func (s *RuleStatus) UnmarshalJSON(b []byte) error {
	var a struct {
		Name     string   `json:"name"`
		Kind     string   `json:"kind"`
		Metric   string   `json:"metric"`
		Op       string   `json:"op"`
		Thresh   float64  `json:"threshold"`
		Value    *float64 `json:"value"`
		Breached bool     `json:"breached"`
		Breaches int64    `json:"breaches_total"`
		EvalUS   int64    `json:"eval_us"`
	}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*s = RuleStatus{
		Rule:     Rule{Name: a.Name, Kind: a.Kind, Metric: a.Metric, Op: a.Op, Threshold: a.Thresh},
		Value:    math.NaN(),
		Breached: a.Breached, Breaches: a.Breaches, EvalUS: a.EvalUS,
	}
	if a.Value != nil {
		s.Value = *a.Value
	}
	return nil
}

// DefaultRules are the paper's headline SLOs with lenient defaults:
// availability ≥ 95%, deficit-slot ratio ≤ 10%, p99 repair ≤ 200 ms.
func DefaultRules() []Rule {
	return []Rule{
		{Name: SLOAvailability, Kind: SLOAvailability, Op: ">=", Threshold: 0.95},
		{Name: SLODeficitRatio, Kind: SLODeficitRatio, Op: "<=", Threshold: 0.10},
		{Name: SLORepairP99, Kind: SLORepairP99, Op: "<=", Threshold: 0.2},
	}
}

// ParseRules parses a comma-separated SLO spec, e.g.
//
//	availability>=0.99,deficit_ratio<=0.05,repair_p99<=0.1,tinyleo_mpc_compile_total>=3
//
// Known indicator names map to the built-in kinds; any other name is
// treated as a raw metric series (SLOMetric).
func ParseRules(spec string) ([]Rule, error) {
	var out []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op := ">="
		i := strings.Index(part, op)
		if i < 0 {
			op = "<="
			i = strings.Index(part, op)
		}
		if i < 0 {
			return nil, fmt.Errorf("flightrec: SLO rule %q: want name>=x or name<=x", part)
		}
		name := strings.TrimSpace(part[:i])
		thr, err := strconv.ParseFloat(strings.TrimSpace(part[i+len(op):]), 64)
		if err != nil {
			return nil, fmt.Errorf("flightrec: SLO rule %q: bad threshold: %v", part, err)
		}
		r := Rule{Name: name, Op: op, Threshold: thr}
		switch name {
		case SLOAvailability, SLODeficitSlots, SLODeficitRatio,
			SLORepairP99, SLOCompileP99, SLOAckRTTP99, SLODropRatio, SLOFailureEvents:
			r.Kind = name
		default:
			r.Kind = SLOMetric
			r.Metric = name
		}
		out = append(out, r)
	}
	return out, nil
}

// Engine evaluates SLO rules against rolling registry metrics and the
// event log, emits slo_breach/slo_recovered events on transitions, and
// serves /slo. All methods are safe for concurrent use.
type Engine struct {
	log *Log

	mu sync.Mutex
	//tinyleo:guardedby mu
	regs []RegistrySource
	//tinyleo:guardedby mu
	status []RuleStatus
	//tinyleo:guardedby mu
	start time.Time
}

// NewEngine builds an engine over the given event log and rules (empty
// rules = DefaultRules). Registries default to obs.Default(); add more
// with AddRegistries.
func NewEngine(log *Log, rules ...Rule) *Engine {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	e := &Engine{log: log, regs: []RegistrySource{obs.Default()}, start: time.Now()}
	e.status = make([]RuleStatus, len(rules))
	for i, r := range rules {
		e.status[i] = RuleStatus{Rule: r, Value: math.NaN()}
	}
	return e
}

// SetRegistries replaces the metric sources (empty = obs.Default()).
func (e *Engine) SetRegistries(regs ...RegistrySource) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(regs) == 0 {
		regs = []RegistrySource{obs.Default()}
	}
	e.regs = append([]RegistrySource(nil), regs...)
}

// AddRegistries appends metric sources.
func (e *Engine) AddRegistries(regs ...RegistrySource) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.regs = append(e.regs, regs...)
}

// Eval evaluates every rule against the current metric and event state,
// records transitions, and returns the statuses.
func (e *Engine) Eval() []RuleStatus {
	e.mu.Lock()
	regs := append([]RegistrySource(nil), e.regs...)
	start := e.start
	e.mu.Unlock()
	samples := obs.Snapshot(regs...)
	now := time.Since(start).Microseconds()

	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.status {
		st := &e.status[i]
		v := e.indicator(st.Rule, samples)
		wasBreached := st.Breached
		breached := false
		if !math.IsNaN(v) {
			switch st.Op {
			case ">=":
				breached = v < st.Threshold
			default: // "<="
				breached = v > st.Threshold
			}
		}
		st.Value, st.Breached, st.EvalUS = v, breached, now
		if breached && !wasBreached {
			st.Breaches++
			obs.Default().Counter("tinyleo_slo_breaches_total", "rule", st.Name).Inc()
			if e.log != nil {
				e.log.Emit(CompSLO, "slo_breach",
					"rule", st.Name,
					"expr", st.Rule.Expr(),
					"value", strconv.FormatFloat(v, 'g', 6, 64))
			}
		} else if !breached && wasBreached {
			if e.log != nil {
				e.log.Emit(CompSLO, "slo_recovered",
					"rule", st.Name,
					"value", strconv.FormatFloat(v, 'g', 6, 64))
			}
		}
	}
	return append([]RuleStatus(nil), e.status...)
}

// Status returns the latest evaluation without re-evaluating.
func (e *Engine) Status() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]RuleStatus(nil), e.status...)
}

// EvalRules evaluates rules against a static sample snapshot (plus an
// optional event log for the event-window kinds), without engine state:
// no breach transitions are tracked, no events are emitted, and EvalUS
// stays zero. It is the scoring path for artifacts — a fleet snapshot or
// a collected metrics dump can be judged long after the run ended — and
// is what the testground report scorer uses.
func EvalRules(rules []Rule, samples []obs.Sample, events []Event) []RuleStatus {
	out := make([]RuleStatus, len(rules))
	for i, r := range rules {
		v := evalIndicator(r, samples, events)
		breached := false
		if !math.IsNaN(v) {
			switch r.Op {
			case ">=":
				breached = v < r.Threshold
			default: // "<="
				breached = v > r.Threshold
			}
		}
		out[i] = RuleStatus{Rule: r, Value: v, Breached: breached}
	}
	return out
}

// indicator computes one rule's current value from the metric samples
// (and, for event-window kinds, the event log). NaN means "not yet
// observable".
func (e *Engine) indicator(r Rule, samples []obs.Sample) float64 {
	if r.Kind == SLOFailureEvents && e.log == nil {
		return math.NaN()
	}
	var events []Event
	if e.log != nil {
		events = e.log.Events()
	}
	return evalIndicator(r, samples, events)
}

// evalIndicator is the engine-independent indicator computation shared by
// Engine.Eval and EvalRules.
func evalIndicator(r Rule, samples []obs.Sample, events []Event) float64 {
	switch r.Kind {
	case SLOAvailability:
		return gaugeValue(samples, "tinyleo_mpc_enforcement_ratio")
	case SLODeficitSlots:
		return gaugeValue(samples, "tinyleo_mpc_gateway_deficit_slots")
	case SLODeficitRatio:
		def := gaugeValue(samples, "tinyleo_mpc_gateway_deficit_slots")
		inter := gaugeValue(samples, "tinyleo_mpc_inter_links")
		if math.IsNaN(def) || math.IsNaN(inter) || def+inter == 0 {
			return math.NaN()
		}
		return def / (def + inter)
	case SLORepairP99:
		return histQuantile(samples, "tinyleo_mpc_repair_stage_seconds",
			map[string]string{"stage": "total"}, 0.99)
	case SLOCompileP99:
		return histQuantile(samples, "tinyleo_mpc_compile_seconds", nil, 0.99)
	case SLOAckRTTP99:
		return histQuantile(samples, "tinyleo_southbound_ack_rtt_seconds", nil, 0.99)
	case SLODropRatio:
		dropped := counterSum(samples, "tinyleo_dataplane_dropped_total")
		ok := counterSum(samples, "tinyleo_dataplane_forwarded_total") +
			counterSum(samples, "tinyleo_dataplane_delivered_total")
		if dropped+ok == 0 {
			return math.NaN()
		}
		return dropped / (dropped + ok)
	case SLOFailureEvents:
		window := r.WindowSeconds
		if window <= 0 {
			window = 60
		}
		if len(events) == 0 {
			return 0
		}
		cutoff := events[len(events)-1].TimeUS - int64(window*1e6)
		n := 0
		for _, ev := range events {
			if ev.TimeUS < cutoff {
				continue
			}
			switch ev.Type {
			case "isl_fail", "sat_fail", "failure_report":
				n++
			}
		}
		return float64(n)
	default: // SLOMetric
		for _, s := range samples {
			if s.Name != r.Metric {
				continue
			}
			switch s.Kind {
			case obs.KindGauge:
				return s.Value
			case obs.KindCounter:
				return counterSum(samples, r.Metric)
			case obs.KindHistogram:
				return histQuantile(samples, r.Metric, nil, 0.99)
			}
		}
		return math.NaN()
	}
}

func gaugeValue(samples []obs.Sample, name string) float64 {
	for _, s := range samples {
		if s.Name == name && s.Kind == obs.KindGauge {
			return s.Value
		}
	}
	return math.NaN()
}

func counterSum(samples []obs.Sample, name string) float64 {
	total, seen := 0.0, false
	for _, s := range samples {
		if s.Name == name && s.Kind == obs.KindCounter {
			total += s.Value
			seen = true
		}
	}
	if !seen {
		return math.NaN()
	}
	return total
}

// histQuantile estimates quantile q from a fixed-bucket histogram sample
// matched by name and label subset, interpolating linearly within the
// containing bucket (the +Inf bucket yields its lower bound).
func histQuantile(samples []obs.Sample, name string, labels map[string]string, q float64) float64 {
	for _, s := range samples {
		if s.Name != name || s.Kind != obs.KindHistogram || !labelsMatch(s.Labels, labels) {
			continue
		}
		if s.Count == 0 {
			return math.NaN()
		}
		rank := q * float64(s.Count)
		cum := int64(0)
		for i, c := range s.Buckets {
			cum += c
			if float64(cum) < rank {
				continue
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			if i >= len(s.Bounds) {
				return lo // +Inf bucket: no finite upper bound
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + frac*(hi-lo)
		}
		return math.NaN()
	}
	return math.NaN()
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// ServeHTTP evaluates the rules and writes the /slo JSON document:
//
//	{"evaluated_at_us":..., "rules":[{name, expr, value, threshold, ...}]}
func (e *Engine) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	statuses := e.Eval()
	breached := 0
	for _, s := range statuses {
		if s.Breached {
			breached++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Breached int          `json:"breached"`
		Rules    []RuleStatus `json:"rules"`
	}{breached, statuses})
}

var httpOnce sync.Once

// registerHTTP mounts /slo and /events on the obs telemetry surface. The
// handlers resolve the default engine/log at request time, so re-Enable
// swaps recordings without re-registration.
func registerHTTP() {
	httpOnce.Do(func() {
		obs.RegisterHandler("/slo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			eng := DefaultSLOEngine()
			if eng == nil {
				http.Error(w, "flight recorder disabled", http.StatusServiceUnavailable)
				return
			}
			eng.ServeHTTP(w, r)
		}))
		obs.RegisterHandler("/events", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// ?since=<seq> is an incremental cursor: only events with
			// Seq > since are returned, so pollers (tinyleo-ctl top) can
			// tail the ring without refetching it whole.
			since := uint64(0)
			if s := r.URL.Query().Get("since"); s != "" {
				v, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					http.Error(w, "bad since cursor: "+s, http.StatusBadRequest)
					return
				}
				since = v
			}
			w.Header().Set("Content-Type", "application/jsonl")
			_ = DefaultLog().WriteJSONLSince(w, since)
		}))
	})
}
