package flightrec

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// SlotState is one captured control-slot topology: what the MPC compiled
// (or repaired) and what the cells looked like at that instant. It is a
// plain-data mirror of mpc.Snapshot so the recorder stays free of
// control-plane imports.
type SlotState struct {
	// Slot is the recorder-assigned sequence number (set by RecordSlot).
	Slot int `json:"slot"`
	// Time is the orbital time of the slot in seconds.
	Time float64 `json:"t"`
	// Kind distinguishes regular compilations from failure repairs
	// ("compile" | "repair").
	Kind string `json:"kind,omitempty"`
	// InterLinks / RingLinks are the compiled inter-cell and intra-cell
	// ISLs as sorted satellite index pairs.
	InterLinks [][2]int `json:"inter_links,omitempty"`
	RingLinks  [][2]int `json:"ring_links,omitempty"`
	// CellSats maps intent cell → satellites covering it (the coverage
	// map; a cell present with an empty list has lost all coverage).
	CellSats map[int][]int `json:"cell_sats,omitempty"`
	// Gateways maps a directed intent edge "u->v" to the satellites of u
	// serving it.
	Gateways map[string][]int `json:"gateways,omitempty"`
	// Deficits maps "u->v" to unfilled gateway slots.
	Deficits map[string]int `json:"deficits,omitempty"`
	// Routes holds installed routing intents (cell routes), if any.
	Routes [][]int `json:"routes,omitempty"`
	// Enforcement is the intent enforcement ratio after this slot, when
	// known (NaN-free: omitted as 0 when unknown).
	Enforcement float64 `json:"enforcement,omitempty"`
}

// EdgeKey renders a directed intent edge as the "u->v" map key used by
// Gateways and Deficits.
func EdgeKey(u, v int) string { return fmt.Sprintf("%d->%d", u, v) }

// ParseEdgeKey inverts EdgeKey; ok is false on malformed keys.
func ParseEdgeKey(key string) (u, v int, ok bool) {
	a, b, found := strings.Cut(key, "->")
	if !found {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(a, "%d", &u); err != nil {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(b, "%d", &v); err != nil {
		return 0, 0, false
	}
	return u, v, true
}

// DeficitTotal sums the slot's unfilled gateway slots.
func (s *SlotState) DeficitTotal() int {
	total := 0
	for _, d := range s.Deficits {
		total += d
	}
	return total
}

// DefaultSlotCapacity is the snapshot ring size used by Enable when
// Options.SlotCapacity is zero.
const DefaultSlotCapacity = 256

// Snapshotter keeps a bounded ring of per-slot states with optional
// JSONL file spill (gzip'd when the path ends in .gz). RecordSlot
// allocates O(snapshot) per control slot; nothing here is on a
// per-packet path.
type Snapshotter struct {
	mu sync.Mutex
	//tinyleo:guardedby mu
	buf []SlotState
	//tinyleo:guardedby mu
	next int
	//tinyleo:guardedby mu
	wrapped bool
	//tinyleo:guardedby mu
	seq int
	//tinyleo:guardedby mu
	spill *os.File
	//tinyleo:guardedby mu
	spillGz *gzip.Writer
	//tinyleo:guardedby mu
	spillEnc *json.Encoder
	//tinyleo:guardedby mu
	spillErr error
}

func (s *Snapshotter) enable(capacity int, spillPath string) error {
	if capacity <= 0 {
		capacity = DefaultSlotCapacity
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.closeSpillLocked(); err != nil {
		return err
	}
	s.buf = make([]SlotState, capacity)
	s.next, s.wrapped, s.seq, s.spillErr = 0, false, 0, nil
	if spillPath != "" {
		f, err := os.Create(spillPath)
		if err != nil {
			return fmt.Errorf("flightrec: spill: %w", err)
		}
		s.spill = f
		if strings.HasSuffix(spillPath, ".gz") {
			s.spillGz = gzip.NewWriter(f)
			s.spillEnc = json.NewEncoder(s.spillGz)
		} else {
			s.spillEnc = json.NewEncoder(f)
		}
	}
	return nil
}

func (s *Snapshotter) disable() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeSpillLocked()
}

func (s *Snapshotter) closeSpillLocked() error {
	var err error
	if s.spillGz != nil {
		err = s.spillGz.Close()
		s.spillGz = nil
	}
	if s.spill != nil {
		if cerr := s.spill.Close(); err == nil {
			err = cerr
		}
		s.spill = nil
	}
	s.spillEnc = nil
	return err
}

// RecordSlot appends one slot state, assigning its Slot sequence number,
// and spills it to the configured file.
func (s *Snapshotter) RecordSlot(st SlotState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return
	}
	st.Slot = s.seq
	s.seq++
	s.buf[s.next] = st
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.wrapped = true
	}
	if s.spillEnc != nil && s.spillErr == nil {
		s.spillErr = s.spillEnc.Encode(st)
	}
}

// Slots returns the ring contents oldest-first.
func (s *Snapshotter) Slots() []SlotState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.wrapped {
		return append([]SlotState(nil), s.buf[:s.next]...)
	}
	out := make([]SlotState, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Recorded returns how many slots were ever recorded (including any
// overwritten by ring wrap-around).
func (s *Snapshotter) Recorded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// SpillErr reports the first error hit while spilling snapshots, if any.
func (s *Snapshotter) SpillErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spillErr
}
