package flightrec

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// RecordingVersion is the current recording format version.
const RecordingVersion = 1

// Meta is the recording header line.
type Meta struct {
	Version       int    `json:"version"`
	CreatedUnixMS int64  `json:"created_unix_ms"`
	Binary        string `json:"binary,omitempty"`
	// EventsDropped / SlotsRecorded describe ring wrap-around at save
	// time, so the inspector can flag truncated history.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	SlotsRecorded int    `json:"slots_recorded,omitempty"`
}

// Recording is one loaded flight recording.
type Recording struct {
	Meta   Meta
	Slots  []SlotState
	Events []Event
	SLO    []RuleStatus
}

// record is the JSONL line wrapper; exactly one payload field is set.
type record struct {
	Rec   string       `json:"rec"`
	Meta  *Meta        `json:"meta,omitempty"`
	Slot  *SlotState   `json:"slot,omitempty"`
	Event *Event       `json:"event,omitempty"`
	SLO   []RuleStatus `json:"slo,omitempty"`
}

// Write serializes the recording as JSONL: one meta line, then slots
// oldest-first, events oldest-first, and a final SLO status line.
func (rec *Recording) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	meta := rec.Meta
	if meta.Version == 0 {
		meta.Version = RecordingVersion
	}
	if err := enc.Encode(record{Rec: "meta", Meta: &meta}); err != nil {
		return err
	}
	for i := range rec.Slots {
		if err := enc.Encode(record{Rec: "slot", Slot: &rec.Slots[i]}); err != nil {
			return err
		}
	}
	for i := range rec.Events {
		if err := enc.Encode(record{Rec: "event", Event: &rec.Events[i]}); err != nil {
			return err
		}
	}
	if len(rec.SLO) > 0 {
		if err := enc.Encode(record{Rec: "slo", SLO: rec.SLO}); err != nil {
			return err
		}
	}
	return nil
}

// ReadRecording parses a JSONL recording stream (plain or gzip; sniffed
// by magic bytes, not file name).
func ReadRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("flightrec: gzip: %w", err)
		}
		defer gz.Close()
		br = bufio.NewReader(gz)
	}
	rec := &Recording{}
	dec := json.NewDecoder(br)
	for {
		var line record
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("flightrec: parse recording: %w", err)
		}
		switch line.Rec {
		case "meta":
			if line.Meta != nil {
				rec.Meta = *line.Meta
			}
		case "slot":
			if line.Slot != nil {
				rec.Slots = append(rec.Slots, *line.Slot)
			}
		case "event":
			if line.Event != nil {
				rec.Events = append(rec.Events, *line.Event)
			}
		case "slo":
			rec.SLO = line.SLO
		}
	}
	return rec, nil
}

// ReadRecordingFile loads a recording from path.
func ReadRecordingFile(path string) (*Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRecording(f)
}

// CurrentRecording assembles a Recording from the process-wide log,
// snapshotter, and SLO engine.
func CurrentRecording(binary string) *Recording {
	rec := &Recording{
		Meta: Meta{
			Version:       RecordingVersion,
			CreatedUnixMS: time.Now().UnixMilli(),
			Binary:        binary,
			EventsDropped: defaultLog.Dropped(),
			SlotsRecorded: defaultSnapshotter.Recorded(),
		},
		Slots:  defaultSnapshotter.Slots(),
		Events: defaultLog.Events(),
	}
	if eng := DefaultSLOEngine(); eng != nil {
		rec.SLO = eng.Eval()
	}
	return rec
}

// SaveRecording writes the process-wide recorder state to path as JSONL
// (gzip-compressed when the name ends in .gz). It is the -record-out
// flush and returns a one-line summary for the CLI.
func SaveRecording(path, binary string) (string, error) {
	rec := CurrentRecording(binary)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	werr := rec.Write(w)
	if gz != nil {
		if cerr := gz.Close(); werr == nil {
			werr = cerr
		}
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return fmt.Sprintf("%d slots, %d events, %d SLO rules",
		len(rec.Slots), len(rec.Events), len(rec.SLO)), nil
}
