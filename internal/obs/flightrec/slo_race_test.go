package flightrec

import (
	"sync"
	"testing"
)

// TestEngineEvalConcurrent drives Eval, AddRegistries, and Status from
// concurrent goroutines. Regression for the guardedby sweep: Eval read
// e.start between its two locked regions, off the declared mu contract —
// under -race this test pins the fixed locking discipline.
func TestEngineEvalConcurrent(t *testing.T) {
	var log Log
	log.Enable(64)
	e := NewEngine(&log)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Eval()
				e.AddRegistries()
				e.Status()
			}
		}()
	}
	wg.Wait()
	if got := e.Status(); len(got) == 0 {
		t.Fatal("engine lost its rule statuses under concurrent eval")
	}
}
