package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry(true)
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("events_total"); again != c {
		t.Error("re-registration returned a different instrument")
	}
}

func TestDisabledRegistryDropsWrites(t *testing.T) {
	r := NewRegistry(false)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DefBuckets)
	c.Inc()
	g.Set(3)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled registry recorded: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	g.Set(3)
	h.Observe(0.5)
	if c.Value() != 1 || g.Value() != 3 || h.Count() != 1 {
		t.Errorf("enable not observed by existing instruments: c=%d g=%v h=%d",
			c.Value(), g.Value(), h.Count())
	}
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry(true)
	rx := r.Counter("msgs_total", "dir", "rx", "type", "hello")
	tx := r.Counter("msgs_total", "dir", "tx", "type", "hello")
	rx.Add(2)
	tx.Add(3)
	if rx.Value() != 2 || tx.Value() != 3 {
		t.Errorf("label series cross-talk: rx=%d tx=%d", rx.Value(), tx.Value())
	}
	// Label order must not matter (canonicalized by key).
	if again := r.Counter("msgs_total", "type", "hello", "dir", "rx"); again != rx {
		t.Error("label order changed series identity")
	}
	if got := SumCounters("msgs_total", r); got != 5 {
		t.Errorf("SumCounters = %d, want 5", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry(true)
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry(true)
	g := r.Gauge("connected")
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %v, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(true)
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // ≤0.01 is inclusive; 5 lands in +Inf
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Errorf("sum = %v, want 5.565", h.Sum())
	}
	h.ObserveDuration(20 * time.Millisecond)
	if got := h.buckets[1].Load(); got != 2 {
		t.Errorf("ObserveDuration bucket = %d, want 2", got)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry(true)
	c := r.Counter("hits")
	g := r.Gauge("level")
	h := r.Histogram("obs", []float64{1, 10})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
				// Registration from many goroutines must be safe too.
				r.Counter("hits")
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
