package obs

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// TraceID identifies one causal tree of spans across processes (a command's
// whole life: MPC emit → controller send → retransmits → agent apply → ack).
// 128 bits, W3C trace-context sized.
type TraceID [16]byte

// IsZero reports whether the trace ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace. 64 bits, W3C sized.
type SpanID [8]byte

// IsZero reports whether the span ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the portable identity of a span: enough to continue its
// trace in another goroutine, another process, or across the southbound
// wire. The zero SpanContext means "no trace": propagating it is free and
// starting a span from it opens a new root.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// IsZero reports whether the context carries no trace.
func (sc SpanContext) IsZero() bool { return sc.TraceID.IsZero() && sc.SpanID.IsZero() }

// Traceparent renders the context in the W3C trace-context header form
// "00-<32 hex trace-id>-<16 hex parent-id>-01" (version 00, sampled flag
// set; this tracer records every span it is handed).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses the W3C traceparent form produced by
// Traceparent. Unknown versions are accepted as long as the field layout
// matches (per the spec's forward-compatibility rule); trailing fields
// beyond the flags are ignored.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, fmt.Errorf("obs: traceparent parent-id: %w", err)
	}
	if sc.IsZero() {
		return sc, fmt.Errorf("obs: traceparent %q has all-zero ids", s)
	}
	return sc, nil
}

// SpanContextWireSize is the binary encoding length of a SpanContext
// (trace ID then span ID, no version byte — framing supplies one).
const SpanContextWireSize = 24

// AppendWire appends the 24-byte binary encoding to b.
func (sc SpanContext) AppendWire(b []byte) []byte {
	b = append(b, sc.TraceID[:]...)
	return append(b, sc.SpanID[:]...)
}

// SpanContextFromWire decodes the 24-byte binary encoding. ok is false
// when b is short or the ids are all zero.
func SpanContextFromWire(b []byte) (sc SpanContext, ok bool) {
	if len(b) < SpanContextWireSize {
		return SpanContext{}, false
	}
	copy(sc.TraceID[:], b[:16])
	copy(sc.SpanID[:], b[16:24])
	return sc, !sc.IsZero()
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijection used
// to derive span/trace IDs from a seed and a sequence counter without any
// global RNG (the determinism contract forbids math/rand globals, and
// campaigns need reproducible IDs from a campaign seed).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// newSpanID derives the next span ID from the tracer's seed and sequence.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		n := t.idSeq.Add(1)
		binary.BigEndian.PutUint64(id[:], mix64(t.idSeed.Load()^(n*0x9E3779B97F4A7C15)))
	}
	return id
}

// newTraceID derives a fresh 128-bit trace ID.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		n := t.idSeq.Add(1)
		seed := t.idSeed.Load()
		binary.BigEndian.PutUint64(id[:8], mix64(seed^(n*0x9E3779B97F4A7C15)))
		binary.BigEndian.PutUint64(id[8:], mix64(seed^(n*0x9E3779B97F4A7C15)^0xD1B54A32D192ED03))
	}
	return id
}
