package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in the trace ring.
type Event struct {
	Name string `json:"name"`
	// StartUS/DurUS are microseconds since tracer enable / span duration.
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a fixed-capacity ring buffer: the newest
// events win, so a long-running emulation keeps the recent control-loop
// history without unbounded memory. Disabled tracers drop spans at the
// cost of one atomic load.
type Tracer struct {
	on atomic.Bool

	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped int64
	epoch   time.Time
}

// DefaultTraceCapacity is the ring size used by EnableTracing(0).
const DefaultTraceCapacity = 4096

var defaultTracer = &Tracer{}

// Trace returns the process-wide tracer (disabled until EnableTracing).
func Trace() *Tracer { return defaultTracer }

// EnableTracing enables the default tracer with the given ring capacity
// (0 = DefaultTraceCapacity).
func EnableTracing(capacity int) { defaultTracer.Enable(capacity) }

// StartSpan opens a span on the default tracer; attrs are key/value
// pairs. The returned span records on End().
func StartSpan(name string, attrs ...string) Span { return defaultTracer.StartSpan(name, attrs...) }

// Enable (re)enables the tracer, allocating a ring of the given capacity
// (0 = DefaultTraceCapacity). Re-enabling resets the ring and epoch.
func (t *Tracer) Enable(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t.mu.Lock()
	t.buf = make([]Event, capacity)
	t.next, t.wrapped, t.dropped = 0, false, 0
	t.epoch = time.Now()
	t.mu.Unlock()
	t.on.Store(true)
}

// Enabled reports whether spans are recorded.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// Disable stops recording; the ring stays readable.
func (t *Tracer) Disable() { t.on.Store(false) }

// Span is an in-flight trace span. The zero Span (from a disabled tracer)
// is inert: End() is a nil check.
type Span struct {
	t     *Tracer
	name  string
	attrs []string
	start time.Time
}

// StartSpan opens a span; attrs are key/value pairs attached on End.
func (t *Tracer) StartSpan(name string, attrs ...string) Span {
	if !t.on.Load() {
		return Span{}
	}
	return Span{t: t, name: name, attrs: attrs, start: time.Now()}
}

// End completes the span and commits it to the ring.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.record(s.name, s.start, time.Since(s.start), s.attrs)
}

// Attr appends a key/value pair to an in-flight span (no-op when inert).
func (s *Span) Attr(k, v string) {
	if s.t != nil {
		s.attrs = append(s.attrs, k, v)
	}
}

func (t *Tracer) record(name string, start time.Time, dur time.Duration, attrs []string) {
	var m map[string]string
	if len(attrs) > 0 {
		m = make(map[string]string, (len(attrs)+1)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 {
		return
	}
	if t.wrapped {
		t.dropped++
	}
	t.buf[t.next] = Event{
		Name:    name,
		StartUS: start.Sub(t.epoch).Microseconds(),
		DurUS:   dur.Microseconds(),
		Attrs:   m,
	}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
}

// Events returns the ring contents oldest-first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes one JSON object per event, oldest-first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is Chrome's trace_event "complete" (ph=X) record, loadable
// in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the ring as a Chrome trace_event JSON array.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, len(events))
	for i, ev := range events {
		out[i] = chromeEvent{
			Name: ev.Name, Ph: "X", PID: 1, TID: 1,
			TS: ev.StartUS, Dur: ev.DurUS, Args: ev.Attrs,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFileSummary returns a short human-readable description of the ring
// state, used by the CLI when flushing -trace-out.
func (t *Tracer) WriteFileSummary() string {
	t.mu.Lock()
	n := t.next
	if t.wrapped {
		n = len(t.buf)
	}
	dropped := t.dropped
	t.mu.Unlock()
	return fmt.Sprintf("%d spans (%d overwritten)", n, dropped)
}
