package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in the trace ring. Trace/Span/Parent are
// hex-encoded causal identifiers (empty on spans recorded before tracing
// carried context, and on the _meta record).
type Event struct {
	Name string `json:"name"`
	// StartUS/DurUS are microseconds since tracer enable / span duration.
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Trace   string            `json:"trace,omitempty"`
	Span    string            `json:"span,omitempty"`
	Parent  string            `json:"parent,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// MetaEventName names the pseudo-event WriteJSONL emits first: it carries
// the process name and the tracer epoch in absolute microseconds, which
// the cross-process merger (internal/obs/tracemerge) needs to place this
// dump on a shared timeline.
const MetaEventName = "_tinyleo_trace_meta"

// Tracer records spans into a fixed-capacity ring buffer: the newest
// events win, so a long-running emulation keeps the recent control-loop
// history without unbounded memory. Disabled tracers drop spans at the
// cost of one atomic load.
//
// Spans carry causal identity (TraceID/SpanID/parent) so a trace started
// in one process can be continued in another: StartSpanCtx continues a
// propagated SpanContext, Span.Context returns the context to propagate.
// IDs derive from a seed and an atomic sequence — seed explicitly via
// SeedIDs for reproducible campaigns, or let Enable derive one from the
// epoch. SetClock replaces the wall clock (the chaos engine injects its
// virtual clock so recorded timestamps are deterministic).
type Tracer struct {
	on     atomic.Bool
	idSeed atomic.Uint64
	idSeq  atomic.Uint64
	clock  atomic.Pointer[func() time.Time]

	mu sync.Mutex
	//tinyleo:guardedby mu
	seeded bool
	//tinyleo:guardedby mu
	proc string
	//tinyleo:guardedby mu
	buf []Event
	//tinyleo:guardedby mu
	next int
	//tinyleo:guardedby mu
	wrapped bool
	//tinyleo:guardedby mu
	dropped int64
	//tinyleo:guardedby mu
	epoch time.Time
}

// DefaultTraceCapacity is the ring size used by EnableTracing(0).
const DefaultTraceCapacity = 4096

var defaultTracer = &Tracer{}

// Trace returns the process-wide tracer (disabled until EnableTracing).
func Trace() *Tracer { return defaultTracer }

// EnableTracing enables the default tracer with the given ring capacity
// (0 = DefaultTraceCapacity).
func EnableTracing(capacity int) { defaultTracer.Enable(capacity) }

// StartSpan opens a root span on the default tracer; attrs are key/value
// pairs. The returned span records on End().
func StartSpan(name string, attrs ...string) Span { return defaultTracer.StartSpan(name, attrs...) }

// StartSpanCtx opens a span on the default tracer as a child of parent
// (a zero parent starts a new root).
func StartSpanCtx(parent SpanContext, name string, attrs ...string) Span {
	return defaultTracer.StartSpanCtx(parent, name, attrs...)
}

// SetClock replaces the tracer's wall clock for epoch and span timestamps
// (nil restores time.Now). Set it before Enable: the epoch is read from
// the clock at enable time.
func (t *Tracer) SetClock(now func() time.Time) {
	if now == nil {
		t.clock.Store(nil)
		return
	}
	t.clock.Store(&now)
}

// SetProcess names the process in WriteJSONL's meta record, so merged
// multi-process traces label each timeline (e.g. "tinyleo-sat-3").
func (t *Tracer) SetProcess(name string) {
	t.mu.Lock()
	t.proc = name
	t.mu.Unlock()
}

// SeedIDs makes span/trace ID generation a pure function of seed and
// allocation order (campaign determinism). Resets the sequence; sticky
// across Enable.
func (t *Tracer) SeedIDs(seed uint64) {
	t.mu.Lock()
	t.seeded = true
	t.mu.Unlock()
	t.idSeed.Store(mix64(seed))
	t.idSeq.Store(0)
}

func (t *Tracer) now() time.Time {
	if p := t.clock.Load(); p != nil {
		return (*p)()
	}
	return time.Now()
}

// Enable (re)enables the tracer, allocating a ring of the given capacity
// (0 = DefaultTraceCapacity). Re-enabling resets the ring and epoch.
func (t *Tracer) Enable(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	epoch := t.now()
	t.mu.Lock()
	t.buf = make([]Event, capacity)
	t.next, t.wrapped, t.dropped = 0, false, 0
	t.epoch = epoch
	if !t.seeded {
		t.idSeed.Store(mix64(uint64(epoch.UnixNano())))
		t.idSeq.Store(0)
	}
	t.mu.Unlock()
	t.on.Store(true)
}

// Enabled reports whether spans are recorded.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// Disable stops recording; the ring stays readable.
func (t *Tracer) Disable() { t.on.Store(false) }

// EpochUnixMicros returns the tracer epoch (the zero of Event.StartUS) in
// absolute Unix microseconds.
func (t *Tracer) EpochUnixMicros() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch.UnixMicro()
}

// Span is an in-flight trace span. The zero Span (from a disabled tracer)
// is inert: End() is a nil check, Context() is zero.
type Span struct {
	t      *Tracer
	name   string
	attrs  []string
	start  time.Time
	sc     SpanContext
	parent SpanID
}

// StartSpan opens a root span; attrs are key/value pairs attached on End.
func (t *Tracer) StartSpan(name string, attrs ...string) Span {
	if !t.on.Load() {
		return Span{}
	}
	return t.startSpanCtx(SpanContext{}, name, attrs)
}

// StartSpanCtx opens a span continuing parent's trace: same TraceID, a
// fresh SpanID, parent recorded as the causal edge. A zero parent opens a
// new root with a fresh TraceID. Propagate Span.Context() (in-process, or
// over the southbound wire) to grow the tree across goroutines and
// processes.
func (t *Tracer) StartSpanCtx(parent SpanContext, name string, attrs ...string) Span {
	if !t.on.Load() {
		return Span{}
	}
	return t.startSpanCtx(parent, name, attrs)
}

// startSpanCtx is the enabled slow path, split out so the disabled guard
// above stays within the inlining budget (hot paths call StartSpanCtx
// unconditionally and rely on the disabled path costing one atomic load).
func (t *Tracer) startSpanCtx(parent SpanContext, name string, attrs []string) Span {
	s := Span{t: t, name: name, attrs: attrs, start: t.now()}
	if parent.TraceID.IsZero() {
		s.sc = SpanContext{TraceID: t.newTraceID(), SpanID: t.newSpanID()}
	} else {
		s.sc = SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID()}
		s.parent = parent.SpanID
	}
	return s
}

// Context returns the span's propagatable identity (zero when inert).
func (s Span) Context() SpanContext { return s.sc }

// End completes the span and commits it to the ring.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.record(s.name, s.start, s.t.now().Sub(s.start), s.sc, s.parent, s.attrs)
}

// Attr appends a key/value pair to an in-flight span (no-op when inert).
func (s *Span) Attr(k, v string) {
	if s.t != nil {
		s.attrs = append(s.attrs, k, v)
	}
}

func (t *Tracer) record(name string, start time.Time, dur time.Duration, sc SpanContext, parent SpanID, attrs []string) {
	var m map[string]string
	if len(attrs) > 0 {
		m = make(map[string]string, (len(attrs)+1)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	ev := Event{
		Name:  name,
		DurUS: dur.Microseconds(),
		Attrs: m,
	}
	if !sc.IsZero() {
		ev.Trace = sc.TraceID.String()
		ev.Span = sc.SpanID.String()
		if !parent.IsZero() {
			ev.Parent = parent.String()
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 {
		return
	}
	ev.StartUS = start.Sub(t.epoch).Microseconds()
	if t.wrapped {
		t.dropped++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
}

// Events returns the ring contents oldest-first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes one JSON object per event, oldest-first, preceded by
// a MetaEventName record carrying the process name and absolute epoch
// (what tracemerge needs to align dumps from different processes).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	t.mu.Lock()
	meta := Event{
		Name: MetaEventName,
		Attrs: map[string]string{
			"epoch_unix_us": strconv.FormatInt(t.epoch.UnixMicro(), 10),
		},
	}
	if t.proc != "" {
		meta.Attrs["proc"] = t.proc
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is Chrome's trace_event "complete" (ph=X) record, loadable
// in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the ring as a Chrome trace_event JSON array.
// Causal ids ride in args; merged multi-process views come from
// `tinyleo-ctl trace` (internal/obs/tracemerge), which also draws flow
// arrows between processes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, len(events))
	for i, ev := range events {
		args := ev.Attrs
		if ev.Trace != "" {
			args = make(map[string]string, len(ev.Attrs)+3)
			for k, v := range ev.Attrs {
				args[k] = v
			}
			args["trace"] = ev.Trace
			args["span"] = ev.Span
			if ev.Parent != "" {
				args["parent"] = ev.Parent
			}
		}
		out[i] = chromeEvent{
			Name: ev.Name, Ph: "X", PID: 1, TID: 1,
			TS: ev.StartUS, Dur: ev.DurUS, Args: args,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFileSummary returns a short human-readable description of the ring
// state, used by the CLI when flushing -trace-out.
func (t *Tracer) WriteFileSummary() string {
	t.mu.Lock()
	n := t.next
	if t.wrapped {
		n = len(t.buf)
	}
	dropped := t.dropped
	t.mu.Unlock()
	return fmt.Sprintf("%d spans (%d overwritten)", n, dropped)
}
