package obs

// The disabled-path benchmarks justify leaving instrumentation
// unconditionally in hot paths (the MPC compile loop, the per-packet
// forwarder, the southbound read loop): a counter increment against a
// disabled registry is a single atomic bool load — low single-digit
// ns/op — so a process that never calls obs.Enable() pays ~nothing.
//
//	go test -bench . -benchmem ./internal/obs

import "testing"

func BenchmarkCounterIncDisabled(b *testing.B) {
	c := NewRegistry(false).Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry(true).Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabledParallel(b *testing.B) {
	c := NewRegistry(false).Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSetDisabled(b *testing.B) {
	g := NewRegistry(false).Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	h := NewRegistry(false).Histogram("bench_seconds", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry(true).Histogram("bench_seconds", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	tr := &Tracer{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpan("bench").End()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := &Tracer{}
	tr.Enable(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpan("bench").End()
	}
}

func BenchmarkStartSpanCtxDisabled(b *testing.B) {
	tr := &Tracer{}
	parent := SpanContext{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpanCtx(parent, "bench").End()
	}
}

func BenchmarkStartSpanCtxEnabled(b *testing.B) {
	tr := &Tracer{}
	tr.Enable(1024)
	parent := tr.StartSpan("root").Context()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpanCtx(parent, "bench").End()
	}
}
