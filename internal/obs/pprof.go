package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// EnablePprof mounts net/http/pprof's profiling endpoints on every
// telemetry HTTP surface built by NewHandler/Serve (the -pprof flag on
// tinyleo-sat/-ctl/-bench):
//
//	/debug/pprof/          index
//	/debug/pprof/profile   CPU profile (?seconds=N)
//	/debug/pprof/heap      live-heap allocations
//	/debug/pprof/allocs    all allocations since start
//	/debug/pprof/goroutine goroutine stacks
//	/debug/pprof/mutex     contended-mutex holders
//	/debug/pprof/block     blocking (channel/select/lock wait) profile
//	/debug/pprof/threadcreate, /cmdline, /symbol, /trace
//
// Mutex and block profiling are off by default in the runtime; this
// enables both at a sampling rate cheap enough to leave on for a whole
// run (1 in 100 mutex contention events, block events ≥ 100 µs).
func EnablePprof() {
	runtime.SetMutexProfileFraction(100)
	runtime.SetBlockProfileRate(100_000) // nanoseconds
	RegisterHandler("/debug/pprof/", http.HandlerFunc(pprof.Index))
	RegisterHandler("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	RegisterHandler("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	RegisterHandler("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	RegisterHandler("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	for _, name := range []string{"heap", "allocs", "goroutine", "mutex", "block", "threadcreate"} {
		RegisterHandler("/debug/pprof/"+name, pprof.Handler(name))
	}
}
