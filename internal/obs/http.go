package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

var processStart = time.Now()

// Extension handlers registered by sibling subsystems (e.g.
// internal/obs/flightrec mounts /slo and /events). They are resolved at
// request time, so registration order relative to NewHandler does not
// matter.
var (
	extMu       sync.RWMutex
	extHandlers = map[string]http.Handler{}
)

// RegisterHandler mounts h at path on every telemetry HTTP surface built
// by NewHandler/Serve (existing servers included). Re-registering a path
// replaces the handler.
func RegisterHandler(path string, h http.Handler) {
	extMu.Lock()
	extHandlers[path] = h
	extMu.Unlock()
}

// NewHandler builds the telemetry HTTP surface over the given registries
// (merged in order) and the default tracer:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  JSON snapshot of every series
//	/healthz       liveness: {"status":"ok","uptime_s":...}
//	/trace         span ring as JSONL
//	/trace.chrome  span ring as a Chrome trace_event array
//
// plus any extension paths mounted via RegisterHandler (the flight
// recorder adds /slo and /events when enabled).
func NewHandler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, regs...)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, regs...)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(processStart).Seconds(),
		})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = Trace().WriteJSONL(w)
	})
	mux.HandleFunc("/trace.chrome", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Trace().WriteChromeTrace(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		extMu.RLock()
		h := extHandlers[r.URL.Path]
		extMu.RUnlock()
		if h == nil {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry HTTP surface on addr (":0" picks a free
// port) over the given registries. The returned server runs until Close.
func Serve(addr string, regs ...*Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(regs...)}}
	//tinyleo:goroutine Serve returns when Close shuts the listener down
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
