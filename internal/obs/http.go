package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

var processStart = time.Now()

// NewHandler builds the telemetry HTTP surface over the given registries
// (merged in order) and the default tracer:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  JSON snapshot of every series
//	/healthz       liveness: {"status":"ok","uptime_s":...}
//	/trace         span ring as JSONL
//	/trace.chrome  span ring as a Chrome trace_event array
func NewHandler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, regs...)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, regs...)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(processStart).Seconds(),
		})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = Trace().WriteJSONL(w)
	})
	mux.HandleFunc("/trace.chrome", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Trace().WriteChromeTrace(w)
	})
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry HTTP surface on addr (":0" picks a free
// port) over the given registries. The returned server runs until Close.
func Serve(addr string, regs ...*Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(regs...)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
