package obs_test

// Extends the internal/obs disabled-path benchmarks to the flight
// recorder (external test package: flightrec imports obs, so the guard
// benchmark can't live in package obs itself). The instrumented call
// sites in mpc/southbound/dataplane/core all use exactly this shape —
// Enabled() before any attribute formatting — and the bar is the same
// as the registry's: ≤ 2 ns/op, 0 allocs while recording is off.

import (
	"strconv"
	"testing"

	"repro/internal/obs/flightrec"
)

func BenchmarkFlightrecGuardDisabled(b *testing.B) {
	if flightrec.Enabled() {
		b.Skip("process-wide recorder enabled by another test")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if flightrec.Enabled() {
			flightrec.Emit(flightrec.CompDataplane, "drop",
				"sat", strconv.Itoa(i), "reason", "bench")
		}
	}
}

func BenchmarkFlightrecGuardDisabledParallel(b *testing.B) {
	if flightrec.Enabled() {
		b.Skip("process-wide recorder enabled by another test")
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if flightrec.Enabled() {
				flightrec.Emit(flightrec.CompDataplane, "drop", "reason", "bench")
			}
		}
	})
}
