package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := NewRegistry(true)
	r.Counter("tinyleo_rx_total", "type", "hello").Add(3)
	r.Counter("tinyleo_rx_total", "type", "ack").Add(2)
	r.Gauge("tinyleo_agents").Set(4)
	h := r.Histogram("tinyleo_compile_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	return r
}

// promLine matches a valid Prometheus text sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, exampleRegistry()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	types := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	if types != 3 {
		t.Errorf("TYPE lines = %d, want 3 (one per metric name):\n%s", types, out)
	}
	for _, want := range []string{
		`tinyleo_rx_total{type="hello"} 3`,
		`tinyleo_agents 4`,
		`tinyleo_compile_seconds_bucket{le="0.01"} 1`,
		`tinyleo_compile_seconds_bucket{le="0.1"} 2`,
		`tinyleo_compile_seconds_bucket{le="+Inf"} 3`,
		`tinyleo_compile_seconds_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, exampleRegistry()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []Sample `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if len(doc.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(doc.Series))
	}
	byName := map[string]Sample{}
	for _, s := range doc.Series {
		byName[s.Name+"/"+s.Labels["type"]] = s
	}
	if s := byName["tinyleo_rx_total/hello"]; s.Value != 3 || s.Kind != KindCounter {
		t.Errorf("hello counter sample = %+v", s)
	}
	if s := byName["tinyleo_compile_seconds/"]; s.Count != 3 || len(s.Buckets) != 3 {
		t.Errorf("histogram sample = %+v", s)
	}
}

func TestMergedRegistries(t *testing.T) {
	a := NewRegistry(true)
	a.Counter("a_total").Inc()
	b := NewRegistry(true)
	b.Counter("b_total").Add(2)
	var out strings.Builder
	if err := WritePrometheus(&out, a, b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a_total 1") || !strings.Contains(out.String(), "b_total 2") {
		t.Errorf("merged exposition:\n%s", out.String())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler(exampleRegistry()))
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "tinyleo_rx_total") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"series"`) {
		t.Errorf("/metrics.json: %d %q", code, body)
	}
	code, body := get("/healthz")
	if code != 200 {
		t.Errorf("/healthz: %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil || health["status"] != "ok" {
		t.Errorf("/healthz body = %q (%v)", body, err)
	}
	if code, _ := get("/trace"); code != 200 {
		t.Errorf("/trace: %d", code)
	}
	if code, body := get("/trace.chrome"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("/trace.chrome: %d %q", code, body)
	}
}

func TestServeLifecycle(t *testing.T) {
	r := exampleRegistry()
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tinyleo_agents 4") {
		t.Errorf("served metrics:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}
