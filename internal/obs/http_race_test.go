package obs

// Concurrency coverage for the telemetry HTTP surface: every endpoint is
// hammered while instrument writers mutate the same registries and the
// tracer, the mix `go test -race ./internal/obs/...` must keep clean
// (the flight recorder's /slo endpoint gets the same treatment in
// internal/obs/flightrec).

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestHandlerEndpointsUnderConcurrentWrites(t *testing.T) {
	reg := NewRegistry(true)
	// The /trace endpoints read the process-wide tracer.
	EnableTracing(128)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	const writers, readers, iters = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("race_total", "writer", string(rune('a'+w)))
			g := reg.Gauge("race_gauge")
			h := reg.Histogram("race_seconds", DefBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 1000)
				sp := StartSpan("race.op", "i", "x")
				sp.End()
			}
		}(w)
	}
	paths := []string{"/metrics", "/metrics.json", "/healthz", "/trace", "/trace.chrome", "/no-such-ext"}
	errs := make(chan error, readers*len(paths))
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				for _, p := range paths {
					resp, err := http.Get(srv.URL + p)
					if err != nil {
						errs <- err
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if p == "/no-such-ext" {
						if resp.StatusCode != http.StatusNotFound {
							t.Errorf("%s status = %d, want 404", p, resp.StatusCode)
						}
					} else if resp.StatusCode != http.StatusOK {
						t.Errorf("%s status = %d", p, resp.StatusCode)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRegisterHandlerConcurrentWithRequests(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(true)))
	defer srv.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			RegisterHandler("/race-ext", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				_, _ = w.Write([]byte("ok"))
			}))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			resp, err := http.Get(srv.URL + "/race-ext")
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
}
