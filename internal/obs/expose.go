package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sample is one exported series in a Snapshot.
type Sample struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds the counter count or gauge value.
	Value float64 `json:"value,omitempty"`
	// Histogram-only fields. Buckets are raw (non-cumulative) counts per
	// bound; the entry past the last bound is the +Inf bucket.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot captures every series of the given registries in registration
// order (registries concatenated in argument order).
func Snapshot(regs ...*Registry) []Sample {
	var out []Sample
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		order := append([]*series(nil), r.order...)
		r.mu.Unlock()
		for _, s := range order {
			smp := Sample{Name: s.name, Kind: s.kind}
			if len(s.labels) > 0 {
				smp.Labels = make(map[string]string, len(s.labels))
				for _, lp := range s.labels {
					smp.Labels[lp.k] = lp.v
				}
			}
			switch s.kind {
			case KindCounter:
				smp.Value = float64(s.c.Value())
			case KindGauge:
				smp.Value = s.g.Value()
			case KindHistogram:
				smp.Count = s.h.Count()
				smp.Sum = s.h.Sum()
				smp.Bounds = s.h.bounds
				smp.Buckets = make([]int64, len(s.h.buckets))
				for i := range s.h.buckets {
					smp.Buckets[i] = s.h.buckets[i].Load()
				}
			}
			out = append(out, smp)
		}
	}
	return out
}

// SumCounters returns the summed value of every counter series named name
// across the registries (e.g. totaling a labeled message counter).
func SumCounters(name string, regs ...*Registry) int64 {
	var total int64
	for _, smp := range Snapshot(regs...) {
		if smp.Kind == KindCounter && smp.Name == name {
			total += int64(smp.Value)
		}
	}
	return total
}

// WritePrometheus renders every series of the registries in the Prometheus
// text exposition format (version 0.0.4): a "# TYPE" line per metric name
// followed by its samples; histograms expose cumulative _bucket/_sum/_count
// series.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	typed := map[string]bool{}
	for _, smp := range Snapshot(regs...) {
		if !typed[smp.Name] {
			typed[smp.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", smp.Name, smp.Kind); err != nil {
				return err
			}
		}
		switch smp.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				smp.Name, promLabels(smp.Labels, "", 0), promFloat(smp.Value)); err != nil {
				return err
			}
		case KindHistogram:
			cum := int64(0)
			for i, b := range smp.Buckets {
				cum += b
				le := math.Inf(1)
				if i < len(smp.Bounds) {
					le = smp.Bounds[i]
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					smp.Name, promLabels(smp.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
				smp.Name, promLabels(smp.Labels, "", 0), promFloat(smp.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				smp.Name, promLabels(smp.Labels, "", 0), smp.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one indented JSON document.
func WriteJSON(w io.Writer, regs ...*Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	samples := Snapshot(regs...)
	if samples == nil {
		samples = []Sample{}
	}
	return enc.Encode(struct {
		Series []Sample `json:"series"`
	}{samples})
}

// promLabels renders a label set (plus an optional le bound for histogram
// buckets) as {k="v",...}, or "" when empty.
func promLabels(labels map[string]string, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q yields exactly the Prometheus label escaping (\\, \", \n).
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		if math.IsInf(le, 1) {
			fmt.Fprintf(&b, "%s=%q", leKey, "+Inf")
		} else {
			fmt.Fprintf(&b, "%s=%q", leKey, promFloat(le))
		}
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var expvarOnce sync.Once

// PublishExpvar publishes the registries' JSON snapshot under the expvar
// name "tinyleo" (alongside the stock memstats/cmdline vars on
// /debug/vars). Safe to call more than once; only the first call's
// registry list is published.
func PublishExpvar(regs ...*Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("tinyleo", expvar.Func(func() any {
			return Snapshot(regs...)
		}))
	})
}
