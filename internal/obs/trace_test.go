package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(8)
	sp := tr.StartSpan("compile", "slot", "0")
	time.Sleep(time.Millisecond)
	sp.Attr("links", "12")
	sp.End()
	tr.StartSpan("repair").End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Name != "compile" || events[0].Attrs["slot"] != "0" || events[0].Attrs["links"] != "12" {
		t.Errorf("first event = %+v", events[0])
	}
	if events[0].DurUS < 500 {
		t.Errorf("span duration %d µs, expected ≥ 1 ms sleep", events[0].DurUS)
	}
	if events[1].StartUS < events[0].StartUS {
		t.Error("events not in chronological order")
	}
}

func TestTracerDisabledIsInert(t *testing.T) {
	tr := &Tracer{}
	sp := tr.StartSpan("x")
	sp.End() // must not panic or record
	if n := len(tr.Events()); n != 0 {
		t.Errorf("disabled tracer recorded %d events", n)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
	}
	if n := len(tr.Events()); n != 4 {
		t.Errorf("ring holds %d, want 4", n)
	}
	if d := tr.Dropped(); d != 6 {
		t.Errorf("dropped = %d, want 6", d)
	}
	if !strings.Contains(tr.WriteFileSummary(), "4 spans") {
		t.Errorf("summary = %q", tr.WriteFileSummary())
	}
}

func TestTraceJSONLAndChrome(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(16)
	tr.StartSpan("a", "k", "v").End()
	tr.StartSpan("b").End()

	var jsonl strings.Builder
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(jsonl.String()))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}

	var chrome strings.Builder
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(chrome.String()), &arr); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	if len(arr) != 2 || arr[0]["ph"] != "X" || arr[0]["name"] != "a" {
		t.Errorf("chrome trace = %v", arr)
	}
}
