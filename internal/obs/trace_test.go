package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(8)
	sp := tr.StartSpan("compile", "slot", "0")
	time.Sleep(time.Millisecond)
	sp.Attr("links", "12")
	sp.End()
	tr.StartSpan("repair").End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Name != "compile" || events[0].Attrs["slot"] != "0" || events[0].Attrs["links"] != "12" {
		t.Errorf("first event = %+v", events[0])
	}
	if events[0].DurUS < 500 {
		t.Errorf("span duration %d µs, expected ≥ 1 ms sleep", events[0].DurUS)
	}
	if events[1].StartUS < events[0].StartUS {
		t.Error("events not in chronological order")
	}
}

func TestTracerDisabledIsInert(t *testing.T) {
	tr := &Tracer{}
	sp := tr.StartSpan("x")
	sp.End() // must not panic or record
	if n := len(tr.Events()); n != 0 {
		t.Errorf("disabled tracer recorded %d events", n)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
	}
	if n := len(tr.Events()); n != 4 {
		t.Errorf("ring holds %d, want 4", n)
	}
	if d := tr.Dropped(); d != 6 {
		t.Errorf("dropped = %d, want 6", d)
	}
	if !strings.Contains(tr.WriteFileSummary(), "4 spans") {
		t.Errorf("summary = %q", tr.WriteFileSummary())
	}
}

func TestTraceJSONLAndChrome(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(16)
	tr.StartSpan("a", "k", "v").End()
	tr.StartSpan("b").End()

	var jsonl strings.Builder
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	sc := bufio.NewScanner(strings.NewReader(jsonl.String()))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	// Meta record first (proc/epoch for the cross-process merger), then
	// the two spans.
	if len(evs) != 3 {
		t.Fatalf("JSONL lines = %d, want 3 (meta + 2 spans)", len(evs))
	}
	if evs[0].Name != MetaEventName || evs[0].Attrs["epoch_unix_us"] == "" {
		t.Errorf("meta record = %+v", evs[0])
	}
	if evs[1].Name != "a" || evs[1].Trace == "" || evs[1].Span == "" {
		t.Errorf("span record missing ids: %+v", evs[1])
	}

	var chrome strings.Builder
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(chrome.String()), &arr); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	if len(arr) != 2 || arr[0]["ph"] != "X" || arr[0]["name"] != "a" {
		t.Errorf("chrome trace = %v", arr)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(16)
	root := tr.StartSpan("mpc.emit")
	rc := root.Context()
	if rc.IsZero() {
		t.Fatal("enabled root span has zero context")
	}
	child := tr.StartSpanCtx(rc, "sb.send")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Errorf("child trace %s != root trace %s", cc.TraceID, rc.TraceID)
	}
	if cc.SpanID == rc.SpanID || cc.SpanID.IsZero() {
		t.Errorf("child span id %s not fresh (root %s)", cc.SpanID, rc.SpanID)
	}
	child.End()
	root.End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Ring order: child ended first.
	if events[0].Parent != rc.SpanID.String() {
		t.Errorf("child parent = %q, want %q", events[0].Parent, rc.SpanID.String())
	}
	if events[1].Parent != "" {
		t.Errorf("root parent = %q, want empty", events[1].Parent)
	}
	if events[0].Trace != events[1].Trace {
		t.Errorf("trace ids differ: %q vs %q", events[0].Trace, events[1].Trace)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(4)
	sp := tr.StartSpan("x")
	sc := sp.Context()
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent = %q", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Errorf("round trip: got %+v, want %+v", got, sc)
	}
	if _, err := ParseTraceparent("00-bogus"); err == nil {
		t.Error("malformed traceparent accepted")
	}
	if _, err := ParseTraceparent("00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16) + "-01"); err == nil {
		t.Error("all-zero traceparent accepted")
	}
}

func TestSpanContextWire(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(4)
	sc := tr.StartSpan("x").Context()
	b := sc.AppendWire(nil)
	if len(b) != SpanContextWireSize {
		t.Fatalf("wire size = %d, want %d", len(b), SpanContextWireSize)
	}
	got, ok := SpanContextFromWire(b)
	if !ok || got != sc {
		t.Errorf("wire round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	if _, ok := SpanContextFromWire(b[:10]); ok {
		t.Error("short wire decode accepted")
	}
	if _, ok := SpanContextFromWire(make([]byte, SpanContextWireSize)); ok {
		t.Error("all-zero wire decode accepted")
	}
}

// Seeded tracers on an injected clock must allocate identical trace IDs
// in allocation order — the chaos determinism guarantee.
func TestSeededIDsDeterministic(t *testing.T) {
	run := func() []string {
		tr := &Tracer{}
		tr.SetClock(func() time.Time { return time.Unix(1_700_000_000, 0) })
		tr.SeedIDs(42)
		tr.Enable(8)
		var ids []string
		for i := 0; i < 4; i++ {
			sp := tr.StartSpan("s")
			ids = append(ids, sp.Context().TraceID.String(), sp.Context().SpanID.String())
			sp.End()
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id %d differs across runs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestInjectedClockTimestamps(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := &Tracer{}
	tr.SetClock(func() time.Time { return now })
	tr.Enable(4)
	sp := tr.StartSpan("x")
	now = now.Add(1500 * time.Microsecond)
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].StartUS != 0 || evs[0].DurUS != 1500 {
		t.Errorf("event start=%d dur=%d, want 0/1500", evs[0].StartUS, evs[0].DurUS)
	}
	if got := tr.EpochUnixMicros(); got != time.Unix(1_700_000_000, 0).UnixMicro() {
		t.Errorf("epoch = %d", got)
	}
}

// The disabled path must stay allocation-free: hot paths start spans
// unconditionally behind a single Enabled() load.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	tr := &Tracer{}
	parent := SpanContext{}
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpanCtx(parent, "x")
		sp.End()
	}); allocs != 0 {
		t.Errorf("disabled StartSpanCtx allocates %.1f/op, want 0", allocs)
	}
}
