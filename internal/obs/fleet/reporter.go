package fleet

import (
	"sync"
	"time"
)

// Reporter drives an Encoder at a bounded rate: a background loop flushes
// one coalesced report per interval, whatever the underlying event rate.
// Send failures reset the encoder session, so the first report after a
// reconnect is a baseline and no increment is ever lost — the transport
// (the southbound session) may drop a report, but the next one re-ships
// absolutes.
type Reporter struct {
	enc  *Encoder
	send func(payload []byte) error

	mu sync.Mutex
	//tinyleo:guardedby mu
	stopped bool
	//tinyleo:guardedby mu
	stop chan struct{}
	//tinyleo:guardedby mu
	done chan struct{}
}

// NewReporter wraps enc with a send function — typically
// (*southbound.Agent).SendTelemetry.
func NewReporter(enc *Encoder, send func(payload []byte) error) *Reporter {
	return &Reporter{enc: enc, send: send}
}

// Flush encodes and sends one report immediately, returning its sequence
// number. On send failure the encoder session resets, so the next flush
// re-ships absolute values (nothing is lost, only delayed).
func (r *Reporter) Flush() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	payload, seq := r.enc.Encode()
	if err := r.send(payload); err != nil {
		r.enc.Reset()
		return seq, err
	}
	return seq, nil
}

// Seq returns the sequence number of the last encoded report.
func (r *Reporter) Seq() uint64 { return r.enc.Seq() }

// Run starts the background flush loop at the given interval. It returns
// immediately; call Stop for a final flush and clean shutdown. Run is a
// no-op if a loop is already running or the reporter was stopped.
func (r *Reporter) Run(interval time.Duration) {
	if interval <= 0 {
		return
	}
	r.mu.Lock()
	if r.stopped || r.stop != nil {
		r.mu.Unlock()
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Flush() //nolint:errcheck // reset-on-error already handled
			}
		}
	}()
}

// Stop halts the background loop (if any) and sends one final flush so
// the controller sees the last pre-shutdown deltas.
func (r *Reporter) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	stop, done := r.stop, r.done
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.Flush() //nolint:errcheck // best-effort final report
}
