package fleet

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// histLast is the encoder's remembered histogram state for one series.
type histLast struct {
	count   int64
	sum     float64
	buckets []int64
}

// Encoder turns successive snapshots of a fixed set of registries into
// delta-encoded, sequence-numbered wire reports. It remembers the last
// values it shipped per series, so increments between calls coalesce into
// one delta and unchanged series cost zero wire bytes. The first report
// (and the first after Reset) is a baseline: full dictionary, absolute
// values.
//
// Encoder is safe for concurrent use, though typically one Reporter owns
// it.
type Encoder struct {
	regs []*obs.Registry

	mu sync.Mutex
	//tinyleo:guardedby mu
	seq uint64
	//tinyleo:guardedby mu
	ids map[string]int // series key → session ID
	// next report starts a fresh session (first report, or after Reset).
	//tinyleo:guardedby mu
	baseline bool

	//tinyleo:guardedby mu
	lastCounter map[int]int64
	//tinyleo:guardedby mu
	lastGauge map[int]float64
	//tinyleo:guardedby mu
	lastHist map[int]*histLast
	// gaugeSent marks gauges shipped at least once this session, so a
	// gauge that never changes still rides the baseline exactly once.
	//tinyleo:guardedby mu
	gaugeSent map[int]bool
}

// NewEncoder creates an encoder over the given registries (snapshotted in
// argument order on every Encode).
func NewEncoder(regs ...*obs.Registry) *Encoder {
	e := &Encoder{regs: regs}
	e.resetLocked()
	return e
}

// resetLocked starts a fresh session. Callers hold e.mu (NewEncoder
// calls it before the encoder escapes the constructor).
func (e *Encoder) resetLocked() {
	e.ids = map[string]int{}
	e.baseline = true
	e.lastCounter = map[int]int64{}
	e.lastGauge = map[int]float64{}
	e.lastHist = map[int]*histLast{}
	e.gaugeSent = map[int]bool{}
}

// Reset discards the session: the next Encode emits a baseline report
// (full dictionary, absolute values). Call it after a send failure or a
// transport reconnect — the re-shipped absolutes give the receiver a
// consistent basis whatever it missed. The sequence number keeps
// increasing across resets, so the receiver can still see gaps.
func (e *Encoder) Reset() {
	e.mu.Lock()
	e.resetLocked()
	e.mu.Unlock()
}

// Seq returns the sequence number of the last encoded report.
func (e *Encoder) Seq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// seriesKey is the canonical identity of a sample: name plus sorted
// label pairs, NUL-separated (labels are already canonical in a Sample).
func seriesKey(s *obs.Sample) (string, []string) {
	if len(s.Labels) == 0 {
		return s.Name, nil
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	flat := make([]string, 0, 2*len(keys))
	key := s.Name
	for _, k := range keys {
		flat = append(flat, k, s.Labels[k])
		key += "\x00" + k + "\x00" + s.Labels[k]
	}
	return key, flat
}

// Encode snapshots the registries and returns one wire report carrying
// everything that changed since the previous call (every series, with
// absolute values, when the session is fresh), plus the report's sequence
// number. An unchanged snapshot yields a valid empty report — the
// heartbeat the aggregator's staleness tracking relies on.
func (e *Encoder) Encode() (payload []byte, seq uint64) {
	samples := obs.Snapshot(e.regs...)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	flags := byte(0)
	if e.baseline {
		flags |= flagBaseline
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, Version, flags)
	buf = putUvarint(buf, e.seq)
	countAt := len(buf) // entry count patched in afterwards
	entries := 0
	var body []byte
	for i := range samples {
		s := &samples[i]
		key, flat := seriesKey(s)
		id, seen := e.ids[key]
		if !seen {
			if len(e.ids) >= MaxReportSeries {
				continue // session full; drop excess series
			}
			id = len(e.ids)
			e.ids[key] = id
		}
		var entry []byte
		switch s.Kind {
		case obs.KindCounter:
			v := int64(s.Value)
			delta := v - e.lastCounter[id]
			if delta == 0 && seen {
				continue
			}
			if delta < 0 {
				// A counter moved backwards (registry swapped out from
				// under us); rebase without emitting a negative delta.
				e.lastCounter[id] = v
				continue
			}
			entry = putUvarint(entry, uint64(delta))
			e.lastCounter[id] = v
		case obs.KindGauge:
			if seen && e.gaugeSent[id] && s.Value == e.lastGauge[id] {
				continue
			}
			entry = putFloat(entry, s.Value)
			e.lastGauge[id] = s.Value
			e.gaugeSent[id] = true
		case obs.KindHistogram:
			last := e.lastHist[id]
			if last == nil {
				last = &histLast{buckets: make([]int64, len(s.Buckets))}
				e.lastHist[id] = last
			}
			dCount := s.Count - last.count
			if dCount == 0 && seen {
				continue
			}
			if dCount < 0 || len(s.Buckets) != len(last.buckets) {
				last.count, last.sum = s.Count, s.Sum
				last.buckets = append(last.buckets[:0], s.Buckets...)
				continue
			}
			entry = putUvarint(entry, uint64(dCount))
			entry = putFloat(entry, s.Sum-last.sum)
			entry = putUvarint(entry, uint64(len(s.Buckets)))
			ok := true
			for j, b := range s.Buckets {
				d := b - last.buckets[j]
				if d < 0 {
					ok = false
					break
				}
				entry = putUvarint(entry, uint64(d))
			}
			if !ok {
				last.count, last.sum = s.Count, s.Sum
				last.buckets = append(last.buckets[:0], s.Buckets...)
				continue
			}
			last.count, last.sum = s.Count, s.Sum
			last.buckets = append(last.buckets[:0], s.Buckets...)
		default:
			continue
		}
		body = putUvarint(body, uint64(id))
		if !seen {
			body = appendDesc(body, Desc{Kind: s.Kind, Name: s.Name, Labels: flat, Bounds: s.Bounds})
		}
		body = append(body, entry...)
		entries++
	}
	buf = putUvarint(buf, uint64(entries))
	_ = countAt
	buf = append(buf, body...)
	e.baseline = false
	return buf, e.seq
}
