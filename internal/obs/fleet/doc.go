// Package fleet is TinyLEO's constellation-wide telemetry plane: agents
// snapshot their obs registries, delta-encode the changes into compact
// sequence-numbered binary reports, and push them to the controller over
// the southbound session as Telemetry messages; the controller-side
// Aggregator merges every agent's stream into one rollup registry keyed
// by series with per-agent labels, tracks report staleness through
// healthy → lagging → silent states, and serves the combined view as
// /fleet JSON on the obs mux.
//
// Design constraints, in order:
//
//  1. Coalescing: increments between flushes collapse into one delta, so
//     the wire cost is bounded by flush rate × changed series, never by
//     event rate. A report with no changed series is still sent — an
//     empty report is the liveness heartbeat staleness tracking feeds on.
//  2. Self-describing sessions: a series' descriptor (kind, name, labels,
//     histogram bounds) rides the wire exactly once per session, on the
//     series' first appearance; later reports reference it by index. A
//     baseline report (sent first, and again after any send failure or
//     reconnect) restarts the session with absolute values, so the
//     decoder never needs out-of-band state.
//  3. Determinism: encoding snapshots series in registration order and
//     the aggregator exposes sorted views, so chaos campaigns aggregating
//     over a virtual clock stay byte-reproducible.
//
// # Surfaces
//
// Agent side: NewEncoder wraps a registry, NewReporter flushes encoded
// reports through a send function at a bounded rate (Reporter.Run /
// Reporter.Stop). Controller side: NewAggregator decodes reports
// (HandleReport), sweeps staleness (Tick), and exposes the rollup as a
// Registry, per-agent rows (Agents), fleet-wide totals (TotalsSamples),
// and the /fleet document (View, RegisterHTTP).
//
// Artifacts: View.WriteFile / Aggregator.WriteSnapshotFile persist the
// /fleet document; ReadViewFile loads it back, and View.SLOSamples turns
// it into the sample set the flightrec SLO engine scores — how a
// testground run is judged after its processes have exited.
package fleet
