package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Wire limits. Reports beyond these are malformed (or hostile) and are
// rejected whole — a fleet report is advisory telemetry, never worth a
// controller allocation blowup.
const (
	// Version is the report wire version.
	Version = 1
	// MaxReportSeries bounds series entries per report.
	MaxReportSeries = 4096
	// MaxStringLen bounds name/label byte lengths.
	MaxStringLen = 512
	// MaxLabels bounds label pairs per series.
	MaxLabels = 32
	// MaxBounds bounds histogram bucket bounds per series.
	MaxBounds = 256
)

// flagBaseline marks a report carrying absolute values over a fresh
// series dictionary: the decoder discards prior session state first.
const flagBaseline = 0x01

// kind bytes on the wire.
const (
	wireCounter   = 1
	wireGauge     = 2
	wireHistogram = 3
)

// ErrMalformed reports an undecodable fleet report.
var ErrMalformed = errors.New("fleet: malformed report")

// Desc describes one series within a session: its kind, name, flat
// key/value label pairs, and (histograms only) bucket bounds.
type Desc struct {
	Kind   obs.Kind
	Name   string
	Labels []string // flat k,v pairs, sorted by key
	Bounds []float64
}

// Entry is one decoded series update: the session-scoped series ID plus
// the value delta (counters, histograms) or absolute value (gauges).
type Entry struct {
	ID int
	// CounterDelta is the counter increment since the previous report
	// (the absolute value in a baseline report).
	CounterDelta int64
	// GaugeValue is the absolute gauge value.
	GaugeValue float64
	// Histogram deltas (absolute in a baseline report). BucketDeltas has
	// len(Bounds)+1 entries.
	CountDelta   int64
	SumDelta     float64
	BucketDeltas []int64
}

// Report is one decoded fleet report.
type Report struct {
	// Seq is the encoder's report sequence number (monotonic per agent
	// process; gaps reveal lost reports).
	Seq uint64
	// Baseline marks a session restart: NewDescs covers every series and
	// values are absolute.
	Baseline bool
	// NewDescs maps series IDs introduced by this report to their
	// descriptors.
	NewDescs map[int]Desc
	// Entries are the series updates, in encode order.
	Entries []Entry
}

// ---- encoding primitives ----

func putUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func putString(buf []byte, s string) []byte {
	buf = putUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func putFloat(buf []byte, f float64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(buf, tmp[:]...)
}

// reader walks a report payload with bounds checking.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrMalformed
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) str(max int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(max) || r.off+int(n) > len(r.buf) {
		return "", ErrMalformed
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) float() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, ErrMalformed
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return f, nil
}

func wireKind(k obs.Kind) byte {
	switch k {
	case obs.KindCounter:
		return wireCounter
	case obs.KindGauge:
		return wireGauge
	case obs.KindHistogram:
		return wireHistogram
	}
	return 0
}

func kindFromWire(b byte) (obs.Kind, bool) {
	switch b {
	case wireCounter:
		return obs.KindCounter, true
	case wireGauge:
		return obs.KindGauge, true
	case wireHistogram:
		return obs.KindHistogram, true
	}
	return "", false
}

// appendDesc serializes one series descriptor.
func appendDesc(buf []byte, d Desc) []byte {
	buf = append(buf, wireKind(d.Kind))
	buf = putString(buf, d.Name)
	buf = putUvarint(buf, uint64(len(d.Labels)/2))
	for _, s := range d.Labels {
		buf = putString(buf, s)
	}
	if d.Kind == obs.KindHistogram {
		buf = putUvarint(buf, uint64(len(d.Bounds)))
		for _, b := range d.Bounds {
			buf = putFloat(buf, b)
		}
	}
	return buf
}

func readDesc(r *reader) (Desc, error) {
	var d Desc
	kb, err := r.byte()
	if err != nil {
		return d, err
	}
	kind, ok := kindFromWire(kb)
	if !ok {
		return d, fmt.Errorf("%w: kind %d", ErrMalformed, kb)
	}
	d.Kind = kind
	if d.Name, err = r.str(MaxStringLen); err != nil {
		return d, err
	}
	nl, err := r.uvarint()
	if err != nil {
		return d, err
	}
	if nl > MaxLabels {
		return d, fmt.Errorf("%w: %d labels", ErrMalformed, nl)
	}
	if nl > 0 {
		d.Labels = make([]string, 0, 2*nl)
		for i := uint64(0); i < 2*nl; i++ {
			s, err := r.str(MaxStringLen)
			if err != nil {
				return d, err
			}
			d.Labels = append(d.Labels, s)
		}
	}
	if d.Kind == obs.KindHistogram {
		nb, err := r.uvarint()
		if err != nil {
			return d, err
		}
		if nb > MaxBounds {
			return d, fmt.Errorf("%w: %d bounds", ErrMalformed, nb)
		}
		d.Bounds = make([]float64, nb)
		for i := range d.Bounds {
			if d.Bounds[i], err = r.float(); err != nil {
				return d, err
			}
		}
	}
	return d, nil
}

// Decode parses one report against the session dictionary dict (the
// descriptors from prior reports, in ID order). A baseline report ignores
// dict. Decode is pure: it returns the new descriptors in Report.NewDescs
// without mutating dict — the caller owns session state.
func Decode(payload []byte, dict []Desc) (*Report, error) {
	r := &reader{buf: payload}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, ver)
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	rep := &Report{Baseline: flags&flagBaseline != 0}
	if rep.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxReportSeries {
		return nil, fmt.Errorf("%w: %d series", ErrMalformed, n)
	}
	dictLen := len(dict)
	if rep.Baseline {
		dictLen = 0
	}
	known := func(id int) (Desc, bool) {
		if nd, ok := rep.NewDescs[id]; ok {
			return nd, true
		}
		if !rep.Baseline && id < len(dict) {
			return dict[id], true
		}
		return Desc{}, false
	}
	rep.Entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		id64, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		id := int(id64)
		var d Desc
		switch {
		case id == dictLen+len(rep.NewDescs):
			// First appearance in this session: a descriptor follows.
			if d, err = readDesc(r); err != nil {
				return nil, err
			}
			if rep.NewDescs == nil {
				rep.NewDescs = map[int]Desc{}
			}
			rep.NewDescs[id] = d
		default:
			var ok bool
			if d, ok = known(id); !ok {
				return nil, fmt.Errorf("%w: series id %d out of range", ErrMalformed, id)
			}
		}
		e := Entry{ID: id}
		switch d.Kind {
		case obs.KindCounter:
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			e.CounterDelta = int64(v)
		case obs.KindGauge:
			if e.GaugeValue, err = r.float(); err != nil {
				return nil, err
			}
		case obs.KindHistogram:
			cd, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			e.CountDelta = int64(cd)
			if e.SumDelta, err = r.float(); err != nil {
				return nil, err
			}
			nb, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if nb != uint64(len(d.Bounds)+1) {
				return nil, fmt.Errorf("%w: %d buckets for %d bounds", ErrMalformed, nb, len(d.Bounds))
			}
			e.BucketDeltas = make([]int64, nb)
			for j := range e.BucketDeltas {
				bd, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				e.BucketDeltas[j] = int64(bd)
			}
		}
		rep.Entries = append(rep.Entries, e)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(payload)-r.off)
	}
	return rep, nil
}
