package fleet

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// apply merges a payload sequence into a fresh dict the way the
// aggregator would, returning decoded reports.
func decodeAll(t *testing.T, payloads ...[]byte) []*Report {
	t.Helper()
	var dict []Desc
	var out []*Report
	for i, p := range payloads {
		rep, err := Decode(p, dict)
		if err != nil {
			t.Fatalf("decode report %d: %v", i, err)
		}
		if rep.Baseline {
			dict = nil
		}
		for id := len(dict); ; id++ {
			d, ok := rep.NewDescs[id]
			if !ok {
				break
			}
			dict = append(dict, d)
		}
		out = append(out, rep)
	}
	return out
}

func TestEncoderBaselineAndDeltas(t *testing.T) {
	reg := obs.NewRegistry(true)
	c := reg.Counter("reqs_total", "type", "hello")
	g := reg.Gauge("queue_depth")
	h := reg.Histogram("latency_s", []float64{0.1, 1})

	c.Add(5)
	g.Set(2.5)
	h.Observe(0.05)
	h.Observe(3)

	enc := NewEncoder(reg)
	p1, seq1 := enc.Encode()
	if seq1 != 1 {
		t.Fatalf("seq1 = %d, want 1", seq1)
	}

	// No changes: empty heartbeat report.
	p2, seq2 := enc.Encode()
	if seq2 != 2 {
		t.Fatalf("seq2 = %d, want 2", seq2)
	}

	c.Add(3)
	h.Observe(0.5)
	p3, _ := enc.Encode()

	reps := decodeAll(t, p1, p2, p3)
	r1, r2, r3 := reps[0], reps[1], reps[2]

	if !r1.Baseline || len(r1.Entries) != 3 || len(r1.NewDescs) != 3 {
		t.Fatalf("baseline report: baseline=%v entries=%d descs=%d",
			r1.Baseline, len(r1.Entries), len(r1.NewDescs))
	}
	if d := r1.NewDescs[0]; d.Name != "reqs_total" || d.Kind != obs.KindCounter ||
		len(d.Labels) != 2 || d.Labels[0] != "type" || d.Labels[1] != "hello" {
		t.Fatalf("desc 0 = %+v", d)
	}
	if r1.Entries[0].CounterDelta != 5 {
		t.Fatalf("baseline counter = %d, want 5", r1.Entries[0].CounterDelta)
	}
	if r1.Entries[1].GaugeValue != 2.5 {
		t.Fatalf("baseline gauge = %v, want 2.5", r1.Entries[1].GaugeValue)
	}
	he := r1.Entries[2]
	if he.CountDelta != 2 || he.SumDelta != 3.05 ||
		len(he.BucketDeltas) != 3 || he.BucketDeltas[0] != 1 || he.BucketDeltas[2] != 1 {
		t.Fatalf("baseline histogram = %+v", he)
	}

	if r2.Baseline || len(r2.Entries) != 0 {
		t.Fatalf("heartbeat report: baseline=%v entries=%d", r2.Baseline, len(r2.Entries))
	}
	if len(p2) > 8 {
		t.Fatalf("heartbeat report is %d bytes, want tiny", len(p2))
	}

	if r3.Baseline || len(r3.NewDescs) != 0 || len(r3.Entries) != 2 {
		t.Fatalf("delta report: %+v", r3)
	}
	if r3.Entries[0].ID != 0 || r3.Entries[0].CounterDelta != 3 {
		t.Fatalf("delta counter entry = %+v", r3.Entries[0])
	}
	if r3.Entries[1].ID != 2 || r3.Entries[1].CountDelta != 1 || r3.Entries[1].BucketDeltas[1] != 1 {
		t.Fatalf("delta histogram entry = %+v", r3.Entries[1])
	}
}

func TestEncoderResetReshipsAbsolutes(t *testing.T) {
	reg := obs.NewRegistry(true)
	c := reg.Counter("x_total")
	c.Add(7)
	enc := NewEncoder(reg)
	enc.Encode()
	c.Add(2)
	enc.Reset()
	p, seq := enc.Encode()
	if seq != 2 {
		t.Fatalf("seq after reset = %d, want 2 (monotonic across resets)", seq)
	}
	rep := decodeAll(t, p)[0]
	if !rep.Baseline || len(rep.Entries) != 1 || rep.Entries[0].CounterDelta != 9 {
		t.Fatalf("post-reset report = %+v", rep)
	}
}

func TestEncoderNewSeriesMidSession(t *testing.T) {
	reg := obs.NewRegistry(true)
	reg.Counter("a_total").Inc()
	enc := NewEncoder(reg)
	enc.Encode()
	reg.Counter("b_total", "k", "v").Add(4)
	p, _ := enc.Encode()
	rep, err := Decode(p, []Desc{{Kind: obs.KindCounter, Name: "a_total"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline || len(rep.NewDescs) != 1 || rep.NewDescs[1].Name != "b_total" {
		t.Fatalf("mid-session report = %+v", rep)
	}
	if rep.Entries[0].ID != 1 || rep.Entries[0].CounterDelta != 4 {
		t.Fatalf("mid-session entry = %+v", rep.Entries[0])
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	reg := obs.NewRegistry(true)
	reg.Counter("a_total").Inc()
	enc := NewEncoder(reg)
	p, _ := enc.Encode()

	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {99, 0, 1, 0},
		"truncated":    p[:len(p)-1],
		"trailing":     append(append([]byte{}, p...), 0xFF),
		"unknown kind": {Version, flagBaseline, 1, 1, 0, 9, 1, 'x', 0, 1},
	}
	for name, buf := range cases {
		if _, err := Decode(buf, nil); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
	// Non-baseline report referencing an unknown series ID.
	if _, err := Decode([]byte{Version, 0, 2, 1, 5, 1}, nil); err == nil {
		t.Error("unknown series id accepted")
	}
}

func newTestAggregator(now *time.Time, log *flightrec.Log) *Aggregator {
	return NewAggregator(Options{
		Clock:       func() time.Time { return *now },
		LagAfter:    3 * time.Second,
		SilentAfter: 9 * time.Second,
		Log:         log,
	})
}

func TestAggregatorRollupEqualsAgentSums(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	agg := newTestAggregator(&now, &flightrec.Log{})

	type ag struct {
		reg *obs.Registry
		c   *obs.Counter
		h   *obs.Histogram
		enc *Encoder
	}
	agents := map[uint32]*ag{}
	for _, id := range []uint32{1, 2, 3} {
		reg := obs.NewRegistry(true)
		a := &ag{
			reg: reg,
			c:   reg.Counter("pkts_total", "dir", "rx"),
			h:   reg.Histogram("lat_s", []float64{0.1, 1}),
		}
		a.enc = NewEncoder(reg)
		agents[id] = a
	}
	agents[1].c.Add(10)
	agents[2].c.Add(20)
	agents[3].c.Add(30)
	agents[1].h.Observe(0.05)
	agents[2].h.Observe(0.5)
	agents[3].h.Observe(5)

	flush := func() {
		for _, id := range []uint32{1, 2, 3} {
			p, _ := agents[id].enc.Encode()
			if err := agg.HandleReport(id, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	flush()
	agents[1].c.Add(1)
	agents[2].h.Observe(0.5)
	flush()

	var gotC int64
	var gotHC int64
	for _, s := range agg.Samples() {
		switch s.Name {
		case "pkts_total":
			gotC += int64(s.Value)
		case "lat_s":
			gotHC += s.Count
		}
	}
	if gotC != 61 {
		t.Fatalf("rollup pkts_total sum = %d, want 61", gotC)
	}
	if gotHC != 4 {
		t.Fatalf("rollup lat_s count = %d, want 4", gotHC)
	}

	for _, s := range agg.TotalsSamples() {
		if s.Name == "pkts_total" {
			if s.Labels["agent"] != "" {
				t.Fatalf("totals kept agent label: %v", s.Labels)
			}
			if int64(s.Value) != 61 {
				t.Fatalf("totals pkts_total = %v, want 61", s.Value)
			}
		}
		if s.Name == "lat_s" && (s.Count != 4 || s.Buckets[1] != 2) {
			t.Fatalf("totals lat_s = %+v", s)
		}
	}
}

func TestAggregatorBaselineReshipDoesNotDoubleCount(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	agg := newTestAggregator(&now, &flightrec.Log{})
	reg := obs.NewRegistry(true)
	c := reg.Counter("x_total")
	h := reg.Histogram("h_s", []float64{1})
	enc := NewEncoder(reg)

	c.Add(5)
	h.Observe(0.5)
	p, _ := enc.Encode()
	if err := agg.HandleReport(7, p); err != nil {
		t.Fatal(err)
	}
	// Send failure: encoder resets, next report re-ships absolutes.
	c.Add(2)
	h.Observe(2)
	enc.Reset()
	p, _ = enc.Encode()
	if err := agg.HandleReport(7, p); err != nil {
		t.Fatal(err)
	}
	for _, s := range agg.Samples() {
		if s.Name == "x_total" && int64(s.Value) != 7 {
			t.Fatalf("x_total = %v, want 7 (no double count)", s.Value)
		}
		if s.Name == "h_s" && (s.Count != 2 || s.Buckets[0] != 1 || s.Buckets[1] != 1) {
			t.Fatalf("h_s = %+v, want count 2", s)
		}
	}
}

func TestAggregatorStalenessTransitions(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var log flightrec.Log
	log.Enable(64)
	var transitions []string
	agg := NewAggregator(Options{
		Clock:       func() time.Time { return now },
		LagAfter:    3 * time.Second,
		SilentAfter: 9 * time.Second,
		Log:         &log,
		OnTransition: func(agent uint32, from, to State) {
			transitions = append(transitions, string(from)+">"+string(to))
		},
	})
	reg := obs.NewRegistry(true)
	reg.Counter("x_total").Inc()
	enc := NewEncoder(reg)
	p, _ := enc.Encode()
	if err := agg.HandleReport(4, p); err != nil {
		t.Fatal(err)
	}

	states := func() State { return agg.Agents()[0].State }
	agg.Tick()
	if s := states(); s != StateHealthy {
		t.Fatalf("state = %s, want healthy", s)
	}
	now = now.Add(4 * time.Second)
	agg.Tick()
	if s := states(); s != StateLagging {
		t.Fatalf("state after 4s = %s, want lagging", s)
	}
	now = now.Add(6 * time.Second)
	agg.Tick()
	if s := states(); s != StateSilent {
		t.Fatalf("state after 10s = %s, want silent", s)
	}
	// A fresh report recovers the agent on the next tick.
	p, _ = enc.Encode()
	if err := agg.HandleReport(4, p); err != nil {
		t.Fatal(err)
	}
	agg.Tick()
	if s := states(); s != StateHealthy {
		t.Fatalf("state after report = %s, want healthy", s)
	}

	want := []string{"healthy>lagging", "lagging>silent", "silent>healthy"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	var types []string
	for _, ev := range log.Events() {
		if ev.Component == flightrec.CompFleet {
			types = append(types, ev.Type)
		}
	}
	wantEv := []string{"agent_lagging", "agent_silent", "agent_recovered"}
	if len(types) != len(wantEv) {
		t.Fatalf("events = %v, want %v", types, wantEv)
	}
	for i := range wantEv {
		if types[i] != wantEv[i] {
			t.Fatalf("events = %v, want %v", types, wantEv)
		}
	}
}

func TestAggregatorSeqGapsAndStaleDrops(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	agg := newTestAggregator(&now, &flightrec.Log{})
	reg := obs.NewRegistry(true)
	c := reg.Counter("x_total")
	enc := NewEncoder(reg)

	c.Inc()
	p1, _ := enc.Encode()
	c.Inc()
	enc.Encode() // lost in transit
	c.Inc()
	p3, _ := enc.Encode()

	if err := agg.HandleReport(9, p1); err != nil {
		t.Fatal(err)
	}
	if err := agg.HandleReport(9, p3); err != nil {
		t.Fatal(err)
	}
	av := agg.Agents()[0]
	if av.Gaps != 1 || av.LastSeq != 3 {
		t.Fatalf("gaps=%d lastSeq=%d, want 1/3", av.Gaps, av.LastSeq)
	}
	// Replaying an old seq must not re-apply deltas.
	if err := agg.HandleReport(9, p3); err != nil {
		t.Fatal(err)
	}
	for _, s := range agg.Samples() {
		if s.Name == "x_total" && int64(s.Value) != 2 {
			t.Fatalf("x_total = %v, want 2 (gap lost 1, dup ignored)", s.Value)
		}
	}
}

func TestAggregatorMalformedCountsDecodeError(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	agg := newTestAggregator(&now, &flightrec.Log{})
	if err := agg.HandleReport(1, []byte{99}); err == nil {
		t.Fatal("malformed report accepted")
	}
	if v := agg.View(); v.DecodeErrors != 1 {
		t.Fatalf("decode_errors = %d, want 1", v.DecodeErrors)
	}
}

func TestFleetViewHTTP(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	agg := newTestAggregator(&now, &flightrec.Log{})
	reg := obs.NewRegistry(true)
	reg.Counter("x_total").Add(3)
	enc := NewEncoder(reg)
	p, _ := enc.Encode()
	if err := agg.HandleReport(2, p); err != nil {
		t.Fatal(err)
	}
	agg.Tick()

	rec := httptest.NewRecorder()
	agg.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	var v View
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("unmarshal /fleet: %v", err)
	}
	if len(v.Agents) != 1 || v.Agents[0].ID != 2 || v.Agents[0].State != StateHealthy {
		t.Fatalf("agents = %+v", v.Agents)
	}
	if v.States["healthy"] != 1 {
		t.Fatalf("states = %v", v.States)
	}
	found := false
	for _, s := range v.Totals {
		if s.Name == "x_total" && int64(s.Value) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("totals missing x_total=3: %+v", v.Totals)
	}
}

func TestReporterFlushAndReset(t *testing.T) {
	reg := obs.NewRegistry(true)
	c := reg.Counter("x_total")
	enc := NewEncoder(reg)

	var mu sync.Mutex
	var sent [][]byte
	fail := false
	rep := NewReporter(enc, func(p []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return errSendFailed
		}
		sent = append(sent, append([]byte(nil), p...))
		return nil
	})

	c.Add(4)
	if _, err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fail = true
	mu.Unlock()
	c.Add(2)
	if _, err := rep.Flush(); err == nil {
		t.Fatal("flush succeeded despite send failure")
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	c.Add(1)
	if _, err := rep.Flush(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sent) != 2 {
		t.Fatalf("sent %d reports, want 2", len(sent))
	}
	reps := decodeAll(t, sent...)
	if !reps[0].Baseline || reps[0].Entries[0].CounterDelta != 4 {
		t.Fatalf("first report = %+v", reps[0])
	}
	// After the failed send the session reset: the next delivered report
	// is a baseline carrying the full absolute value — nothing lost.
	if !reps[1].Baseline || reps[1].Entries[0].CounterDelta != 7 {
		t.Fatalf("post-failure report = %+v", reps[1])
	}
	if reps[1].Seq != 3 {
		t.Fatalf("post-failure seq = %d, want 3", reps[1].Seq)
	}
}

func TestReporterRunStop(t *testing.T) {
	reg := obs.NewRegistry(true)
	c := reg.Counter("x_total")
	now := time.Unix(1_700_000_000, 0)
	agg := newTestAggregator(&now, &flightrec.Log{})
	rep := NewReporter(NewEncoder(reg), func(p []byte) error {
		return agg.HandleReport(1, p)
	})
	c.Add(5)
	rep.Run(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for agg.AgentSeq(1) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Add(5)
	rep.Stop()
	// Stop's final flush must have delivered everything.
	for _, s := range agg.Samples() {
		if s.Name == "x_total" && int64(s.Value) != 10 {
			t.Fatalf("x_total = %v, want 10", s.Value)
		}
	}
	if agg.AgentSeq(1) != rep.Seq() {
		t.Fatalf("aggregator seq %d != reporter seq %d", agg.AgentSeq(1), rep.Seq())
	}
}

var errSendFailed = errSend{}

type errSend struct{}

func (errSend) Error() string { return "send failed" }
