package fleet_test

// End-to-end fleet telemetry: three real tinyleo-sat processes stream
// delta-encoded registry reports over real TCP into an in-test
// controller+aggregator. The rollup must converge to EXACT equality with
// the satellites' own /metrics.json registries, and killing one process
// must walk its health state healthy → lagging → silent with the
// matching flight events.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
	"repro/internal/southbound"
)

// satProc is one launched tinyleo-sat process.
type satProc struct {
	id      uint32
	cmd     *exec.Cmd
	metrics string // host:port of its telemetry surface
}

var telemetryLine = regexp.MustCompile(`telemetry on http://([^/]+)/metrics`)

// startSat launches one tinyleo-sat and waits for its telemetry address.
func startSat(t *testing.T, bin, ctlAddr string, id uint32) *satProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-controller", ctlAddr,
		"-id", strconv.FormatUint(uint64(id), 10),
		"-fleet-interval", "50ms",
		"-metrics-addr", "127.0.0.1:0",
		"-run-for", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start sat %d: %v", id, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := telemetryLine.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addr <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case a := <-addr:
		return &satProc{id: id, cmd: cmd, metrics: a}
	case <-time.After(20 * time.Second):
		t.Fatalf("sat %d never announced its telemetry address", id)
		return nil
	}
}

// fetchSeries reads a satellite's /metrics.json snapshot.
func fetchSeries(t *testing.T, addr string) []obs.Sample {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Series []obs.Sample `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Series
}

// seriesKey canonicalizes a sample's identity (name + sorted labels).
func seriesKey(s *obs.Sample) string {
	key := s.Name
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		key += "|" + k + "=" + s.Labels[k]
	}
	return key
}

// sumSeries merges samples across satellites the same way the aggregator
// totals do: counters and gauges add, histograms add count/sum/buckets.
func sumSeries(all [][]obs.Sample) map[string]obs.Sample {
	out := map[string]obs.Sample{}
	for _, samples := range all {
		for _, s := range samples {
			key := seriesKey(&s)
			cur, ok := out[key]
			if !ok {
				s.Buckets = append([]int64(nil), s.Buckets...)
				out[key] = s
				continue
			}
			cur.Value += s.Value
			cur.Count += s.Count
			cur.Sum += s.Sum
			for i, b := range s.Buckets {
				if i < len(cur.Buckets) {
					cur.Buckets[i] += b
				}
			}
			out[key] = cur
		}
	}
	return out
}

// rollupMatches compares the aggregator's fleet totals against the
// ground-truth sums, exactly. Meta series the satellites don't export
// (tinyleo_fleet_*) are skipped.
func rollupMatches(agg *fleet.Aggregator, want map[string]obs.Sample) (bool, string) {
	got := 0
	for _, s := range agg.TotalsSamples() {
		if strings.HasPrefix(s.Name, "tinyleo_fleet_") {
			continue
		}
		got++
		w, ok := want[seriesKey(&s)]
		if !ok {
			return false, fmt.Sprintf("rollup has unexpected series %s", seriesKey(&s))
		}
		if s.Value != w.Value || s.Count != w.Count || s.Sum != w.Sum {
			return false, fmt.Sprintf("series %s: rollup value=%v count=%d sum=%v, want value=%v count=%d sum=%v",
				seriesKey(&s), s.Value, s.Count, s.Sum, w.Value, w.Count, w.Sum)
		}
		for i, b := range s.Buckets {
			if i >= len(w.Buckets) || w.Buckets[i] != b {
				return false, fmt.Sprintf("series %s: bucket %d mismatch", seriesKey(&s), i)
			}
		}
	}
	if got != len(want) {
		return false, fmt.Sprintf("rollup has %d series, ground truth has %d", got, len(want))
	}
	return true, ""
}

func TestFleetEndToEndThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real tinyleo-sat processes")
	}
	bin := filepath.Join(t.TempDir(), "tinyleo-sat")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/tinyleo-sat")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build tinyleo-sat: %v\n%s", err, out)
	}

	ctl, err := southbound.ListenController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	var log flightrec.Log
	log.Enable(256)
	var mu sync.Mutex
	transitions := map[uint32][]fleet.State{}
	agg := fleet.NewAggregator(fleet.Options{
		LagAfter:    300 * time.Millisecond,
		SilentAfter: 900 * time.Millisecond,
		Log:         &log,
		OnTransition: func(agent uint32, from, to fleet.State) {
			mu.Lock()
			transitions[agent] = append(transitions[agent], to)
			mu.Unlock()
		},
	})
	ctl.OnTelemetry = func(sat uint32, payload []byte) {
		if err := agg.HandleReport(sat, payload); err != nil {
			t.Errorf("telemetry from sat %d: %v", sat, err)
		}
	}
	stopTick := make(chan struct{})
	defer close(stopTick)
	go func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-tick.C:
				agg.Tick()
			}
		}
	}()

	sats := make([]*satProc, 0, 3)
	for id := uint32(1); id <= 3; id++ {
		sats = append(sats, startSat(t, bin, ctl.Addr(), id))
	}

	// Convergence: the controller-side rollup must become EXACTLY the sum
	// of the three satellites' own registries. The registries are static
	// between commands (and no commands are sent), so once every agent's
	// baseline lands the equality is stable.
	deadline := time.Now().Add(20 * time.Second)
	var lastWhy string
	for {
		all := make([][]obs.Sample, 0, len(sats))
		for _, s := range sats {
			all = append(all, fetchSeries(t, s.metrics))
		}
		ok, why := rollupMatches(agg, sumSeries(all))
		if ok {
			break
		}
		lastWhy = why
		if time.Now().After(deadline) {
			t.Fatalf("rollup never converged to the per-sat registry sums: %s", lastWhy)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, av := range agg.Agents() {
		if av.State != fleet.StateHealthy {
			t.Fatalf("agent %d is %s before any fault", av.ID, av.State)
		}
		if av.Reports == 0 || av.LastSeq == 0 {
			t.Fatalf("agent %d converged without reports: %+v", av.ID, av)
		}
	}

	// Kill sat 2 and let its silence age it through the staleness ladder.
	victim := sats[1]
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = victim.cmd.Process.Wait()
	deadline = time.Now().Add(10 * time.Second)
	for {
		views := agg.Agents()
		var vs fleet.State
		for _, av := range views {
			if av.ID == victim.id {
				vs = av.State
			}
		}
		if vs == fleet.StateSilent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed sat %d never went silent: %+v", victim.id, views)
		}
		time.Sleep(25 * time.Millisecond)
	}

	mu.Lock()
	ladder := append([]fleet.State(nil), transitions[victim.id]...)
	mu.Unlock()
	want := []fleet.State{fleet.StateLagging, fleet.StateSilent}
	if len(ladder) != len(want) {
		t.Fatalf("victim transitions = %v, want %v", ladder, want)
	}
	for i := range want {
		if ladder[i] != want[i] {
			t.Fatalf("victim transitions = %v, want %v", ladder, want)
		}
	}
	// The flight recorder saw the same ladder as typed events.
	var types []string
	for _, ev := range log.Events() {
		if ev.Component == flightrec.CompFleet && ev.Attr("agent") == strconv.FormatUint(uint64(victim.id), 10) {
			types = append(types, ev.Type)
		}
	}
	if len(types) != 2 || types[0] != "agent_lagging" || types[1] != "agent_silent" {
		t.Fatalf("flight events for victim = %v, want [agent_lagging agent_silent]", types)
	}
	// The survivors stay healthy throughout.
	for _, av := range agg.Agents() {
		if av.ID != victim.id && av.State != fleet.StateHealthy {
			t.Fatalf("surviving agent %d degraded to %s", av.ID, av.State)
		}
	}
}
