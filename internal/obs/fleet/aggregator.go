package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// State is an agent's report-staleness health state.
type State string

// Staleness states, ordered healthy → lagging → silent.
const (
	StateHealthy State = "healthy"
	StateLagging State = "lagging"
	StateSilent  State = "silent"
)

// Default staleness thresholds (interactive use; chaos campaigns inject
// virtual-clock-scaled values).
const (
	DefaultLagAfter    = 3 * time.Second
	DefaultSilentAfter = 10 * time.Second
)

// Options parameterizes an Aggregator.
type Options struct {
	// Clock supplies "now" for staleness tracking (default time.Now). Chaos
	// campaigns pass the virtual clock so health transitions are
	// byte-reproducible.
	Clock func() time.Time
	// LagAfter is the silence duration after which an agent is lagging
	// (default DefaultLagAfter).
	LagAfter time.Duration
	// SilentAfter is the silence duration after which an agent is silent
	// (default DefaultSilentAfter).
	SilentAfter time.Duration
	// Log receives agent_lagging/agent_silent/agent_recovered flight events
	// (default: the process-wide flightrec log).
	Log *flightrec.Log
	// OnTransition, when set, is called (from Tick, in agent-ID order)
	// for every state change.
	OnTransition func(agent uint32, from, to State)
}

// instrument is a resolved handle into the rollup registry.
type instrument struct {
	kind obs.Kind
	c    *obs.Counter
	g    *obs.Gauge
	h    *obs.Histogram
}

// seriesState is one agent series' persistent aggregation state: the
// resolved rollup instrument plus the accumulated agent-absolute values.
// It outlives encoder sessions — a baseline re-ship after a reconnect is
// applied as (absolute - accumulated), so nothing double counts.
type seriesState struct {
	desc    Desc
	inst    instrument
	counter int64
	histCnt int64
	histSum float64
	histBkt []int64
}

// agentState is everything the aggregator tracks per reporting agent.
type agentState struct {
	id uint32
	// dict maps session series IDs to series state; reset on baselines.
	dict []*seriesState
	// series is the persistent per-series state, keyed by canonical
	// series identity (name + sorted labels).
	series map[string]*seriesState

	state      State
	lastReport time.Time
	lastSeq    uint64
	reports    uint64
	bytes      uint64
	gaps       uint64

	reportsC *obs.Counter
	bytesC   *obs.Counter
}

// descKey is the canonical identity of a described series.
func descKey(d *Desc) string {
	key := d.Name
	for _, s := range d.Labels {
		key += "\x00" + s
	}
	return key
}

// Aggregator merges per-agent fleet reports into one always-enabled
// rollup registry (every series relabeled with agent=<id>) and tracks
// per-agent report staleness. HandleReport is called from southbound
// connection goroutines; Tick from a single clock goroutine — all state
// transitions happen in Tick, in agent-ID order, so campaigns driving a
// virtual clock get deterministic event sequences.
type Aggregator struct {
	clock        func() time.Time
	lagAfter     time.Duration
	silentAfter  time.Duration
	log          *flightrec.Log
	onTransition func(uint32, State, State)

	rollup *obs.Registry

	mu sync.Mutex
	//tinyleo:guardedby mu
	agents map[uint32]*agentState
	//tinyleo:guardedby mu
	kinds map[string]obs.Kind // rollup name → kind, guards kind clashes
	// decodeErrs counts reports dropped as malformed.
	decodeErrs *obs.Counter
	agentsG    *obs.Gauge
	silentG    *obs.Gauge
}

// NewAggregator creates an aggregator with the given options.
func NewAggregator(o Options) *Aggregator {
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.LagAfter <= 0 {
		o.LagAfter = DefaultLagAfter
	}
	if o.SilentAfter <= o.LagAfter {
		o.SilentAfter = DefaultSilentAfter
		if o.SilentAfter <= o.LagAfter {
			o.SilentAfter = 3 * o.LagAfter
		}
	}
	if o.Log == nil {
		o.Log = flightrec.DefaultLog()
	}
	a := &Aggregator{
		clock:        o.Clock,
		lagAfter:     o.LagAfter,
		silentAfter:  o.SilentAfter,
		log:          o.Log,
		onTransition: o.OnTransition,
		rollup:       obs.NewRegistry(true),
		agents:       map[uint32]*agentState{},
		kinds:        map[string]obs.Kind{},
	}
	a.decodeErrs = a.rollup.Counter("tinyleo_fleet_decode_errors_total")
	a.agentsG = a.rollup.Gauge("tinyleo_fleet_agents")
	a.silentG = a.rollup.Gauge("tinyleo_fleet_agents_silent")
	a.kinds["tinyleo_fleet_decode_errors_total"] = obs.KindCounter
	a.kinds["tinyleo_fleet_agents"] = obs.KindGauge
	a.kinds["tinyleo_fleet_agents_silent"] = obs.KindGauge
	a.kinds["tinyleo_fleet_reports_total"] = obs.KindCounter
	a.kinds["tinyleo_fleet_report_bytes_total"] = obs.KindCounter
	return a
}

// Registry returns the rollup registry (always enabled), for merging into
// the controller's telemetry surface and SLO engine.
func (a *Aggregator) Registry() *obs.Registry { return a.rollup }

// resolveLocked returns the rollup instrument for desc under agent id,
// or an empty instrument when the descriptor clashes with an existing
// series kind (the report entry is then skipped, not fatal). Callers
// hold a.mu.
func (a *Aggregator) resolveLocked(id uint32, d Desc) instrument {
	if k, ok := a.kinds[d.Name]; ok && k != d.Kind {
		return instrument{}
	}
	a.kinds[d.Name] = d.Kind
	kvs := make([]string, 0, len(d.Labels)+2)
	kvs = append(kvs, d.Labels...)
	kvs = append(kvs, "agent", strconv.FormatUint(uint64(id), 10))
	in := instrument{kind: d.Kind}
	switch d.Kind {
	case obs.KindCounter:
		in.c = a.rollup.Counter(d.Name, kvs...)
	case obs.KindGauge:
		in.g = a.rollup.Gauge(d.Name, kvs...)
	case obs.KindHistogram:
		in.h = a.rollup.Histogram(d.Name, d.Bounds, kvs...)
	}
	return in
}

// HandleReport decodes and merges one agent report. It is the
// (*southbound.Controller).OnTelemetry callback. Malformed reports are
// counted and dropped; the error return is for tests and logs.
func (a *Aggregator) HandleReport(agent uint32, payload []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.agents[agent]
	if st == nil {
		agl := strconv.FormatUint(uint64(agent), 10)
		st = &agentState{
			id:       agent,
			state:    StateHealthy,
			series:   map[string]*seriesState{},
			reportsC: a.rollup.Counter("tinyleo_fleet_reports_total", "agent", agl),
			bytesC:   a.rollup.Counter("tinyleo_fleet_report_bytes_total", "agent", agl),
		}
		a.agents[agent] = st
	}
	dict := make([]Desc, len(st.dict))
	for i, ss := range st.dict {
		dict[i] = ss.desc
	}
	rep, err := Decode(payload, dict)
	if err != nil {
		a.decodeErrs.Inc()
		return fmt.Errorf("fleet: agent %d report: %w", agent, err)
	}
	if rep.Baseline {
		// Session restart: fresh session dictionary. Per-series state in
		// st.series persists, so re-shipped absolutes rebase instead of
		// double counting.
		st.dict = nil
	} else if rep.Seq <= st.lastSeq {
		// Stale or duplicate delivery: deltas were already applied.
		st.lastReport = a.clock()
		return nil
	}
	if st.lastSeq != 0 && rep.Seq > st.lastSeq+1 {
		st.gaps += rep.Seq - st.lastSeq - 1
	}
	st.lastSeq = rep.Seq
	st.lastReport = a.clock()
	st.reports++
	st.bytes += uint64(len(payload))
	st.reportsC.Inc()
	st.bytesC.Add(int64(len(payload)))

	// Grow the session dictionary with this report's new descriptors (IDs
	// are dense and ordered by Decode's contract), binding each to its
	// persistent series state.
	for id := len(st.dict); ; id++ {
		d, ok := rep.NewDescs[id]
		if !ok {
			break
		}
		key := descKey(&d)
		ss := st.series[key]
		if ss == nil {
			ss = &seriesState{
				desc:    d,
				inst:    a.resolveLocked(agent, d),
				histBkt: make([]int64, len(d.Bounds)+1),
			}
			st.series[key] = ss
		}
		st.dict = append(st.dict, ss)
	}
	for _, e := range rep.Entries {
		if e.ID < 0 || e.ID >= len(st.dict) {
			continue
		}
		ss := st.dict[e.ID]
		switch ss.inst.kind {
		case obs.KindCounter:
			d := e.CounterDelta
			if rep.Baseline {
				// Baseline carries absolutes; apply only what we have not
				// already merged (an agent restart, absolute < accumulated,
				// contributes nothing — rollup counters are monotonic).
				d = e.CounterDelta - ss.counter
				ss.counter = e.CounterDelta
				if d < 0 {
					continue
				}
			} else {
				ss.counter += d
			}
			ss.inst.c.Add(d)
		case obs.KindGauge:
			ss.inst.g.Set(e.GaugeValue)
		case obs.KindHistogram:
			dc, ds, db := e.CountDelta, e.SumDelta, e.BucketDeltas
			if rep.Baseline {
				dc -= ss.histCnt
				ds -= ss.histSum
				if dc < 0 || len(db) != len(ss.histBkt) {
					ss.histCnt, ss.histSum = e.CountDelta, e.SumDelta
					copy(ss.histBkt, db)
					continue
				}
				rebased := make([]int64, len(db))
				for i := range db {
					rebased[i] = db[i] - ss.histBkt[i]
				}
				ss.histCnt, ss.histSum = e.CountDelta, e.SumDelta
				copy(ss.histBkt, e.BucketDeltas)
				db = rebased
			} else {
				ss.histCnt += dc
				ss.histSum += ds
				for i := range db {
					if i < len(ss.histBkt) {
						ss.histBkt[i] += db[i]
					}
				}
			}
			if ss.inst.h != nil {
				ss.inst.h.Merge(dc, ds, db)
			}
		}
	}
	return nil
}

// stateFor maps a silence duration to a health state.
func (a *Aggregator) stateFor(silence time.Duration) State {
	switch {
	case silence >= a.silentAfter:
		return StateSilent
	case silence >= a.lagAfter:
		return StateLagging
	default:
		return StateHealthy
	}
}

// Tick advances staleness tracking to the current clock reading: every
// agent's state is recomputed from its last report age, transitions fire
// flight events and the OnTransition hook in agent-ID order, and the
// fleet gauges refresh. Call it from exactly one goroutine (a ticker, or
// the chaos engine loop).
func (a *Aggregator) Tick() {
	now := a.clock()
	type transition struct {
		id       uint32
		from, to State
	}
	var trans []transition
	a.mu.Lock()
	ids := make([]uint32, 0, len(a.agents))
	for id := range a.agents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	silent := 0
	for _, id := range ids {
		st := a.agents[id]
		next := a.stateFor(now.Sub(st.lastReport))
		if next != st.state {
			trans = append(trans, transition{id: id, from: st.state, to: next})
			st.state = next
		}
		if st.state == StateSilent {
			silent++
		}
	}
	a.agentsG.Set(float64(len(ids)))
	a.silentG.Set(float64(silent))
	a.mu.Unlock()
	for _, t := range trans {
		typ := "agent_" + string(t.to)
		if t.to == StateHealthy {
			typ = "agent_recovered"
		}
		if a.log.Enabled() {
			a.log.Emit(flightrec.CompFleet, typ,
				"agent", strconv.FormatUint(uint64(t.id), 10),
				"from", string(t.from), "to", string(t.to))
		}
		if a.onTransition != nil {
			a.onTransition(t.id, t.from, t.to)
		}
	}
}

// AgentSeq returns the last report sequence number seen from agent (0 if
// the agent has never reported).
func (a *Aggregator) AgentSeq(agent uint32) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.agents[agent]; st != nil {
		return st.lastSeq
	}
	return 0
}

// AgentView is one agent's health row in the /fleet view.
type AgentView struct {
	ID      uint32 `json:"id"`
	State   State  `json:"state"`
	LastSeq uint64 `json:"last_seq"`
	Reports uint64 `json:"reports"`
	Bytes   uint64 `json:"bytes"`
	Gaps    uint64 `json:"gaps"`
	// SilenceMS is how long ago the last report arrived.
	SilenceMS int64 `json:"silence_ms"`
	Series    int   `json:"series"`
}

// View is the /fleet JSON document.
type View struct {
	Agents       []AgentView    `json:"agents"`
	States       map[string]int `json:"states"`
	DecodeErrors int64          `json:"decode_errors"`
	// Totals are the fleet-wide aggregates: rollup series summed across
	// agents (the agent label stripped), sorted by name then labels.
	Totals []obs.Sample `json:"totals"`
}

// Agents returns per-agent health rows sorted by agent ID.
func (a *Aggregator) Agents() []AgentView {
	now := a.clock()
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AgentView, 0, len(a.agents))
	for _, st := range a.agents {
		out = append(out, AgentView{
			ID:        st.id,
			State:     st.state,
			LastSeq:   st.lastSeq,
			Reports:   st.reports,
			Bytes:     st.bytes,
			Gaps:      st.gaps,
			SilenceMS: now.Sub(st.lastReport).Milliseconds(),
			Series:    len(st.dict),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Samples returns the rollup registry's series (per-agent labels intact)
// sorted by name then labels — a deterministic snapshot independent of
// report arrival order.
func (a *Aggregator) Samples() []obs.Sample {
	out := obs.Snapshot(a.rollup)
	sortSamples(out)
	return out
}

// TotalsSamples sums the rollup across agents: the agent label is
// stripped and equal series merged (counters and gauges add; histograms
// add count/sum/buckets when bounds match). Sorted by name then labels.
func (a *Aggregator) TotalsSamples() []obs.Sample {
	in := obs.Snapshot(a.rollup)
	idx := map[string]int{}
	var out []obs.Sample
	for _, s := range in {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k == "agent" {
				continue
			}
			labels[k] = v
		}
		if len(labels) == 0 {
			labels = nil
		}
		t := s
		t.Labels = labels
		key := sampleKey(&t)
		i, ok := idx[key]
		if !ok {
			t.Bounds = append([]float64(nil), s.Bounds...)
			t.Buckets = append([]int64(nil), s.Buckets...)
			idx[key] = len(out)
			out = append(out, t)
			continue
		}
		dst := &out[i]
		switch s.Kind {
		case obs.KindCounter, obs.KindGauge:
			dst.Value += s.Value
		case obs.KindHistogram:
			if len(dst.Buckets) != len(s.Buckets) {
				continue
			}
			dst.Count += s.Count
			dst.Sum += s.Sum
			for j, b := range s.Buckets {
				dst.Buckets[j] += b
			}
		}
	}
	sortSamples(out)
	return out
}

// View assembles the full /fleet document.
func (a *Aggregator) View() View {
	v := View{
		Agents: a.Agents(),
		States: map[string]int{},
		Totals: a.TotalsSamples(),
	}
	for _, ag := range v.Agents {
		v.States[string(ag.State)]++
	}
	a.mu.Lock()
	v.DecodeErrors = a.decodeErrs.Value()
	a.mu.Unlock()
	return v
}

// ServeHTTP serves the /fleet JSON document.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(a.View())
}

// RegisterHTTP mounts this aggregator at /fleet on the obs telemetry
// surface (replacing any previous aggregator).
func (a *Aggregator) RegisterHTTP() {
	obs.RegisterHandler("/fleet", a)
}

func sampleKey(s *obs.Sample) string {
	key := s.Name
	if len(s.Labels) > 0 {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			key += "\x00" + k + "\x00" + s.Labels[k]
		}
	}
	return key
}

func sortSamples(ss []obs.Sample) {
	sort.SliceStable(ss, func(i, j int) bool {
		return sampleKey(&ss[i]) < sampleKey(&ss[j])
	})
}
