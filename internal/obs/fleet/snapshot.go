package fleet

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Snapshot artifact helpers: the /fleet document as a per-run file. The
// controller writes one on exit (-fleet-out), `tinyleo-ctl fleet
// snapshot` fetches one from a live controller, and the testground
// collector reads one back to score a finished campaign.

// WriteFile writes the view as indented JSON — the same document /fleet
// serves and `tinyleo-ctl fleet snapshot` saves.
func (v *View) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteSnapshotFile dumps the aggregator's current view with WriteFile.
func (a *Aggregator) WriteSnapshotFile(path string) error {
	v := a.View()
	return v.WriteFile(path)
}

// ReadViewFile loads a snapshot written by WriteFile (or fetched from
// /fleet).
func ReadViewFile(path string) (*View, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v View
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("fleet: snapshot %s: %w", path, err)
	}
	return &v, nil
}

// MetaSamples derives fleet-health gauges and counters from the view's
// per-agent rows, mirroring the tinyleo_fleet_* series a live aggregator
// exports — so a snapshot read back from disk can be scored with the
// same SLO rule names a live run uses.
func (v *View) MetaSamples() []obs.Sample {
	var reports, gaps uint64
	silent := 0
	for _, a := range v.Agents {
		reports += a.Reports
		gaps += a.Gaps
		if a.State == StateSilent {
			silent++
		}
	}
	return []obs.Sample{
		{Name: "tinyleo_fleet_agents", Kind: obs.KindGauge, Value: float64(len(v.Agents))},
		{Name: "tinyleo_fleet_agents_silent", Kind: obs.KindGauge, Value: float64(silent)},
		{Name: "tinyleo_fleet_reports_total", Kind: obs.KindCounter, Value: float64(reports)},
		{Name: "tinyleo_fleet_gaps_total", Kind: obs.KindCounter, Value: float64(gaps)},
		{Name: "tinyleo_fleet_decode_errors_total", Kind: obs.KindCounter, Value: float64(v.DecodeErrors)},
	}
}

// SLOSamples is the sample set SLO rules are evaluated against when
// scoring a snapshot: the fleet-wide totals plus whichever derived meta
// series the totals don't already carry. A live aggregator exports the
// tinyleo_fleet_* meta series in its rollup registry, so they usually
// arrive via Totals; the derived copies only fill in for snapshots
// assembled another way (never both, or counter sums would double).
func (v *View) SLOSamples() []obs.Sample {
	have := make(map[string]bool, len(v.Totals))
	for _, s := range v.Totals {
		have[s.Name] = true
	}
	out := append([]obs.Sample(nil), v.Totals...)
	for _, s := range v.MetaSamples() {
		if !have[s.Name] {
			out = append(out, s)
		}
	}
	return out
}
