package demand

// City is an entry in the embedded world-city gazetteer used to synthesize
// spatially uneven demand (substitute for the paper's proprietary
// Starlink/Cloudflare customer-density measurements; see DESIGN.md). Pop is
// the approximate metro population in millions — only relative weights
// matter to the synthesizer.
type City struct {
	Name     string
	Lat, Lon float64
	Pop      float64 // millions, approximate metro population
	TZOffset float64 // hours from UTC, for the diurnal activity model
}

// Cities is a coarse gazetteer of ~160 large metropolitan areas. Positions
// are rounded to ~0.1°; that is far finer than the 4° demand cells.
var Cities = []City{
	// North America
	{"New York", 40.7, -74.0, 19.8, -5}, {"Los Angeles", 34.1, -118.2, 13.2, -8},
	{"Chicago", 41.9, -87.6, 9.5, -6}, {"Dallas", 32.8, -96.8, 7.6, -6},
	{"Houston", 29.8, -95.4, 7.1, -6}, {"Toronto", 43.7, -79.4, 6.4, -5},
	{"Miami", 25.8, -80.2, 6.1, -5}, {"Atlanta", 33.7, -84.4, 6.1, -5},
	{"Philadelphia", 40.0, -75.2, 6.2, -5}, {"Washington", 38.9, -77.0, 6.3, -5},
	{"Phoenix", 33.4, -112.1, 4.9, -7}, {"Boston", 42.4, -71.1, 4.9, -5},
	{"San Francisco", 37.8, -122.4, 4.7, -8}, {"Seattle", 47.6, -122.3, 4.0, -8},
	{"Detroit", 42.3, -83.0, 4.3, -5}, {"San Diego", 32.7, -117.2, 3.3, -8},
	{"Minneapolis", 44.98, -93.3, 3.7, -6}, {"Denver", 39.7, -105.0, 3.0, -7},
	{"Montreal", 45.5, -73.6, 4.3, -5}, {"Vancouver", 49.3, -123.1, 2.6, -8},
	{"St. Louis", 38.6, -90.2, 2.8, -6}, {"Tampa", 28.0, -82.5, 3.2, -5},
	{"Mexico City", 19.4, -99.1, 21.8, -6}, {"Guadalajara", 20.7, -103.3, 5.3, -6},
	{"Monterrey", 25.7, -100.3, 5.3, -6}, {"Havana", 23.1, -82.4, 2.1, -5},
	{"Guatemala City", 14.6, -90.5, 3.0, -6}, {"San Juan", 18.4, -66.1, 2.4, -4},
	// South America
	{"São Paulo", -23.6, -46.6, 22.4, -3}, {"Rio de Janeiro", -22.9, -43.2, 13.6, -3},
	{"Buenos Aires", -34.6, -58.4, 15.4, -3}, {"Lima", -12.0, -77.0, 11.2, -5},
	{"Bogotá", 4.7, -74.1, 11.3, -5}, {"Santiago", -33.5, -70.7, 6.9, -4},
	{"Belo Horizonte", -19.9, -43.9, 6.1, -3}, {"Brasília", -15.8, -47.9, 4.8, -3},
	{"Caracas", 10.5, -66.9, 2.9, -4}, {"Medellín", 6.2, -75.6, 4.1, -5},
	{"Porto Alegre", -30.0, -51.2, 4.2, -3}, {"Recife", -8.1, -34.9, 4.2, -3},
	{"Salvador", -12.97, -38.5, 3.9, -3}, {"Fortaleza", -3.7, -38.5, 4.1, -3},
	{"Quito", -0.2, -78.5, 2.0, -5}, {"Montevideo", -34.9, -56.2, 1.8, -3},
	{"Asunción", -25.3, -57.6, 2.3, -4}, {"Guayaquil", -2.2, -79.9, 3.1, -5},
	{"La Paz", -16.5, -68.1, 1.9, -4}, {"Córdoba", -31.4, -64.2, 1.6, -3},
	// Europe
	{"London", 51.5, -0.1, 14.8, 0}, {"Paris", 48.9, 2.4, 13.0, 1},
	{"Madrid", 40.4, -3.7, 6.7, 1}, {"Barcelona", 41.4, 2.2, 5.6, 1},
	{"Berlin", 52.5, 13.4, 6.1, 1}, {"Rome", 41.9, 12.5, 4.3, 1},
	{"Milan", 45.5, 9.2, 5.3, 1}, {"Amsterdam", 52.4, 4.9, 2.8, 1},
	{"Brussels", 50.9, 4.4, 2.6, 1}, {"Vienna", 48.2, 16.4, 2.9, 1},
	{"Munich", 48.1, 11.6, 2.9, 1}, {"Hamburg", 53.6, 10.0, 2.7, 1},
	{"Warsaw", 52.2, 21.0, 3.1, 1}, {"Budapest", 47.5, 19.0, 2.9, 1},
	{"Lisbon", 38.7, -9.1, 2.9, 0}, {"Dublin", 53.3, -6.3, 2.0, 0},
	{"Stockholm", 59.3, 18.1, 2.4, 1}, {"Copenhagen", 55.7, 12.6, 2.1, 1},
	{"Oslo", 59.9, 10.8, 1.6, 1}, {"Helsinki", 60.2, 24.9, 1.5, 2},
	{"Athens", 38.0, 23.7, 3.2, 2}, {"Bucharest", 44.4, 26.1, 2.3, 2},
	{"Prague", 50.1, 14.4, 2.2, 1}, {"Zurich", 47.4, 8.5, 1.4, 1},
	{"Kyiv", 50.5, 30.5, 3.0, 2}, {"Istanbul", 41.0, 29.0, 15.8, 3},
	{"Moscow", 55.8, 37.6, 12.6, 3}, {"St. Petersburg", 59.9, 30.3, 5.5, 3},
	// Africa
	{"Lagos", 6.5, 3.4, 15.9, 1}, {"Cairo", 30.0, 31.2, 22.2, 2},
	{"Kinshasa", -4.3, 15.3, 16.3, 1}, {"Johannesburg", -26.2, 28.0, 10.1, 2},
	{"Nairobi", -1.3, 36.8, 5.5, 3}, {"Addis Ababa", 9.0, 38.7, 5.4, 3},
	{"Dar es Salaam", -6.8, 39.3, 7.4, 3}, {"Casablanca", 33.6, -7.6, 3.8, 0},
	{"Algiers", 36.8, 3.1, 2.9, 1}, {"Accra", 5.6, -0.2, 2.6, 0},
	{"Cape Town", -33.9, 18.4, 4.8, 2}, {"Abidjan", 5.3, -4.0, 5.6, 0},
	{"Kano", 12.0, 8.5, 4.4, 1}, {"Luanda", -8.8, 13.2, 9.0, 1},
	{"Khartoum", 15.6, 32.5, 6.3, 2}, {"Dakar", 14.7, -17.5, 3.3, 0},
	{"Tunis", 36.8, 10.2, 2.4, 1}, {"Kampala", 0.3, 32.6, 3.7, 3},
	// Middle East / Central Asia
	{"Tehran", 35.7, 51.4, 9.5, 3.5}, {"Baghdad", 33.3, 44.4, 7.5, 3},
	{"Riyadh", 24.7, 46.7, 7.7, 3}, {"Dubai", 25.2, 55.3, 3.6, 4},
	{"Jeddah", 21.5, 39.2, 4.9, 3}, {"Tel Aviv", 32.1, 34.8, 4.4, 2},
	{"Amman", 32.0, 35.9, 2.2, 2}, {"Kuwait City", 29.4, 48.0, 3.2, 3},
	{"Tashkent", 41.3, 69.2, 2.6, 5}, {"Almaty", 43.2, 76.9, 2.1, 6},
	{"Ankara", 39.9, 32.9, 5.7, 3}, {"Kabul", 34.5, 69.2, 4.6, 4.5},
	// South Asia
	{"Delhi", 28.7, 77.1, 32.9, 5.5}, {"Mumbai", 19.1, 72.9, 21.3, 5.5},
	{"Kolkata", 22.6, 88.4, 15.2, 5.5}, {"Bangalore", 13.0, 77.6, 13.6, 5.5},
	{"Chennai", 13.1, 80.3, 11.8, 5.5}, {"Hyderabad", 17.4, 78.5, 10.8, 5.5},
	{"Ahmedabad", 23.0, 72.6, 8.6, 5.5}, {"Pune", 18.5, 73.9, 7.2, 5.5},
	{"Karachi", 24.9, 67.0, 17.2, 5}, {"Lahore", 31.6, 74.3, 13.5, 5},
	{"Dhaka", 23.8, 90.4, 23.2, 6}, {"Chittagong", 22.4, 91.8, 5.4, 6},
	{"Colombo", 6.9, 79.9, 2.4, 5.5}, {"Kathmandu", 27.7, 85.3, 1.6, 5.75},
	// East / Southeast Asia
	{"Tokyo", 35.7, 139.7, 37.3, 9}, {"Osaka", 34.7, 135.5, 19.1, 9},
	{"Nagoya", 35.2, 136.9, 9.5, 9}, {"Seoul", 37.6, 127.0, 25.5, 9},
	{"Busan", 35.2, 129.1, 3.4, 9}, {"Shanghai", 31.2, 121.5, 28.5, 8},
	{"Beijing", 39.9, 116.4, 21.3, 8}, {"Guangzhou", 23.1, 113.3, 19.0, 8},
	{"Shenzhen", 22.5, 114.1, 17.6, 8}, {"Chengdu", 30.7, 104.1, 16.9, 8},
	{"Chongqing", 29.6, 106.6, 16.9, 8}, {"Tianjin", 39.1, 117.2, 13.8, 8},
	{"Wuhan", 30.6, 114.3, 11.2, 8}, {"Xi'an", 34.3, 108.9, 9.2, 8},
	{"Hangzhou", 30.3, 120.2, 10.7, 8}, {"Hong Kong", 22.3, 114.2, 7.5, 8},
	{"Taipei", 25.0, 121.6, 7.0, 8}, {"Manila", 14.6, 121.0, 14.4, 8},
	{"Jakarta", -6.2, 106.8, 11.2, 7}, {"Surabaya", -7.3, 112.7, 3.0, 7},
	{"Bandung", -6.9, 107.6, 2.7, 7}, {"Bangkok", 13.8, 100.5, 11.1, 7},
	{"Ho Chi Minh City", 10.8, 106.7, 9.3, 7}, {"Hanoi", 21.0, 105.9, 5.3, 7},
	{"Singapore", 1.35, 103.8, 6.0, 8}, {"Kuala Lumpur", 3.1, 101.7, 8.4, 8},
	{"Yangon", 16.8, 96.2, 5.6, 6.5}, {"Phnom Penh", 11.6, 104.9, 2.3, 7},
	// Oceania
	{"Sydney", -33.9, 151.2, 5.4, 10}, {"Melbourne", -37.8, 145.0, 5.2, 10},
	{"Brisbane", -27.5, 153.0, 2.6, 10}, {"Perth", -32.0, 115.9, 2.1, 8},
	{"Auckland", -36.8, 174.8, 1.7, 12}, {"Adelaide", -34.9, 138.6, 1.4, 9.5},
	// High-latitude / remote (small but strategically placed for coverage)
	{"Anchorage", 61.2, -149.9, 0.4, -9}, {"Reykjavík", 64.1, -21.9, 0.2, 0},
	{"Nuuk", 64.2, -51.7, 0.02, -3}, {"Tromsø", 69.6, 18.9, 0.08, 1},
	{"Murmansk", 69.0, 33.1, 0.27, 3}, {"Yellowknife", 62.5, -114.4, 0.02, -7},
	{"Ushuaia", -54.8, -68.3, 0.06, -3}, {"Punta Arenas", -53.2, -70.9, 0.13, -4},
	{"Honolulu", 21.3, -157.9, 1.0, -10}, {"Suva", -18.1, 178.4, 0.2, 12},
	{"Papeete", -17.5, -149.6, 0.14, -10}, {"Norilsk", 69.3, 88.2, 0.18, 7},
}

// TotalCityPop returns the summed city weights (millions).
func TotalCityPop() float64 {
	s := 0.0
	for _, c := range Cities {
		s += c.Pop
	}
	return s
}
