package demand

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
)

func testOpts() ScenarioOptions {
	return ScenarioOptions{Grid: geo.MustGrid(10), Slots: 8, SlotSeconds: 900}
}

func TestStarlinkV2MiniSpec(t *testing.T) {
	// §6.1: 96 Gbps access, 100 Mbps per user ⇒ 960 users per satellite.
	s := StarlinkV2Mini
	if got := s.AccessGbps * 1000 / s.UserMbps; got != float64(s.UsersPerSat) {
		t.Errorf("users per sat = %v, spec says %d", got, s.UsersPerSat)
	}
}

func TestDemandAccessors(t *testing.T) {
	d := New(geo.MustGrid(10), 4, 900, "t")
	d.Set(2, 5, 3.5)
	d.Add(2, 5, 1.5)
	if d.At(2, 5) != 5 {
		t.Errorf("At = %v", d.At(2, 5))
	}
	if d.Total() != 5 {
		t.Errorf("Total = %v", d.Total())
	}
	c := d.Clone()
	c.Set(2, 5, 0)
	if d.At(2, 5) != 5 {
		t.Error("Clone aliases storage")
	}
	d.Scale(2)
	if d.At(2, 5) != 10 {
		t.Error("Scale failed")
	}
}

func TestStarlinkCustomersShape(t *testing.T) {
	d := StarlinkCustomers(testOpts())
	if d.Total() == 0 {
		t.Fatal("empty demand")
	}
	// Static (no diurnal): every slot totals the configured satellite units.
	m := d.Grid.NumCells()
	for s := 0; s < d.Slots; s++ {
		tot := 0.0
		for i := 0; i < m; i++ {
			tot += d.At(s, i)
		}
		if math.Abs(tot-6793) > 1 {
			t.Errorf("slot %d total = %v, want 6793", s, tot)
		}
	}
	// NYC cell should dominate a mid-Pacific cell.
	nyc := d.Grid.CellOf(geom.LatLon{Lat: 40.7, Lon: -74})
	pac := d.Grid.CellOf(geom.LatLon{Lat: 0, Lon: -150})
	if d.At(0, nyc) <= d.At(0, pac) {
		t.Errorf("NYC %v <= Pacific %v", d.At(0, nyc), d.At(0, pac))
	}
}

func TestSpatialConcentrationLongTail(t *testing.T) {
	// Paper §2.2: >70% of users concentrated in ~5% of the surface. Our
	// synthetic field must reproduce that long tail (≤12% of area for 70%
	// of demand, given the coarse test grid).
	d := StarlinkCustomers(testOpts())
	area := d.SpatialConcentration(0.7)
	if area > 0.12 {
		t.Errorf("70%% of demand needs %.1f%% of surface; expected a long tail", area*100)
	}
	if area <= 0 {
		t.Error("concentration returned nothing")
	}
}

func TestDiurnalModel(t *testing.T) {
	m := DefaultDiurnal
	if a := m.Activity(m.PeakHour); math.Abs(a-1) > 1e-12 {
		t.Errorf("peak activity = %v", a)
	}
	trough := m.Activity(m.PeakHour + 12)
	if math.Abs(trough-m.MinFraction) > 1e-12 {
		t.Errorf("trough = %v, want %v", trough, m.MinFraction)
	}
	// Figure 3b: minimum activity between 39% and 52% of peak.
	if m.MinFraction < 0.39 || m.MinFraction > 0.52 {
		t.Errorf("default min fraction %v outside the paper's observed band", m.MinFraction)
	}
	for h := 0.0; h < 24; h += 0.5 {
		a := m.Activity(h)
		if a < m.MinFraction-1e-12 || a > 1+1e-12 {
			t.Errorf("activity(%v) = %v out of range", h, a)
		}
	}
}

func TestLocalHour(t *testing.T) {
	if h := LocalHour(0, 0); h != 0 {
		t.Errorf("UTC0 = %v", h)
	}
	if h := LocalHour(3600*23, 5); h != 4 {
		t.Errorf("23h +5 = %v", h)
	}
	if h := LocalHour(0, -5); h != 19 {
		t.Errorf("0h -5 = %v", h)
	}
}

func TestDiurnalDemandVariesOverTime(t *testing.T) {
	opt := testOpts()
	opt.Slots = 96
	d := DefaultDiurnal
	opt.Diurnal = &d
	dd := StarlinkCustomers(opt)
	m := dd.Grid.NumCells()
	nyc := dd.Grid.CellOf(geom.LatLon{Lat: 40.7, Lon: -74})
	lo, hi := math.Inf(1), math.Inf(-1)
	for s := 0; s < dd.Slots; s++ {
		v := dd.Y[s*m+nyc]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		t.Fatal("no diurnal variation at NYC")
	}
	ratio := lo / hi
	if math.Abs(ratio-DefaultDiurnal.MinFraction) > 0.05 {
		t.Errorf("trough/peak = %v, want ≈%v", ratio, DefaultDiurnal.MinFraction)
	}
	// Dynamic demand total must be below the static peak total.
	static := StarlinkCustomers(testOpts())
	if dd.Total()/float64(dd.Slots) >= static.Total()/float64(static.Slots) {
		t.Error("diurnal demand should average below static peak demand")
	}
}

func TestInternetBackbone(t *testing.T) {
	d := InternetBackbone(testOpts())
	if d.Total() == 0 {
		t.Fatal("empty backbone demand")
	}
	// Demand exists along the trans-Atlantic great circle.
	mid := geom.Intermediate(geom.LatLon{Lat: 40, Lon: -74}, geom.LatLon{Lat: 50, Lon: 2}, 0.5)
	if d.At(0, d.Grid.CellOf(mid)) == 0 {
		t.Error("no demand mid-Atlantic on the NY-Europe route")
	}
	// Static in time.
	m := d.Grid.NumCells()
	for i := 0; i < m; i++ {
		if d.At(0, i) != d.At(d.Slots-1, i) {
			t.Fatal("backbone demand should be time-invariant")
		}
	}
	// South Pacific stays empty.
	if d.At(0, d.Grid.CellOf(geom.LatLon{Lat: -40, Lon: -120})) != 0 {
		t.Error("unexpected demand in the South Pacific")
	}
}

func TestBackboneODMatrixValid(t *testing.T) {
	names := map[string]bool{}
	for _, r := range BackboneRegions {
		if names[r.Name] {
			t.Errorf("duplicate region %q", r.Name)
		}
		names[r.Name] = true
	}
	for od, gbps := range BackboneODGbps {
		if !names[od[0]] || !names[od[1]] {
			t.Errorf("OD pair %v references unknown region", od)
		}
		if gbps <= 0 {
			t.Errorf("OD pair %v has non-positive capacity", od)
		}
		if od[0] == od[1] {
			t.Errorf("self-loop %v", od)
		}
	}
}

func TestLatinAmerica(t *testing.T) {
	d := LatinAmerica(testOpts())
	if d.Total() == 0 {
		t.Fatal("empty regional demand")
	}
	full := StarlinkCustomers(testOpts())
	if d.Total() >= full.Total() {
		t.Error("regional demand should be a strict subset")
	}
	m := d.Grid.NumCells()
	b := LatinAmericaBounds
	for i := 0; i < m; i++ {
		c := d.Grid.Center(i)
		inside := c.Lat >= b.MinLat && c.Lat <= b.MaxLat && c.Lon >= b.MinLon && c.Lon <= b.MaxLon
		if !inside && d.At(0, i) != 0 {
			t.Fatalf("demand outside region at %v", c)
		}
	}
	// São Paulo must carry demand.
	sp := d.Grid.CellOf(geom.LatLon{Lat: -23.6, Lon: -46.6})
	if d.At(0, sp) == 0 {
		t.Error("São Paulo has no demand")
	}
}

func TestCalibrateToSupply(t *testing.T) {
	g := geo.MustGrid(20)
	d := New(g, 2, 900, "t")
	d.Set(0, 0, 1)
	d.Set(1, 1, 2)
	supply := make([]float64, 2*g.NumCells())
	supply[0] = 10             // slot 0 cell 0
	supply[g.NumCells()+1] = 4 // slot 1 cell 1
	scale := d.CalibrateToSupply(supply, 1.0)
	// Binding constraint: 2·s ≤ 4 ⇒ s = 2.
	if math.Abs(scale-2) > 0.01 {
		t.Errorf("scale = %v, want 2", scale)
	}
	if math.Abs(d.At(1, 1)-4) > 0.05 {
		t.Errorf("calibrated demand = %v", d.At(1, 1))
	}
}

func TestCalibrateWithAvailabilitySlack(t *testing.T) {
	g := geo.MustGrid(20)
	d := New(g, 1, 900, "t")
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	supply := make([]float64, g.NumCells())
	supply[0] = 100 // cell 1 has zero supply
	// With ε=0.5, half the demand satisfiable ⇒ scale bounded by cell 0.
	scale := d.CalibrateToSupply(supply, 0.5)
	if scale < 50 {
		t.Errorf("scale = %v, expected ≈100 with 50%% availability", scale)
	}
}

func TestCitiesGazetteer(t *testing.T) {
	if len(Cities) < 140 {
		t.Errorf("gazetteer has %d cities", len(Cities))
	}
	seen := map[string]bool{}
	for _, c := range Cities {
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Errorf("%s has bad coordinates", c.Name)
		}
		if c.Pop <= 0 {
			t.Errorf("%s has non-positive population", c.Name)
		}
		if c.TZOffset < -12 || c.TZOffset > 14 {
			t.Errorf("%s has bad timezone", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate city %s", c.Name)
		}
		seen[c.Name] = true
	}
	if TotalCityPop() < 500 {
		t.Errorf("total city pop = %v", TotalCityPop())
	}
}

func TestMostCityDemandOnLand(t *testing.T) {
	// Sanity tie between the gazetteer and the land mask: the overwhelming
	// majority of city demand must fall on land cells.
	g := geo.MustGrid(4)
	mask := geo.NewLandMask(g)
	land, total := 0.0, 0.0
	for _, c := range Cities {
		total += c.Pop
		if mask.LandFraction(g.CellOf(geom.LatLon{Lat: c.Lat, Lon: c.Lon})) > 0 {
			land += c.Pop
		}
	}
	if land/total < 0.9 {
		t.Errorf("only %.0f%% of city demand on land cells; mask or gazetteer broken", 100*land/total)
	}
}

func TestCityTimezoneDrivesDiurnal(t *testing.T) {
	// Western China (Ürümqi-ish longitude ~87°E) has no gazetteer city, so
	// it falls back to lon/15 ≈ UTC+6; Chengdu (104°E) carries UTC+8 from
	// the gazetteer even though lon/15 would say UTC+7. The demand peaks
	// must follow those offsets.
	opt := testOpts()
	opt.Slots = 96
	opt.SlotSeconds = 900
	model := DefaultDiurnal
	opt.Diurnal = &model
	d := StarlinkCustomers(opt)
	m := d.Grid.NumCells()
	peakSlot := func(cell int) int {
		best, bestV := -1, -1.0
		for s := 0; s < d.Slots; s++ {
			if v := d.Y[s*m+cell]; v > bestV {
				best, bestV = s, v
			}
		}
		return best
	}
	chengdu := d.Grid.CellOf(geom.LatLon{Lat: 30.7, Lon: 104.1})
	tokyo := d.Grid.CellOf(geom.LatLon{Lat: 35.7, Lon: 139.7})
	if d.Y[chengdu] == 0 || d.Y[tokyo] == 0 {
		t.Fatal("expected demand at both cities")
	}
	// Chengdu (UTC+8) and Tokyo (UTC+9) peak one hour apart: at 15-minute
	// slots that is 4 slots (mod 96).
	diff := (peakSlot(tokyo) - peakSlot(chengdu) + 96) % 96
	if diff != 92 && diff != 4 {
		// Tokyo is east, so its local evening comes *earlier* in UTC.
		t.Errorf("Tokyo-Chengdu peak slot offset = %d, want 92 (i.e. -4)", diff)
	}
}

func TestPeakSlotTotal(t *testing.T) {
	d := New(geo.MustGrid(20), 3, 900, "t")
	d.Set(0, 0, 1)
	d.Set(1, 0, 5)
	d.Set(1, 1, 2)
	d.Set(2, 0, 3)
	if got := d.PeakSlotTotal(); got != 7 {
		t.Errorf("peak slot total = %v", got)
	}
}
