package demand

import (
	"math"

	"repro/internal/geo"
	"repro/internal/geom"
)

// ScenarioOptions configures scenario generation.
type ScenarioOptions struct {
	Grid        *geo.Grid
	Slots       int
	SlotSeconds float64
	// TotalSatUnits is the peak-hour global demand in satellite units. The
	// paper scales the Starlink customer distribution by Starlink's total
	// radio-access capacity (652 Tbps from 6,793 satellites ⇒ 6,793
	// satellite units at 100 Mbps/user). Zero selects that default.
	TotalSatUnits float64
	// Diurnal enables the Figure-3b temporal dynamics; when nil the demand
	// is static at its peak value everywhere (the paper's "static demands"
	// baseline in Figure 15d).
	Diurnal *DiurnalModel
	// RuralWeight is the fraction of the city weight budget spread as a
	// rural background on land (§2.2: rural users need LEO more; 0.25 by
	// default inside StarlinkCustomers).
	RuralWeight float64
}

func (o *ScenarioOptions) fillDefaults() {
	if o.Grid == nil {
		o.Grid = geo.DefaultGrid()
	}
	if o.Slots <= 0 {
		o.Slots = 96
	}
	if o.SlotSeconds <= 0 {
		o.SlotSeconds = 900
	}
	if o.TotalSatUnits <= 0 {
		o.TotalSatUnits = 6793
	}
	if o.RuralWeight == 0 {
		o.RuralWeight = 0.1
	}
}

// StarlinkCustomers synthesizes the Figure 13a scenario: a long-tail global
// customer distribution concentrated on cities, with optional diurnal
// dynamics. At the peak slot the total demand equals TotalSatUnits.
func StarlinkCustomers(opt ScenarioOptions) *Demand {
	opt.fillDefaults()
	d := New(opt.Grid, opt.Slots, opt.SlotSeconds, "starlink-customers")
	w, tz := cellWeightsFromCities(opt.Grid, opt.RuralWeight)
	totalW := 0.0
	for _, v := range w {
		totalW += v
	}
	if totalW == 0 {
		return d
	}
	m := opt.Grid.NumCells()
	for t := 0; t < opt.Slots; t++ {
		utc := float64(t) * opt.SlotSeconds
		for i := 0; i < m; i++ {
			if w[i] == 0 {
				continue
			}
			act := 1.0
			if opt.Diurnal != nil {
				cellTZ := tz[i]
				if math.IsNaN(cellTZ) {
					cellTZ = lonTZ(opt.Grid.Center(i).Lon)
				}
				act = opt.Diurnal.Activity(LocalHour(utc, cellTZ))
			}
			d.Y[t*m+i] = opt.TotalSatUnits * w[i] / totalW * act
		}
	}
	return d
}

// Region is a named backbone endpoint for the Internet-backbone scenario.
type Region struct {
	Name string
	Loc  geom.LatLon
}

// BackboneRegions approximates the region nodes of the TeleGeography global
// Internet map the paper uses (Figure 13b).
var BackboneRegions = []Region{
	{"us-east", geom.LatLon{Lat: 40, Lon: -74}},
	{"us-west", geom.LatLon{Lat: 37, Lon: -122}},
	{"brazil", geom.LatLon{Lat: -23, Lon: -46}},
	{"argentina", geom.LatLon{Lat: -34, Lon: -58}},
	{"west-europe", geom.LatLon{Lat: 50, Lon: 2}},
	{"south-europe", geom.LatLon{Lat: 40, Lon: 14}},
	{"north-europe", geom.LatLon{Lat: 59, Lon: 18}},
	{"west-africa", geom.LatLon{Lat: 6, Lon: 3}},
	{"south-africa", geom.LatLon{Lat: -33, Lon: 18}},
	{"east-africa", geom.LatLon{Lat: -1, Lon: 36}},
	{"middle-east", geom.LatLon{Lat: 25, Lon: 55}},
	{"south-asia", geom.LatLon{Lat: 19, Lon: 72}},
	{"southeast-asia", geom.LatLon{Lat: 1, Lon: 103}},
	{"east-asia", geom.LatLon{Lat: 35, Lon: 139}},
	{"china", geom.LatLon{Lat: 31, Lon: 121}},
	{"oceania", geom.LatLon{Lat: -33, Lon: 151}},
}

// BackboneODGbps is a coarse inter-region capacity matrix (Gbps) shaped
// after the public TeleGeography map: trans-Atlantic and intra-Asia routes
// dominate; southern-hemisphere links are thinner. Entries are symmetric
// aggregates; only listed pairs carry demand.
var BackboneODGbps = map[[2]string]float64{
	{"us-east", "west-europe"}:       1200,
	{"us-east", "south-europe"}:      400,
	{"us-west", "east-asia"}:         800,
	{"us-west", "china"}:             400,
	{"us-west", "oceania"}:           300,
	{"us-east", "brazil"}:            500,
	{"brazil", "argentina"}:          200,
	{"brazil", "west-europe"}:        250,
	{"brazil", "west-africa"}:        100,
	{"west-europe", "south-europe"}:  600,
	{"west-europe", "north-europe"}:  500,
	{"west-europe", "middle-east"}:   400,
	{"west-europe", "west-africa"}:   250,
	{"west-europe", "south-africa"}:  200,
	{"south-europe", "middle-east"}:  300,
	{"middle-east", "south-asia"}:    450,
	{"middle-east", "east-africa"}:   150,
	{"south-asia", "southeast-asia"}: 500,
	{"southeast-asia", "east-asia"}:  700,
	{"southeast-asia", "china"}:      500,
	{"southeast-asia", "oceania"}:    350,
	{"east-asia", "china"}:           600,
	{"east-asia", "us-east"}:         300,
	{"south-africa", "east-africa"}:  100,
	{"us-east", "us-west"}:           900,
}

// regionByName returns the region with the given name, or panics (the OD
// matrix is embedded and validated by tests).
func regionByName(name string) Region {
	for _, r := range BackboneRegions {
		if r.Name == name {
			return r
		}
	}
	panic("demand: unknown backbone region " + name)
}

// InternetBackbone synthesizes Figure 13b: LEO as a submarine-cable backup
// retaining the same inter-regional capacity. Each O–D pair's traffic is
// routed along its great circle and aggregated hop-by-hop onto the cells it
// crosses (§6.3's construction of y from origin-destination intents); the
// per-cell demand is traffic divided by per-satellite transit capacity.
func InternetBackbone(opt ScenarioOptions) *Demand {
	opt.fillDefaults()
	d := New(opt.Grid, opt.Slots, opt.SlotSeconds, "internet-backbone")
	m := opt.Grid.NumCells()
	perCell := make([]float64, m)
	// Per-satellite transit capacity: one ISL in, one out ⇒ one full ISL
	// worth of transit (200 Gbps).
	transitGbps := StarlinkV2Mini.ISLGbps
	for od, gbps := range BackboneODGbps {
		a, b := regionByName(od[0]), regionByName(od[1])
		// Sample the great circle densely enough to touch every cell.
		steps := int(geom.GreatCircleDist(a.Loc, b.Loc)/(111e3*opt.Grid.CellSizeDeg()/2)) + 2
		seen := map[int]bool{}
		for _, p := range geom.GreatCirclePoints(a.Loc, b.Loc, steps) {
			id := opt.Grid.CellOf(p)
			if !seen[id] {
				seen[id] = true
				perCell[id] += gbps / transitGbps
			}
		}
	}
	for t := 0; t < opt.Slots; t++ {
		copy(d.Y[t*m:(t+1)*m], perCell)
	}
	return d
}

// LatinAmericaBounds is the coarse regional box of Figure 13c.
var LatinAmericaBounds = struct {
	MinLat, MaxLat, MinLon, MaxLon float64
}{MinLat: -56, MaxLat: 33, MinLon: -118, MaxLon: -34}

// LatinAmerica synthesizes Figure 13c: the Starlink-customer demand
// restricted to Latin America (a small ISP's regional network, §7).
func LatinAmerica(opt ScenarioOptions) *Demand {
	full := StarlinkCustomers(opt)
	d := New(full.Grid, full.Slots, full.SlotSeconds, "latin-america")
	m := full.Grid.NumCells()
	b := LatinAmericaBounds
	for i := 0; i < m; i++ {
		c := full.Grid.Center(i)
		if c.Lat < b.MinLat || c.Lat > b.MaxLat || c.Lon < b.MinLon || c.Lon > b.MaxLon {
			continue
		}
		for t := 0; t < full.Slots; t++ {
			d.Y[t*m+i] = full.Y[t*m+i]
		}
	}
	return d
}

// CalibrateToSupply rescales the demand (in place) to the largest multiple
// at which `availability` of its total is still satisfiable by the given
// unfolded supply vector — i.e. the "same demand" anchor used to compare
// constellations of different shapes. Returns the scale factor applied.
func (d *Demand) CalibrateToSupply(supply []float64, availability float64) float64 {
	if len(supply) != len(d.Y) {
		panic("demand: calibration dimension mismatch")
	}
	satisfied := func(scale float64) float64 {
		tot, sat := 0.0, 0.0
		for k, y := range d.Y {
			y *= scale
			tot += y
			if s := supply[k]; s < y {
				sat += s
			} else {
				sat += y
			}
		}
		if tot == 0 {
			return 1
		}
		return sat / tot
	}
	lo, hi := 0.0, 1.0
	// Grow hi until the availability target breaks (or a sane cap).
	for satisfied(hi) >= availability && hi < 1e6 {
		lo = hi
		hi *= 2
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if satisfied(mid) >= availability {
			lo = mid
		} else {
			hi = mid
		}
	}
	d.Scale(lo)
	return lo
}
