// Package demand synthesizes the three broadband-demand scenarios of the
// paper's evaluation (Figure 13): Starlink's global customer distribution,
// the international Internet backbone, and a regional (Latin America)
// demand — plus the diurnal activity dynamics of Figure 3b.
//
// Demands are expressed the way the paper's sparsifier consumes them: for
// each geographic cell i and time slot t, y_i^t is the number of satellites
// the cell must have in view (§4.1 "maximal serviceable demand ... in the
// unit of the number of satellites").
package demand

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/geom"
)

// SatelliteSpec captures the per-satellite capacity assumptions of §6.1.
type SatelliteSpec struct {
	AccessGbps  float64 // user radio link capacity (96 Gbps, Starlink v2 mini)
	ISLGbps     float64 // per-ISL capacity (200 Gbps)
	ISLCount    int     // laser terminals per satellite (3)
	UserMbps    float64 // per-user committed downlink (100 Mbps)
	UsersPerSat int     // derived: 960 concurrent users
}

// StarlinkV2Mini is the satellite model used throughout the evaluation.
var StarlinkV2Mini = SatelliteSpec{
	AccessGbps: 96, ISLGbps: 200, ISLCount: 3, UserMbps: 100, UsersPerSat: 960,
}

// Demand is a spatiotemporal demand field over a grid: Y[slot*m+cell] is
// the demand in satellite units.
type Demand struct {
	Grid        *geo.Grid
	Slots       int
	SlotSeconds float64
	Y           []float64
	Name        string
}

// New allocates a zero demand field.
func New(g *geo.Grid, slots int, slotSeconds float64, name string) *Demand {
	return &Demand{
		Grid: g, Slots: slots, SlotSeconds: slotSeconds,
		Y: make([]float64, slots*g.NumCells()), Name: name,
	}
}

// At returns y_cell^slot.
func (d *Demand) At(slot, cell int) float64 { return d.Y[slot*d.Grid.NumCells()+cell] }

// Set assigns y_cell^slot.
func (d *Demand) Set(slot, cell int, v float64) { d.Y[slot*d.Grid.NumCells()+cell] = v }

// Add accumulates into y_cell^slot.
func (d *Demand) Add(slot, cell int, v float64) { d.Y[slot*d.Grid.NumCells()+cell] += v }

// Total returns Σ_{t,i} y_i^t.
func (d *Demand) Total() float64 {
	s := 0.0
	for _, v := range d.Y {
		s += v
	}
	return s
}

// PeakSlotTotal returns max_t Σ_i y_i^t.
func (d *Demand) PeakSlotTotal() float64 {
	m := d.Grid.NumCells()
	peak := 0.0
	for t := 0; t < d.Slots; t++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += d.Y[t*m+i]
		}
		if s > peak {
			peak = s
		}
	}
	return peak
}

// Scale multiplies the whole field by f in place and returns d.
func (d *Demand) Scale(f float64) *Demand {
	for i := range d.Y {
		d.Y[i] *= f
	}
	return d
}

// Clone deep-copies the demand.
func (d *Demand) Clone() *Demand {
	c := *d
	c.Y = append([]float64(nil), d.Y...)
	return &c
}

// NonZeroCells returns the number of distinct cells with any demand.
func (d *Demand) NonZeroCells() int {
	m := d.Grid.NumCells()
	seen := make([]bool, m)
	n := 0
	for k, v := range d.Y {
		if v > 0 && !seen[k%m] {
			seen[k%m] = true
			n++
		}
	}
	return n
}

// SpatialConcentration returns the smallest fraction of the Earth's surface
// area holding at least `share` of total demand (the paper's ">70% of users
// on 5% of land" statistic generalized to cells).
func (d *Demand) SpatialConcentration(share float64) float64 {
	m := d.Grid.NumCells()
	perCell := make([]float64, m)
	total := 0.0
	for k, v := range d.Y {
		perCell[k%m] += v
		total += v
	}
	if total == 0 {
		return 0
	}
	type cellShare struct {
		area, dem float64
	}
	cells := make([]cellShare, 0, m)
	for i, v := range perCell {
		if v > 0 {
			cells = append(cells, cellShare{d.Grid.AreaFraction(i), v})
		}
	}
	// Sort by demand density descending (demand per area).
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && cells[j].dem/cells[j].area > cells[j-1].dem/cells[j-1].area; j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
	acc, area := 0.0, 0.0
	for _, c := range cells {
		acc += c.dem
		area += c.area
		if acc >= share*total {
			return area
		}
	}
	return area
}

// DiurnalModel is the local-time activity multiplier of Figure 3b: traffic
// peaks in the evening and bottoms out at minFraction of the peak in the
// early morning. Activity(h) = min + (1−min)·(½+½·cos(2π(h−peak)/24)).
type DiurnalModel struct {
	PeakHour    float64 // local hour of peak activity (Fig. 3b: ~20:00)
	MinFraction float64 // trough as a fraction of peak (Fig. 3b: 0.39–0.52)
}

// DefaultDiurnal matches the Cloudflare-measured dynamics in Figure 3b.
var DefaultDiurnal = DiurnalModel{PeakHour: 20, MinFraction: 0.45}

// Activity returns the multiplier at local hour h ∈ [0,24).
func (m DiurnalModel) Activity(h float64) float64 {
	c := 0.5 + 0.5*math.Cos(2*math.Pi*(h-m.PeakHour)/24)
	return m.MinFraction + (1-m.MinFraction)*c
}

// LocalHour converts a UTC time (seconds since epoch) and a longitude-based
// timezone offset (hours) to local hour of day.
func LocalHour(utcSeconds, tzOffsetHours float64) float64 {
	h := math.Mod(utcSeconds/3600+tzOffsetHours, 24)
	if h < 0 {
		h += 24
	}
	return h
}

func (d *Demand) String() string {
	return fmt.Sprintf("demand{%s: %d cells x %d slots, total=%.0f sat-units, peak-slot=%.0f}",
		d.Name, d.Grid.NumCells(), d.Slots, d.Total(), d.PeakSlotTotal())
}

// cellWeightsFromCities spreads the gazetteer's population weights onto the
// grid: each city contributes to its containing cell and, with a small
// suburban tail, to the neighboring ring. A faint rural background is added
// on land cells so rural/maritime-adjacent users are represented (§2.2).
// The second return value is the population-weighted timezone offset per
// cell (NaN where no city weighs in), used by the diurnal model so that
// e.g. western China keeps Beijing time as the real network does.
func cellWeightsFromCities(g *geo.Grid, ruralWeight float64) ([]float64, []float64) {
	w := make([]float64, g.NumCells())
	tzWeight := make([]float64, g.NumCells())
	tzSum := make([]float64, g.NumCells())
	addTZ := func(id int, pop, tz float64) {
		tzWeight[id] += pop
		tzSum[id] += pop * tz
	}
	for _, c := range Cities {
		id := g.CellOf(geom.LatLon{Lat: c.Lat, Lon: c.Lon})
		w[id] += c.Pop * 0.8
		addTZ(id, c.Pop*0.8, c.TZOffset)
		nb := g.Neighbors4(id)
		for _, n := range nb {
			w[n] += c.Pop * 0.2 / float64(len(nb))
			addTZ(n, c.Pop*0.2/float64(len(nb)), c.TZOffset)
		}
	}
	if ruralWeight > 0 {
		mask := geo.NewLandMask(g)
		// Inhabited land only: Antarctica has no broadband customers.
		inhabited := func(id int) float64 {
			if g.Center(id).Lat < -60 {
				return 0
			}
			return mask.LandFraction(id)
		}
		total := 0.0
		for id := 0; id < g.NumCells(); id++ {
			total += inhabited(id) * g.AreaFraction(id)
		}
		cityTotal := TotalCityPop()
		for id := 0; id < g.NumCells(); id++ {
			lf := inhabited(id)
			if lf > 0 && total > 0 {
				w[id] += ruralWeight * cityTotal * lf * g.AreaFraction(id) / total
			}
		}
	}
	tz := make([]float64, g.NumCells())
	for id := range tz {
		if tzWeight[id] > 0 {
			tz[id] = tzSum[id] / tzWeight[id]
		} else {
			tz[id] = math.NaN()
		}
	}
	return w, tz
}

// lonTZ estimates the timezone offset of a cell from its longitude
// (15° per hour), the fallback when no gazetteer city weighs into the
// cell.
func lonTZ(lon float64) float64 { return math.Round(lon / 15) }
