// Package stablematch implements the Gale–Shapley stable matchings TinyLEO's
// orbital MPC uses to compile geographic topology intents into satellite
// topologies (paper §4.2): a many-to-one matching assigns each cell's
// satellites to neighbor cells as gateways, and a one-to-one matching pairs
// the gateways of adjacent cells into concrete ISLs. Preferences are
// expected ISL lifetimes, so the resulting topology maximizes stability.
package stablematch

import "sort"

// PrefsFromWeights converts a weight matrix (higher = more preferred) into
// ordered preference lists: prefs[i] lists the candidate indices j sorted
// by w[i][j] descending. Candidates with weight ≤ cutoff are omitted
// (unacceptable partners). Ties break toward the lower index so matchings
// are deterministic.
func PrefsFromWeights(w [][]float64, cutoff float64) [][]int {
	prefs := make([][]int, len(w))
	for i, row := range w {
		var list []int
		for j, v := range row {
			if v > cutoff {
				list = append(list, j)
			}
		}
		sort.SliceStable(list, func(a, b int) bool {
			if row[list[a]] != row[list[b]] {
				return row[list[a]] > row[list[b]]
			}
			return list[a] < list[b]
		})
		prefs[i] = list
	}
	return prefs
}

// OneToOne computes a stable marriage between proposers (indices into
// proposerPrefs) and reviewers. proposerPrefs[i] is proposer i's ordered
// list of acceptable reviewers; reviewerRank[j][i] is reviewer j's rank of
// proposer i (lower = preferred; a missing/negative rank marks i
// unacceptable to j). Returns match[i] = reviewer of proposer i, or -1.
//
// The classic deferred-acceptance run is proposer-optimal and guarantees no
// blocking pair among mutually acceptable pairs.
func OneToOne(proposerPrefs [][]int, reviewerRank [][]int) []int {
	nP := len(proposerPrefs)
	match := make([]int, nP)
	next := make([]int, nP) // next preference index to propose to
	for i := range match {
		match[i] = -1
	}
	nR := len(reviewerRank)
	holds := make([]int, nR) // reviewer's current proposer or -1
	for j := range holds {
		holds[j] = -1
	}
	free := make([]int, 0, nP)
	for i := 0; i < nP; i++ {
		free = append(free, i)
	}
	for len(free) > 0 {
		i := free[len(free)-1]
		free = free[:len(free)-1]
		for next[i] < len(proposerPrefs[i]) {
			j := proposerPrefs[i][next[i]]
			next[i]++
			if j < 0 || j >= nR {
				continue
			}
			rank := rankOf(reviewerRank[j], i)
			if rank < 0 {
				continue // unacceptable to the reviewer
			}
			cur := holds[j]
			if cur == -1 {
				holds[j], match[i] = i, j
				break
			}
			if rankOf(reviewerRank[j], cur) > rank {
				// Reviewer trades up; the displaced proposer re-enters.
				match[cur] = -1
				free = append(free, cur)
				holds[j], match[i] = i, j
				break
			}
			// Rejected; continue down the list.
		}
	}
	return match
}

func rankOf(ranks []int, i int) int {
	if i < 0 || i >= len(ranks) {
		return -1
	}
	return ranks[i]
}

// RanksFromPrefs inverts preference lists into rank vectors usable as
// reviewerRank: rank[j][i] is j's position of i (0 = favourite), or -1 if
// absent. n is the number of counterparties.
func RanksFromPrefs(prefs [][]int, n int) [][]int {
	ranks := make([][]int, len(prefs))
	for j, list := range prefs {
		ranks[j] = make([]int, n)
		for i := range ranks[j] {
			ranks[j][i] = -1
		}
		for pos, i := range list {
			if i >= 0 && i < n {
				ranks[j][i] = pos
			}
		}
	}
	return ranks
}

// ManyToOne computes a hospitals/residents-style stable matching:
// proposers (satellites) each match at most one slot, reviewers (neighbor
// cells) accept up to capacity[j] proposers. Returns match[i] = reviewer of
// proposer i or -1, and assigned[j] = proposers held by reviewer j.
func ManyToOne(proposerPrefs [][]int, reviewerRank [][]int, capacity []int) (match []int, assigned [][]int) {
	nP := len(proposerPrefs)
	nR := len(reviewerRank)
	match = make([]int, nP)
	next := make([]int, nP)
	for i := range match {
		match[i] = -1
	}
	held := make([][]int, nR)
	free := make([]int, 0, nP)
	for i := nP - 1; i >= 0; i-- {
		free = append(free, i) // pop order = ascending index, deterministic
	}
	for len(free) > 0 {
		i := free[len(free)-1]
		free = free[:len(free)-1]
		for next[i] < len(proposerPrefs[i]) {
			j := proposerPrefs[i][next[i]]
			next[i]++
			if j < 0 || j >= nR || capacity[j] <= 0 {
				continue
			}
			rank := rankOf(reviewerRank[j], i)
			if rank < 0 {
				continue
			}
			if len(held[j]) < capacity[j] {
				held[j] = append(held[j], i)
				match[i] = j
				break
			}
			// Find the worst currently held proposer.
			worstIdx, worstRank := -1, -1
			for k, p := range held[j] {
				if r := rankOf(reviewerRank[j], p); r > worstRank {
					worstIdx, worstRank = k, r
				}
			}
			if worstRank > rank {
				displaced := held[j][worstIdx]
				held[j][worstIdx] = i
				match[i] = j
				match[displaced] = -1
				free = append(free, displaced)
				break
			}
		}
	}
	for j := range held {
		sort.Ints(held[j])
	}
	return match, held
}

// IsStableOneToOne verifies the no-blocking-pair property for a one-to-one
// matching, given both sides' rank matrices (−1 = unacceptable). Exposed
// for property tests.
func IsStableOneToOne(match []int, proposerRank, reviewerRank [][]int) bool {
	// reverse map
	nR := len(reviewerRank)
	rmatch := make([]int, nR)
	for j := range rmatch {
		rmatch[j] = -1
	}
	for i, j := range match {
		if j >= 0 {
			rmatch[j] = i
		}
	}
	for i := range proposerRank {
		for j := 0; j < nR; j++ {
			pr := rankOf(proposerRank[i], j)
			rr := rankOf(reviewerRank[j], i)
			if pr < 0 || rr < 0 {
				continue // not mutually acceptable
			}
			iPrefersJ := match[i] == -1 || rankOf(proposerRank[i], match[i]) > pr
			jPrefersI := rmatch[j] == -1 || rankOf(reviewerRank[j], rmatch[j]) > rr
			if iPrefersJ && jPrefersI {
				return false // blocking pair (i, j)
			}
		}
	}
	return true
}
