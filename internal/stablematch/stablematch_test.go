package stablematch

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPrefsFromWeights(t *testing.T) {
	w := [][]float64{
		{0.5, 2.0, 1.0},
		{0, 0, 0},
	}
	prefs := PrefsFromWeights(w, 0)
	if !reflect.DeepEqual(prefs[0], []int{1, 2, 0}) {
		t.Errorf("prefs[0] = %v", prefs[0])
	}
	if len(prefs[1]) != 0 {
		t.Errorf("prefs[1] = %v, all weights at cutoff", prefs[1])
	}
	// Ties break toward lower index.
	p := PrefsFromWeights([][]float64{{3, 3, 5}}, 0)
	if !reflect.DeepEqual(p[0], []int{2, 0, 1}) {
		t.Errorf("tie-break = %v", p[0])
	}
}

func TestOneToOneTextbook(t *testing.T) {
	// Classic 3x3 instance.
	pPrefs := [][]int{{0, 1, 2}, {1, 0, 2}, {0, 1, 2}}
	rPrefs := [][]int{{1, 0, 2}, {0, 1, 2}, {0, 1, 2}}
	rRank := RanksFromPrefs(rPrefs, 3)
	match := OneToOne(pPrefs, rRank)
	pRank := RanksFromPrefs(pPrefs, 3)
	if !IsStableOneToOne(match, pRank, rRank) {
		t.Fatalf("unstable matching %v", match)
	}
	// Every proposer matched in a complete instance.
	for i, j := range match {
		if j == -1 {
			t.Errorf("proposer %d unmatched", i)
		}
	}
}

func TestOneToOneUnacceptable(t *testing.T) {
	// Reviewer 0 finds proposer 1 unacceptable.
	pPrefs := [][]int{{0}, {0}}
	rRank := [][]int{{0, -1}}
	match := OneToOne(pPrefs, rRank)
	if match[0] != 0 || match[1] != -1 {
		t.Errorf("match = %v", match)
	}
}

func TestOneToOneStabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		nP, nR := 1+rng.Intn(8), 1+rng.Intn(8)
		w := make([][]float64, nP)
		for i := range w {
			w[i] = make([]float64, nR)
			for j := range w[i] {
				if rng.Float64() < 0.8 {
					w[i][j] = rng.Float64()
				}
			}
		}
		pPrefs := PrefsFromWeights(w, 0)
		// Reviewer weights: transpose with fresh noise.
		rw := make([][]float64, nR)
		for j := range rw {
			rw[j] = make([]float64, nP)
			for i := range rw[j] {
				if w[i][j] > 0 {
					rw[j][i] = rng.Float64()
				}
			}
		}
		rPrefs := PrefsFromWeights(rw, 0)
		rRank := RanksFromPrefs(rPrefs, nP)
		pRank := RanksFromPrefs(pPrefs, nR)
		match := OneToOne(pPrefs, rRank)
		// No reviewer matched twice.
		seen := map[int]bool{}
		for _, j := range match {
			if j >= 0 {
				if seen[j] {
					t.Fatal("reviewer double-matched")
				}
				seen[j] = true
			}
		}
		if !IsStableOneToOne(match, pRank, rRank) {
			t.Fatalf("trial %d: unstable matching", trial)
		}
	}
}

func TestManyToOneCapacities(t *testing.T) {
	// 4 satellites, 2 neighbor cells with capacities 2 and 1.
	pPrefs := [][]int{{0, 1}, {0, 1}, {0, 1}, {1, 0}}
	rRank := [][]int{
		{0, 1, 2, 3}, // cell 0 prefers sat 0 > 1 > 2 > 3
		{3, 2, 1, 0}, // cell 1 prefers sat 3 > 2 > 1 > 0
	}
	match, assigned := ManyToOne(pPrefs, rRank, []int{2, 1})
	if len(assigned[0]) != 2 || len(assigned[1]) != 1 {
		t.Fatalf("assigned = %v", assigned)
	}
	// Cell 0 ends with its two favourites that want it: sats 0 and 1.
	if !reflect.DeepEqual(assigned[0], []int{0, 1}) {
		t.Errorf("cell 0 holds %v", assigned[0])
	}
	if !reflect.DeepEqual(assigned[1], []int{3}) {
		t.Errorf("cell 1 holds %v", assigned[1])
	}
	if match[2] != -1 {
		t.Errorf("sat 2 should be unmatched, got %d", match[2])
	}
}

func TestManyToOneZeroCapacity(t *testing.T) {
	pPrefs := [][]int{{0}}
	rRank := [][]int{{0}}
	match, assigned := ManyToOneWrapper(pPrefs, rRank, []int{0})
	if match[0] != -1 || len(assigned[0]) != 0 {
		t.Errorf("zero capacity matched: %v %v", match, assigned)
	}
}

// ManyToOneWrapper keeps the test readable.
func ManyToOneWrapper(p [][]int, r [][]int, c []int) ([]int, [][]int) {
	return ManyToOne(p, r, c)
}

func TestManyToOneNoBlockingPair(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nP, nR := 2+rng.Intn(10), 1+rng.Intn(4)
		w := make([][]float64, nP)
		for i := range w {
			w[i] = make([]float64, nR)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		pPrefs := PrefsFromWeights(w, 0)
		rw := make([][]float64, nR)
		for j := range rw {
			rw[j] = make([]float64, nP)
			for i := range rw[j] {
				rw[j][i] = rng.Float64()
			}
		}
		rPrefs := PrefsFromWeights(rw, 0)
		rRank := RanksFromPrefs(rPrefs, nP)
		caps := make([]int, nR)
		for j := range caps {
			caps[j] = 1 + rng.Intn(3)
		}
		match, assigned := ManyToOne(pPrefs, rRank, caps)
		// Capacity respected.
		for j, held := range assigned {
			if len(held) > caps[j] {
				t.Fatalf("capacity exceeded at %d", j)
			}
		}
		// Consistency between match and assigned.
		for j, held := range assigned {
			for _, i := range held {
				if match[i] != j {
					t.Fatalf("inconsistent match/assigned")
				}
			}
		}
		// No blocking pair: a satellite i preferring cell j over its match
		// while j has spare capacity or holds someone worse.
		pRank := RanksFromPrefs(pPrefs, nR)
		for i := 0; i < nP; i++ {
			for j := 0; j < nR; j++ {
				pr := pRank[i][j]
				rr := rRank[j][i]
				if pr < 0 || rr < 0 {
					continue
				}
				iPrefers := match[i] == -1 || pRank[i][match[i]] > pr
				if !iPrefers {
					continue
				}
				if len(assigned[j]) < caps[j] && caps[j] > 0 {
					t.Fatalf("trial %d: blocking pair (%d,%d): spare capacity", trial, i, j)
				}
				for _, held := range assigned[j] {
					if rRank[j][held] > rr {
						t.Fatalf("trial %d: blocking pair (%d,%d): displaces %d", trial, i, j, held)
					}
				}
			}
		}
	}
}
