package stablematch

import (
	"math/rand"
	"testing"
)

func randomInstance(nP, nR int, seed int64) (pPrefs [][]int, rRank [][]int) {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, nP)
	for i := range w {
		w[i] = make([]float64, nR)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	pPrefs = PrefsFromWeights(w, 0)
	rw := make([][]float64, nR)
	for j := range rw {
		rw[j] = make([]float64, nP)
		for i := range rw[j] {
			rw[j][i] = rng.Float64()
		}
	}
	rRank = RanksFromPrefs(PrefsFromWeights(rw, 0), nP)
	return
}

func BenchmarkOneToOne(b *testing.B) {
	pPrefs, rRank := randomInstance(128, 128, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OneToOne(pPrefs, rRank)
	}
}

func BenchmarkManyToOne(b *testing.B) {
	pPrefs, rRank := randomInstance(256, 16, 2)
	caps := make([]int, 16)
	for i := range caps {
		caps[i] = 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ManyToOne(pPrefs, rRank, caps)
	}
}
