package sparse

import "fmt"

// FromRows assembles a CSR matrix directly from per-row column index and
// value slices. Each cols[i] must be strictly increasing and aligned with
// vals[i]. This is the zero-copy-ish fast path used by the texture library,
// whose coverage rows are produced already sorted.
func FromRows(rows, cols int, colIdx [][]int32, vals [][]float64) *Matrix {
	if len(colIdx) != rows || len(vals) != rows {
		panic(fmt.Sprintf("sparse: FromRows got %d/%d rows, want %d", len(colIdx), len(vals), rows))
	}
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int64, rows+1)}
	nnz := 0
	for i := range colIdx {
		if len(colIdx[i]) != len(vals[i]) {
			panic("sparse: FromRows row length mismatch")
		}
		nnz += len(colIdx[i])
	}
	m.colIdx = make([]int32, 0, nnz)
	m.vals = make([]float64, 0, nnz)
	for i := range colIdx {
		prev := int32(-1)
		for k, c := range colIdx[i] {
			if c < 0 || int(c) >= cols {
				panic(fmt.Sprintf("sparse: FromRows col %d out of range [0,%d)", c, cols))
			}
			if c <= prev {
				panic(fmt.Sprintf("sparse: FromRows row %d not strictly increasing at %d", i, k))
			}
			prev = c
		}
		m.colIdx = append(m.colIdx, colIdx[i]...)
		m.vals = append(m.vals, vals[i]...)
		m.rowPtr[i+1] = int64(len(m.vals))
	}
	return m
}
