package sparse

import (
	"reflect"
	"testing"
)

func TestFromRows(t *testing.T) {
	m := FromRows(3, 4,
		[][]int32{{0, 2}, nil, {1, 3}},
		[][]float64{{1, 2}, nil, {3, 4}},
	)
	want := [][]float64{{1, 0, 2, 0}, {0, 0, 0, 0}, {0, 3, 0, 4}}
	if !reflect.DeepEqual(m.ToDense(), want) {
		t.Errorf("FromRows = %v", m.ToDense())
	}
	if m.NNZ() != 4 {
		t.Errorf("nnz = %d", m.NNZ())
	}
}

func TestFromRowsPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	check("row count", func() { FromRows(2, 2, [][]int32{{0}}, [][]float64{{1}}) })
	check("len mismatch", func() { FromRows(1, 2, [][]int32{{0, 1}}, [][]float64{{1}}) })
	check("unsorted", func() { FromRows(1, 3, [][]int32{{2, 1}}, [][]float64{{1, 2}}) })
	check("dup col", func() { FromRows(1, 3, [][]int32{{1, 1}}, [][]float64{{1, 2}}) })
	check("col range", func() { FromRows(1, 2, [][]int32{{5}}, [][]float64{{1}}) })
}
