// Package sparse implements the compressed sparse row (CSR) matrices the
// TinyLEO synthesizer uses to hold per-slot coverage matrices A_t and to
// accelerate the matching-pursuit inner products (paper §5: "our
// implementation encodes the LEO network supplies x, demands y_t, and
// coverage matrix A_t using compressed sparse row matrices").
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is an immutable CSR sparse matrix of float64 values.
type Matrix struct {
	rows, cols int
	rowPtr     []int64   // len rows+1
	colIdx     []int32   // len nnz
	vals       []float64 // len nnz
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored (non-zero) entries.
func (m *Matrix) NNZ() int { return len(m.vals) }

// At returns the value at (i, j) using binary search within row i.
func (m *Matrix) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	seg := m.colIdx[lo:hi]
	k := sort.Search(len(seg), func(k int) bool { return seg[k] >= int32(j) })
	if k < len(seg) && seg[k] == int32(j) {
		return m.vals[int(lo)+k]
	}
	return 0
}

// Row calls f(j, v) for each stored entry in row i, in column order.
func (m *Matrix) Row(i int, f func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		f(int(m.colIdx[k]), m.vals[k])
	}
}

// RowNNZ returns the number of stored entries in row i.
func (m *Matrix) RowNNZ(i int) int { return int(m.rowPtr[i+1] - m.rowPtr[i]) }

// MulVec computes y = M·x into dst (allocated if nil) and returns it.
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec dim mismatch: %d vs %d", len(x), m.cols))
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes y = Mᵀ·x into dst (allocated if nil) and returns it.
// This is the g = Aᵀr step of Algorithm 1.
func (m *Matrix) MulVecT(x, dst []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT dim mismatch: %d vs %d", len(x), m.rows))
	}
	if dst == nil {
		dst = make([]float64, m.cols)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += m.vals[k] * xi
		}
	}
	return dst
}

// Transpose returns Mᵀ as a new CSR matrix (i.e. CSC view materialized).
func (m *Matrix) Transpose() *Matrix {
	b := NewBuilder(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			b.Set(int(m.colIdx[k]), i, m.vals[k])
		}
	}
	return b.Build()
}

// VStack stacks matrices vertically (all must share the column count). This
// implements the paper's temporal unfolding Ã = [A₁; A₂; …; A_Tmax].
func VStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return &Matrix{rowPtr: []int64{0}}
	}
	cols := ms[0].cols
	rows, nnz := 0, 0
	for _, m := range ms {
		if m.cols != cols {
			panic("sparse: VStack column mismatch")
		}
		rows += m.rows
		nnz += m.NNZ()
	}
	out := &Matrix{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int64, 1, rows+1),
		colIdx: make([]int32, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for _, m := range ms {
		base := out.rowPtr[len(out.rowPtr)-1]
		for i := 1; i <= m.rows; i++ {
			out.rowPtr = append(out.rowPtr, base+m.rowPtr[i])
		}
		out.colIdx = append(out.colIdx, m.colIdx...)
		out.vals = append(out.vals, m.vals...)
	}
	return out
}

// ColumnNormsSquared returns ‖A_j‖² for every column j (used for the
// least-squares MP coefficient).
func (m *Matrix) ColumnNormsSquared() []float64 {
	out := make([]float64, m.cols)
	for k, j := range m.colIdx {
		out[j] += m.vals[k] * m.vals[k]
	}
	return out
}

// ColumnSums returns Σ_i A_ij for every column j.
func (m *Matrix) ColumnSums() []float64 {
	out := make([]float64, m.cols)
	for k, j := range m.colIdx {
		out[j] += m.vals[k]
	}
	return out
}

// AddScaledColumn computes dst += s·A_j for dense dst of length Rows().
// It requires the transpose matrix (column-major access); see Transposed.
func (t *Transposed) AddScaledColumn(j int, s float64, dst []float64) {
	t.m.Row(j, func(i int, v float64) { dst[i] += s * v })
}

// Transposed wraps Mᵀ to give cheap column access into M's row space.
type Transposed struct{ m *Matrix }

// NewTransposed materializes the transpose of m for column operations.
func NewTransposed(m *Matrix) *Transposed { return &Transposed{m: m.Transpose()} }

// Column calls f(i, v) for each stored entry of column j of the original
// matrix.
func (t *Transposed) Column(j int, f func(i int, v float64)) { t.m.Row(j, f) }

// ColNNZ returns the number of stored entries in original column j.
func (t *Transposed) ColNNZ(j int) int { return t.m.RowNNZ(j) }

// DotColumn returns A_jᵀ·x for dense x over the original row space.
func (t *Transposed) DotColumn(j int, x []float64) float64 {
	s := 0.0
	t.m.Row(j, func(i int, v float64) { s += v * x[i] })
	return s
}
