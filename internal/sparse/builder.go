package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates (row, col, value) triplets and assembles a CSR
// Matrix. Duplicate coordinates are summed, zero results are kept (callers
// that need pruning can use BuildPruned).
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	row, col int32
	val      float64
}

// NewBuilder creates a builder for an rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimension")
	}
	return &Builder{rows: rows, cols: cols}
}

// Set records value v at (i, j). Multiple sets at the same coordinate sum.
func (b *Builder) Set(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Set(%d,%d) out of %dx%d", i, j, b.rows, b.cols))
	}
	b.entries = append(b.entries, entry{int32(i), int32(j), v})
}

// NNZPending returns the number of recorded triplets (before dedup).
func (b *Builder) NNZPending() int { return len(b.entries) }

// Build assembles the CSR matrix, summing duplicates.
func (b *Builder) Build() *Matrix { return b.build(false) }

// BuildPruned assembles the CSR matrix, summing duplicates and dropping
// entries that sum to exactly zero.
func (b *Builder) BuildPruned() *Matrix { return b.build(true) }

func (b *Builder) build(prune bool) *Matrix {
	sort.Slice(b.entries, func(x, y int) bool {
		ex, ey := b.entries[x], b.entries[y]
		if ex.row != ey.row {
			return ex.row < ey.row
		}
		return ex.col < ey.col
	})
	m := &Matrix{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int64, b.rows+1),
	}
	m.colIdx = make([]int32, 0, len(b.entries))
	m.vals = make([]float64, 0, len(b.entries))
	for k := 0; k < len(b.entries); {
		e := b.entries[k]
		v := e.val
		k++
		for k < len(b.entries) && b.entries[k].row == e.row && b.entries[k].col == e.col {
			v += b.entries[k].val
			k++
		}
		if prune && v == 0 {
			continue
		}
		m.colIdx = append(m.colIdx, e.col)
		m.vals = append(m.vals, v)
		m.rowPtr[e.row+1] = int64(len(m.vals))
	}
	// Fill row pointers for empty rows.
	for i := 1; i <= b.rows; i++ {
		if m.rowPtr[i] < m.rowPtr[i-1] {
			m.rowPtr[i] = m.rowPtr[i-1]
		}
	}
	return m
}

// FromDense builds a CSR matrix from a dense row-major [][]float64,
// skipping zeros. Intended for tests and small examples.
func FromDense(d [][]float64) *Matrix {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	b := NewBuilder(rows, cols)
	for i, row := range d {
		if len(row) != cols {
			panic("sparse: ragged dense input")
		}
		for j, v := range row {
			if v != 0 {
				b.Set(i, j, v)
			}
		}
	}
	return b.Build()
}

// ToDense expands the matrix to dense form. Intended for tests.
func (m *Matrix) ToDense() [][]float64 {
	d := make([][]float64, m.rows)
	for i := range d {
		d[i] = make([]float64, m.cols)
		m.Row(i, func(j int, v float64) { d[i][j] = v })
	}
	return d
}
