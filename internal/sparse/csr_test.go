package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func denseMulVec(d [][]float64, x []float64) []float64 {
	out := make([]float64, len(d))
	for i, row := range d {
		for j, v := range row {
			out[i] += v * x[j]
		}
	}
	return out
}

func vecApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestBuildAndAt(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Set(0, 1, 2)
	b.Set(2, 3, -1)
	b.Set(1, 0, 5)
	b.Set(0, 1, 3) // duplicate sums -> 5
	m := b.Build()
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 || m.At(2, 3) != -1 {
		t.Errorf("wrong values: %v %v %v", m.At(0, 1), m.At(1, 0), m.At(2, 3))
	}
	if m.At(0, 0) != 0 || m.At(2, 0) != 0 {
		t.Errorf("phantom values")
	}
}

func TestBuildPruned(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Set(0, 0, 1)
	b.Set(0, 0, -1)
	b.Set(1, 1, 2)
	m := b.BuildPruned()
	if m.NNZ() != 1 {
		t.Errorf("pruned nnz = %d", m.NNZ())
	}
	if m.At(1, 1) != 2 {
		t.Errorf("surviving value wrong")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewBuilder(5, 7).Build()
	if m.NNZ() != 0 {
		t.Fatal("empty should have 0 nnz")
	}
	y := m.MulVec(make([]float64, 7), nil)
	for _, v := range y {
		if v != 0 {
			t.Fatal("empty MulVec nonzero")
		}
	}
	for i := 0; i < 5; i++ {
		if m.RowNNZ(i) != 0 {
			t.Fatal("empty row nnz nonzero")
		}
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := [][]float64{{1, 0, 2}, {0, 0, 0}, {0, -3, 4}}
	m := FromDense(d)
	if got := m.ToDense(); !reflect.DeepEqual(got, d) {
		t.Errorf("roundtrip = %v", got)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randMatrix(rng, rows, cols, 0.3)
		d := m.ToDense()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if !vecApprox(m.MulVec(x, nil), denseMulVec(d, x), 1e-9) {
			t.Fatalf("MulVec mismatch trial %d", trial)
		}
	}
}

func TestMulVecTAgainstTransposeDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randMatrix(rng, rows, cols, 0.3)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := m.Transpose().MulVec(x, nil)
		got := m.MulVecT(x, nil)
		if !vecApprox(got, want, 1e-9) {
			t.Fatalf("MulVecT mismatch trial %d", trial)
		}
	}
}

func TestMulVecReusesDst(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	dst := []float64{99, 99}
	got := m.MulVec([]float64{1, 1}, dst)
	if &got[0] != &dst[0] {
		t.Error("dst not reused")
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("values %v", got)
	}
	// MulVecT must zero its dst before accumulating.
	dt := []float64{50, 50}
	gt := m.MulVecT([]float64{1, 0}, dt)
	if gt[0] != 1 || gt[1] != 2 {
		t.Errorf("MulVecT with dirty dst = %v", gt)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMatrix(rng, 15, 9, 0.25)
	tt := m.Transpose().Transpose()
	if !reflect.DeepEqual(m.ToDense(), tt.ToDense()) {
		t.Error("double transpose differs")
	}
}

func TestVStack(t *testing.T) {
	a := FromDense([][]float64{{1, 0}, {0, 2}})
	b := FromDense([][]float64{{3, 4}})
	s := VStack(a, b)
	want := [][]float64{{1, 0}, {0, 2}, {3, 4}}
	if !reflect.DeepEqual(s.ToDense(), want) {
		t.Errorf("VStack = %v", s.ToDense())
	}
	if s.NNZ() != 4 {
		t.Errorf("VStack nnz = %d", s.NNZ())
	}
}

func TestVStackEmptyAndMismatch(t *testing.T) {
	e := VStack()
	if e.Rows() != 0 {
		t.Error("empty VStack rows")
	}
	defer func() {
		if recover() == nil {
			t.Error("column mismatch should panic")
		}
	}()
	VStack(FromDense([][]float64{{1}}), FromDense([][]float64{{1, 2}}))
}

func TestColumnNormsAndSums(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 0}, {0, -4}})
	norms := m.ColumnNormsSquared()
	if norms[0] != 10 || norms[1] != 20 {
		t.Errorf("norms = %v", norms)
	}
	sums := m.ColumnSums()
	if sums[0] != 4 || sums[1] != -2 {
		t.Errorf("sums = %v", sums)
	}
}

func TestTransposedColumnOps(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 0}, {0, -4}})
	tr := NewTransposed(m)
	if tr.ColNNZ(0) != 2 || tr.ColNNZ(1) != 2 {
		t.Errorf("ColNNZ wrong")
	}
	x := []float64{1, 1, 1}
	if got := tr.DotColumn(0, x); got != 4 {
		t.Errorf("DotColumn(0) = %v", got)
	}
	dst := make([]float64, 3)
	tr.AddScaledColumn(1, 2, dst)
	if dst[0] != 4 || dst[1] != 0 || dst[2] != -8 {
		t.Errorf("AddScaledColumn = %v", dst)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	b := NewBuilder(2, 2)
	for _, fn := range []func(){
		func() { b.Set(-1, 0, 1) },
		func() { b.Set(0, 2, 1) },
		func() { b.Set(2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRowIterationOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 10, 10, 0.4)
		ok := true
		for i := 0; i < m.Rows(); i++ {
			last := -1
			m.Row(i, func(j int, v float64) {
				if j <= last {
					ok = false
				}
				last = j
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
