package sparse

import (
	"math/rand"
	"testing"
)

func benchMatrix(rows, cols int, density float64) (*Matrix, []float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Set(i, j, rng.Float64())
			}
		}
	}
	x := make([]float64, cols)
	y := make([]float64, rows)
	for i := range x {
		x[i] = rng.Float64()
	}
	return b.Build(), x, y
}

func BenchmarkMulVec(b *testing.B) {
	m, x, y := benchMatrix(2000, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}

func BenchmarkMulVecT(b *testing.B) {
	m, _, _ := benchMatrix(2000, 500, 0.02)
	x := make([]float64, 2000)
	dst := make([]float64, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(x, dst)
	}
}

func BenchmarkBuilderBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	type trip struct {
		i, j int
		v    float64
	}
	trips := make([]trip, 50000)
	for k := range trips {
		trips[k] = trip{rng.Intn(2000), rng.Intn(500), rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		bu := NewBuilder(2000, 500)
		for _, t := range trips {
			bu.Set(t.i, t.j, t.v)
		}
		bu.Build()
	}
}
