package mpc

import (
	"reflect"
	"testing"
)

// Regression for the deficit flight-record events following map iteration
// order: the emission keys must come out sorted, identically on every
// call over the same map.
func TestSortedDeficitKeysIsDeterministic(t *testing.T) {
	m := map[[2]int]int{}
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			m[[2]int{u, v}] = u + v
		}
	}
	first := sortedDeficitKeys(m)
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("keys not in sorted order: %v before %v", a, b)
		}
	}
	for run := 0; run < 10; run++ {
		if got := sortedDeficitKeys(m); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d returned different order:\n  %v\nvs\n  %v", run, got, first)
		}
	}
}
