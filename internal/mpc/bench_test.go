package mpc

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/orbit"
)

// benchController builds a 529-satellite (23×23 Walker) controller over
// the equatorial chain intent — the ISSUE's ≥500-satellite scale for the
// horizon speedup claim.
func benchController(b *testing.B) *Controller {
	b.Helper()
	g := geo.MustGrid(10)
	sats := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200, Planes: 23, SatsPerPlane: 23, PhasingF: 1,
	}.Satellites()
	topo := intent.NewTopology(g)
	var cells []int
	for i := 0; i < 4; i++ {
		id := g.CellOf(geom.LatLon{Lat: 5, Lon: float64(-15 + i*10)})
		topo.AddCell(id, 3)
		cells = append(cells, id)
	}
	for i := 1; i < len(cells); i++ {
		topo.Connect(cells[i-1], cells[i], 1)
	}
	c, err := New(Config{
		Topo: topo, Sats: sats, LifetimeHorizon: 600, LifetimeStep: 60,
		Coverage: orbit.CoverageParams{MinElevation: geom.Deg2Rad(15)},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkCompileSlot measures one cold-cache slot compile at 529
// satellites (distinct slot times so the propagation memo never repeats).
func BenchmarkCompileSlot(b *testing.B) {
	c := benchController(b)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		c.Compile(float64(i) * 30)
	}
}

// BenchmarkCompileSlotWarm measures a fully memoized re-compile of the
// same slot — the upper bound the propagation cache buys.
func BenchmarkCompileSlotWarm(b *testing.B) {
	c := benchController(b)
	c.Compile(0)
	b.ReportAllocs()
	for b.Loop() {
		c.Compile(0)
	}
}

// BenchmarkHorizonCompile is the ISSUE's speedup benchmark: an 8-slot
// horizon at 529 satellites across 1/2/4/8 workers, fresh controller per
// run so every variant starts from a cold cache. On an 8-core runner
// workers=8 must beat workers=1 by ≥3×; compare the per-op times of the
// workers subtests.
func BenchmarkHorizonCompile(b *testing.B) {
	const (
		slots = 8
		dt    = 300.0
	)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				b.StopTimer()
				c := benchController(b)
				b.StartTimer()
				c.HorizonCompile(0, dt, slots, workers)
			}
		})
	}
}

// BenchmarkRepair measures incremental failover repair against a compiled
// slot whose geometry is already cached (the paper's §4.2 fast path).
func BenchmarkRepair(b *testing.B) {
	c := benchController(b)
	snap := c.Compile(0)
	if len(snap.InterLinks) == 0 {
		b.Fatal("no inter-links to fail")
	}
	fail := []Link{snap.InterLinks[0]}
	b.ReportAllocs()
	for b.Loop() {
		c.Repair(snap, fail, nil, 0)
	}
}
