package mpc

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyLinkNormalization: MakeLink is order-insensitive and Peer is
// its inverse.
func TestPropertyLinkNormalization(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		l := MakeLink(int(a), int(b))
		if l != MakeLink(int(b), int(a)) {
			return false
		}
		if l[0] > l[1] {
			return false
		}
		return l.Peer(int(a)) == int(b) && l.Peer(int(b)) == int(a) && l.Peer(1<<20) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompileInvariants checks structural invariants of compiled
// snapshots at arbitrary times: gateway uniqueness (one gateway duty per
// satellite), terminal budget, and link endpoints being gateways of the
// edge's two cells.
func TestPropertyCompileInvariants(t *testing.T) {
	c, _ := newController(t)
	f := func(slot uint8) bool {
		tt := float64(slot) * 97 // arbitrary non-round times
		snap := c.Compile(tt)
		// One gateway duty per satellite.
		duty := map[int]int{}
		for key, gws := range snap.Gateways {
			for _, g := range gws {
				duty[g]++
				// A gateway must cover its home cell.
				found := false
				for _, s := range snap.CellSats[key[0]] {
					if s == g {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		for _, n := range duty {
			if n > 1 {
				return false
			}
		}
		// Terminal budget: ≤ 3 links per satellite.
		degree := map[int]int{}
		for _, l := range snap.Links() {
			degree[l[0]]++
			degree[l[1]]++
		}
		for _, d := range degree {
			if d > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRepairIdempotentOnNoFailures: repairing with no failures
// must not change the link set.
func TestPropertyRepairIdempotentOnNoFailures(t *testing.T) {
	c, _ := newController(t)
	snap := c.Compile(0)
	repaired, stats := c.Repair(snap, nil, nil, 80*time.Millisecond)
	added, removed := DiffLinks(snap, repaired)
	if len(added)+len(removed) != 0 {
		t.Errorf("no-op repair changed links: +%v -%v", added, removed)
	}
	if len(stats.NewLinks) != 0 {
		t.Errorf("no-op repair installed %d links", len(stats.NewLinks))
	}
}
