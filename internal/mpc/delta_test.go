package mpc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// compareSnaps fails the test unless two snapshots are byte-identical
// (deep-equal structure plus identical canonical link order).
func compareSnaps(t *testing.T, slot int, full, delta *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(full, delta) {
		t.Fatalf("slot %d: delta snapshot diverged from full compile:\nfull:  %v\ndelta: %v", slot, full, delta)
	}
	fl, dl := full.Links(), delta.Links()
	if len(fl) != len(dl) {
		t.Fatalf("slot %d: link counts differ: %d vs %d", slot, len(fl), len(dl))
	}
	for i := range fl {
		if fl[i] != dl[i] {
			t.Fatalf("slot %d: links differ at %d: %v vs %v", slot, i, fl[i], dl[i])
		}
	}
}

// TestDeltaCompileGolden is the tentpole's golden test: a 20-slot
// DeltaCompile chain — including a mid-horizon Repair feeding the next
// delta — must produce snapshots byte-identical to sequential full
// compiles on an independent controller.
func TestDeltaCompileGolden(t *testing.T) {
	cFull, _ := newController(t)
	cDelta, _ := newController(t)
	const slots, dt = 20, 60.0
	var prevFull, prevDelta *Snapshot
	for s := 0; s < slots; s++ {
		tt := float64(s) * dt
		full := cFull.Compile(tt)
		delta := cDelta.DeltaCompile(prevDelta, tt)
		compareSnaps(t, s, full, delta)
		if s == slots/2 {
			// Mid-horizon Repair on both chains: the repaired snapshot
			// becomes the next slot's warm-start anchor.
			if len(full.InterLinks) == 0 {
				t.Fatal("need links to fail mid-horizon")
			}
			victim := full.InterLinks[0]
			full, _ = cFull.Repair(full, []Link{victim}, nil, 80*time.Millisecond)
			delta, _ = cDelta.Repair(delta, []Link{victim}, nil, 80*time.Millisecond)
			compareSnaps(t, s, full, delta)
		}
		prevFull, prevDelta = full, delta
	}
	_ = prevFull
	// The delta chain must actually have warmed up: the propagation
	// cache should report skipped visibility samples, or the delta path
	// did no incremental work at all.
	if st := cDelta.CacheStats(); st.WarmSkips == 0 {
		t.Errorf("delta chain skipped no visibility samples: %+v", st)
	}
}

// TestDeltaCompilePropertyRandomHorizon fuzzes the golden property over
// randomized slot spacings, repair times, and victims: whatever the
// horizon looks like, DeltaCompile must equal full Compile bit for bit.
func TestDeltaCompilePropertyRandomHorizon(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		cFull, _ := newController(t)
		cDelta, _ := newController(t)
		repairAt := 5 + rng.Intn(10)
		tt := 0.0
		var prevDelta *Snapshot
		for s := 0; s < 20; s++ {
			tt += math.Floor(rng.Float64()*120) + 15
			full := cFull.Compile(tt)
			delta := cDelta.DeltaCompile(prevDelta, tt)
			compareSnaps(t, s, full, delta)
			if s == repairAt && len(full.InterLinks) > 0 {
				victim := full.InterLinks[rng.Intn(len(full.InterLinks))]
				var deadSats []int
				if rng.Intn(2) == 0 {
					deadSats = []int{victim[0]}
				}
				full, _ = cFull.Repair(full, []Link{victim}, deadSats, 80*time.Millisecond)
				delta, _ = cDelta.Repair(delta, []Link{victim}, deadSats, 80*time.Millisecond)
				compareSnaps(t, s, full, delta)
			}
			prevDelta = delta
		}
	}
}

// TestDeltaCompileNilPrev documents the bootstrap contract: with no
// previous snapshot the delta path is exactly a full compile.
func TestDeltaCompileNilPrev(t *testing.T) {
	cFull, _ := newController(t)
	cDelta, _ := newController(t)
	compareSnaps(t, 0, cFull.Compile(0), cDelta.DeltaCompile(nil, 0))
}

// TestMeanLifetimeEmptyCell is the regression test for the empty-cell
// guard: a neighbor cell with no visible satellites must contribute a
// clean 0 preference weight, never NaN (NaN would poison every matching
// comparison downstream).
func TestMeanLifetimeEmptyCell(t *testing.T) {
	c, _ := newController(t)
	sg := c.geo.Slot(0)
	if tau := c.meanLifetime(sg, 0, nil); tau != 0 || math.IsNaN(tau) {
		t.Errorf("meanLifetime over empty cell = %v, want 0", tau)
	}
	if tau := c.meanLifetime(sg, 0, []int{}); tau != 0 || math.IsNaN(tau) {
		t.Errorf("meanLifetime over empty slice = %v, want 0", tau)
	}
}

// TestDiffLinksNilPrevSorted is the regression test for the bootstrap
// ordering bug: DiffLinks(nil, cur) used to return cur.Links() in
// inter-then-ring concatenation order, not canonical link order.
func TestDiffLinksNilPrevSorted(t *testing.T) {
	cur := &Snapshot{
		InterLinks: []Link{{5, 6}, {7, 9}},
		RingLinks:  []Link{{1, 2}, {3, 4}},
	}
	added, removed := DiffLinks(nil, cur)
	if removed != nil {
		t.Errorf("nil prev produced removals: %v", removed)
	}
	want := []Link{{1, 2}, {3, 4}, {5, 6}, {7, 9}}
	if !reflect.DeepEqual(added, want) {
		t.Errorf("bootstrap diff not in canonical order: %v, want %v", added, want)
	}
	// Run-twice determinism: identical inputs, identical output order.
	again, _ := DiffLinks(nil, cur)
	if !reflect.DeepEqual(added, again) {
		t.Errorf("bootstrap diff not deterministic: %v vs %v", added, again)
	}
}
