package mpc

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHorizonCompileGolden is the planner's acceptance gate: the parallel
// horizon compile must be byte-identical to running the same Compile
// calls sequentially on an independent controller.
func TestHorizonCompileGolden(t *testing.T) {
	const (
		slots = 6
		dt    = 300.0
	)
	seq, _ := newController(t)
	par, _ := newController(t)

	want := make([]*Snapshot, slots)
	for i := 0; i < slots; i++ {
		want[i] = seq.Compile(float64(i) * dt)
	}
	got := par.HorizonCompile(0, dt, slots, 8)

	if len(got) != slots {
		t.Fatalf("got %d snapshots, want %d", len(got), slots)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("slot %d: parallel snapshot differs from sequential\npar: %v\nseq: %v", i, got[i], want[i])
		}
	}
}

// TestHorizonCompileWorkerInvariance: the worker count is a throughput
// knob, never an output knob.
func TestHorizonCompileWorkerInvariance(t *testing.T) {
	const slots = 4
	var base []*Snapshot
	for _, workers := range []int{1, 3, 16} {
		c, _ := newController(t)
		out := c.HorizonCompile(100, 250, slots, workers)
		if base == nil {
			base = out
			continue
		}
		if !reflect.DeepEqual(out, base) {
			t.Errorf("workers=%d produced a different plan", workers)
		}
	}
}

// TestHorizonStreamOrder: deliveries arrive strictly in slot order with
// the slot times the sequential path would use.
func TestHorizonStreamOrder(t *testing.T) {
	c, _ := newController(t)
	const (
		t0    = 50.0
		dt    = 300.0
		slots = 5
	)
	next := 0
	c.HorizonStream(t0, dt, slots, 4, func(slot int, snap *Snapshot) {
		if slot != next {
			t.Fatalf("delivered slot %d, want %d", slot, next)
		}
		if want := t0 + float64(slot)*dt; snap.Time != want {
			t.Errorf("slot %d compiled at t=%v, want %v", slot, snap.Time, want)
		}
		next++
	})
	if next != slots {
		t.Fatalf("delivered %d slots, want %d", next, slots)
	}
}

// TestHorizonCompileDegenerate covers the edge parameters: zero/negative
// slot counts return empty plans and out-of-range worker counts clamp.
func TestHorizonCompileDegenerate(t *testing.T) {
	c, _ := newController(t)
	if out := c.HorizonCompile(0, 300, 0, 4); len(out) != 0 {
		t.Errorf("slots=0 returned %d snapshots", len(out))
	}
	if out := c.HorizonCompile(0, 300, -3, 4); len(out) != 0 {
		t.Errorf("slots=-3 returned %d snapshots", len(out))
	}
	if out := c.HorizonCompile(0, 300, 1, 0); len(out) != 1 || out[0] == nil {
		t.Error("workers=0 should clamp to 1 and still compile")
	}
	if out := c.HorizonCompile(0, 300, 2, 100); len(out) != 2 {
		t.Error("workers>slots should clamp to slots")
	}
}

// TestHorizonCompileConcurrentRepair exercises the planner and the
// incremental Repair path on the same controller (and thus the same
// propagation cache) concurrently; run under -race in CI it is the
// ISSUE's data-race regression test.
func TestHorizonCompileConcurrentRepair(t *testing.T) {
	c, _ := newController(t)
	base := c.Compile(0)
	if len(base.InterLinks) == 0 {
		t.Fatal("no inter-links to fail over")
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.HorizonCompile(0, 300, 4, 4)
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 3; k++ {
			fail := base.InterLinks[k%len(base.InterLinks)]
			repaired, _ := c.Repair(base, []Link{fail}, nil, 2*time.Millisecond)
			if repaired.LinkSet()[fail] {
				t.Errorf("repair %d kept the failed link %v", k, fail)
			}
		}
	}()
	wg.Wait()
}

// TestHorizonCompileReusesCache: a horizon window re-visiting a slot time
// must serve its geometry from the propagation cache (hits strictly grow).
func TestHorizonCompileReusesCache(t *testing.T) {
	c, _ := newController(t)
	c.HorizonCompile(0, 300, 3, 2)
	first := c.CacheStats()
	c.HorizonCompile(0, 300, 3, 2)
	second := c.CacheStats()
	if second.PosHits+second.LifeHits <= first.PosHits+first.LifeHits {
		t.Errorf("second pass did not hit the cache: first %+v second %+v", first, second)
	}
	if second.PosMisses != first.PosMisses {
		t.Errorf("second pass re-propagated: %d -> %d misses", first.PosMisses, second.PosMisses)
	}
}
