// Package mpc implements TinyLEO's orbital model predictive controller
// (paper §4.2): the shim layer that compiles a stable geographic topology
// intent G(V, E, N) into a concrete, time-evolving satellite topology.
//
// Per control slot it (1) predicts which satellites cover each intent cell
// from orbital laws, (2) runs a many-to-one Gale–Shapley matching per cell
// to allocate gateway satellites to each neighbor edge, using expected ISL
// lifetime τ as the preference, (3) runs a one-to-one stable matching
// between the gateway sets of adjacent cells to pick concrete ISLs, and
// (4) closes an intra-cell ring over each cell's gateways so segment
// anycast can always walk to the right gateway (§4.3). It also repairs
// unpredictable ISL/satellite failures by incremental re-matching.
package mpc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/orbit"
	"repro/internal/stablematch"
)

// Control-plane telemetry on the process-wide default registry (free
// unless obs.Enable() was called): the paper's Fig. 15 compile/repair
// latency and Fig. 16/17 enforcement and signaling signals.
var (
	obsCompileSeconds = obs.Default().Histogram("tinyleo_mpc_compile_seconds", obs.DefBuckets)
	obsCompiles       = obs.Default().Counter("tinyleo_mpc_compile_total")
	obsInterLinks     = obs.Default().Gauge("tinyleo_mpc_inter_links")
	obsRingLinks      = obs.Default().Gauge("tinyleo_mpc_ring_links")
	obsDeficitSlots   = obs.Default().Gauge("tinyleo_mpc_gateway_deficit_slots")
	obsEnforcement    = obs.Default().Gauge("tinyleo_mpc_enforcement_ratio")

	obsLinksAdded   = obs.Default().Counter("tinyleo_mpc_links_changed_total", "op", "added")
	obsLinksRemoved = obs.Default().Counter("tinyleo_mpc_links_changed_total", "op", "removed")

	// Delta-compile telemetry: how much of each incremental compile was
	// reused from the previous slot (cells/edges whose matching inputs
	// were bit-identical) versus rematched, and how many cells' visible
	// sets actually changed between the two slots.
	obsDeltaCompiles     = obs.Default().Counter("tinyleo_mpc_delta_compile_total")
	obsDeltaChangedCells = obs.Default().Gauge("tinyleo_mpc_delta_changed_cells")
	obsDeltaCellsReused  = obs.Default().Counter("tinyleo_mpc_delta_cells_total", "outcome", "reused")
	obsDeltaCellsMatched = obs.Default().Counter("tinyleo_mpc_delta_cells_total", "outcome", "rematched")
	obsDeltaEdgesReused  = obs.Default().Counter("tinyleo_mpc_delta_edges_total", "outcome", "reused")
	obsDeltaEdgesMatched = obs.Default().Counter("tinyleo_mpc_delta_edges_total", "outcome", "rematched")

	obsRepairs      = obs.Default().Counter("tinyleo_mpc_repair_total")
	obsRepairStage  = map[string]*obs.Histogram{} // report|compute|instruct|total
	obsRepairLinks  = obs.Default().Counter("tinyleo_mpc_repair_new_links_total")
	obsRepairMsgs   = obs.Default().Counter("tinyleo_mpc_repair_messages_total")
	obsRepairFailed = obs.Default().Counter("tinyleo_mpc_repair_unrepaired_total")
)

func init() {
	for _, stage := range []string{"report", "compute", "instruct", "total"} {
		obsRepairStage[stage] = obs.Default().Histogram(
			"tinyleo_mpc_repair_stage_seconds", obs.DefBuckets, "stage", stage)
	}
}

// Config parameterizes a controller.
type Config struct {
	Topo     *intent.Topology
	Sats     []orbit.Elements
	Coverage orbit.CoverageParams
	ISL      orbit.ISLParams
	// LifetimeHorizon/LifetimeStep bound the τ prediction (s). Defaults:
	// 1800 s horizon, 30 s step.
	LifetimeHorizon float64
	LifetimeStep    float64
	// MaxISLsPerSat is the satellite's laser terminal count (default 3:
	// one inter-cell gateway link + two intra-cell ring links).
	MaxISLsPerSat int
}

func (c *Config) fillDefaults() error {
	if c.Topo == nil {
		return errors.New("mpc: nil topology intent")
	}
	if len(c.Sats) == 0 {
		return errors.New("mpc: no satellites")
	}
	if c.Coverage.MinElevation == 0 {
		c.Coverage = orbit.DefaultCoverageParams
	}
	if c.ISL.MaxRange == 0 && c.ISL.GrazingMargin == 0 {
		c.ISL = orbit.DefaultISLParams
	}
	if c.LifetimeHorizon <= 0 {
		c.LifetimeHorizon = 1800
	}
	if c.LifetimeStep <= 0 {
		c.LifetimeStep = 30
	}
	if c.MaxISLsPerSat <= 0 {
		c.MaxISLsPerSat = 3
	}
	return nil
}

// Link is an undirected satellite pair (indices into Config.Sats), sorted.
type Link [2]int

// MakeLink normalizes the pair order.
func MakeLink(a, b int) Link {
	if a > b {
		a, b = b, a
	}
	return Link{a, b}
}

// Peer returns the other endpoint relative to end, or -1 if end is not an
// endpoint of the link.
func (l Link) Peer(end int) int {
	switch end {
	case l[0]:
		return l[1]
	case l[1]:
		return l[0]
	}
	return -1
}

// Snapshot is one compiled satellite topology.
type Snapshot struct {
	Time float64
	// CellSats[u] lists the satellites homed to intent cell u.
	CellSats map[int][]int
	// Gateways[{u,v}] lists the satellites of u serving the edge toward v
	// (directed key: [0]=home cell, [1]=neighbor cell).
	Gateways map[[2]int][]int
	// InterLinks are the inter-cell gateway ISLs; RingLinks the intra-cell
	// ring ISLs.
	InterLinks []Link
	RingLinks  []Link
	// Deficits[{u,v}] counts gateway slots the matching could not fill
	// (prediction shortfalls; should be rare after sparsification).
	Deficits map[[2]int]int
}

// Links returns all ISLs of the snapshot.
func (s *Snapshot) Links() []Link {
	out := make([]Link, 0, len(s.InterLinks)+len(s.RingLinks))
	out = append(out, s.InterLinks...)
	out = append(out, s.RingLinks...)
	return out
}

// LinkSet returns the snapshot's links as a set.
func (s *Snapshot) LinkSet() map[Link]bool {
	set := make(map[Link]bool, len(s.InterLinks)+len(s.RingLinks))
	for _, l := range s.InterLinks {
		set[l] = true
	}
	for _, l := range s.RingLinks {
		set[l] = true
	}
	return set
}

// Controller compiles intents slot by slot. Compile and Repair are safe
// for concurrent use (HorizonCompile runs one goroutine per slot): the
// config is read-only after New and all slot geometry flows through a
// concurrency-safe propagation cache.
type Controller struct {
	cfg Config
	// geo memoizes orbit propagation, pairwise ISL lifetimes, and
	// per-slot geometry across slots (and across Compile/Repair).
	geo *orbit.PropCache
	// footprint[s] is satellite s's coverage angular radius, constant
	// over time for circular orbits.
	footprint []float64
	// deltaMu serializes DeltaCompile calls: the delta state carries
	// per-cell and per-edge matching records from the previous delta
	// slot, so incremental compiles are inherently sequential.
	deltaMu sync.Mutex
	//tinyleo:guardedby deltaMu
	delta *deltaState
}

// deltaState is the warm-start memory a DeltaCompile chain carries from
// slot to slot: the last slot's coverage (for the changed-cell diff) and
// the matching records reuse is gated on. Reuse never trusts temporal
// coherence alone — a record is only replayed when every input the
// matching consumed (available satellites and the full τ weight matrix)
// is bit-identical to the recorded one, which makes the delta path's
// output byte-identical to a full compile by construction.
type deltaState struct {
	prev  *Snapshot
	cover [][]int
	cells map[int]*cellMatch
	edges map[[2]int]*edgeMatch
	// changed is the most recent slot-over-slot changed-cell count.
	changed int
}

// cellMatch records one cell's stage-1 many-to-one matching: the inputs
// it was computed from and the per-neighbor gateway assignment it
// produced.
type cellMatch struct {
	sats []int
	w    [][]float64
	gws  [][]int
}

// edgeMatch records one intent edge's stage-2 one-to-one matching: the
// two gateway sets, their pairwise τ matrix, and the concrete ISLs.
type edgeMatch struct {
	gu, gv []int
	w      [][]float64
	links  []Link
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// weightsEqual compares τ matrices by float64 bit pattern: reuse demands
// exact input identity, not numeric closeness.
func weightsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// New validates the config and creates a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		geo:       orbit.NewPropCache(cfg.Sats, cfg.ISL, cfg.LifetimeHorizon, cfg.LifetimeStep),
		footprint: make([]float64, len(cfg.Sats)),
	}
	for i, e := range cfg.Sats {
		c.footprint[i] = cfg.Coverage.FootprintRadius(e.Altitude())
	}
	return c, nil
}

// CacheStats reports the propagation cache's cumulative hit/miss/prune
// counters (the planner's cache-effectiveness telemetry reads this).
func (c *Controller) CacheStats() orbit.CacheStats { return c.geo.Stats() }

// Compile produces the satellite topology snapshot enforcing the intent at
// time t.
func (c *Controller) Compile(t float64) *Snapshot {
	return c.compile(t, nil)
}

// DeltaCompile produces the snapshot Compile(t) would — byte for byte —
// but warm-starts from the previous slot: pair-lifetime predictions skip
// visibility samples a prior evaluation already observed (the dominant
// compile cost), and a cell's or edge's stable matching is replayed from
// the previous slot's record whenever every matching input (available
// satellites, gateway sets, and the full τ weight matrix) is
// bit-identical. prev anchors the changed-cell diff; passing nil falls
// back to a full compile. Calls are serialized per controller — the
// warm-start state is a slot-to-slot chain — while Compile and Repair
// may still run concurrently.
func (c *Controller) DeltaCompile(prev *Snapshot, t float64) *Snapshot {
	if prev == nil {
		return c.Compile(t)
	}
	c.geo.EnableWarmLifetimes()
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	if c.delta == nil {
		c.delta = &deltaState{cells: map[int]*cellMatch{}, edges: map[[2]int]*edgeMatch{}}
	}
	c.delta.prev = prev
	snap := c.compile(t, c.delta)
	obsDeltaCompiles.Inc()
	obsDeltaChangedCells.Set(float64(c.delta.changed))
	return snap
}

// compile is the shared three-stage pipeline behind Compile and
// DeltaCompile. A nil ds runs the full path; a non-nil ds additionally
// consults and refreshes the delta chain's matching records. Both paths
// execute the identical stage structure, so their snapshots are
// byte-identical by construction.
func (c *Controller) compile(t float64, ds *deltaState) *Snapshot {
	kind := "compile"
	if ds != nil {
		kind = "delta"
	}
	span := obs.StartSpan("mpc.compile", "t", strconv.FormatFloat(t, 'f', 0, 64), "kind", kind)
	//lint:tinyleo-ignore wall-clock compile latency feeds telemetry only, never the snapshot
	start := time.Now()
	defer func() { span.End() }()
	cfg := &c.cfg
	snap := &Snapshot{
		Time:     t,
		CellSats: map[int][]int{},
		Gateways: map[[2]int][]int{},
		Deficits: map[[2]int]int{},
	}
	// Stage 0: predict satellite→cell coverage (§4.2 "it first predicts
	// which satellites cover it"). A satellite belongs to every declared
	// cell whose center its footprint covers; the gateway matching below
	// enforces the terminal budget by assigning each satellite to at most
	// one cell's gateway duty. Slot geometry (positions, sub-satellite
	// points, the ISL-range pruning grid) comes from the propagation
	// cache and is shared with every other slot of a horizon compile and
	// with Repair at the same slot time.
	sg := c.geo.Slot(t)
	cells := cfg.Topo.Cells()
	centers := make([]geom.LatLon, len(cells))
	for ci, u := range cells {
		centers[ci] = cfg.Topo.Grid.Center(u)
	}
	cover := sg.Coverage(centers, c.footprint)
	for ci, u := range cells {
		if len(cover[ci]) > 0 {
			snap.CellSats[u] = cover[ci]
		}
	}
	if ds != nil {
		// The changed-cell set is a cheap diff on cached geometry: cells
		// outside it kept their visible-satellite set and are the reuse
		// candidates the matching records below capitalize on.
		prevCover := make([][]int, len(cells))
		for ci, u := range cells {
			prevCover[ci] = ds.prev.CellSats[u]
		}
		ds.changed = len(orbit.ChangedCells(prevCover, cover))
		ds.cover = cover
	}

	// Stage 1: per-cell many-to-one gateway matching. Satellites already
	// holding a gateway assignment from an earlier cell are excluded, so
	// each satellite spends at most one terminal on gateway duty (plus two
	// on its home cell's ring). Cells with the largest gateway demand match
	// first so shared satellites go where they are scarcest.
	order := append([]int(nil), cells...)
	demandOf := func(u int) int {
		d := 0
		for _, v := range cfg.Topo.Neighbors(u) {
			d += cfg.Topo.EdgeDemand(u, v)
		}
		return d
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := demandOf(order[a]), demandOf(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	taken := make(map[int]bool)
	for _, u := range order {
		var sats []int
		for _, s := range snap.CellSats[u] {
			if !taken[s] {
				sats = append(sats, s)
			}
		}
		neighbors := cfg.Topo.Neighbors(u)
		if len(sats) == 0 || len(neighbors) == 0 {
			for _, v := range neighbors {
				snap.Deficits[[2]int{u, v}] += cfg.Topo.EdgeDemand(u, v)
			}
			continue
		}
		// Preference weights: τ_{s,v} = mean predicted ISL lifetime from s
		// to the satellites currently homed in v (Equation in §4.2).
		w := make([][]float64, len(sats))
		for i, s := range sats {
			w[i] = make([]float64, len(neighbors))
			for j, v := range neighbors {
				w[i][j] = c.meanLifetime(sg, s, snap.CellSats[v])
			}
		}
		// Warm start: the matching is a pure function of (sats, w, caps)
		// — caps is the static intent demand — so a record with
		// bit-identical inputs replays its assignment without running
		// Gale–Shapley again.
		var assignedGws [][]int
		if ds != nil {
			if rec := ds.cells[u]; rec != nil && intsEqual(rec.sats, sats) && weightsEqual(rec.w, w) {
				assignedGws = rec.gws
				obsDeltaCellsReused.Inc()
			}
		}
		if assignedGws == nil {
			satPrefs := stablematch.PrefsFromWeights(w, 0)
			// Neighbor cells rank satellites by the same lifetime.
			rw := make([][]float64, len(neighbors))
			caps := make([]int, len(neighbors))
			for j, v := range neighbors {
				rw[j] = make([]float64, len(sats))
				for i := range sats {
					rw[j][i] = w[i][j]
				}
				caps[j] = cfg.Topo.EdgeDemand(u, v)
			}
			rPrefs := stablematch.PrefsFromWeights(rw, 0)
			rRank := stablematch.RanksFromPrefs(rPrefs, len(sats))
			_, assigned := stablematch.ManyToOne(satPrefs, rRank, caps)
			assignedGws = make([][]int, len(neighbors))
			for j, held := range assigned {
				gws := make([]int, 0, len(held))
				for _, i := range held {
					gws = append(gws, sats[i])
				}
				assignedGws[j] = gws
			}
			if ds != nil {
				ds.cells[u] = &cellMatch{sats: append([]int(nil), sats...), w: w, gws: assignedGws}
				obsDeltaCellsMatched.Inc()
			}
		}
		for j, v := range neighbors {
			gws := make([]int, 0, len(assignedGws[j]))
			gws = append(gws, assignedGws[j]...)
			for _, g := range gws {
				taken[g] = true
			}
			snap.Gateways[[2]int{u, v}] = gws
			if d := cfg.Topo.EdgeDemand(u, v) - len(gws); d > 0 {
				snap.Deficits[[2]int{u, v}] += d
			}
		}
	}

	// Stage 2: one-to-one matching of gateway sets across each edge.
	seen := map[[2]int]bool{}
	for key := range snap.Gateways {
		u, v := key[0], key[1]
		ek := [2]int{min(u, v), max(u, v)}
		if seen[ek] {
			continue
		}
		seen[ek] = true
		gu := snap.Gateways[[2]int{ek[0], ek[1]}]
		gv := snap.Gateways[[2]int{ek[1], ek[0]}]
		if len(gu) == 0 || len(gv) == 0 {
			continue
		}
		w := make([][]float64, len(gu))
		for i, s := range gu {
			w[i] = make([]float64, len(gv))
			for j, s2 := range gv {
				w[i][j] = c.pairLifetime(sg, s, s2)
			}
		}
		if ds != nil {
			if rec := ds.edges[ek]; rec != nil && intsEqual(rec.gu, gu) && intsEqual(rec.gv, gv) && weightsEqual(rec.w, w) {
				snap.InterLinks = append(snap.InterLinks, rec.links...)
				obsDeltaEdgesReused.Inc()
				continue
			}
		}
		pPrefs := stablematch.PrefsFromWeights(w, 0)
		rw := make([][]float64, len(gv))
		for j := range gv {
			rw[j] = make([]float64, len(gu))
			for i := range gu {
				rw[j][i] = w[i][j]
			}
		}
		rRank := stablematch.RanksFromPrefs(stablematch.PrefsFromWeights(rw, 0), len(gu))
		match := stablematch.OneToOne(pPrefs, rRank)
		var links []Link
		for i, j := range match {
			if j >= 0 {
				links = append(links, MakeLink(gu[i], gv[j]))
			}
		}
		snap.InterLinks = append(snap.InterLinks, links...)
		if ds != nil {
			ds.edges[ek] = &edgeMatch{
				gu: append([]int(nil), gu...), gv: append([]int(nil), gv...),
				w: w, links: links,
			}
			obsDeltaEdgesMatched.Inc()
		}
	}
	sort.Slice(snap.InterLinks, func(a, b int) bool { return lessLink(snap.InterLinks[a], snap.InterLinks[b]) })

	// Stage 3: intra-cell ring over each cell's gateway satellites, ordered
	// by orbital phase for short ring hops.
	for _, u := range cells {
		ringSet := map[int]bool{}
		for _, v := range cfg.Topo.Neighbors(u) {
			for _, s := range snap.Gateways[[2]int{u, v}] {
				ringSet[s] = true
			}
		}
		if len(ringSet) < 2 {
			continue
		}
		members := make([]int, 0, len(ringSet))
		for s := range ringSet {
			members = append(members, s)
		}
		// Order by sub-satellite longitude then latitude for a short ring.
		sort.Slice(members, func(a, b int) bool {
			pa := sg.SubPoint(members[a])
			pb := sg.SubPoint(members[b])
			if pa.Lon != pb.Lon {
				return pa.Lon < pb.Lon
			}
			if pa.Lat != pb.Lat {
				return pa.Lat < pb.Lat
			}
			return members[a] < members[b]
		})
		if len(members) == 2 {
			snap.RingLinks = append(snap.RingLinks, MakeLink(members[0], members[1]))
			continue
		}
		for i := range members {
			snap.RingLinks = append(snap.RingLinks, MakeLink(members[i], members[(i+1)%len(members)]))
		}
	}
	sort.Slice(snap.RingLinks, func(a, b int) bool { return lessLink(snap.RingLinks[a], snap.RingLinks[b]) })
	obsCompiles.Inc()
	//lint:tinyleo-ignore wall-clock compile latency feeds telemetry only, never the snapshot
	obsCompileSeconds.ObserveDuration(time.Since(start))
	obsInterLinks.Set(float64(len(snap.InterLinks)))
	obsRingLinks.Set(float64(len(snap.RingLinks)))
	deficit := 0
	for _, d := range snap.Deficits {
		deficit += d
	}
	obsDeficitSlots.Set(float64(deficit))
	if flightrec.Enabled() {
		flightrec.Emit(flightrec.CompMPC, "slot_compiled",
			"t", strconv.FormatFloat(t, 'f', 0, 64),
			"inter", strconv.Itoa(len(snap.InterLinks)),
			"ring", strconv.Itoa(len(snap.RingLinks)),
			"deficit_slots", strconv.Itoa(deficit))
		// Sorted edge order: the flight record is part of the canonical
		// per-seed output, so deficit events must not follow map order.
		for _, key := range sortedDeficitKeys(snap.Deficits) {
			if d := snap.Deficits[key]; d > 0 {
				flightrec.Emit(flightrec.CompMPC, "deficit",
					"edge", flightrec.EdgeKey(key[0], key[1]),
					"slots", strconv.Itoa(d))
			}
		}
		st := flightState(snap, kind)
		// Computing the ratio here also publishes the enforcement gauge
		// before the SLO engine evaluates this slot, so the availability
		// rule never reads a stale pre-compile value.
		st.Enforcement = c.EnforcementRatio(snap)
		flightrec.RecordSlot(st)
	}
	return snap
}

// sortedDeficitKeys returns the deficit edge keys in lexicographic
// order: deficit events land in the flight record, which is diffed
// byte-for-byte across runs, so emission must not follow map order.
func sortedDeficitKeys(m map[[2]int]int) [][2]int {
	keys := make([][2]int, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

// flightState converts a compiled snapshot into the recorder's
// plain-data slot form (O(snapshot) allocation, once per control slot).
func flightState(s *Snapshot, kind string) flightrec.SlotState {
	st := flightrec.SlotState{
		Time:       s.Time,
		Kind:       kind,
		InterLinks: make([][2]int, len(s.InterLinks)),
		RingLinks:  make([][2]int, len(s.RingLinks)),
		CellSats:   make(map[int][]int, len(s.CellSats)),
	}
	for i, l := range s.InterLinks {
		st.InterLinks[i] = [2]int(l)
	}
	for i, l := range s.RingLinks {
		st.RingLinks[i] = [2]int(l)
	}
	for u, sats := range s.CellSats {
		st.CellSats[u] = append([]int(nil), sats...)
	}
	if len(s.Gateways) > 0 {
		st.Gateways = make(map[string][]int, len(s.Gateways))
		for key, gws := range s.Gateways {
			st.Gateways[flightrec.EdgeKey(key[0], key[1])] = append([]int(nil), gws...)
		}
	}
	if len(s.Deficits) > 0 {
		st.Deficits = make(map[string]int, len(s.Deficits))
		for key, d := range s.Deficits {
			st.Deficits[flightrec.EdgeKey(key[0], key[1])] = d
		}
	}
	return st
}

func lessLink(a, b Link) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// lifetime predicts τ_{s,s'}: how long an ISL between satellites s and s'
// established at t would last. Served from the propagation cache.
func (c *Controller) lifetime(s, s2 int, t float64) float64 {
	return c.geo.Lifetime(s, s2, t)
}

// pairLifetime is lifetime with the slot's spatial-grid prune in front:
// a pair the grid rejects is out of ISL range at the slot time, so its τ
// is exactly 0 and no propagation is spent on it.
func (c *Controller) pairLifetime(sg *orbit.SlotGeom, s, s2 int) float64 {
	if !sg.InRange(s, s2) {
		return 0
	}
	return c.geo.Lifetime(s, s2, sg.Time)
}

// meanLifetime is τ_{s,v} = (1/n_v)·Σ_{s'∈v} τ_{s,s'}, with out-of-range
// pairs pruned by the slot's spatial grid (they contribute exactly 0).
func (c *Controller) meanLifetime(sg *orbit.SlotGeom, s int, vSats []int) float64 {
	if len(vSats) == 0 {
		return 0
	}
	sum := 0.0
	for _, s2 := range vSats {
		sum += c.pairLifetime(sg, s, s2)
	}
	return sum / float64(len(vSats))
}

// DiffLinks returns the ISLs added and removed between snapshots: the
// reconfiguration commands the controller must send (2 messages per change,
// one to each endpoint satellite).
func DiffLinks(prev, cur *Snapshot) (added, removed []Link) {
	if prev == nil {
		// Bootstrap path: sort exactly like the steady-state path below.
		// Links() concatenates inter then ring links, which is not
		// canonical link order, and delta enforcement depends on every
		// diff arriving in the same canonical command order.
		added = cur.Links()
		sort.Slice(added, func(a, b int) bool { return lessLink(added[a], added[b]) })
		obsLinksAdded.Add(int64(len(added)))
		return added, nil
	}
	ps, cs := prev.LinkSet(), cur.LinkSet()
	for l := range cs {
		if !ps[l] {
			added = append(added, l)
		}
	}
	for l := range ps {
		if !cs[l] {
			removed = append(removed, l)
		}
	}
	sort.Slice(added, func(a, b int) bool { return lessLink(added[a], added[b]) })
	sort.Slice(removed, func(a, b int) bool { return lessLink(removed[a], removed[b]) })
	obsLinksAdded.Add(int64(len(added)))
	obsLinksRemoved.Add(int64(len(removed)))
	return
}

// EnforcementRatio reports what fraction of the intent's total edge ISL
// demand the snapshot satisfies (Figure 16's enforcement metric).
func (c *Controller) EnforcementRatio(s *Snapshot) float64 {
	totalDemand, satisfied := 0, 0
	seen := map[[2]int]bool{}
	for e, n := range c.cfg.Topo.Edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		totalDemand += n
		// Count concrete links between the gateway sets of e.
		gu := map[int]bool{}
		for _, s2 := range s.Gateways[[2]int{e[0], e[1]}] {
			gu[s2] = true
		}
		gv := map[int]bool{}
		for _, s2 := range s.Gateways[[2]int{e[1], e[0]}] {
			gv[s2] = true
		}
		links := 0
		for _, l := range s.InterLinks {
			if (gu[l[0]] && gv[l[1]]) || (gu[l[1]] && gv[l[0]]) {
				links++
			}
		}
		if links > n {
			links = n
		}
		satisfied += links
	}
	if totalDemand == 0 {
		obsEnforcement.Set(1)
		return 1
	}
	ratio := float64(satisfied) / float64(totalDemand)
	obsEnforcement.Set(ratio)
	return ratio
}

// RepairStats summarizes one failure-repair round (Figure 17d).
type RepairStats struct {
	// ReportRTT is the satellite→controller failure-notification delay.
	ReportRTT time.Duration
	// ComputeTime is the measured controller matching time.
	ComputeTime time.Duration
	// InstructRTT is the controller→satellite repair-command delay.
	InstructRTT time.Duration
	// NewLinks are the replacement ISLs installed.
	NewLinks []Link
	// Messages is the southbound signaling count (2 per new link + 1 per
	// failure report).
	Messages int
	// Unrepaired counts failed links with no available replacement.
	Unrepaired int
}

// Total returns the end-to-end repair time.
func (r RepairStats) Total() time.Duration {
	return r.ReportRTT + r.ComputeTime + r.InstructRTT
}

// Repair reacts to unpredictable failures (§4.2 "Repairing unpredictable
// failures"): it removes the failed links/satellites from the snapshot,
// recomputes the residual gateway demand, and incrementally matches
// replacements. rtt models the unavoidable controller round-trip (the
// paper measures 83.5 ms of its 83.8 ms average repair time as RTT).
func (c *Controller) Repair(s *Snapshot, failedLinks []Link, failedSats []int, rtt time.Duration) (*Snapshot, RepairStats) {
	span := obs.StartSpan("mpc.repair",
		"failed_links", strconv.Itoa(len(failedLinks)), "failed_sats", strconv.Itoa(len(failedSats)))
	defer span.End()
	if flightrec.Enabled() {
		for _, l := range failedLinks {
			flightrec.Emit(flightrec.CompMPC, "isl_fail",
				"a", strconv.Itoa(l[0]), "b", strconv.Itoa(l[1]),
				"t", strconv.FormatFloat(s.Time, 'f', 0, 64))
		}
		for _, f := range failedSats {
			flightrec.Emit(flightrec.CompMPC, "sat_fail",
				"sat", strconv.Itoa(f),
				"t", strconv.FormatFloat(s.Time, 'f', 0, 64))
		}
	}
	//lint:tinyleo-ignore RepairStats.ComputeTime reports measured wall latency; topology outputs do not depend on it
	start := time.Now()
	stats := RepairStats{ReportRTT: rtt / 2, InstructRTT: rtt / 2}
	stats.Messages = len(failedLinks) + len(failedSats)
	dead := map[int]bool{}
	for _, f := range failedSats {
		dead[f] = true
	}
	failSet := map[Link]bool{}
	for _, l := range failedLinks {
		failSet[l] = true
	}
	out := &Snapshot{
		Time:     s.Time,
		CellSats: map[int][]int{},
		Gateways: map[[2]int][]int{},
		Deficits: map[[2]int]int{},
	}
	for u, sats := range s.CellSats {
		for _, sat := range sats {
			if !dead[sat] {
				out.CellSats[u] = append(out.CellSats[u], sat)
			}
		}
	}
	for k, d := range s.Deficits {
		out.Deficits[k] = d
	}
	// Remaining healthy inter-links and their gateway assignments.
	busy := map[int]bool{} // satellites already serving a gateway link
	for key, gws := range s.Gateways {
		var kept []int
		for _, g := range gws {
			if !dead[g] {
				kept = append(kept, g)
			}
		}
		out.Gateways[key] = kept
	}
	for _, l := range s.InterLinks {
		if failSet[l] || dead[l[0]] || dead[l[1]] {
			// Edge loses one ISL; gateway slots reopen.
			c.dropGateway(out, l)
			continue
		}
		out.InterLinks = append(out.InterLinks, l)
		busy[l[0]], busy[l[1]] = true, true
	}
	// Re-match residual demand per edge, counting satisfied ISLs the same
	// way EnforcementRatio does: concrete links between the two gateway
	// sets of the edge.
	countEdgeLinks := func(e [2]int) int {
		gu := map[int]bool{}
		for _, g := range out.Gateways[[2]int{e[0], e[1]}] {
			gu[g] = true
		}
		gv := map[int]bool{}
		for _, g := range out.Gateways[[2]int{e[1], e[0]}] {
			gv[g] = true
		}
		n := 0
		for _, l := range out.InterLinks {
			if (gu[l[0]] && gv[l[1]]) || (gu[l[1]] && gv[l[0]]) {
				n++
			}
		}
		return n
	}
	// Reuse the compiled slot's cached geometry: Repair runs at the same
	// slot time as the Compile that produced s, so the spatial grid and
	// every pair lifetime it consults are already memoized.
	sg := c.geo.Slot(s.Time)
	// Iterate intent edges in a fixed order: replacement satellites are a
	// shared resource (the busy map), so map-order iteration would let the
	// runtime's randomized order decide which edge wins a scarce satellite
	// and produce different repaired topologies for identical inputs.
	edges := make([][2]int, 0, len(c.cfg.Topo.Edges))
	for e := range c.cfg.Topo.Edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		n := c.cfg.Topo.Edges[e]
		have := countEdgeLinks(e)
		for have < n {
			a, b, ok := c.bestReplacement(sg, out, e, busy, failSet)
			if !ok {
				stats.Unrepaired += n - have
				break
			}
			l := MakeLink(a, b)
			out.InterLinks = append(out.InterLinks, l)
			out.Gateways[[2]int{e[0], e[1]}] = appendUnique(out.Gateways[[2]int{e[0], e[1]}], a)
			out.Gateways[[2]int{e[1], e[0]}] = appendUnique(out.Gateways[[2]int{e[1], e[0]}], b)
			busy[a], busy[b] = true, true
			stats.NewLinks = append(stats.NewLinks, l)
			stats.Messages += 2
			have++
			if flightrec.Enabled() {
				// Counterpart of the isl_fail emission above: the inspector
				// pairs them to render per-link repair timelines.
				flightrec.Emit(flightrec.CompMPC, "isl_add",
					"a", strconv.Itoa(l[0]), "b", strconv.Itoa(l[1]),
					"edge", fmt.Sprintf("%d-%d", e[0], e[1]),
					"t", strconv.FormatFloat(s.Time, 'f', 0, 64))
			}
		}
	}
	sort.Slice(out.InterLinks, func(a, b int) bool { return lessLink(out.InterLinks[a], out.InterLinks[b]) })
	// Rebuild rings from the (possibly changed) gateway sets.
	c.rebuildRings(out)
	// Ring changes are also instructions.
	_, ringAdded := DiffLinks(&Snapshot{InterLinks: s.RingLinks}, &Snapshot{InterLinks: out.RingLinks})
	stats.Messages += 2 * len(ringAdded)
	//lint:tinyleo-ignore RepairStats.ComputeTime reports measured wall latency; topology outputs do not depend on it
	stats.ComputeTime = time.Since(start)
	stats.observe()
	if flightrec.Enabled() {
		flightrec.Emit(flightrec.CompMPC, "repair",
			"new_links", strconv.Itoa(len(stats.NewLinks)),
			"messages", strconv.Itoa(stats.Messages),
			"unrepaired", strconv.Itoa(stats.Unrepaired),
			"total_ms", strconv.FormatFloat(stats.Total().Seconds()*1e3, 'f', 1, 64))
		if stats.Unrepaired == 0 {
			flightrec.Emit(flightrec.CompMPC, "recovered",
				"inter", strconv.Itoa(len(out.InterLinks)))
		} else {
			flightrec.Emit(flightrec.CompMPC, "degraded",
				"unrepaired", strconv.Itoa(stats.Unrepaired))
		}
		st := flightState(out, "repair")
		// As in Compile: publish the post-repair enforcement gauge before
		// the SLO evaluation this RecordSlot triggers.
		st.Enforcement = c.EnforcementRatio(out)
		flightrec.RecordSlot(st)
	}
	return out, stats
}

// observe records the repair round on the default telemetry registry
// (Fig. 15 repair-latency stages, Fig. 17 signaling counts).
func (r RepairStats) observe() {
	obsRepairs.Inc()
	obsRepairStage["report"].ObserveDuration(r.ReportRTT)
	obsRepairStage["compute"].ObserveDuration(r.ComputeTime)
	obsRepairStage["instruct"].ObserveDuration(r.InstructRTT)
	obsRepairStage["total"].ObserveDuration(r.Total())
	obsRepairLinks.Add(int64(len(r.NewLinks)))
	obsRepairMsgs.Add(int64(r.Messages))
	obsRepairFailed.Add(int64(r.Unrepaired))
}

// dropGateway releases the gateway assignments of a failed link's
// endpoints (each satellite holds at most one gateway duty, so removing
// the endpoints from every list is exact).
func (c *Controller) dropGateway(s *Snapshot, l Link) {
	for key, gws := range s.Gateways {
		var kept []int
		for _, g := range gws {
			if g != l[0] && g != l[1] {
				kept = append(kept, g)
			}
		}
		s.Gateways[key] = kept
	}
}

// linkServesEdge reports whether a link's endpoints cover the edge's two
// cells (used by tests to validate compiled links).
func (c *Controller) linkServesEdge(s *Snapshot, l Link, e [2]int) bool {
	inCell := func(sat, cell int) bool {
		for _, x := range s.CellSats[cell] {
			if x == sat {
				return true
			}
		}
		return false
	}
	return (inCell(l[0], e[0]) && inCell(l[1], e[1])) || (inCell(l[0], e[1]) && inCell(l[1], e[0]))
}

// bestReplacement finds the longest-lived available satellite pair across
// edge e whose link is not itself failed. Returned as (satellite in e[0],
// satellite in e[1]). Candidate pairs out of ISL range are pruned by the
// slot's spatial grid before any lifetime prediction runs.
func (c *Controller) bestReplacement(sg *orbit.SlotGeom, s *Snapshot, e [2]int, busy map[int]bool, failSet map[Link]bool) (int, int, bool) {
	bestTau := 0.0
	var bestA, bestB int
	found := false
	for _, a := range s.CellSats[e[0]] {
		if busy[a] {
			continue
		}
		for _, b := range s.CellSats[e[1]] {
			if busy[b] || a == b {
				continue
			}
			if failSet[MakeLink(a, b)] {
				continue
			}
			if tau := c.pairLifetime(sg, a, b); tau > bestTau {
				bestTau, bestA, bestB, found = tau, a, b, true
			}
		}
	}
	return bestA, bestB, found
}

func (c *Controller) rebuildRings(s *Snapshot) {
	s.RingLinks = nil
	for _, u := range c.cfg.Topo.Cells() {
		ringSet := map[int]bool{}
		for _, v := range c.cfg.Topo.Neighbors(u) {
			for _, g := range s.Gateways[[2]int{u, v}] {
				if g >= 0 {
					ringSet[g] = true
				}
			}
		}
		if len(ringSet) < 2 {
			continue
		}
		members := make([]int, 0, len(ringSet))
		for g := range ringSet {
			members = append(members, g)
		}
		sort.Ints(members)
		if len(members) == 2 {
			s.RingLinks = append(s.RingLinks, MakeLink(members[0], members[1]))
			continue
		}
		for i := range members {
			s.RingLinks = append(s.RingLinks, MakeLink(members[i], members[(i+1)%len(members)]))
		}
	}
	sort.Slice(s.RingLinks, func(a, b int) bool { return lessLink(s.RingLinks[a], s.RingLinks[b]) })
}

func appendUnique(list []int, v int) []int {
	if v < 0 {
		return list
	}
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

// String summarizes a snapshot.
func (s *Snapshot) String() string {
	return fmt.Sprintf("snapshot{t=%.0fs cells=%d inter=%d ring=%d deficits=%d}",
		s.Time, len(s.CellSats), len(s.InterLinks), len(s.RingLinks), len(s.Deficits))
}
