package mpc

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/orbit"
)

// denseTestbed builds a Walker constellation dense enough that a small
// equatorial chain intent always has satellites overhead, plus the chain
// intent itself.
func denseTestbed(t *testing.T) (*intent.Topology, []orbit.Elements, []int) {
	t.Helper()
	g := geo.MustGrid(10)
	// High-altitude dense Walker with a 15° min-elevation footprint so every
	// 10° test cell reliably has several satellites overhead.
	sats := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200, Planes: 24, SatsPerPlane: 24, PhasingF: 1,
	}.Satellites()
	topo := intent.NewTopology(g)
	var cells []int
	for i := 0; i < 4; i++ {
		id := g.CellOf(geom.LatLon{Lat: 5, Lon: float64(-15 + i*10)})
		topo.AddCell(id, 3)
		cells = append(cells, id)
	}
	for i := 1; i < len(cells); i++ {
		topo.Connect(cells[i-1], cells[i], 1)
	}
	return topo, sats, cells
}

func newController(t *testing.T) (*Controller, []int) {
	t.Helper()
	topo, sats, cells := denseTestbed(t)
	c, err := New(Config{
		Topo: topo, Sats: sats, LifetimeHorizon: 600, LifetimeStep: 60,
		Coverage: orbit.CoverageParams{MinElevation: geom.Deg2Rad(15)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cells
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	topo, _, _ := denseTestbed(t)
	if _, err := New(Config{Topo: topo}); err == nil {
		t.Error("empty satellite list accepted")
	}
}

func TestCompileProducesLinks(t *testing.T) {
	c, cells := newController(t)
	snap := c.Compile(0)
	if len(snap.CellSats) == 0 {
		t.Fatal("no satellites homed to cells")
	}
	if len(snap.InterLinks) == 0 {
		t.Fatal("no inter-cell ISLs compiled")
	}
	// Every intent edge should be served (dense constellation).
	ratio := c.EnforcementRatio(snap)
	if ratio < 0.99 {
		t.Errorf("enforcement ratio = %v (deficits %v)", ratio, snap.Deficits)
	}
	// Each inter-link connects satellites homed to adjacent intent cells.
	for _, l := range snap.InterLinks {
		served := false
		for i := 1; i < len(cells); i++ {
			if c.linkServesEdge(snap, l, [2]int{min(cells[i-1], cells[i]), max(cells[i-1], cells[i])}) {
				served = true
			}
		}
		if !served {
			t.Errorf("link %v serves no intent edge", l)
		}
	}
}

func TestCompileRespectsTerminalBudget(t *testing.T) {
	c, _ := newController(t)
	snap := c.Compile(0)
	degree := map[int]int{}
	for _, l := range snap.Links() {
		degree[l[0]]++
		degree[l[1]]++
	}
	for sat, d := range degree {
		if d > c.cfg.MaxISLsPerSat {
			t.Errorf("satellite %d uses %d ISL terminals (max %d)", sat, d, c.cfg.MaxISLsPerSat)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	c, _ := newController(t)
	a := c.Compile(0)
	b := c.Compile(0)
	al, bl := a.Links(), b.Links()
	if len(al) != len(bl) {
		t.Fatalf("link counts differ: %d vs %d", len(al), len(bl))
	}
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("links differ at %d: %v vs %v", i, al[i], bl[i])
		}
	}
}

func TestIntentStableWhileTopologyEvolves(t *testing.T) {
	// The paper's headline property (Figure 16): the geographic intent is
	// fixed while the compiled satellite topology changes over time.
	c, _ := newController(t)
	prev := c.Compile(0)
	changedAtLeastOnce := false
	for _, tt := range []float64{300, 600, 900} {
		cur := c.Compile(tt)
		if r := c.EnforcementRatio(cur); r < 0.95 {
			t.Errorf("t=%v: enforcement %v", tt, r)
		}
		added, removed := DiffLinks(prev, cur)
		if len(added)+len(removed) > 0 {
			changedAtLeastOnce = true
		}
		prev = cur
	}
	if !changedAtLeastOnce {
		t.Error("satellite topology never changed over 15 minutes of LEO motion; suspicious")
	}
}

func TestLifetimePreferenceFavorsStableLinks(t *testing.T) {
	// τ must be positive for an adjacent co-orbital pair and zero for an
	// occluded pair.
	c, _ := newController(t)
	if tau := c.lifetime(0, 1, 0); tau <= 0 {
		t.Errorf("co-orbital neighbors lifetime = %v", tau)
	}
	n := len(c.cfg.Sats)
	if tau := c.lifetime(0, n/2, 0); tau != 0 {
		// Opposite side of the constellation: should be invisible.
		t.Logf("lifetime to far satellite = %v (may be visible depending on geometry)", tau)
	}
}

func TestMakeLinkNormalizes(t *testing.T) {
	if MakeLink(5, 2) != (Link{2, 5}) {
		t.Error("MakeLink does not sort")
	}
	if MakeLink(2, 5) != MakeLink(5, 2) {
		t.Error("MakeLink not symmetric")
	}
}

func TestDiffLinks(t *testing.T) {
	a := &Snapshot{InterLinks: []Link{{1, 2}, {3, 4}}}
	b := &Snapshot{InterLinks: []Link{{3, 4}, {5, 6}}}
	added, removed := DiffLinks(a, b)
	if len(added) != 1 || added[0] != (Link{5, 6}) {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != (Link{1, 2}) {
		t.Errorf("removed = %v", removed)
	}
	// Nil previous snapshot: everything is new.
	added, removed = DiffLinks(nil, b)
	if len(added) != 2 || removed != nil {
		t.Errorf("nil prev: %v %v", added, removed)
	}
}

func TestRepairReplacesFailedLink(t *testing.T) {
	c, _ := newController(t)
	snap := c.Compile(0)
	if len(snap.InterLinks) == 0 {
		t.Fatal("need links to fail")
	}
	victim := snap.InterLinks[0]
	before := c.EnforcementRatio(snap)
	repaired, stats := c.Repair(snap, []Link{victim}, nil, 83*time.Millisecond)
	if stats.Messages == 0 {
		t.Error("repair sent no messages")
	}
	if stats.Total() < 83*time.Millisecond {
		t.Errorf("repair total %v below the RTT floor", stats.Total())
	}
	// The victim link must be gone.
	for _, l := range repaired.InterLinks {
		if l == victim {
			t.Error("failed link still present")
		}
	}
	after := c.EnforcementRatio(repaired)
	if after < before-1e-9 && stats.Unrepaired > 0 {
		t.Logf("unrepaired: %d (acceptable if no spare satellites)", stats.Unrepaired)
	} else if after < before-1e-9 {
		t.Errorf("enforcement dropped %v -> %v without unrepaired report", before, after)
	}
}

func TestRepairSurvivesSatelliteFailure(t *testing.T) {
	c, _ := newController(t)
	snap := c.Compile(0)
	if len(snap.InterLinks) == 0 {
		t.Fatal("need links")
	}
	deadSat := snap.InterLinks[0][0]
	repaired, _ := c.Repair(snap, nil, []int{deadSat}, 80*time.Millisecond)
	for _, l := range repaired.Links() {
		if l[0] == deadSat || l[1] == deadSat {
			t.Errorf("dead satellite %d still linked via %v", deadSat, l)
		}
	}
	for _, sats := range repaired.CellSats {
		for _, s := range sats {
			if s == deadSat {
				t.Error("dead satellite still homed to a cell")
			}
		}
	}
}

func TestRepairTimeDominatedByRTT(t *testing.T) {
	// Figure 17d: 83.5 of 83.8 ms is RTT; compute is sub-millisecond at
	// this scale.
	c, _ := newController(t)
	snap := c.Compile(0)
	if len(snap.InterLinks) == 0 {
		t.Fatal("need links")
	}
	_, stats := c.Repair(snap, []Link{snap.InterLinks[0]}, nil, 83*time.Millisecond)
	if stats.ComputeTime > 50*time.Millisecond {
		t.Errorf("compute time %v too large", stats.ComputeTime)
	}
	if frac := float64(stats.ReportRTT+stats.InstructRTT) / float64(stats.Total()); frac < 0.5 {
		t.Errorf("RTT fraction = %v; repair should be RTT-dominated", frac)
	}
}

func TestRingConnectsGateways(t *testing.T) {
	c, cells := newController(t)
	snap := c.Compile(0)
	// For the middle cell (2 edges), its gateways must be ring-connected if
	// there are ≥ 2 of them.
	u := cells[1]
	gws := map[int]bool{}
	for _, v := range c.cfg.Topo.Neighbors(u) {
		for _, g := range snap.Gateways[[2]int{u, v}] {
			gws[g] = true
		}
	}
	if len(gws) < 2 {
		t.Skip("fewer than 2 gateways; ring not required")
	}
	ringDegree := map[int]int{}
	for _, l := range snap.RingLinks {
		if gws[l[0]] && gws[l[1]] {
			ringDegree[l[0]]++
			ringDegree[l[1]]++
		}
	}
	for g := range gws {
		if ringDegree[g] == 0 {
			t.Errorf("gateway %d of cell %d not on the ring", g, u)
		}
	}
}
