package mpc

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The horizon planner compiles a window of future control slots across a
// bounded worker pool. Slots are independent — Compile(t) is a pure
// function of the config and t — so the planner fans one goroutine out
// per slot and lets the shared propagation cache amortize the orbit
// geometry that adjacent slots have in common (§4.2's "precompute
// offline, assemble online" split). Results are delivered strictly in
// slot order, and the parallel output is byte-identical to running the
// same Compile calls sequentially (horizon_test.go holds this golden).

// Planner telemetry on the process-wide registry: horizon throughput,
// worker-pool utilization, and propagation-cache effectiveness.
var (
	obsHorizonSeconds  = obs.Default().Histogram("tinyleo_mpc_horizon_seconds", obs.DefBuckets)
	obsHorizonSlots    = obs.Default().Counter("tinyleo_mpc_horizon_slots_total")
	obsHorizonRate     = obs.Default().Gauge("tinyleo_mpc_horizon_slots_per_sec")
	obsHorizonWorkers  = obs.Default().Gauge("tinyleo_mpc_horizon_workers")
	obsHorizonUtil     = obs.Default().Gauge("tinyleo_mpc_horizon_worker_utilization")
	obsCacheHitRatio   = obs.Default().Gauge("tinyleo_orbit_cache_hit_ratio")
	obsCachePosHits    = obs.Default().Gauge("tinyleo_orbit_cache_lookups", "kind", "pos_hit")
	obsCachePosMisses  = obs.Default().Gauge("tinyleo_orbit_cache_lookups", "kind", "pos_miss")
	obsCacheLifeHits   = obs.Default().Gauge("tinyleo_orbit_cache_lookups", "kind", "lifetime_hit")
	obsCacheLifeMisses = obs.Default().Gauge("tinyleo_orbit_cache_lookups", "kind", "lifetime_miss")
	obsCachePruned     = obs.Default().Gauge("tinyleo_orbit_cache_pruned_pairs")
)

// HorizonCompile compiles `slots` consecutive control slots — times
// t0, t0+dt, …, t0+(slots−1)·dt — across a pool of `workers` goroutines
// and returns the snapshots in slot order. workers ≤ 1 degenerates to a
// sequential compile; the output is identical either way.
func (c *Controller) HorizonCompile(t0, dt float64, slots, workers int) []*Snapshot {
	if slots <= 0 {
		return nil
	}
	out := make([]*Snapshot, slots)
	c.HorizonStream(t0, dt, slots, workers, func(slot int, snap *Snapshot) {
		out[slot] = snap
	})
	return out
}

// HorizonStream is HorizonCompile with pipelined delivery: deliver is
// called on the caller's goroutine, strictly in slot order, as soon as
// each slot's snapshot (and all earlier ones) is ready — so southbound
// enforcement of slot k can overlap compilation of slots k+1… . deliver
// must not be nil.
func (c *Controller) HorizonStream(t0, dt float64, slots, workers int, deliver func(slot int, snap *Snapshot)) {
	if slots <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > slots {
		workers = slots
	}
	span := obs.StartSpan("mpc.horizon",
		"t0", strconv.FormatFloat(t0, 'f', 0, 64),
		"slots", strconv.Itoa(slots),
		"workers", strconv.Itoa(workers))
	defer span.End()
	//lint:tinyleo-ignore horizon wall/busy timing feeds speedup telemetry only; snapshots are pure functions of (t0, dt)
	start := time.Now()

	// One buffered result slot per control slot: workers never block on
	// a slow consumer, and the delivery loop below imposes slot order.
	results := make([]chan *Snapshot, slots)
	for i := range results {
		results[i] = make(chan *Snapshot, 1)
	}
	jobs := make(chan int)
	var busy atomic.Int64 // summed worker compute time, ns
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for slot := range jobs {
				//lint:tinyleo-ignore per-slot busy time is speedup telemetry; compile output is independent of it
				s := time.Now()
				results[slot] <- c.Compile(t0 + float64(slot)*dt)
				//lint:tinyleo-ignore per-slot busy time is speedup telemetry; compile output is independent of it
				busy.Add(int64(time.Since(s)))
			}
		}()
	}
	//tinyleo:goroutine feeder exits after queueing all slots; the workers above always drain jobs
	go func() {
		for slot := 0; slot < slots; slot++ {
			jobs <- slot
		}
		close(jobs)
	}()
	for slot := 0; slot < slots; slot++ {
		deliver(slot, <-results[slot])
	}
	wg.Wait()

	//lint:tinyleo-ignore horizon wall/busy timing feeds speedup telemetry only; snapshots are pure functions of (t0, dt)
	wall := time.Since(start)
	obsHorizonSeconds.ObserveDuration(wall)
	obsHorizonSlots.Add(int64(slots))
	obsHorizonWorkers.Set(float64(workers))
	if s := wall.Seconds(); s > 0 {
		obsHorizonRate.Set(float64(slots) / s)
		obsHorizonUtil.Set(float64(busy.Load()) / (s * 1e9 * float64(workers)))
	}
	c.publishCacheStats()
}

// publishCacheStats mirrors the propagation cache's cumulative counters
// onto the registry (exposed as gauges holding monotonic totals).
func (c *Controller) publishCacheStats() {
	st := c.geo.Stats()
	obsCacheHitRatio.Set(st.HitRatio())
	obsCachePosHits.Set(float64(st.PosHits))
	obsCachePosMisses.Set(float64(st.PosMisses))
	obsCacheLifeHits.Set(float64(st.LifeHits))
	obsCacheLifeMisses.Set(float64(st.LifeMisses))
	obsCachePruned.Set(float64(st.PrunedPairs))
}
