package dataplane

import (
	"sort"
	"strconv"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// Data-plane telemetry on the process-wide default registry. These sit on
// the per-packet forwarding path, so they rely on obs instruments costing
// ~1 ns when the registry is disabled (see internal/obs/bench_test.go).
var (
	dpForwarded = obs.Default().Counter("tinyleo_dataplane_forwarded_total")
	dpDelivered = obs.Default().Counter("tinyleo_dataplane_delivered_total")
	dpBuffered  = obs.Default().Counter("tinyleo_dataplane_buffered_total")
	dpFailovers = obs.Default().Counter("tinyleo_dataplane_failovers_total")
	dpRingHops  = obs.Default().Counter("tinyleo_dataplane_ring_fallback_total")
	dpHops      = obs.Default().Histogram("tinyleo_dataplane_delivery_hops", obs.HopBuckets)

	// dpDropped is keyed by the forwarder's drop reasons; unknown reasons
	// fall back to a registry lookup.
	dpDropped = map[string]*obs.Counter{
		"hop limit":               obs.Default().Counter("tinyleo_dataplane_dropped_total", "reason", "hop limit"),
		"no route":                obs.Default().Counter("tinyleo_dataplane_dropped_total", "reason", "no route"),
		"missing link":            obs.Default().Counter("tinyleo_dataplane_dropped_total", "reason", "missing link"),
		"link down or queue full": obs.Default().Counter("tinyleo_dataplane_dropped_total", "reason", "link down or queue full"),
	}
)

// Satellite is one forwarding node.
type Satellite struct {
	ID   int
	Cell int // home geographic cell

	net      *Network
	links    map[int]*netem.Link
	RingNext int // successor on the intra-cell gateway ring, -1 if none

	// RoutingTable is the legacy baseline's per-destination next hop
	// (destination *satellite* ID → peer satellite ID). Only consulted for
	// packets without a geo segment header.
	RoutingTable map[uint32]int

	// Buffer holds packets waiting for control-plane repair (§4.3 worst
	// case: the ring is disconnected).
	Buffer []*Packet

	// multipath holds installed multipath groups by destination cell.
	multipath map[int]*MultipathGroup

	// Stats
	Forwarded int64 // packets sent onward
	Delivered int64 // packets handed to the ground segment here
	Dropped   int64
	Buffered  int64
	RingHops  int64 // forwards that used the ring fallback
	Failovers int64 // forwards that bypassed a down/absent primary link
}

// Receive processes a packet arriving at (or injected into) the satellite.
//
//tinyleo:hotpath
func (s *Satellite) Receive(p *Packet) {
	p.HopTrace = append(p.HopTrace, s.ID)
	if p.Geo != nil {
		s.forwardGeo(p)
		return
	}
	s.forwardLegacy(p)
}

// forwardGeo implements §4.3's geographic segment anycast.
//
//tinyleo:hotpath
func (s *Satellite) forwardGeo(p *Packet) {
	g := p.Geo
	// Consume every segment this satellite's cell satisfies (a route may
	// legitimately enter the cell that several segments point at after
	// anycast shortcuts).
	for g.CurrentSegment() == s.Cell {
		g.Advance()
	}
	if g.SegmentsLeft == 0 {
		// Final segment reached: this satellite covers the destination
		// cell; hand off to the ground segment.
		s.Delivered++
		dpDelivered.Inc()
		dpHops.Observe(float64(len(p.HopTrace)))
		if s.net.OnDeliver != nil {
			s.net.OnDeliver(s, p)
		}
		return
	}
	if p.Base.HopLimit == 0 {
		s.drop(p, "hop limit")
		return
	}
	p.Base.HopLimit--

	next := g.CurrentSegment()
	// Primary: any up ISL to a satellite covering the next-hop cell.
	// Anycast: any such gateway works; pick deterministically (lowest peer
	// ID) among up links, counting a failover if a down link was skipped.
	var candidates []int
	sawDown := false
	for peer, l := range s.links {
		ps := s.net.Sats[peer]
		if ps == nil || ps.Cell != next {
			continue
		}
		if !l.IsUp() {
			sawDown = true
			continue
		}
		candidates = append(candidates, peer)
	}
	if len(candidates) > 0 {
		sort.Ints(candidates)
		if sawDown {
			s.Failovers++
			dpFailovers.Inc()
			if flightrec.Enabled() {
				s.emitEvent("failover", "next_cell", strconv.Itoa(next),
					"via", strconv.Itoa(candidates[0]))
			}
		}
		s.send(candidates[0], p)
		return
	}
	if sawDown {
		s.Failovers++
		dpFailovers.Inc()
		if flightrec.Enabled() {
			s.emitEvent("failover", "next_cell", strconv.Itoa(next))
		}
	}
	// Fallback: pass clockwise along the intra-cell gateway ring; the ring
	// visits every gateway of this cell, one of which has the ISL toward
	// the next cell (§4.3 delivery guarantee).
	if s.RingNext >= 0 {
		if l := s.links[s.RingNext]; l != nil && l.IsUp() {
			s.RingHops++
			dpRingHops.Inc()
			if flightrec.Enabled() {
				s.emitEvent("ring_fallback", "next_cell", strconv.Itoa(next),
					"ring_next", strconv.Itoa(s.RingNext))
			}
			s.send(s.RingNext, p)
			return
		}
	}
	// Worst case: ring disconnected by failures. Buffer until the MPC
	// repairs the topology (§4.3).
	s.Buffered++
	dpBuffered.Inc()
	if flightrec.Enabled() {
		s.emitEvent("buffered", "next_cell", strconv.Itoa(next))
	}
	s.Buffer = append(s.Buffer, p)
}

// forwardLegacy implements the routing-table baseline: no anycast, no
// local failover — a down next-hop link means the packet waits for the
// remote control plane (we buffer it, mirroring Figure 19d's comparison).
//
//tinyleo:hotpath
func (s *Satellite) forwardLegacy(p *Packet) {
	dstSat := p.Base.FlowID // legacy mode: FlowID carries the destination satellite
	if uint32(s.ID) == dstSat {
		s.Delivered++
		dpDelivered.Inc()
		dpHops.Observe(float64(len(p.HopTrace)))
		if s.net.OnDeliver != nil {
			s.net.OnDeliver(s, p)
		}
		return
	}
	if p.Base.HopLimit == 0 {
		s.drop(p, "hop limit")
		return
	}
	p.Base.HopLimit--
	nh, ok := s.RoutingTable[dstSat]
	if !ok {
		s.drop(p, "no route")
		return
	}
	l := s.links[nh]
	if l == nil || !l.IsUp() {
		// Legacy data plane cannot reroute locally; wait for control plane.
		s.Buffered++
		dpBuffered.Inc()
		s.Buffer = append(s.Buffer, p)
		return
	}
	s.send(nh, p)
}

// send forwards p over the ISL toward peer, dropping on down links and
// full queues.
//
//tinyleo:hotpath
func (s *Satellite) send(peer int, p *Packet) {
	l := s.links[peer]
	if l == nil {
		s.drop(p, "missing link")
		return
	}
	if !l.Send(s.ID, p.WireSize(), p) {
		s.drop(p, "link down or queue full")
		return
	}
	s.Forwarded++
	dpForwarded.Inc()
}

// drop accounts a dropped packet and notifies hooks.
//
//tinyleo:hotpath
func (s *Satellite) drop(p *Packet, reason string) {
	s.Dropped++
	if c, ok := dpDropped[reason]; ok {
		c.Inc()
	} else if obs.Default().Enabled() {
		// Uncommon reason string: the label lookup allocates, so pay it
		// only while telemetry is on.
		obs.Default().Counter("tinyleo_dataplane_dropped_total", "reason", reason).Inc()
	}
	if flightrec.Enabled() {
		s.emitEvent("drop", "reason", reason)
	}
	if s.net.OnDrop != nil {
		s.net.OnDrop(s, p, reason)
	}
}

// emitEvent records a flight-recorder event for this satellite. Call
// sites guard with flightrec.Enabled() BEFORE formatting attributes, so
// the per-packet forwarder pays a single atomic load while recording is
// off; drops, failovers, ring fallbacks, and buffering are rare relative
// to forwards, keeping the enabled cost off the common path too.
func (s *Satellite) emitEvent(typ string, attrs ...string) {
	flightrec.Emit(flightrec.CompDataplane, typ,
		append([]string{"sat", strconv.Itoa(s.ID), "cell", strconv.Itoa(s.Cell)}, attrs...)...)
}

// Peers returns the satellite's ISL peers in ascending order.
func (s *Satellite) Peers() []int {
	out := make([]int, 0, len(s.links))
	for p := range s.links {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
