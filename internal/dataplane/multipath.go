package dataplane

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Multipath load balancing (§4.2's "multipath load balancing [39]" policy,
// Figure 18c): a source satellite holds several installed geographic
// routes for a destination and sprays flows across them by flow hash, so
// one flow stays on one path (no reordering) while the aggregate spreads.

// MultipathGroup is a set of routes toward one destination cell.
type MultipathGroup struct {
	DstCell int
	Routes  [][]int // each a full cell route, last element == DstCell
}

// InstallMultipath installs a group at satellite sat. Routes must be
// non-empty and agree on the destination cell.
func (n *Network) InstallMultipath(sat int, routes [][]int) (*MultipathGroup, error) {
	s := n.Sats[sat]
	if s == nil {
		return nil, fmt.Errorf("dataplane: unknown satellite %d", sat)
	}
	if len(routes) == 0 {
		return nil, errors.New("dataplane: empty multipath group")
	}
	dst := -1
	for _, r := range routes {
		if len(r) == 0 {
			return nil, errors.New("dataplane: empty route in multipath group")
		}
		d := r[len(r)-1]
		if dst == -1 {
			dst = d
		} else if d != dst {
			return nil, fmt.Errorf("dataplane: multipath routes disagree on destination (%d vs %d)", dst, d)
		}
	}
	g := &MultipathGroup{DstCell: dst, Routes: routes}
	if s.multipath == nil {
		s.multipath = map[int]*MultipathGroup{}
	}
	s.multipath[dst] = g
	return g, nil
}

// RouteFor deterministically picks the group's route for a flow ID.
func (g *MultipathGroup) RouteFor(flow uint32) []int {
	h := fnv.New32a()
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(flow>>24), byte(flow>>16), byte(flow>>8), byte(flow)
	h.Write(b[:])
	return g.Routes[int(h.Sum32())%len(g.Routes)]
}

// SendFlow emits a packet of the given flow from satellite sat toward the
// installed multipath destination, choosing the route by flow hash.
func (n *Network) SendFlow(sat, dstCell int, flow, seq uint32, payload []byte) error {
	s := n.Sats[sat]
	if s == nil {
		return fmt.Errorf("dataplane: unknown satellite %d", sat)
	}
	g := s.multipath[dstCell]
	if g == nil {
		return fmt.Errorf("dataplane: no multipath group for cell %d at satellite %d", dstCell, sat)
	}
	p, err := NewGeoPacket(uint32(sat), g.RouteFor(flow), flow, seq, payload)
	if err != nil {
		return err
	}
	n.Inject(sat, p)
	return nil
}
