package dataplane

import (
	"fmt"

	"repro/internal/netem"
)

// Network is an emulated satellite data plane: satellites joined by netem
// links, forwarding geo-segment (TinyLEO) or legacy routed packets.
type Network struct {
	Sim  *netem.Sim
	Sats map[int]*Satellite
	// OnDeliver fires when a packet reaches a satellite covering its final
	// segment cell (i.e. is handed to the ground segment).
	OnDeliver func(sat *Satellite, p *Packet)
	// OnDrop fires when a packet is dropped (hop limit, no route, queue).
	OnDrop func(sat *Satellite, p *Packet, reason string)

	links []*netem.Link
	// Defaults for new links.
	ISLRateBps float64
	QueueLimit int
}

// ISLRateBpsDefault is the paper's 200 Gbps laser ISL.
const ISLRateBpsDefault = 200e9

// NewNetwork creates an empty network on a fresh simulator.
func NewNetwork() *Network {
	return &Network{
		Sim:        netem.NewSim(),
		Sats:       map[int]*Satellite{},
		ISLRateBps: ISLRateBpsDefault,
		QueueLimit: 4096,
	}
}

// AddSatellite registers a satellite homed to cell.
func (n *Network) AddSatellite(id, cell int) *Satellite {
	s := &Satellite{ID: id, Cell: cell, net: n, links: map[int]*netem.Link{}, RingNext: -1}
	n.Sats[id] = s
	return s
}

// Connect creates an ISL between satellites a and b with one-way
// propagation delay (seconds). Returns the link.
func (n *Network) Connect(a, b int, delay float64) *netem.Link {
	sa, sb := n.Sats[a], n.Sats[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("dataplane: Connect unknown satellites %d-%d", a, b))
	}
	l := netem.NewLink(n.Sim, a, b, n.ISLRateBps, delay, n.QueueLimit, n.deliver)
	sa.links[b] = l
	sb.links[a] = l
	n.links = append(n.links, l)
	return l
}

// EnsureLink returns the ISL between a and b, creating it (with the given
// propagation delay) if absent and re-raising it if administratively down.
// Control-plane repair uses it to apply topology diffs onto a live network
// without rebuilding it (which would reset link statistics).
func (n *Network) EnsureLink(a, b int, delay float64) *netem.Link {
	if l := n.Link(a, b); l != nil {
		if !l.IsUp() {
			l.Up()
		}
		return l
	}
	return n.Connect(a, b, delay)
}

// Link returns the ISL between a and b, or nil.
func (n *Network) Link(a, b int) *netem.Link {
	if sa := n.Sats[a]; sa != nil {
		return sa.links[b]
	}
	return nil
}

// Links returns every ISL in creation order.
func (n *Network) Links() []*netem.Link { return n.links }

// deliver is the netem receive hook: hand the packet to the receiving
// satellite's forwarder.
func (n *Network) deliver(at, from int, payload any) {
	s := n.Sats[at]
	if s == nil {
		return
	}
	s.Receive(payload.(*Packet))
}

// Inject starts a packet at satellite sat (e.g. received from a ground
// terminal) and forwards it.
func (n *Network) Inject(sat int, p *Packet) {
	s := n.Sats[sat]
	if s == nil {
		panic(fmt.Sprintf("dataplane: Inject at unknown satellite %d", sat))
	}
	p.SentAt = n.Sim.Now()
	s.Receive(p)
}

// SetRing installs an intra-cell gateway ring: members in cycle order;
// each member's RingNext points at its successor. A nil/short slice clears
// nothing (rings of <2 satellites don't exist).
func (n *Network) SetRing(members []int) {
	if len(members) < 2 {
		return
	}
	for i, id := range members {
		if s := n.Sats[id]; s != nil {
			s.RingNext = members[(i+1)%len(members)]
		}
	}
}

// FlushBuffers re-attempts forwarding of every buffered packet (called
// after the control plane repairs topology, §4.3's "buffered until MPC
// repairs the ring").
func (n *Network) FlushBuffers() {
	for _, s := range n.Sats {
		buf := s.Buffer
		s.Buffer = nil
		for _, p := range buf {
			s.Receive(p)
		}
	}
}
