package dataplane

import (
	"testing"
)

// chainNet builds a 3-cell chain with 2 gateways per cell:
//
//	cell 10: sats 0,1   cell 20: sats 2,3   cell 30: sats 4,5
//
// Inter-cell ISLs: 0-2, 1-3 (10↔20) and 2-4, 3-5 (20↔30).
// Rings: (0,1), (2,3), (4,5).
func chainNet() *Network {
	n := NewNetwork()
	cells := map[int]int{0: 10, 1: 10, 2: 20, 3: 20, 4: 30, 5: 30}
	for id, c := range cells {
		n.AddSatellite(id, c)
	}
	d := 0.005 // 5 ms per hop
	n.Connect(0, 2, d)
	n.Connect(1, 3, d)
	n.Connect(2, 4, d)
	n.Connect(3, 5, d)
	n.SetRing([]int{0, 1})
	n.SetRing([]int{2, 3})
	n.SetRing([]int{4, 5})
	n.Connect(0, 1, 0.001)
	n.Connect(2, 3, 0.001)
	n.Connect(4, 5, 0.001)
	return n
}

func TestGeoForwardingDelivers(t *testing.T) {
	n := chainNet()
	var deliveredAt *Satellite
	var deliveredPkt *Packet
	n.OnDeliver = func(s *Satellite, p *Packet) { deliveredAt, deliveredPkt = s, p }
	p, err := NewGeoPacket(99, []int{20, 30}, 1, 1, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	n.Inject(0, p)
	n.Sim.Run(1)
	if deliveredAt == nil {
		t.Fatal("packet not delivered")
	}
	if deliveredAt.Cell != 30 {
		t.Errorf("delivered at cell %d", deliveredAt.Cell)
	}
	if len(deliveredPkt.HopTrace) == 0 || deliveredPkt.HopTrace[0] != 0 {
		t.Errorf("trace = %v", deliveredPkt.HopTrace)
	}
	if deliveredPkt.Geo.SegmentsLeft != 0 {
		t.Error("segments not consumed")
	}
}

func TestGeoForwardingLatencyIsPropagation(t *testing.T) {
	n := chainNet()
	var deliveredTime float64
	n.OnDeliver = func(s *Satellite, p *Packet) { deliveredTime = n.Sim.Now() }
	p, _ := NewGeoPacket(99, []int{20, 30}, 1, 1, nil)
	n.Inject(0, p)
	n.Sim.Run(1)
	// Two 5 ms hops (0→2→4); serialization at 200 Gbps is negligible.
	if deliveredTime < 0.0099 || deliveredTime > 0.0111 {
		t.Errorf("delivery at %v s, want ≈0.010", deliveredTime)
	}
}

func TestAnycastAnyGatewayWorks(t *testing.T) {
	// Injecting at satellite 1 (the other gateway of cell 10) must also
	// deliver — that is the anycast property.
	n := chainNet()
	done := false
	n.OnDeliver = func(s *Satellite, p *Packet) { done = true }
	p, _ := NewGeoPacket(99, []int{20, 30}, 1, 1, nil)
	n.Inject(1, p)
	n.Sim.Run(1)
	if !done {
		t.Fatal("anycast via second gateway failed")
	}
}

func TestRingFallbackWhenNoDirectISL(t *testing.T) {
	// Satellite 0 has the only ISL toward cell 20 removed; a packet
	// injected at 0 must walk the ring to 1 and leave via 1-3.
	n := NewNetwork()
	for id, c := range map[int]int{0: 10, 1: 10, 3: 20} {
		n.AddSatellite(id, c)
	}
	n.Connect(1, 3, 0.005)
	n.Connect(0, 1, 0.001)
	n.SetRing([]int{0, 1})
	done := false
	n.OnDeliver = func(s *Satellite, p *Packet) { done = true }
	p, _ := NewGeoPacket(99, []int{20}, 1, 1, nil)
	n.Inject(0, p)
	n.Sim.Run(1)
	if !done {
		t.Fatal("ring fallback failed")
	}
	if n.Sats[0].RingHops != 1 {
		t.Errorf("ring hops = %d", n.Sats[0].RingHops)
	}
}

func TestLocalFailoverOnLinkDown(t *testing.T) {
	// Down the 0-2 ISL: satellite 0 must reroute via the ring to 1→3
	// without any control-plane involvement (Figure 19d).
	n := chainNet()
	n.Link(0, 2).Down()
	done := false
	var at float64
	n.OnDeliver = func(s *Satellite, p *Packet) { done, at = true, n.Sim.Now() }
	p, _ := NewGeoPacket(99, []int{20, 30}, 1, 1, nil)
	n.Inject(0, p)
	n.Sim.Run(1)
	if !done {
		t.Fatal("failover failed")
	}
	if n.Sats[0].Failovers != 1 {
		t.Errorf("failovers = %d", n.Sats[0].Failovers)
	}
	// Extra ring hop adds ~1 ms.
	if at < 0.0105 || at > 0.02 {
		t.Errorf("failover delivery at %v", at)
	}
}

func TestBufferWhenRingBroken(t *testing.T) {
	// All of satellite 0's exits die: packet must be buffered, then flushed
	// after "repair" (link back up).
	n := chainNet()
	n.Link(0, 2).Down()
	n.Link(0, 1).Down()
	done := false
	n.OnDeliver = func(s *Satellite, p *Packet) { done = true }
	p, _ := NewGeoPacket(99, []int{20, 30}, 1, 1, nil)
	n.Inject(0, p)
	n.Sim.Run(0.1)
	if done {
		t.Fatal("delivered despite partition")
	}
	if n.Sats[0].Buffered != 1 || len(n.Sats[0].Buffer) != 1 {
		t.Fatalf("not buffered: %d", n.Sats[0].Buffered)
	}
	// Control plane repairs the ISL; flush.
	n.Link(0, 2).Up()
	n.FlushBuffers()
	n.Sim.Run(1)
	if !done {
		t.Error("buffered packet not delivered after repair")
	}
}

func TestHopLimitDrops(t *testing.T) {
	// Two satellites in the same cell pointing at each other as ring
	// would loop forever without the hop limit... but same-cell segments
	// are consumed, so build a 2-cell ping-pong instead: route to a cell
	// with no gateway anywhere reachable.
	n := NewNetwork()
	n.AddSatellite(0, 10)
	n.AddSatellite(1, 10)
	n.Connect(0, 1, 0.001)
	n.SetRing([]int{0, 1})
	dropped := false
	reason := ""
	n.OnDrop = func(s *Satellite, p *Packet, r string) { dropped, reason = true, r }
	p, _ := NewGeoPacket(99, []int{20}, 1, 1, nil) // cell 20 does not exist
	n.Inject(0, p)
	n.Sim.Run(5)
	if !dropped {
		t.Fatal("looping packet never dropped")
	}
	if reason != "hop limit" {
		t.Errorf("reason = %q", reason)
	}
}

func TestLegacyForwarding(t *testing.T) {
	n := chainNet()
	// Legacy tables: route to satellite 4 via 2.
	n.Sats[0].RoutingTable = map[uint32]int{4: 2}
	n.Sats[2].RoutingTable = map[uint32]int{4: 4}
	done := false
	n.OnDeliver = func(s *Satellite, p *Packet) { done = s.ID == 4 }
	p := &Packet{Base: BaseHeader{Ver: Version, HopLimit: 16, FlowID: 4}}
	n.Inject(0, p)
	n.Sim.Run(1)
	if !done {
		t.Fatal("legacy packet not delivered")
	}
}

func TestLegacyNoLocalFailover(t *testing.T) {
	// Same route, but the 0→2 link is down: the legacy plane buffers and
	// waits for the control plane (no ring fallback).
	n := chainNet()
	n.Sats[0].RoutingTable = map[uint32]int{4: 2}
	n.Sats[2].RoutingTable = map[uint32]int{4: 4}
	n.Link(0, 2).Down()
	done := false
	n.OnDeliver = func(s *Satellite, p *Packet) { done = true }
	p := &Packet{Base: BaseHeader{Ver: Version, HopLimit: 16, FlowID: 4}}
	n.Inject(0, p)
	n.Sim.Run(0.5)
	if done {
		t.Fatal("legacy plane rerouted without control plane")
	}
	if n.Sats[0].Buffered != 1 {
		t.Errorf("buffered = %d", n.Sats[0].Buffered)
	}
	// Control plane finally updates the tables along the detour
	// 0→1 (ring link) →3→5→4 (ring link).
	n.Sats[0].RoutingTable[4] = 1
	n.Sats[1].RoutingTable = map[uint32]int{4: 3}
	n.Sats[3].RoutingTable = map[uint32]int{4: 5}
	n.Sats[5].RoutingTable = map[uint32]int{4: 4}
	n.FlushBuffers()
	n.Sim.Run(1)
	if !done {
		t.Error("legacy packet lost after table update")
	}
}

func TestLegacyNoRouteDrops(t *testing.T) {
	n := chainNet()
	dropped := ""
	n.OnDrop = func(s *Satellite, p *Packet, r string) { dropped = r }
	p := &Packet{Base: BaseHeader{Ver: Version, HopLimit: 16, FlowID: 4}}
	n.Inject(0, p) // no routing table at all
	n.Sim.Run(1)
	if dropped != "no route" {
		t.Errorf("reason = %q", dropped)
	}
}

func TestMultiSegmentRouteConsumesOwnCell(t *testing.T) {
	// Route whose first segment is the injecting satellite's own cell.
	n := chainNet()
	done := false
	n.OnDeliver = func(s *Satellite, p *Packet) { done = true }
	p, _ := NewGeoPacket(99, []int{10, 20}, 1, 1, nil)
	n.Inject(0, p)
	n.Sim.Run(1)
	if !done {
		t.Fatal("own-cell segment not consumed")
	}
}

func TestStatsAccounting(t *testing.T) {
	n := chainNet()
	n.OnDeliver = func(s *Satellite, p *Packet) {}
	for i := 0; i < 5; i++ {
		p, _ := NewGeoPacket(99, []int{20, 30}, 1, uint32(i), nil)
		n.Inject(0, p)
	}
	n.Sim.Run(1)
	if n.Sats[0].Forwarded != 5 {
		t.Errorf("forwarded = %d", n.Sats[0].Forwarded)
	}
	if n.Sats[4].Delivered != 5 {
		t.Errorf("delivered = %d", n.Sats[4].Delivered)
	}
	if n.Link(0, 2).TxPackets != 5 {
		t.Errorf("link tx = %d", n.Link(0, 2).TxPackets)
	}
}

func TestMultipathSpraysFlows(t *testing.T) {
	// Two disjoint routes from cell 10 to cell 30: via 20 (sats 2,4) and
	// via 40 (sats 6,7).
	n := NewNetwork()
	for id, c := range map[int]int{0: 10, 2: 20, 4: 30, 6: 40, 7: 30} {
		n.AddSatellite(id, c)
	}
	n.Connect(0, 2, 0.005)
	n.Connect(2, 4, 0.005)
	n.Connect(0, 6, 0.005)
	n.Connect(6, 7, 0.005)
	if _, err := n.InstallMultipath(0, [][]int{{20, 30}, {40, 30}}); err != nil {
		t.Fatal(err)
	}
	perSat := map[int]int{}
	n.OnDeliver = func(s *Satellite, p *Packet) { perSat[s.ID]++ }
	for flow := uint32(0); flow < 64; flow++ {
		if err := n.SendFlow(0, 30, flow, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	n.Sim.Run(5)
	if perSat[4]+perSat[7] != 64 {
		t.Fatalf("delivered %d+%d of 64", perSat[4], perSat[7])
	}
	if perSat[4] == 0 || perSat[7] == 0 {
		t.Errorf("flows not sprayed: %v", perSat)
	}
}

func TestMultipathFlowStability(t *testing.T) {
	g := &MultipathGroup{DstCell: 30, Routes: [][]int{{20, 30}, {40, 30}}}
	for flow := uint32(0); flow < 100; flow++ {
		a := g.RouteFor(flow)
		b := g.RouteFor(flow)
		if &a[0] != &b[0] {
			t.Fatal("flow hashed to different routes across calls")
		}
	}
}

func TestMultipathValidation(t *testing.T) {
	n := chainNet()
	if _, err := n.InstallMultipath(99, [][]int{{20}}); err == nil {
		t.Error("unknown satellite accepted")
	}
	if _, err := n.InstallMultipath(0, nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := n.InstallMultipath(0, [][]int{{20, 30}, {20, 40}}); err == nil {
		t.Error("mismatched destinations accepted")
	}
	if err := n.SendFlow(0, 999, 1, 1, nil); err == nil {
		t.Error("send without installed group accepted")
	}
}
