package dataplane

import "testing"

func BenchmarkPacketEncode(b *testing.B) {
	p, err := NewGeoPacket(42, []int{100, 200, 300, 400, 500}, 7, 1, make([]byte, 256))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketDecode(b *testing.B) {
	p, _ := NewGeoPacket(42, []int{100, 200, 300, 400, 500}, 7, 1, make([]byte, 256))
	wire, _ := p.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeoForwarding(b *testing.B) {
	// End-to-end emulation throughput: a 3-hop chain forwarding packets.
	n := chainNet()
	delivered := 0
	n.OnDeliver = func(s *Satellite, p *Packet) { delivered++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewGeoPacket(99, []int{20, 30}, 1, uint32(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		n.Inject(0, p)
		n.Sim.Run(n.Sim.Now() + 1)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
