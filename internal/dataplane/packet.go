// Package dataplane implements TinyLEO's geographic segment anycast data
// plane (paper §4.3): an SRv6-style segment routing header whose segments
// are geographic cells rather than node addresses, a per-satellite
// forwarder that delivers packets segment by segment via any satellite
// covering the next cell, an intra-cell gateway-ring fallback, local
// failover around dead ISLs, and buffering when a ring is partitioned.
// A legacy per-satellite routing-table forwarder is included as the
// baseline (Figure 19).
//
// The wire format follows the layered-decoding discipline of gopacket:
// each header type owns its Marshal/Unmarshal pair, headers chain via a
// NextHeader byte, and decoding is zero-allocation-on-error with explicit
// truncation checks.
package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header type identifiers (the NextHeader byte).
const (
	NextHeaderNone       = 0x00
	NextHeaderGeoSegment = 0x2B // mirrors IPv6's routing-header protocol 43
	NextHeaderPayload    = 0x3B // no-next-header, mirrors IPv6's 59
)

// Version is the wire-format version.
const Version = 1

// BaseHeaderLen is the fixed encoded size of BaseHeader.
const BaseHeaderLen = 20

// BaseHeader is the fixed per-packet header (an IPv6-like shim).
type BaseHeader struct {
	Ver        uint8
	NextHeader uint8
	HopLimit   uint8
	Flags      uint8
	SrcNode    uint32 // originating node (satellite or terminal) ID
	DstCell    uint16 // final destination geographic cell
	FlowID     uint32
	Seq        uint32
	PayloadLen uint16
}

// Flag bits.
const (
	// FlagControl marks control-plane packets (failure reports etc.).
	FlagControl = 1 << 0
)

// Marshal appends the encoded header to dst and returns the result.
func (h *BaseHeader) Marshal(dst []byte) []byte {
	var b [BaseHeaderLen]byte
	b[0] = h.Ver
	b[1] = h.NextHeader
	b[2] = h.HopLimit
	b[3] = h.Flags
	binary.BigEndian.PutUint32(b[4:], h.SrcNode)
	binary.BigEndian.PutUint16(b[8:], h.DstCell)
	binary.BigEndian.PutUint32(b[10:], h.FlowID)
	binary.BigEndian.PutUint32(b[14:], h.Seq)
	binary.BigEndian.PutUint16(b[18:], h.PayloadLen)
	return append(dst, b[:]...)
}

// ErrTruncated reports a buffer shorter than the header it should hold.
var ErrTruncated = errors.New("dataplane: truncated packet")

// ErrVersion reports an unsupported wire version.
var ErrVersion = errors.New("dataplane: unsupported version")

// Unmarshal decodes the header from b, returning the remaining bytes.
func (h *BaseHeader) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < BaseHeaderLen {
		return nil, fmt.Errorf("%w: base header needs %d bytes, have %d", ErrTruncated, BaseHeaderLen, len(b))
	}
	h.Ver = b[0]
	if h.Ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, h.Ver)
	}
	h.NextHeader = b[1]
	h.HopLimit = b[2]
	h.Flags = b[3]
	h.SrcNode = binary.BigEndian.Uint32(b[4:])
	h.DstCell = binary.BigEndian.Uint16(b[8:])
	h.FlowID = binary.BigEndian.Uint32(b[10:])
	h.Seq = binary.BigEndian.Uint32(b[14:])
	h.PayloadLen = binary.BigEndian.Uint16(b[18:])
	return b[BaseHeaderLen:], nil
}

// GeoSegmentHeader is the geographic segment routing header (§4.3): the
// ordered list of geographic cells the packet must traverse, with
// SegmentsLeft counting down like SRv6's segments-left field. Segments are
// stored in travel order (segment 0 is the first hop cell).
type GeoSegmentHeader struct {
	NextHeader   uint8
	SegmentsLeft uint8
	Segments     []uint16
}

// MaxSegments bounds the segment list (fits the uint8 count field).
const MaxSegments = 255

// EncodedLen returns the header's wire size.
func (g *GeoSegmentHeader) EncodedLen() int { return 4 + 2*len(g.Segments) }

// Marshal appends the encoded header to dst.
func (g *GeoSegmentHeader) Marshal(dst []byte) ([]byte, error) {
	if len(g.Segments) > MaxSegments {
		return nil, fmt.Errorf("dataplane: %d segments exceed max %d", len(g.Segments), MaxSegments)
	}
	if int(g.SegmentsLeft) > len(g.Segments) {
		return nil, fmt.Errorf("dataplane: segments-left %d > %d segments", g.SegmentsLeft, len(g.Segments))
	}
	dst = append(dst, g.NextHeader, g.SegmentsLeft, uint8(len(g.Segments)), 0)
	var b [2]byte
	for _, s := range g.Segments {
		binary.BigEndian.PutUint16(b[:], s)
		dst = append(dst, b[0], b[1])
	}
	return dst, nil
}

// Unmarshal decodes the header, returning the remaining bytes.
func (g *GeoSegmentHeader) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: geo segment header prefix", ErrTruncated)
	}
	g.NextHeader = b[0]
	g.SegmentsLeft = b[1]
	n := int(b[2])
	if len(b) < 4+2*n {
		return nil, fmt.Errorf("%w: %d segments need %d bytes, have %d", ErrTruncated, n, 4+2*n, len(b))
	}
	if int(g.SegmentsLeft) > n {
		return nil, fmt.Errorf("dataplane: segments-left %d > %d segments", g.SegmentsLeft, n)
	}
	g.Segments = make([]uint16, n)
	for i := 0; i < n; i++ {
		g.Segments[i] = binary.BigEndian.Uint16(b[4+2*i:])
	}
	return b[4+2*n:], nil
}

// CurrentSegment returns the cell the packet is currently heading to, or
// -1 when the segment list is exhausted.
func (g *GeoSegmentHeader) CurrentSegment() int {
	if g.SegmentsLeft == 0 {
		return -1
	}
	idx := len(g.Segments) - int(g.SegmentsLeft)
	return int(g.Segments[idx])
}

// Advance consumes the current segment (after the packet reaches its cell).
func (g *GeoSegmentHeader) Advance() {
	if g.SegmentsLeft > 0 {
		g.SegmentsLeft--
	}
}

// Packet is the in-memory form the emulator forwards (headers stay decoded
// between hops; the wire form is exercised by Encode/Decode and used across
// the southbound TCP path).
type Packet struct {
	Base    BaseHeader
	Geo     *GeoSegmentHeader // nil for legacy packets
	Payload []byte

	// Emulation metadata (not on the wire).
	SentAt   float64
	HopTrace []int // satellite IDs traversed
}

// Encode produces the full wire form.
func (p *Packet) Encode() ([]byte, error) {
	p.Base.PayloadLen = uint16(len(p.Payload))
	if p.Geo != nil {
		p.Base.NextHeader = NextHeaderGeoSegment
	} else {
		p.Base.NextHeader = NextHeaderPayload
	}
	out := p.Base.Marshal(nil)
	if p.Geo != nil {
		var err error
		out, err = p.Geo.Marshal(out)
		if err != nil {
			return nil, err
		}
	}
	return append(out, p.Payload...), nil
}

// Decode parses a wire-form packet.
func Decode(b []byte) (*Packet, error) {
	p := &Packet{}
	rest, err := p.Base.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	switch p.Base.NextHeader {
	case NextHeaderGeoSegment:
		p.Geo = &GeoSegmentHeader{}
		rest, err = p.Geo.Unmarshal(rest)
		if err != nil {
			return nil, err
		}
	case NextHeaderPayload, NextHeaderNone:
	default:
		return nil, fmt.Errorf("dataplane: unknown next header 0x%02x", p.Base.NextHeader)
	}
	if len(rest) < int(p.Base.PayloadLen) {
		return nil, fmt.Errorf("%w: payload needs %d bytes, have %d", ErrTruncated, p.Base.PayloadLen, len(rest))
	}
	p.Payload = rest[:p.Base.PayloadLen]
	return p, nil
}

// WireSize returns the encoded size without allocating.
func (p *Packet) WireSize() int {
	n := BaseHeaderLen + len(p.Payload)
	if p.Geo != nil {
		n += p.Geo.EncodedLen()
	}
	return n
}

// NewGeoPacket builds a geo-segment packet following route (cell IDs,
// including the destination cell as the last segment).
func NewGeoPacket(src uint32, route []int, flow, seq uint32, payload []byte) (*Packet, error) {
	if len(route) == 0 {
		return nil, errors.New("dataplane: empty route")
	}
	if len(route) > MaxSegments {
		return nil, fmt.Errorf("dataplane: route of %d cells exceeds max %d", len(route), MaxSegments)
	}
	segs := make([]uint16, len(route))
	for i, c := range route {
		if c < 0 || c > 0xFFFF {
			return nil, fmt.Errorf("dataplane: cell %d out of uint16 range", c)
		}
		segs[i] = uint16(c)
	}
	return &Packet{
		Base: BaseHeader{
			Ver:      Version,
			HopLimit: 64,
			SrcNode:  src,
			DstCell:  segs[len(segs)-1],
			FlowID:   flow,
			Seq:      seq,
		},
		Geo:     &GeoSegmentHeader{SegmentsLeft: uint8(len(segs)), Segments: segs},
		Payload: payload,
	}, nil
}
