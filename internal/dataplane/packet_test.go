package dataplane

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBaseHeaderRoundTrip(t *testing.T) {
	h := BaseHeader{
		Ver: Version, NextHeader: NextHeaderPayload, HopLimit: 64, Flags: FlagControl,
		SrcNode: 0xDEADBEEF, DstCell: 4049, FlowID: 7, Seq: 123456, PayloadLen: 99,
	}
	b := h.Marshal(nil)
	if len(b) != BaseHeaderLen {
		t.Fatalf("encoded %d bytes", len(b))
	}
	var got BaseHeader
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if got != h {
		t.Errorf("roundtrip: %+v != %+v", got, h)
	}
}

func TestBaseHeaderErrors(t *testing.T) {
	var h BaseHeader
	if _, err := h.Unmarshal(make([]byte, BaseHeaderLen-1)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: %v", err)
	}
	bad := (&BaseHeader{Ver: 9}).Marshal(nil)
	if _, err := h.Unmarshal(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestGeoSegmentRoundTrip(t *testing.T) {
	g := GeoSegmentHeader{NextHeader: NextHeaderPayload, SegmentsLeft: 3, Segments: []uint16{10, 20, 30}}
	b, err := g.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != g.EncodedLen() {
		t.Errorf("len %d vs EncodedLen %d", len(b), g.EncodedLen())
	}
	var got GeoSegmentHeader
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !reflect.DeepEqual(got, g) {
		t.Errorf("roundtrip: %+v", got)
	}
}

func TestGeoSegmentValidation(t *testing.T) {
	over := GeoSegmentHeader{SegmentsLeft: 5, Segments: []uint16{1, 2}}
	if _, err := over.Marshal(nil); err == nil {
		t.Error("segments-left overflow accepted at marshal")
	}
	// Craft a wire image with segments-left > count.
	raw := []byte{0, 3, 1, 0, 0, 1}
	var g GeoSegmentHeader
	if _, err := g.Unmarshal(raw); err == nil {
		t.Error("segments-left overflow accepted at unmarshal")
	}
	if _, err := g.Unmarshal([]byte{0, 0}); !errors.Is(err, ErrTruncated) {
		t.Error("short prefix accepted")
	}
	if _, err := g.Unmarshal([]byte{0, 1, 4, 0, 0, 1}); !errors.Is(err, ErrTruncated) {
		t.Error("truncated segment list accepted")
	}
}

func TestSegmentCursor(t *testing.T) {
	g := GeoSegmentHeader{SegmentsLeft: 3, Segments: []uint16{10, 20, 30}}
	if g.CurrentSegment() != 10 {
		t.Errorf("current = %d", g.CurrentSegment())
	}
	g.Advance()
	if g.CurrentSegment() != 20 {
		t.Errorf("after advance = %d", g.CurrentSegment())
	}
	g.Advance()
	g.Advance()
	if g.CurrentSegment() != -1 {
		t.Errorf("exhausted = %d", g.CurrentSegment())
	}
	g.Advance() // must not underflow
	if g.SegmentsLeft != 0 {
		t.Error("underflow")
	}
}

func TestPacketEncodeDecode(t *testing.T) {
	p, err := NewGeoPacket(42, []int{100, 200, 300}, 7, 1, []byte("payload!"))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != p.WireSize() {
		t.Errorf("wire %d vs WireSize %d", len(wire), p.WireSize())
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base.SrcNode != 42 || got.Base.DstCell != 300 {
		t.Errorf("base = %+v", got.Base)
	}
	if !reflect.DeepEqual(got.Geo.Segments, []uint16{100, 200, 300}) {
		t.Errorf("segments = %v", got.Geo.Segments)
	}
	if !bytes.Equal(got.Payload, []byte("payload!")) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestPacketDecodeErrors(t *testing.T) {
	p, _ := NewGeoPacket(1, []int{5}, 0, 0, []byte("xyz"))
	wire, _ := p.Encode()
	if _, err := Decode(wire[:len(wire)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated payload: %v", err)
	}
	// Unknown next header.
	h := BaseHeader{Ver: Version, NextHeader: 0x77}
	if _, err := Decode(h.Marshal(nil)); err == nil {
		t.Error("unknown next header accepted")
	}
}

func TestNewGeoPacketValidation(t *testing.T) {
	if _, err := NewGeoPacket(1, nil, 0, 0, nil); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := NewGeoPacket(1, []int{70000}, 0, 0, nil); err == nil {
		t.Error("oversized cell id accepted")
	}
	long := make([]int, 300)
	if _, err := NewGeoPacket(1, long, 0, 0, nil); err == nil {
		t.Error("overlong route accepted")
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nSeg := 1 + r.Intn(10)
		route := make([]int, nSeg)
		for i := range route {
			route[i] = r.Intn(4050)
		}
		payload := make([]byte, r.Intn(64))
		rng.Read(payload)
		p, err := NewGeoPacket(uint32(r.Uint32()), route, uint32(r.Uint32()), uint32(r.Uint32()), payload)
		if err != nil {
			return false
		}
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		wire2, err := got.Encode()
		if err != nil {
			return false
		}
		return bytes.Equal(wire, wire2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if len(b) > 0 {
			b[0] = Version // give it a chance past the version check
		}
		_, _ = Decode(b) // must not panic
	}
}
