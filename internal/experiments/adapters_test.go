package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/mpc"
)

func fingerprint(n *dataplane.Network) string {
	ids := make([]int, 0, len(n.Sats))
	for id := range n.Sats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		s := n.Sats[id]
		fmt.Fprintf(&b, "sat %d cell %d ring %d\n", id, s.Cell, s.RingNext)
	}
	return b.String()
}

// Regression for NetworkFromSnapshot assigning home cells in map
// iteration order: satellite 5 below holds gateway duty under two edge
// keys with different home cells, so the pre-fix code homed it to cell 1
// or cell 3 depending on which key the runtime yielded first.
func TestNetworkFromSnapshotIsDeterministic(t *testing.T) {
	snap := &mpc.Snapshot{
		Gateways: map[[2]int][]int{
			{1, 2}: {5, 7},
			{3, 4}: {5, 8},
			{2, 1}: {6},
		},
	}
	first := fingerprint(NetworkFromSnapshot(snap, nil))
	if !strings.Contains(first, "sat 5 cell 1") {
		t.Fatalf("satellite 5 not homed to the lowest edge key's cell:\n%s", first)
	}
	for run := 1; run < 10; run++ {
		if got := fingerprint(NetworkFromSnapshot(snap, nil)); got != first {
			t.Fatalf("run %d built a different network:\n--- first\n%s--- run %d\n%s", run, first, run, got)
		}
	}
}
