package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/orbit"
	"repro/internal/southbound"
)

// deltaScenario builds the 529-satellite (23×23 Walker) controller over
// the equatorial chain intent — the ISSUE 9 scale for the delta-compile
// speedup claim, matching internal/mpc's benchController. The lifetime
// window spans several control slots so consecutive DeltaCompile calls
// can reuse most visibility samples.
func deltaScenario() (*mpc.Controller, int, error) {
	g := geo.MustGrid(10)
	sats := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200, Planes: 23, SatsPerPlane: 23, PhasingF: 1,
	}.Satellites()
	topo := intent.NewTopology(g)
	var cells []int
	for i := 0; i < 12; i++ {
		id := g.CellOf(geom.LatLon{Lat: 5, Lon: float64(-55 + i*10)})
		topo.AddCell(id, 8)
		cells = append(cells, id)
	}
	for i := 1; i < len(cells); i++ {
		topo.Connect(cells[i-1], cells[i], 3)
	}
	ctl, err := mpc.New(mpc.Config{
		Topo: topo, Sats: sats, LifetimeHorizon: 3600, LifetimeStep: 30,
		Coverage: orbit.CoverageParams{MinElevation: geom.Deg2Rad(15)},
	})
	return ctl, len(sats), err
}

// deltaSlotDt is the control slot duration of the delta sweep: a
// multiple of the scenario's LifetimeStep, so consecutive slots sample
// pair visibility at bitwise-identical times and the warm path can skip
// them.
const deltaSlotDt = 30.0

// DeltaCompileSweep measures the incremental compiler and its wire
// footprint (ISSUE 9): it compiles the same window of control slots
// twice on fresh controllers — a full Compile chain and a DeltaCompile
// chain warm-starting each slot from the previous snapshot — verifies
// the two plans are byte-identical slot by slot, and reports the
// warm-slot speedup (slot 0 excluded: the first delta compile has no
// previous snapshot to reuse), the visibility-sample warm-hit ratio,
// and the southbound bytes per slot of delta enforcement (one
// slot-delta batch per changed satellite) versus full per-endpoint
// SetISL pushes. slots ≤ 0 defaults to 12.
func DeltaCompileSweep(slots int) (*metrics.Table, error) {
	if slots <= 0 {
		slots = 12
	}

	type chain struct {
		snaps      []*mpc.Snapshot
		wall, warm float64 // total and warm-slot (s > 0) compile seconds
		stats      orbit.CacheStats
	}
	nSats := 0
	run := func(delta bool) (*chain, error) {
		ctl, n, err := deltaScenario()
		if err != nil {
			return nil, err
		}
		nSats = n
		c := &chain{}
		var prev *mpc.Snapshot
		for s := 0; s < slots; s++ {
			t := float64(s) * deltaSlotDt
			//lint:tinyleo-ignore the measured wall speedup IS this experiment's result; snapshots are checked for equality separately
			start := time.Now()
			var snap *mpc.Snapshot
			if delta {
				snap = ctl.DeltaCompile(prev, t)
			} else {
				snap = ctl.Compile(t)
			}
			//lint:tinyleo-ignore the measured wall speedup IS this experiment's result; snapshots are checked for equality separately
			wall := time.Since(start).Seconds()
			c.wall += wall
			if s > 0 {
				c.warm += wall
			}
			c.snaps = append(c.snaps, snap)
			prev = snap
		}
		c.stats = ctl.CacheStats()
		return c, nil
	}

	full, err := run(false)
	if err != nil {
		return nil, err
	}
	dc, err := run(true)
	if err != nil {
		return nil, err
	}
	// The delta compiler's correctness contract: warm-starting must never
	// change the compiled plan.
	for s := range full.snaps {
		fl, dl := full.snaps[s].Links(), dc.snaps[s].Links()
		if len(fl) != len(dl) {
			return nil, fmt.Errorf("delta: slot %d diverged: %d vs %d links", s, len(fl), len(dl))
		}
		for i := range fl {
			if fl[i] != dl[i] {
				return nil, fmt.Errorf("delta: slot %d link %d diverged: %v vs %v", s, i, fl[i], dl[i])
			}
		}
	}
	// Wire footprint per warm slot: delta enforcement sends one
	// slot-delta batch per changed satellite; full enforcement sends one
	// SetISL per link endpoint. Both are derived from the same canonical
	// snapshot diff, so the numbers are deterministic.
	var fullBytes, deltaBytes int
	for s := 1; s < len(full.snaps); s++ {
		added, removed := mpc.DiffLinks(full.snaps[s-1], full.snaps[s])
		adds, dels := map[int][]uint32{}, map[int][]uint32{}
		for _, l := range added {
			for _, end := range []int{l[0], l[1]} {
				m := &southbound.Message{Type: southbound.MsgSetISL, SatID: uint32(end), Peer: uint32(l.Peer(end)), Up: true}
				fullBytes += m.WireSize()
				adds[end] = append(adds[end], uint32(l.Peer(end)))
			}
		}
		for _, l := range removed {
			for _, end := range []int{l[0], l[1]} {
				m := &southbound.Message{Type: southbound.MsgSetISL, SatID: uint32(end), Peer: uint32(l.Peer(end)), Up: false}
				fullBytes += m.WireSize()
				dels[end] = append(dels[end], uint32(l.Peer(end)))
			}
		}
		sats := make([]int, 0, len(adds)+len(dels))
		for sat := range adds {
			sats = append(sats, sat)
		}
		for sat := range dels {
			if _, ok := adds[sat]; !ok {
				sats = append(sats, sat)
			}
		}
		sort.Ints(sats)
		for _, sat := range sats {
			ops := make([]southbound.SlotDeltaOp, 0, len(adds[sat])+len(dels[sat]))
			for _, p := range dels[sat] {
				ops = append(ops, southbound.SlotDeltaOp{Peer: p, Up: false})
			}
			for _, p := range adds[sat] {
				ops = append(ops, southbound.SlotDeltaOp{Peer: p, Up: true})
			}
			m := &southbound.Message{Type: southbound.MsgSlotDelta, SatID: uint32(sat), Payload: southbound.EncodeSlotDelta(ops)}
			deltaBytes += m.WireSize()
		}
	}
	warmSlots := slots - 1
	if warmSlots < 1 {
		warmSlots = 1
	}

	speedup := 0.0
	if dc.warm > 0 {
		speedup = full.warm / dc.warm
	}
	tab := metrics.NewTable("Delta: incremental MPC compile + enforcement",
		"run", "satellites", "slots", "wall (s)", "warm wall (s)", "speedup (x)",
		"warm hit ratio", "bytes per slot (B)")
	tab.AddRow("full", nSats, slots, fmt.Sprintf("%.3f", full.wall),
		fmt.Sprintf("%.3f", full.warm), fmt.Sprintf("%.2f", 1.0),
		fmt.Sprintf("%.3f", full.stats.WarmHitRatio()), fullBytes/warmSlots)
	tab.AddRow("delta", nSats, slots, fmt.Sprintf("%.3f", dc.wall),
		fmt.Sprintf("%.3f", dc.warm), fmt.Sprintf("%.2f", speedup),
		fmt.Sprintf("%.3f", dc.stats.WarmHitRatio()), deltaBytes/warmSlots)
	return tab, nil
}
