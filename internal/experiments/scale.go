// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from this repository's implementations. Each runner
// corresponds to one table/figure; DESIGN.md carries the full index and
// EXPERIMENTS.md the paper-vs-measured record.
//
// All runners are parameterized by a Scale so the full suite runs in
// seconds at Small scale (tests, benchmarks) and approaches the paper's
// dimensions at Paper scale (cmd/tinyleo-bench -scale=paper).
package experiments

import (
	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/orbit"
	"repro/internal/texture"
)

// Scale bundles every size knob of the evaluation.
type Scale struct {
	Name        string
	CellDeg     float64 // geographic cell size (paper: 4° ⇒ 4,050 cells)
	Slots       int     // planning horizon slots (paper: 96 × 15 min)
	SlotSeconds float64
	SubSamples  int

	// Texture library enumeration.
	MaxP            int
	InclinationsDeg []float64
	RAANs           int
	Phases          int

	// Constellation / control-plane experiment sizing.
	ControlSats  int     // satellites in control/data-plane experiments
	ControlSlots int     // control-plane horizon slots
	ControlDt    float64 // control slot duration (s)

	Epsilon        float64 // availability target (paper: 1.0)
	RelaxedEpsilon float64 // the "flexible availability" target (paper: 0.99)

	ILPBudgetSeconds float64 // truncation budget for the exact solver

	Parallelism int
}

// Small runs the whole suite in seconds on a laptop; the shapes of all
// results match the paper, the absolute sizes are scaled down.
var Small = Scale{
	Name:             "small",
	CellDeg:          10,
	Slots:            12,
	SlotSeconds:      900,
	SubSamples:       2,
	MaxP:             1,
	InclinationsDeg:  []float64{30, 43, 53, 70, 85, -30, -53, -70},
	RAANs:            12,
	Phases:           4,
	ControlSats:      256,
	ControlSlots:     8,
	ControlDt:        300,
	Epsilon:          0.99,
	RelaxedEpsilon:   0.95,
	ILPBudgetSeconds: 2,
}

// Paper approaches the paper's dimensions (4,050 cells, tens of thousands
// of candidate tracks, 96 slots). Expect minutes-to-hours per experiment.
var Paper = Scale{
	Name:             "paper",
	CellDeg:          4,
	Slots:            96,
	SlotSeconds:      900,
	SubSamples:       3,
	MaxP:             2,
	InclinationsDeg:  []float64{20, 30, 43, 53, 60, 70, 85, 97.6, -30, -53, -70, -85},
	RAANs:            36,
	Phases:           6,
	ControlSats:      1741,
	ControlSlots:     96,
	ControlDt:        900,
	Epsilon:          0.999,
	RelaxedEpsilon:   0.99,
	ILPBudgetSeconds: 120,
}

// ScaleByName resolves "small" or "paper".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "small", "":
		return Small, true
	case "paper":
		return Paper, true
	}
	return Scale{}, false
}

// Grid returns the scale's geographic grid.
func (s Scale) Grid() *geo.Grid { return geo.MustGrid(s.CellDeg) }

// LibraryConfig returns the texture library configuration.
func (s Scale) LibraryConfig() texture.Config {
	return texture.Config{
		Grid:            s.Grid(),
		Specs:           orbit.EnumerateRepeatSpecs(s.MaxP, 423e3, 1873e3),
		InclinationsDeg: s.InclinationsDeg,
		RAANs:           s.RAANs,
		Phases:          s.Phases,
		Slots:           s.Slots,
		SlotSeconds:     s.SlotSeconds,
		SubSamples:      s.SubSamples,
		Parallelism:     s.Parallelism,
	}
}

// ScenarioOptions returns demand generation options aligned to the scale.
func (s Scale) ScenarioOptions() demand.ScenarioOptions {
	return demand.ScenarioOptions{
		Grid:        s.Grid(),
		Slots:       s.Slots,
		SlotSeconds: s.SlotSeconds,
	}
}

// BuildLibrary builds the texture library (cached per scale by callers).
func (s Scale) BuildLibrary() (*texture.Library, error) {
	return texture.Build(s.LibraryConfig())
}
